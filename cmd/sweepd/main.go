// Command sweepd runs the persistent simulation service: an HTTP/JSON
// server that keeps compiled programs, their engine pools and finished
// sweep results warm across requests, so repeated and overlapping sweeps
// are served from the content-addressed memo instead of re-simulated.
//
// Endpoints:
//
//	POST /v1/sweep   batch of sweep points; NDJSON rows stream back in
//	                 canonical request order
//	GET  /v1/stats   memo / compile-cache / queue counters as JSON
//	GET  /healthz    liveness probe
//
// A fleet of sweepd processes shards large requests: give the front
// process -forward with the peers' base URLs and it splits any request
// larger than -shard-size into contiguous shards, spreads them round-robin
// across itself and the peers, and merges the streams back into canonical
// order (forwarded shards are marked no_forward, so workers never
// re-shard).
//
// Usage:
//
//	sweepd [-addr 127.0.0.1:8077] [-memo-entries N] [-compile-entries N]
//	       [-sweep-workers N] [-forward URL1,URL2] [-shard-size N]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/driver"
	"repro/internal/sweepd"
)

const tool = "sweepd"

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	memoEntries := flag.Int("memo-entries", 0, "result-memo capacity in entries (0 = default)")
	compileEntries := flag.Int("compile-entries", 0, "compiled-program cache capacity in entries (0 = default)")
	workers := flag.Int("sweep-workers", 0, "concurrent job workers (0 = GOMAXPROCS); extra workers share the process-wide parallel budget")
	forward := flag.String("forward", "", "comma-separated peer sweepd base URLs to shard large requests across")
	shardSize := flag.Int("shard-size", 64, "sweep points per forwarded shard")
	pf := driver.RegisterProf(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		driver.Fatal(tool, err)
	}
	defer stopProf()

	var peers []string
	if *forward != "" {
		for _, p := range strings.Split(*forward, ",") {
			p = strings.TrimRight(strings.TrimSpace(p), "/")
			if p != "" {
				peers = append(peers, p)
			}
		}
	}
	srv := sweepd.NewServer(sweepd.Options{
		MemoEntries:    *memoEntries,
		CompileEntries: *compileEntries,
		Workers:        *workers,
		Peers:          peers,
		ShardSize:      *shardSize,
	})
	defer srv.Close()

	fmt.Fprintf(os.Stderr, "%s: listening on %s\n", tool, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		driver.Fatal(tool, err)
	}
}
