// Command ccdpfuzz runs differential fuzzing campaigns over randomly
// generated epoch programs: every program is executed across the
// BASE/CCDP × flat/torus × fault-plan matrix — plus the three hardware
// directory modes fault-free — and refereed by the coherence oracle, the
// compiled-program invariant checker, and divergence from the sequential
// golden arrays. Findings are auto-minimized (internal/shrink)
// and written as deterministic, replayable .repro artifacts.
//
// Usage:
//
//	ccdpfuzz [-seed 0] [-n 0] [-budget 30s] [-jobs 0] [-out DIR]
//	         [-mutate none|no-invalidate|no-sched-marks|no-dir-invalidate|no-rollback|no-domain-demotion-check]
//	         [-shrink] [-max-findings 0]
//	         [-arrays 5] [-epochs 5] [-offset 3] [-timesteps 3]
//	ccdpfuzz -replay FILE...
//
// Examples:
//
//	ccdpfuzz -budget 30s                        # CI smoke: exit 1 on finding
//	ccdpfuzz -n 500 -jobs 8 -out findings/      # 500 programs, artifacts out
//	ccdpfuzz -budget 10s -mutate no-invalidate  # prove the oracle referee bites
//	ccdpfuzz -replay findings/s000007-no-invalidate-oracle.repro
//
// A campaign prints "resume with -seed N" on exit; rerunning with that seed
// continues exactly where the previous campaign stopped. Seeds are consumed
// in order and results are collected in order, so output is byte-identical
// at any -jobs setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/driver"
	"repro/internal/fuzz"
	"repro/internal/progen"
)

const tool = "ccdpfuzz"

func main() {
	seed := flag.Int64("seed", 0, "first program seed (campaigns consume seeds consecutively)")
	n := flag.Int("n", 0, "number of programs to generate (0 = bounded by -budget)")
	budget := flag.Duration("budget", 0, "wall-clock budget (0 = bounded by -n)")
	jobs := flag.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS)")
	out := flag.String("out", "", "directory to write finding artifacts into")
	mutate := flag.String("mutate", "none", "sabotage compiled programs: none, no-invalidate, no-sched-marks, no-dir-invalidate, no-rollback or no-domain-demotion-check")
	matrix := flag.String("matrix", "", "run configurations, ';'-separated (e.g. \"mode=CCDP pes=8 topo=torus\"); empty = full default matrix")
	shrinkFlag := flag.Bool("shrink", true, "minimize findings before recording them")
	maxFindings := flag.Int("max-findings", 0, "stop after this many findings (0 = no cap)")
	arrays := flag.Int("arrays", 5, "generator: max shared arrays per program")
	epochs := flag.Int("epochs", 5, "generator: max epochs per program segment")
	offset := flag.Int("offset", 3, "generator: max |read offset|")
	timesteps := flag.Int("timesteps", 3, "generator: max time-step loop iterations")
	replay := flag.Bool("replay", false, "replay artifact files given as arguments instead of fuzzing")
	quiet := flag.Bool("q", false, "suppress per-batch progress lines")
	flag.Parse()

	if *replay {
		replayFiles(flag.Args())
		return
	}
	if flag.NArg() > 0 {
		driver.Fatal(tool, fmt.Errorf("unexpected arguments %v (use -replay to replay artifacts)", flag.Args()))
	}
	if *n <= 0 && *budget <= 0 {
		*budget = 30 * time.Second
	}
	mut, err := fuzz.ParseMutation(*mutate)
	if err != nil {
		driver.Fatal(tool, err)
	}
	if *arrays < 1 || *epochs < 1 || *offset < 0 || *timesteps < 0 {
		driver.Fatal(tool, fmt.Errorf("generator bounds must be positive"))
	}
	var runConfigs []fuzz.RunConfig
	if *matrix != "" {
		for _, part := range strings.Split(*matrix, ";") {
			rc, err := fuzz.ParseRunConfig(part)
			if err != nil {
				driver.Fatal(tool, err)
			}
			runConfigs = append(runConfigs, rc)
		}
	}

	cfg := fuzz.Config{
		Seed:        *seed,
		Programs:    *n,
		Budget:      *budget,
		Jobs:        *jobs,
		Gen:         progen.Config{MaxArrays: *arrays, MaxEpochs: *epochs, MaxOffset: *offset, MaxTimeSteps: *timesteps},
		Matrix:      runConfigs,
		Mutation:    mut,
		Shrink:      *shrinkFlag,
		MaxFindings: *maxFindings,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	sum, err := fuzz.Run(cfg)
	if err != nil {
		driver.Fatal(tool, err)
	}
	for _, f := range sum.Findings {
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				driver.Fatal(tool, err)
			}
			path := filepath.Join(*out, fuzz.ArtifactName(f))
			if err := os.WriteFile(path, []byte(fuzz.FormatFinding(f)), 0o644); err != nil {
				driver.Fatal(tool, err)
			}
			fmt.Printf("finding: seed=%d referee=%s -> %s\n", f.Seed, f.Referee, path)
		} else {
			fmt.Printf("finding: seed=%d referee=%s mutation=%s %s: %s\n",
				f.Seed, f.Referee, f.Mutation, f.Config, f.Detail)
		}
	}
	fmt.Printf("%d programs, %d runs, %d findings in %.1fs; resume with -seed %d\n",
		sum.Programs, sum.Runs, len(sum.Findings), sum.Elapsed.Seconds(), sum.NextSeed)
	if len(sum.Findings) > 0 {
		os.Exit(1)
	}
}

// replayFiles re-referees each artifact's program under its recorded
// configuration and mutation; exit status 0 means every artifact
// reproduced its recorded referee.
func replayFiles(paths []string) {
	if len(paths) == 0 {
		driver.Fatal(tool, fmt.Errorf("-replay needs artifact file arguments"))
	}
	ok := true
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			driver.Fatal(tool, err)
		}
		f, err := fuzz.ParseFinding(string(data))
		if err != nil {
			driver.Fatal(tool, fmt.Errorf("%s: %w", path, err))
		}
		nf := fuzz.Replay(f)
		switch {
		case nf == nil:
			fmt.Printf("%s: NOT reproduced (program runs clean; recorded referee %s)\n", path, f.Referee)
			ok = false
		case nf.Referee == f.Referee:
			fmt.Printf("%s: reproduced (%s: %s)\n", path, nf.Referee, nf.Detail)
		default:
			fmt.Printf("%s: DIFFERENT referee (recorded %s, observed %s: %s)\n",
				path, f.Referee, nf.Referee, nf.Detail)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}
