package main

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/workloads"
)

// The worker pool must never change what the drivers print: every sweep
// emits rows in point order regardless of completion order, so -jobs 1 and
// -jobs 8 produce byte-identical output.

func TestSweepTableByteIdenticalAcrossJobs(t *testing.T) {
	app := workloads.MXM(24, 12, 8)
	points := []sweepPoint{
		{label: "remote=20", tune: func(mp *machine.Params) { mp.RemoteReadCost = 20 }},
		{label: "remote=61", tune: func(mp *machine.Params) { mp.RemoteReadCost = 61 }},
		{label: "remote=122", tune: func(mp *machine.Params) { mp.RemoteReadCost = 122 }},
		{label: "remote=244", tune: func(mp *machine.Params) { mp.RemoteReadCost = 244 }},
	}
	peCounts := []int{1, 2, 4}

	render := func(jobs int) string {
		var buf bytes.Buffer
		if err := sweepTable(&buf, app, points, peCounts, jobs); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return buf.String()
	}
	ref := render(1)
	if got := render(8); got != ref {
		t.Errorf("sweepTable output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s", ref, got)
	}
}

func TestFaultSweepByteIdenticalAcrossJobs(t *testing.T) {
	specs := []*workloads.Spec{workloads.MXM(24, 12, 8), workloads.VPENTA(16, 6)}
	peCounts := []int{1, 4}

	render := func(jobs int) string {
		var buf bytes.Buffer
		err := runFaultSweep(&buf, specs, peCounts, noc.Config{}, "drop,late", "0.01,0.05", 2, 1, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return buf.String()
	}
	ref := render(1)
	if got := render(8); got != ref {
		t.Errorf("runFaultSweep output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s", ref, got)
	}
}

func TestRunConfigsOrderedAcrossJobs(t *testing.T) {
	// The ablations fan configurations out with runConfigs; results must
	// come back in configuration order at any jobs setting.
	app := workloads.MXM(24, 12, 8)
	cfgs := []harness.Config{
		{PECounts: []int{1, 4}},
		{PECounts: []int{1, 4}, Tune: func(mp *machine.Params) { mp.VectorMaxWords = 0 }},
		{PECounts: []int{1, 4}, Tune: func(mp *machine.Params) { mp.RemoteReadCost = 200 }},
	}
	render := func(jobs int) []int64 {
		rs, err := runConfigs(app, cfgs, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var cycles []int64
		for _, ar := range rs {
			for _, r := range ar.Rows {
				cycles = append(cycles, r.CCDPCycles)
			}
		}
		return cycles
	}
	ref := render(1)
	got := render(8)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("runConfigs cycle %d differs between jobs=1 (%d) and jobs=8 (%d)", i, ref[i], got[i])
		}
	}
}
