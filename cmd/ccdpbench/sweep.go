package main

import (
	"fmt"
	"io"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/workloads"
)

// sweepPoint is one row of an architectural sweep: a label plus the
// machine-parameter perturbation it measures.
type sweepPoint struct {
	label string
	tune  func(*machine.Params)
}

// runSweep measures the interaction of the CCDP scheme with one
// architectural parameter — the "detailed simulation studies ... and the
// interaction of the compiler implementation with various important
// architectural parameters" the paper's §6 plans as future work.
func runSweep(w io.Writer, name string, peCounts []int, jobs int) error {
	var points []sweepPoint
	var app *workloads.Spec
	switch name {
	case "remote":
		app = workloads.TOMCATV(257, 3)
		// Sweep around the canonical T3D remote latency (⅓× to 4×) so the
		// midpoint always matches the t3d machine profile.
		base := machine.MustProfileParams("t3d", 1).RemoteReadCost
		for _, lat := range []int64{base / 3, 2 * base / 3, base, 2 * base, 4 * base} {
			lat := lat
			points = append(points, sweepPoint{
				label: fmt.Sprintf("remote=%d", lat),
				tune:  func(mp *machine.Params) { mp.RemoteReadCost = lat },
			})
		}
	case "cache":
		app = workloads.SWIM(257, 3)
		for _, words := range []int64{256, 512, 1024, 4096, 16384} {
			words := words
			points = append(points, sweepPoint{
				label: fmt.Sprintf("cache=%dKB", words*8/1024),
				tune: func(mp *machine.Params) {
					mp.CacheWords = words
					if mp.VectorMaxWords > words {
						mp.VectorMaxWords = words / 2
					}
				},
			})
		}
	case "queue":
		app = workloads.TOMCATV(257, 3)
		for _, depth := range []int{1, 4, 16, 64, 256} {
			depth := depth
			points = append(points, sweepPoint{
				label: fmt.Sprintf("queue=%d", depth),
				tune: func(mp *machine.Params) {
					mp.PrefetchQueueWords = depth
					mp.VectorMaxWords = 0 // force word-prefetch paths
				},
			})
		}
	case "line":
		app = workloads.SWIM(257, 3)
		for _, lw := range []int64{2, 4, 8, 16} {
			lw := lw
			points = append(points, sweepPoint{
				label: fmt.Sprintf("line=%dB", lw*8),
				tune:  func(mp *machine.Params) { mp.LineWords = lw },
			})
		}
	default:
		return fmt.Errorf("unknown sweep %q (want remote, cache, queue or line)", name)
	}

	fmt.Fprintf(w, "Architectural sweep %q on %s\n", name, app.Name)
	return sweepTable(w, app, points, peCounts, jobs)
}

// sweepTable runs every sweep point on the worker pool and prints the
// improvement table, rows in point order.
func sweepTable(w io.Writer, app *workloads.Spec, points []sweepPoint, peCounts []int, jobs int) error {
	fmt.Fprintf(w, "%14s", "")
	for _, p := range peCounts {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("P=%d improv", p))
	}
	fmt.Fprintln(w)

	results := make([]*harness.AppResult, len(points))
	errs := make([]error, len(points))
	var firstErr error
	parallel.ForEach(len(points), jobs,
		func(i int) {
			results[i], errs[i] = harness.RunApp(app, harness.Config{PECounts: peCounts, Tune: points[i].tune})
		},
		func(i int) {
			if errs[i] != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", points[i].label, errs[i])
				}
				return
			}
			if firstErr != nil {
				return // keep the table's prefix clean once a point failed
			}
			fmt.Fprintf(w, "%14s", points[i].label)
			for _, r := range results[i].Rows {
				fmt.Fprintf(w, " %13.2f%%", r.Improvement)
			}
			fmt.Fprintln(w)
		})
	return firstErr
}
