package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// runSweep measures the interaction of the CCDP scheme with one
// architectural parameter — the "detailed simulation studies ... and the
// interaction of the compiler implementation with various important
// architectural parameters" the paper's §6 plans as future work.
func runSweep(name string, peCounts []int) error {
	type point struct {
		label string
		tune  func(*machine.Params)
	}
	var points []point
	var app *workloads.Spec
	switch name {
	case "remote":
		app = workloads.TOMCATV(257, 3)
		// Sweep around the canonical T3D remote latency (⅓× to 4×) so the
		// midpoint always matches machine.DefaultParams.
		base := machine.DefaultParams.RemoteReadCost
		for _, lat := range []int64{base / 3, 2 * base / 3, base, 2 * base, 4 * base} {
			lat := lat
			points = append(points, point{
				label: fmt.Sprintf("remote=%d", lat),
				tune:  func(mp *machine.Params) { mp.RemoteReadCost = lat },
			})
		}
	case "cache":
		app = workloads.SWIM(257, 3)
		for _, words := range []int64{256, 512, 1024, 4096, 16384} {
			words := words
			points = append(points, point{
				label: fmt.Sprintf("cache=%dKB", words*8/1024),
				tune: func(mp *machine.Params) {
					mp.CacheWords = words
					if mp.VectorMaxWords > words {
						mp.VectorMaxWords = words / 2
					}
				},
			})
		}
	case "queue":
		app = workloads.TOMCATV(257, 3)
		for _, depth := range []int{1, 4, 16, 64, 256} {
			depth := depth
			points = append(points, point{
				label: fmt.Sprintf("queue=%d", depth),
				tune: func(mp *machine.Params) {
					mp.PrefetchQueueWords = depth
					mp.VectorMaxWords = 0 // force word-prefetch paths
				},
			})
		}
	case "line":
		app = workloads.SWIM(257, 3)
		for _, lw := range []int64{2, 4, 8, 16} {
			lw := lw
			points = append(points, point{
				label: fmt.Sprintf("line=%dB", lw*8),
				tune:  func(mp *machine.Params) { mp.LineWords = lw },
			})
		}
	default:
		return fmt.Errorf("unknown sweep %q (want remote, cache, queue or line)", name)
	}

	fmt.Printf("Architectural sweep %q on %s\n", name, app.Name)
	fmt.Printf("%14s", "")
	for _, p := range peCounts {
		fmt.Printf(" %14s", fmt.Sprintf("P=%d improv", p))
	}
	fmt.Println()
	for _, pt := range points {
		ar, err := harness.RunApp(app, harness.Config{PECounts: peCounts, Tune: pt.tune})
		if err != nil {
			return fmt.Errorf("%s: %w", pt.label, err)
		}
		fmt.Printf("%14s", pt.label)
		for _, r := range ar.Rows {
			fmt.Printf(" %13.2f%%", r.Improvement)
		}
		fmt.Println()
	}
	return nil
}
