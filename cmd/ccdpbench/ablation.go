package main

import (
	"fmt"
	"io"

	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/workloads"
)

// runAblation executes the design-choice experiments DESIGN.md indexes.
func runAblation(w io.Writer, name string, peCounts []int, jobs int) error {
	switch name {
	case "vpg":
		return ablateVPG(w, peCounts, jobs)
	case "mbp":
		return ablateMBP(w, peCounts, jobs)
	case "nonstale":
		return ablateNonStale(w, peCounts, jobs)
	default:
		return fmt.Errorf("unknown ablation %q (want vpg, mbp or nonstale)", name)
	}
}

// runConfigs executes one application under several harness configurations
// concurrently and returns the results in configuration order.
func runConfigs(s *workloads.Spec, cfgs []harness.Config, jobs int) ([]*harness.AppResult, error) {
	results := make([]*harness.AppResult, len(cfgs))
	errs := make([]error, len(cfgs))
	parallel.ForEach(len(cfgs), jobs,
		func(i int) { results[i], errs[i] = harness.RunApp(s, cfgs[i]) },
		nil)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ablateVPG compares full CCDP scheduling against a scheduler with vector
// prefetches disabled (VectorMaxWords=0 forces SP/MBP) on MXM — the paper's
// §4.3 claim that vector prefetches amortize initiation costs.
func ablateVPG(w io.Writer, peCounts []int, jobs int) error {
	s := workloads.MXM(256, 128, 64)
	rs, err := runConfigs(s, []harness.Config{
		{PECounts: peCounts},
		{PECounts: peCounts, Tune: func(mp *machine.Params) { mp.VectorMaxWords = 0 }},
	}, jobs)
	if err != nil {
		return err
	}
	full, noVPG := rs[0], rs[1]
	fmt.Fprintln(w, "Ablation A: vector prefetch generation on MXM")
	fmt.Fprintf(w, "%6s %16s %16s %10s\n", "#PEs", "CCDP cycles", "no-VPG cycles", "VPG gain")
	for i, r := range full.Rows {
		n := noVPG.Rows[i]
		gain := 100 * (1 - float64(r.CCDPCycles)/float64(n.CCDPCycles))
		fmt.Fprintf(w, "%6d %16d %16d %9.2f%%\n", r.PEs, r.CCDPCycles, n.CCDPCycles, gain)
	}
	return nil
}

// ablateMBP sweeps the moving-back minimum-distance parameter on SWIM —
// the paper's §4.3.2 tunable ("the range of values for this parameter
// indicates the suitable distance to move back the prefetches").
func ablateMBP(w io.Writer, peCounts []int, jobs int) error {
	s := workloads.SWIM(513, 3)
	fmt.Fprintln(w, "Ablation B: moving-back minimum useful distance on SWIM")
	fmt.Fprintf(w, "%12s", "min-dist")
	for _, p := range peCounts {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(w)

	minDists := []int64{10, 40, 200, 1000}
	results := make([]*harness.AppResult, len(minDists))
	errs := make([]error, len(minDists))
	var firstErr error
	parallel.ForEach(len(minDists), jobs,
		func(i int) {
			minDist := minDists[i]
			results[i], errs[i] = harness.RunApp(s, harness.Config{
				PECounts: peCounts,
				Tune:     func(mp *machine.Params) { mp.MinMoveBackCycles = minDist },
			})
		},
		func(i int) {
			if errs[i] != nil {
				if firstErr == nil {
					firstErr = errs[i]
				}
				return
			}
			if firstErr != nil {
				return
			}
			fmt.Fprintf(w, "%12d", minDists[i])
			for _, r := range results[i].Rows {
				fmt.Fprintf(w, " %12d", r.CCDPCycles)
			}
			fmt.Fprintln(w)
		})
	return firstErr
}

// ablateNonStale runs the paper's §6 future-work extension — prefetching
// the non-stale remote references as well. On the four SPEC codes the
// extension is a no-op: every cross-PE read there is already potentially
// stale (the data is rewritten each time step), so standard CCDP covers
// it. The references the extension exists for are remote reads the
// analysis PROVES fresh — data each PE re-reads across epochs after one
// coherent read, with no intervening writes. The ablation therefore uses a
// table-lookup kernel with exactly that shape: a distributed coefficient
// table initialized once and then read gathered/reversed every time step.
func ablateNonStale(w io.Writer, peCounts []int, jobs int) error {
	s := lookupKernel(4096, 12)
	rs, err := runConfigs(s, []harness.Config{
		{PECounts: peCounts},
		{PECounts: peCounts, Tune: func(mp *machine.Params) { mp.PrefetchNonStale = true }},
	}, jobs)
	if err != nil {
		return err
	}
	std, ext := rs[0], rs[1]
	fmt.Fprintln(w, "Ablation C: §6 extension — also prefetch non-stale remote references (table-lookup kernel)")
	fmt.Fprintf(w, "%6s %16s %16s %12s %14s\n", "#PEs", "CCDP cycles", "+nonstale", "extra gain", "remote left")
	for i, r := range std.Rows {
		e := ext.Rows[i]
		gain := 100 * (1 - float64(e.CCDPCycles)/float64(r.CCDPCycles))
		fmt.Fprintf(w, "%6d %16d %16d %11.2f%% %14d\n",
			r.PEs, r.CCDPCycles, e.CCDPCycles, gain, e.CCDPStats.RemoteReads)
	}
	return nil
}

// lookupKernel builds the §6 ablation workload: a block-distributed table T
// initialized once (aligned), then read reversed by every PE each time step
// while updating a local accumulator. After the first step the reversed
// reads are provably fresh (intertask locality) yet remote — the exact
// references the §6 extension prefetches.
func lookupKernel(n, steps int64) *workloads.Spec {
	b := ir.NewBuilder(fmt.Sprintf("lookup-%d", n))
	tbl := b.SharedArray("T", n)
	acc := b.SharedArray("ACC", n)
	gather := func(v string) *ir.Loop {
		return ir.DoAllAligned(v, ir.K(0), ir.K(n-1), n,
			ir.Set(ir.At(acc, ir.I(v)),
				ir.Add(ir.L(ir.At(acc, ir.I(v))),
					ir.L(ir.At(tbl, ir.I(v).Neg().AddConst(n-1))))))
	}
	b.Routine("main",
		ir.DoAllAligned("i", ir.K(0), ir.K(n-1), n,
			ir.Set(ir.At(tbl, ir.I("i")), ir.Div(ir.IV(ir.I("i").AddConst(3)), ir.N(7))),
			ir.Set(ir.At(acc, ir.I("i")), ir.N(0))),
		// Peeled first gather: this one IS potentially stale (the table was
		// just written by other PEs) and standard CCDP prefetches it.
		gather("j0"),
		// Every later gather re-reads data each PE has already read
		// coherently: provably fresh, yet still remote — standard CCDP
		// leaves these as direct remote reads; the §6 extension covers them.
		ir.DoSerial("t", ir.K(1), ir.K(steps), gather("j")),
	)
	return &workloads.Spec{
		Name:        "LOOKUP",
		Prog:        b.Build(),
		CheckArrays: []string{"ACC"},
		Description: "distributed read-only table gathered every step",
	}
}
