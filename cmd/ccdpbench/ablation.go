package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// runAblation executes the design-choice experiments DESIGN.md indexes.
func runAblation(name string, peCounts []int) error {
	switch name {
	case "vpg":
		return ablateVPG(peCounts)
	case "mbp":
		return ablateMBP(peCounts)
	case "nonstale":
		return ablateNonStale(peCounts)
	default:
		return fmt.Errorf("unknown ablation %q (want vpg, mbp or nonstale)", name)
	}
}

// ablateVPG compares full CCDP scheduling against a scheduler with vector
// prefetches disabled (VectorMaxWords=0 forces SP/MBP) on MXM — the paper's
// §4.3 claim that vector prefetches amortize initiation costs.
func ablateVPG(peCounts []int) error {
	s := workloads.MXM(256, 128, 64)
	full, err := harness.RunApp(s, harness.Config{PECounts: peCounts})
	if err != nil {
		return err
	}
	noVPG, err := harness.RunApp(s, harness.Config{
		PECounts: peCounts,
		Tune:     func(mp *machine.Params) { mp.VectorMaxWords = 0 },
	})
	if err != nil {
		return err
	}
	fmt.Println("Ablation A: vector prefetch generation on MXM")
	fmt.Printf("%6s %16s %16s %10s\n", "#PEs", "CCDP cycles", "no-VPG cycles", "VPG gain")
	for i, r := range full.Rows {
		n := noVPG.Rows[i]
		gain := 100 * (1 - float64(r.CCDPCycles)/float64(n.CCDPCycles))
		fmt.Printf("%6d %16d %16d %9.2f%%\n", r.PEs, r.CCDPCycles, n.CCDPCycles, gain)
	}
	return nil
}

// ablateMBP sweeps the moving-back minimum-distance parameter on SWIM —
// the paper's §4.3.2 tunable ("the range of values for this parameter
// indicates the suitable distance to move back the prefetches").
func ablateMBP(peCounts []int) error {
	s := workloads.SWIM(513, 3)
	fmt.Println("Ablation B: moving-back minimum useful distance on SWIM")
	fmt.Printf("%12s", "min-dist")
	for _, p := range peCounts {
		fmt.Printf(" %12s", fmt.Sprintf("P=%d", p))
	}
	fmt.Println()
	for _, minDist := range []int64{10, 40, 200, 1000} {
		ar, err := harness.RunApp(s, harness.Config{
			PECounts: peCounts,
			Tune:     func(mp *machine.Params) { mp.MinMoveBackCycles = minDist },
		})
		if err != nil {
			return err
		}
		fmt.Printf("%12d", minDist)
		for _, r := range ar.Rows {
			fmt.Printf(" %12d", r.CCDPCycles)
		}
		fmt.Println()
	}
	return nil
}

// ablateNonStale runs the paper's §6 future-work extension — prefetching
// the non-stale remote references as well. On the four SPEC codes the
// extension is a no-op: every cross-PE read there is already potentially
// stale (the data is rewritten each time step), so standard CCDP covers
// it. The references the extension exists for are remote reads the
// analysis PROVES fresh — data each PE re-reads across epochs after one
// coherent read, with no intervening writes. The ablation therefore uses a
// table-lookup kernel with exactly that shape: a distributed coefficient
// table initialized once and then read gathered/reversed every time step.
func ablateNonStale(peCounts []int) error {
	s := lookupKernel(4096, 12)
	std, err := harness.RunApp(s, harness.Config{PECounts: peCounts})
	if err != nil {
		return err
	}
	ext, err := harness.RunApp(s, harness.Config{
		PECounts: peCounts,
		Tune:     func(mp *machine.Params) { mp.PrefetchNonStale = true },
	})
	if err != nil {
		return err
	}
	fmt.Println("Ablation C: §6 extension — also prefetch non-stale remote references (table-lookup kernel)")
	fmt.Printf("%6s %16s %16s %12s %14s\n", "#PEs", "CCDP cycles", "+nonstale", "extra gain", "remote left")
	for i, r := range std.Rows {
		e := ext.Rows[i]
		gain := 100 * (1 - float64(e.CCDPCycles)/float64(r.CCDPCycles))
		fmt.Printf("%6d %16d %16d %11.2f%% %14d\n",
			r.PEs, r.CCDPCycles, e.CCDPCycles, gain, e.CCDPStats.RemoteReads)
	}
	return nil
}

// lookupKernel builds the §6 ablation workload: a block-distributed table T
// initialized once (aligned), then read reversed by every PE each time step
// while updating a local accumulator. After the first step the reversed
// reads are provably fresh (intertask locality) yet remote — the exact
// references the §6 extension prefetches.
func lookupKernel(n, steps int64) *workloads.Spec {
	b := ir.NewBuilder(fmt.Sprintf("lookup-%d", n))
	tbl := b.SharedArray("T", n)
	acc := b.SharedArray("ACC", n)
	gather := func(v string) *ir.Loop {
		return ir.DoAllAligned(v, ir.K(0), ir.K(n-1), n,
			ir.Set(ir.At(acc, ir.I(v)),
				ir.Add(ir.L(ir.At(acc, ir.I(v))),
					ir.L(ir.At(tbl, ir.I(v).Neg().AddConst(n-1))))))
	}
	b.Routine("main",
		ir.DoAllAligned("i", ir.K(0), ir.K(n-1), n,
			ir.Set(ir.At(tbl, ir.I("i")), ir.Div(ir.IV(ir.I("i").AddConst(3)), ir.N(7))),
			ir.Set(ir.At(acc, ir.I("i")), ir.N(0))),
		// Peeled first gather: this one IS potentially stale (the table was
		// just written by other PEs) and standard CCDP prefetches it.
		gather("j0"),
		// Every later gather re-reads data each PE has already read
		// coherently: provably fresh, yet still remote — standard CCDP
		// leaves these as direct remote reads; the §6 extension covers them.
		ir.DoSerial("t", ir.K(1), ir.K(steps), gather("j")),
	)
	return &workloads.Spec{
		Name:        "LOOKUP",
		Prog:        b.Build(),
		CheckArrays: []string{"ACC"},
		Description: "distributed read-only table gathered every step",
	}
}
