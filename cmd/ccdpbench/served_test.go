package main

import (
	"bytes"
	"io"
	"net/http/httptest"
	"testing"

	"repro/internal/driver"
	"repro/internal/harness"
	"repro/internal/sweepd"
)

// The -server client mode must print byte-for-byte what the in-process
// path prints — details blocks, tables and CSV alike — because the server
// transports harness results losslessly and the rendering code is shared.
func TestServedStdoutByteIdenticalToInProcess(t *testing.T) {
	srv := sweepd.NewServer(sweepd.Options{})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()

	apps := "MXM,VPENTA"
	peCounts := []int{1, 2, 4}
	specs, err := driver.Apps(apps, "small")
	if err != nil {
		t.Fatal(err)
	}
	js := make([]sweepd.JobSpec, len(specs))
	for i, s := range specs {
		js[i] = sweepd.JobSpec{App: s.Name, Scale: "small", PEs: peCounts}
	}
	client := &sweepd.Client{Base: hs.URL}

	for _, mode := range []struct {
		name  string
		csv   bool
		table string
	}{
		{"csv", true, ""},
		{"tables", false, "all"},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var local bytes.Buffer
			results, err := runApps(io.Discard, specs,
				harness.Config{PECounts: peCounts}, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			renderResults(&local, results, mode.csv, mode.table)

			var served bytes.Buffer
			got, err := runServed(io.Discard, client, js, false)
			if err != nil {
				t.Fatal(err)
			}
			renderResults(&served, got, mode.csv, mode.table)

			if local.String() != served.String() {
				t.Errorf("served stdout differs from in-process:\n--- local ---\n%s--- served ---\n%s",
					local.String(), served.String())
			}
		})
	}
}
