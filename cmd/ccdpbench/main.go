// Command ccdpbench regenerates the paper's evaluation: Table 1 (speedups
// of BASE and CCDP over sequential) and Table 2 (% improvement of CCDP over
// BASE) for MXM, VPENTA, TOMCATV and SWIM across 1–64 PEs, plus the
// ablation experiments DESIGN.md defines.
//
// Independent sweep points (applications, parameter settings, fault
// trials) run concurrently on a worker pool (-jobs, default GOMAXPROCS);
// rows are always emitted in deterministic point order, so the output is
// byte-identical at any -jobs setting.
//
// Usage:
//
//	ccdpbench [-table 1|2|all] [-apps MXM,VPENTA,TOMCATV,SWIM] [-pes 1,2,4,...]
//	          [-machine-profile t3d|cxl-pcc|pim] [-domain-size D]
//	          [-scale small|paper] [-topology flat|torus|XxYxZ] [-jobs N]
//	          [-pdes optimistic|conservative|adaptive]
//	          [-arena] [-arena-pes 8] [-hw-prefetch next-line|stride]
//	          [-ablation vpg|mbp|nonstale] [-details]
//	          [-fault-rate 0.01] [-fault-kinds all] [-fault-seed 1]
//	          [-faultsweep] [-fault-rates 0.001,0.01,0.05] [-fault-trials 3]
//	          [-server http://host:port] [-server-priority N]
//	          [-cpuprofile cpu.out] [-memprofile mem.out]
//
// With -server the sweep is served by a persistent sweepd process (see
// cmd/sweepd): repeated sweeps hit its content-addressed result memo and
// shared compile cache, while stdout stays byte-identical to the
// in-process path because the results are rendered locally by the same
// report code.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/driver"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sweepd"
	"repro/internal/workloads"
)

const tool = "ccdpbench"

func main() {
	table := flag.String("table", "all", "which table to print: 1, 2 or all")
	apps := flag.String("apps", "MXM,VPENTA,TOMCATV,SWIM", "comma-separated application list")
	pes := flag.String("pes", "1,2,4,8,16,32,64", "comma-separated PE counts")
	scale := flag.String("scale", "paper", "problem scale: small or paper")
	profile := flag.String("machine-profile", "t3d", driver.ProfileUsage())
	domainSize := flag.Int("domain-size", 0,
		"override the profile's coherence-domain size (0 = profile default, 1 = per-PE domains)")
	details := flag.Bool("details", false, "print per-configuration details")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of tables")
	arena := flag.Bool("arena", false, "run the coherence arena instead: every mode (software and hardware directory) on one machine size")
	arenaPEs := flag.Int("arena-pes", 8, "machine size for -arena")
	ablation := flag.String("ablation", "", "run an ablation instead: vpg, mbp or nonstale")
	sweep := flag.String("sweep", "", "run an architectural parameter sweep instead: remote, cache, queue or line")
	jobs := flag.Int("jobs", 0, "concurrent sweep points (0 = GOMAXPROCS); output is identical at any setting")
	server := flag.String("server", "", "serve the sweep from a persistent sweepd at this base URL instead of running in-process (output is byte-identical)")
	serverPriority := flag.Int("server-priority", 0, "job priority for -server submissions (higher runs first)")
	faultSweep := flag.Bool("faultsweep", false, "run the fault-injection sweep ablation instead")
	faultRates := flag.String("fault-rates", "0.001,0.01,0.05", "fault rates for -faultsweep")
	faultTrials := flag.Int("fault-trials", 3, "trials (distinct seeds) per rate for -faultsweep")
	tf := driver.RegisterTopology(flag.CommandLine)
	pdf := driver.RegisterPDES(flag.CommandLine)
	hf := driver.RegisterHW(flag.CommandLine)
	ff := driver.RegisterFault(flag.CommandLine)
	pf := driver.RegisterProf(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		driver.Fatal(tool, err)
	}
	defer stopProf()

	peCounts, err := driver.ParsePEs(*pes)
	if err != nil {
		driver.Fatal(tool, err)
	}
	plan, err := ff.Plan()
	if err != nil {
		driver.Fatal(tool, err)
	}
	topo, err := tf.Config()
	if err != nil {
		driver.Fatal(tool, err)
	}
	pdes, err := pdf.Mode()
	if err != nil {
		driver.Fatal(tool, err)
	}
	if _, err := machine.ProfileParams(*profile, 1); err != nil {
		driver.Fatal(tool, err)
	}

	if *server != "" {
		if *faultSweep || *arena || *ablation != "" || *sweep != "" {
			driver.Fatal(tool, fmt.Errorf(
				"-server serves plain sweeps only; -arena, -ablation, -sweep and -faultsweep run in-process"))
		}
		specs, err := driver.Apps(*apps, *scale)
		if err != nil {
			driver.Fatal(tool, err)
		}
		js := make([]sweepd.JobSpec, len(specs))
		for i, s := range specs {
			js[i] = sweepd.JobSpec{
				App: s.Name, Scale: *scale, PEs: peCounts,
				Profile: *profile, DomainSize: *domainSize,
				Topology: tf.String(), PDES: pdf.String(),
				FaultRate: *ff.Rate, FaultKinds: *ff.Kinds, FaultSeed: *ff.Seed,
			}
		}
		client := &sweepd.Client{Base: strings.TrimRight(*server, "/"), Priority: *serverPriority}
		results, err := runServed(os.Stdout, client, js, *details)
		if err != nil {
			driver.Fatal(tool, err)
		}
		renderResults(os.Stdout, results, *csv, *table)
		return
	}

	if *faultSweep {
		specs, err := driver.Apps(*apps, *scale)
		if err != nil {
			driver.Fatal(tool, err)
		}
		if err := runFaultSweep(os.Stdout, specs, peCounts, topo, *ff.Kinds, *faultRates, *faultTrials, *ff.Seed, *jobs); err != nil {
			driver.Fatal(tool, err)
		}
		return
	}
	if *arena {
		specs, err := driver.Apps(*apps, *scale)
		if err != nil {
			driver.Fatal(tool, err)
		}
		acfg := harness.ArenaConfig{PEs: *arenaPEs, Profile: *profile, Topology: topo, HWPrefetcher: *hf.Prefetcher,
			Tune: func(mp *machine.Params) {
				// Directory shape only; the prefetcher is already routed to
				// the HW modes by ArenaConfig.HWPrefetcher.
				mp.DirPointers = *hf.Pointers
				mp.DirSparseLines = *hf.SparseLines
				mp.DirSparseWays = *hf.SparseWays
			}}
		if err := runArenas(os.Stdout, specs, acfg, *jobs, *csv); err != nil {
			driver.Fatal(tool, err)
		}
		return
	}
	if *ablation != "" {
		if err := runAblation(os.Stdout, *ablation, peCounts, *jobs); err != nil {
			driver.Fatal(tool, err)
		}
		return
	}
	if *sweep != "" {
		if err := runSweep(os.Stdout, *sweep, peCounts, *jobs); err != nil {
			driver.Fatal(tool, err)
		}
		return
	}

	specs, err := driver.Apps(*apps, *scale)
	if err != nil {
		driver.Fatal(tool, err)
	}
	results, err := runApps(os.Stdout, specs, harness.Config{PECounts: peCounts, Profile: *profile, DomainSize: *domainSize, Fault: plan, Topology: topo, PDES: pdes}, *jobs, *details)
	if err != nil {
		driver.Fatal(tool, err)
	}

	renderResults(os.Stdout, results, *csv, *table)
}

// runArenas runs the coherence arena for every application on the worker
// pool, emitting tables (or CSV) in application order.
func runArenas(w io.Writer, specs []*workloads.Spec, cfg harness.ArenaConfig, jobs int, csv bool) error {
	results := make([]*harness.ArenaResult, len(specs))
	errs := make([]error, len(specs))
	parallel.ForEach(len(specs), jobs,
		func(i int) {
			s := specs[i]
			fmt.Fprintf(os.Stderr, "arena %s (%s)...\n", s.Name, s.Description)
			results[i], errs[i] = harness.RunArena(s, cfg)
		},
		func(i int) {
			if !csv && errs[i] == nil {
				fmt.Fprintln(w, report.Arena(results[i]))
			}
		})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if csv {
		fmt.Fprint(w, report.ArenaCSV(results))
	}
	return nil
}

// runApps sweeps every application on the worker pool. Per-app detail
// blocks are emitted to w in application order regardless of completion
// order; the returned results are indexed like specs.
func runApps(w io.Writer, specs []*workloads.Spec, cfg harness.Config, jobs int, details bool) ([]*harness.AppResult, error) {
	results := make([]*harness.AppResult, len(specs))
	errs := make([]error, len(specs))
	parallel.ForEach(len(specs), jobs,
		func(i int) {
			s := specs[i]
			fmt.Fprintf(os.Stderr, "running %s (%s)...\n", s.Name, s.Description)
			results[i], errs[i] = harness.RunApp(s, cfg)
		},
		func(i int) {
			if details && errs[i] == nil {
				fmt.Fprintln(w, report.Details(results[i]))
			}
		})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
