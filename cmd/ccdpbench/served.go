package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/sweepd"
)

// runServed is the -server client mode: the sweep runs on a persistent
// sweepd process (one job per application, carrying the full flag
// configuration) and the results are rendered locally by exactly the
// report code the in-process path uses — so stdout is byte-for-byte
// identical to running the same sweep without -server, while repeated
// sweeps are served from the server's content-addressed memo without
// touching the simulator.
func runServed(w io.Writer, client *sweepd.Client, specs []sweepd.JobSpec, details bool) ([]*harness.AppResult, error) {
	results, sum, err := client.Sweep(specs)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "served sweep: rows=%d memo_hits=%d\n", sum.Rows, sum.MemoHits)
	if details {
		for _, ar := range results {
			fmt.Fprintln(w, report.Details(ar))
		}
	}
	return results, nil
}

// renderResults is the shared stdout tail of the in-process and served
// sweep paths: CSV or the paper's tables.
func renderResults(w io.Writer, results []*harness.AppResult, csv bool, table string) {
	if csv {
		fmt.Fprint(w, report.CSV(results))
		return
	}
	switch table {
	case "1":
		fmt.Fprintln(w, report.Table1(results))
	case "2":
		fmt.Fprintln(w, report.Table2(results))
	default:
		fmt.Fprintln(w, report.Table1(results))
		fmt.Fprintln(w, report.Table2(results))
	}
}
