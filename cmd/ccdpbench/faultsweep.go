package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/noc"
	"repro/internal/workloads"
)

// runFaultSweep is the fault-injection ablation: for every application and
// every fault rate it runs `trials` full harness sweeps (distinct seeds per
// trial, every run verified bit-for-bit against the fault-free sequential
// golden) and reports how many survived — completed verified, possibly via
// demotion/retry — plus the cycle overhead degraded operation cost over the
// fault-free baseline. Over a torus topology the congestion-timeout
// prefetch drops (contention-induced demotions) are reported in their own
// column, separately from the fault-induced demotions.
func runFaultSweep(specs []*workloads.Spec, peCounts []int, topo noc.Config, kindsFlag, ratesFlag string, trials int, seed int64) error {
	kinds, err := fault.ParseKinds(kindsFlag)
	if err != nil {
		return err
	}
	rates, err := parseRates(ratesFlag)
	if err != nil {
		return err
	}
	if trials < 1 {
		trials = 1
	}

	fmt.Printf("Fault sweep: kinds=%s trials=%d pes=%v topology=%s (CCDP cycles at the largest PE count)\n\n",
		fault.FormatKinds(kinds), trials, peCounts, topo)
	fmt.Printf("%-8s %8s %10s %9s %12s %9s %8s %10s %9s %8s\n",
		"app", "rate", "survived", "attempts", "ccdp_cycles", "overhead", "faults", "demotions", "cont-drop", "oracle")

	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "sweeping %s...\n", s.Name)
		// Fault-free baseline for the overhead column (same topology: the
		// overhead must isolate the faults, not the interconnect model).
		base, err := harness.RunApp(s, harness.Config{PECounts: peCounts, Topology: topo})
		if err != nil {
			return fmt.Errorf("%s baseline: %w", s.Name, err)
		}
		baseRow := base.Rows[len(base.Rows)-1]
		fmt.Printf("%-8s %8g %10s %9s %12d %9s %8d %10d %9d %8d\n",
			s.Name, 0.0, fmt.Sprintf("%d/%d", trials, trials), "1.0",
			baseRow.CCDPCycles, "+0.00%", 0, baseRow.CCDPStats.Demotions,
			baseRow.CCDPStats.NetDrops, 0)

		for _, rate := range rates {
			survived, attempts := 0, 0
			var cycles, faults, demotions, contDrops, oracle int64
			var lastErr error
			for trial := 0; trial < trials; trial++ {
				plan := fault.Plan{
					Seed:  seed + int64(trial)*7919, // distinct stream per trial
					Rate:  rate,
					Kinds: kinds,
				}
				ar, err := harness.RunApp(s, harness.Config{PECounts: peCounts, Fault: plan, Topology: topo})
				if err != nil {
					lastErr = err
					continue
				}
				survived++
				row := ar.Rows[len(ar.Rows)-1]
				attempts += row.CCDPAttempts
				cycles += row.CCDPCycles
				faults += row.CCDPStats.FaultsInjected() + row.BaseStats.FaultsInjected()
				demotions += row.CCDPStats.Demotions
				contDrops += row.CCDPStats.NetDrops
				oracle += row.CCDPStats.OracleViolations + row.BaseStats.OracleViolations
			}
			if survived == 0 {
				fmt.Printf("%-8s %8g %10s %9s %12s %9s %8s %10s %9s %8s  (last: %v)\n",
					s.Name, rate, fmt.Sprintf("0/%d", trials), "-", "-", "-", "-", "-", "-", "-", lastErr)
				continue
			}
			n := int64(survived)
			avgCycles := cycles / n
			overhead := 100 * (float64(avgCycles)/float64(baseRow.CCDPCycles) - 1)
			fmt.Printf("%-8s %8g %10s %9.1f %12d %+8.2f%% %8d %10d %9d %8d\n",
				s.Name, rate, fmt.Sprintf("%d/%d", survived, trials),
				float64(attempts)/float64(survived), avgCycles, overhead,
				faults/n, demotions/n, contDrops/n, oracle/n)
		}
		fmt.Println()
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("bad fault rate %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fault rates given")
	}
	return out, nil
}
