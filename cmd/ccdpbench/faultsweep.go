package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/noc"
	"repro/internal/parallel"
	"repro/internal/workloads"
)

// runFaultSweep is the fault-injection ablation: for every application and
// every fault rate it runs `trials` full harness sweeps (distinct seeds per
// trial, every run verified bit-for-bit against the fault-free sequential
// golden) and reports how many survived — completed verified, possibly via
// demotion/retry — plus the cycle overhead degraded operation cost over the
// fault-free baseline. Over a torus topology the congestion-timeout
// prefetch drops (contention-induced demotions) are reported in their own
// column, separately from the fault-induced demotions.
//
// Every (app, rate, trial) point — plus each app's fault-free baseline —
// is an independent simulation, so the whole sweep fans out over the
// worker pool; rows are aggregated and printed in point order at emit
// time, which keeps the output byte-identical at any -jobs setting.
func runFaultSweep(w io.Writer, specs []*workloads.Spec, peCounts []int, topo noc.Config, kindsFlag, ratesFlag string, trials int, seed int64, jobs int) error {
	kinds, err := fault.ParseKinds(kindsFlag)
	if err != nil {
		return err
	}
	rates, err := parseRates(ratesFlag)
	if err != nil {
		return err
	}
	if trials < 1 {
		trials = 1
	}

	// Flatten the sweep to trial granularity. Each app's fault-free
	// baseline comes first (rate == -1), so by the time a rate row is
	// emitted its overhead denominator is already available.
	type point struct {
		app   int // index into specs
		rate  int // index into rates; -1 = fault-free baseline
		trial int
	}
	var points []point
	for ai := range specs {
		points = append(points, point{ai, -1, 0})
		for ri := range rates {
			for t := 0; t < trials; t++ {
				points = append(points, point{ai, ri, t})
			}
		}
	}

	fmt.Fprintf(w, "Fault sweep: kinds=%s trials=%d pes=%v topology=%s (CCDP cycles at the largest PE count)\n\n",
		fault.FormatKinds(kinds), trials, peCounts, topo)
	fmt.Fprintf(w, "%-8s %8s %10s %9s %12s %9s %8s %10s %9s %8s\n",
		"app", "rate", "survived", "attempts", "ccdp_cycles", "overhead", "faults", "demotions", "cont-drop", "oracle")

	results := make([]*harness.AppResult, len(points))
	errs := make([]error, len(points))
	baseRows := make([]harness.Row, len(specs))

	// Per-rate aggregate, reset at each rate's first trial. Emission is
	// strictly ascending, so a rate's trials arrive contiguously.
	var agg struct {
		survived, attempts                           int
		cycles, faults, demotions, contDrops, oracle int64
		lastErr                                      error
	}
	var firstErr error
	parallel.ForEach(len(points), jobs,
		func(i int) {
			p := points[i]
			s := specs[p.app]
			cfg := harness.Config{PECounts: peCounts, Topology: topo}
			if p.rate >= 0 {
				cfg.Fault = fault.Plan{
					Seed:  seed + int64(p.trial)*7919, // distinct stream per trial
					Rate:  rates[p.rate],
					Kinds: kinds,
				}
			}
			results[i], errs[i] = harness.RunApp(s, cfg)
		},
		func(i int) {
			if firstErr != nil {
				return
			}
			p := points[i]
			s := specs[p.app]
			if p.rate < 0 {
				// Fault-free baseline for the overhead column (same
				// topology: the overhead must isolate the faults, not the
				// interconnect model).
				fmt.Fprintf(os.Stderr, "sweeping %s...\n", s.Name)
				if errs[i] != nil {
					firstErr = fmt.Errorf("%s baseline: %w", s.Name, errs[i])
					return
				}
				baseRow := results[i].Rows[len(results[i].Rows)-1]
				baseRows[p.app] = baseRow
				fmt.Fprintf(w, "%-8s %8g %10s %9s %12d %9s %8d %10d %9d %8d\n",
					s.Name, 0.0, fmt.Sprintf("%d/%d", trials, trials), "1.0",
					baseRow.CCDPCycles, "+0.00%", 0, baseRow.CCDPStats.Demotions,
					baseRow.CCDPStats.NetDrops, 0)
				return
			}

			if p.trial == 0 {
				agg = struct {
					survived, attempts                           int
					cycles, faults, demotions, contDrops, oracle int64
					lastErr                                      error
				}{}
			}
			if errs[i] != nil {
				agg.lastErr = errs[i]
			} else {
				agg.survived++
				row := results[i].Rows[len(results[i].Rows)-1]
				agg.attempts += row.CCDPAttempts
				agg.cycles += row.CCDPCycles
				agg.faults += row.CCDPStats.FaultsInjected() + row.BaseStats.FaultsInjected()
				agg.demotions += row.CCDPStats.Demotions
				agg.contDrops += row.CCDPStats.NetDrops
				agg.oracle += row.CCDPStats.OracleViolations + row.BaseStats.OracleViolations
			}
			if p.trial != trials-1 {
				return
			}
			rate := rates[p.rate]
			if agg.survived == 0 {
				fmt.Fprintf(w, "%-8s %8g %10s %9s %12s %9s %8s %10s %9s %8s  (last: %v)\n",
					s.Name, rate, fmt.Sprintf("0/%d", trials), "-", "-", "-", "-", "-", "-", "-", agg.lastErr)
			} else {
				n := int64(agg.survived)
				avgCycles := agg.cycles / n
				overhead := 100 * (float64(avgCycles)/float64(baseRows[p.app].CCDPCycles) - 1)
				fmt.Fprintf(w, "%-8s %8g %10s %9.1f %12d %+8.2f%% %8d %10d %9d %8d\n",
					s.Name, rate, fmt.Sprintf("%d/%d", agg.survived, trials),
					float64(agg.attempts)/float64(agg.survived), avgCycles, overhead,
					agg.faults/n, agg.demotions/n, agg.contDrops/n, agg.oracle/n)
			}
			if p.rate == len(rates)-1 {
				fmt.Fprintln(w) // blank line between applications
			}
		})
	return firstErr
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("bad fault rate %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fault rates given")
	}
	return out, nil
}
