// Command t3dsim runs one workload in one mode on the simulated Cray T3D
// and prints the cycle count and machine metrics.
//
// Usage:
//
//	t3dsim -app TOMCATV -mode ccdp -pes 16 [-scale small|paper] [-races] [-verify]
//	       [-machine-profile t3d|cxl-pcc|pim] [-domain-size D]
//	       [-topology flat|torus|XxYxZ]
//	       [-hw-prefetch next-line|stride] [-dir-pointers i]
//	       [-dir-sparse-lines n] [-dir-sparse-ways w]
//	       [-fault-rate 0.01] [-fault-kinds drop,late,spike,evict,skew] [-fault-seed 1]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
//
// The mode list (including the hardware directory modes hwdir, hwdir-lp
// and hwdir-sparse) comes from the core mode registry; the -hw-* flags
// only matter under a hwdir mode.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/exec"
	"repro/internal/machine"
)

const tool = "t3dsim"

func main() {
	app := flag.String("app", "MXM", "workload: MXM, VPENTA, TOMCATV or SWIM")
	mode := flag.String("mode", "ccdp", driver.ModeUsage())
	scale := flag.String("scale", "small", "problem scale: small or paper")
	races := flag.Bool("races", false, "enable the epoch-model race detector (slow)")
	verify := flag.Bool("verify", false, "also run sequentially and compare results")
	mf := driver.RegisterMachine(flag.CommandLine, 8)
	hf := driver.RegisterHW(flag.CommandLine)
	ff := driver.RegisterFault(flag.CommandLine)
	pf := driver.RegisterProf(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		driver.Fatal(tool, err)
	}
	defer stopProf()

	spec, err := driver.App(*app, *scale)
	if err != nil {
		driver.Fatal(tool, err)
	}
	m, err := driver.ParseMode(*mode)
	if err != nil {
		driver.Fatal(tool, err)
	}
	plan, err := ff.Plan()
	if err != nil {
		driver.Fatal(tool, err)
	}
	mp, err := mf.Params()
	if err != nil {
		driver.Fatal(tool, err)
	}
	hf.Apply(&mp)

	c, err := core.Compile(spec.Prog, m, mp)
	if err != nil {
		driver.Fatal(tool, err)
	}
	res, err := exec.Run(c, exec.Options{DetectRaces: *races, Fault: plan})
	if err != nil {
		driver.Fatal(tool, err)
	}
	fmt.Printf("%s %v on %d PEs: %d cycles\n", spec.Name, m, mp.NumPE, res.Cycles)
	if *races {
		fmt.Println("race detection: parallel epochs run their PEs sequentially so model violations are caught deterministically; simulated cycle counts are unchanged, only wall-clock is")
	}
	if plan.Enabled() {
		fmt.Println(plan)
	}
	fmt.Println(res.Stats.String())
	if res.Net != nil {
		fmt.Println(res.Net.String())
	}

	// The coherence safety oracle: any consumed stale word is a hard
	// failure in the coherent modes (INCOHERENT mode exists to exhibit
	// exactly these violations, so there they are only reported).
	if res.Stats.OracleViolations > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, tool+":", v.Error())
		}
		if m != core.ModeIncoherent {
			driver.Fatal(tool, fmt.Errorf("%d coherence-oracle violations", res.Stats.OracleViolations))
		}
	}

	if *verify {
		cs, err := core.Compile(spec.Prog, core.ModeSeq, machine.MustProfileParams("t3d", 1))
		if err != nil {
			driver.Fatal(tool, err)
		}
		ref, err := exec.Run(cs, exec.Options{})
		if err != nil {
			driver.Fatal(tool, err)
		}
		for _, name := range spec.CheckArrays {
			a := ref.Mem.ArrayData(ref.Mem.ArrayNamed(name))
			b := res.Mem.ArrayData(res.Mem.ArrayNamed(name))
			for i := range a {
				if a[i] != b[i] {
					driver.Fatal(tool, fmt.Errorf("verification FAILED: %s[%d] = %v, sequential %v", name, i, b[i], a[i]))
				}
			}
		}
		fmt.Println("verification PASSED: results identical to sequential run")
	}
}
