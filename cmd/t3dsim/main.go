// Command t3dsim runs one workload in one mode on the simulated Cray T3D
// and prints the cycle count and machine metrics.
//
// Usage:
//
//	t3dsim -app TOMCATV -mode ccdp -pes 16 [-scale small|paper] [-races] [-verify]
//	       [-topology flat|torus|XxYxZ]
//	       [-fault-rate 0.01] [-fault-kinds drop,late,spike,evict,skew] [-fault-seed 1]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/prof"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "MXM", "workload: MXM, VPENTA, TOMCATV or SWIM")
	mode := flag.String("mode", "ccdp", "execution mode: seq, base, ccdp or incoherent")
	pes := flag.Int("pes", 8, "number of PEs")
	scale := flag.String("scale", "small", "problem scale: small or paper")
	races := flag.Bool("races", false, "enable the epoch-model race detector (slow)")
	topology := flag.String("topology", "flat", "interconnect model: flat, torus (auto dims) or XxYxZ")
	verify := flag.Bool("verify", false, "also run sequentially and compare results")
	faultRate := flag.Float64("fault-rate", 0, "per-opportunity fault-injection probability (0 disables)")
	faultKinds := flag.String("fault-kinds", "all", "comma-separated fault kinds: drop,late,spike,evict,skew or all")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection RNG seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var pool []*workloads.Spec
	if *scale == "paper" {
		pool = workloads.Paper()
	} else {
		pool = workloads.Small()
	}
	var spec *workloads.Spec
	for _, s := range pool {
		if strings.EqualFold(s.Name, *app) {
			spec = s
		}
	}
	if spec == nil {
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	var m core.Mode
	switch strings.ToLower(*mode) {
	case "seq":
		m = core.ModeSeq
	case "base":
		m = core.ModeBase
	case "ccdp":
		m = core.ModeCCDP
	case "incoherent":
		m = core.ModeIncoherent
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	plan, err := buildPlan(*faultRate, *faultKinds, *faultSeed)
	if err != nil {
		fatal(err)
	}

	topo, err := noc.Parse(*topology)
	if err != nil {
		fatal(err)
	}
	mp := machine.T3D(*pes)
	mp.Topology = topo
	c, err := core.Compile(spec.Prog, m, mp)
	if err != nil {
		fatal(err)
	}
	res, err := exec.Run(c, exec.Options{DetectRaces: *races, Fault: plan})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s %v on %d PEs: %d cycles\n", spec.Name, m, *pes, res.Cycles)
	if plan.Enabled() {
		fmt.Println(plan)
	}
	fmt.Println(res.Stats.String())
	if res.Net != nil {
		fmt.Println(res.Net.String())
	}

	// The coherence safety oracle: any consumed stale word is a hard
	// failure in the coherent modes (INCOHERENT mode exists to exhibit
	// exactly these violations, so there they are only reported).
	if res.Stats.OracleViolations > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "t3dsim:", v.Error())
		}
		if m != core.ModeIncoherent {
			fatal(fmt.Errorf("%d coherence-oracle violations", res.Stats.OracleViolations))
		}
	}

	if *verify {
		cs, err := core.Compile(spec.Prog, core.ModeSeq, machine.T3D(1))
		if err != nil {
			fatal(err)
		}
		ref, err := exec.Run(cs, exec.Options{})
		if err != nil {
			fatal(err)
		}
		for _, name := range spec.CheckArrays {
			a := ref.Mem.ArrayData(ref.Mem.ArrayNamed(name))
			b := res.Mem.ArrayData(res.Mem.ArrayNamed(name))
			for i := range a {
				if a[i] != b[i] {
					fatal(fmt.Errorf("verification FAILED: %s[%d] = %v, sequential %v", name, i, b[i], a[i]))
				}
			}
		}
		fmt.Println("verification PASSED: results identical to sequential run")
	}
}

// buildPlan assembles a fault.Plan from the command-line flags.
func buildPlan(rate float64, kinds string, seed int64) (fault.Plan, error) {
	if rate == 0 {
		return fault.Plan{}, nil
	}
	ks, err := fault.ParseKinds(kinds)
	if err != nil {
		return fault.Plan{}, err
	}
	plan := fault.Plan{Seed: seed, Rate: rate, Kinds: ks}
	return plan, plan.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "t3dsim:", err)
	os.Exit(1)
}
