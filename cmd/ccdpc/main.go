// Command ccdpc is the CCDP "compiler" driver: it runs the lowering pass
// pipeline on a workload program and prints the phase reports — the epoch
// partition and potentially-stale references (stale reference analysis,
// §4.1), the prefetch target set (Figure 1), the scheduling decisions
// (Figure 2) — plus, on request, per-pass snapshots of the pipeline state
// and the provenance of any per-reference decision.
//
// Usage:
//
//	ccdpc -app MXM [-pes 8] [-scale small|paper] [-mode seq|base|ccdp|incoherent]
//	      [-machine-profile t3d|cxl-pcc|pim] [-domain-size D]
//	      [-phase stale|target|sched|all] [-dump]
//	      [-dump-after <pass>|all] [-dump-format text|json]
//	      [-explain <array>|#<id>|all] [-check]
//
// Examples:
//
//	ccdpc -app MXM -pes 8                      # the three phase reports
//	ccdpc -app SWIM -dump-after all            # snapshot after every pass
//	ccdpc -app MXM -dump-after stale-analysis  # one snapshot, text form
//	ccdpc -app MXM -dump-after all -dump-format json
//	ccdpc -app TOMCATV -explain A              # why each A reference was
//	                                           # marked/selected/dropped
//	ccdpc -app MXM -explain '#12'              # one reference by id
//	ccdpc -app VPENTA -explain all -check      # everything, with between-
//	                                           # pass invariant checking
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/parse"
	"repro/internal/pass"
)

const tool = "ccdpc"

func main() {
	app := flag.String("app", "MXM", "workload: MXM, VPENTA, TOMCATV or SWIM")
	file := flag.String("file", "", "compile a program from a source file instead of a built-in workload")
	pes := flag.Int("pes", 8, "number of PEs to compile for")
	profile := flag.String("machine-profile", "t3d", driver.ProfileUsage())
	domainSize := flag.Int("domain-size", 0,
		"override the profile's coherence-domain size (0 = profile default, 1 = per-PE domains)")
	scale := flag.String("scale", "small", "problem scale: small or paper")
	mode := flag.String("mode", "ccdp", "execution mode to lower for: seq, base, ccdp or incoherent")
	phase := flag.String("phase", "all", "phase to report: stale, target, sched or all")
	dump := flag.Bool("dump", false, "print the transformed program")
	dumpAfter := flag.String("dump-after", "", "print a pipeline snapshot after the named pass (or \"all\")")
	dumpFormat := flag.String("dump-format", "text", "snapshot format for -dump-after: text or json")
	explain := flag.String("explain", "", "print decision provenance: an array name, #<ref id>, or \"all\"")
	check := flag.Bool("check", false, "verify pipeline invariants between every pair of passes")
	flag.Parse()

	m, err := driver.ParseMode(*mode)
	if err != nil {
		driver.Fatal(tool, err)
	}
	switch *phase {
	case "stale", "target", "sched", "all":
	default:
		driver.Fatal(tool, fmt.Errorf("unknown phase %q: valid phases are stale, target, sched, all", *phase))
	}
	dumpPasses, err := selectDumpPasses(*dumpAfter, *dumpFormat, m)
	if err != nil {
		driver.Fatal(tool, err)
	}

	var prog *ir.Program
	var title string
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			driver.Fatal(tool, err)
		}
		prog, err = parse.Program(string(src))
		if err != nil {
			driver.Fatal(tool, err)
		}
		title = fmt.Sprintf("%s (from %s)", prog.Name, *file)
	} else {
		spec, err := driver.App(*app, *scale)
		if err != nil {
			driver.Fatal(tool, err)
		}
		prog = spec.Prog
		title = fmt.Sprintf("%s (%s)", spec.Name, spec.Description)
	}

	opts := core.Options{CheckInvariants: *check}
	if len(dumpPasses) > 0 {
		opts.Dump = func(name string, ctx *pass.Context) {
			if !dumpPasses[name] {
				return
			}
			fmt.Printf("=== after %s ===\n", name)
			if *dumpFormat == "json" {
				out, err := pass.SnapshotJSON(ctx)
				if err != nil {
					driver.Fatal(tool, err)
				}
				fmt.Printf("%s\n", out)
			} else {
				fmt.Print(pass.Snapshot(ctx))
			}
		}
	}

	mp, err := machine.ProfileParams(*profile, *pes)
	if err != nil {
		driver.Fatal(tool, err)
	}
	if *domainSize > 0 {
		mp.DomainSize = *domainSize
	}
	c, err := core.CompileOpt(prog, m, mp, opts)
	if err != nil {
		driver.Fatal(tool, err)
	}

	fmt.Printf("%s, compiled for %s on %d PEs\n\n", title, m, *pes)
	if m != core.ModeCCDP {
		fmt.Println(c.Report())
	} else {
		switch *phase {
		case "stale":
			fmt.Println(c.Stale.Report())
		case "target":
			fmt.Println(c.Targets.Report(c.Prog))
		case "sched":
			fmt.Println(c.Sched.Report())
		default:
			fmt.Println(c.Report())
		}
	}
	if *explain != "" {
		explainRefs(c, *explain)
	}
	if *dump {
		fmt.Println(ir.Format(c.Prog))
	}
}

// selectDumpPasses resolves -dump-after into the set of pass names to
// snapshot, validated against the pipeline the chosen mode actually runs.
func selectDumpPasses(arg, format string, m core.Mode) (map[string]bool, error) {
	if format != "text" && format != "json" {
		return nil, fmt.Errorf("unknown dump format %q: valid formats are text, json", format)
	}
	if arg == "" {
		return nil, nil
	}
	names := core.PassNames(m)
	out := map[string]bool{}
	if arg == "all" {
		for _, n := range names {
			out[n] = true
		}
		return out, nil
	}
	for _, n := range names {
		if n == arg {
			out[n] = true
			return out, nil
		}
	}
	return nil, fmt.Errorf("unknown pass %q for mode %s: valid passes are %s",
		arg, m, strings.Join(names, ", "))
}

// explainRefs prints the provenance filtered per the -explain argument.
func explainRefs(c *core.Compiled, arg string) {
	var filter func(*ir.Ref) bool
	label := arg
	switch {
	case arg == "all":
		filter = nil
		label = "all references"
	case strings.HasPrefix(arg, "#"):
		id, err := strconv.Atoi(arg[1:])
		if err != nil {
			driver.Fatal(tool, fmt.Errorf("bad -explain reference %q: want an array name, #<ref id>, or \"all\"", arg))
		}
		filter = func(r *ir.Ref) bool { return r != nil && int(r.ID) == id }
	default:
		filter = func(r *ir.Ref) bool {
			return r != nil && r.Array != nil && strings.EqualFold(r.Array.Name, arg)
		}
	}
	fmt.Printf("provenance (%s):\n", label)
	out := c.Prov.Explain(c.Prog, filter)
	if out == "" {
		fmt.Println("  no recorded decisions (nothing matched, or a mode without analysis passes)")
		return
	}
	fmt.Print(out)
}
