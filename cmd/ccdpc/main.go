// Command ccdpc is the CCDP "compiler" driver: it runs the three analysis
// phases of the paper on a workload program and prints their results — the
// epoch partition and potentially-stale references (stale reference
// analysis, §4.1), the prefetch target set (Figure 1), the scheduling
// decisions (Figure 2) — and optionally the transformed program.
//
// Usage:
//
//	ccdpc -app MXM [-pes 8] [-scale small|paper] [-phase stale|target|sched|all] [-dump]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/parse"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "MXM", "workload: MXM, VPENTA, TOMCATV or SWIM")
	file := flag.String("file", "", "compile a program from a source file instead of a built-in workload")
	pes := flag.Int("pes", 8, "number of PEs to compile for")
	scale := flag.String("scale", "small", "problem scale: small or paper")
	phase := flag.String("phase", "all", "phase to report: stale, target, sched or all")
	dump := flag.Bool("dump", false, "print the transformed program")
	flag.Parse()

	var prog *ir.Program
	var title string
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdpc:", err)
			os.Exit(1)
		}
		prog, err = parse.Program(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdpc:", err)
			os.Exit(1)
		}
		title = fmt.Sprintf("%s (from %s)", prog.Name, *file)
	} else {
		var pool []*workloads.Spec
		if *scale == "paper" {
			pool = workloads.Paper()
		} else {
			pool = workloads.Small()
		}
		var spec *workloads.Spec
		for _, s := range pool {
			if strings.EqualFold(s.Name, *app) {
				spec = s
			}
		}
		if spec == nil {
			fmt.Fprintf(os.Stderr, "ccdpc: unknown app %q\n", *app)
			os.Exit(1)
		}
		prog = spec.Prog
		title = fmt.Sprintf("%s (%s)", spec.Name, spec.Description)
	}

	c, err := core.Compile(prog, core.ModeCCDP, machine.T3D(*pes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpc:", err)
		os.Exit(1)
	}

	fmt.Printf("%s, compiled for %d PEs\n\n", title, *pes)
	switch *phase {
	case "stale":
		fmt.Println(c.Stale.Report())
	case "target":
		fmt.Println(c.Targets.Report(c.Prog))
	case "sched":
		fmt.Println(c.Sched.Report())
	default:
		fmt.Println(c.Stale.Report())
		fmt.Println(c.Targets.Report(c.Prog))
		fmt.Println(c.Sched.Report())
	}
	if *dump {
		fmt.Println(ir.Format(c.Prog))
	}
}
