// Quickstart: build a tiny parallel program, compile it with the CCDP
// pipeline, run it on the simulated Cray T3D, and check the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/machine"
)

func main() {
	// A two-epoch program: epoch 0 initializes a distributed array A in
	// parallel; epoch 1 reads it REVERSED, so most PEs read data another PE
	// wrote — the cache-coherence hazard the CCDP scheme handles.
	const n = 256
	b := ir.NewBuilder("quickstart")
	a := b.SharedArray("A", n)
	c := b.SharedArray("C", n)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(n-1),
			ir.Set(ir.At(a, ir.I("i")), ir.Mul(ir.IV(ir.I("i")), ir.IV(ir.I("i"))))),
		ir.DoAll("j", ir.K(0), ir.K(n-1),
			ir.Set(ir.At(c, ir.I("j")),
				ir.L(ir.At(a, ir.I("j").Neg().AddConst(n-1))))),
	)
	prog := b.Build()

	for _, mode := range []core.Mode{core.ModeSeq, core.ModeBase, core.ModeCCDP} {
		pes := 8
		if mode == core.ModeSeq {
			pes = 1
		}
		compiled, err := core.Compile(prog, mode, machine.T3D(pes))
		if err != nil {
			log.Fatal(err)
		}
		res, err := exec.Run(compiled, exec.Options{FailOnStale: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5v on %d PEs: %8d cycles  (stale-value reads: %d)\n",
			mode, pes, res.Cycles, res.Stats.StaleValueReads)

		// The compiler found the reversed read stale and prefetched it:
		if mode == core.ModeCCDP {
			fmt.Println("\nCCDP analysis of the reversed read:")
			fmt.Print(compiled.Stale.Report())
			fmt.Print(compiled.Sched.Report())
		}

		// Spot-check results: C(j) == A(n-1-j) == (n-1-j)².
		data := res.Mem.ArrayData(c)
		for j := int64(0); j < n; j++ {
			want := float64((n - 1 - j) * (n - 1 - j))
			if data[j] != want {
				log.Fatalf("%v: C[%d] = %v, want %v", mode, j, data[j], want)
			}
		}
	}
	fmt.Println("\nall modes produced identical, coherent results")
}
