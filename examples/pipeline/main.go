// Pipeline: inspect the three compiler phases of the paper on TOMCATV —
// stale reference analysis (§4.1), prefetch target analysis (Figure 1) and
// prefetch scheduling (Figure 2) — and print the transformed code of the
// mesh-residual epoch.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/workloads"
)

func main() {
	spec := workloads.TOMCATV(65, 2)
	compiled, err := core.Compile(spec.Prog, core.ModeCCDP, machine.T3D(8))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Phase 1: stale reference analysis (paper §4.1) ===")
	fmt.Println(compiled.Stale.Report())

	fmt.Println("=== Phase 2: prefetch target analysis (paper Figure 1) ===")
	fmt.Println(compiled.Targets.Report(compiled.Prog))

	fmt.Println("=== Phase 3: prefetch scheduling (paper Figure 2) ===")
	fmt.Println(compiled.Sched.Report())

	fmt.Println("=== Transformed program (first epochs of main) ===")
	text := ir.Format(compiled.Prog)
	// Print up to the forward-elimination loop for brevity.
	if idx := strings.Index(text, "do j1"); idx > 0 {
		if end := strings.Index(text[idx:], "enddo"); end > 0 {
			text = text[:idx+end+len("enddo")] + "\n  ... (truncated)"
		}
	}
	fmt.Println(text)
}
