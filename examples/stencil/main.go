// Stencil: a 1-D Jacobi smoother with genuine halo traffic, showing (1) how
// incoherent caching silently corrupts results, (2) how the engine's
// stale-value checker catches it, and (3) how the CCDP scheme fixes it with
// invalidation + prefetching at a fraction of the non-caching BASE cost.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/machine"
)

func buildStencil(n, steps int64) *ir.Program {
	b := ir.NewBuilder("stencil")
	a := b.SharedArray("A", n)
	tmp := b.SharedArray("T", n)
	b.Routine("main",
		ir.DoAll("i0", ir.K(0), ir.K(n-1),
			ir.Set(ir.At(a, ir.I("i0")), ir.Mul(ir.IV(ir.I("i0")), ir.IV(ir.I("i0"))))),
		ir.DoSerial("t", ir.K(1), ir.K(steps),
			// Each PE's chunk-edge reads A(i±1) owned by its neighbour:
			// potentially stale after the neighbour's update.
			ir.DoAll("i", ir.K(1), ir.K(n-2),
				ir.Set(ir.At(tmp, ir.I("i")),
					ir.Mul(ir.N(0.5),
						ir.Add(ir.L(ir.At(a, ir.I("i").AddConst(-1))),
							ir.L(ir.At(a, ir.I("i").AddConst(1))))))),
			ir.DoAll("j", ir.K(1), ir.K(n-2),
				ir.Set(ir.At(a, ir.I("j")), ir.L(ir.At(tmp, ir.I("j"))))),
		),
	)
	return b.Build()
}

func main() {
	prog := buildStencil(4096, 10)
	const pes = 16

	run := func(mode core.Mode, p int) *exec.Result {
		c, err := core.Compile(prog, mode, machine.T3D(p))
		if err != nil {
			log.Fatal(err)
		}
		r, err := exec.Run(c, exec.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	seq := run(core.ModeSeq, 1)
	inc := run(core.ModeIncoherent, pes)
	base := run(core.ModeBase, pes)
	ccdp := run(core.ModeCCDP, pes)

	diff := func(r *exec.Result) int {
		n := 0
		a := prog.ArrayByName("A")
		x, y := seq.Mem.ArrayData(a), r.Mem.ArrayData(a)
		for i := range x {
			if x[i] != y[i] {
				n++
			}
		}
		return n
	}

	fmt.Printf("sequential:        %10d cycles\n", seq.Cycles)
	fmt.Printf("incoherent caching:%10d cycles  stale reads=%-6d wrong elements=%d\n",
		inc.Cycles, inc.Stats.StaleValueReads, diff(inc))
	fmt.Printf("BASE (no caching): %10d cycles  stale reads=%-6d wrong elements=%d\n",
		base.Cycles, base.Stats.StaleValueReads, diff(base))
	fmt.Printf("CCDP:              %10d cycles  stale reads=%-6d wrong elements=%d\n",
		ccdp.Cycles, ccdp.Stats.StaleValueReads, diff(ccdp))
	fmt.Printf("\nCCDP vs BASE improvement: %.1f%%  (prefetches issued: %d, vector words: %d, lines invalidated: %d)\n",
		100*(1-float64(ccdp.Cycles)/float64(base.Cycles)),
		ccdp.Stats.PrefetchIssued, ccdp.Stats.VectorWords, ccdp.Stats.InvalidatedLines)

	if inc.Stats.StaleValueReads == 0 || diff(inc) == 0 {
		log.Fatal("expected the incoherent run to corrupt results")
	}
	if ccdp.Stats.StaleValueReads != 0 || diff(ccdp) != 0 {
		log.Fatal("CCDP run was not coherent")
	}
}
