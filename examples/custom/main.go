// Custom: write a program in the textual IR form, parse it, compile it with
// CCDP and run it — the path an end user takes for their own kernels
// (cmd/ccdpc -file does the same from a file on disk).
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/parse"
	"repro/internal/trace"
)

// A red-black Gauss-Seidel-flavoured sweep written by hand: two interleaved
// half-sweeps per step, each reading the other colour's neighbours.
const src = `
program redblack
  param N = 512
  real U(512)  ! shared, dist=block
  real F(512)  ! shared, dist=block
routine main
  doall[static] i = 0, N - 1 align=512
    U(i) = real(i)
    F(i) = (real(i) / 64)
  enddo
  do t = 1, 6
    doall[static] r = 1, 254 align=256
      U(2*r) = ((U(2*r - 1) + U(2*r + 1)) * 0.5)
    enddo
    doall[static] b = 0, 254 align=256
      U(2*b + 1) = (((U(2*b) + U(2*b + 2)) * 0.5) + F(2*b + 1))
    enddo
  enddo
end
`

func main() {
	prog, err := parse.Program(src)
	if err != nil {
		log.Fatal(err)
	}
	const pes = 8

	compiled, err := core.Compile(prog, core.ModeCCDP, machine.T3D(pes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(compiled.Stale.Report())
	fmt.Println(compiled.Sched.Report())

	tr := trace.New(pes)
	res, err := exec.Run(compiled, exec.Options{FailOnStale: true, Trace: tr})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran in %d simulated cycles, %d stale-value reads\n\n",
		res.Cycles, res.Stats.StaleValueReads)
	fmt.Println(tr.Summary())

	// Reuse-distance analysis of PE 0's reference stream: how big a cache
	// would this kernel want?
	hist, cold := tr.ReuseDistances(0, compiled.Machine.LineWords)
	fmt.Println("predicted LRU hit ratio by cache size (PE 0):")
	for _, lines := range []int{16, 64, 256, 1024} {
		fmt.Printf("  %4d lines: %5.1f%%\n", lines, 100*trace.HitRatioForCache(hist, cold, lines))
	}

	// Compare against BASE for the headline number.
	base, err := core.Compile(prog, core.ModeBase, machine.T3D(pes))
	if err != nil {
		log.Fatal(err)
	}
	bres, err := exec.Run(base, exec.Options{FailOnStale: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBASE %d cycles → CCDP %d cycles: %.1f%% improvement\n",
		bres.Cycles, res.Cycles, 100*(1-float64(res.Cycles)/float64(bres.Cycles)))
}
