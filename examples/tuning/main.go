// Tuning: sweep the prefetch scheduler's empirical parameters — the
// software-pipelining ahead-distance range and the moving-back window —
// exactly the knobs the paper says "can be empirically determined and tuned
// to suit a particular system" (§4.3.2), on the SWIM workload.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/workloads"
)

func main() {
	spec := workloads.SWIM(129, 3)
	const pes = 8

	run := func(tune func(*machine.Params)) int64 {
		mp := machine.T3D(pes)
		tune(&mp)
		c, err := core.Compile(spec.Prog, core.ModeCCDP, mp)
		if err != nil {
			log.Fatal(err)
		}
		r, err := exec.Run(c, exec.Options{FailOnStale: true})
		if err != nil {
			log.Fatal(err)
		}
		return r.Cycles
	}

	fmt.Println("SWIM 129², 3 steps, 8 PEs — scheduler parameter sweeps")
	fmt.Println("\nmax software-pipelining ahead distance (iterations):")
	for _, ahead := range []int64{1, 2, 4, 8, 16} {
		cycles := run(func(mp *machine.Params) {
			mp.MaxAheadIters = ahead
			if mp.MinAheadIters > ahead {
				mp.MinAheadIters = ahead
			}
			// Disable vector prefetching so SP actually fires.
			mp.VectorMaxWords = 0
		})
		fmt.Printf("  ahead ≤ %2d: %10d cycles\n", ahead, cycles)
	}

	fmt.Println("\nminimum useful moving-back distance (cycles):")
	for _, dist := range []int64{5, 20, 40, 200, 2000} {
		cycles := run(func(mp *machine.Params) {
			mp.MinMoveBackCycles = dist
			if mp.MaxMoveBackCycles < dist {
				mp.MaxMoveBackCycles = dist
			}
			mp.VectorMaxWords = 0
			mp.PrefetchQueueWords = 1 // starve SP so MBP/bypass decide
		})
		fmt.Printf("  min dist %4d: %10d cycles\n", dist, cycles)
	}

	fmt.Println("\nvector prefetch capacity cap (words):")
	for _, cap := range []int64{0, 64, 128, 256, 512, 1024} {
		cycles := run(func(mp *machine.Params) { mp.VectorMaxWords = cap })
		fmt.Printf("  cap %5d: %10d cycles\n", cap, cycles)
	}
}
