// Package pfq models the T3D's per-PE prefetch hardware: the DTB Annex
// setup path and the 16-word prefetch queue. A prefetch instruction moves
// one 64-bit word from a (remote) memory into the queue; the processor
// later extracts it. Entries occupy queue slots from issue until
// extraction; issuing into a full queue drops the prefetch (the read then
// falls back to a bypass-cache fetch, paper §3.2).
//
// The real queue is a FIFO popped in issue order; the model matches entries
// by address, which is equivalent for the compiler-scheduled access
// patterns (each issued word is extracted exactly once, in order).
//
// The queue is allocation-free in steady state, which matters because it
// sits on the engine's per-word hot path: the backing array is allocated
// once in New with the full capacity, Issue appends within that capacity,
// Take deletes by sliding within the same array, and Flush re-slices to
// zero length. BenchmarkQueueSteadyState pins this at 0 allocs/op.
package pfq

// Entry is one outstanding or arrived prefetched word.
type Entry struct {
	Addr    int64
	Val     float64
	Gen     uint32
	ReadyAt int64 // cycle at which the word arrives in the queue
}

// Queue is a bounded per-PE prefetch queue.
type Queue struct {
	cap     int
	entries []Entry

	// Counters.
	Issued, Dropped, Consumed, Flushed int64
}

// New builds a queue with the given capacity in words.
func New(capacity int) *Queue {
	return &Queue{cap: capacity, entries: make([]Entry, 0, capacity)}
}

// NewFleet builds count queues of the same capacity out of one entry slab
// (two allocations total; see cache.NewFleet for why).
func NewFleet(count, capacity int) []*Queue {
	qs := make([]Queue, count)
	slab := make([]Entry, count*capacity)
	out := make([]*Queue, count)
	for i := range qs {
		qs[i].cap = capacity
		qs[i].entries = slab[i*capacity : i*capacity : (i+1)*capacity]
		out[i] = &qs[i]
	}
	return out
}

// Reset empties the queue and zeroes the counters, returning it to its
// just-built state without reallocating (engine reuse across runs).
func (q *Queue) Reset() {
	q.entries = q.entries[:0]
	q.Issued, q.Dropped, q.Consumed, q.Flushed = 0, 0, 0, 0
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.cap }

// Len returns the number of occupied slots.
func (q *Queue) Len() int { return len(q.entries) }

// Issue inserts a prefetched word; it reports false (and counts a drop)
// when the queue is full.
func (q *Queue) Issue(e Entry) bool {
	if len(q.entries) >= q.cap {
		q.Dropped++
		return false
	}
	q.entries = append(q.entries, e)
	q.Issued++
	return true
}

// Take extracts the oldest entry for addr, reporting whether one existed.
func (q *Queue) Take(addr int64) (Entry, bool) {
	for i := range q.entries {
		if q.entries[i].Addr == addr {
			e := q.entries[i]
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			q.Consumed++
			return e, true
		}
	}
	return Entry{}, false
}

// Entries exposes the occupied slots, oldest first, for in-place repair.
// The optimistic PDES validation phase (internal/exec) rewrites entries'
// Val/Gen with their canonical memory contents; it can treat every entry as
// issued in the current epoch because the engine flushes the queue at each
// epoch barrier. The slice aliases the queue's storage and is valid until
// the next Issue, Take or Flush.
func (q *Queue) Entries() []Entry { return q.entries }

// Flush discards all entries (epoch boundary) and returns how many words
// were fetched but never used.
func (q *Queue) Flush() int64 {
	n := int64(len(q.entries))
	q.Flushed += n
	q.entries = q.entries[:0]
	return n
}

// Snapshot is a saved queue state for the optimistic PDES rollback path
// (internal/exec): the engine snapshots every PE's queue at speculative
// epoch entry and restores the ones that mis-speculate. The buffer is
// reused across epochs, so steady-state saves allocate nothing.
type Snapshot struct {
	entries                            []Entry
	issued, dropped, consumed, flushed int64
}

// Save records the queue's occupied slots and counters into s.
func (q *Queue) Save(s *Snapshot) {
	s.entries = append(s.entries[:0], q.entries...)
	s.issued, s.dropped, s.consumed, s.flushed = q.Issued, q.Dropped, q.Consumed, q.Flushed
}

// Restore returns the queue to the state Save recorded.
func (q *Queue) Restore(s *Snapshot) {
	q.entries = append(q.entries[:0], s.entries...)
	q.Issued, q.Dropped, q.Consumed, q.Flushed = s.issued, s.dropped, s.consumed, s.flushed
}
