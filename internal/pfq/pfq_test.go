package pfq

import "testing"

func TestIssueTakeFIFO(t *testing.T) {
	q := New(4)
	for i := int64(0); i < 4; i++ {
		if !q.Issue(Entry{Addr: 100 + i, Val: float64(i), ReadyAt: i}) {
			t.Fatalf("issue %d failed", i)
		}
	}
	if q.Len() != 4 {
		t.Fatalf("len = %d", q.Len())
	}
	e, ok := q.Take(102)
	if !ok || e.Val != 2 {
		t.Errorf("Take = %+v %v", e, ok)
	}
	if q.Len() != 3 {
		t.Errorf("len after take = %d", q.Len())
	}
	if _, ok := q.Take(102); ok {
		t.Error("double take succeeded")
	}
}

func TestDropOnFull(t *testing.T) {
	q := New(2)
	q.Issue(Entry{Addr: 1})
	q.Issue(Entry{Addr: 2})
	if q.Issue(Entry{Addr: 3}) {
		t.Error("issue into full queue accepted")
	}
	if q.Dropped != 1 || q.Issued != 2 {
		t.Errorf("dropped=%d issued=%d", q.Dropped, q.Issued)
	}
}

func TestDuplicateAddrTakesOldest(t *testing.T) {
	q := New(4)
	q.Issue(Entry{Addr: 5, Val: 1})
	q.Issue(Entry{Addr: 5, Val: 2})
	e, _ := q.Take(5)
	if e.Val != 1 {
		t.Errorf("took %v, want oldest", e.Val)
	}
}

func TestFlushCountsUnused(t *testing.T) {
	q := New(4)
	q.Issue(Entry{Addr: 1})
	q.Issue(Entry{Addr: 2})
	q.Take(1)
	if n := q.Flush(); n != 1 {
		t.Errorf("flushed %d, want 1", n)
	}
	if q.Len() != 0 {
		t.Error("queue not empty after flush")
	}
	// Capacity restored.
	for i := int64(0); i < 4; i++ {
		if !q.Issue(Entry{Addr: i}) {
			t.Fatal("capacity not restored after flush")
		}
	}
}

// BenchmarkQueueSteadyState pins the queue's zero-allocation guarantee: a
// full issue/take/flush cycle at capacity must not touch the heap after New.
func BenchmarkQueueSteadyState(b *testing.B) {
	q := New(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := int64(0); w < 16; w++ {
			q.Issue(Entry{Addr: w, Val: float64(w), ReadyAt: int64(i)})
		}
		for w := int64(0); w < 8; w++ {
			q.Take(w)
		}
		q.Flush()
	}
}
