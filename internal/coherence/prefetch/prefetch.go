// Package prefetch is the pluggable runtime-prefetcher registry of the
// hardware coherence arena. Where CCDP's prefetches are compiler-placed,
// a hardware directory machine typically pairs its caches with a runtime
// prefetch engine that watches the demand stream; the arena's HW modes
// can enable one (-hw-prefetch) so the comparison covers HW-dir and
// HW-dir+prefetch points.
//
// Prefetchers implement one interface — observe a demand access, suggest
// line-aligned addresses to fetch — and register themselves by name, so
// new designs drop in without touching the engine. The two built-ins are
// the classic pair every evaluation starts from:
//
//   - next-line: on a demand miss to line L, fetch L+1.
//   - stride: a PC-indexed table tracks per-instruction strides and
//     fetches ahead once a stride repeats (confidence ≥ 2). The compiled
//     reference site's RefID is the PC analog.
//
// Prefetchers are per-PE (private state, like the hardware) and must be
// deterministic: the engine calls them from the sequential HW-mode epoch
// loop, and the same demand stream must produce the same suggestions.
package prefetch

import (
	"fmt"
	"sort"
	"strings"
)

// Prefetcher watches one PE's demand-access stream and suggests prefetch
// candidates.
type Prefetcher interface {
	// Name returns the registry name the prefetcher was built under.
	Name() string
	// Observe is called on every demand access: pc identifies the access
	// site, addr is the word address, miss reports whether the access
	// missed the cache. It appends suggested line-aligned addresses to out
	// and returns it (the engine bounds how many it actually issues).
	Observe(pc int64, addr int64, miss bool, out []int64) []int64
	// Reset returns the prefetcher to its just-built state (engine reuse
	// across runs).
	Reset()
}

// Factory builds a prefetcher for a cache geometry.
type Factory func(lineWords int64) Prefetcher

var registry = map[string]Factory{}

// Register installs a prefetcher factory under a name. Registering a
// duplicate name panics — it is a wiring bug, not a runtime condition.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("prefetch: duplicate prefetcher %q", name))
	}
	registry[name] = f
}

// New builds the named prefetcher. Unknown names report the valid set,
// like the driver's mode and app lookups.
func New(name string, lineWords int64) (Prefetcher, error) {
	f, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown prefetcher %q: valid prefetchers are %s",
			name, strings.Join(Names(), ", "))
	}
	return f(lineWords), nil
}

// Names returns the registered prefetcher names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("next-line", func(lineWords int64) Prefetcher {
		return &nextLine{lineWords: lineWords}
	})
	Register("stride", func(lineWords int64) Prefetcher {
		return &stride{lineWords: lineWords, table: make([]strideEntry, strideTableSize)}
	})
}

// --- next-line ---------------------------------------------------------------

// nextLine fetches the sequentially next cache line on every demand miss.
type nextLine struct {
	lineWords int64
}

func (p *nextLine) Name() string { return "next-line" }
func (p *nextLine) Reset()       {}

func (p *nextLine) Observe(pc int64, addr int64, miss bool, out []int64) []int64 {
	if !miss {
		return out
	}
	la := addr - addr%p.lineWords
	return append(out, la+p.lineWords)
}

// --- stride ------------------------------------------------------------------

// strideTableSize is the PC-indexed table's entry count (power of two).
const strideTableSize = 256

// strideConfidence is the repeat count a stride needs before prefetches
// issue for it.
const strideConfidence = 2

// strideDegree is how many strides ahead one observation suggests.
const strideDegree = 2

type strideEntry struct {
	pc     int64
	last   int64 // last address this PC accessed
	stride int64
	conf   int8
	live   bool
}

// stride is the classic PC-indexed stride prefetcher: per access site,
// learn the address delta between consecutive accesses; once it repeats,
// fetch the lines the next strides will touch.
type stride struct {
	lineWords int64
	table     []strideEntry
}

func (p *stride) Name() string { return "stride" }

func (p *stride) Reset() {
	for i := range p.table {
		p.table[i] = strideEntry{}
	}
}

func (p *stride) Observe(pc int64, addr int64, miss bool, out []int64) []int64 {
	e := &p.table[uint64(pc)%strideTableSize]
	if !e.live || e.pc != pc {
		// Cold or conflicting entry: (re)allocate. PC conflicts evict —
		// the table is direct-mapped like the hardware it models.
		*e = strideEntry{pc: pc, last: addr, live: true}
		return out
	}
	d := addr - e.last
	e.last = addr
	if d == 0 {
		return out
	}
	if d == e.stride {
		if e.conf < strideConfidence {
			e.conf++
		}
	} else {
		e.stride = d
		e.conf = 0
		return out
	}
	if e.conf < strideConfidence {
		return out
	}
	// Confident: suggest the lines the next strideDegree strides land in.
	prev := addr - addr%p.lineWords
	for k := int64(1); k <= strideDegree; k++ {
		la := addr + k*e.stride
		if la < 0 {
			break
		}
		la -= la % p.lineWords
		if la != prev {
			out = append(out, la)
			prev = la
		}
	}
	return out
}
