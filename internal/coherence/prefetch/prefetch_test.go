package prefetch

import (
	"reflect"
	"testing"
)

func TestRegistryNamesAndErrors(t *testing.T) {
	names := Names()
	if !reflect.DeepEqual(names, []string{"next-line", "stride"}) {
		t.Fatalf("Names() = %v", names)
	}
	if _, err := New("warp", 4); err == nil {
		t.Fatal("unknown prefetcher did not error")
	} else if got := err.Error(); !reflect.DeepEqual(got,
		`prefetch: unknown prefetcher "warp": valid prefetchers are next-line, stride`) {
		t.Fatalf("error = %q", got)
	}
	// Lookup is case/space-insensitive like the driver's parsers.
	p, err := New(" Next-Line ", 4)
	if err != nil || p.Name() != "next-line" {
		t.Fatalf("New(\" Next-Line \") = %v, %v", p, err)
	}
}

func TestNextLine(t *testing.T) {
	p, _ := New("next-line", 4)
	if out := p.Observe(1, 10, false, nil); len(out) != 0 {
		t.Fatalf("hit suggested %v", out)
	}
	out := p.Observe(1, 10, true, nil)
	if !reflect.DeepEqual(out, []int64{12}) {
		t.Fatalf("miss at 10 suggested %v, want [12]", out)
	}
}

// TestStrideLearnsAndFetchesAhead drives a unit-stride-by-row access
// pattern (stride 8 words, PC fixed) and checks the prefetcher stays
// quiet while learning, then suggests the next strides' lines.
func TestStrideLearnsAndFetchesAhead(t *testing.T) {
	p, _ := New("stride", 4)
	var out []int64
	// Learning: first touch allocates, second sets the stride, third and
	// fourth build confidence.
	for _, addr := range []int64{100, 108, 116} {
		out = p.Observe(7, addr, true, out[:0])
		if len(out) != 0 {
			t.Fatalf("suggested %v while learning at %d", out, addr)
		}
	}
	out = p.Observe(7, 124, true, out[:0])
	// Confident at stride 8: next lines are (124+8)&^3=132 and (124+16)&^3=140.
	if !reflect.DeepEqual(out, []int64{132, 140}) {
		t.Fatalf("confident suggestion = %v, want [132 140]", out)
	}
	// A broken stride resets confidence and goes quiet again.
	out = p.Observe(7, 1000, true, out[:0])
	if len(out) != 0 {
		t.Fatalf("suggested %v right after a stride break", out)
	}
}

// TestStrideSmallStrideDedup: strides inside one line must not suggest
// the same line twice in one observation.
func TestStrideSmallStrideDedup(t *testing.T) {
	p, _ := New("stride", 4)
	for _, addr := range []int64{0, 1, 2, 3} {
		p.Observe(3, addr, true, nil)
	}
	out := p.Observe(3, 4, true, nil)
	// Stride 1 from addr 4: next strides land at 5 and 6 — both line 4,
	// which is also addr's own line, so nothing new to fetch.
	if len(out) != 0 {
		t.Fatalf("intra-line strides suggested %v", out)
	}
}

func TestStrideReset(t *testing.T) {
	p, _ := New("stride", 4)
	for _, addr := range []int64{100, 108, 116, 124} {
		p.Observe(7, addr, true, nil)
	}
	p.Reset()
	if out := p.Observe(7, 132, true, nil); len(out) != 0 {
		t.Fatalf("suggested %v after Reset", out)
	}
}

// TestStrideDeterministic: the same stream yields the same suggestions.
func TestStrideDeterministic(t *testing.T) {
	run := func() []int64 {
		p, _ := New("stride", 4)
		var all []int64
		for pc := int64(0); pc < 3; pc++ {
			for i := int64(0); i < 16; i++ {
				all = p.Observe(pc, 64*pc+i*6, i%2 == 0, all)
			}
		}
		return all
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("stream produced no suggestions — test is vacuous")
	}
}
