package coherence

import (
	"math/rand"
	"reflect"
	"testing"
)

func sharers(d *Directory, line int64, home int) []int {
	return d.Sharers(line, home, nil)
}

// TestFullMapProtocolFlow walks one line through the canonical sequence:
// exclusive fill, downgrade on a second reader, upgrade invalidation, and
// a write miss clearing the set.
func TestFullMapProtocolFlow(t *testing.T) {
	d := NewDirectory(Config{Org: OrgFullMap}, 8, 64)

	r := d.Read(5, 0, 2)
	if !r.Excl || r.Recall != -1 {
		t.Fatalf("first read: %+v, want exclusive grant, no recall", r)
	}
	r = d.Read(5, 0, 6)
	if r.Excl {
		t.Fatalf("second read got exclusive: %+v", r)
	}
	if r.Recall != 2 {
		t.Fatalf("second read recall = %d, want 2", r.Recall)
	}
	if got := sharers(d, 5, 0); !reflect.DeepEqual(got, []int{2, 6}) {
		t.Fatalf("sharers = %v, want [2 6]", got)
	}

	// PE 6 writes: PE 2 must be invalidated; writer holds its copy.
	w := d.Write(5, 0, 6, true)
	if !reflect.DeepEqual(w.Sharers, []int{2}) || w.Broadcast {
		t.Fatalf("upgrade: %+v, want invalidate [2]", w)
	}
	if got := sharers(d, 5, 0); !reflect.DeepEqual(got, []int{6}) {
		t.Fatalf("after upgrade sharers = %v, want [6]", got)
	}

	// A third PE reads: the Modified owner is recalled.
	r = d.Read(5, 0, 0)
	if r.Recall != 6 || r.Excl {
		t.Fatalf("read after write: %+v, want recall of 6", r)
	}

	// Write miss (no-write-allocate): everyone is invalidated, line ends
	// uncached, and the next reader gets an exclusive grant again.
	w = d.Write(5, 0, 3, false)
	if !reflect.DeepEqual(w.Sharers, []int{0, 6}) {
		t.Fatalf("write miss: %+v, want invalidate [0 6]", w)
	}
	if got := sharers(d, 5, 0); len(got) != 0 {
		t.Fatalf("after write miss sharers = %v, want none", got)
	}
	if r = d.Read(5, 0, 1); !r.Excl {
		t.Fatalf("read of uncached line not exclusive: %+v", r)
	}
}

// TestLimitedPointerOverflowBroadcast pins Dir_i_B's defining behavior:
// while sharers fit the i pointers, invalidations are precise; the
// (i+1)-th sharer overflows the entry, and the next write must broadcast
// to every other PE.
func TestLimitedPointerOverflowBroadcast(t *testing.T) {
	const numPE = 8
	d := NewDirectory(Config{Org: OrgLimited, Pointers: 2}, numPE, 16)

	d.Read(3, 0, 1)
	d.Read(3, 0, 4)
	// Two sharers fit two pointers: a write invalidates precisely.
	w := d.Write(3, 0, 1, true)
	if w.Broadcast || !reflect.DeepEqual(w.Sharers, []int{4}) {
		t.Fatalf("precise write: %+v, want [4], no broadcast", w)
	}

	// Refill to two sharers, then a third overflows the entry.
	d.Read(3, 0, 4)
	d.Read(3, 0, 7)
	if got := sharers(d, 3, 0); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("overflowed sharers = %v, want all PEs", got)
	}
	w = d.Write(3, 0, 4, true)
	if !w.Broadcast {
		t.Fatalf("post-overflow write did not broadcast: %+v", w)
	}
	want := []int{0, 1, 2, 3, 5, 6, 7} // everyone but the writer
	if !reflect.DeepEqual(w.Sharers, want) {
		t.Fatalf("broadcast targets = %v, want %v", w.Sharers, want)
	}
	// The write resets the entry: the writer is a precise pointer again.
	w = d.Write(3, 0, 4, true)
	if w.Broadcast || len(w.Sharers) != 0 {
		t.Fatalf("entry not reset after broadcast: %+v", w)
	}
}

// TestLimitedPointerSingleDefault checks that with the default single
// pointer (Dir_1_B) the second sharer already triggers overflow — the
// configuration the HW-dir-LP mode runs.
func TestLimitedPointerSingleDefault(t *testing.T) {
	d := NewDirectory(Config{Org: OrgLimited}, 4, 8)
	d.Read(0, 0, 0)
	w := d.Write(0, 0, 0, true)
	if w.Broadcast || len(w.Sharers) != 0 {
		t.Fatalf("sole sharer write: %+v", w)
	}
	d.Read(0, 0, 1)
	w = d.Write(0, 0, 1, true)
	if !w.Broadcast {
		t.Fatalf("two sharers on one pointer should broadcast: %+v", w)
	}
}

// TestSparseEvictionInvalidation fills one sparse set beyond its
// associativity and checks the LRU entry is evicted with its sharers
// reported for invalidation.
func TestSparseEvictionInvalidation(t *testing.T) {
	// 4 entries, 2 ways → 2 sets per home. Lines with the same (home,
	// line % 2) collide.
	d := NewDirectory(Config{Org: OrgSparse, SparseLines: 4, SparseWays: 2}, 4, 64)

	d.Read(0, 0, 1) // set 0, way A
	d.Read(2, 0, 2) // set 0, way B
	d.Read(2, 0, 3)
	r := d.Read(4, 0, 0) // set 0 full → evicts LRU entry (line 0)
	if r.EvictedLine != 0 {
		t.Fatalf("evicted line = %d, want 0", r.EvictedLine)
	}
	if !reflect.DeepEqual(r.EvictedSharers, []int{1}) {
		t.Fatalf("evicted sharers = %v, want [1]", r.EvictedSharers)
	}
	if d.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", d.Evictions)
	}
	// Line 2's entry survived (it was more recently used).
	if got := sharers(d, 2, 0); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("surviving entry sharers = %v, want [2 3]", got)
	}
	// The evicted line is gone: a write to it finds no sharers.
	if w := d.Write(0, 0, 2, false); len(w.Sharers) != 0 {
		t.Fatalf("write to evicted line found sharers: %+v", w)
	}
}

// TestSparseWriteReleasesEntry: a write miss leaves the line uncached, so
// its entry must be freed (capacity back for other lines).
func TestSparseWriteReleasesEntry(t *testing.T) {
	d := NewDirectory(Config{Org: OrgSparse, SparseLines: 2, SparseWays: 1}, 2, 8)
	d.Read(0, 0, 1)
	d.Write(0, 0, 0, false) // invalidates PE 1, frees the entry
	r := d.Read(2, 0, 1)    // same set: must not evict anything
	if r.EvictedLine != -1 || d.Evictions != 0 {
		t.Fatalf("freed entry was not reused: %+v evictions=%d", r, d.Evictions)
	}
}

// TestSparseDirectoryInvariant is the property test: under a random
// protocol-respecting workload, any line a model cache still holds has a
// live directory entry whose sharer set contains the holder (the directory
// tracks supersets — silent clean drops never remove bits, and entry
// evictions always invalidate). Run with -race in CI.
func TestSparseDirectoryInvariant(t *testing.T) {
	const (
		numPE    = 6
		numLines = 96
		steps    = 4000
	)
	rng := rand.New(rand.NewSource(7))
	d := NewDirectory(Config{Org: OrgSparse, SparseLines: 8, SparseWays: 2}, numPE, numLines)
	home := func(line int64) int { return int(line) % numPE }

	// holds[pe][line] mirrors what each model cache holds.
	holds := make([][]bool, numPE)
	for p := range holds {
		holds[p] = make([]bool, numLines)
	}
	drop := func(line int64, pes []int) {
		for _, p := range pes {
			holds[p][line] = false
		}
	}

	for step := 0; step < steps; step++ {
		line := int64(rng.Intn(numLines))
		pe := rng.Intn(numPE)
		switch rng.Intn(3) {
		case 0: // read
			if !holds[pe][line] {
				r := d.Read(line, home(line), pe)
				if r.EvictedLine >= 0 {
					drop(r.EvictedLine, r.EvictedSharers)
				}
				holds[pe][line] = true
			}
		case 1: // write
			w := d.Write(line, home(line), pe, holds[pe][line])
			drop(line, w.Sharers)
		case 2: // silent clean drop by the cache
			holds[pe][line] = false
		}

		// Invariant: every held line's sharer set contains the holder.
		for p := 0; p < numPE; p++ {
			for l := int64(0); l < numLines; l++ {
				if !holds[p][l] {
					continue
				}
				found := false
				for _, q := range sharers(d, l, home(l)) {
					if q == p {
						found = true
					}
				}
				if !found {
					t.Fatalf("step %d: PE %d holds line %d but directory lost it", step, p, l)
				}
			}
		}
	}
	if d.Evictions == 0 {
		t.Fatal("property run never evicted a sparse entry — workload too small to mean anything")
	}
}

// TestStorageBitsDistinct pins the storage-cost model on a realistic
// shape (64 PEs, 4K lines): the three organizations must report distinct,
// nonzero costs (the arena's acceptance criterion), the per-line
// limited-pointer entry must undercut full-map's N presence bits, and the
// exact formulas are checked so the reported bits stay auditable.
func TestStorageBitsDistinct(t *testing.T) {
	const numPE, numLines = 64, 4096
	fm := NewDirectory(Config{Org: OrgFullMap}, numPE, numLines).StorageBits()
	lp := NewDirectory(Config{Org: OrgLimited}, numPE, numLines).StorageBits()
	sp := NewDirectory(Config{Org: OrgSparse}, numPE, numLines).StorageBits()
	if fm == 0 || lp == 0 || sp == 0 {
		t.Fatalf("zero storage cost: fm=%d lp=%d sp=%d", fm, lp, sp)
	}
	if fm == lp || lp == sp || fm == sp {
		t.Fatalf("storage costs not distinct: fm=%d lp=%d sp=%d", fm, lp, sp)
	}
	if fm <= lp {
		t.Fatalf("limited-pointer must undercut full-map: fm=%d lp=%d", fm, lp)
	}
	// Full-map: 4096 × (64 + 2).
	if want := int64(numLines * (numPE + 2)); fm != want {
		t.Fatalf("full-map bits = %d, want %d", fm, want)
	}
	// Dir_1_B: 4096 × (1×6 + 1 + 2).
	if want := int64(numLines * (6 + 1 + 2)); lp != want {
		t.Fatalf("limited bits = %d, want %d", lp, want)
	}
	// Sparse: 64 homes × 128 entries × (12-bit tag + 64 + 2).
	if want := int64(numPE * 128 * (12 + numPE + 2)); sp != want {
		t.Fatalf("sparse bits = %d, want %d", sp, want)
	}
}

// TestDirectoryReset: a reset directory behaves like a fresh one.
func TestDirectoryReset(t *testing.T) {
	for _, org := range []Org{OrgFullMap, OrgLimited, OrgSparse} {
		d := NewDirectory(Config{Org: org, SparseLines: 2, SparseWays: 1}, 4, 16)
		d.Read(1, 1, 0)
		d.Read(1, 1, 2)
		d.Read(3, 3, 1)
		d.Reset()
		for line := int64(0); line < 16; line++ {
			if got := sharers(d, line, home4(line)); len(got) != 0 {
				t.Fatalf("%v: line %d has sharers %v after Reset", org, line, got)
			}
		}
		if r := d.Read(1, 1, 3); !r.Excl {
			t.Fatalf("%v: first read after Reset not exclusive: %+v", org, r)
		}
	}
}

func home4(line int64) int { return int(line) % 4 }
