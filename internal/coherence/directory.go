package coherence

import (
	"fmt"
	"math/bits"
)

// ReadResult is the directory's answer to a read-miss fill request.
type ReadResult struct {
	// Excl is true when the requester is the line's only holder: the fill
	// installs in Exclusive, and a later store upgrades silently.
	Excl bool
	// Recall names the PE holding the line exclusively (it must be
	// downgraded to S, writing back if Modified) — -1 when none.
	Recall int
	// EvictedLine is set (≥ 0) when allocating a sparse-directory entry
	// evicted another line's entry: every PE in EvictedSharers must drop
	// its copy of that line. -1 otherwise. EvictedSharers aliases scratch
	// owned by the Directory, valid until the next call.
	EvictedLine    int64
	EvictedSharers []int
}

// WriteResult is the directory's answer to a write (upgrade or write miss).
type WriteResult struct {
	// Sharers lists the PEs (never the writer) whose copies must be
	// invalidated, in ascending order. Under a limited-pointer overflow it
	// is every other PE. Aliases scratch owned by the Directory, valid
	// until the next call.
	Sharers []int
	// Broadcast is true when Sharers came from an overflowed
	// limited-pointer entry rather than a precise sharer set.
	Broadcast bool
}

// sentry is one sparse-directory entry: a cached slice of the full
// presence-bit state for one line.
type sentry struct {
	line int64 // global line index; -1 when free
	excl int32 // exclusive owner; -1 when none
	last int64 // LRU clock of the entry's most recent use
}

// Directory is the home-node coherence directory over the whole shared
// address space, in one of the three organizations. Line indices are
// global (addr / LineWords); the caller passes each line's home PE, which
// only the sparse organization uses (each home node owns its own entry
// table).
type Directory struct {
	cfg      Config
	numPE    int
	numLines int64
	wpl      int // presence-bitset words per line / entry

	// Full-map and limited-pointer state, dense over all lines.
	excl  []int32  // exclusive owner per line; -1 none (full-map, limited)
	bits  []uint64 // full-map presence bits, wpl words per line
	ptrs  []int32  // limited: Pointers slots per line; -1 free
	bcast []bool   // limited: entry overflowed, later writes broadcast

	// Sparse state: SparseLines entries per home PE, set-associative.
	entries []sentry
	ebits   []uint64 // presence bits, wpl words per entry
	sets    int64    // sets per home node
	clock   int64

	// Evictions counts sparse entries evicted to make room — each one
	// forced the invalidation of a still-live line's sharers.
	Evictions int64

	shBuf []int // WriteResult.Sharers scratch
	evBuf []int // ReadResult.EvictedSharers scratch
}

// NewDirectory builds a directory covering numLines cache lines across
// numPE nodes.
func NewDirectory(cfg Config, numPE int, numLines int64) *Directory {
	cfg = cfg.WithDefaults()
	d := &Directory{
		cfg: cfg, numPE: numPE, numLines: numLines,
		wpl:   (numPE + 63) / 64,
		shBuf: make([]int, 0, numPE),
		evBuf: make([]int, 0, numPE),
	}
	switch cfg.Org {
	case OrgFullMap:
		d.excl = make([]int32, numLines)
		d.bits = make([]uint64, numLines*int64(d.wpl))
	case OrgLimited:
		d.excl = make([]int32, numLines)
		d.ptrs = make([]int32, numLines*int64(cfg.Pointers))
		d.bcast = make([]bool, numLines)
	case OrgSparse:
		d.sets = cfg.SparseLines / int64(cfg.SparseWays)
		total := int64(numPE) * d.sets * int64(cfg.SparseWays)
		d.entries = make([]sentry, total)
		d.ebits = make([]uint64, total*int64(d.wpl))
	default:
		panic(fmt.Sprintf("coherence: unknown org %v", cfg.Org))
	}
	d.Reset()
	return d
}

// Reset clears every entry without releasing storage (engine reuse).
func (d *Directory) Reset() {
	for i := range d.excl {
		d.excl[i] = -1
	}
	for i := range d.bits {
		d.bits[i] = 0
	}
	for i := range d.ptrs {
		d.ptrs[i] = -1
	}
	for i := range d.bcast {
		d.bcast[i] = false
	}
	for i := range d.entries {
		d.entries[i] = sentry{line: -1, excl: -1}
	}
	for i := range d.ebits {
		d.ebits[i] = 0
	}
	d.clock = 0
	d.Evictions = 0
}

// Org returns the directory's organization.
func (d *Directory) Org() Org { return d.cfg.Org }

// StorageBits is the hardware storage cost of this directory
// configuration in bits — the number the paper's comparison holds against
// CCDP's zero. Per entry: 2 state bits plus the sharer representation
// (full-map: one presence bit per PE; limited: i pointers of ⌈log₂N⌉ bits
// and the broadcast bit; sparse: a full-map entry plus the line tag).
func (d *Directory) StorageBits() int64 {
	state := int64(2)
	switch d.cfg.Org {
	case OrgFullMap:
		return d.numLines * (int64(d.numPE) + state)
	case OrgLimited:
		return d.numLines * (int64(d.cfg.Pointers)*ceilLog2(int64(d.numPE)) + 1 + state)
	default:
		tag := ceilLog2(d.numLines)
		perEntry := tag + int64(d.numPE) + state
		return int64(d.numPE) * d.sets * int64(d.cfg.SparseWays) * perEntry
	}
}

func ceilLog2(n int64) int64 {
	if n <= 1 {
		return 0
	}
	return int64(bits.Len64(uint64(n - 1)))
}

// --- presence-bit helpers ---------------------------------------------------

func setBit(w []uint64, pe int)      { w[pe>>6] |= 1 << (pe & 63) }
func clearBit(w []uint64, pe int)    { w[pe>>6] &^= 1 << (pe & 63) }
func hasBit(w []uint64, pe int) bool { return w[pe>>6]&(1<<(pe&63)) != 0 }

func popcount(w []uint64) int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// appendSharers appends the set PEs in ascending order, skipping skip.
func appendSharers(dst []int, w []uint64, skip int) []int {
	for wi, x := range w {
		for x != 0 {
			b := bits.TrailingZeros64(x)
			pe := wi*64 + b
			if pe != skip {
				dst = append(dst, pe)
			}
			x &^= 1 << b
		}
	}
	return dst
}

// --- Read (fill request) ----------------------------------------------------

// Read registers PE pe as a sharer of line after a read miss, returning
// the fill grant. home is the line's home node (used by the sparse
// organization to pick the entry table).
func (d *Directory) Read(line int64, home, pe int) ReadResult {
	res := ReadResult{Recall: -1, EvictedLine: -1}
	switch d.cfg.Org {
	case OrgFullMap:
		w := d.lineBits(line)
		if o := d.excl[line]; o >= 0 && int(o) != pe {
			res.Recall = int(o)
		}
		d.excl[line] = -1
		setBit(w, pe)
		if popcount(w) == 1 {
			d.excl[line] = int32(pe)
			res.Excl = true
		}
	case OrgLimited:
		if o := d.excl[line]; o >= 0 && int(o) != pe {
			res.Recall = int(o)
		}
		d.excl[line] = -1
		d.limitedAdd(line, pe)
		if !d.bcast[line] && d.limitedSole(line, pe) {
			d.excl[line] = int32(pe)
			res.Excl = true
		}
	default:
		e, w := d.sparseFind(line, home)
		if e == nil {
			e, w, res.EvictedLine, res.EvictedSharers = d.sparseAlloc(line, home)
		}
		if o := e.excl; o >= 0 && int(o) != pe {
			res.Recall = int(o)
		}
		e.excl = -1
		setBit(w, pe)
		if popcount(w) == 1 {
			e.excl = int32(pe)
			res.Excl = true
		}
		d.clock++
		e.last = d.clock
	}
	return res
}

// --- Write (upgrade or write miss) -------------------------------------------

// Write records a store by PE pe to line: every other holder must be
// invalidated. holds reports whether the writer's own cache has the line
// (a hit-S upgrade or a hit-E/M path that consulted the directory): the
// writer then becomes the line's exclusive Modified owner; otherwise
// (write miss, no-write-allocate) the line ends uncached and the entry is
// released.
func (d *Directory) Write(line int64, home, pe int, holds bool) WriteResult {
	res := WriteResult{}
	d.shBuf = d.shBuf[:0]
	switch d.cfg.Org {
	case OrgFullMap:
		w := d.lineBits(line)
		d.shBuf = appendSharers(d.shBuf, w, pe)
		res.Sharers = d.shBuf
		for i := range w {
			w[i] = 0
		}
		d.excl[line] = -1
		if holds {
			setBit(w, pe)
			d.excl[line] = int32(pe)
		}
	case OrgLimited:
		if d.bcast[line] {
			res.Broadcast = true
			for q := 0; q < d.numPE; q++ {
				if q != pe {
					d.shBuf = append(d.shBuf, q)
				}
			}
		} else {
			p := d.linePtrs(line)
			for _, q := range p {
				if q >= 0 && int(q) != pe {
					d.shBuf = append(d.shBuf, int(q))
				}
			}
			sortInts(d.shBuf)
		}
		res.Sharers = d.shBuf
		p := d.linePtrs(line)
		for i := range p {
			p[i] = -1
		}
		d.bcast[line] = false
		d.excl[line] = -1
		if holds {
			p[0] = int32(pe)
			d.excl[line] = int32(pe)
		}
	default:
		e, w := d.sparseFind(line, home)
		if e == nil {
			// No entry: nothing is cached (a held copy always has a live
			// entry — entry eviction invalidates its sharers). The lenient
			// fallback matters only under the drop-invalidations sabotage,
			// where that invariant is deliberately broken.
			return res
		}
		d.shBuf = appendSharers(d.shBuf, w, pe)
		res.Sharers = d.shBuf
		for i := range w {
			w[i] = 0
		}
		e.excl = -1
		if holds {
			setBit(w, pe)
			e.excl = int32(pe)
			d.clock++
			e.last = d.clock
		} else {
			e.line = -1 // uncached: release the precious entry
		}
	}
	return res
}

// Evict tells the directory PE pe wrote back and dropped its Modified
// copy of line on a conflict eviction (clean S/E drops are silent — the
// directory keeps a superset and its invalidations may find nothing).
func (d *Directory) Evict(line int64, home, pe int) {
	switch d.cfg.Org {
	case OrgFullMap:
		clearBit(d.lineBits(line), pe)
		if d.excl[line] == int32(pe) {
			d.excl[line] = -1
		}
	case OrgLimited:
		if !d.bcast[line] {
			p := d.linePtrs(line)
			for i, q := range p {
				if q == int32(pe) {
					p[i] = -1
				}
			}
		}
		if d.excl[line] == int32(pe) {
			d.excl[line] = -1
		}
	default:
		e, w := d.sparseFind(line, home)
		if e == nil {
			return
		}
		clearBit(w, pe)
		if e.excl == int32(pe) {
			e.excl = -1
		}
		if popcount(w) == 0 {
			e.line = -1
		}
	}
}

// Sharers appends line's current holders (ascending, no skip) to dst —
// test and diagnostic accessor.
func (d *Directory) Sharers(line int64, home int, dst []int) []int {
	switch d.cfg.Org {
	case OrgFullMap:
		return appendSharers(dst, d.lineBits(line), -1)
	case OrgLimited:
		if d.bcast[line] {
			for q := 0; q < d.numPE; q++ {
				dst = append(dst, q)
			}
			return dst
		}
		for _, q := range d.linePtrs(line) {
			if q >= 0 {
				dst = append(dst, int(q))
			}
		}
		sortInts(dst)
		return dst
	default:
		e, w := d.sparseFind(line, home)
		if e == nil {
			return dst
		}
		return appendSharers(dst, w, -1)
	}
}

// --- organization internals ---------------------------------------------------

func (d *Directory) lineBits(line int64) []uint64 {
	lo := line * int64(d.wpl)
	return d.bits[lo : lo+int64(d.wpl)]
}

func (d *Directory) linePtrs(line int64) []int32 {
	lo := line * int64(d.cfg.Pointers)
	return d.ptrs[lo : lo+int64(d.cfg.Pointers)]
}

// limitedAdd records pe as a sharer, overflowing to broadcast when the
// pointer slots are full (Dir_i_B).
func (d *Directory) limitedAdd(line int64, pe int) {
	if d.bcast[line] {
		return
	}
	p := d.linePtrs(line)
	free := -1
	for i, q := range p {
		if q == int32(pe) {
			return
		}
		if q < 0 && free < 0 {
			free = i
		}
	}
	if free >= 0 {
		p[free] = int32(pe)
		return
	}
	d.bcast[line] = true
}

// limitedSole reports whether pe is the entry's only pointer.
func (d *Directory) limitedSole(line int64, pe int) bool {
	for _, q := range d.linePtrs(line) {
		if q >= 0 && q != int32(pe) {
			return false
		}
	}
	return hasPtr(d.linePtrs(line), pe)
}

func hasPtr(p []int32, pe int) bool {
	for _, q := range p {
		if q == int32(pe) {
			return true
		}
	}
	return false
}

func (d *Directory) entryBits(idx int64) []uint64 {
	lo := idx * int64(d.wpl)
	return d.ebits[lo : lo+int64(d.wpl)]
}

// sparseFind locates line's entry in its home node's table, or nil.
func (d *Directory) sparseFind(line int64, home int) (*sentry, []uint64) {
	base := (int64(home)*d.sets + line%d.sets) * int64(d.cfg.SparseWays)
	for i := int64(0); i < int64(d.cfg.SparseWays); i++ {
		if d.entries[base+i].line == line {
			return &d.entries[base+i], d.entryBits(base + i)
		}
	}
	return nil, nil
}

// sparseAlloc claims an entry for line in its home set, evicting the LRU
// entry when the set is full. The victim's line and sharers are returned
// so the caller can invalidate every copy of the evicted line.
func (d *Directory) sparseAlloc(line int64, home int) (*sentry, []uint64, int64, []int) {
	base := (int64(home)*d.sets + line%d.sets) * int64(d.cfg.SparseWays)
	victim := base
	for i := int64(0); i < int64(d.cfg.SparseWays); i++ {
		e := &d.entries[base+i]
		if e.line < 0 {
			victim = base + i
			break
		}
		if e.last < d.entries[victim].last {
			victim = base + i
		}
	}
	e, w := &d.entries[victim], d.entryBits(victim)
	evLine, evSharers := int64(-1), []int(nil)
	if e.line >= 0 {
		d.Evictions++
		evLine = e.line
		d.evBuf = appendSharers(d.evBuf[:0], w, -1)
		evSharers = d.evBuf
	}
	*e = sentry{line: line, excl: -1}
	for i := range w {
		w[i] = 0
	}
	return e, w, evLine, evSharers
}

// sortInts is an insertion sort: sharer lists are at most a handful of
// entries, and sort.Ints would allocate an interface.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
