// Package coherence implements the directory-based hardware cache
// coherence engine the CCDP scheme is evaluated against. The paper's
// argument is comparative: compiler-directed coherence needs no directory
// storage and sends no coherence messages, where a hardware scheme pays
// both. This package supplies the hardware side of that comparison — a
// MESI line-state machine and a home-node directory in the three classic
// organizations the literature prices out:
//
//   - full-map: one presence bit per PE per line (Censier & Feautrier).
//     Precise, storage grows as N per line.
//   - limited-pointer Dir_i_B: i PE pointers per line; when an (i+1)-th
//     sharer arrives the entry overflows and sets its broadcast bit, so a
//     later write must invalidate every PE.
//   - sparse: a small set-associative directory cache per home node.
//     Storage is bounded, but allocating an entry may evict another
//     line's entry, which forces invalidation of that line's sharers
//     (eviction-induced invalidation).
//
// The execution engine (internal/exec) consults the directory on every
// fill, upgrade and write miss, books the resulting protocol messages on
// the interconnect, and applies the returned invalidations to the victim
// caches. This package itself is purely the bookkeeping: deterministic,
// allocation-free in steady state, and single-threaded by design (HW-mode
// epochs execute PEs sequentially, since a store on one PE may mutate
// another PE's cache).
package coherence

import "fmt"

// Org selects the directory organization.
type Org int

const (
	OrgFullMap Org = iota
	OrgLimited
	OrgSparse
)

func (o Org) String() string {
	switch o {
	case OrgFullMap:
		return "full-map"
	case OrgLimited:
		return "limited-pointer"
	case OrgSparse:
		return "sparse"
	default:
		return fmt.Sprintf("Org(%d)", int(o))
	}
}

// LineState is the MESI state of one cached line. Invalid is the zero
// value, so a just-built cache line (state byte 0) is Invalid.
type LineState uint8

const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", int(s))
	}
}

// Event is one protocol stimulus applied to a cached line.
type Event uint8

const (
	// EvFillShared installs the line after a read miss when other sharers
	// exist (directory grants S).
	EvFillShared Event = iota
	// EvFillExclusive installs the line after a read miss when the
	// requester is the only holder (directory grants E).
	EvFillExclusive
	// EvLoad is a processor load that hits the line.
	EvLoad
	// EvStore is a processor store that hits the line: S upgrades through
	// the directory, E upgrades silently, M stays M.
	EvStore
	// EvInv is a directory invalidation (another PE wrote the line, or the
	// line's sparse-directory entry was evicted).
	EvInv
	// EvDowngrade is a directory recall: another PE read-missed a line this
	// PE holds exclusively, so M/E demote to S (M writes back first).
	EvDowngrade
	// EvEvict is a conflict eviction by the PE's own cache.
	EvEvict
)

func (e Event) String() string {
	switch e {
	case EvFillShared:
		return "fill-S"
	case EvFillExclusive:
		return "fill-E"
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	case EvInv:
		return "inv"
	case EvDowngrade:
		return "downgrade"
	case EvEvict:
		return "evict"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Next returns the successor state of a cached line under an event. An
// illegal pair — filling a line that is already valid, loading or storing
// through an Invalid line, downgrading a line not held exclusively — is a
// protocol engine bug and panics. EvInv on an Invalid line is legal and a
// no-op: caches drop S/E lines silently on conflict evictions, so the
// directory's sharer sets are supersets and its invalidations may find
// nothing.
func Next(s LineState, e Event) LineState {
	switch e {
	case EvFillShared:
		if s == Invalid {
			return Shared
		}
	case EvFillExclusive:
		if s == Invalid {
			return Exclusive
		}
	case EvLoad:
		if s != Invalid {
			return s
		}
	case EvStore:
		switch s {
		case Shared, Exclusive, Modified:
			return Modified
		}
	case EvInv:
		return Invalid
	case EvDowngrade:
		switch s {
		case Exclusive, Modified:
			return Shared
		}
	case EvEvict:
		if s != Invalid {
			return Invalid
		}
	}
	panic(fmt.Sprintf("coherence: illegal transition %v on %v", e, s))
}

// Config sizes a Directory. The zero value takes the defaults below,
// mirroring noc.Config's pattern: engines pass machine tunables through
// without validating them first.
type Config struct {
	Org Org
	// Pointers is the limited-pointer entry width i of Dir_i_B. The
	// default 1 makes the overflow→broadcast path live on any line with
	// two sharers (boundary lines of block-distributed stencils).
	Pointers int
	// SparseLines is the number of directory-cache entries per home node.
	SparseLines int64
	// SparseWays is the sparse directory's set associativity.
	SparseWays int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Pointers <= 0 {
		c.Pointers = 1
	}
	if c.SparseLines <= 0 {
		c.SparseLines = 128
	}
	if c.SparseWays <= 0 {
		c.SparseWays = 4
	}
	if c.SparseWays > int(c.SparseLines) {
		c.SparseWays = int(c.SparseLines)
	}
	return c
}
