package coherence

import "testing"

// TestNextTransitionTable drives every state × event pair through Next and
// checks the full MESI transition table: legal pairs produce exactly the
// expected successor, illegal pairs panic.
func TestNextTransitionTable(t *testing.T) {
	const illegal = LineState(0xff)
	table := map[LineState]map[Event]LineState{
		Invalid: {
			EvFillShared:    Shared,
			EvFillExclusive: Exclusive,
			EvLoad:          illegal,
			EvStore:         illegal,
			EvInv:           Invalid, // superset invalidation finds nothing: no-op
			EvDowngrade:     illegal,
			EvEvict:         illegal,
		},
		Shared: {
			EvFillShared:    illegal,
			EvFillExclusive: illegal,
			EvLoad:          Shared,
			EvStore:         Modified, // upgrade through the directory
			EvInv:           Invalid,
			EvDowngrade:     illegal, // S holders are never recalled
			EvEvict:         Invalid,
		},
		Exclusive: {
			EvFillShared:    illegal,
			EvFillExclusive: illegal,
			EvLoad:          Exclusive,
			EvStore:         Modified, // silent upgrade: E's whole point
			EvInv:           Invalid,
			EvDowngrade:     Shared,
			EvEvict:         Invalid,
		},
		Modified: {
			EvFillShared:    illegal,
			EvFillExclusive: illegal,
			EvLoad:          Modified,
			EvStore:         Modified,
			EvInv:           Invalid,
			EvDowngrade:     Shared, // with writeback, which the engine books
			EvEvict:         Invalid,
		},
	}
	states := []LineState{Invalid, Shared, Exclusive, Modified}
	events := []Event{EvFillShared, EvFillExclusive, EvLoad, EvStore, EvInv, EvDowngrade, EvEvict}
	for _, s := range states {
		for _, e := range events {
			want, ok := table[s][e]
			if !ok {
				t.Fatalf("transition table missing %v × %v", s, e)
			}
			got, panicked := tryNext(s, e)
			if want == illegal {
				if !panicked {
					t.Errorf("Next(%v, %v) = %v, want panic", s, e, got)
				}
				continue
			}
			if panicked {
				t.Errorf("Next(%v, %v) panicked, want %v", s, e, want)
			} else if got != want {
				t.Errorf("Next(%v, %v) = %v, want %v", s, e, got, want)
			}
		}
	}
}

func tryNext(s LineState, e Event) (out LineState, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return Next(s, e), false
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Pointers != 1 || c.SparseLines != 128 || c.SparseWays != 4 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// Associativity can never exceed the entry count.
	c = Config{SparseLines: 2, SparseWays: 8}.WithDefaults()
	if c.SparseWays != 2 {
		t.Fatalf("ways not clamped: %+v", c)
	}
}
