package sweepd

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/report"
)

func newTestServer(t *testing.T, opt Options) (*Server, *Client) {
	t.Helper()
	s := NewServer(opt)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, &Client{Base: hs.URL}
}

// inProcess runs one job spec exactly like ccdpbench's non-server path.
func inProcess(t *testing.T, js JobSpec) *harness.AppResult {
	t.Helper()
	j := mustResolve(t, js)
	ar, err := harness.RunApp(j.Spec, j.Cfg)
	if err != nil {
		t.Fatalf("in-process %s: %v", js.App, err)
	}
	return ar
}

var testPEs = []int{1, 2, 4}

func smallSpecs(apps ...string) []JobSpec {
	out := make([]JobSpec, len(apps))
	for i, a := range apps {
		out[i] = JobSpec{App: a, Scale: "small", PEs: testPEs}
	}
	return out
}

// A served sweep must render byte-identically to the in-process path, and
// a repeated sweep must be all memo hits with the same bytes.
func TestServedSweepMatchesInProcess(t *testing.T) {
	for _, topo := range []string{"flat", "torus"} {
		t.Run(topo, func(t *testing.T) {
			srv, client := newTestServer(t, Options{})
			specs := smallSpecs("MXM", "VPENTA")
			for i := range specs {
				specs[i].Topology = topo
			}

			local := make([]*harness.AppResult, len(specs))
			for i := range specs {
				local[i] = inProcess(t, specs[i])
			}
			want := report.CSV(local)

			served, sum, err := client.Sweep(specs)
			if err != nil {
				t.Fatal(err)
			}
			if got := report.CSV(served); got != want {
				t.Errorf("served CSV differs from in-process:\n got:\n%s\nwant:\n%s", got, want)
			}
			if sum.MemoHits != 0 {
				t.Errorf("cold sweep reported %d memo hits", sum.MemoHits)
			}

			again, sum2, err := client.Sweep(specs)
			if err != nil {
				t.Fatal(err)
			}
			if sum2.MemoHits != len(specs) {
				t.Errorf("warm sweep hit memo on %d/%d points", sum2.MemoHits, len(specs))
			}
			if got := report.CSV(again); got != want {
				t.Errorf("warm served CSV differs from cold")
			}
			if n := srv.jobsRun.Load(); int(n) != len(specs) {
				t.Errorf("server ran %d jobs for %d distinct points", n, len(specs))
			}
		})
	}
}

// Concurrent overlapping sweeps: every client sees correct results, and
// each distinct point simulates exactly once (later requests either hit
// the memo or ride the in-flight leader).
func TestConcurrentSweepsMixedHitMiss(t *testing.T) {
	srv, client := newTestServer(t, Options{Workers: 4})
	apps := []string{"MXM", "VPENTA", "TOMCATV", "SWIM"}
	want := map[string]string{}
	for _, a := range apps {
		want[a] = report.CSV([]*harness.AppResult{inProcess(t, smallSpecs(a)[0])})
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client sweeps the apps rotated, so requests overlap on
			// every point from different batch positions.
			specs := make([]JobSpec, len(apps))
			for i := range apps {
				specs[i] = smallSpecs(apps[(c+i)%len(apps)])[0]
			}
			results, _, err := client.Sweep(specs)
			if err != nil {
				errs[c] = err
				return
			}
			for i, ar := range results {
				if got := report.CSV([]*harness.AppResult{ar}); got != want[specs[i].App] {
					errs[c] = &mismatchError{app: specs[i].App}
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
	}
	if n := srv.jobsRun.Load(); int(n) != len(apps) {
		t.Errorf("server ran %d jobs for %d distinct points", n, len(apps))
	}
	st := srv.memo.Stats()
	if int(st.Misses) != len(apps) {
		t.Errorf("memo misses = %d, want %d", st.Misses, len(apps))
	}
	if wantHits := int64(clients*len(apps) - len(apps)); st.Hits != wantHits {
		t.Errorf("memo hits = %d, want %d", st.Hits, wantHits)
	}
}

type mismatchError struct{ app string }

func (e *mismatchError) Error() string { return e.app + ": served result differs from in-process" }

// With a one-entry memo, the second point evicts the first; re-requesting
// the first recomputes it and serves identical bytes.
func TestLRUEvictionThenRecompute(t *testing.T) {
	srv, client := newTestServer(t, Options{MemoEntries: 1})
	a, b := smallSpecs("MXM")[0:1], smallSpecs("VPENTA")[0:1]

	first, _, err := client.Sweep(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Sweep(b); err != nil {
		t.Fatal(err)
	}
	again, sum, err := client.Sweep(a)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MemoHits != 0 {
		t.Errorf("evicted point served as a memo hit")
	}
	if got, want := report.CSV(again), report.CSV(first); got != want {
		t.Errorf("recomputed result differs from original serve")
	}
	st := srv.memo.Stats()
	if st.Evictions < 2 || st.Misses != 3 || st.Entries != 1 {
		t.Errorf("memo stats after eviction churn: %+v", st)
	}
	if n := srv.jobsRun.Load(); n != 3 {
		t.Errorf("server ran %d jobs, want 3 (A, B, recomputed A)", n)
	}
}

// Jobs that differ only in fault seed have distinct memo keys but share
// every compiled program through the compile cache.
func TestCompileCacheSharedAcrossJobs(t *testing.T) {
	srv, client := newTestServer(t, Options{})
	specs := []JobSpec{
		{App: "MXM", Scale: "small", PEs: []int{1, 2}, FaultRate: 1e-9, FaultSeed: 1},
		{App: "MXM", Scale: "small", PEs: []int{1, 2}, FaultRate: 1e-9, FaultSeed: 2},
	}
	if specs[0].mustKey(t) == specs[1].mustKey(t) {
		t.Fatal("fault seeds did not separate the memo keys")
	}
	if _, sum, err := client.Sweep(specs); err != nil {
		t.Fatal(err)
	} else if sum.MemoHits != 0 {
		t.Fatalf("distinct points reported memo hits")
	}
	cs := srv.compile.Stats()
	if cs.Hits == 0 {
		t.Errorf("compile cache saw no hits across seed-only-different jobs: %+v", cs)
	}
}

func (js JobSpec) mustKey(t *testing.T) Key {
	t.Helper()
	return mustResolve(t, js).Key
}

// A sharded request through a forwarded peer merges back into canonical
// order with exactly the bytes an unsharded serve produces.
func TestShardForwardMerge(t *testing.T) {
	_, direct := newTestServer(t, Options{})
	worker, workerClient := newTestServer(t, Options{})
	front, frontClient := newTestServer(t, Options{
		Peers:     []string{workerClient.Base},
		ShardSize: 1,
	})

	specs := smallSpecs("MXM", "VPENTA", "TOMCATV", "SWIM")
	want, _, err := direct.Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	got, sum, err := frontClient.Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rows != len(specs) {
		t.Fatalf("sharded sweep returned %d rows", sum.Rows)
	}
	if g, w := report.CSV(got), report.CSV(want); g != w {
		t.Errorf("sharded CSV differs from direct serve:\n got:\n%s\nwant:\n%s", g, w)
	}
	if fr, wr := front.jobsRun.Load(), worker.jobsRun.Load(); fr+wr != int64(len(specs)) || wr == 0 {
		t.Errorf("shard split front=%d worker=%d, want total %d with worker > 0", fr, wr, len(specs))
	}
}

// A bad spec anywhere in the batch is a whole-request 400 naming the
// problem — the driver refactor's error returns surfacing over HTTP.
func TestBadSpecIs400(t *testing.T) {
	_, client := newTestServer(t, Options{})
	resp, err := http.Post(client.Base+"/v1/sweep", "application/json",
		strings.NewReader(`{"jobs":[{"app":"MXM","scale":"small"},{"app":"NOPE"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %s, want 400", resp.Status)
	}
	_, _, err = client.Sweep([]JobSpec{{App: "MXM", Topology: "ring"}})
	if err == nil || !strings.Contains(err.Error(), "topology") {
		t.Errorf("client error %v does not name the bad topology", err)
	}
}

// The priority queue serves higher priorities first, FIFO within one.
func TestQueuePriorityOrder(t *testing.T) {
	q := NewQueue()
	push := func(pri int, name string) {
		q.Push(&Job{App: name}, nil, pri)
	}
	push(0, "a")
	push(5, "b")
	push(0, "c")
	push(5, "d")
	push(9, "e")
	var got []string
	for i := 0; i < 5; i++ {
		tk, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, tk.job.App)
	}
	if want := "e,b,d,a,c"; strings.Join(got, ",") != want {
		t.Errorf("pop order %v, want %s", got, want)
	}
	q.Close()
	if _, ok := q.Pop(); ok {
		t.Error("Pop succeeded on closed empty queue")
	}
}
