package sweepd

import (
	"container/heap"
	"sync"
)

// task is one leader-owned job waiting for a worker: the resolved job plus
// the in-flight memo entry the worker must Complete.
type task struct {
	job      *Job
	entry    *Entry
	priority int
	seq      int64 // FIFO tiebreak within a priority
}

// Queue is the priority job queue: workers pop the highest-priority task
// first, FIFO within a priority, so an interactive single-point request
// submitted at high priority overtakes a queued million-point batch sweep.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   taskHeap
	seq    int64
	closed bool
}

// NewQueue builds an empty queue.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a task at the given priority.
func (q *Queue) Push(j *Job, e *Entry, priority int) {
	q.mu.Lock()
	q.seq++
	heap.Push(&q.heap, &task{job: j, entry: e, priority: priority, seq: q.seq})
	q.mu.Unlock()
	q.cond.Signal()
}

// Pop blocks until a task is available or the queue is closed AND drained;
// the boolean is false only in the latter case. Closing does not discard
// queued tasks — every pushed task has memo waiters that must be answered,
// so workers drain the queue before exiting.
func (q *Queue) Pop() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	return heap.Pop(&q.heap).(*task), true
}

// Len reports the current queue depth.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// Close marks the queue closed and wakes every blocked Pop.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// taskHeap orders by priority descending, then sequence ascending.
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *taskHeap) Push(x any) { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
