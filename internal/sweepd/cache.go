package sweepd

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// compileKey identifies one compiled program. It must carry the FULL
// machine parameters, not just the axes the lowering inspects: the
// Compiled's Machine is consumed by exec at run time (latencies, topology,
// domain sizes), so two jobs may share a Compiled only when they agree on
// every parameter. machine.Params is comparable by construction — scalars,
// strings and a noc.Config of ints — which is what lets the whole key be a
// plain map key.
type compileKey struct {
	App   string
	Scale string
	Mode  core.Mode
	MP    machine.Params
}

// compileEntry is one compiled program, possibly still being compiled.
// Waiters block on done; after it closes, exactly one of c/err is set and
// both are immutable.
type compileEntry struct {
	key  compileKey
	done chan struct{}
	c    *core.Compiled
	err  error
	elem *list.Element // LRU position; nil while compiling
}

// CompileCache is the shared compiled-program cache: concurrent jobs that
// agree on (workload, scale, mode, machine parameters) reuse one
// core.Compiled — and, because the engine pool hangs off the Compiled's
// memo, one engine pool — so a sweep pays each distinct compilation once
// per process instead of once per request. Single-flight: a second request
// for a program mid-compile waits for the first compile instead of
// repeating it.
//
// Eviction only drops the cache's reference; jobs still running on an
// evicted Compiled keep theirs, and the next request recompiles.
type CompileCache struct {
	mu      sync.Mutex
	max     int
	entries map[compileKey]*compileEntry
	lru     *list.List // completed entries, most recently used at front

	hits, misses, evictions int64
}

// NewCompileCache builds a cache bounded to max completed entries (≤ 0
// means the default of 256 — comfortably above a four-app, seven-PE,
// three-mode paper sweep's 4×7×2+4 distinct programs).
func NewCompileCache(max int) *CompileCache {
	if max <= 0 {
		max = 256
	}
	return &CompileCache{max: max, entries: make(map[compileKey]*compileEntry), lru: list.New()}
}

// CompileFor returns a harness.Config.Compile hook bound to one workload's
// registry coordinates. The hook's (mode, machine) arguments complete the
// cache key at call time; the app/scale pair must be bound here because
// the hook only ever sees the workloads.Spec, whose Name does not encode
// the problem scale.
func (cc *CompileCache) CompileFor(app, scale string) func(*workloads.Spec, core.Mode, machine.Params) (*core.Compiled, error) {
	return func(s *workloads.Spec, mode core.Mode, mp machine.Params) (*core.Compiled, error) {
		return cc.compile(compileKey{App: app, Scale: scale, Mode: mode, MP: mp}, s)
	}
}

func (cc *CompileCache) compile(k compileKey, s *workloads.Spec) (*core.Compiled, error) {
	cc.mu.Lock()
	if e, ok := cc.entries[k]; ok {
		if e.elem != nil {
			cc.lru.MoveToFront(e.elem)
		}
		cc.hits++
		cc.mu.Unlock()
		<-e.done
		return e.c, e.err
	}
	e := &compileEntry{key: k, done: make(chan struct{})}
	cc.entries[k] = e
	cc.misses++
	cc.mu.Unlock()

	// Compile outside the lock — core.Compile clones the source program, so
	// concurrent compiles of different keys never contend.
	e.c, e.err = core.Compile(s.Prog, k.Mode, k.MP)

	cc.mu.Lock()
	if e.err != nil {
		// Failed compiles are not kept: the error still reaches every
		// current waiter through the entry, but the next request retries.
		delete(cc.entries, k)
	} else {
		e.elem = cc.lru.PushFront(e)
		for cc.lru.Len() > cc.max {
			old := cc.lru.Back()
			cc.lru.Remove(old)
			delete(cc.entries, old.Value.(*compileEntry).key)
			cc.evictions++
		}
	}
	cc.mu.Unlock()
	close(e.done)
	return e.c, e.err
}

// CompileStats is the compile cache's observability snapshot.
type CompileStats struct {
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"max_entries"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
}

// Stats snapshots the counters.
func (cc *CompileCache) Stats() CompileStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return CompileStats{
		Entries: cc.lru.Len(), MaxEntries: cc.max,
		Hits: cc.hits, Misses: cc.misses, Evictions: cc.evictions,
	}
}
