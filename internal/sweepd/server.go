package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/parallel"
)

// SweepRequest is the body of POST /v1/sweep: a batch of sweep points at
// one priority. Higher priorities are served first; within a priority the
// queue is FIFO. NoForward marks a request that is already a forwarded
// shard, so a worker process never re-shards it (the recursion guard of
// the sharding mode).
type SweepRequest struct {
	Jobs      []JobSpec `json:"jobs"`
	Priority  int       `json:"priority,omitempty"`
	NoForward bool      `json:"no_forward,omitempty"`
}

// SweepRow is one NDJSON response line: the result (or error) of the job
// at Index in the request, in request order. Result is the
// harness.AppResult marshaled by the first computation of this key — every
// later serving repeats those exact bytes. Memo reports whether the point
// was served without running the simulator (a completed memo hit or a ride
// on another request's in-flight computation).
type SweepRow struct {
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Memo   bool            `json:"memo"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Options configures a Server.
type Options struct {
	// MemoEntries bounds the result memo (≤ 0 = default).
	MemoEntries int
	// CompileEntries bounds the compiled-program cache (≤ 0 = default).
	CompileEntries int
	// Workers is the job worker count (≤ 0 = GOMAXPROCS). Worker 0 runs
	// unbudgeted — the progress guarantee — and every additional worker
	// blocks for a token from the process-wide internal/parallel budget
	// before each job, so a busy server and its own torus PDES engines
	// share one CPU budget instead of oversubscribing.
	Workers int
	// Peers are base URLs of further sweepd worker processes; large
	// requests shard across [self, peers...] round-robin.
	Peers []string
	// ShardSize is the points-per-shard for forwarded requests (≤ 0 =
	// default 64). Requests with at most one shard's worth of points are
	// served locally regardless of peers.
	ShardSize int
}

// Server is the persistent simulation service: result memo, shared compile
// cache, priority worker queue, and the HTTP surface (POST /v1/sweep NDJSON
// streaming, GET /v1/stats, GET /healthz).
type Server struct {
	memo    *Memo
	compile *CompileCache
	queue   *Queue
	workers int

	peers     []string
	shardSize int
	httpc     *http.Client

	stop    chan struct{}
	wg      sync.WaitGroup
	jobsRun atomic.Int64
}

// NewServer builds a server and starts its workers.
func NewServer(opt Options) *Server {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shard := opt.ShardSize
	if shard <= 0 {
		shard = 64
	}
	s := &Server{
		memo:      NewMemo(opt.MemoEntries),
		compile:   NewCompileCache(opt.CompileEntries),
		queue:     NewQueue(),
		workers:   workers,
		peers:     opt.Peers,
		shardSize: shard,
		httpc:     &http.Client{Timeout: 30 * time.Minute},
		stop:      make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// Close stops the workers after draining the queue (every queued task has
// memo waiters that must be answered) and waits for them.
func (s *Server) Close() {
	close(s.stop)
	parallel.WakeWaiters()
	s.queue.Close()
	s.wg.Wait()
}

// worker is one queue consumer. Worker 0 never waits for budget — with
// every token held elsewhere the queue still drains one job at a time.
// The extra workers block for a process-wide parallel-budget token before
// each job; when no token can come (the server is stopping, or the budget
// has zero capacity on a single-CPU machine) they run tokenless so a
// popped job always completes and answers its memo waiters.
func (s *Server) worker(i int) {
	defer s.wg.Done()
	for {
		t, ok := s.queue.Pop()
		if !ok {
			return
		}
		if i > 0 && parallel.AcquireWorkerWait(s.stop) {
			s.runTask(t)
			parallel.ReleaseWorkers(1)
			continue
		}
		s.runTask(t)
	}
}

// runTask executes one job through the harness — with the shared compile
// cache injected — and completes its memo entry. The marshaled result
// bytes stored here are what every future hit of this key serves.
func (s *Server) runTask(t *task) {
	cfg := t.job.Cfg
	cfg.Compile = s.compile.CompileFor(t.job.App, t.job.Scale)
	ar, err := harness.RunApp(t.job.Spec, cfg)
	var data []byte
	if err == nil {
		data, err = json.Marshal(ar)
	}
	s.memo.Complete(t.entry, data, err)
	s.jobsRun.Add(1)
}

// enqueue runs every job through the memo: leaders are pushed onto the
// worker queue, waiters just hold the shared entry. hits[i] reports
// whether point i was served without enqueueing new work.
func (s *Server) enqueue(jobs []*Job, priority int) (entries []*Entry, hits []bool) {
	entries = make([]*Entry, len(jobs))
	hits = make([]bool, len(jobs))
	for i, j := range jobs {
		e, leader := s.memo.GetOrStart(j.Key)
		if leader {
			s.queue.Push(j, e, priority)
		}
		entries[i] = e
		hits[i] = !leader
	}
	return entries, hits
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "no jobs in request", http.StatusBadRequest)
		return
	}
	// Resolve every spec before the first byte of response: a bad point
	// anywhere in the batch is a whole-request 400, never a mid-stream
	// surprise.
	jobs := make([]*Job, len(req.Jobs))
	for i := range req.Jobs {
		j, err := req.Jobs[i].Resolve()
		if err != nil {
			http.Error(w, fmt.Sprintf("job %d: %v", i, err), http.StatusBadRequest)
			return
		}
		jobs[i] = j
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	if !req.NoForward && len(s.peers) > 0 && len(req.Jobs) > s.shardSize {
		s.streamSharded(w, &req, jobs)
		return
	}
	entries, hits := s.enqueue(jobs, req.Priority)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range entries {
		<-entries[i].Done
		enc.Encode(SweepRow{
			Index: i, Key: jobs[i].Key.String(), Memo: hits[i],
			Result: entries[i].Data, Error: entries[i].Err,
		})
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// streamSharded splits the request into contiguous shards, distributes
// them round-robin over [self, peers...], and streams the merged rows in
// request order. Contiguity is what keeps the merge trivial and the output
// byte-identical to a local serve: shard k's rows are exactly the request
// indices [k·size, (k+1)·size), so emitting completed shards in shard
// order reproduces the canonical point order.
func (s *Server) streamSharded(w http.ResponseWriter, req *SweepRequest, jobs []*Job) {
	type shardOut struct {
		rows []SweepRow
		err  error
		done chan struct{}
	}
	targets := append([]string{""}, s.peers...) // "" = serve locally
	var shards []*shardOut
	for off := 0; off < len(jobs); off += s.shardSize {
		end := off + s.shardSize
		if end > len(jobs) {
			end = len(jobs)
		}
		so := &shardOut{done: make(chan struct{})}
		shards = append(shards, so)
		target := targets[(len(shards)-1)%len(targets)]
		go func(off, end int, target string, so *shardOut) {
			defer close(so.done)
			if target == "" {
				entries, hits := s.enqueue(jobs[off:end], req.Priority)
				for i, e := range entries {
					<-e.Done
					so.rows = append(so.rows, SweepRow{
						Index: off + i, Key: jobs[off+i].Key.String(), Memo: hits[i],
						Result: e.Data, Error: e.Err,
					})
				}
				return
			}
			so.rows, so.err = s.forward(target, req.Jobs[off:end], req.Priority, off)
		}(off, end, target, so)
	}
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for k, so := range shards {
		<-so.done
		if so.err != nil {
			// The status line is long gone; report the shard failure on
			// every one of its rows so the client sees exactly which points
			// went unserved and why.
			off := k * s.shardSize
			end := off + s.shardSize
			if end > len(jobs) {
				end = len(jobs)
			}
			for i := off; i < end; i++ {
				enc.Encode(SweepRow{
					Index: i, Key: jobs[i].Key.String(),
					Error: fmt.Sprintf("shard forward failed: %v", so.err),
				})
			}
		} else {
			for i := range so.rows {
				enc.Encode(so.rows[i])
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// forward posts one shard to a peer worker process (NoForward set — a
// shard is never re-sharded) and re-indexes the returned rows into the
// parent request's index space.
func (s *Server) forward(base string, specs []JobSpec, priority, offset int) ([]SweepRow, error) {
	body, err := json.Marshal(SweepRequest{Jobs: specs, Priority: priority, NoForward: true})
	if err != nil {
		return nil, err
	}
	resp, err := s.httpc.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		return nil, fmt.Errorf("%s: %s: %s", base, resp.Status, bytes.TrimSpace(msg.Bytes()))
	}
	dec := json.NewDecoder(resp.Body)
	rows := make([]SweepRow, 0, len(specs))
	for dec.More() {
		var row SweepRow
		if err := dec.Decode(&row); err != nil {
			return nil, fmt.Errorf("%s: decoding shard response: %w", base, err)
		}
		row.Index += offset
		rows = append(rows, row)
	}
	if len(rows) != len(specs) {
		return nil, fmt.Errorf("%s: shard returned %d rows for %d jobs", base, len(rows), len(specs))
	}
	return rows, nil
}

// ServerStats is the /v1/stats document.
type ServerStats struct {
	Memo       MemoStats    `json:"memo"`
	Compile    CompileStats `json:"compile"`
	QueueDepth int          `json:"queue_depth"`
	Workers    int          `json:"workers"`
	JobsRun    int64        `json:"jobs_run"`
	Peers      []string     `json:"peers,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ServerStats{
		Memo:       s.memo.Stats(),
		Compile:    s.compile.Stats(),
		QueueDepth: s.queue.Len(),
		Workers:    s.workers,
		JobsRun:    s.jobsRun.Load(),
		Peers:      s.peers,
	})
}
