package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/harness"
)

// Client is the sweep-service client: it submits a batch of points and
// decodes the NDJSON stream back into harness results — the same structs
// an in-process sweep produces, rendered by the same report code, so a
// served sweep's output is byte-identical to a local one.
type Client struct {
	// Base is the server's base URL (e.g. http://127.0.0.1:8077).
	Base string
	// Priority is attached to every submitted batch.
	Priority int
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

// SweepSummary reports what serving a batch cost.
type SweepSummary struct {
	Rows     int
	MemoHits int
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Sweep submits the specs and returns their results in request order. Any
// row-level failure (a job the simulator rejected, an unserved shard)
// fails the whole sweep, mirroring the in-process driver's first-error
// exit.
func (c *Client) Sweep(specs []JobSpec) ([]*harness.AppResult, SweepSummary, error) {
	var sum SweepSummary
	body, err := json.Marshal(SweepRequest{Jobs: specs, Priority: c.Priority})
	if err != nil {
		return nil, sum, err
	}
	resp, err := c.httpc().Post(c.Base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, sum, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		return nil, sum, fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(msg.Bytes()))
	}
	dec := json.NewDecoder(resp.Body)
	results := make([]*harness.AppResult, 0, len(specs))
	for dec.More() {
		var row SweepRow
		if err := dec.Decode(&row); err != nil {
			return nil, sum, fmt.Errorf("decoding response: %w", err)
		}
		if row.Index != sum.Rows {
			return nil, sum, fmt.Errorf("row %d arrived out of order (expected %d)", row.Index, sum.Rows)
		}
		sum.Rows++
		if row.Memo {
			sum.MemoHits++
		}
		if row.Error != "" {
			return nil, sum, fmt.Errorf("job %d: %s", row.Index, row.Error)
		}
		var ar harness.AppResult
		if err := json.Unmarshal(row.Result, &ar); err != nil {
			return nil, sum, fmt.Errorf("job %d: decoding result: %w", row.Index, err)
		}
		results = append(results, &ar)
	}
	if sum.Rows != len(specs) {
		return nil, sum, fmt.Errorf("server returned %d rows for %d jobs", sum.Rows, len(specs))
	}
	return results, sum, nil
}

// Stats fetches the server's /v1/stats document.
func (c *Client) Stats() (ServerStats, error) {
	var st ServerStats
	resp, err := c.httpc().Get(c.Base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("server: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
