package sweepd

import (
	"container/list"
	"sync"
)

// Entry is one memoized (or in-flight) job result. Waiters block on Done;
// after it closes, Data holds the exact NDJSON result payload the first
// computation produced (or Err the job's error), immutable forever — the
// content-addressed guarantee that a repeated point is served
// byte-identically.
type Entry struct {
	Key  Key
	Done chan struct{}
	// Data is the marshaled result payload; Err the job error. Exactly one
	// is set. Written once, before Done closes; read-only afterwards.
	Data []byte
	Err  string

	elem *list.Element // LRU position; nil while in flight
}

// Ready reports whether the entry has completed (non-blocking).
func (e *Entry) Ready() bool {
	select {
	case <-e.Done:
		return true
	default:
		return false
	}
}

// Memo is the content-addressed result store: an LRU-bounded map from job
// key to finished result bytes, with single-flight semantics for
// concurrent requests of the same key — the second requester waits for the
// first computation instead of repeating it.
//
// Because the simulator is deterministic, job errors (a fault plan that
// kills every retry, say) are memoized exactly like results: the same spec
// would fail the same way again.
type Memo struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*Entry
	lru     *list.List // completed entries, most recently used at front

	hits, misses, evictions int64
}

// NewMemo builds a memo bounded to max completed entries (≤ 0 means the
// default of 4096).
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = 4096
	}
	return &Memo{max: max, entries: make(map[Key]*Entry), lru: list.New()}
}

// GetOrStart looks the key up. The boolean reports leadership: true means
// the caller must compute the result and Complete the entry; false means
// another request already did (or is doing) the work — wait on Done. A
// completed hit is counted and refreshed in the LRU order.
func (m *Memo) GetOrStart(k Key) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[k]; ok {
		if e.elem != nil {
			m.lru.MoveToFront(e.elem)
			m.hits++
		} else {
			// In flight: the waiter rides the leader's computation. Counted
			// as a hit — the work is shared, not repeated.
			m.hits++
		}
		return e, false
	}
	m.misses++
	e := &Entry{Key: k, Done: make(chan struct{})}
	m.entries[k] = e
	return e, true
}

// Peek returns the completed payload for k without starting anything and
// without blocking: the benchmarkable pure hit path. It refreshes the LRU
// position and counts a hit on success.
func (m *Memo) Peek(k Key) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[k]
	if !ok || e.elem == nil {
		return nil, false
	}
	m.lru.MoveToFront(e.elem)
	m.hits++
	return e.Data, true
}

// Complete finishes a leader's entry with the result payload (or error),
// publishes it to every waiter, inserts it into the LRU order and evicts
// the oldest completed entries beyond the bound.
func (m *Memo) Complete(e *Entry, data []byte, err error) {
	m.mu.Lock()
	e.Data = data
	if err != nil {
		e.Err = err.Error()
	}
	e.elem = m.lru.PushFront(e)
	for m.lru.Len() > m.max {
		old := m.lru.Back()
		m.lru.Remove(old)
		victim := old.Value.(*Entry)
		delete(m.entries, victim.Key)
		m.evictions++
	}
	m.mu.Unlock()
	close(e.Done)
}

// Forget drops an in-flight entry whose computation could not finish (the
// leader is abandoning it), waking waiters with an error so nobody blocks
// forever. Completed entries are never forgotten — eviction handles those.
func (m *Memo) Forget(e *Entry, err error) {
	m.mu.Lock()
	if e.elem == nil {
		delete(m.entries, e.Key)
		if err != nil {
			e.Err = err.Error()
		}
		m.mu.Unlock()
		close(e.Done)
		return
	}
	m.mu.Unlock()
}

// MemoStats is the memo's observability snapshot.
type MemoStats struct {
	Entries   int   `json:"entries"`
	MaxEntries int  `json:"max_entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{
		Entries: m.lru.Len(), MaxEntries: m.max,
		Hits: m.hits, Misses: m.misses, Evictions: m.evictions,
	}
}
