// Package sweepd is the persistent simulation service: a long-running
// HTTP/JSON server that compiles once and serves many — the "heavy sweep
// traffic" layer the roadmap names. Three caches make repeated work free:
//
//   - a content-addressed result memo (memo.go): the full job spec is
//     canonically encoded, hashed, and the finished result row's exact
//     bytes are stored under that key in an LRU-bounded store, so a
//     repeated sweep point never touches the engine and is served
//     byte-identically forever;
//   - a shared compiled-program cache (cache.go): concurrent jobs that
//     agree on (workload, scale, mode, machine parameters) reuse one
//     core.Compiled — and, through it, the per-Compiled engine pool — so
//     a mixed sweep pays each distinct compilation once per process;
//   - a priority job queue (queue.go) with bounded worker concurrency
//     drawn from the process-wide internal/parallel budget.
//
// Results stream back as NDJSON in canonical point order — the
// strictly-ordered single-emitter of internal/parallel lifted to an HTTP
// response — and large sweeps shard across forwarded worker processes
// (server.go) and merge back into byte-identical order.
package sweepd

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"repro/internal/driver"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// JobSpec is one sweep point as submitted over the wire: an application
// swept across PE counts under one machine configuration — exactly the
// unit ccdpbench's in-process path hands to harness.RunApp. The zero value
// of every optional field means the same thing the corresponding CLI
// flag's default does, so a spec built from flags and a spec built from a
// sparse JSON document resolve identically.
type JobSpec struct {
	// App names the workload (case-insensitive; the workload registry's
	// name set). Required.
	App string `json:"app"`
	// Scale is the problem scale: "small" or "paper" ("" = paper).
	Scale string `json:"scale,omitempty"`
	// PEs are the PE counts of the sweep ("" = the paper's 1..64 ladder).
	PEs []int `json:"pes,omitempty"`
	// SkipBase drops the BASE runs (CCDP and the sequential golden only).
	SkipBase bool `json:"skip_base,omitempty"`
	// Profile names a machine profile ("" = t3d).
	Profile string `json:"profile,omitempty"`
	// DomainSize overrides the profile's coherence-domain size (0 = profile
	// default).
	DomainSize int `json:"domain_size,omitempty"`
	// Topology is the interconnect: "flat", "torus", or "XxYxZ" ("" = flat).
	Topology string `json:"topology,omitempty"`
	// PDES is the torus commit scheme: optimistic, conservative or adaptive
	// ("" = optimistic). Never changes results, only server wall-clock; it
	// still participates in the memo key so a job's spec is honored
	// literally.
	PDES string `json:"pdes,omitempty"`
	// FaultRate / FaultKinds / FaultSeed configure seeded fault injection
	// (rate 0 = fault-free; kinds "" = all).
	FaultRate  float64 `json:"fault_rate,omitempty"`
	FaultKinds string  `json:"fault_kinds,omitempty"`
	FaultSeed  int64   `json:"fault_seed,omitempty"`
	// FaultRetries is the retry budget for killed faulted runs (0 = the
	// harness default).
	FaultRetries int `json:"fault_retries,omitempty"`
}

// Key is the content address of one job: a SHA-256 over the canonical
// encoding of the resolved spec. Two requests get the same key iff they
// describe the same simulation — whatever JSON field order, name casing or
// default-spelling ("" vs "t3d", "late,drop" vs "drop,late") they arrived
// with.
type Key [sha256.Size]byte

func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Job is a resolved, validated JobSpec: the workload and harness
// configuration ready to run, plus the content-addressed key.
type Job struct {
	Spec *workloads.Spec
	Cfg  harness.Config
	Key  Key
	// App and Scale are the registry-canonical workload coordinates — the
	// compile cache keys on them (a Spec's Name alone is ambiguous: MXM at
	// "small" and "paper" scale share it).
	App   string
	Scale string
	// canonical is the encoding the Key hashes — kept for tests and the
	// stats endpoint's debugging view.
	canonical string
}

// Resolve validates a JobSpec against the registries and computes its
// canonical form. Every failure is an error return naming the valid
// choices — the server's HTTP 400 — never an exit.
func (js *JobSpec) Resolve() (*Job, error) {
	scale := js.Scale
	if scale == "" {
		scale = "paper"
	}
	spec, err := driver.App(js.App, scale)
	if err != nil {
		return nil, err
	}
	cfg, err := driver.SweepConfig(js.Profile, js.DomainSize, js.Topology, js.PDES,
		js.FaultRate, js.FaultKinds, js.FaultSeed)
	if err != nil {
		return nil, err
	}
	// Normalize the profile to the registry's canonical name ("" and any
	// casing of "t3d" are the same machine — they must be the same key).
	cfg.Profile = machine.MustProfileParams(cfg.Profile, 1).Profile
	cfg.SkipBase = js.SkipBase
	cfg.FaultRetries = js.FaultRetries
	pes := js.PEs
	if len(pes) == 0 {
		pes = harness.PaperPEs
	}
	for _, p := range pes {
		if p < 1 {
			return nil, fmt.Errorf("bad PE count %d", p)
		}
	}
	cfg.PECounts = pes

	j := &Job{Spec: spec, Cfg: cfg, App: spec.Name, Scale: scale}
	j.canonical = string(appendCanonical(nil, spec.Name, scale, &cfg))
	j.Key = sha256.Sum256([]byte(j.canonical))
	return j, nil
}

// appendCanonical appends the byte-stable canonical encoding of a resolved
// job to dst. Fields appear in one fixed order with explicit tags, every
// value normalized through the registries that resolved it:
//
//   - the app name is the registry's canonical spelling ("mxm" → "MXM");
//   - the profile is the registry name with the "" = t3d alias collapsed;
//   - the topology is the parsed noc.Config, not the flag spelling;
//   - the pdes scheme is the parsed mode's name ("" = optimistic);
//   - fault kinds come sorted and deduplicated from fault.ParseKinds, and
//     the whole fault block collapses to "off" at rate 0 — a disabled
//     plan's seed and kinds cannot fragment the memo.
//
// Any new axis that changes simulation results MUST be appended here;
// TestKeyDistinctAcrossEveryAxis enumerates the axes and fails when a
// JobSpec field is missing from the encoding.
func appendCanonical(dst []byte, app, scale string, cfg *harness.Config) []byte {
	dst = append(dst, "sweepd/v1|app="...)
	dst = append(dst, app...)
	dst = append(dst, "|scale="...)
	dst = append(dst, scale...)
	dst = append(dst, "|pes="...)
	for i, p := range cfg.PECounts {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(p), 10)
	}
	dst = append(dst, "|base="...)
	dst = appendBool(dst, !cfg.SkipBase)
	dst = append(dst, "|profile="...)
	dst = append(dst, cfg.Profile...) // registry-normalized by Resolve
	dst = append(dst, "|domain="...)
	dst = strconv.AppendInt(dst, int64(cfg.DomainSize), 10)
	dst = append(dst, "|topo="...)
	dst = append(dst, cfg.Topology.Kind.String()...)
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, int64(cfg.Topology.X), 10)
	dst = append(dst, 'x')
	dst = strconv.AppendInt(dst, int64(cfg.Topology.Y), 10)
	dst = append(dst, 'x')
	dst = strconv.AppendInt(dst, int64(cfg.Topology.Z), 10)
	dst = append(dst, "|pdes="...)
	dst = append(dst, cfg.PDES.String()...)
	dst = append(dst, "|fault="...)
	if !cfg.Fault.Enabled() {
		dst = append(dst, "off"...)
	} else {
		dst = append(dst, "rate="...)
		dst = strconv.AppendFloat(dst, cfg.Fault.Rate, 'g', -1, 64)
		dst = append(dst, ";kinds="...)
		for i, k := range cfg.Fault.Kinds { // sorted+deduped by ParseKinds
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, k.String()...)
		}
		dst = append(dst, ";seed="...)
		dst = strconv.AppendInt(dst, cfg.Fault.Seed, 10)
		dst = append(dst, ";retries="...)
		retries := cfg.FaultRetries
		if retries <= 0 {
			retries = harness.DefaultFaultRetries // the alias the harness applies
		}
		dst = strconv.AppendInt(dst, int64(retries), 10)
	}
	return dst
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, '1')
	}
	return append(dst, '0')
}
