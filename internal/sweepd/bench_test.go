package sweepd

import (
	"testing"
)

// BenchmarkMemoHit is the served-point fast path: key lookup + payload
// fetch for an already-memoized job. CI gates on allocs/op — the hit path
// must stay allocation-free, or a million-point warm sweep stops being
// cheap.
func BenchmarkMemoHit(b *testing.B) {
	m := NewMemo(0)
	j, err := (&JobSpec{App: "MXM", Scale: "small"}).Resolve()
	if err != nil {
		b.Fatal(err)
	}
	e, leader := m.GetOrStart(j.Key)
	if !leader {
		b.Fatal("fresh memo claims the key exists")
	}
	m.Complete(e, []byte(`{"Name":"MXM"}`), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Peek(j.Key); !ok {
			b.Fatal("memo lost the entry")
		}
	}
}

// BenchmarkResolveKey prices the request-side cost of a memoized point:
// resolving the spec (workload lookup, config validation) and hashing the
// canonical encoding. This runs once per point per request, so it bounds
// how fast a fully-warm million-point sweep can be admitted.
func BenchmarkResolveKey(b *testing.B) {
	js := &JobSpec{App: "MXM", Scale: "small", PEs: []int{1, 2, 4}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := js.Resolve(); err != nil {
			b.Fatal(err)
		}
	}
}
