package sweepd

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func mustResolve(t *testing.T, js JobSpec) *Job {
	t.Helper()
	j, err := js.Resolve()
	if err != nil {
		t.Fatalf("Resolve(%+v): %v", js, err)
	}
	return j
}

// The memo key must not depend on the JSON field order a client happened
// to serialize — only on the resolved spec.
func TestKeyInvariantUnderJSONFieldOrder(t *testing.T) {
	a := `{"app":"MXM","scale":"small","pes":[1,2],"profile":"cxl-pcc","topology":"torus","fault_rate":0.01,"fault_seed":7}`
	b := `{"fault_seed":7,"topology":"torus","fault_rate":0.01,"pes":[1,2],"profile":"cxl-pcc","scale":"small","app":"MXM"}`
	var ja, jb JobSpec
	if err := json.Unmarshal([]byte(a), &ja); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &jb); err != nil {
		t.Fatal(err)
	}
	ka, kb := mustResolve(t, ja).Key, mustResolve(t, jb).Key
	if ka != kb {
		t.Fatalf("field order changed the key: %s vs %s", ka, kb)
	}
}

// Every spelling of the same simulation must land on the same key: default
// values written explicitly, case aliasing, fault-kind order and
// duplicates, and the whole disabled-fault block.
func TestKeyAliasInvariance(t *testing.T) {
	base := JobSpec{App: "MXM"}
	aliases := []struct {
		name string
		spec JobSpec
	}{
		{"canonical app casing", JobSpec{App: "mxm"}},
		{"explicit paper scale", JobSpec{App: "MXM", Scale: "paper"}},
		{"explicit t3d profile", JobSpec{App: "MXM", Profile: "t3d"}},
		{"upper-case profile", JobSpec{App: "MXM", Profile: "T3D"}},
		{"explicit flat topology", JobSpec{App: "MXM", Topology: "flat"}},
		{"explicit optimistic pdes", JobSpec{App: "MXM", PDES: "optimistic"}},
		{"explicit paper PE ladder", JobSpec{App: "MXM", PEs: []int{1, 2, 4, 8, 16, 32, 64}}},
		{"disabled fault ignores seed", JobSpec{App: "MXM", FaultSeed: 99}},
		{"disabled fault ignores kinds", JobSpec{App: "MXM", FaultKinds: "drop"}},
		{"disabled fault ignores retries", JobSpec{App: "MXM", FaultRetries: 7}},
	}
	want := mustResolve(t, base).Key
	for _, a := range aliases {
		if got := mustResolve(t, a.spec).Key; got != want {
			t.Errorf("%s: key %s != base %s", a.name, got, want)
		}
	}

	// Fault-kind list order and duplicates are canonicalized away; the
	// default retry budget is the same key as an explicit one.
	f1 := JobSpec{App: "MXM", FaultRate: 0.01, FaultKinds: "late,drop"}
	f2 := JobSpec{App: "MXM", FaultRate: 0.01, FaultKinds: "drop,late,drop"}
	f3 := JobSpec{App: "MXM", FaultRate: 0.01, FaultKinds: "late,drop", FaultRetries: 2}
	k1 := mustResolve(t, f1).Key
	if k2 := mustResolve(t, f2).Key; k2 != k1 {
		t.Errorf("kind order/dedup changed the key: %s vs %s", k2, k1)
	}
	if k3 := mustResolve(t, f3).Key; k3 != k1 {
		t.Errorf("explicit default retries changed the key: %s vs %s", k3, k1)
	}
}

// Every axis of the spec that changes simulation results must change the
// key. The reflection guard at the bottom fails when JobSpec grows a field
// this table does not cover — the reminder to extend appendCanonical.
func TestKeyDistinctAcrossEveryAxis(t *testing.T) {
	base := JobSpec{App: "MXM", FaultRate: 0.01}
	variants := map[string]JobSpec{
		"App":          {App: "SWIM", FaultRate: 0.01},
		"Scale":        {App: "MXM", Scale: "small", FaultRate: 0.01},
		"PEs":          {App: "MXM", PEs: []int{1, 2}, FaultRate: 0.01},
		"SkipBase":     {App: "MXM", SkipBase: true, FaultRate: 0.01},
		"Profile":      {App: "MXM", Profile: "cxl-pcc", FaultRate: 0.01},
		"DomainSize":   {App: "MXM", DomainSize: 4, FaultRate: 0.01},
		"Topology":     {App: "MXM", Topology: "torus", FaultRate: 0.01},
		"PDES":         {App: "MXM", PDES: "conservative", FaultRate: 0.01},
		"FaultRate":    {App: "MXM", FaultRate: 0.05},
		"FaultKinds":   {App: "MXM", FaultRate: 0.01, FaultKinds: "drop"},
		"FaultSeed":    {App: "MXM", FaultRate: 0.01, FaultSeed: 2},
		"FaultRetries": {App: "MXM", FaultRate: 0.01, FaultRetries: 9},
	}
	keys := map[Key]string{mustResolve(t, base).Key: "base"}
	for name, spec := range variants {
		k := mustResolve(t, spec).Key
		if prev, dup := keys[k]; dup {
			t.Errorf("axis %s collides with %s: key %s", name, prev, k)
		}
		keys[k] = name
	}

	rt := reflect.TypeOf(JobSpec{})
	if rt.NumField() != len(variants) {
		t.Errorf("JobSpec has %d fields but the distinctness table covers %d: "+
			"a new result-changing axis must be added to appendCanonical and this table",
			rt.NumField(), len(variants))
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown app", JobSpec{App: "NOPE"}, "valid applications"},
		{"unknown scale", JobSpec{App: "MXM", Scale: "huge"}, "valid scales"},
		{"unknown profile", JobSpec{App: "MXM", Profile: "cray-2"}, "valid profiles"},
		{"bad topology", JobSpec{App: "MXM", Topology: "ring"}, "topology"},
		{"bad pdes", JobSpec{App: "MXM", PDES: "psychic"}, "pdes"},
		{"bad fault kind", JobSpec{App: "MXM", FaultRate: 0.1, FaultKinds: "gremlin"}, "unknown kind"},
		{"bad PE count", JobSpec{App: "MXM", PEs: []int{4, 0}}, "PE count"},
		{"negative domain", JobSpec{App: "MXM", DomainSize: -1}, "domain"},
	}
	for _, c := range cases {
		_, err := c.spec.Resolve()
		if err == nil {
			t.Errorf("%s: Resolve accepted %+v", c.name, c.spec)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// The canonical encoding is the documented wire-stable format; pin its
// shape so accidental reordering (which would orphan every persisted key)
// fails loudly.
func TestCanonicalEncodingShape(t *testing.T) {
	j := mustResolve(t, JobSpec{App: "mxm", Scale: "small", PEs: []int{1, 2},
		Profile: "T3D", Topology: "2x2x1", FaultRate: 0.01, FaultKinds: "drop,late", FaultSeed: 3})
	want := "sweepd/v1|app=MXM|scale=small|pes=1,2|base=1|profile=t3d|domain=0|" +
		"topo=torus:2x2x1|pdes=optimistic|fault=rate=0.01;kinds=drop,late;seed=3;retries=2"
	if j.canonical != want {
		t.Errorf("canonical encoding drifted:\n got %s\nwant %s", j.canonical, want)
	}
}
