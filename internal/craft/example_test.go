package craft_test

import (
	"fmt"

	"repro/internal/craft"
	"repro/internal/ir"
)

func ExampleBlockChunk() {
	// 64 loop iterations over 4 PEs: contiguous 16-iteration blocks.
	for pe := 0; pe < 4; pe++ {
		c := craft.BlockChunk(0, 63, 4, pe)
		fmt.Printf("PE %d: %d..%d\n", pe, c.Lo, c.Hi)
	}
	// Output:
	// PE 0: 0..15
	// PE 1: 16..31
	// PE 2: 32..47
	// PE 3: 48..63
}

func ExampleAlignedChunk() {
	// An interior loop 1..62 aligned with a 64-extent distribution: each
	// PE runs exactly the iterations inside its own slab, so chunk edges
	// coincide with ownership boundaries (no spurious remote traffic).
	for pe := 0; pe < 4; pe++ {
		c := craft.AlignedChunk(1, 62, 64, 4, pe)
		fmt.Printf("PE %d: %d..%d\n", pe, c.Lo, c.Hi)
	}
	// Output:
	// PE 0: 1..15
	// PE 1: 16..31
	// PE 2: 32..47
	// PE 3: 48..62
}

func ExampleOwnerOfOffset() {
	// Column-major 8×8 matrix, columns block-distributed over 4 PEs:
	// element (3, 5) lives in column 5, owned by PE 2.
	a := &ir.Array{Name: "A", Dims: []int64{8, 8}, Shared: true, Dist: ir.DistBlock}
	off := a.LinearOffset([]int64{3, 5})
	fmt.Println(craft.OwnerOfOffset(a, 4, off))
	// Output:
	// 2
}
