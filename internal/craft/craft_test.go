package craft

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestBlockChunkCoversAllIterationsOnce(t *testing.T) {
	for _, tc := range []struct {
		lo, hi int64
		p      int
	}{
		{0, 63, 4}, {0, 63, 64}, {1, 257, 8}, {0, 6, 4}, {5, 5, 3}, {0, 2, 8},
	} {
		seen := map[int64]int{}
		for pe := 0; pe < tc.p; pe++ {
			c := BlockChunk(tc.lo, tc.hi, tc.p, pe)
			for i := c.Lo; i <= c.Hi; i++ {
				seen[i]++
			}
		}
		for i := tc.lo; i <= tc.hi; i++ {
			if seen[i] != 1 {
				t.Errorf("lo=%d hi=%d P=%d: iteration %d covered %d times", tc.lo, tc.hi, tc.p, i, seen[i])
			}
		}
		if int64(len(seen)) != tc.hi-tc.lo+1 {
			t.Errorf("lo=%d hi=%d P=%d: covered %d iterations", tc.lo, tc.hi, tc.p, len(seen))
		}
	}
}

func TestBlockChunkEmptyLoop(t *testing.T) {
	c := BlockChunk(5, 4, 4, 0)
	if !c.Empty() || c.Count() != 0 {
		t.Errorf("empty loop chunk = %+v", c)
	}
}

func TestOwnerOfIterationMatchesChunks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo := r.Int63n(10)
		hi := lo + r.Int63n(300)
		p := 1 + r.Intn(64)
		for i := lo; i <= hi; i++ {
			pe := OwnerOfIteration(lo, hi, p, i)
			c := BlockChunk(lo, hi, p, pe)
			if i < c.Lo || i > c.Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOwnerSlabAndWords(t *testing.T) {
	a := &ir.Array{Name: "A", Dims: []int64{256, 64}, Shared: true, Dist: ir.DistBlock}
	// 64 columns over 4 PEs: 16 columns each; column stride 256.
	for pe := 0; pe < 4; pe++ {
		slab := OwnerSlab(a, 4, pe)
		if slab.Count() != 16 || slab.Lo != int64(pe)*16 {
			t.Errorf("pe %d slab = %+v", pe, slab)
		}
		w := OwnedWords(a, 4, pe)
		if w.Lo != slab.Lo*256 || w.Hi != (slab.Hi+1)*256-1 {
			t.Errorf("pe %d words = %+v", pe, w)
		}
	}
}

func TestOwnerOfOffsetAgreesWithIndex(t *testing.T) {
	a := &ir.Array{Name: "A", Dims: []int64{8, 10}, Shared: true, Dist: ir.DistBlock}
	for off := int64(0); off < a.Size(); off++ {
		k := off / 8
		if OwnerOfOffset(a, 3, off) != OwnerOfIndex(a, 3, k) {
			t.Fatalf("offset %d: owner mismatch", off)
		}
	}
}

func TestPrivateArrayOwnedByPE0(t *testing.T) {
	a := &ir.Array{Name: "T", Dims: []int64{100}}
	if OwnerOfOffset(a, 8, 50) != 0 {
		t.Error("private array should be owned locally (PE 0 convention)")
	}
}

func TestUnevenDistributionLastPEGetsRemainder(t *testing.T) {
	// 10 items over 4 PEs: chunks of 3,3,3,1.
	counts := []int64{}
	for pe := 0; pe < 4; pe++ {
		counts = append(counts, BlockChunk(0, 9, 4, pe).Count())
	}
	want := []int64{3, 3, 3, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("chunk counts = %v, want %v", counts, want)
			break
		}
	}
}
