// Package craft models the work- and data-distribution conventions of the
// Cray MPP Fortran (CRAFT) programming model the paper's codes use:
// block-distributed shared arrays, doshared loop scheduling, and the
// iteration→PE and address→owner mappings both the compiler (stale
// reference analysis) and the runtime (execution engine) must agree on.
package craft

import (
	"repro/internal/ir"
)

// Chunk is a contiguous range of loop iterations assigned to one PE.
type Chunk struct {
	Lo, Hi int64 // inclusive; Lo > Hi means the PE received no iterations
}

// Empty reports whether the chunk holds no iterations.
func (c Chunk) Empty() bool { return c.Lo > c.Hi }

// Count returns the number of iterations in the chunk.
func (c Chunk) Count() int64 {
	if c.Empty() {
		return 0
	}
	return c.Hi - c.Lo + 1
}

// BlockChunk returns the iterations of a step-1 loop lo..hi assigned to PE
// pe of numPE under block (static) scheduling: ceil(n/P)-sized contiguous
// blocks, matching CRAFT's block distribution so that iteration i is
// executed by the PE owning block i.
func BlockChunk(lo, hi int64, numPE, pe int) Chunk {
	n := hi - lo + 1
	if n <= 0 {
		return Chunk{Lo: 1, Hi: 0}
	}
	size := (n + int64(numPE) - 1) / int64(numPE)
	cLo := lo + int64(pe)*size
	cHi := cLo + size - 1
	if cHi > hi {
		cHi = hi
	}
	if cLo > hi {
		return Chunk{Lo: 1, Hi: 0}
	}
	return Chunk{Lo: cLo, Hi: cHi}
}

// AlignedChunk returns the iterations of a step-1 loop lo..hi executed by
// PE pe when the loop is aligned with a block distribution of the given
// extent: pe runs exactly the iterations whose value falls in its slab of
// 0..extent-1 (CRAFT doshared alignment). The loop range must lie within
// the extent.
func AlignedChunk(lo, hi, extent int64, numPE, pe int) Chunk {
	slab := BlockChunk(0, extent-1, numPE, pe)
	if slab.Empty() {
		return slab
	}
	c := Chunk{Lo: max64(lo, slab.Lo), Hi: min64(hi, slab.Hi)}
	if c.Lo > c.Hi {
		return Chunk{Lo: 1, Hi: 0}
	}
	return c
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// OwnerOfIteration returns the PE that executes iteration i of a
// block-scheduled step-1 loop lo..hi.
func OwnerOfIteration(lo, hi int64, numPE int, i int64) int {
	n := hi - lo + 1
	if n <= 0 {
		return 0
	}
	size := (n + int64(numPE) - 1) / int64(numPE)
	p := int((i - lo) / size)
	if p >= numPE {
		p = numPE - 1
	}
	return p
}

// SlabExtent returns the extent of array a's distributed (last) dimension.
func SlabExtent(a *ir.Array) int64 { return a.Dims[len(a.Dims)-1] }

// OwnerSlab returns the index range of the last dimension of array a owned
// by PE pe under block distribution.
func OwnerSlab(a *ir.Array, numPE, pe int) Chunk {
	return BlockChunk(0, SlabExtent(a)-1, numPE, pe)
}

// OwnerOfIndex returns the PE owning the element of a whose last-dimension
// index is k.
func OwnerOfIndex(a *ir.Array, numPE int, k int64) int {
	return OwnerOfIteration(0, SlabExtent(a)-1, numPE, k)
}

// OwnerOfOffset returns the PE owning the element at linear offset off
// (words from a.Base). Block distribution along the last dimension of a
// column-major array makes slabs contiguous, so this is a division.
func OwnerOfOffset(a *ir.Array, numPE int, off int64) int {
	if a.Dist != ir.DistBlock || !a.Shared {
		return 0
	}
	stride := a.DimStride(a.Rank() - 1)
	return OwnerOfIndex(a, numPE, off/stride)
}

// OwnedWords returns the word range [lo,hi] (offsets from a.Base) stored in
// PE pe's local memory; empty chunk if pe owns nothing.
func OwnedWords(a *ir.Array, numPE, pe int) Chunk {
	slab := OwnerSlab(a, numPE, pe)
	if slab.Empty() {
		return slab
	}
	stride := a.DimStride(a.Rank() - 1)
	return Chunk{Lo: slab.Lo * stride, Hi: (slab.Hi+1)*stride - 1}
}
