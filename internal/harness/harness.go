// Package harness drives the paper's evaluation (§5): it runs each
// application sequentially and in BASE and CCDP versions across the PE
// counts of Tables 1 and 2, verifies every configuration's results against
// the sequential run (and that zero stale-value reads occurred), and
// computes the speedups and improvement percentages the tables report.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// PaperPEs are the PE counts of the paper's tables.
var PaperPEs = []int{1, 2, 4, 8, 16, 32, 64}

// Row is one PE-count of one application.
type Row struct {
	PEs         int
	BaseCycles  int64
	CCDPCycles  int64
	BaseSpeedup float64
	CCDPSpeedup float64
	// Improvement is the percentage reduction of execution time of the
	// CCDP version over the BASE version (paper Table 2).
	Improvement float64
	BaseStats   stats.Stats
	CCDPStats   stats.Stats
	// BaseNet/CCDPNet are the interconnect snapshots (per-link utilization,
	// hop histogram); nil under the flat topology.
	BaseNet *noc.Summary
	CCDPNet *noc.Summary
	// BaseAttempts/CCDPAttempts count the runs it took to get a verified
	// result under fault injection (1 = first try; 0 when the mode was
	// skipped).
	BaseAttempts int
	CCDPAttempts int
}

// AppResult holds one application's sweep.
type AppResult struct {
	Name string
	// Profile is the machine-profile name the sweep ran on (normalized;
	// "t3d" when Config.Profile was empty). Reports use it to decide
	// whether to show coherence-domain columns.
	Profile   string
	SeqCycles int64
	Rows      []Row
}

// DefaultFaultRetries is how many extra attempts a failed faulted run gets
// when Config.FaultRetries is unset.
const DefaultFaultRetries = 2

// Config tunes a sweep.
type Config struct {
	PECounts []int
	// Profile names a machine profile from the machine registry
	// ("" = "t3d"). Every run of the sweep — including the sequential
	// golden — is built from it.
	Profile string
	// DomainSize overrides the profile's coherence-domain size when
	// positive (1 collapses the machine to per-PE domains, which makes the
	// stale analysis identical to an undomained run).
	DomainSize int
	// Tune lets ablations modify the machine parameters per run.
	Tune func(*machine.Params)
	// Modes restricts which parallel modes run (default BASE and CCDP).
	SkipBase bool
	// Fault configures seeded fault injection for the parallel runs. The
	// sequential golden run is never faulted — it defines correctness.
	Fault fault.Plan
	// FaultRetries is how many extra attempts a failed faulted run gets,
	// each with a reseeded fault plan and cold caches
	// (default DefaultFaultRetries; ignored when faults are off).
	FaultRetries int
	// Topology selects the interconnect model for the parallel runs (the
	// sequential baseline always runs flat). The zero value keeps the flat
	// constant-latency model, bit-identical to a pre-noc sweep.
	Topology noc.Config
	// PDES selects how parallel torus epochs commit link reservations
	// (optimistic speculation by default). Results are bit-identical across
	// modes; only wall-clock scaling differs.
	PDES noc.PDESMode
	// Compile overrides how configurations are lowered (nil = core.Compile
	// on every run). The sweep service injects its shared compiled-program
	// cache here, so concurrent jobs that agree on (workload, mode,
	// machine) reuse one core.Compiled — and with it the per-Compiled
	// engine pool — across requests. Any override must return a Compiled
	// equivalent to core.Compile's for the same inputs; the harness relies
	// on nothing else.
	Compile func(s *workloads.Spec, mode core.Mode, mp machine.Params) (*core.Compiled, error)
}

// RunApp sweeps one application. Every parallel run's check arrays are
// verified bit-for-bit against the sequential run.
func RunApp(s *workloads.Spec, cfg Config) (*AppResult, error) {
	pes := cfg.PECounts
	if len(pes) == 0 {
		pes = PaperPEs
	}
	if _, err := machine.ProfileParams(cfg.Profile, 1); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	mk := func(p int) machine.Params {
		mp := machine.MustProfileParams(cfg.Profile, p)
		if cfg.DomainSize > 0 {
			mp.DomainSize = cfg.DomainSize
		}
		mp.Topology = cfg.Topology
		mp.PDES = cfg.PDES
		if cfg.Tune != nil {
			cfg.Tune(&mp)
		}
		return mp
	}

	seq, err := runOne(s, core.ModeSeq, mk(1), fault.Plan{}, cfg.Compile)
	if err != nil {
		return nil, fmt.Errorf("%s SEQ: %w", s.Name, err)
	}
	golden := snapshot(s, seq)

	type job struct {
		pe   int
		mode core.Mode
	}
	type out struct {
		res      *exec.Result
		attempts int
		err      error
	}
	jobs := []job{}
	for _, p := range pes {
		if !cfg.SkipBase {
			jobs = append(jobs, job{p, core.ModeBase})
		}
		jobs = append(jobs, job{p, core.ModeCCDP})
	}
	results := make(map[job]out, len(jobs))
	var mu sync.Mutex
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)/2))
	var wg sync.WaitGroup
	for _, jb := range jobs {
		wg.Add(1)
		go func(jb job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, attempts, err := runVerified(s, jb.mode, mk(jb.pe), golden, cfg)
			mu.Lock()
			results[jb] = out{r, attempts, err}
			mu.Unlock()
		}(jb)
	}
	wg.Wait()

	ar := &AppResult{Name: s.Name, Profile: mk(1).Profile, SeqCycles: seq.Cycles}
	for _, p := range pes {
		row := Row{PEs: p}
		if !cfg.SkipBase {
			o := results[job{p, core.ModeBase}]
			if o.err != nil {
				return nil, fmt.Errorf("%s BASE P=%d: %w", s.Name, p, o.err)
			}
			row.BaseCycles = o.res.Cycles
			row.BaseSpeedup = float64(seq.Cycles) / float64(o.res.Cycles)
			row.BaseStats = o.res.Stats
			row.BaseNet = o.res.Net
			row.BaseAttempts = o.attempts
		}
		o := results[job{p, core.ModeCCDP}]
		if o.err != nil {
			return nil, fmt.Errorf("%s CCDP P=%d: %w", s.Name, p, o.err)
		}
		row.CCDPCycles = o.res.Cycles
		row.CCDPSpeedup = float64(seq.Cycles) / float64(o.res.Cycles)
		row.CCDPStats = o.res.Stats
		row.CCDPNet = o.res.Net
		row.CCDPAttempts = o.attempts
		if row.BaseCycles > 0 {
			row.Improvement = 100 * (1 - float64(row.CCDPCycles)/float64(row.BaseCycles))
		}
		ar.Rows = append(ar.Rows, row)
	}
	return ar, nil
}

func runOne(s *workloads.Spec, mode core.Mode, mp machine.Params, plan fault.Plan,
	compile func(*workloads.Spec, core.Mode, machine.Params) (*core.Compiled, error)) (*exec.Result, error) {
	if compile == nil {
		compile = func(s *workloads.Spec, mode core.Mode, mp machine.Params) (*core.Compiled, error) {
			return core.Compile(s.Prog, mode, mp)
		}
	}
	c, err := compile(s, mode, mp)
	if err != nil {
		return nil, err
	}
	res, err := exec.Run(c, exec.Options{FailOnStale: true, Fault: plan})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runVerified runs one configuration and verifies it against the golden
// arrays. Under fault injection a failed run is retried with a reseeded
// fault plan and cold caches, up to the configured budget; the returned
// error after exhaustion names the fault that killed the first attempt.
func runVerified(s *workloads.Spec, mode core.Mode, mp machine.Params, golden map[string][]float64, cfg Config) (*exec.Result, int, error) {
	retries := 0
	if cfg.Fault.Enabled() {
		retries = cfg.FaultRetries
		if retries <= 0 {
			retries = DefaultFaultRetries
		}
	}
	var firstErr error
	for attempt := 0; ; attempt++ {
		plan := cfg.Fault.Reseed(attempt) // attempt 0 keeps the seed
		r, err := runOne(s, mode, mp, plan, cfg.Compile)
		if err == nil {
			err = verify(golden, r)
		}
		if err == nil {
			return r, attempt + 1, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if attempt >= retries {
			if retries > 0 {
				return nil, attempt + 1, fmt.Errorf(
					"killed by injected faults (%s) after %d attempts: %w",
					cfg.Fault, attempt+1, firstErr)
			}
			return nil, attempt + 1, firstErr
		}
	}
}

func snapshot(s *workloads.Spec, r *exec.Result) map[string][]float64 {
	out := map[string][]float64{}
	for _, name := range s.CheckArrays {
		data := r.Mem.ArrayData(r.Mem.ArrayNamed(name))
		cp := make([]float64, len(data))
		copy(cp, data)
		out[name] = cp
	}
	return out
}

func verify(golden map[string][]float64, r *exec.Result) error {
	if r.Stats.StaleValueReads != 0 {
		return fmt.Errorf("%d stale-value reads", r.Stats.StaleValueReads)
	}
	for name, want := range golden {
		got := r.Mem.ArrayData(r.Mem.ArrayNamed(name))
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("array %s differs from sequential at %d: %v vs %v",
					name, i, got[i], want[i])
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- Coherence arena ---------------------------------------------------------

// ArenaConfig tunes one coherence-arena run.
type ArenaConfig struct {
	// PEs is the machine size (default 8).
	PEs int
	// Profile names a machine profile from the machine registry
	// ("" = "t3d").
	Profile string
	// Topology selects the interconnect for the parallel runs (the
	// sequential golden run always runs flat).
	Topology noc.Config
	// HWPrefetcher names a runtime prefetcher from the
	// internal/coherence/prefetch registry, paired with the hardware modes
	// only ("" = none).
	HWPrefetcher string
	// Tune lets ablations modify the machine parameters per run.
	Tune func(*machine.Params)
}

// ArenaEntry is one mode's verified arena run.
type ArenaEntry struct {
	Mode    core.Mode
	Cycles  int64
	Speedup float64 // over sequential
	Stats   stats.Stats
	Net     *noc.Summary
}

// ArenaResult is the coherence arena for one workload: the same program,
// machine and topology under every coherence scheme — the software ones
// (BASE, CCDP) and the hardware directory organizations — each verified
// bit-for-bit against the sequential run with zero oracle violations.
type ArenaResult struct {
	Name      string
	PEs       int
	SeqCycles int64
	Entries   []ArenaEntry
}

// ArenaModes are the modes the arena compares: every registered mode
// except the sequential golden baseline and the deliberately broken
// INCOHERENT demonstrator. Derived from the core mode registry, so new
// modes join the arena by registration.
func ArenaModes() []core.Mode {
	var out []core.Mode
	for _, s := range core.ModeSpecs() {
		if s.Mode == core.ModeSeq || s.Mode == core.ModeIncoherent {
			continue
		}
		out = append(out, s.Mode)
	}
	return out
}

// RunArena runs one workload through the coherence arena.
func RunArena(s *workloads.Spec, cfg ArenaConfig) (*ArenaResult, error) {
	pes := cfg.PEs
	if pes <= 0 {
		pes = 8
	}
	if _, err := machine.ProfileParams(cfg.Profile, 1); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	mk := func(mode core.Mode) machine.Params {
		mp := machine.MustProfileParams(cfg.Profile, pes)
		mp.Topology = cfg.Topology
		if mode.IsHW() {
			mp.HWPrefetcher = cfg.HWPrefetcher
		}
		if cfg.Tune != nil {
			cfg.Tune(&mp)
		}
		return mp
	}

	seq, err := runOne(s, core.ModeSeq, machine.MustProfileParams(cfg.Profile, 1), fault.Plan{}, nil)
	if err != nil {
		return nil, fmt.Errorf("%s SEQ: %w", s.Name, err)
	}
	golden := snapshot(s, seq)

	ar := &ArenaResult{Name: s.Name, PEs: pes, SeqCycles: seq.Cycles}
	for _, mode := range ArenaModes() {
		r, _, err := runVerified(s, mode, mk(mode), golden, Config{})
		if err != nil {
			return nil, fmt.Errorf("%s %s P=%d: %w", s.Name, mode, pes, err)
		}
		if v := r.Stats.OracleViolations; v != 0 {
			return nil, fmt.Errorf("%s %s P=%d: %d oracle violations", s.Name, mode, pes, v)
		}
		ar.Entries = append(ar.Entries, ArenaEntry{
			Mode:    mode,
			Cycles:  r.Cycles,
			Speedup: float64(seq.Cycles) / float64(r.Cycles),
			Stats:   r.Stats,
			Net:     r.Net,
		})
	}
	return ar, nil
}
