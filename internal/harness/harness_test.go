package harness_test

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workloads"
)

func TestRunAppSmallSweep(t *testing.T) {
	s := workloads.MXM(32, 16, 8)
	ar, err := harness.RunApp(s, harness.Config{PECounts: []int{1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Rows) != 3 {
		t.Fatalf("rows = %d", len(ar.Rows))
	}
	for _, r := range ar.Rows {
		if r.BaseCycles <= 0 || r.CCDPCycles <= 0 {
			t.Errorf("P=%d: zero cycles", r.PEs)
		}
		if r.CCDPCycles >= r.BaseCycles {
			t.Errorf("P=%d: CCDP (%d) not faster than BASE (%d)", r.PEs, r.CCDPCycles, r.BaseCycles)
		}
		if r.Improvement <= 0 || r.Improvement >= 100 {
			t.Errorf("P=%d: improvement %.2f%% out of range", r.PEs, r.Improvement)
		}
	}
	// CCDP should show speedup growth with PEs on MXM.
	if !(ar.Rows[2].CCDPSpeedup > ar.Rows[0].CCDPSpeedup) {
		t.Errorf("CCDP speedup not growing: %v", ar.Rows)
	}
}

func TestTablesRender(t *testing.T) {
	s := workloads.VPENTA(32, 2)
	ar, err := harness.RunApp(s, harness.Config{PECounts: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	t1 := report.Table1([]*harness.AppResult{ar})
	t2 := report.Table2([]*harness.AppResult{ar})
	if !strings.Contains(t1, "VPENTA") || !strings.Contains(t1, "Speedups") {
		t.Errorf("Table1:\n%s", t1)
	}
	if !strings.Contains(t2, "%") || !strings.Contains(t2, "Improvement") {
		t.Errorf("Table2:\n%s", t2)
	}
	det := report.Details(ar)
	if !strings.Contains(det, "sequential") {
		t.Errorf("Details:\n%s", det)
	}
}

func TestConfigTuneApplies(t *testing.T) {
	s := workloads.MXM(32, 16, 8)
	plain, err := harness.RunApp(s, harness.Config{PECounts: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	// Making remote reads free should shrink the BASE/CCDP gap.
	tuned, err := harness.RunApp(s, harness.Config{
		PECounts: []int{2},
		Tune: func(mp *machine.Params) {
			mp.RemoteReadCost = 1
			mp.CraftSharedAccessCost = 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Rows[0].Improvement >= plain.Rows[0].Improvement {
		t.Errorf("tuning did not shrink improvement: %.2f vs %.2f",
			tuned.Rows[0].Improvement, plain.Rows[0].Improvement)
	}
}

func TestRunAppWithFaultsSurvivesVerified(t *testing.T) {
	s := workloads.MXM(32, 16, 8)
	plan := fault.Plan{Seed: 3, Rate: 0.02, Kinds: fault.AllKinds()}
	ar, err := harness.RunApp(s, harness.Config{PECounts: []int{4}, Fault: plan})
	if err != nil {
		t.Fatalf("faulted sweep did not survive: %v", err)
	}
	r := ar.Rows[0]
	if r.CCDPAttempts < 1 || r.BaseAttempts < 1 {
		t.Errorf("attempts not recorded: ccdp=%d base=%d", r.CCDPAttempts, r.BaseAttempts)
	}
	if r.CCDPStats.FaultsInjected()+r.BaseStats.FaultsInjected() == 0 {
		t.Error("no faults injected at rate 0.02")
	}
	if r.CCDPStats.OracleViolations != 0 || r.BaseStats.OracleViolations != 0 {
		t.Errorf("oracle violations in a verified run: ccdp=%d base=%d",
			r.CCDPStats.OracleViolations, r.BaseStats.OracleViolations)
	}
}

func TestRunAppFaultRateZeroMatchesFaultFree(t *testing.T) {
	s := workloads.MXM(32, 16, 8)
	free, err := harness.RunApp(s, harness.Config{PECounts: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := harness.RunApp(s, harness.Config{PECounts: []int{2}, Fault: fault.Plan{Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Rows[0].CCDPCycles != free.Rows[0].CCDPCycles ||
		zero.Rows[0].BaseCycles != free.Rows[0].BaseCycles {
		t.Errorf("rate-0 plan changed cycles: ccdp %d vs %d, base %d vs %d",
			zero.Rows[0].CCDPCycles, free.Rows[0].CCDPCycles,
			zero.Rows[0].BaseCycles, free.Rows[0].BaseCycles)
	}
}
