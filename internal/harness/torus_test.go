package harness

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/workloads"
)

// TestTorusTopologySweep drives the acceptance criteria of the interconnect
// model through the harness at the paper's machine size: at 64 PEs the
// torus runs must still verify against the sequential golden, must show
// hop-distance-dependent latencies (mean hops > 1, a populated summary) and
// nonzero link contention on at least two of the paper apps, and must not
// be cycle-identical to the flat model.
func TestTorusTopologySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("64-PE sweep in -short mode")
	}
	small := map[string]*workloads.Spec{}
	for _, s := range workloads.Small() {
		small[s.Name] = s
	}
	contended := 0
	for _, name := range []string{"MXM", "TOMCATV", "SWIM"} {
		s := small[name]
		flat, err := RunApp(s, Config{PECounts: []int{64}})
		if err != nil {
			t.Fatalf("%s flat: %v", name, err)
		}
		torus, err := RunApp(s, Config{PECounts: []int{64}, Topology: noc.Config{Kind: noc.KindTorus}})
		if err != nil {
			t.Fatalf("%s torus: %v", name, err)
		}
		fr, tr := flat.Rows[0], torus.Rows[0]
		if fr.CCDPNet != nil {
			t.Errorf("%s: flat run has a net summary", name)
		}
		if tr.CCDPNet == nil {
			t.Fatalf("%s: torus run has no net summary", name)
		}
		if tr.CCDPNet.X != 4 || tr.CCDPNet.Y != 4 || tr.CCDPNet.Z != 4 {
			t.Errorf("%s: auto dims = %dx%dx%d, want 4x4x4", name, tr.CCDPNet.X, tr.CCDPNet.Y, tr.CCDPNet.Z)
		}
		if tr.CCDPNet.MeanHops <= 1 {
			t.Errorf("%s: torus mean hops %.2f, want > 1", name, tr.CCDPNet.MeanHops)
		}
		if tr.CCDPCycles == fr.CCDPCycles && tr.BaseCycles == fr.BaseCycles {
			t.Errorf("%s: torus cycles identical to flat (ccdp %d, base %d)", name, tr.CCDPCycles, tr.BaseCycles)
		}
		if tr.CCDPStats.NetContended > 0 || tr.BaseStats.NetContended > 0 {
			contended++
		}

		// Torus contention resolution is deterministic: a rerun must land on
		// the exact same cycle counts.
		again, err := RunApp(s, Config{PECounts: []int{64}, Topology: noc.Config{Kind: noc.KindTorus}})
		if err != nil {
			t.Fatalf("%s torus rerun: %v", name, err)
		}
		if again.Rows[0].CCDPCycles != tr.CCDPCycles || again.Rows[0].BaseCycles != tr.BaseCycles {
			t.Errorf("%s: torus rerun diverged: ccdp %d vs %d, base %d vs %d", name,
				again.Rows[0].CCDPCycles, tr.CCDPCycles, again.Rows[0].BaseCycles, tr.BaseCycles)
		}
	}
	if contended < 2 {
		t.Errorf("link contention on %d apps, want >= 2", contended)
	}
}

// TestTorusExplicitDimsMismatch: explicit dims that don't cover the PE
// count must fail loudly, and the sequential baseline must still run (it
// always drops the topology).
func TestTorusExplicitDimsMismatch(t *testing.T) {
	s := workloads.Small()[0]
	_, err := RunApp(s, Config{PECounts: []int{8}, Topology: noc.Config{Kind: noc.KindTorus, X: 4, Y: 4, Z: 4}})
	if err == nil {
		t.Fatal("4x4x4 torus over 8 PEs accepted")
	}
}
