// Property tests over randomly generated epoch programs: the system-level
// soundness arguments of the reproduction.
package progen

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/stale"
)

const propSeeds = 40

func seqRun(t *testing.T, p *ir.Program) *exec.Result {
	t.Helper()
	c, err := core.Compile(p, core.ModeSeq, machine.T3D(1))
	if err != nil {
		t.Fatalf("seq compile: %v", err)
	}
	r, err := exec.Run(c, exec.Options{FailOnStale: true})
	if err != nil {
		t.Fatalf("seq run: %v", err)
	}
	return r
}

func sameSharedArrays(p *ir.Program, a, b *exec.Result) (string, int, bool) {
	for _, arr := range p.Arrays {
		da, db := a.Mem.ArrayData(arr), b.Mem.ArrayData(arr)
		for i := range da {
			if da[i] != db[i] {
				return arr.Name, i, false
			}
		}
	}
	return "", 0, true
}

func TestGeneratedProgramsValidate(t *testing.T) {
	for seed := int64(0); seed < propSeeds; seed++ {
		p := Generate(rand.New(rand.NewSource(seed)), DefaultConfig())
		if err := ir.Validate(p); err != nil {
			t.Fatalf("seed %d: invalid: %v", seed, err)
		}
	}
}

// The central end-to-end property: for every random program and several PE
// counts, BASE and CCDP produce bit-identical results to sequential with
// zero stale-value reads and no epoch-model violations.
func TestPropCCDPCoherentOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < propSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := Generate(rng, DefaultConfig())
		ref := seqRun(t, p)
		for _, pes := range []int{3, 8} {
			for _, mode := range []core.Mode{core.ModeBase, core.ModeCCDP} {
				c, err := core.Compile(p, mode, machine.T3D(pes))
				if err != nil {
					t.Fatalf("seed %d %v P=%d: compile: %v", seed, mode, pes, err)
				}
				r, err := exec.Run(c, exec.Options{FailOnStale: true, DetectRaces: true})
				if err != nil {
					t.Fatalf("seed %d %v P=%d: run: %v", seed, mode, pes, err)
				}
				if name, i, ok := sameSharedArrays(p, ref, r); !ok {
					t.Fatalf("seed %d %v P=%d: %s[%d] differs from sequential\n%s",
						seed, mode, pes, name, i, ir.Format(p))
				}
			}
		}
	}
}

// Analysis soundness: every reference that DYNAMICALLY reads a stale value
// under incoherent caching must have been flagged potentially-stale by the
// static analysis run WITHOUT the intertask-locality read-refresh
// refinement (that refinement assumes the CCDP runtime makes reads
// coherent, which the incoherent execution deliberately does not).
func TestPropStaleAnalysisSound(t *testing.T) {
	flagged := 0
	for seed := int64(0); seed < propSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		p := Generate(rng, DefaultConfig())
		const pes = 4

		ci, err := core.Compile(p, core.ModeIncoherent, machine.T3D(pes))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Analyze the very program the incoherent run executes: identical
		// RefIDs.
		sres, err := stale.AnalyzeOpt(ci.Prog, pes, stale.Options{DisableReadRefresh: true})
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		ri, err := exec.Run(ci, exec.Options{TrackStaleRefs: true})
		if err != nil {
			t.Fatalf("seed %d: incoherent run: %v", seed, err)
		}
		for id, count := range ri.StaleByRef {
			if !sres.StaleReads[id] {
				t.Errorf("seed %d: ref %s read stale values %d times but was not flagged\n%s\n%s",
					seed, ci.Prog.Ref(id), count, sres.Report(), ir.Format(ci.Prog))
			}
			flagged++
		}
	}
	if flagged == 0 {
		t.Log("note: no dynamic stale reads occurred in this corpus (over-approximation untested this run)")
	}
}

// Determinism: two runs of the same configuration agree exactly in cycles.
func TestPropDeterministicCycles(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := Generate(rand.New(rand.NewSource(seed+500)), DefaultConfig())
		c, err := core.Compile(p, core.ModeCCDP, machine.T3D(5))
		if err != nil {
			t.Fatal(err)
		}
		r1, err := exec.Run(c, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := exec.Run(c, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles {
			t.Errorf("seed %d: cycles %d vs %d", seed, r1.Cycles, r2.Cycles)
		}
	}
}

// The scheduler's inserted operations never grow the epoch graph (the
// structural invariant that keeps invalidation tables aligned).
func TestPropSchedulingPreservesEpochStructure(t *testing.T) {
	for seed := int64(0); seed < propSeeds; seed++ {
		p := Generate(rand.New(rand.NewSource(seed+2000)), DefaultConfig())
		g0, err := ir.BuildEpochGraph(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Compile(p, core.ModeCCDP, machine.T3D(6))
		if err != nil {
			t.Fatal(err)
		}
		g1, err := ir.BuildEpochGraph(c.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if len(g0.Nodes) != len(g1.Nodes) {
			t.Fatalf("seed %d: epoch count changed %d -> %d", seed, len(g0.Nodes), len(g1.Nodes))
		}
		for i := range g0.Nodes {
			if g0.Nodes[i].Parallel != g1.Nodes[i].Parallel {
				t.Fatalf("seed %d: epoch %d kind changed", seed, i)
			}
		}
	}
}
