// Package progen generates random well-formed epoch programs for
// property-based testing of the CCDP pipeline. Generated programs respect
// the paper's execution model by construction — DOALL iterations write
// disjoint elements (each epoch writes W(i) at its own iteration index),
// and an epoch never reads what another task of the same epoch writes —
// while exercising the analysis and scheduler with randomized read offsets
// (halo crossings), time-step loops (epoch-graph back edges), inner serial
// loops, conditional reads, serial epochs, and dynamic scheduling.
package progen

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/ir"
)

// Config bounds the generated programs.
type Config struct {
	MaxArrays    int // number of shared arrays (min 3)
	MaxEpochs    int // epochs per program segment (min 2)
	MaxOffset    int // |read offset| bound
	MaxTimeSteps int // iterations of an optional enclosing time loop
}

// DefaultConfig is used by the property tests.
func DefaultConfig() Config {
	return Config{MaxArrays: 5, MaxEpochs: 5, MaxOffset: 3, MaxTimeSteps: 3}
}

// Generate builds one random program. Deterministic per rng state.
func Generate(rng *rand.Rand, cfg Config) *ir.Program {
	if cfg.MaxArrays < 3 {
		cfg.MaxArrays = 3
	}
	if cfg.MaxEpochs < 2 {
		cfg.MaxEpochs = 2
	}
	n := int64(32 + 8*rng.Intn(4)) // 32..56 elements
	b := ir.NewBuilder(fmt.Sprintf("progen-%d", rng.Int63()))

	numArrays := 3 + rng.Intn(cfg.MaxArrays-2)
	arrays := make([]*ir.Array, numArrays)
	twoD := rng.Intn(3) == 0 // a third of programs use 2-D matrices
	rows := int64(8 + 4*rng.Intn(3))
	for k := range arrays {
		if twoD {
			arrays[k] = b.SharedArray(fmt.Sprintf("A%d", k), rows, n)
		} else {
			arrays[k] = b.SharedArray(fmt.Sprintf("A%d", k), n)
		}
	}

	g := &gen{rng: rng, cfg: cfg, n: n, rows: rows, twoD: twoD, arrays: arrays, vars: 0}

	var body []ir.Stmt
	// Initialization epoch: every array gets distinct nonlinear values so
	// stale reads change results.
	iv := g.freshVar()
	var inits []ir.Stmt
	for k, a := range arrays {
		val := ir.Add(ir.Mul(ir.IV(ir.I(iv)), ir.IV(ir.I(iv).AddConst(int64(k+1)))), ir.N(float64(k)))
		if twoD {
			rv := g.freshVar()
			inits = append(inits, ir.DoSerial(rv, ir.K(0), ir.K(rows-1),
				ir.Set(ir.At(a, ir.I(rv), ir.I(iv)),
					ir.Add(ir.Mul(ir.IV(ir.I(rv)), val), ir.IV(ir.I(iv))))))
		} else {
			inits = append(inits, ir.Set(ir.At(a, ir.I(iv)), val))
		}
	}
	body = append(body, g.doall(iv, 0, n-1, inits))

	// Optionally wrap the main epochs in a time-step loop (back edge).
	epochs := g.epochs(2 + rng.Intn(cfg.MaxEpochs-1))
	if cfg.MaxTimeSteps > 1 && rng.Intn(2) == 0 {
		steps := int64(2 + rng.Intn(cfg.MaxTimeSteps-1))
		tv := g.freshVar()
		body = append(body, ir.DoSerial(tv, ir.K(1), ir.K(steps), epochs...))
	} else {
		body = append(body, epochs...)
	}
	// Occasionally a trailing epoch after the loop.
	if rng.Intn(2) == 0 {
		body = append(body, g.epochs(1)...)
	}

	b.Routine("main", body...)
	return b.Build()
}

type gen struct {
	rng    *rand.Rand
	cfg    Config
	n      int64 // extent of the distributed (last) dimension
	rows   int64 // extent of the first dimension (2-D programs)
	twoD   bool
	arrays []*ir.Array
	vars   int
}

// at builds a reference at the given column subscript; 2-D programs add a
// row subscript (a fixed in-bounds row, or the named row variable).
func (g *gen) at(a *ir.Array, col expr.Affine, rowVar string) *ir.Ref {
	if !g.twoD {
		return ir.At(a, col)
	}
	if rowVar != "" {
		return ir.At(a, ir.I(rowVar), col)
	}
	return ir.At(a, ir.K(g.rng.Int63n(g.rows)), col)
}

func (g *gen) freshVar() string {
	g.vars++
	return fmt.Sprintf("v%d", g.vars)
}

// epochs generates count epoch-level statements.
func (g *gen) epochs(count int) []ir.Stmt {
	var out []ir.Stmt
	for e := 0; e < count; e++ {
		switch g.rng.Intn(10) {
		case 0:
			out = append(out, g.serialEpoch())
		case 1:
			out = append(out, g.dynamicEpoch())
		default:
			out = append(out, g.parallelEpoch())
		}
	}
	return out
}

// pickWriteAndReads chooses a write array and read arrays different from it
// (so no epoch reads what its own tasks write at other indices).
func (g *gen) pickWriteAndReads() (*ir.Array, []*ir.Array) {
	w := g.arrays[g.rng.Intn(len(g.arrays))]
	var reads []*ir.Array
	for k := 0; k < 1+g.rng.Intn(3); k++ {
		r := g.arrays[g.rng.Intn(len(g.arrays))]
		if r != w {
			reads = append(reads, r)
		}
	}
	if len(reads) == 0 {
		for _, a := range g.arrays {
			if a != w {
				reads = append(reads, a)
				break
			}
		}
	}
	return w, reads
}

// bodyStmts builds the statements of one iteration: W(...,i) = f(reads at
// column i+delta). 2-D programs pick fixed rows per reference site, keeping
// per-iteration write sets disjoint across columns.
func (g *gen) bodyStmts(iv string, w *ir.Array, reads []*ir.Array) []ir.Stmt {
	off := func() int64 { return int64(g.rng.Intn(2*g.cfg.MaxOffset+1) - g.cfg.MaxOffset) }
	rhs := ir.Expr(ir.N(float64(1 + g.rng.Intn(5))))
	for _, r := range reads {
		load := ir.L(g.at(r, ir.I(iv).AddConst(off()), ""))
		if g.rng.Intn(2) == 0 {
			rhs = ir.Add(rhs, load)
		} else {
			rhs = ir.Add(ir.Mul(rhs, ir.N(0.5)), load)
		}
	}
	wref := g.at(w, ir.I(iv), "")
	stmts := []ir.Stmt{ir.Set(wref, rhs)}

	switch g.rng.Intn(6) {
	case 0:
		// Inner serial loop accumulating more reads (exercises case 1).
		kv := g.freshVar()
		r := reads[0]
		stmts = append(stmts, ir.DoSerial(kv, ir.K(0), ir.K(2),
			ir.Set(wref.Clone(),
				ir.Add(ir.L(wref.Clone()),
					ir.Mul(ir.N(0.25), ir.L(g.at(r, ir.I(iv).Add(ir.I(kv)).AddConst(-1), "")))))))
	case 1:
		// Conditional extra update (exercises may-writes and case 5/6).
		r := reads[0]
		stmts = append(stmts, ir.When(
			ir.CondOf(ir.CmpLT, ir.L(g.at(r, ir.I(iv), "")), ir.N(float64(g.rng.Intn(2000)))),
			[]ir.Stmt{ir.Set(wref.Clone(),
				ir.Mul(ir.L(wref.Clone()), ir.N(1.0625)))}, nil))
	}
	return stmts
}

func (g *gen) loopBounds() (int64, int64) {
	lo := int64(g.cfg.MaxOffset + 1)
	hi := g.n - int64(g.cfg.MaxOffset) - 2
	return lo, hi
}

func (g *gen) doall(iv string, lo, hi int64, body []ir.Stmt) *ir.Loop {
	l := ir.DoAllAligned(iv, ir.K(lo), ir.K(hi), g.n, body...)
	return l
}

func (g *gen) parallelEpoch() ir.Stmt {
	w, reads := g.pickWriteAndReads()
	iv := g.freshVar()
	lo, hi := g.loopBounds()
	return g.doall(iv, lo, hi, g.bodyStmts(iv, w, reads))
}

func (g *gen) dynamicEpoch() ir.Stmt {
	w, reads := g.pickWriteAndReads()
	iv := g.freshVar()
	lo, hi := g.loopBounds()
	return ir.DoAllDynamic(iv, ir.K(lo), ir.K(hi), g.bodyStmts(iv, w, reads)...)
}

func (g *gen) serialEpoch() ir.Stmt {
	w, reads := g.pickWriteAndReads()
	iv := g.freshVar()
	lo, hi := g.loopBounds()
	return ir.DoSerial(iv, ir.K(lo), ir.K(hi), g.bodyStmts(iv, w, reads)...)
}
