package machine

import (
	"fmt"
	"strings"
)

// Profile is one named machine configuration in the registry: the same
// single-source-of-truth pattern as core's mode registry — the -machine-profile
// flags, their usage strings and their error messages all derive from this
// table, so adding a profile here is all it takes for every CLI to list it.
type Profile struct {
	// Name is the canonical lowercase CLI name.
	Name string
	// Desc is the one-line usage blurb.
	Desc string
	// build returns the profile's parameter set scaled to p PEs.
	build func(p int) Params
}

// profiles is the machine profile registry.
//
//   - t3d: the paper's Cray T3D — every PE its own coherence domain, all
//     coherence software-managed, every remote access at one flat latency.
//     Bit-identical to the historical behaviour by construction (no domain
//     field is set, so every domain code path is dead).
//   - cxl-pcc: a 2026 CXL shared-memory pod — PEs grouped into
//     hardware-coherent domains (sockets on one coherent fabric) with a
//     cheap near tier, software-managed coherence only across domains.
//   - pim: a processing-in-memory part — compute sits beside its DRAM
//     (cheap local tier), crossing to another PE's memory stack is very
//     expensive, and compute-side/memory-side caches are reconciled in
//     LazyPIM-style batches at each epoch barrier.
var profiles = []Profile{
	{
		Name:  "t3d",
		Desc:  "Cray T3D: per-PE domains, all coherence software-managed",
		build: T3D,
	},
	{
		Name: "cxl-pcc",
		Desc: "CXL pod: hardware-coherent domains with a near latency tier, software coherence across",
		build: func(p int) Params {
			mp := T3D(p)
			mp.Profile = "cxl-pcc"
			mp.DomainSize = domainSizeFor(p)
			mp.NearReadCost = 40
			mp.NearWriteCost = 12
			mp.NearBaseCost = 20
			return mp
		},
	},
	{
		Name: "pim",
		Desc: "processing-in-memory: near-bank locals, costly cross-stack access, batched coherence per epoch",
		build: func(p int) Params {
			mp := T3D(p)
			mp.Profile = "pim"
			mp.LocalMemCost = 8
			mp.LocalReadCost = 4
			mp.RemoteReadCost = 320
			mp.RemoteWriteCost = 60
			mp.DomainBatchCost = 400
			return mp
		},
	},
}

// domainSizeFor picks the cxl-pcc coherence-domain width for p PEs: 4 PEs
// per domain (a 4-socket coherent node) when 4 divides p, else the largest
// divisor of p that is at most 4 — the domain size must always divide the
// PE count, whatever odd count a fuzz config asks for.
func domainSizeFor(p int) int {
	for d := 4; d > 1; d-- {
		if p%d == 0 {
			return d
		}
	}
	return 1
}

// Profiles returns the profile registry. The slice is shared; callers must
// not mutate it.
func Profiles() []Profile { return profiles }

// ProfileNames returns every profile's canonical CLI name, in registry
// order.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// ProfileParams resolves a profile name (case-insensitively) to its
// parameter set scaled to pes PEs. Unknown names report the valid set.
func ProfileParams(name string, pes int) (Params, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	if want == "" {
		want = "t3d"
	}
	for _, p := range profiles {
		if p.Name == want {
			return p.build(pes), nil
		}
	}
	return Params{}, fmt.Errorf("unknown machine profile %q: valid profiles are %s",
		name, strings.Join(ProfileNames(), ", "))
}

// MustProfileParams is ProfileParams for callers that pass a registry
// literal (tests, sweeps); it panics on an unknown name.
func MustProfileParams(name string, pes int) Params {
	mp, err := ProfileParams(name, pes)
	if err != nil {
		panic(err)
	}
	return mp
}
