package machine

import (
	"strings"
	"testing"
)

// The registry must offer the three profiles by name, resolve the empty
// name and case/whitespace variants to t3d, and reject unknown names with
// an error that lists the valid choices — the same contract the core mode
// registry gives ParseMode.
func TestProfileRegistry(t *testing.T) {
	names := ProfileNames()
	for _, want := range []string{"t3d", "cxl-pcc", "pim"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("profile %q missing from registry %v", want, names)
		}
	}
	for _, alias := range []string{"", "t3d", "T3D", " t3d "} {
		mp, err := ProfileParams(alias, 8)
		if err != nil {
			t.Fatalf("ProfileParams(%q): %v", alias, err)
		}
		if mp != T3D(8) {
			t.Errorf("ProfileParams(%q) differs from T3D(8)", alias)
		}
	}
	_, err := ProfileParams("cray-xmp", 8)
	if err == nil {
		t.Fatal("unknown profile accepted")
	}
	for _, want := range []string{"cray-xmp", "t3d", "cxl-pcc", "pim"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-profile error %q does not mention %q", err, want)
		}
	}
}

// Every registered profile must produce a valid machine at every PE count
// the paper sweeps, including counts that do not divide evenly into
// domains.
func TestProfilesValidateAtAllPECounts(t *testing.T) {
	for _, prof := range Profiles() {
		for _, pes := range []int{1, 2, 3, 4, 7, 8, 16, 64} {
			mp, err := ProfileParams(prof.Name, pes)
			if err != nil {
				t.Fatalf("%s/%d: %v", prof.Name, pes, err)
			}
			if err := mp.Validate(); err != nil {
				t.Errorf("%s/%d: %v", prof.Name, pes, err)
			}
			if mp.Profile != prof.Name {
				t.Errorf("%s/%d: Profile field is %q", prof.Name, pes, mp.Profile)
			}
		}
	}
}

// cxl-pcc groups PEs into hardware-coherent domains with a cheaper near
// tier; pim gives every PE its own domain but charges a batched settlement
// at each barrier.
func TestProfileDomainShapes(t *testing.T) {
	cxl := MustProfileParams("cxl-pcc", 8)
	if cxl.DomainSize != 4 {
		t.Errorf("cxl-pcc/8 DomainSize = %d, want 4", cxl.DomainSize)
	}
	if cxl.NumDomains() != 2 {
		t.Errorf("cxl-pcc/8 NumDomains = %d, want 2", cxl.NumDomains())
	}
	if !cxl.SameDomain(0, 3) || cxl.SameDomain(3, 4) {
		t.Error("cxl-pcc/8 domain boundary not between PE 3 and PE 4")
	}
	if got := cxl.DomainTable(); len(got) != 8 || got[0] != 0 || got[7] != 1 {
		t.Errorf("cxl-pcc/8 DomainTable = %v", got)
	}
	if near, far := cxl.RemoteReadCostFor(0, 3), cxl.RemoteReadCostFor(0, 4); near >= far {
		t.Errorf("near read %d not cheaper than far read %d", near, far)
	}
	if near, far := cxl.RemoteWriteCostFor(0, 3), cxl.RemoteWriteCostFor(0, 4); near >= far {
		t.Errorf("near write %d not cheaper than far write %d", near, far)
	}
	if !cxl.DomainAware() {
		t.Error("cxl-pcc not DomainAware")
	}

	// cxl-pcc at a PE count with no divisor <= 4 falls back to per-PE
	// domains rather than an invalid machine.
	if mp := MustProfileParams("cxl-pcc", 7); mp.DomainSize > 1 {
		t.Errorf("cxl-pcc/7 DomainSize = %d, want <= 1", mp.DomainSize)
	}

	pim := MustProfileParams("pim", 8)
	if pim.DomainSize > 1 {
		t.Errorf("pim DomainSize = %d, want per-PE domains", pim.DomainSize)
	}
	if pim.DomainTable() != nil {
		t.Error("pim has a domain table: its stale analysis must stay domain-blind")
	}
	if pim.DomainBatchCost <= 0 {
		t.Error("pim has no batched settlement cost")
	}
	if !pim.DomainAware() {
		t.Error("pim not DomainAware")
	}

	t3d := MustProfileParams("t3d", 8)
	if t3d.DomainAware() {
		t.Error("t3d DomainAware: its code paths must all stay off")
	}
	if t3d.DomainTable() != nil {
		t.Error("t3d has a domain table")
	}
	if got := t3d.RemoteReadCostFor(0, 1); got != t3d.RemoteReadCost {
		t.Errorf("t3d tiered read cost %d != RemoteReadCost %d", got, t3d.RemoteReadCost)
	}
}

// Validate must reject inconsistent domain configurations.
func TestValidateRejectsBadDomains(t *testing.T) {
	cases := []struct {
		name string
		tune func(*Params)
	}{
		{"negative domain size", func(p *Params) { p.DomainSize = -1 }},
		{"indivisible domain size", func(p *Params) { p.DomainSize = 3 }},
		{"negative near cost", func(p *Params) { p.NearReadCost = -5 }},
		{"negative batch cost", func(p *Params) { p.DomainBatchCost = -1 }},
		{"near read above far", func(p *Params) { p.DomainSize = 4; p.NearReadCost = p.RemoteReadCost + 1 }},
		{"near write above far", func(p *Params) { p.DomainSize = 4; p.NearWriteCost = p.RemoteWriteCost + 1 }},
	}
	for _, tc := range cases {
		mp := T3D(8)
		tc.tune(&mp)
		if err := mp.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	mp := T3D(8)
	mp.DomainSize = 4
	mp.NearReadCost = 40
	if err := mp.Validate(); err != nil {
		t.Errorf("valid domained machine rejected: %v", err)
	}
}

// MustProfileParams panics exactly when ProfileParams errors.
func TestMustProfileParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown profile")
		}
	}()
	MustProfileParams("nonesuch", 4)
}
