package machine

import "testing"

func TestT3DDefaultsValid(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		m := T3D(p)
		if err := m.Validate(); err != nil {
			t.Errorf("T3D(%d): %v", p, err)
		}
		if m.NumPE != p {
			t.Errorf("NumPE = %d", m.NumPE)
		}
	}
}

func TestCacheGeometry(t *testing.T) {
	m := T3D(4)
	if m.CacheWords != 1024 || m.LineWords != 4 {
		t.Errorf("cache geometry %d/%d, want 8KB/32B in words", m.CacheWords, m.LineWords)
	}
	if m.CacheLines() != 256 {
		t.Errorf("CacheLines = %d, want 256", m.CacheLines())
	}
	if m.PrefetchQueueWords != 16 {
		t.Errorf("queue = %d, want 16", m.PrefetchQueueWords)
	}
}

func TestLatencyOrdering(t *testing.T) {
	m := T3D(8)
	if !(m.HitCost < m.LocalMemCost && m.LocalMemCost < m.RemoteReadCost) {
		t.Error("latency hierarchy violated: hit < local < remote expected")
	}
	if m.RemoteWriteCost >= m.RemoteReadCost {
		t.Error("buffered remote writes should be cheaper than remote reads")
	}
	if m.AvgPrefetchLatency() != m.RemoteReadCost {
		t.Error("AvgPrefetchLatency should match remote read")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.NumPE = 0 },
		func(p *Params) { p.CacheWords = 1022 }, // not divisible by line
		func(p *Params) { p.PrefetchQueueWords = 0 },
		func(p *Params) { p.MinAheadIters = 99 },
		func(p *Params) { p.VectorMaxWords = p.CacheWords + 1 },
	}
	for i, mutate := range cases {
		m := T3D(4)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}
