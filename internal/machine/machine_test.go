package machine

import (
	"testing"

	"repro/internal/noc"
)

func TestT3DDefaultsValid(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		m := T3D(p)
		if err := m.Validate(); err != nil {
			t.Errorf("T3D(%d): %v", p, err)
		}
		if m.NumPE != p {
			t.Errorf("NumPE = %d", m.NumPE)
		}
	}
}

// TestT3DDerivesFromDefaultParams: T3D(p) must be DefaultParams with only
// the PE count changed — the latency constants have one source of truth.
func TestT3DDerivesFromDefaultParams(t *testing.T) {
	m := T3D(16)
	m.NumPE = DefaultParams.NumPE
	if m != DefaultParams {
		t.Errorf("T3D diverges from DefaultParams beyond NumPE:\n%+v\n%+v", m, DefaultParams)
	}
	if err := DefaultParams.Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestCacheGeometry(t *testing.T) {
	m := T3D(4)
	if m.CacheWords != DefaultParams.CacheWords || m.LineWords != DefaultParams.LineWords {
		t.Errorf("cache geometry %d/%d, want canonical %d/%d", m.CacheWords, m.LineWords,
			DefaultParams.CacheWords, DefaultParams.LineWords)
	}
	if m.CacheLines() != DefaultParams.CacheWords/DefaultParams.LineWords {
		t.Errorf("CacheLines = %d", m.CacheLines())
	}
	if m.PrefetchQueueWords != DefaultParams.PrefetchQueueWords {
		t.Errorf("queue = %d, want %d", m.PrefetchQueueWords, DefaultParams.PrefetchQueueWords)
	}
}

// TestTopologyValidation: the machine validates its interconnect config,
// and the default is the flat model.
func TestTopologyValidation(t *testing.T) {
	if DefaultParams.Topology.Kind != noc.KindFlat {
		t.Fatalf("DefaultParams topology = %v, want flat", DefaultParams.Topology)
	}
	m := T3D(8)
	m.Topology = noc.Config{Kind: noc.KindTorus, X: 4, Y: 4, Z: 4} // 64 ≠ 8
	if err := m.Validate(); err == nil {
		t.Error("mismatched torus dims accepted")
	}
	m.Topology = noc.Config{Kind: noc.KindTorus, X: 4, Y: 2, Z: 1}
	if err := m.Validate(); err != nil {
		t.Errorf("4x2x1 over 8 PEs rejected: %v", err)
	}
}

func TestLatencyOrdering(t *testing.T) {
	m := T3D(8)
	if !(m.HitCost < m.LocalMemCost && m.LocalMemCost < m.RemoteReadCost) {
		t.Error("latency hierarchy violated: hit < local < remote expected")
	}
	if m.RemoteWriteCost >= m.RemoteReadCost {
		t.Error("buffered remote writes should be cheaper than remote reads")
	}
	if m.AvgPrefetchLatency() != m.RemoteReadCost {
		t.Error("AvgPrefetchLatency should match remote read")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.NumPE = 0 },
		func(p *Params) { p.CacheWords = 1022 }, // not divisible by line
		func(p *Params) { p.PrefetchQueueWords = 0 },
		func(p *Params) { p.MinAheadIters = 99 },
		func(p *Params) { p.VectorMaxWords = p.CacheWords + 1 },
	}
	for i, mutate := range cases {
		m := T3D(4)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}
