// Package machine defines the architectural parameter set of the simulated
// target — the Cray T3D of the paper — shared by the compiler (which must
// respect hardware constraints when scheduling prefetches, paper §4.3.1) and
// by the execution engine (which charges cycle costs).
//
// All costs are in processor clock cycles of the 150 MHz Alpha 21064 and
// all sizes in 8-byte words. The latency constants follow the T3D numbers
// reported in the papers this work cites (Arpaci et al. ISCA'95, Numrich's
// T3D address-space report): ~20+ cycle local DRAM access, remote reads on
// the order of 100+ cycles round trip, a 16-word prefetch queue whose
// DTB-Annex setup overhead is "significant", and SHMEM block transfers with
// a large startup but pipelined per-word cost.
package machine

import (
	"fmt"

	"repro/internal/noc"
)

// Params describes one machine configuration.
type Params struct {
	// NumPE is the number of processing elements.
	NumPE int

	// --- Cache geometry (Alpha 21064 on-chip D-cache) ---

	// CacheWords is the data cache capacity in words (8 KB = 1024 words).
	CacheWords int64
	// LineWords is the cache line size in words (32 B = 4 words).
	LineWords int64

	// --- Prefetch hardware ---

	// PrefetchQueueWords is the depth of the per-PE prefetch queue
	// (16 one-word slots on the T3D).
	PrefetchQueueWords int
	// PrefetchIssueCost is the cost of setting up the DTB Annex entry and
	// issuing one prefetch instruction.
	PrefetchIssueCost int64
	// PrefetchExtractCost is the cost of popping the prefetched word from
	// the queue when it has already arrived.
	PrefetchExtractCost int64

	// --- Memory system latencies ---

	// HitCost is a load that hits in the data cache (the 21064's D-cache
	// load-use latency).
	HitCost int64
	// LocalMemCost is a cache-line fill from the PE's own DRAM (page-mode
	// burst of one 32-byte line).
	LocalMemCost int64
	// LocalReadCost is a single non-cached local word read through the
	// T3D's read-ahead buffer (the BASE version's local shared accesses
	// stream at close to cached speed — the reason the paper's local-only
	// codes see only modest CCDP gains).
	LocalReadCost int64
	// RemoteReadCost is a round-trip single-word read from a remote PE's
	// memory over the torus.
	RemoteReadCost int64
	// RemoteWriteCost is a (buffered, non-blocking) single-word remote
	// store.
	RemoteWriteCost int64
	// LocalWriteCost is a store to local memory (write-through).
	LocalWriteCost int64

	// --- SHMEM (vector prefetch realization, paper §5.1) ---

	// ShmemStartupCost is the fixed startup of one shmem_get block
	// transfer.
	ShmemStartupCost int64
	// ShmemPerWordCost is the pipelined per-word transfer cost.
	ShmemPerWordCost int64

	// --- Synchronization and runtime (CRAFT) overheads ---

	// BarrierCost is one epoch-boundary barrier.
	BarrierCost int64
	// CraftSharedAccessCost is the extra per-access overhead of a CRAFT
	// shared-data reference in the BASE version (global-address
	// translation through the DTB Annex path).
	CraftSharedAccessCost int64
	// CraftDosharedSetupCost is the fixed per-epoch overhead of the
	// doshared work-distribution primitives in the BASE version.
	CraftDosharedSetupCost int64
	// CCDPLoopSetupCost is the (smaller) fixed per-epoch overhead of the
	// CCDP version's direct iteration assignment (paper §5.2: CCDP codes
	// assign loop iterations directly instead of using doshared).
	CCDPLoopSetupCost int64
	// DynamicSchedCost is the per-iteration cost of dynamic DOALL
	// scheduling (fetch-and-add on a shared counter).
	DynamicSchedCost int64
	// InvalidateLineCost is the per-line cost of compiler-directed cache
	// invalidation at an epoch boundary.
	InvalidateLineCost int64

	// --- Computation costs ---

	// FlopCost is one floating-point operation.
	FlopCost int64
	// StmtOverheadCost is the fixed instruction overhead of one assignment
	// statement instance (address arithmetic, loads/stores issue).
	StmtOverheadCost int64
	// LoopIterCost is the loop-control overhead per iteration.
	LoopIterCost int64

	// --- Compiler scheduling tunables (paper §4.3.2: "empirically
	// determined and tuned to suit a particular system") ---

	// MinAheadIters / MaxAheadIters bound the software-pipelining prefetch
	// distance in iterations.
	MinAheadIters int64
	MaxAheadIters int64
	// MinMoveBackCycles / MaxMoveBackCycles bound the useful moving-back
	// distance in estimated cycles.
	MinMoveBackCycles int64
	MaxMoveBackCycles int64
	// VectorMaxWords caps one vector prefetch (must leave room in the
	// cache; the paper checks against cache size).
	VectorMaxWords int64

	// PrefetchNonStale enables the paper's §6 extension: schedule
	// prefetches for non-stale references that touch remote data, not only
	// for the potentially-stale ones.
	PrefetchNonStale bool

	// --- Hardware coherence arena (internal/coherence; HWDIR modes only) ---

	// DirPointers is the pointer count per line of the limited-pointer
	// directory (Dir_i_B); overflow sets the broadcast bit. Default 1.
	DirPointers int
	// DirSparseLines / DirSparseWays shape the sparse directory cache at
	// each home node: DirSparseLines entries organized DirSparseWays-way
	// set-associative. Defaults 128 / 4.
	DirSparseLines int
	DirSparseWays  int
	// HWPrefetcher names a runtime prefetcher from the
	// internal/coherence/prefetch registry ("" = none) paired with the
	// hardware directory modes.
	HWPrefetcher string
	// HWPrefetchDegree caps how many prefetch suggestions one demand
	// access may issue. Default 2.
	HWPrefetchDegree int
	// DirDropInvalidations is the fuzz campaign's sabotage switch: the
	// directory still books invalidation messages but the target caches
	// never drop their copies, so the coherence oracle must flag the
	// resulting stale reads. Never set outside sabotage tests.
	DirDropInvalidations bool

	// --- Interconnect (internal/noc) ---

	// Topology selects the interconnect model. The zero value (flat)
	// charges the constant Remote*Cost latencies above for every remote
	// access, reproducing the pre-noc simulator bit-identically; KindTorus
	// routes every remote access over a 3D torus with dimension-order
	// routing and per-link contention (the Remote*Cost constants then stop
	// being charged and the noc per-hop/per-word costs take over).
	Topology noc.Config

	// PDES selects how parallel torus epochs commit their link
	// reservations: optimistic (speculate on private predictor networks,
	// validate against the canonical PE-major placement, roll back
	// mis-speculations — the default), windowed conservative, or adaptive
	// per-link lookahead. Every mode produces bit-identical simulation
	// results; they differ only in synchronization cost and wall-clock
	// scaling. Ignored off the torus and in inherently sequential runs.
	PDES noc.PDESMode
	// PDESNoRollback is the fuzz campaign's sabotage switch for the
	// optimistic mode: mispredicted speculative results are kept instead of
	// rolled back, so per-PE timing silently diverges from the canonical
	// booking order and the divergence referee must flag it. Never set
	// outside sabotage tests.
	PDESNoRollback bool

	// --- Machine profile & coherence domains ---

	// Profile is the registry name this Params was built from (see
	// profile.go). Purely descriptive: reports key on it to decide whether
	// to emit domain columns, so the t3d output stays byte-identical.
	Profile string
	// DomainSize groups consecutive PEs into hardware-coherent coherence
	// domains of this many PEs each (PEs p and q share a domain iff
	// p/DomainSize == q/DomainSize). 0 or 1 means every PE is its own
	// domain — the T3D model, where all coherence is software-managed.
	// Must divide NumPE when > 1.
	DomainSize int
	// NearReadCost / NearWriteCost replace RemoteReadCost / RemoteWriteCost
	// for accesses whose requester and home PE share a coherence domain
	// (the CXL-PCC near tier: same-node hardware-coherent fabric). 0 means
	// the far cost is charged everywhere.
	NearReadCost  int64
	NearWriteCost int64
	// NearBaseCost replaces the torus model's RemoteBaseCost endpoint
	// overhead for intra-domain transfers (0 = keep the far overhead).
	NearBaseCost int64
	// DomainBatchCost is a LazyPIM-style batched coherence settlement
	// charged once per epoch barrier: the cost of reconciling compute-side
	// and memory-side caches at the coarse batch boundary. 0 = none.
	DomainBatchCost int64
}

// DefaultParams is the canonical Cray T3D parameter set (with NumPE = 1
// and the flat interconnect): the single source of truth for every latency
// constant. Tests, sweeps and ablations that need "the T3D number" must
// read it from here rather than repeating the literal.
var DefaultParams = Params{
	NumPE:   1,
	Profile: "t3d",

	CacheWords: 1024, // 8 KB
	LineWords:  4,    // 32 B

	PrefetchQueueWords:  16,
	PrefetchIssueCost:   23,
	PrefetchExtractCost: 3,

	HitCost:         3,
	LocalMemCost:    14,
	LocalReadCost:   6,
	RemoteReadCost:  150,
	RemoteWriteCost: 30,
	LocalWriteCost:  3,

	ShmemStartupCost: 120,
	ShmemPerWordCost: 2,

	BarrierCost:            220,
	CraftSharedAccessCost:  1,
	CraftDosharedSetupCost: 4500,
	CCDPLoopSetupCost:      150,
	DynamicSchedCost:       30,
	InvalidateLineCost:     1,

	FlopCost:         3,
	StmtOverheadCost: 4,
	LoopIterCost:     2,

	MinAheadIters:     1,
	MaxAheadIters:     8,
	MinMoveBackCycles: 40,
	MaxMoveBackCycles: 4000,
	VectorMaxWords:    512, // half the cache

	DirPointers:      1, // Dir_1_B: a second sharer already forces broadcast
	DirSparseLines:   128,
	DirSparseWays:    4,
	HWPrefetchDegree: 2,
}

// T3D returns the Cray T3D configuration with p PEs (DefaultParams scaled
// to p processors; Params is a value type, so the copy is safe to tune).
func T3D(p int) Params {
	mp := DefaultParams
	mp.NumPE = p
	return mp
}

// CacheLines returns the number of lines in the data cache.
func (p Params) CacheLines() int64 { return p.CacheWords / p.LineWords }

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.NumPE < 1 {
		return fmt.Errorf("machine: NumPE %d < 1", p.NumPE)
	}
	if p.LineWords <= 0 || p.CacheWords <= 0 || p.CacheWords%p.LineWords != 0 {
		return fmt.Errorf("machine: cache %d words / line %d words not divisible", p.CacheWords, p.LineWords)
	}
	if p.PrefetchQueueWords <= 0 {
		return fmt.Errorf("machine: prefetch queue %d", p.PrefetchQueueWords)
	}
	if p.MinAheadIters > p.MaxAheadIters || p.MinMoveBackCycles > p.MaxMoveBackCycles {
		return fmt.Errorf("machine: inverted scheduling ranges")
	}
	if p.VectorMaxWords > p.CacheWords {
		return fmt.Errorf("machine: VectorMaxWords %d exceeds cache %d", p.VectorMaxWords, p.CacheWords)
	}
	if p.DomainSize < 0 {
		return fmt.Errorf("machine: DomainSize %d < 0", p.DomainSize)
	}
	if p.DomainSize > 1 && p.NumPE%p.DomainSize != 0 {
		return fmt.Errorf("machine: DomainSize %d does not divide NumPE %d", p.DomainSize, p.NumPE)
	}
	if p.NearReadCost < 0 || p.NearWriteCost < 0 || p.NearBaseCost < 0 || p.DomainBatchCost < 0 {
		return fmt.Errorf("machine: negative domain cost")
	}
	if p.NearReadCost > p.RemoteReadCost {
		return fmt.Errorf("machine: NearReadCost %d exceeds far RemoteReadCost %d", p.NearReadCost, p.RemoteReadCost)
	}
	if p.NearWriteCost > p.RemoteWriteCost {
		return fmt.Errorf("machine: NearWriteCost %d exceeds far RemoteWriteCost %d", p.NearWriteCost, p.RemoteWriteCost)
	}
	if err := p.Topology.Validate(p.NumPE); err != nil {
		return err
	}
	return nil
}

// DomainOf returns the coherence domain of a PE.
func (p Params) DomainOf(pe int) int {
	if p.DomainSize <= 1 {
		return pe
	}
	return pe / p.DomainSize
}

// SameDomain reports whether two PEs share a hardware-coherent domain.
func (p Params) SameDomain(a, b int) bool {
	return p.DomainOf(a) == p.DomainOf(b)
}

// NumDomains returns the number of coherence domains.
func (p Params) NumDomains() int {
	if p.DomainSize <= 1 {
		return p.NumPE
	}
	return p.NumPE / p.DomainSize
}

// DomainTable materializes the PE → domain map for the stale analysis, or
// nil when every PE is its own domain (the analysis then takes its exact
// original domain-blind form).
func (p Params) DomainTable() []int {
	if p.DomainSize <= 1 {
		return nil
	}
	t := make([]int, p.NumPE)
	for pe := range t {
		t[pe] = pe / p.DomainSize
	}
	return t
}

// DomainAware reports whether any coherence-domain behaviour is active —
// multi-PE domains or a batched settlement cost. False for t3d, so every
// domain code path is skipped and t3d stays bit-identical.
func (p Params) DomainAware() bool {
	return p.DomainSize > 1 || p.DomainBatchCost > 0
}

// RemoteReadCostFor returns the single-word remote read latency between a
// requesting PE and the home PE of the data: the near tier inside a
// coherence domain, the far RemoteReadCost across domains (and everywhere
// on machines without domains).
func (p Params) RemoteReadCostFor(src, home int) int64 {
	if p.NearReadCost > 0 && p.DomainSize > 1 && p.SameDomain(src, home) {
		return p.NearReadCost
	}
	return p.RemoteReadCost
}

// RemoteWriteCostFor is RemoteReadCostFor for buffered remote stores.
func (p Params) RemoteWriteCostFor(src, home int) int64 {
	if p.NearWriteCost > 0 && p.DomainSize > 1 && p.SameDomain(src, home) {
		return p.NearWriteCost
	}
	return p.RemoteWriteCost
}

// AvgPrefetchLatency is the compiler's estimate of how long a prefetch
// takes to complete (used to pick the software-pipelining distance). On the
// T3D almost all potentially-stale data is remote.
func (p Params) AvgPrefetchLatency() int64 { return p.RemoteReadCost }
