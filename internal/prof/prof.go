// Package prof wires the standard runtime/pprof CPU and heap profilers
// into the command-line drivers: one call at startup, one deferred stop.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile (if non-empty) and arranges for a
// heap profile to be written to memFile (if non-empty) when the returned
// stop function runs. Call stop exactly once, before the process exits.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
