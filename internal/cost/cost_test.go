package cost

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func model(t *testing.T) (*Model, *ir.Array) {
	t.Helper()
	b := ir.NewBuilder("cost")
	b.Param("N", 100)
	a := b.Array("A", 100)
	b.Routine("main", ir.Set(ir.At(a, ir.K(0)), ir.N(1)))
	p := b.Build()
	return NewModel(machine.T3D(4), p), a
}

func TestAssignCost(t *testing.T) {
	m, a := model(t)
	mp := m.Params
	// A(0) = A(1) + 2.0: overhead + 1 flop + 2 ref hits
	s := ir.Set(ir.At(a, ir.K(0)), ir.Add(ir.L(ir.At(a, ir.K(1))), ir.N(2)))
	want := mp.StmtOverheadCost + mp.FlopCost + 2*mp.HitCost
	if got := m.Stmt(s); got != want {
		t.Errorf("assign cost = %d, want %d", got, want)
	}
}

func TestScalarRefsFree(t *testing.T) {
	m, _ := model(t)
	s := ir.Set(ir.S("x"), ir.L(ir.S("y")))
	if got := m.Stmt(s); got != m.Params.StmtOverheadCost {
		t.Errorf("scalar assign = %d, want bare overhead %d", got, m.Params.StmtOverheadCost)
	}
}

func TestLoopCostMultipliesTrip(t *testing.T) {
	m, a := model(t)
	body := ir.Set(ir.At(a, ir.I("i")), ir.N(0))
	l := ir.DoSerial("i", ir.K(0), ir.K(9), body)
	per := m.Stmt(body) + m.Params.LoopIterCost
	if got := m.Stmt(l); got != 10*per {
		t.Errorf("loop cost = %d, want %d", got, 10*per)
	}
}

func TestUnknownTripUsesDefault(t *testing.T) {
	m, a := model(t)
	body := ir.Set(ir.At(a, ir.I("i")), ir.N(0))
	l := &ir.Loop{Var: "i", Lo: ir.K(0), Hi: ir.I("unknown"), Step: ir.K(1), Body: []ir.Stmt{body}}
	per := m.Stmt(body) + m.Params.LoopIterCost
	if got := m.Stmt(l); got != DefaultTripCount*per {
		t.Errorf("unknown-trip loop cost = %d, want %d", got, DefaultTripCount*per)
	}
}

func TestParamBoundTripEvaluated(t *testing.T) {
	m, a := model(t)
	l := ir.DoSerial("i", ir.K(0), ir.I("N").AddConst(-1),
		ir.Set(ir.At(a, ir.I("i")), ir.N(0)))
	per := m.Stmt(l.Body[0]) + m.Params.LoopIterCost
	if got := m.Stmt(l); got != 100*per {
		t.Errorf("param-bound loop cost = %d, want %d", got, 100*per)
	}
}

func TestCallCostUsesCalleeBody(t *testing.T) {
	b := ir.NewBuilder("c2")
	a := b.Array("A", 8)
	b.Routine("main", ir.CallTo("sub"))
	b.Routine("sub", ir.Set(ir.At(a, ir.K(0)), ir.N(1)))
	p := b.Build()
	m := NewModel(machine.T3D(4), p)
	call := p.MainRoutine().Body[0]
	sub := p.Routine("sub").Body[0]
	if m.Stmt(call) != m.Stmt(sub) {
		t.Errorf("call cost %d != callee body cost %d", m.Stmt(call), m.Stmt(sub))
	}
}

func TestAheadIterationsClamped(t *testing.T) {
	m, a := model(t)
	// Tiny body: ahead would be latency/small -> clamp to MaxAheadIters.
	small := ir.DoSerial("i", ir.K(0), ir.K(9),
		ir.Set(ir.At(a, ir.I("i")), ir.N(0)))
	if got := m.AheadIterations(small); got != m.Params.MaxAheadIters {
		t.Errorf("small-body ahead = %d, want max %d", got, m.Params.MaxAheadIters)
	}
	// Huge body: ahead = 1 (>= MinAheadIters).
	var big []ir.Stmt
	for k := 0; k < 200; k++ {
		big = append(big, ir.Set(ir.At(a, ir.I("i")), ir.Sqrt(ir.L(ir.At(a, ir.I("i"))))))
	}
	huge := ir.DoSerial("i", ir.K(0), ir.K(9), big...)
	if got := m.AheadIterations(huge); got != m.Params.MinAheadIters {
		t.Errorf("huge-body ahead = %d, want min %d", got, m.Params.MinAheadIters)
	}
}

func TestPrefetchStmtCosts(t *testing.T) {
	m, a := model(t)
	pf := &ir.Prefetch{Target: ir.At(a, ir.K(0))}
	if got := m.Stmt(pf); got != m.Params.PrefetchIssueCost {
		t.Errorf("prefetch cost = %d", got)
	}
	vp := &ir.VectorPrefetch{Target: ir.At(a, ir.K(0)), LoopVar: "v", Lo: ir.K(0), Hi: ir.K(9), Step: ir.K(1), Words: 10}
	want := m.Params.ShmemStartupCost + 10*m.Params.ShmemPerWordCost
	if got := m.Stmt(vp); got != want {
		t.Errorf("vector prefetch cost = %d, want %d", got, want)
	}
}

func TestIfCostAveragesBranches(t *testing.T) {
	m, a := model(t)
	heavy := ir.Set(ir.At(a, ir.K(0)), ir.Sqrt(ir.L(ir.At(a, ir.K(1)))))
	s := ir.When(ir.CondOf(ir.CmpLT, ir.N(0), ir.N(1)), []ir.Stmt{heavy, heavy}, nil)
	lone := ir.When(ir.CondOf(ir.CmpLT, ir.N(0), ir.N(1)), []ir.Stmt{heavy, heavy}, []ir.Stmt{heavy, heavy})
	if m.Stmt(s) >= m.Stmt(lone) {
		t.Errorf("one-sided if should cost less than two-sided: %d vs %d", m.Stmt(s), m.Stmt(lone))
	}
}
