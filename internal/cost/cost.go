// Package cost is the compiler's static cycle estimator. Software
// pipelining needs the execution time of one loop iteration to compute how
// many iterations ahead a prefetch must be issued (paper §4.3.2: "the
// compiler can compute the loop execution time since the number of clock
// cycles taken by each instruction is known"), and moving-back measures its
// motion distance in estimated cycles.
//
// The estimate deliberately assumes cache hits for memory references: the
// point of the schedule is to make that assumption true.
package cost

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// DefaultTripCount is assumed for loops whose bounds the compiler cannot
// evaluate.
const DefaultTripCount = 50

// Model estimates statement costs for one machine configuration.
type Model struct {
	Params  machine.Params
	Prog    *ir.Program
	envVals map[string]int64
}

// NewModel builds a cost model for the program (params are read from the
// program's compile-time parameter table).
func NewModel(p machine.Params, prog *ir.Program) *Model {
	env := make(map[string]int64, len(prog.Params))
	for k, v := range prog.Params {
		env[k] = v
	}
	return &Model{Params: p, Prog: prog, envVals: env}
}

// Stmt estimates the cycles of executing statement s once (loops: the whole
// loop).
func (m *Model) Stmt(s ir.Stmt) int64 {
	switch st := s.(type) {
	case *ir.Loop:
		body := m.Body(st.Body)
		trip := m.trip(st)
		return trip * (body + m.Params.LoopIterCost)
	case *ir.Assign:
		return m.Params.StmtOverheadCost + m.expr(st.RHS) + m.refCost(st.LHS)
	case *ir.If:
		c := m.expr(st.Cond.L) + m.expr(st.Cond.R) + m.Params.StmtOverheadCost
		t := m.Body(st.Then)
		e := m.Body(st.Else)
		// Branch estimate: the heavier side (conservative for move-back
		// distances, which must not be overestimated... the heavier side
		// overestimates; use the average to stay neutral).
		return c + (t+e)/2
	case *ir.Call:
		if rt := m.Prog.Routine(st.Name); rt != nil {
			return m.Body(rt.Body)
		}
		return m.Params.StmtOverheadCost
	case *ir.Prefetch:
		return m.Params.PrefetchIssueCost
	case *ir.VectorPrefetch:
		return m.Params.ShmemStartupCost + st.Words*m.Params.ShmemPerWordCost
	default:
		return m.Params.StmtOverheadCost
	}
}

// Body estimates the cycles of executing a statement list once.
func (m *Model) Body(body []ir.Stmt) int64 {
	var c int64
	for _, s := range body {
		c += m.Stmt(s)
	}
	return c
}

// IterCost estimates the cycles of one iteration of the loop body
// (excluding nested-loop multiplication of the loop itself, including
// everything inside).
func (m *Model) IterCost(l *ir.Loop) int64 {
	return m.Body(l.Body) + m.Params.LoopIterCost
}

// AheadIterations returns the software-pipelining prefetch distance for the
// loop: ceil(prefetch latency / iteration time), clamped to the machine's
// tunable range (paper §4.3.2).
func (m *Model) AheadIterations(l *ir.Loop) int64 {
	iter := m.IterCost(l)
	if iter <= 0 {
		iter = 1
	}
	lat := m.Params.AvgPrefetchLatency()
	ahead := (lat + iter - 1) / iter
	if ahead < m.Params.MinAheadIters {
		ahead = m.Params.MinAheadIters
	}
	if ahead > m.Params.MaxAheadIters {
		ahead = m.Params.MaxAheadIters
	}
	return ahead
}

func (m *Model) trip(l *ir.Loop) int64 {
	if tc, ok := ir.TripCount(m.Prog, l); ok {
		return tc
	}
	return DefaultTripCount
}

func (m *Model) expr(e ir.Expr) int64 {
	switch x := e.(type) {
	case ir.Num:
		return 0
	case ir.IVal:
		return 1
	case ir.Load:
		return m.refCost(x.Ref)
	case ir.Bin:
		return m.Params.FlopCost + m.expr(x.L) + m.expr(x.R)
	case ir.Un:
		c := m.Params.FlopCost
		if x.Op == ir.OpSqrt {
			c *= 8 // sqrt is many-cycle on the 21064
		}
		return c + m.expr(x.X)
	default:
		return 0
	}
}

func (m *Model) refCost(r *ir.Ref) int64 {
	if r.IsScalar() {
		return 0 // register-resident
	}
	return m.Params.HitCost
}
