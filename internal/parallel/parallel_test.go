package parallel

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachEmitsInOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 0} {
		var ran int64
		var out strings.Builder
		results := make([]int, 100)
		ForEach(100, jobs,
			func(i int) {
				results[i] = i * i
				atomic.AddInt64(&ran, 1)
			},
			func(i int) { fmt.Fprintf(&out, "%d:%d\n", i, results[i]) })
		if ran != 100 {
			t.Fatalf("jobs=%d: ran %d items, want 100", jobs, ran)
		}
		var want strings.Builder
		for i := 0; i < 100; i++ {
			fmt.Fprintf(&want, "%d:%d\n", i, i*i)
		}
		if out.String() != want.String() {
			t.Errorf("jobs=%d: emission out of order", jobs)
		}
	}
}

func TestForEachIdenticalOutputAcrossJobCounts(t *testing.T) {
	render := func(jobs int) string {
		var out strings.Builder
		vals := make([]float64, 37)
		ForEach(37, jobs,
			func(i int) { vals[i] = float64(i) * 1.5 },
			func(i int) { fmt.Fprintf(&out, "row,%d,%.3f\n", i, vals[i]) })
		return out.String()
	}
	ref := render(1)
	for _, jobs := range []int{2, 4, 16} {
		if got := render(jobs); got != ref {
			t.Errorf("jobs=%d output differs from jobs=1", jobs)
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("ran on n=0") }, nil)
	var n int64
	ForEach(3, 100, func(int) { atomic.AddInt64(&n, 1) }, nil) // jobs > n
	if n != 3 {
		t.Fatalf("ran %d, want 3", n)
	}
}
