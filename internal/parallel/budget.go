package parallel

import (
	"runtime"
	"sync"
)

// The process-wide worker budget. Every component that fans work out over
// goroutines — the sweep drivers' ForEach, the engine's flat parallel
// epochs, and the sweep service's job workers — draws extra-worker tokens
// from one shared pool sized by GOMAXPROCS, so nested parallelism (an
// engine's per-PE fan-out inside a `-jobs N` sweep worker, or a sweep
// worker inside a service job) degrades to fewer workers instead of
// oversubscribing the machine. The caller's own goroutine is never
// counted: a grant of zero extra workers means "run inline", which is
// always correct because every budgeted fan-out is output-equivalent at
// any worker count.
//
// Tokens are returned incrementally: a ForEach worker gives its token back
// the moment it runs out of items, not when the whole ForEach finishes, so
// a nested or concurrent fan-out can pick the token up while the slowest
// items of the outer call are still running. The torus PDES path does not
// draw tokens — its per-PE goroutines spend most of their time blocked on
// commit ordering and the Go scheduler multiplexes them onto whatever
// threads are free.
var (
	budgetMu   sync.Mutex
	budgetCond = sync.NewCond(&budgetMu)
	inUse      int
)

// AcquireWorkers grants up to n extra-worker tokens without blocking; the
// grant may be 0. Tokens must be returned with ReleaseWorkers.
func AcquireWorkers(n int) int {
	if n <= 0 {
		return 0
	}
	budgetMu.Lock()
	defer budgetMu.Unlock()
	return acquireLocked(n)
}

func acquireLocked(n int) int {
	avail := runtime.GOMAXPROCS(0) - 1 - inUse
	if avail <= 0 {
		return 0
	}
	if n > avail {
		n = avail
	}
	inUse += n
	return n
}

// ReleaseWorkers returns tokens granted by AcquireWorkers or
// AcquireWorkerWait, waking any blocked waiters.
func ReleaseWorkers(n int) {
	if n <= 0 {
		return
	}
	budgetMu.Lock()
	inUse -= n
	budgetMu.Unlock()
	budgetCond.Broadcast()
}

// AcquireWorkerWait blocks until one extra-worker token is free (then
// acquires it and reports true) or until stop is closed (then reports
// false). It also reports false immediately when the budget's capacity is
// zero (GOMAXPROCS 1): no token can ever exist there, so waiting would
// deadlock any caller holding work — the caller must run inline instead,
// exactly like a zero grant from AcquireWorkers. The closer of stop must
// call WakeWaiters afterwards — a channel close alone cannot wake a
// goroutine parked on the budget's condition variable.
//
// Deadlock rule: a goroutine that holds budget tokens must never call
// AcquireWorkerWait — blocking acquisition is only for pure consumers like
// the sweep service's extra job workers, which always keep one unbudgeted
// worker running so the queue drains even when the budget never frees.
func AcquireWorkerWait(stop <-chan struct{}) bool {
	budgetMu.Lock()
	defer budgetMu.Unlock()
	for {
		select {
		case <-stop:
			return false
		default:
		}
		if runtime.GOMAXPROCS(0)-1 <= 0 {
			return false
		}
		if acquireLocked(1) == 1 {
			return true
		}
		budgetCond.Wait()
	}
}

// WakeWaiters wakes every goroutine blocked in AcquireWorkerWait so it can
// re-check its stop channel. Call after closing the stop channel passed to
// the waiters.
func WakeWaiters() {
	budgetCond.Broadcast()
}
