package parallel

import (
	"runtime"
	"sync/atomic"
)

// The process-wide worker budget. Every component that fans work out over
// goroutines — the sweep drivers' ForEach and the engine's flat parallel
// epochs — draws extra-worker tokens from one shared pool sized by
// GOMAXPROCS, so nested parallelism (an engine's per-PE fan-out inside a
// `-jobs N` sweep worker) degrades to fewer workers instead of
// oversubscribing the machine. The caller's own goroutine is never
// counted: a grant of zero extra workers means "run inline", which is
// always correct because every budgeted fan-out is output-equivalent at
// any worker count. The torus PDES path does not draw tokens — its per-PE
// goroutines spend most of their time blocked on commit ordering and the
// Go scheduler multiplexes them onto whatever threads are free.
var inUse atomic.Int64

// AcquireWorkers grants up to n extra-worker tokens without blocking; the
// grant may be 0. Tokens must be returned with ReleaseWorkers.
func AcquireWorkers(n int) int {
	if n <= 0 {
		return 0
	}
	limit := int64(runtime.GOMAXPROCS(0) - 1)
	for {
		cur := inUse.Load()
		avail := limit - cur
		if avail <= 0 {
			return 0
		}
		grant := int64(n)
		if grant > avail {
			grant = avail
		}
		if inUse.CompareAndSwap(cur, cur+grant) {
			return int(grant)
		}
	}
}

// ReleaseWorkers returns tokens granted by AcquireWorkers.
func ReleaseWorkers(n int) {
	if n > 0 {
		inUse.Add(-int64(n))
	}
}
