// Package parallel provides the deterministic worker pool the experiment
// drivers fan sweep points out over: work items execute concurrently, but
// results are handed back strictly in item order, so a sweep's output is
// byte-identical at any -jobs setting.
package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs f(i) for every i in [0,n) using up to jobs workers, then
// calls emit(i) for every i in strictly ascending order. emit runs on a
// single goroutine and item i is emitted as soon as items 0..i have all
// finished, so output streams while later items still compute. jobs <= 0
// means runtime.GOMAXPROCS(0). With one job everything runs inline on the
// caller's goroutine — the two paths are output-equivalent by
// construction. ForEach returns once every item is done and emitted.
//
// Workers beyond the first are drawn from the shared process-wide budget
// (budget.go): when engines or other sweeps already occupy the machine,
// ForEach runs with fewer workers — down to fully inline — with
// byte-identical output either way.
func ForEach(n, jobs int, f func(i int), emit func(i int)) {
	if n <= 0 {
		return
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	inline := func() {
		for i := 0; i < n; i++ {
			f(i)
			if emit != nil {
				emit(i)
			}
		}
	}
	if jobs == 1 {
		inline()
		return
	}
	granted := AcquireWorkers(jobs)
	if granted <= 1 {
		// One worker plus the emitter is no better than inline; give the
		// token back and stay on the caller's goroutine.
		ReleaseWorkers(granted)
		inline()
		return
	}
	jobs = granted

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	done := make([]bool, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker returns its own budget token the moment it runs
			// out of items — not when the whole ForEach finishes — so a
			// nested fan-out (a sweep worker's own ForEach, the engine's
			// flat epochs) or a concurrent sweep can reuse the token while
			// the slowest items here are still running.
			defer ReleaseWorkers(1)
			for i := range next {
				f(i)
				mu.Lock()
				done[i] = true
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()

	// The caller's goroutine is the single emitter: wait for each item in
	// order, so the output prefix is always complete.
	for i := 0; i < n; i++ {
		mu.Lock()
		for !done[i] {
			cond.Wait()
		}
		mu.Unlock()
		if emit != nil {
			emit(i)
		}
	}
	wg.Wait()
}
