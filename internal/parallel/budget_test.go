package parallel

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func busy() int {
	budgetMu.Lock()
	defer budgetMu.Unlock()
	return inUse
}

// Nested ForEach — a sweep worker fanning out its own sweep, the shape the
// sweep service's job workers exercise — must complete with every item
// emitted in order at every nesting level and must return the whole budget
// when done, regardless of how many tokens each level was granted.
func TestNestedForEachSharesBudget(t *testing.T) {
	if got := busy(); got != 0 {
		t.Fatalf("budget dirty at test entry: %d tokens in use", got)
	}
	const outer, inner = 4, 8
	var mu sync.Mutex
	got := make(map[int][]int, outer)
	emitted := make([]int, 0, outer)
	ForEach(outer, outer,
		func(i int) {
			order := make([]int, 0, inner)
			var innerMu sync.Mutex
			ForEach(inner, inner,
				func(j int) { _ = j * j },
				func(j int) {
					innerMu.Lock()
					order = append(order, j)
					innerMu.Unlock()
				})
			mu.Lock()
			got[i] = order
			mu.Unlock()
		},
		func(i int) { emitted = append(emitted, i) })

	for i := 0; i < outer; i++ {
		if emitted[i] != i {
			t.Fatalf("outer emit order %v, want ascending", emitted)
		}
		if len(got[i]) != inner {
			t.Fatalf("outer item %d: inner emitted %d items, want %d", i, len(got[i]), inner)
		}
		for j, v := range got[i] {
			if v != j {
				t.Fatalf("outer item %d: inner emit order %v, want ascending", i, got[i])
			}
		}
	}
	if got := busy(); got != 0 {
		t.Errorf("budget leak after nested ForEach: %d tokens still in use", got)
	}
}

// A ForEach worker must return its token as soon as it runs out of items,
// while other workers of the same call are still busy — that is what lets
// a nested or concurrent fan-out reuse the machine instead of finding the
// whole budget claimed for the duration of the slowest item.
func TestForEachReleasesWorkersIncrementally(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 3 {
		t.Skip("needs a budget of at least 2 extra workers")
	}
	if got := busy(); got != 0 {
		t.Fatalf("budget dirty at test entry: %d tokens in use", got)
	}
	release := make(chan struct{})
	var sawDrop bool
	ForEach(2, 2,
		func(i int) {
			if i == 1 {
				return // finishes immediately; its worker exits and releases
			}
			// Item 0: wait (bounded) for the sibling worker's token to come
			// back while this worker still holds its own.
			deadline := time.After(5 * time.Second)
			for {
				if busy() < 2 {
					sawDrop = true
					close(release)
					return
				}
				select {
				case <-deadline:
					close(release)
					return
				case <-time.After(time.Millisecond):
				}
			}
		},
		nil)
	<-release
	if !sawDrop {
		t.Error("sibling worker's token was not released while item 0 still ran")
	}
	if got := busy(); got != 0 {
		t.Errorf("budget leak: %d tokens still in use", got)
	}
}

// On a machine with no extra-worker budget at all (GOMAXPROCS 1) a token
// can never exist, so AcquireWorkerWait must fail fast instead of parking
// forever — a caller already holding work would otherwise deadlock.
func TestAcquireWorkerWaitZeroCapacity(t *testing.T) {
	if got := busy(); got != 0 {
		t.Fatalf("budget dirty at test entry: %d tokens in use", got)
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	done := make(chan bool, 1)
	go func() { done <- AcquireWorkerWait(make(chan struct{})) }()
	select {
	case v := <-done:
		if v {
			ReleaseWorkers(1)
			t.Fatal("AcquireWorkerWait granted a token from a zero-capacity budget")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcquireWorkerWait parked on a zero-capacity budget")
	}
}

// AcquireWorkerWait must block while the budget is exhausted, wake when a
// token is released, and give up when its stop channel closes.
func TestAcquireWorkerWait(t *testing.T) {
	limit := runtime.GOMAXPROCS(0) - 1
	if limit < 1 {
		t.Skip("no extra-worker budget on this machine")
	}
	if got := busy(); got != 0 {
		t.Fatalf("budget dirty at test entry: %d tokens in use", got)
	}
	grabbed := AcquireWorkers(limit * 2)
	if grabbed != limit {
		t.Fatalf("AcquireWorkers(%d) granted %d, want the full budget %d", limit*2, grabbed, limit)
	}

	// Waiter 1: wakes when a token frees.
	stop1 := make(chan struct{})
	got1 := make(chan bool, 1)
	go func() { got1 <- AcquireWorkerWait(stop1) }()
	select {
	case v := <-got1:
		t.Fatalf("AcquireWorkerWait returned %v with an exhausted budget", v)
	case <-time.After(50 * time.Millisecond):
	}
	ReleaseWorkers(1)
	select {
	case v := <-got1:
		if !v {
			t.Fatal("AcquireWorkerWait returned false after a release")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcquireWorkerWait did not wake on release")
	}

	// Waiter 2: budget is exhausted again (waiter 1 re-took the token);
	// closing stop + WakeWaiters must make it give up.
	stop2 := make(chan struct{})
	got2 := make(chan bool, 1)
	go func() { got2 <- AcquireWorkerWait(stop2) }()
	select {
	case v := <-got2:
		t.Fatalf("AcquireWorkerWait returned %v with an exhausted budget", v)
	case <-time.After(50 * time.Millisecond):
	}
	close(stop2)
	WakeWaiters()
	select {
	case v := <-got2:
		if v {
			ReleaseWorkers(1) // it somehow acquired; return it before failing
			t.Fatal("AcquireWorkerWait returned true after stop closed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcquireWorkerWait did not give up after stop + WakeWaiters")
	}

	ReleaseWorkers(1)           // waiter 1's token
	ReleaseWorkers(grabbed - 1) // the rest of the initial grab
	if got := busy(); got != 0 {
		t.Errorf("budget leak: %d tokens still in use", got)
	}
}
