package cache

import "testing"

func fill(vals float64, gens uint32) ([]float64, []uint32) {
	v := make([]float64, 4)
	g := make([]uint32, 4)
	for i := range v {
		v[i] = vals + float64(i)
		g[i] = gens
	}
	return v, g
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(64, 4) // 16 lines
	if _, _, _, hit := c.Lookup(10); hit {
		t.Fatal("cold cache hit")
	}
	v, g := fill(100, 7)
	c.Install(10, v, g, 42)
	val, gen, ready, hit := c.Lookup(10)
	if !hit || val != 102 || gen != 7 || ready != 42 {
		t.Errorf("Lookup = %v %v %v %v", val, gen, ready, hit)
	}
	// Same line, different word.
	if val, _, _, hit := c.Lookup(8); !hit || val != 100 {
		t.Errorf("line sharing: %v %v", val, hit)
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(64, 4) // 16 lines: addresses 0 and 64 conflict
	v, g := fill(0, 1)
	c.Install(0, v, g, 0)
	v2, g2 := fill(50, 1)
	if evicted := c.Install(64, v2, g2, 0); !evicted {
		t.Error("conflicting install did not evict")
	}
	if _, _, _, hit := c.Lookup(0); hit {
		t.Error("evicted line still hits")
	}
	if val, _, _, hit := c.Lookup(64); !hit || val != 50 {
		t.Error("new line not resident")
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d", c.Evictions)
	}
}

func TestUpdateWord(t *testing.T) {
	c := New(64, 4)
	v, g := fill(0, 1)
	c.Install(4, v, g, 0)
	if !c.UpdateWord(5, 99, 8) {
		t.Fatal("update of resident word failed")
	}
	val, gen, _, hit := c.Lookup(5)
	if !hit || val != 99 || gen != 8 {
		t.Errorf("after update: %v %v", val, gen)
	}
	if c.UpdateWord(200, 1, 1) {
		t.Error("update of absent word succeeded (write-allocate?)")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := New(64, 4)
	v, g := fill(0, 1)
	c.Install(0, v, g, 0)
	c.Install(8, v, g, 0)
	c.Install(20, v, g, 0)
	// Invalidate words 7..9: lines 4..7 and 8..11 intersect.
	if n := c.InvalidateRange(7, 9); n != 1 {
		t.Errorf("invalidated %d lines, want 1 (line 8..11)", n)
	}
	if c.Contains(8) {
		t.Error("line 8 still resident")
	}
	if !c.Contains(0) || !c.Contains(20) {
		t.Error("unrelated lines dropped")
	}
	if n := c.InvalidateAll(); n != 2 {
		t.Errorf("InvalidateAll dropped %d", n)
	}
}
