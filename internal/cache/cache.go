// Package cache models the per-PE data cache of the simulated T3D: the
// Alpha 21064's 8 KB direct-mapped write-through D-cache with 32-byte
// lines. Lines carry the cached VALUES and the memory GENERATION of each
// word at fill time: a hit whose cached generation is older than memory's
// current generation is a stale-value read — the event the CCDP scheme must
// make impossible. Keeping values in the cache (rather than reading through
// to memory) makes staleness observable in computed results, which is how
// the engine's golden-value check proves coherence end to end.
package cache

// Line is one cache line's state.
type Line struct {
	Tag     int64 // word address of the line start; -1 when invalid
	Vals    []float64
	Gens    []uint32
	ReadyAt int64 // cycle at which the fill completes (0 = ready)
	// State is the line's coherence-protocol state byte, owned by the
	// protocol engine (internal/coherence's MESI states in the HW modes;
	// always 0 elsewhere — the cache itself never interprets it beyond
	// zeroing on install).
	State uint8
}

// Cache is a direct-mapped write-through cache.
type Cache struct {
	lineWords int64
	numLines  int64
	lines     []Line
	// vals/gens are the single backing arrays every line's Vals/Gens slice
	// into: three allocations per cache instead of two per line, which was
	// the engine's dominant per-run allocation source (256 lines × 2 × one
	// cache per PE).
	vals []float64
	gens []uint32

	// Counters.
	Hits, Misses, Evictions, Installs, InvalidatedLines int64
}

// New builds a cache with the given total capacity and line size in words.
func New(capacityWords, lineWords int64) *Cache {
	n := capacityWords / lineWords
	c := &Cache{
		lineWords: lineWords, numLines: n, lines: make([]Line, n),
		vals: make([]float64, n*lineWords), gens: make([]uint32, n*lineWords),
	}
	for i := range c.lines {
		lo, hi := int64(i)*lineWords, int64(i+1)*lineWords
		c.lines[i] = Line{Tag: -1, Vals: c.vals[lo:hi:hi], Gens: c.gens[lo:hi:hi]}
	}
	return c
}

// Reset invalidates every line and zeroes the counters, returning the
// cache to its just-built state without reallocating line storage (engine
// reuse across runs). Stale values behind invalid tags are never read.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i].Tag = -1
		c.lines[i].ReadyAt = 0
		c.lines[i].State = 0
	}
	c.Hits, c.Misses, c.Evictions, c.Installs, c.InvalidatedLines = 0, 0, 0, 0, 0
}

// LineWords returns the line size in words.
func (c *Cache) LineWords() int64 { return c.lineWords }

// NumLines returns the number of lines.
func (c *Cache) NumLines() int64 { return c.numLines }

// lineAddr returns the line-aligned address containing addr.
func (c *Cache) lineAddr(addr int64) int64 { return addr - addr%c.lineWords }

// slot returns the direct-mapped index for a line address.
func (c *Cache) slot(lineAddr int64) int64 { return (lineAddr / c.lineWords) % c.numLines }

// Lookup probes the cache for addr. On a hit it returns the cached value,
// its fill-time generation, and the line's ready time.
func (c *Cache) Lookup(addr int64) (val float64, gen uint32, readyAt int64, hit bool) {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		c.Misses++
		return 0, 0, 0, false
	}
	c.Hits++
	off := addr - la
	return l.Vals[off], l.Gens[off], l.ReadyAt, true
}

// Contains reports whether addr is cached, without touching counters.
func (c *Cache) Contains(addr int64) bool {
	la := c.lineAddr(addr)
	return c.lines[c.slot(la)].Tag == la
}

// Install fills the line containing addr with the given words and
// generations (len == LineWords, indexed from the line start), available at
// readyAt. It returns true if a valid line was evicted.
func (c *Cache) Install(addr int64, vals []float64, gens []uint32, readyAt int64) bool {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	evicted := l.Tag != -1 && l.Tag != la
	if evicted {
		c.Evictions++
	}
	l.Tag = la
	copy(l.Vals, vals)
	copy(l.Gens, gens)
	l.ReadyAt = readyAt
	l.State = 0
	c.Installs++
	return evicted
}

// State returns the coherence state byte of the line containing addr, or
// 0 when the line is not present.
func (c *Cache) State(addr int64) uint8 {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		return 0
	}
	return l.State
}

// SetState sets the coherence state byte of the line containing addr,
// reporting whether the line was present.
func (c *Cache) SetState(addr int64, st uint8) bool {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		return false
	}
	l.State = st
	return true
}

// Victim returns the valid line that installing addr's line would evict
// (its tag and state byte), if any — the protocol engine checks it for a
// dirty state needing writeback before the Install overwrites it.
func (c *Cache) Victim(addr int64) (tag int64, state uint8, ok bool) {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag < 0 || l.Tag == la {
		return 0, 0, false
	}
	return l.Tag, l.State, true
}

// InvalidateLine drops exactly the line with line-start address la if
// present, returning whether it did — the O(1) targeted drop the
// directory's invalidations use (InvalidateRange scans the whole cache).
func (c *Cache) InvalidateLine(la int64) bool {
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		return false
	}
	l.Tag = -1
	c.InvalidatedLines++
	return true
}

// UpdateWord updates a cached word in place (write-through keeps the cached
// copy current on the writer's own PE). Returns false if the line is not
// present (no-write-allocate).
func (c *Cache) UpdateWord(addr int64, val float64, gen uint32) bool {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		return false
	}
	off := addr - la
	l.Vals[off] = val
	l.Gens[off] = gen
	return true
}

// InvalidateRange invalidates every line that intersects the word range
// [lo, hi] and returns the number of lines dropped. The scan cost is
// bounded by the cache size: a real implementation walks the cache once.
func (c *Cache) InvalidateRange(lo, hi int64) int64 {
	var n int64
	for i := range c.lines {
		l := &c.lines[i]
		if l.Tag < 0 {
			continue
		}
		if l.Tag+c.lineWords-1 >= lo && l.Tag <= hi {
			l.Tag = -1
			n++
		}
	}
	c.InvalidatedLines += n
	return n
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() int64 {
	var n int64
	for i := range c.lines {
		if c.lines[i].Tag >= 0 {
			c.lines[i].Tag = -1
			n++
		}
	}
	c.InvalidatedLines += n
	return n
}
