// Package cache models the per-PE data cache of the simulated T3D: the
// Alpha 21064's 8 KB direct-mapped write-through D-cache with 32-byte
// lines. Lines carry the cached VALUES and the memory GENERATION of each
// word at fill time: a hit whose cached generation is older than memory's
// current generation is a stale-value read — the event the CCDP scheme must
// make impossible. Keeping values in the cache (rather than reading through
// to memory) makes staleness observable in computed results, which is how
// the engine's golden-value check proves coherence end to end.
package cache

// Line is one cache line's state.
type Line struct {
	Tag     int64 // word address of the line start; -1 when invalid
	Vals    []float64
	Gens    []uint32
	ReadyAt int64 // cycle at which the fill completes (0 = ready)
	// State is the line's coherence-protocol state byte, owned by the
	// protocol engine (internal/coherence's MESI states in the HW modes;
	// always 0 elsewhere — the cache itself never interprets it beyond
	// zeroing on install).
	State uint8
}

// Cache is a direct-mapped write-through cache.
type Cache struct {
	lineWords int64
	numLines  int64
	lines     []Line
	// vals/gens are the single backing arrays every line's Vals/Gens slice
	// into: three allocations per cache instead of two per line, which was
	// the engine's dominant per-run allocation source (256 lines × 2 × one
	// cache per PE).
	vals []float64
	gens []uint32

	// Counters.
	Hits, Misses, Evictions, Installs, InvalidatedLines int64
}

// New builds a cache with the given total capacity and line size in words.
func New(capacityWords, lineWords int64) *Cache {
	n := capacityWords / lineWords
	c := &Cache{
		lineWords: lineWords, numLines: n, lines: make([]Line, n),
		vals: make([]float64, n*lineWords), gens: make([]uint32, n*lineWords),
	}
	for i := range c.lines {
		lo, hi := int64(i)*lineWords, int64(i+1)*lineWords
		c.lines[i] = Line{Tag: -1, Vals: c.vals[lo:hi:hi], Gens: c.gens[lo:hi:hi]}
	}
	return c
}

// NewFleet builds count identical caches sharing slab-allocated backing
// (line metadata, values, generations): four allocations for a whole
// machine's worth of per-PE caches instead of three per cache, which
// matters for the engine's one-shot construction cost at 64 PEs.
func NewFleet(count int, capacityWords, lineWords int64) []*Cache {
	n := capacityWords / lineWords
	words := n * lineWords
	caches := make([]Cache, count)
	lineSlab := make([]Line, int64(count)*n)
	valSlab := make([]float64, int64(count)*words)
	genSlab := make([]uint32, int64(count)*words)
	out := make([]*Cache, count)
	for ci := range caches {
		c := &caches[ci]
		c.lineWords, c.numLines = lineWords, n
		lb := int64(ci) * n
		wb := int64(ci) * words
		c.lines = lineSlab[lb : lb+n : lb+n]
		c.vals = valSlab[wb : wb+words : wb+words]
		c.gens = genSlab[wb : wb+words : wb+words]
		for i := range c.lines {
			lo, hi := int64(i)*lineWords, int64(i+1)*lineWords
			c.lines[i] = Line{Tag: -1, Vals: c.vals[lo:hi:hi], Gens: c.gens[lo:hi:hi]}
		}
		out[ci] = c
	}
	return out
}

// Reset invalidates every line and zeroes the counters, returning the
// cache to its just-built state without reallocating line storage (engine
// reuse across runs). Stale values behind invalid tags are never read.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i].Tag = -1
		c.lines[i].ReadyAt = 0
		c.lines[i].State = 0
	}
	c.Hits, c.Misses, c.Evictions, c.Installs, c.InvalidatedLines = 0, 0, 0, 0, 0
}

// Snapshot is a saved cache state for the optimistic PDES rollback path
// (internal/exec). A wholesale copy of the line metadata and the two
// backing slabs is simpler and faster than journaling individual line
// touches — an 8 KB cache is a ~16 KB memcpy — and the buffers are reused
// across epochs, so steady-state saves allocate nothing.
type Snapshot struct {
	tags, readyAt                                       []int64
	states                                              []uint8
	vals                                                []float64
	gens                                                []uint32
	hits, misses, evictions, installs, invalidatedLines int64
}

// Save records the cache's full state into s.
func (c *Cache) Save(s *Snapshot) {
	if cap(s.tags) < len(c.lines) {
		s.tags = make([]int64, len(c.lines))
		s.readyAt = make([]int64, len(c.lines))
		s.states = make([]uint8, len(c.lines))
		s.vals = make([]float64, len(c.vals))
		s.gens = make([]uint32, len(c.gens))
	}
	s.tags, s.readyAt, s.states = s.tags[:len(c.lines)], s.readyAt[:len(c.lines)], s.states[:len(c.lines)]
	s.vals, s.gens = s.vals[:len(c.vals)], s.gens[:len(c.gens)]
	for i := range c.lines {
		l := &c.lines[i]
		s.tags[i], s.readyAt[i], s.states[i] = l.Tag, l.ReadyAt, l.State
	}
	copy(s.vals, c.vals)
	copy(s.gens, c.gens)
	s.hits, s.misses, s.evictions, s.installs, s.invalidatedLines =
		c.Hits, c.Misses, c.Evictions, c.Installs, c.InvalidatedLines
}

// Restore returns the cache to the state Save recorded. The per-line
// Vals/Gens slices always point into the cache's own slabs, so restoring
// the slabs restores every line's contents.
func (c *Cache) Restore(s *Snapshot) {
	for i := range c.lines {
		l := &c.lines[i]
		l.Tag, l.ReadyAt, l.State = s.tags[i], s.readyAt[i], s.states[i]
	}
	copy(c.vals, s.vals)
	copy(c.gens, s.gens)
	c.Hits, c.Misses, c.Evictions, c.Installs, c.InvalidatedLines =
		s.hits, s.misses, s.evictions, s.installs, s.invalidatedLines
}

// LineWords returns the line size in words.
func (c *Cache) LineWords() int64 { return c.lineWords }

// NumLines returns the number of lines.
func (c *Cache) NumLines() int64 { return c.numLines }

// lineAddr returns the line-aligned address containing addr.
func (c *Cache) lineAddr(addr int64) int64 { return addr - addr%c.lineWords }

// slot returns the direct-mapped index for a line address.
func (c *Cache) slot(lineAddr int64) int64 { return (lineAddr / c.lineWords) % c.numLines }

// Lookup probes the cache for addr. On a hit it returns the cached value,
// its fill-time generation, and the line's ready time.
func (c *Cache) Lookup(addr int64) (val float64, gen uint32, readyAt int64, hit bool) {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		c.Misses++
		return 0, 0, 0, false
	}
	c.Hits++
	off := addr - la
	return l.Vals[off], l.Gens[off], l.ReadyAt, true
}

// Contains reports whether addr is cached, without touching counters.
func (c *Cache) Contains(addr int64) bool {
	la := c.lineAddr(addr)
	return c.lines[c.slot(la)].Tag == la
}

// Install fills the line containing addr with the given words and
// generations (len == LineWords, indexed from the line start), available at
// readyAt. It returns true if a valid line was evicted.
func (c *Cache) Install(addr int64, vals []float64, gens []uint32, readyAt int64) bool {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	evicted := l.Tag != -1 && l.Tag != la
	if evicted {
		c.Evictions++
	}
	l.Tag = la
	copy(l.Vals, vals)
	copy(l.Gens, gens)
	l.ReadyAt = readyAt
	l.State = 0
	c.Installs++
	return evicted
}

// Refresh overwrites the words and generations of the line at la if it is
// still resident, preserving its ready time, coherence state and every
// counter. It reports whether the line was present. The optimistic PDES
// validation phase (internal/exec) uses it to replace speculatively
// captured line contents with their canonical values; a refresh is a
// repair, not a cache event, so unlike Install it counts nothing.
func (c *Cache) Refresh(la int64, vals []float64, gens []uint32) bool {
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		return false
	}
	copy(l.Vals, vals)
	copy(l.Gens, gens)
	return true
}

// State returns the coherence state byte of the line containing addr, or
// 0 when the line is not present.
func (c *Cache) State(addr int64) uint8 {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		return 0
	}
	return l.State
}

// SetState sets the coherence state byte of the line containing addr,
// reporting whether the line was present.
func (c *Cache) SetState(addr int64, st uint8) bool {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		return false
	}
	l.State = st
	return true
}

// Victim returns the valid line that installing addr's line would evict
// (its tag and state byte), if any — the protocol engine checks it for a
// dirty state needing writeback before the Install overwrites it.
func (c *Cache) Victim(addr int64) (tag int64, state uint8, ok bool) {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag < 0 || l.Tag == la {
		return 0, 0, false
	}
	return l.Tag, l.State, true
}

// InvalidateLine drops exactly the line with line-start address la if
// present, returning whether it did — the O(1) targeted drop the
// directory's invalidations use (InvalidateRange scans the whole cache).
func (c *Cache) InvalidateLine(la int64) bool {
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		return false
	}
	l.Tag = -1
	c.InvalidatedLines++
	return true
}

// UpdateWord updates a cached word in place (write-through keeps the cached
// copy current on the writer's own PE). Returns false if the line is not
// present (no-write-allocate).
func (c *Cache) UpdateWord(addr int64, val float64, gen uint32) bool {
	la := c.lineAddr(addr)
	l := &c.lines[c.slot(la)]
	if l.Tag != la {
		return false
	}
	off := addr - la
	l.Vals[off] = val
	l.Gens[off] = gen
	return true
}

// InvalidateRange invalidates every line that intersects the word range
// [lo, hi] and returns the number of lines dropped. The scan cost is
// bounded by the cache size: a real implementation walks the cache once.
func (c *Cache) InvalidateRange(lo, hi int64) int64 {
	var n int64
	for i := range c.lines {
		l := &c.lines[i]
		if l.Tag < 0 {
			continue
		}
		if l.Tag+c.lineWords-1 >= lo && l.Tag <= hi {
			l.Tag = -1
			n++
		}
	}
	c.InvalidatedLines += n
	return n
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() int64 {
	var n int64
	for i := range c.lines {
		if c.lines[i].Tag >= 0 {
			c.lines[i].Tag = -1
			n++
		}
	}
	c.InvalidatedLines += n
	return n
}
