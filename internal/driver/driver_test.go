package driver

import (
	"errors"
	"flag"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/noc"
)

func TestParseModeValid(t *testing.T) {
	cases := map[string]core.Mode{
		"seq": core.ModeSeq, "base": core.ModeBase, "ccdp": core.ModeCCDP,
		"incoherent": core.ModeIncoherent,
		"CCDP":       core.ModeCCDP, " Base ": core.ModeBase,
	}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestParseModeUnknownListsValidModes(t *testing.T) {
	_, err := ParseMode("turbo")
	if err == nil {
		t.Fatal("unknown mode accepted")
	}
	for _, want := range []string{"turbo", "seq", "base", "ccdp", "incoherent"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestAppLookup(t *testing.T) {
	s, err := App("mxm", "small")
	if err != nil || s.Name != "MXM" {
		t.Fatalf("App(mxm) = %v, %v", s, err)
	}
	if _, err := App("MXM", "tiny"); err == nil || !strings.Contains(err.Error(), "small, paper") {
		t.Errorf("bad scale error = %v", err)
	}
	_, err = App("FFT", "small")
	if err == nil {
		t.Fatal("unknown app accepted")
	}
	for _, want := range []string{"FFT", "MXM", "VPENTA", "TOMCATV", "SWIM"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestAppsList(t *testing.T) {
	specs, err := Apps("MXM, swim", "small")
	if err != nil || len(specs) != 2 || specs[0].Name != "MXM" || specs[1].Name != "SWIM" {
		t.Fatalf("Apps = %v, %v", specs, err)
	}
	if _, err := Apps("MXM,NOPE", "small"); err == nil {
		t.Error("unknown app in list accepted")
	}
}

func TestParsePEs(t *testing.T) {
	got, err := ParsePEs("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("ParsePEs = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "4,,8"} {
		if _, err := ParsePEs(bad); err == nil {
			t.Errorf("ParsePEs(%q) accepted", bad)
		}
	}
}

func TestFaultFlagsPlan(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ff := RegisterFault(fs)
	if err := fs.Parse([]string{"-fault-rate", "0.5", "-fault-kinds", "drop,late", "-fault-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	plan, err := ff.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Enabled() || plan.Rate != 0.5 || plan.Seed != 7 {
		t.Errorf("plan = %+v", plan)
	}
	if len(plan.Kinds) != 2 || plan.Kinds[0] != fault.KindDrop || plan.Kinds[1] != fault.KindLate {
		t.Errorf("kinds = %v", plan.Kinds)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	ff = RegisterFault(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	plan, err = ff.Plan()
	if err != nil || plan.Enabled() {
		t.Errorf("default plan = %+v, %v; want disabled", plan, err)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	ff = RegisterFault(fs)
	if err := fs.Parse([]string{"-fault-rate", "0.1", "-fault-kinds", "gremlins"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ff.Plan(); err == nil {
		t.Error("unknown fault kind accepted")
	}
}

func TestMachineFlagsParams(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	mf := RegisterMachine(fs, 8)
	if err := fs.Parse([]string{"-pes", "16", "-topology", "torus"}); err != nil {
		t.Fatal(err)
	}
	mp, err := mf.Params()
	if err != nil {
		t.Fatal(err)
	}
	if mp.NumPE != 16 || mp.Topology.Kind != noc.KindTorus {
		t.Errorf("params = NumPE %d, topology %+v", mp.NumPE, mp.Topology)
	}
	if err := mp.Validate(); err != nil {
		t.Errorf("params invalid: %v", err)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	mf = RegisterMachine(fs, 8)
	if err := fs.Parse([]string{"-topology", "2x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := mf.Params(); err == nil {
		t.Error("bad topology accepted")
	}
}

func TestFatalExitsNonZero(t *testing.T) {
	old := osExit
	defer func() { osExit = old }()
	code := -1
	osExit = func(c int) { code = c }
	Fatal("tool", errors.New("boom"))
	if code != 1 {
		t.Errorf("exit code = %d", code)
	}
}

// The sweep service resolves job specs through the flag-free cores below;
// every malformed value must come back as an error return (the service's
// HTTP 400), never an exit or panic.
func TestSweepConfigErrorReturns(t *testing.T) {
	cfg, err := SweepConfig("cxl-pcc", 2, "torus", "conservative", 0.25, "drop,late", 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Profile != "cxl-pcc" || cfg.DomainSize != 2 ||
		cfg.Topology.Kind != noc.KindTorus || cfg.PDES != noc.PDESConservative {
		t.Errorf("cfg = %+v", cfg)
	}
	if !cfg.Fault.Enabled() || cfg.Fault.Seed != 9 || len(cfg.Fault.Kinds) != 2 {
		t.Errorf("fault plan = %+v", cfg.Fault)
	}

	// The zero-value spec is the default machine: t3d, flat, fault-free.
	cfg, err = SweepConfig("", 0, "", "", 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology.Kind != noc.KindFlat || cfg.Fault.Enabled() {
		t.Errorf("default cfg = %+v", cfg)
	}

	bad := []struct {
		name       string
		profile    string
		domain     int
		topo, pdes string
		rate       float64
		kinds      string
		wantInMsg  string
	}{
		{"unknown profile", "t4e", 0, "", "", 0, "", "valid profiles"},
		{"bad topology", "", 0, "5x", "", 0, "", "topology"},
		{"unknown pdes", "", 0, "", "warp", 0, "", "pdes"},
		{"negative domain", "", -2, "", "", 0, "", "domain"},
		{"bad fault kind", "", 0, "", "", 0.1, "gremlins", "unknown kind"},
		{"rate out of range", "", 0, "", "", 1.5, "all", "rate"},
	}
	for _, tc := range bad {
		_, err := SweepConfig(tc.profile, tc.domain, tc.topo, tc.pdes, tc.rate, tc.kinds, 1)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantInMsg) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantInMsg)
		}
	}
}

func TestMachineErrorReturns(t *testing.T) {
	mp, err := Machine("pim", 8, 0, "2x2x2", "adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if mp.NumPE != 8 || mp.Profile != "pim" || mp.Topology.X != 2 || mp.PDES != noc.PDESAdaptive {
		t.Errorf("params = %+v", mp)
	}
	for _, tc := range []struct{ profile, topo, pdes string }{
		{"warpdrive", "", ""},
		{"", "hypercube", ""},
		{"", "", "psychic"},
	} {
		if _, err := Machine(tc.profile, 8, 0, tc.topo, tc.pdes); err == nil {
			t.Errorf("Machine(%q,%q,%q) accepted", tc.profile, tc.topo, tc.pdes)
		}
	}
}
