// Package driver holds the command-line plumbing the cmd/ tools share:
// workload and mode lookup with errors that name the valid choices,
// PE-list parsing, the fault-injection / profiling / machine flag groups,
// and uniform fatal-error reporting. Before this package existed, t3dsim,
// ccdpbench and ccdpc each carried their own copy of this logic — and
// ccdpc silently fell back to defaults on an unknown scale instead of
// failing.
package driver

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/coherence/prefetch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/prof"
	"repro/internal/workloads"
)

// osExit is swapped out by the Fatal test.
var osExit = os.Exit

// Fatal prints "tool: err" to stderr and exits non-zero. Every cmd/ tool
// reports its errors through this, so unknown flags, apps and modes all
// fail the same way.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	osExit(1)
}

// Pool returns the workload set for one problem scale.
func Pool(scale string) ([]*workloads.Spec, error) {
	switch strings.ToLower(strings.TrimSpace(scale)) {
	case "small":
		return workloads.Small(), nil
	case "paper":
		return workloads.Paper(), nil
	default:
		return nil, fmt.Errorf("unknown scale %q: valid scales are small, paper", scale)
	}
}

// App looks up one workload by name (case-insensitive) at the given scale.
// An unknown name is an error that lists the valid applications.
func App(name, scale string) (*workloads.Spec, error) {
	pool, err := Pool(scale)
	if err != nil {
		return nil, err
	}
	for _, s := range pool {
		if strings.EqualFold(s.Name, strings.TrimSpace(name)) {
			return s, nil
		}
	}
	names := make([]string, len(pool))
	for i, s := range pool {
		names[i] = s.Name
	}
	return nil, fmt.Errorf("unknown application %q: valid applications are %s",
		name, strings.Join(names, ", "))
}

// Apps resolves a comma-separated application list at the given scale.
func Apps(list, scale string) ([]*workloads.Spec, error) {
	var out []*workloads.Spec
	for _, name := range strings.Split(list, ",") {
		s, err := App(name, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ParseMode parses an execution-mode name against the core mode registry.
// An unknown name is an error that lists the valid modes.
func ParseMode(s string) (core.Mode, error) {
	return core.ParseMode(s)
}

// ModeUsage renders the -mode flag's usage string from the mode registry,
// so every tool's help text lists exactly the registered modes.
func ModeUsage() string {
	return "execution mode: " + strings.Join(core.ModeNames(), ", ")
}

// HWFlags is the hardware-coherence-arena flag group (-hw-prefetch,
// -dir-pointers, -dir-sparse-lines, -dir-sparse-ways), orthogonal to
// -mode: the values only matter when a HWDIR mode runs.
type HWFlags struct {
	Prefetcher  *string
	Pointers    *int
	SparseLines *int
	SparseWays  *int
}

// RegisterHW installs the hardware-coherence flags on fs.
func RegisterHW(fs *flag.FlagSet) *HWFlags {
	return &HWFlags{
		Prefetcher: fs.String("hw-prefetch", "",
			"runtime prefetcher for the hwdir modes: "+strings.Join(prefetch.Names(), ", ")+" (empty = none)"),
		Pointers:    fs.Int("dir-pointers", machine.DefaultParams.DirPointers, "limited-pointer directory width (Dir_i_B)"),
		SparseLines: fs.Int("dir-sparse-lines", machine.DefaultParams.DirSparseLines, "sparse directory entries per home node"),
		SparseWays:  fs.Int("dir-sparse-ways", machine.DefaultParams.DirSparseWays, "sparse directory set associativity"),
	}
}

// Apply writes the flag values into a machine configuration.
func (h *HWFlags) Apply(mp *machine.Params) {
	mp.HWPrefetcher = *h.Prefetcher
	mp.DirPointers = *h.Pointers
	mp.DirSparseLines = *h.SparseLines
	mp.DirSparseWays = *h.SparseWays
}

// ParsePEs parses a comma-separated list of PE counts.
func ParsePEs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad PE count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// FaultFlags is the fault-injection flag group (-fault-rate, -fault-kinds,
// -fault-seed).
type FaultFlags struct {
	Rate  *float64
	Kinds *string
	Seed  *int64
}

// RegisterFault installs the fault-injection flags on fs.
func RegisterFault(fs *flag.FlagSet) *FaultFlags {
	return &FaultFlags{
		Rate:  fs.Float64("fault-rate", 0, "per-opportunity fault-injection probability (0 disables)"),
		Kinds: fs.String("fault-kinds", "all", "comma-separated fault kinds: drop,late,spike,evict,skew or all"),
		Seed:  fs.Int64("fault-seed", 1, "fault-injection RNG seed"),
	}
}

// Plan assembles the fault.Plan the flags describe (a zero Plan when the
// rate is 0).
func (f *FaultFlags) Plan() (fault.Plan, error) {
	return FaultPlan(*f.Rate, *f.Kinds, *f.Seed)
}

// FaultPlan is the flag-free core of FaultFlags.Plan: it assembles a fault
// plan from raw values (a zero Plan when the rate is 0), returning an
// error — never exiting — on a malformed rate or kind list, so services
// can map bad job specs to HTTP 400s while the CLIs wrap the same errors
// in Fatal.
func FaultPlan(rate float64, kinds string, seed int64) (fault.Plan, error) {
	if rate == 0 {
		return fault.Plan{}, nil
	}
	ks, err := fault.ParseKinds(kinds)
	if err != nil {
		return fault.Plan{}, err
	}
	plan := fault.Plan{Seed: seed, Rate: rate, Kinds: ks}
	return plan, plan.Validate()
}

// ProfFlags is the profiling flag group (-cpuprofile, -memprofile).
type ProfFlags struct {
	CPU *string
	Mem *string
}

// RegisterProf installs the profiling flags on fs.
func RegisterProf(fs *flag.FlagSet) *ProfFlags {
	return &ProfFlags{
		CPU: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		Mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins profiling per the flags; the returned stop function must be
// deferred.
func (f *ProfFlags) Start() (func(), error) {
	return prof.Start(*f.CPU, *f.Mem)
}

// TopologyFlag is the interconnect-model flag (-topology).
type TopologyFlag struct {
	s *string
}

// RegisterTopology installs the -topology flag on fs.
func RegisterTopology(fs *flag.FlagSet) *TopologyFlag {
	return &TopologyFlag{s: fs.String("topology", "flat",
		"interconnect model: flat, torus (auto dims) or XxYxZ")}
}

// Config parses the flag into an interconnect configuration.
func (t *TopologyFlag) Config() (noc.Config, error) {
	return noc.Parse(*t.s)
}

// String returns the raw flag value, for forwarding to the sweep service
// (the server re-parses it through the same noc.Parse).
func (t *TopologyFlag) String() string { return *t.s }

// PDESFlag is the torus parallel-execution-scheme flag (-pdes). The mode
// never changes simulation results — only how parallel torus epochs commit
// their link reservations, i.e. wall-clock scaling.
type PDESFlag struct {
	s *string
}

// RegisterPDES installs the -pdes flag on fs.
func RegisterPDES(fs *flag.FlagSet) *PDESFlag {
	return &PDESFlag{s: fs.String("pdes", "optimistic",
		"torus epoch commit scheme: optimistic, conservative or adaptive (bit-identical results; wall-clock only)")}
}

// Mode parses the flag into a PDES mode.
func (p *PDESFlag) Mode() (noc.PDESMode, error) {
	return noc.ParsePDES(*p.s)
}

// String returns the raw flag value, for forwarding to the sweep service
// (the server re-parses it through the same noc.ParsePDES).
func (p *PDESFlag) String() string { return *p.s }

// SweepConfig resolves the raw values of one benchmark-sweep
// configuration — everything but the PE counts — into a harness.Config.
// It is the single resolution path shared by the ccdpbench CLI and the
// sweep service, so a job submitted over HTTP runs under exactly the
// configuration the same flags would produce in-process; every failure is
// an error return (the service's HTTP 400), never an exit.
func SweepConfig(profile string, domainSize int, topology, pdes string,
	faultRate float64, faultKinds string, faultSeed int64) (harness.Config, error) {
	topo, err := noc.Parse(topology)
	if err != nil {
		return harness.Config{}, err
	}
	pm, err := noc.ParsePDES(pdes)
	if err != nil {
		return harness.Config{}, err
	}
	if _, err := machine.ProfileParams(profile, 1); err != nil {
		return harness.Config{}, err
	}
	if domainSize < 0 {
		return harness.Config{}, fmt.Errorf("negative domain size %d", domainSize)
	}
	plan, err := FaultPlan(faultRate, faultKinds, faultSeed)
	if err != nil {
		return harness.Config{}, err
	}
	return harness.Config{
		Profile:    profile,
		DomainSize: domainSize,
		Topology:   topo,
		PDES:       pm,
		Fault:      plan,
	}, nil
}

// ProfileUsage renders the -machine-profile flag's usage string from the
// machine-profile registry, so every tool's help text lists exactly the
// registered profiles.
func ProfileUsage() string {
	return "machine profile: " + strings.Join(machine.ProfileNames(), ", ")
}

// MachineFlags is the machine-configuration flag group (-pes,
// -machine-profile, -domain-size, -topology, -pdes) for the tools that
// simulate one configuration at a time.
type MachineFlags struct {
	PEs        *int
	Profile    *string
	DomainSize *int
	Topo       *TopologyFlag
	PDES       *PDESFlag
}

// RegisterMachine installs the machine flags on fs.
func RegisterMachine(fs *flag.FlagSet, defaultPEs int) *MachineFlags {
	return &MachineFlags{
		PEs:     fs.Int("pes", defaultPEs, "number of PEs"),
		Profile: fs.String("machine-profile", "t3d", ProfileUsage()),
		DomainSize: fs.Int("domain-size", 0,
			"override the profile's coherence-domain size (0 = profile default, 1 = per-PE domains)"),
		Topo: RegisterTopology(fs),
		PDES: RegisterPDES(fs),
	}
}

// Params builds the machine parameters the flags describe, starting from
// the named machine profile. An unknown profile name is an error that
// lists the valid profiles.
func (m *MachineFlags) Params() (machine.Params, error) {
	return Machine(*m.Profile, *m.PEs, *m.DomainSize, *m.Topo.s, *m.PDES.s)
}

// Machine is the flag-free core of MachineFlags.Params: it resolves raw
// machine-configuration values (profile name, PE count, domain-size
// override, topology and pdes strings) into a validated Params. Every
// failure — unknown profile, bad topology syntax, unknown pdes scheme —
// comes back as an error naming the valid choices, never an exit, so the
// sweep service can answer bad job specs with HTTP 400s while the CLIs
// route the same errors through Fatal.
func Machine(profile string, pes, domainSize int, topology, pdes string) (machine.Params, error) {
	topo, err := noc.Parse(topology)
	if err != nil {
		return machine.Params{}, err
	}
	pm, err := noc.ParsePDES(pdes)
	if err != nil {
		return machine.Params{}, err
	}
	mp, err := machine.ProfileParams(profile, pes)
	if err != nil {
		return machine.Params{}, err
	}
	if domainSize > 0 {
		mp.DomainSize = domainSize
	}
	mp.Topology = topo
	mp.PDES = pm
	return mp, nil
}
