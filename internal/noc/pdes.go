// Windowed conservative parallel discrete-event simulation of the torus.
//
// The simulator's design center is bit-identical results: the canonical
// link-booking order is PE-major — PE p's whole epoch is booked before PE
// p+1's — because that is what the engine's original sequential torus loop
// did, and the golden CSVs pin it. A Session lets all PEs of a parallel
// epoch run CONCURRENTLY while still committing every reservation with the
// exact placement the canonical order would have produced.
//
// The scheme is conservative PDES with the link traversal time as
// lookahead, organized in time windows of that width. Each PE publishes a
// monotone clock (its simulated time) as it executes; a transaction of PE p
// whose planned reservation ends at cycle `end` may commit only once every
// PE q < p has published a clock past the first window boundary after
// `end`. Two facts make that sufficient for exact PE-major equivalence:
//
//  1. Placements are union-determined: linkState.probe's first-fit scan
//     depends only on the union of busy intervals intersecting the scanned
//     range, never on the order they were inserted or how they merged.
//  2. Invisibility of out-of-order work: if B (on a lower PE) commits after
//     A (on a higher PE), B's commit rule makes B depart after A's horizon,
//     so B's intervals all start after every cycle A scanned, and A's
//     intervals all end before every cycle B scans. Reordering the two
//     commits therefore changes neither placement — which is exactly the
//     difference between the concurrent commit order and the canonical
//     PE-major order, applied transaction pair by transaction pair.
//
// Clocks only move forward (per-PE simulated time is monotone, and fault
// skew is non-negative), a blocked PE has already published its depart time
// before waiting, and finished PEs publish +infinity — so the lowest
// still-running PE can always commit and the scheme cannot deadlock.
// Per-transaction results being identical, every derived statistic
// (per-link counters, hop histogram, wait totals and maxima, drop
// decisions) is identical too: they are sums and maxima of identical
// per-transaction values.
//
// The ADAPTIVE mode (PDESAdaptive) keeps the same machinery but relaxes the
// commit rule per link: instead of one quantized horizon that every lower
// PE's clock must pass, each hop of the planned placement — occupying the
// link leaving node v until cycle end — demands only that lower PE q reach
// end − dist(q,v)·HopCost. Any traffic q issues after its clock c departs at
// or after c, and its head cannot occupy v's outgoing link before
// c + dist(q,v)·HopCost: route prefixes are shortest paths, reply legs add
// dist(q,dst) + RemoteBaseCost + dist(dst,v) ≥ dist(q,v) hops of delay by
// the triangle inequality, first-fit never places a message before its
// request time, and hotspot stalls only push times later. So when q's clock
// passes the per-link threshold, every future q-interval on that link starts
// at or after our occupancy's end — with half-open intervals and probe's
// `hi > at` scan, neither booking can perturb the other's placement, which
// is the same mutual-invisibility argument as the conservative window, made
// per-link. Distant lower PEs therefore stop gating commits at all, which
// is what lets low-contention epochs commit with near-zero waiting.
package noc

import (
	"math"
	"sync"
	"sync/atomic"
)

// TestCommitYield, when non-nil, is called at Session entry points to let
// tests perturb goroutine scheduling (e.g. with runtime.Gosched) and prove
// the committed schedules are interleaving-independent. Set it only while
// no Session is in use.
var TestCommitYield func()

// Session is the windowed conservative-PDES front end to one Network for
// one parallel epoch: PE goroutines call Send/RoundTrip concurrently, and
// the Session serializes the bookings in an order provably equivalent to
// booking PE 0's whole epoch, then PE 1's, and so on (the canonical order
// of the sequential engine loop). A Session is reused across epochs via
// Begin; the zero number of in-flight users between Begin calls is the
// caller's responsibility (the engine's epoch barrier provides it).
type Session struct {
	net *Network
	// window is the lookahead: the minimum time a message occupies a link
	// (one hop of a one-word payload). Commit thresholds are quantized up
	// to the next window boundary, which keeps them strictly above the
	// reservation they guard.
	window int64

	mu   sync.Mutex
	cond *sync.Cond

	// clocks[p] is PE p's last published simulated time (MaxInt64 once the
	// PE is done). Written only by PE p, read by committing PEs.
	clocks []atomic.Int64
	// waiting[p] is the SMALLEST clock threshold PE p's pending commit
	// needs any lower PE to reach (MaxInt64 when p is not waiting); the
	// exact per-PE thresholds live in thr. Guarded by mu.
	waiting []int64
	// mode selects the commit rule: PDESAdaptive uses per-link lookahead
	// thresholds, anything else the conservative windowed horizon.
	mode PDESMode
	// thr[p*numPE+q] is the clock threshold PE p's pending commit needs PE
	// q (< p) to reach — uniform (the horizon) in conservative mode,
	// per-link-derived in adaptive mode. Guarded by mu.
	thr []int64
	// ends is planSendEnds scratch. Guarded by mu.
	ends []linkEnd
	// waitLine caches min(waiting): publishers skip the mutex and the
	// broadcast entirely while no waiter needs their new clock value. The
	// store-waitLine-then-load-clocks (waiter) versus
	// store-clock-then-load-waitLine (publisher) pattern is sequentially
	// consistent under Go's atomics, so a publisher crossing a waiter's
	// threshold cannot be missed by both sides.
	waitLine atomic.Int64

	// stalls counts commit waits (observability; guarded by mu).
	stalls int64
}

// NewSession builds the PDES front end for net (which must be non-nil).
func NewSession(net *Network) *Session {
	s := &Session{
		net:     net,
		window:  net.cfg.HopCost + net.cfg.WordCost,
		clocks:  make([]atomic.Int64, net.numPE),
		waiting: make([]int64, net.numPE),
		thr:     make([]int64, net.numPE*net.numPE),
	}
	if s.window < 1 {
		s.window = 1
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Window returns the lookahead width in cycles.
func (s *Session) Window() int64 { return s.window }

// SetMode selects the commit rule for subsequent epochs: PDESAdaptive uses
// the per-link lookahead thresholds, anything else the conservative
// windowed horizon (the optimistic mode never routes through a Session).
// Call only between epochs.
func (s *Session) SetMode(m PDESMode) { s.mode = m }

// Stalls returns the cumulative number of commit waits across epochs.
func (s *Session) Stalls() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalls
}

// Begin starts a parallel epoch: start[p] is PE p's clock at epoch entry
// (missing entries default to 0, which is merely more conservative). Must
// be called before the PE goroutines start, from a single goroutine.
func (s *Session) Begin(start []int64) {
	for p := range s.clocks {
		v := int64(0)
		if p < len(start) {
			v = start[p]
		}
		s.clocks[p].Store(v)
		s.waiting[p] = math.MaxInt64
	}
	s.waitLine.Store(math.MaxInt64)
}

// Publish records PE p's simulated time. Callable only from PE p's
// goroutine; values below the last published one are ignored (clocks are
// monotone). The engine publishes at every loop iteration and every
// transaction entry, which is what keeps higher PEs' commits moving.
func (s *Session) Publish(p int, now int64) {
	if h := TestCommitYield; h != nil {
		h()
	}
	c := &s.clocks[p]
	if c.Load() >= now {
		return
	}
	c.Store(now)
	if now >= s.waitLine.Load() {
		// Someone may be waiting for this clock value: take the lock so
		// the broadcast cannot slip between a waiter's re-check and its
		// cond.Wait, then wake everyone to re-check.
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// Done marks PE p finished for this epoch: its clock becomes +infinity so
// no other PE ever waits on it again. Deferred by the engine so a
// panicking PE cannot strand the others.
func (s *Session) Done(p int) {
	s.Publish(p, math.MaxInt64)
}

// Send implements Transport.Send with the canonical-order commit rule.
func (s *Session) Send(src, dst int, payload, depart, hot int64) (arrive, wait int64) {
	// Publishing the depart time FIRST keeps the blocked chain live: if
	// this commit has to wait, higher PEs still see our current time. Only
	// a TOP-LEVEL depart may be published: it equals the PE's current
	// simulated time, which lower-bounds every future depart (asynchronous
	// transactions — prefetches, multi-home gathers — issue later traffic
	// at this same time, never earlier).
	s.Publish(src, depart)
	return s.sendAs(src, src, dst, payload, depart, hot)
}

// sendAs books one message from->to as a transaction of PE owner (the PE
// whose position in the canonical PE-major order governs the commit —
// always the ISSUING PE, even for a reply leg whose route runs home->src).
// It publishes nothing: a reply leg's depart exceeds the PE's own clock
// and would wrongly license earlier-departing future transactions.
func (s *Session) sendAs(owner, from, to int, payload, depart, hot int64) (arrive, wait int64) {
	if from == to {
		return depart, 0 // no links involved; same as Network.Send
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.safePlanLocked(owner, from, to, payload, depart, hot) {
			// Plan and apply run under one lock hold, so the placement the
			// plan saw is the placement Send commits.
			return s.net.Send(from, to, payload, depart, hot)
		}
		s.await(owner)
	}
}

// RoundTrip implements Transport.RoundTrip: the two legs commit as two
// consecutive transactions of the issuing PE (src owns both — in the
// canonical order Network.RoundTrip books both legs during src's turn),
// mirroring Network.RoundTrip's two Sends. Committing them separately is
// safe for the same pairwise-invisibility reason as any two transactions:
// anything another PE books between the legs is invisible to leg 2's scan
// range and vice versa.
func (s *Session) RoundTrip(src, dst int, replyWords, depart, hot int64) (arrive, wait int64) {
	s.Publish(src, depart)
	t1, w1 := s.sendAs(src, src, dst, 1, depart, 0)
	t2, w2 := s.sendAs(src, dst, src, replyWords, t1+s.net.cfg.baseCostFor(src, dst), hot)
	return t2, w1 + w2
}

// DropWaitCycles implements Transport.
func (s *Session) DropWaitCycles() int64 { return s.net.cfg.DropWaitCycles }

// horizon quantizes a reservation end up to the next window boundary: the
// clock threshold lower PEs must pass before a reservation ending at `end`
// may commit. Always strictly greater than end, so a lower PE at the
// threshold can only issue traffic departing after the guarded
// reservation — traffic whose placements the reservation's scan never saw
// and whose scans never see the reservation.
func (s *Session) horizon(end int64) int64 {
	return (end/s.window + 1) * s.window
}

// safePlanLocked plans the message's placement against the current link
// schedules and fills owner's row of thr with the clock threshold each
// lower PE must reach before the commit is provably canonical, returning
// whether every lower PE is already there. Finished PEs are at +infinity;
// PE 0 is vacuously always safe. Callers hold mu.
func (s *Session) safePlanLocked(owner, from, to int, payload, depart, hot int64) bool {
	thr := s.thr[owner*s.net.numPE : (owner+1)*s.net.numPE]
	ok := true
	if s.mode == PDESAdaptive {
		ends, _ := s.net.planSendEnds(from, to, payload, depart, hot, s.ends)
		s.ends = ends
		hop := s.net.cfg.HopCost
		for q := 0; q < owner; q++ {
			t := int64(math.MinInt64)
			for _, le := range ends {
				if v := le.end - int64(s.net.Dist(q, int(le.node)))*hop; v > t {
					t = v
				}
			}
			thr[q] = t
			if s.clocks[q].Load() < t {
				ok = false
			}
		}
		return ok
	}
	arrive, _ := s.net.planSend(from, to, payload, depart, hot)
	threshold := s.horizon(arrive)
	for q := 0; q < owner; q++ {
		thr[q] = threshold
		if s.clocks[q].Load() < threshold {
			ok = false
		}
	}
	return ok
}

// await blocks (mu held) until every PE below src reaches the threshold
// recorded for it by safePlanLocked. It registers the smallest threshold as
// the wake line before re-checking the clocks, pairing with Publish's
// store-clock-then-load-waitLine order: a publisher crossing ANY per-PE
// threshold has necessarily crossed the line, so its broadcast cannot be
// missed (spurious wakes merely re-check).
func (s *Session) await(src int) {
	thr := s.thr[src*s.net.numPE : (src+1)*s.net.numPE]
	line := int64(math.MaxInt64)
	for q := 0; q < src; q++ {
		if thr[q] < line {
			line = thr[q]
		}
	}
	s.waiting[src] = line
	s.refreshWaitLine()
	s.stalls++
	for {
		reached := true
		for q := 0; q < src; q++ {
			if s.clocks[q].Load() < thr[q] {
				reached = false
				break
			}
		}
		if reached {
			break
		}
		s.cond.Wait()
	}
	s.waiting[src] = math.MaxInt64
	s.refreshWaitLine()
}

// refreshWaitLine recomputes the published minimum waiting threshold.
// Callers hold mu.
func (s *Session) refreshWaitLine() {
	line := int64(math.MaxInt64)
	for _, w := range s.waiting {
		if w < line {
			line = w
		}
	}
	s.waitLine.Store(line)
}
