package noc

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func newTorus(t *testing.T, numPE int) *Network {
	t.Helper()
	n, err := New(Config{Kind: KindTorus}, numPE)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// The non-mutating planSend must predict exactly what Send then commits,
// at every point of a contended random traffic sequence.
func TestPlanSendMatchesSend(t *testing.T) {
	n := newTorus(t, 16)
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	for i := 0; i < 500; i++ {
		src, dst := rng.Intn(16), rng.Intn(16)
		payload := int64(1 + rng.Intn(32))
		hot := int64(rng.Intn(3) * 40)
		now += int64(rng.Intn(20))
		pa, pw := n.planSend(src, dst, payload, now, hot)
		a, w := n.Send(src, dst, payload, now, hot)
		if pa != a || pw != w {
			t.Fatalf("txn %d: plan (%d,%d) != send (%d,%d)", i, pa, pw, a, w)
		}
	}
}

// Reset must return the network to its just-built state: replaying the
// same traffic must reproduce identical results and summary.
func TestNetworkReset(t *testing.T) {
	run := func(n *Network) ([][2]int64, *Summary) {
		rng := rand.New(rand.NewSource(3))
		var out [][2]int64
		now := int64(0)
		for i := 0; i < 300; i++ {
			src, dst := rng.Intn(8), rng.Intn(8)
			now += int64(rng.Intn(10))
			a, w := n.RoundTrip(src, dst, int64(1+rng.Intn(16)), now, 0)
			out = append(out, [2]int64{a, w})
		}
		return out, n.Summary(100000)
	}
	n := newTorus(t, 8)
	r1, s1 := run(n)
	n.Reset()
	r2, s2 := run(n)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("per-transaction results differ after Reset")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("summary differs after Reset:\n%+v\n%+v", s1, s2)
	}
}

func TestHorizonStrictlyAboveEnd(t *testing.T) {
	s := NewSession(newTorus(t, 8))
	if s.Window() != DefaultHopCost+DefaultWordCost {
		t.Fatalf("window = %d, want %d", s.Window(), DefaultHopCost+DefaultWordCost)
	}
	for _, end := range []int64{0, 1, s.window - 1, s.window, s.window + 1, 12345} {
		if h := s.horizon(end); h <= end || h%s.window != 0 {
			t.Errorf("horizon(%d) = %d: want window multiple strictly above", end, h)
		}
	}
}

// peScript is one virtual PE's transaction schedule for the equivalence
// property test.
type txn struct {
	kind    int // 0 = Send, 1 = RoundTrip
	dst     int
	payload int64
	think   int64 // clock advance before issuing
	hot     int64
}

// TestSessionMatchesSequential is the windowed-PDES equivalence property
// test: random per-PE transaction scripts run (a) PE-major sequentially
// against a plain Network and (b) concurrently through a Session with
// randomized goroutine yields injected at every commit point. Every
// per-transaction result and the full link summary (schedules, drops live
// in the engine; here: counters, waits, hop histogram) must match exactly.
// Run under -race this also proves the Session's synchronization sound.
func TestSessionMatchesSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const numPE = 8
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		scripts := make([][]txn, numPE)
		for p := range scripts {
			nTxn := 30 + rng.Intn(40)
			for i := 0; i < nTxn; i++ {
				scripts[p] = append(scripts[p], txn{
					kind:    rng.Intn(2),
					dst:     rng.Intn(numPE),
					payload: int64(1 + rng.Intn(24)),
					think:   int64(rng.Intn(60)),
					hot:     int64(rng.Intn(2) * 30),
				})
			}
		}

		// runPE executes one PE's script against any transport, returning
		// the per-transaction results.
		runPE := func(tr Transport, p int, tick func(now int64)) [][2]int64 {
			out := make([][2]int64, 0, len(scripts[p]))
			now := int64(0)
			for _, x := range scripts[p] {
				now += x.think
				if tick != nil {
					tick(now)
				}
				var a, w int64
				if x.kind == 0 {
					a, w = tr.Send(p, x.dst, x.payload, now, x.hot)
					if p != x.dst {
						now += 1 // buffered send: clock moves a little
					}
				} else {
					a, w = tr.RoundTrip(p, x.dst, x.payload, now, x.hot)
					now = a
				}
				out = append(out, [2]int64{a, w})
			}
			return out
		}

		// Reference: canonical PE-major order on a plain Network.
		ref := newTorus(t, numPE)
		want := make([][][2]int64, numPE)
		for p := 0; p < numPE; p++ {
			want[p] = runPE(ref, p, nil)
		}
		wantSum := ref.Summary(1 << 20)

		// Concurrent: one goroutine per PE through a Session — once per
		// commit rule — with yields injected at every Publish to shake the
		// interleaving.
		for _, mode := range []PDESMode{PDESConservative, PDESAdaptive} {
			net := newTorus(t, numPE)
			sess := NewSession(net)
			sess.SetMode(mode)
			var yields atomic.Int64
			TestCommitYield = func() {
				if yields.Add(1)%3 == 0 {
					runtime.Gosched()
				}
			}
			sess.Begin(nil)
			got := make([][][2]int64, numPE)
			var wg sync.WaitGroup
			for p := 0; p < numPE; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					defer sess.Done(p)
					got[p] = runPE(sess, p, func(now int64) { sess.Publish(p, now) })
				}(p)
			}
			wg.Wait()
			TestCommitYield = nil
			gotSum := net.Summary(1 << 20)

			for p := 0; p < numPE; p++ {
				if !reflect.DeepEqual(want[p], got[p]) {
					t.Fatalf("seed %d mode %v: PE %d transaction results diverge", seed, mode, p)
				}
			}
			if !reflect.DeepEqual(wantSum, gotSum) {
				t.Fatalf("seed %d mode %v: summaries diverge:\nseq: %+v\npdes: %+v", seed, mode, wantSum, gotSum)
			}
		}
	}
}

// memoTr is the test double of the engine's re-execution transport: it
// serves the validated prefix of a speculative log (whose results were
// overwritten with the real ones by ValidateOps) and books everything past
// it directly on the real network.
type memoTr struct {
	net *Network
	ops []SpecOp
	i   int
}

func (m *memoTr) take(rt bool) (*SpecOp, bool) {
	if m.i < len(m.ops) {
		op := &m.ops[m.i]
		if op.RT != rt {
			panic("memoTr: replay diverged from log kind")
		}
		m.i++
		return op, true
	}
	return nil, false
}

func (m *memoTr) Send(src, dst int, payload, depart, hot int64) (int64, int64) {
	if op, ok := m.take(false); ok {
		return op.Arrive, op.Wait
	}
	return m.net.Send(src, dst, payload, depart, hot)
}

func (m *memoTr) RoundTrip(src, dst int, replyWords, depart, hot int64) (int64, int64) {
	if op, ok := m.take(true); ok {
		return op.Arrive, op.Wait
	}
	return m.net.RoundTrip(src, dst, replyWords, depart, hot)
}

func (m *memoTr) DropWaitCycles() int64 { return m.net.cfg.DropWaitCycles }

// TestSpecConvergesToSequential drives the optimistic building blocks the
// way the engine does: a fully concurrent speculative phase on private
// predictor networks, PE-major validation onto the real network, and
// rollback + memoized re-execution of every mispredicted PE — with
// TestSpecSkew forcing mispredictions. The surviving results (RoundTrips
// only: the engine discards Send results by contract) and the real
// network's summary must equal the canonical sequential run exactly.
func TestSpecConvergesToSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const numPE = 8
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		scripts := make([][]txn, numPE)
		for p := range scripts {
			nTxn := 30 + rng.Intn(40)
			for i := 0; i < nTxn; i++ {
				scripts[p] = append(scripts[p], txn{
					kind:    rng.Intn(2),
					dst:     rng.Intn(numPE),
					payload: int64(1 + rng.Intn(24)),
					think:   int64(rng.Intn(60)),
					hot:     int64(rng.Intn(2) * 30),
				})
			}
		}

		// runPE mirrors the engine contract: only RoundTrip results feed
		// back into simulated time, Send results are discarded.
		runPE := func(tr Transport, p int) [][2]int64 {
			out := make([][2]int64, 0, len(scripts[p]))
			now := int64(0)
			for _, x := range scripts[p] {
				now += x.think
				if x.kind == 0 {
					tr.Send(p, x.dst, x.payload, now, x.hot)
					if p != x.dst {
						now++
					}
					out = append(out, [2]int64{-1, -1})
				} else {
					a, w := tr.RoundTrip(p, x.dst, x.payload, now, x.hot)
					now = a
					out = append(out, [2]int64{a, w})
				}
			}
			return out
		}

		ref := newTorus(t, numPE)
		want := make([][][2]int64, numPE)
		for p := 0; p < numPE; p++ {
			want[p] = runPE(ref, p)
		}
		wantSum := ref.Summary(1 << 20)

		net := newTorus(t, numPE)
		preds, err := NewFleet(Config{Kind: KindTorus}, numPE, numPE)
		if err != nil {
			t.Fatal(err)
		}
		var skews atomic.Int64
		TestSpecSkew = func() int64 {
			if skews.Add(1)%4 == 1 {
				return 23 // guaranteed misprediction
			}
			return 0
		}
		recs := make([]*SpecRecorder, numPE)
		got := make([][][2]int64, numPE)
		var wg sync.WaitGroup
		for p := 0; p < numPE; p++ {
			recs[p] = NewSpecRecorder(preds[p])
			recs[p].BeginEpoch()
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				got[p] = runPE(recs[p], p)
			}(p)
		}
		wg.Wait()
		TestSpecSkew = nil

		rollbacks := 0
		for p := 0; p < numPE; p++ {
			k := net.ValidateOps(recs[p].Ops)
			if k == len(recs[p].Ops) {
				continue
			}
			rollbacks++
			got[p] = runPE(&memoTr{net: net, ops: recs[p].Ops[:k+1]}, p)
		}
		if rollbacks == 0 {
			t.Fatalf("seed %d: TestSpecSkew forced no rollback — the test is vacuous", seed)
		}
		gotSum := net.Summary(1 << 20)

		for p := 0; p < numPE; p++ {
			if !reflect.DeepEqual(want[p], got[p]) {
				t.Fatalf("seed %d: PE %d results diverge after rollback:\nwant %v\ngot  %v", seed, p, want[p], got[p])
			}
		}
		if !reflect.DeepEqual(wantSum, gotSum) {
			t.Fatalf("seed %d: summaries diverge:\nseq: %+v\nspec: %+v", seed, wantSum, gotSum)
		}
	}
}

// A Session must be reusable across epochs via Begin, with results
// identical to a fresh sequential run of the same epochs.
func TestSessionBeginReuse(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const numPE = 4
	ref := newTorus(t, numPE)
	net := newTorus(t, numPE)
	sess := NewSession(net)
	starts := make([]int64, numPE)
	for epoch := 0; epoch < 3; epoch++ {
		for p := range starts {
			starts[p] = int64(epoch * 1000)
		}
		// Sequential reference for this epoch.
		want := make([][2]int64, numPE)
		for p := 0; p < numPE; p++ {
			a, w := ref.RoundTrip(p, (p+1)%numPE, 8, starts[p]+int64(p*13), 0)
			want[p] = [2]int64{a, w}
		}
		ref.EndEpoch()

		sess.Begin(starts)
		got := make([][2]int64, numPE)
		var wg sync.WaitGroup
		for p := 0; p < numPE; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				defer sess.Done(p)
				a, w := sess.RoundTrip(p, (p+1)%numPE, 8, starts[p]+int64(p*13), 0)
				got[p] = [2]int64{a, w}
			}(p)
		}
		wg.Wait()
		net.EndEpoch()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("epoch %d: %v != %v", epoch, got, want)
		}
	}
	if !reflect.DeepEqual(ref.Summary(5000), net.Summary(5000)) {
		t.Fatal("cumulative summaries diverge across epochs")
	}
}
