// Optimistic (speculative) execution support for the torus PDES layer.
//
// The conservative Session (pdes.go) serializes commits behind a lookahead
// window, which caps parallelism: a PE may not place a reservation until
// every lower-numbered PE's clock has passed the reservation's horizon. The
// optimistic scheme removes that wait entirely by splitting an epoch into
// two phases:
//
//  1. Speculation: every PE runs its whole epoch concurrently with ZERO
//     cross-PE synchronization. Each PE books its traffic on a private
//     predictor Network (a topology clone that sees only the PE's own
//     traffic, so it models distance and self-contention but not
//     cross-traffic queueing) and logs every transport call with the
//     result the PE consumed (a SpecOp).
//  2. Validation: a single goroutine replays the logs onto the real
//     Network in canonical PE-major order. As long as every op's real
//     result matches what the PE consumed, the speculative execution WAS
//     the canonical execution (per-PE behavior is a deterministic function
//     of the transport results, see below). The first mismatching op
//     triggers rollback: the engine restores the PE's epoch-entry snapshot
//     and re-executes it serially, serving the already-validated prefix
//     (including the mismatching op's REAL result, which is canonically
//     placed by construction) from the log and booking everything after it
//     directly on the real Network.
//
// Convergence argument. Within an epoch, a PE's address/value streams and
// control flow depend only on (a) its epoch-entry state, which validation
// makes canonical epoch by epoch, and (b) the results of its transport
// calls: the paper's execution model gives parallel epochs disjoint cross-PE
// data, so no other PE's same-epoch writes are observable. By induction over
// a PE's ops: if ops 0..k-1 returned the canonical results, the PE's k-th op
// has the canonical arguments, so booking it on the real Network (in
// PE-major replay order) produces the canonical placement and the canonical
// result. A full match therefore certifies the speculative run byte-for-byte;
// a first mismatch at op k certifies ops 0..k (with op k's real result), and
// re-execution from the snapshot against those certified results converges
// to exactly the canonical sequential execution. Engine-consumed results are
// only the RoundTrip (arrive, wait>drop) pair — Send results are discarded
// by every caller — so validation only rolls back when one of those two
// observables mispredicts.
package noc

// PDESMode selects how parallel torus epochs commit link reservations. All
// modes produce bit-identical simulation results (cycles, stats, link
// summaries); they differ only in synchronization cost and wall-clock
// scaling. The zero value is the optimistic mode — the default the engine
// and the benchmarks measure.
type PDESMode int

const (
	// PDESOptimistic speculates each PE's epoch against a private predictor
	// network, then validates against the canonical PE-major placement and
	// rolls mispredicted PEs back (this file; engine side in internal/exec).
	PDESOptimistic PDESMode = iota
	// PDESConservative is the windowed conservative scheme of pdes.go: a
	// commit waits until every lower PE's clock passes the reservation's
	// quantized horizon.
	PDESConservative
	// PDESAdaptive relaxes the conservative horizon per link: a commit on a
	// link leaving node v only waits for lower PE q to reach
	// end - dist(q,v)·HopCost, because q's future traffic needs that many
	// hops to reach v at all (pdes.go, safeAdaptiveLocked).
	PDESAdaptive
)

func (m PDESMode) String() string {
	switch m {
	case PDESOptimistic:
		return "optimistic"
	case PDESConservative:
		return "conservative"
	case PDESAdaptive:
		return "adaptive"
	}
	return "PDESMode(?)"
}

// ParsePDES reads a -pdes flag value.
func ParsePDES(s string) (PDESMode, error) {
	switch s {
	case "", "optimistic":
		return PDESOptimistic, nil
	case "conservative":
		return PDESConservative, nil
	case "adaptive":
		return PDESAdaptive, nil
	}
	return 0, errBadPDES(s)
}

type errBadPDES string

func (e errBadPDES) Error() string {
	return "noc: unknown pdes mode \"" + string(e) + "\" (want optimistic, conservative or adaptive)"
}

// TestSpecSkew, when non-nil, perturbs every speculative RoundTrip
// prediction by its return value (added to the predicted arrival). The
// perturbed value is both returned to the engine and logged, so validation
// sees a guaranteed mismatch and the rollback/re-execution path runs — the
// equivalence property tests use this to prove mis-speculation recovery
// converges to the canonical results. Set only while no engine runs.
var TestSpecSkew func() int64

// SpecOp is one logged transport call of a speculative epoch: the exact
// arguments the PE issued and the result it consumed. During validation the
// result fields are overwritten in place with the real (canonical) results.
type SpecOp struct {
	RT       bool // RoundTrip (engine-visible result) vs Send (discarded)
	From, To int32
	Payload  int64
	Depart   int64
	Hot      int64
	Arrive   int64
	Wait     int64
}

// SpecRecorder is the Transport a PE uses during a speculative epoch: it
// books on the PE's private predictor network and logs every call. Not safe
// for use by more than its own PE.
type SpecRecorder struct {
	pred *Network
	// Ops is the epoch's transport log in issue order.
	Ops []SpecOp
}

// NewSpecRecorder wraps a private predictor network.
func NewSpecRecorder(pred *Network) *SpecRecorder { return &SpecRecorder{pred: pred} }

// BeginEpoch clears the predictor's schedules and the log for a new epoch.
func (r *SpecRecorder) BeginEpoch() {
	r.pred.EndEpoch()
	r.Ops = r.Ops[:0]
}

// Send implements Transport. The result is a prediction; every engine call
// site discards Send results, so mispredicted Sends never force a rollback
// (validation still rebooks them canonically for the link statistics).
func (r *SpecRecorder) Send(src, dst int, payload, depart, hot int64) (arrive, wait int64) {
	if h := TestCommitYield; h != nil {
		h()
	}
	arrive, wait = r.pred.Send(src, dst, payload, depart, hot)
	r.Ops = append(r.Ops, SpecOp{From: int32(src), To: int32(dst),
		Payload: payload, Depart: depart, Hot: hot, Arrive: arrive, Wait: wait})
	return arrive, wait
}

// RoundTrip implements Transport; the prediction models distance, endpoint
// overhead and the PE's self-contention, but not cross-PE queueing.
func (r *SpecRecorder) RoundTrip(src, dst int, replyWords, depart, hot int64) (arrive, wait int64) {
	if h := TestCommitYield; h != nil {
		h()
	}
	arrive, wait = r.pred.RoundTrip(src, dst, replyWords, depart, hot)
	if h := TestSpecSkew; h != nil {
		arrive += h()
	}
	r.Ops = append(r.Ops, SpecOp{RT: true, From: int32(src), To: int32(dst),
		Payload: replyWords, Depart: depart, Hot: hot, Arrive: arrive, Wait: wait})
	return arrive, wait
}

// DropWaitCycles implements Transport.
func (r *SpecRecorder) DropWaitCycles() int64 { return r.pred.cfg.DropWaitCycles }

// ValidateOps replays a speculative log onto the real network in canonical
// order, overwriting each op's result fields with the real results as it
// books. It stops after booking the first op whose engine-visible result
// (RoundTrip arrival, or which side of the drop timeout the wait fell on)
// mispredicted, returning its index; len(ops) means the whole log validated.
// Ops beyond the returned index are NOT booked — the engine's re-execution
// books them in their canonical place.
func (n *Network) ValidateOps(ops []SpecOp) int {
	drop := n.cfg.DropWaitCycles
	for k := range ops {
		op := &ops[k]
		a, w := n.bookOp(op)
		if op.RT && (a != op.Arrive || (w > drop) != (op.Wait > drop)) {
			op.Arrive, op.Wait = a, w
			return k
		}
		op.Arrive, op.Wait = a, w
	}
	return len(ops)
}

// BookOps books a slice of logged ops without validating (the no-rollback
// sabotage path: mispredicted speculative state is deliberately kept, but
// the link schedules still need the traffic for later PEs' placements).
func (n *Network) BookOps(ops []SpecOp) {
	for k := range ops {
		n.bookOp(&ops[k])
	}
}

func (n *Network) bookOp(op *SpecOp) (arrive, wait int64) {
	if op.RT {
		return n.RoundTrip(int(op.From), int(op.To), op.Payload, op.Depart, op.Hot)
	}
	return n.Send(int(op.From), int(op.To), op.Payload, op.Depart, op.Hot)
}

// NewFleet builds count private predictor networks of the same
// configuration, slab-allocating the per-network link, histogram and route
// storage so a 64-PE fleet costs a handful of allocations instead of
// hundreds. Predictors are full Networks — Send/RoundTrip/EndEpoch behave
// identically — they are merely never shared across PEs.
func NewFleet(cfg Config, numPE, count int) ([]*Network, error) {
	if cfg.Kind == KindFlat {
		return nil, nil
	}
	if err := cfg.Validate(numPE); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var dims [numDims]int
	if cfg.X == 0 {
		dims[0], dims[1], dims[2] = AutoDims(numPE)
	} else {
		dims[0], dims[1], dims[2] = cfg.X, cfg.Y, cfg.Z
	}
	maxHops := 0
	for d := 0; d < numDims; d++ {
		maxHops += dims[d] / 2
	}
	nLinks := numPE * numDims * 2
	nets := make([]Network, count)
	linkSlab := make([]linkState, count*nLinks)
	histSlab := make([]int64, count*(maxHops+1))
	routeSlab := make([]int32, count*maxHops)
	out := make([]*Network, count)
	for i := range nets {
		n := &nets[i]
		n.cfg, n.numPE, n.dims = cfg, numPE, dims
		n.links = linkSlab[i*nLinks : (i+1)*nLinks : (i+1)*nLinks]
		n.hopHist = histSlab[i*(maxHops+1) : (i+1)*(maxHops+1) : (i+1)*(maxHops+1)]
		n.scratch = routeSlab[i*maxHops : i*maxHops : (i+1)*maxHops]
		out[i] = n
	}
	return out, nil
}
