package noc

import (
	"fmt"
	"sort"
	"strings"
)

// LinkStat is the cumulative traffic of one unidirectional link.
type LinkStat struct {
	Name    string  // "PE7+x": the +x link out of node 7
	Busy    int64   // cycles the link was occupied by message flits
	Msgs    int64   // messages that crossed the link
	Words   int64   // payload words that crossed the link
	Wait    int64   // cycles messages spent queued for the link
	MaxWait int64   // worst single queue wait on the link
	Util    float64 // Busy / total run cycles, in [0,1]
}

// Summary is the interconnect observability snapshot of one run: per-link
// utilization, contention hotspots, and the hop-distance histogram.
type Summary struct {
	Topology string // "4x4x4 torus (64 PEs)"
	X, Y, Z  int

	Messages   int64   // messages sent
	Words      int64   // payload words carried
	MeanHops   float64 // mean route length over all messages
	MaxHops    int     // longest route observed
	HopHist    []int64 // messages by route length (index = hops)
	WaitCycles int64   // total cycles spent queued on busy links
	Contended  int64   // messages that waited at least one cycle
	MaxWait    int64   // worst single message queueing wait

	// Links holds every link that carried traffic, sorted by Busy
	// descending (the hotspots first).
	Links []LinkStat
}

// Clone returns a summary with its own copy of the histogram and link
// slices. The execution engine refills one engine-owned Summary per run;
// a Result that outlives the engine's reuse carries a clone instead.
func (s *Summary) Clone() *Summary {
	out := *s
	out.HopHist = append([]int64(nil), s.HopHist...)
	out.Links = append([]LinkStat(nil), s.Links...)
	return &out
}

// Summary snapshots the network's cumulative statistics. totalCycles (the
// run's final cycle count) scales the per-link utilization.
func (n *Network) Summary(totalCycles int64) *Summary {
	s := &Summary{}
	n.SummaryInto(s, totalCycles)
	return s
}

// SummaryInto snapshots the network's cumulative statistics into s, reusing
// s's HopHist and Links storage — the engine holds one Summary per Network
// and refills it every run, so the steady state allocates nothing.
func (n *Network) SummaryInto(s *Summary, totalCycles int64) {
	s.X, s.Y, s.Z = n.dims[0], n.dims[1], n.dims[2]
	s.Topology = n.topologyString()
	s.Messages = n.msgs
	s.Words = n.words
	s.WaitCycles = n.waitCycles
	s.Contended = n.contended
	s.MaxWait = n.maxWait
	s.HopHist = append(s.HopHist[:0], n.hopHist...)
	s.MeanHops = 0
	if n.msgs > 0 {
		s.MeanHops = float64(n.hops) / float64(n.msgs)
	}
	s.MaxHops = 0
	for h := len(n.hopHist) - 1; h > 0; h-- {
		if n.hopHist[h] > 0 {
			s.MaxHops = h
			break
		}
	}
	s.Links = s.Links[:0]
	for id := range n.links {
		l := &n.links[id]
		if l.msgs == 0 {
			continue
		}
		ls := LinkStat{
			Name: n.LinkName(int32(id)),
			Busy: l.busy, Msgs: l.msgs, Words: l.words,
			Wait: l.wait, MaxWait: l.maxWait,
		}
		if totalCycles > 0 {
			ls.Util = float64(ls.Busy) / float64(totalCycles)
		}
		s.Links = append(s.Links, ls)
	}
	// sort.Sort on a pointer-to-named-slice-type stays off the heap, unlike
	// sort.Slice's closure + reflect-based swapper.
	sort.Sort((*linksByBusy)(&s.Links))
}

// topologyString caches the rendered topology label ("4x4x4 torus (64
// PEs)") so repeated summaries keep fmt out of the run path.
func (n *Network) topologyString() string {
	if n.topoStr == "" {
		n.topoStr = fmt.Sprintf("%dx%dx%d torus (%d PEs)", n.dims[0], n.dims[1], n.dims[2], n.numPE)
	}
	return n.topoStr
}

// linksByBusy sorts hotspots first: Busy descending, name ascending on ties.
type linksByBusy []LinkStat

func (l *linksByBusy) Len() int      { return len(*l) }
func (l *linksByBusy) Swap(i, j int) { (*l)[i], (*l)[j] = (*l)[j], (*l)[i] }
func (l *linksByBusy) Less(i, j int) bool {
	a, b := &(*l)[i], &(*l)[j]
	if a.Busy != b.Busy {
		return a.Busy > b.Busy
	}
	return a.Name < b.Name
}

// MeanHopsOrZero returns the mean route length (0 on a nil summary).
func (s *Summary) MeanHopsOrZero() float64 {
	if s == nil {
		return 0
	}
	return s.MeanHops
}

// MaxHopsOrZero returns the longest route observed (0 on a nil summary).
func (s *Summary) MaxHopsOrZero() int {
	if s == nil {
		return 0
	}
	return s.MaxHops
}

// MaxLinkUtil returns the busiest link's utilization (0 with no traffic).
func (s *Summary) MaxLinkUtil() float64 {
	if s == nil || len(s.Links) == 0 {
		return 0
	}
	return s.Links[0].Util
}

// HottestLink names the busiest link ("" with no traffic).
func (s *Summary) HottestLink() string {
	if s == nil || len(s.Links) == 0 {
		return ""
	}
	return s.Links[0].Name
}

// String renders a compact human-readable report: topology, totals, the
// hop-distance histogram and the top contention hotspots.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network: %s\n", s.Topology)
	fmt.Fprintf(&b, "network: msgs=%d words=%d mean-hops=%.2f max-hops=%d contended=%d wait=%d max-wait=%d\n",
		s.Messages, s.Words, s.MeanHops, s.MaxHops, s.Contended, s.WaitCycles, s.MaxWait)
	b.WriteString("network: hop-histogram:")
	for h, c := range s.HopHist {
		if c > 0 {
			fmt.Fprintf(&b, " %d:%d", h, c)
		}
	}
	b.WriteString("\n")
	top := s.Links
	if len(top) > 5 {
		top = top[:5]
	}
	for _, l := range top {
		fmt.Fprintf(&b, "network: link %-8s util=%5.1f%% msgs=%d words=%d wait=%d max-wait=%d\n",
			l.Name, 100*l.Util, l.Msgs, l.Words, l.Wait, l.MaxWait)
	}
	return strings.TrimRight(b.String(), "\n")
}
