// Package noc models the Cray T3D's interconnection network: a 3D torus
// of processing nodes with bidirectional links in each dimension and
// deterministic dimension-order (e-cube) routing, the network the real
// machine used. Remote references, prefetches and SHMEM block transfers
// cross the network as messages; each message pays
//
//	router hops × HopCost  +  payload words × WordCost
//
// plus any time spent queued behind other messages on a busy link. Links
// are reserved wormhole-style: a message occupies every link on its route
// for the time its flits stream through, and a later message wanting the
// same link at an overlapping time waits for a free slot (first-fit into
// the link's idle gaps). Per-link occupancy, queueing waits and hop
// distances are recorded for the observability reports.
//
// Determinism: the Network itself is NOT safe for concurrent use. Callers
// either book from a single goroutine in canonical PE order (serial epochs,
// race-detection runs, the sequential reference path) or go through a
// Session (pdes.go), the windowed conservative-PDES front end that lets all
// PEs of a parallel epoch run concurrently while committing reservations in
// an order provably equivalent to the canonical sequential one — cycle
// counts are bit-identical either way. The zero-value Config (KindFlat)
// means "no modeled network": callers keep the machine model's constant
// remote latencies and never construct a Network at all.
package noc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind selects the interconnect model.
type Kind int

const (
	// KindFlat is the constant-latency model: every remote access costs
	// machine.Params.RemoteReadCost regardless of distance or traffic.
	// It reproduces the pre-noc simulator bit-identically.
	KindFlat Kind = iota
	// KindTorus is the 3D-torus model with dimension-order routing and
	// per-link contention.
	KindTorus
)

func (k Kind) String() string {
	switch k {
	case KindFlat:
		return "flat"
	case KindTorus:
		return "torus"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Default cost parameters, in processor cycles. RemoteBaseCost is
// calibrated so that the MEAN uncontended remote read on the 64-PE 4×4×4
// torus (average 3.05 hops each way) lands on the flat model's 150-cycle
// RemoteReadCost: 55 + 2×3.05×15 + 2×3 ≈ 152. Torus-vs-flat comparisons
// therefore measure the latency *distribution* and contention, not a
// shifted mean.
const (
	DefaultHopCost        = 15   // per router hop per message
	DefaultWordCost       = 3    // per payload word per link (serialization)
	DefaultRemoteBaseCost = 55   // endpoint overhead: home-node memory access + packet assembly
	DefaultDropWaitCycles = 2000 // a prefetch queued longer than this times out (§3.2 demotion)
)

// Config describes one interconnect configuration. The zero value is the
// flat (constant-latency) model.
type Config struct {
	Kind Kind
	// X, Y, Z are the torus dimensions. All zero means "derive near-cubic
	// dimensions from the PE count" (4×4×4 for 64 PEs). When set
	// explicitly, X·Y·Z must equal the machine's NumPE.
	X, Y, Z int
	// HopCost is the router latency per hop per message.
	HopCost int64
	// WordCost is the per-payload-word serialization cost on each link.
	WordCost int64
	// RemoteBaseCost is the fixed per-transfer endpoint overhead (request
	// assembly + home-node memory access).
	RemoteBaseCost int64
	// DropWaitCycles bounds how long a prefetch message may sit queued on
	// busy links before the network drops it (congestion timeout); the
	// consuming read then demotes to a bypass fetch exactly as for a lost
	// prefetch (paper §3.2). Demand (blocking) accesses never drop.
	DropWaitCycles int64
	// DomainPEs and NearBaseCost model coherence domains on the fabric:
	// when DomainPEs > 1, a round trip whose endpoints share a domain
	// (src/DomainPEs == dst/DomainPEs) pays NearBaseCost instead of
	// RemoteBaseCost at the home node — the hardware-coherent near tier.
	// Injected programmatically by the execution engine from the machine
	// profile; never part of the Parse/String CLI syntax, so the zero
	// value keeps every existing config bit-identical.
	DomainPEs    int
	NearBaseCost int64
}

// baseCostFor returns the endpoint overhead of a round trip between src
// and dst: the near tier inside a coherence domain, RemoteBaseCost
// otherwise.
func (c Config) baseCostFor(src, dst int) int64 {
	if c.DomainPEs > 1 && c.NearBaseCost > 0 && src/c.DomainPEs == dst/c.DomainPEs {
		return c.NearBaseCost
	}
	return c.RemoteBaseCost
}

// withDefaults fills zero cost fields with the package defaults.
func (c Config) withDefaults() Config {
	if c.HopCost == 0 {
		c.HopCost = DefaultHopCost
	}
	if c.WordCost == 0 {
		c.WordCost = DefaultWordCost
	}
	if c.RemoteBaseCost == 0 {
		c.RemoteBaseCost = DefaultRemoteBaseCost
	}
	if c.DropWaitCycles == 0 {
		c.DropWaitCycles = DefaultDropWaitCycles
	}
	return c
}

// Validate checks the configuration against a PE count.
func (c Config) Validate(numPE int) error {
	if c.Kind == KindFlat {
		return nil
	}
	if c.X < 0 || c.Y < 0 || c.Z < 0 {
		return fmt.Errorf("noc: negative torus dimension in %dx%dx%d", c.X, c.Y, c.Z)
	}
	if c.X == 0 && c.Y == 0 && c.Z == 0 {
		return nil // auto-derived
	}
	if c.X == 0 || c.Y == 0 || c.Z == 0 {
		return fmt.Errorf("noc: partial torus dimensions %dx%dx%d (set all three or none)", c.X, c.Y, c.Z)
	}
	if c.X*c.Y*c.Z != numPE {
		return fmt.Errorf("noc: torus %dx%dx%d holds %d PEs, machine has %d",
			c.X, c.Y, c.Z, c.X*c.Y*c.Z, numPE)
	}
	if c.HopCost < 0 || c.WordCost < 0 || c.RemoteBaseCost < 0 || c.DropWaitCycles < 0 || c.NearBaseCost < 0 {
		return fmt.Errorf("noc: negative cost parameter in %+v", c)
	}
	return nil
}

// String renders the config in Parse syntax.
func (c Config) String() string {
	if c.Kind == KindFlat {
		return "flat"
	}
	if c.X == 0 && c.Y == 0 && c.Z == 0 {
		return "torus"
	}
	return fmt.Sprintf("%dx%dx%d", c.X, c.Y, c.Z)
}

// Parse reads a -topology flag value: "flat", "torus" (auto dimensions),
// or explicit dimensions like "4x4x4".
func Parse(s string) (Config, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "flat":
		return Config{}, nil
	case "torus":
		return Config{Kind: KindTorus}, nil
	}
	var x, y, z int
	if _, err := fmt.Sscanf(strings.ToLower(s), "%dx%dx%d", &x, &y, &z); err != nil {
		return Config{}, fmt.Errorf("noc: bad topology %q (want flat, torus, or XxYxZ)", s)
	}
	if x < 1 || y < 1 || z < 1 {
		return Config{}, fmt.Errorf("noc: bad torus dimensions %q", s)
	}
	return Config{Kind: KindTorus, X: x, Y: y, Z: z}, nil
}

// AutoDims factors n into the most nearly cubic x ≥ y ≥ z with x·y·z = n
// (4,4,4 for 64; 4,4,2 for 32; n,1,1 for primes — a ring).
func AutoDims(n int) (x, y, z int) {
	x, y, z = n, 1, 1
	bestSpread := n - 1
	for c := 1; c*c*c <= n; c++ {
		if n%c != 0 {
			continue
		}
		m := n / c
		for b := c; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			a := m / b
			if spread := a - c; spread < bestSpread {
				bestSpread = spread
				x, y, z = a, b, c
			}
		}
	}
	return x, y, z
}

// numDims is the dimensionality of the torus (X, Y, Z).
const numDims = 3

// Network is the simulated interconnect of one run: the topology, the
// per-link reservation schedules of the current epoch, and cumulative
// per-link statistics. Not safe for concurrent use (see package comment).
type Network struct {
	cfg   Config
	numPE int
	dims  [numDims]int

	links []linkState
	// scratch holds the route of the message being sent (no per-message
	// allocation).
	scratch []int32
	// names caches the rendered per-link names ("PE7+x"); built on first
	// LinkName call so the many predictor networks of an optimistic run,
	// which never report, pay nothing. Keeping fmt off the Run path also
	// makes steady-state allocation counts deterministic (fmt's internal
	// sync.Pool refills after a GC showed up as ±1 allocs/op drift in the
	// benchmarks).
	names []string
	// dist caches pairwise route lengths (dist[src*numPE+dst]) for the
	// adaptive PDES commit rule; built on first Dist call.
	dist []int32
	// topoStr caches the rendered topology label (summary.go).
	topoStr string

	// Cumulative message accounting.
	msgs, words, hops, waitCycles, contended int64
	hopHist                                  []int64
	maxWait                                  int64
}

// linkState is one unidirectional link: the busy intervals booked in the
// current epoch (cleared at every barrier — the network drains there) and
// cumulative counters.
type linkState struct {
	ivals []ival

	busy, msgs, words, wait, maxWait int64
}

// ival is one booked busy interval [lo, hi).
type ival struct{ lo, hi int64 }

// New builds the network for cfg over numPE processors. Returns an error
// for invalid explicit dimensions, and a nil network for the flat model.
func New(cfg Config, numPE int) (*Network, error) {
	if cfg.Kind == KindFlat {
		return nil, nil
	}
	if err := cfg.Validate(numPE); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := &Network{cfg: cfg, numPE: numPE}
	if cfg.X == 0 {
		n.dims[0], n.dims[1], n.dims[2] = AutoDims(numPE)
	} else {
		n.dims[0], n.dims[1], n.dims[2] = cfg.X, cfg.Y, cfg.Z
	}
	// One link per node per dimension per direction (+,−), wraparound
	// links included.
	n.links = make([]linkState, numPE*numDims*2)
	// Pre-size every link's schedule out of one slab: first-fit insertion
	// grows schedules by appending, and letting several hundred links each
	// double their way up dominated the one-shot allocation profile. Hot
	// links that outgrow the seed capacity migrate out of the slab on their
	// first append (three-index slicing keeps neighbors from overlapping).
	const seedIvals = 8
	ivalSlab := make([]ival, len(n.links)*seedIvals)
	for i := range n.links {
		n.links[i].ivals = ivalSlab[i*seedIvals : i*seedIvals : (i+1)*seedIvals][:0]
	}
	maxHops := 0
	for d := 0; d < numDims; d++ {
		maxHops += n.dims[d] / 2
	}
	n.hopHist = make([]int64, maxHops+1)
	n.scratch = make([]int32, 0, maxHops)
	return n, nil
}

// Config returns the (default-filled) configuration the network runs.
func (n *Network) Config() Config { return n.cfg }

// Dims returns the torus dimensions.
func (n *Network) Dims() (x, y, z int) { return n.dims[0], n.dims[1], n.dims[2] }

// Coord maps a PE id to its torus coordinates (x varies fastest).
func (n *Network) Coord(pe int) (x, y, z int) {
	x = pe % n.dims[0]
	y = (pe / n.dims[0]) % n.dims[1]
	z = pe / (n.dims[0] * n.dims[1])
	return
}

// PEAt maps torus coordinates to a PE id.
func (n *Network) PEAt(x, y, z int) int {
	return x + n.dims[0]*(y+n.dims[1]*z)
}

// Hops returns the dimension-order route length between two PEs: the
// Manhattan distance on the torus, taking the wraparound direction in each
// dimension when it is shorter.
func (n *Network) Hops(src, dst int) int {
	sc := [numDims]int{}
	dc := [numDims]int{}
	sc[0], sc[1], sc[2] = n.Coord(src)
	dc[0], dc[1], dc[2] = n.Coord(dst)
	h := 0
	for d := 0; d < numDims; d++ {
		fwd := mod(dc[d]-sc[d], n.dims[d])
		if bwd := n.dims[d] - fwd; fwd > 0 && bwd < fwd {
			h += bwd
		} else {
			h += fwd
		}
	}
	return h
}

// linkID identifies the unidirectional link leaving node in dimension d,
// direction dir (0 = +, 1 = −).
func (n *Network) linkID(node, d, dir int) int32 {
	return int32((node*numDims+d)*2 + dir)
}

// LinkName renders a link id as "PE7+x" (the +x link out of node 7).
// Names are rendered once per network and cached.
func (n *Network) LinkName(id int32) string {
	if n.names == nil {
		n.names = make([]string, len(n.links))
		for i := range n.names {
			node := i / (numDims * 2)
			rem := i % (numDims * 2)
			d, dir := rem/2, rem%2
			sign := "+"
			if dir == 1 {
				sign = "-"
			}
			n.names[i] = "PE" + strconv.Itoa(node) + sign + string("xyz"[d])
		}
	}
	return n.names[id]
}

// Dist returns the dimension-order route length between two PEs from a
// lazily built table (the adaptive PDES commit rule queries it per hop per
// commit, too hot for the coordinate arithmetic of Hops).
func (n *Network) Dist(src, dst int) int {
	if n.dist == nil {
		n.dist = make([]int32, n.numPE*n.numPE)
		for s := 0; s < n.numPE; s++ {
			for d := 0; d < n.numPE; d++ {
				n.dist[s*n.numPE+d] = int32(n.Hops(s, d))
			}
		}
	}
	return int(n.dist[src*n.numPE+dst])
}

// Route appends the dimension-order route from src to dst (as link ids) to
// n.scratch and returns it. The result is valid until the next Route/Send
// call. Routes are deterministic: X is fully resolved, then Y, then Z; the
// wraparound direction is taken when strictly shorter, the positive
// direction on ties.
func (n *Network) Route(src, dst int) []int32 {
	route := n.scratch[:0]
	cur := [numDims]int{}
	dc := [numDims]int{}
	cur[0], cur[1], cur[2] = n.Coord(src)
	dc[0], dc[1], dc[2] = n.Coord(dst)
	for d := 0; d < numDims; d++ {
		size := n.dims[d]
		fwd := mod(dc[d]-cur[d], size)
		step, dir := 1, 0
		hops := fwd
		if bwd := size - fwd; fwd > 0 && bwd < fwd {
			step, dir = -1, 1
			hops = bwd
		}
		for k := 0; k < hops; k++ {
			node := n.PEAt(cur[0], cur[1], cur[2])
			route = append(route, n.linkID(node, d, dir))
			cur[d] = mod(cur[d]+step, size)
		}
	}
	n.scratch = route
	return route
}

// Transport is the engine-facing interface of the interconnect: the calls
// a PE needs to charge its remote traffic. Implemented by *Network (the
// canonical single-goroutine booking order) and by *Session (the windowed
// conservative-PDES front end, callable from concurrent PE goroutines) —
// both produce identical results by construction (pdes.go).
type Transport interface {
	// Send transmits one fire-and-forget message (see Network.Send).
	Send(src, dst int, payload, depart, hotExtra int64) (arrive, wait int64)
	// RoundTrip models a blocking remote-read transfer (see
	// Network.RoundTrip).
	RoundTrip(src, dst int, replyWords, depart, hot int64) (arrive, wait int64)
	// DropWaitCycles is the congestion-timeout bound for prefetch messages.
	DropWaitCycles() int64
}

// Send transmits one message of payload words from src to dst, departing
// at cycle depart, booking every link on the route. hotExtra > 0 models a
// fault-injected hotspot at the message's injection link: the link is held
// busy that many extra cycles (and the message itself is stalled by them),
// so later traffic through the same link queues behind the fault. It
// returns the cycle the message's tail arrives at dst and the total cycles
// the message spent queued behind other traffic.
func (n *Network) Send(src, dst int, payload, depart, hotExtra int64) (arrive, wait int64) {
	if src == dst {
		return depart, 0
	}
	route := n.Route(src, dst)
	occBase := n.cfg.HopCost + payload*n.cfg.WordCost
	t := depart
	for k, id := range route {
		occ := occBase
		if k == 0 {
			occ += hotExtra
		}
		l := &n.links[id]
		start := l.book(t, occ)
		w := start - t
		wait += w
		l.busy += occ
		l.msgs++
		l.words += payload
		l.wait += w
		if w > l.maxWait {
			l.maxWait = w
		}
		// Virtual cut-through: the head moves to the next router after one
		// hop time; the payload streams behind it. A hotspot stall holds
		// the head at the injection link.
		t = start + n.cfg.HopCost
		if k == 0 {
			t += hotExtra
		}
	}
	arrive = t + payload*n.cfg.WordCost
	n.msgs++
	n.words += payload
	n.hops += int64(len(route))
	n.hopHist[len(route)]++
	n.waitCycles += wait
	if wait > 0 {
		n.contended++
	}
	if wait > n.maxWait {
		n.maxWait = wait
	}
	return arrive, wait
}

// planSend computes the result Send would return right now — the arrival
// cycle and total queueing wait — against the current link schedules,
// without reserving anything. A dimension-order route never crosses the
// same link twice, so the hop-by-hop plan is exactly the placement Send
// would commit: planSend followed by an un-interleaved Send returns
// identical values. Because first-fit placements never start before their
// requested time and the head moves one HopCost per hop, every interval
// the message would occupy ends at or before the returned arrival — the
// bound the PDES commit rule (pdes.go) is built on.
func (n *Network) planSend(src, dst int, payload, depart, hotExtra int64) (arrive, wait int64) {
	if src == dst {
		return depart, 0
	}
	route := n.Route(src, dst)
	occBase := n.cfg.HopCost + payload*n.cfg.WordCost
	t := depart
	for k, id := range route {
		occ := occBase
		if k == 0 {
			occ += hotExtra
		}
		start, _ := n.links[id].probe(t, occ)
		wait += start - t
		t = start + n.cfg.HopCost
		if k == 0 {
			t += hotExtra
		}
	}
	return t + payload*n.cfg.WordCost, wait
}

// linkEnd is one hop of a planned placement: the node whose outgoing link
// carries the message, and the cycle the message's occupancy of that link
// ends. The adaptive PDES commit rule (pdes.go) is phrased in these.
type linkEnd struct {
	node int32
	end  int64
}

// planSendEnds computes, without reserving anything, the per-hop
// (node, occupancy-end) pairs of the placement Send would commit right now,
// appending them to out. Like planSend it is exact as long as no other
// booking interleaves, which the Session's lock guarantees.
func (n *Network) planSendEnds(src, dst int, payload, depart, hotExtra int64, out []linkEnd) (ends []linkEnd, arrive int64) {
	out = out[:0]
	if src == dst {
		return out, depart
	}
	route := n.Route(src, dst)
	occBase := n.cfg.HopCost + payload*n.cfg.WordCost
	t := depart
	for k, id := range route {
		occ := occBase
		if k == 0 {
			occ += hotExtra
		}
		start, _ := n.links[id].probe(t, occ)
		out = append(out, linkEnd{node: id / (numDims * 2), end: start + occ})
		t = start + n.cfg.HopCost
		if k == 0 {
			t += hotExtra
		}
	}
	return out, t + payload*n.cfg.WordCost
}

// RoundTrip models a remote read-style transfer: a one-word request from
// src to dst, the home node's fixed RemoteBaseCost, and a replyWords reply
// back. hot injects a hotspot at the home node's reply link (see Send).
// It returns the completion cycle at src and the total queueing wait.
func (n *Network) RoundTrip(src, dst int, replyWords, depart, hot int64) (arrive, wait int64) {
	t1, w1 := n.Send(src, dst, 1, depart, 0)
	t2, w2 := n.Send(dst, src, replyWords, t1+n.cfg.baseCostFor(src, dst), hot)
	return t2, w1 + w2
}

// DropWaitCycles is the congestion-timeout bound for prefetch messages.
func (n *Network) DropWaitCycles() int64 { return n.cfg.DropWaitCycles }

// Reset returns the network to its just-built state: every link schedule
// and all cumulative statistics cleared, no storage released. Engines
// reuse one Network across runs through this.
func (n *Network) Reset() {
	for i := range n.links {
		n.links[i] = linkState{ivals: n.links[i].ivals[:0]}
	}
	n.msgs, n.words, n.hops, n.waitCycles, n.contended, n.maxWait = 0, 0, 0, 0, 0, 0
	for i := range n.hopHist {
		n.hopHist[i] = 0
	}
}

// EndEpoch clears every link's reservation schedule: epoch boundaries are
// barriers, and the network drains before the next epoch starts.
// Cumulative statistics survive.
func (n *Network) EndEpoch() {
	for i := range n.links {
		if len(n.links[i].ivals) > 0 {
			n.links[i].ivals = n.links[i].ivals[:0]
		}
	}
}

// probe computes the first-fit placement of occ cycles at or after cycle
// at without reserving it: the start time and the index at which the
// interval would be inserted. The placement depends only on the UNION of
// the booked busy intervals in the scanned range (the list keeps intervals
// disjoint, merging only touching neighbors), which is what makes
// placements independent of the order equivalent schedules were built in.
func (l *linkState) probe(at, occ int64) (s int64, i int) {
	ivs := l.ivals
	// Skip intervals that end at or before the requested time, then slide
	// the start past every overlapping busy interval.
	i = sort.Search(len(ivs), func(i int) bool { return ivs[i].hi > at })
	s = at
	for i < len(ivs) && ivs[i].lo < s+occ {
		if ivs[i].hi > s {
			s = ivs[i].hi
		}
		i++
	}
	return s, i
}

// book reserves occ cycles on the link, first-fit into the schedule's idle
// gaps at or after cycle at, and returns the reserved start time.
func (l *linkState) book(at, occ int64) int64 {
	s, i := l.probe(at, occ)
	ivs := l.ivals
	lo, hi := s, s+occ
	// Merge with touching neighbors to keep the schedule compact.
	mergeL := i > 0 && ivs[i-1].hi == lo
	mergeR := i < len(ivs) && ivs[i].lo == hi
	switch {
	case mergeL && mergeR:
		ivs[i-1].hi = ivs[i].hi
		l.ivals = append(ivs[:i], ivs[i+1:]...)
	case mergeL:
		ivs[i-1].hi = hi
	case mergeR:
		ivs[i].lo = lo
	default:
		ivs = append(ivs, ival{})
		copy(ivs[i+1:], ivs[i:])
		ivs[i] = ival{lo, hi}
		l.ivals = ivs
	}
	return s
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}
