package noc

import (
	"math/rand"
	"reflect"
	"testing"
)

func mustNew(t *testing.T, cfg Config, numPE int) *Network {
	t.Helper()
	n, err := New(cfg, numPE)
	if err != nil {
		t.Fatalf("New(%+v, %d): %v", cfg, numPE, err)
	}
	if n == nil {
		t.Fatalf("New(%+v, %d): nil network", cfg, numPE)
	}
	return n
}

// torusManhattan computes the reference hop distance independently of the
// router: per dimension, the shorter of the direct and wraparound walks.
func torusManhattan(n *Network, src, dst int) int {
	sx, sy, sz := n.Coord(src)
	dx, dy, dz := n.Coord(dst)
	X, Y, Z := n.Dims()
	dist := func(a, b, size int) int {
		d := a - b
		if d < 0 {
			d = -d
		}
		if w := size - d; w < d {
			return w
		}
		return d
	}
	return dist(sx, dx, X) + dist(sy, dy, Y) + dist(sz, dz, Z)
}

// endpoints decodes a link id back to its source node, dimension and step.
func endpoints(n *Network, id int32) (node, dim, step int) {
	node = int(id) / 6
	rem := int(id) % 6
	dim = rem / 2
	if rem%2 == 0 {
		step = 1
	} else {
		step = -1
	}
	return
}

// TestRoutePropertyRandomPairs: for random tori and random PE pairs, the
// route length equals the Manhattan-distance-on-a-torus, routes are
// deterministic, and every route is a connected walk from src to dst.
func TestRoutePropertyRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := [][3]int{{4, 4, 4}, {4, 4, 2}, {8, 2, 2}, {5, 3, 2}, {7, 1, 1}, {2, 2, 2}, {16, 2, 1}}
	for _, d := range dims {
		numPE := d[0] * d[1] * d[2]
		n := mustNew(t, Config{Kind: KindTorus, X: d[0], Y: d[1], Z: d[2]}, numPE)
		for trial := 0; trial < 200; trial++ {
			src, dst := rng.Intn(numPE), rng.Intn(numPE)
			want := torusManhattan(n, src, dst)
			if got := n.Hops(src, dst); got != want {
				t.Fatalf("%v: Hops(%d,%d) = %d, torus Manhattan distance %d", d, src, dst, got, want)
			}
			route := append([]int32(nil), n.Route(src, dst)...)
			if len(route) != want {
				t.Fatalf("%v: route %d->%d has %d links, distance is %d", d, src, dst, len(route), want)
			}
			again := append([]int32(nil), n.Route(src, dst)...)
			if !reflect.DeepEqual(route, again) {
				t.Fatalf("%v: route %d->%d not deterministic: %v vs %v", d, src, dst, route, again)
			}
			// The route must be a connected dimension-order walk ending at dst.
			cur := src
			lastDim := -1
			for _, id := range route {
				node, dim, step := endpoints(n, id)
				if node != cur {
					t.Fatalf("%v: route %d->%d: link %s leaves node %d, walk is at %d",
						d, src, dst, n.LinkName(id), node, cur)
				}
				if dim < lastDim {
					t.Fatalf("%v: route %d->%d visits dimension %d after %d (not dimension-ordered)",
						d, src, dst, dim, lastDim)
				}
				lastDim = dim
				x, y, z := n.Coord(cur)
				c := [3]int{x, y, z}
				size := [3]int{}
				size[0], size[1], size[2] = n.Dims()
				c[dim] = mod(c[dim]+step, size[dim])
				cur = n.PEAt(c[0], c[1], c[2])
			}
			if cur != dst {
				t.Fatalf("%v: route %d->%d ends at %d", d, src, dst, cur)
			}
		}
	}
}

// TestRouteUsesWraparound: when the wraparound walk is strictly shorter,
// the route crosses the seam (a link whose endpoints' coordinates differ
// by size-1 in the routed dimension).
func TestRouteUsesWraparound(t *testing.T) {
	n := mustNew(t, Config{Kind: KindTorus, X: 8, Y: 1, Z: 1}, 8)
	// 0 -> 6 is 2 hops backwards over the seam, 6 hops forward.
	if got := n.Hops(0, 6); got != 2 {
		t.Fatalf("Hops(0,6) on a ring of 8 = %d, want 2 via wraparound", got)
	}
	route := n.Route(0, 6)
	if len(route) != 2 {
		t.Fatalf("route 0->6 = %v, want 2 links", route)
	}
	node, dim, step := endpoints(n, route[0])
	if node != 0 || dim != 0 || step != -1 {
		t.Fatalf("route 0->6 should start with the -x seam link out of 0, got %s", n.LinkName(route[0]))
	}
	// And the direct direction when that is shorter: 0 -> 2.
	route = n.Route(0, 2)
	if len(route) != 2 {
		t.Fatalf("route 0->2 = %v, want 2 links", route)
	}
	if _, _, step := endpoints(n, route[0]); step != 1 {
		t.Fatalf("route 0->2 should go +x, got %s", n.LinkName(route[0]))
	}
}

func TestAutoDims(t *testing.T) {
	cases := []struct{ n, x, y, z int }{
		{64, 4, 4, 4}, {32, 4, 4, 2}, {16, 4, 2, 2}, {8, 2, 2, 2},
		{4, 2, 2, 1}, {2, 2, 1, 1}, {1, 1, 1, 1}, {7, 7, 1, 1}, {12, 3, 2, 2},
	}
	for _, c := range cases {
		x, y, z := AutoDims(c.n)
		if x*y*z != c.n {
			t.Fatalf("AutoDims(%d) = %dx%dx%d, product %d", c.n, x, y, z, x*y*z)
		}
		if x != c.x || y != c.y || z != c.z {
			t.Errorf("AutoDims(%d) = %dx%dx%d, want %dx%dx%d", c.n, x, y, z, c.x, c.y, c.z)
		}
	}
}

func TestParse(t *testing.T) {
	for _, s := range []string{"flat", "", "Flat"} {
		cfg, err := Parse(s)
		if err != nil || cfg.Kind != KindFlat {
			t.Fatalf("Parse(%q) = %+v, %v", s, cfg, err)
		}
	}
	cfg, err := Parse("torus")
	if err != nil || cfg.Kind != KindTorus || cfg.X != 0 {
		t.Fatalf("Parse(torus) = %+v, %v", cfg, err)
	}
	cfg, err = Parse("4x2x1")
	if err != nil || cfg.Kind != KindTorus || cfg.X != 4 || cfg.Y != 2 || cfg.Z != 1 {
		t.Fatalf("Parse(4x2x1) = %+v, %v", cfg, err)
	}
	for _, bad := range []string{"mesh", "4x4", "0x4x4", "-1x2x2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
	if err := (Config{Kind: KindTorus, X: 4, Y: 4, Z: 4}).Validate(32); err == nil {
		t.Error("4x4x4 over 32 PEs should fail validation")
	}
	if err := (Config{Kind: KindTorus}).Validate(17); err != nil {
		t.Errorf("auto-dims torus over 17 PEs: %v", err)
	}
}

// TestContentionQueueing: two same-time messages over a shared link queue;
// disjoint routes do not interact.
func TestContentionQueueing(t *testing.T) {
	n := mustNew(t, Config{Kind: KindTorus, X: 4, Y: 1, Z: 1}, 4)
	hop, word := n.Config().HopCost, n.Config().WordCost
	// First message 0->1: uncontended.
	a1, w1 := n.Send(0, 1, 10, 100, 0)
	if w1 != 0 {
		t.Fatalf("first message waited %d", w1)
	}
	if want := 100 + hop + 10*word; a1 != want {
		t.Fatalf("first message arrives %d, want %d", a1, want)
	}
	// Second message over the same link at the same time: queues behind the
	// first's occupancy (hop + 10 words).
	a2, w2 := n.Send(0, 1, 10, 100, 0)
	if w2 != hop+10*word {
		t.Fatalf("second message waited %d, want %d", w2, hop+10*word)
	}
	if a2 <= a1 {
		t.Fatalf("second message arrives %d, not after first %d", a2, a1)
	}
	// A message on a disjoint link is unaffected.
	if _, w := n.Send(2, 3, 10, 100, 0); w != 0 {
		t.Fatalf("disjoint message waited %d", w)
	}
	// An earlier gap still fits a later-booked message (first-fit).
	if _, w := n.Send(0, 1, 1, 0, 0); w != 0 {
		t.Fatalf("gap-filling message waited %d", w)
	}
	// After the epoch drains, the schedules are clear again.
	n.EndEpoch()
	if _, w := n.Send(0, 1, 10, 100, 0); w != 0 {
		t.Fatalf("post-epoch message waited %d", w)
	}
	s := n.Summary(1000)
	if s.Messages != 5 || s.Contended != 1 || s.WaitCycles != w2 {
		t.Fatalf("summary %+v: want 5 msgs, 1 contended, wait %d", s, w2)
	}
	if s.MaxLinkUtil() <= 0 || s.HottestLink() == "" {
		t.Fatalf("summary has no hotspot: %+v", s)
	}
}

// TestHotspotHolds: a hotspot message holds its injection link so later
// traffic queues behind the fault.
func TestHotspotHolds(t *testing.T) {
	n := mustNew(t, Config{Kind: KindTorus, X: 4, Y: 1, Z: 1}, 4)
	hop, word := n.Config().HopCost, n.Config().WordCost
	const spike = 500
	a1, _ := n.Send(0, 1, 1, 100, spike)
	if want := 100 + spike + hop + word; a1 != want {
		t.Fatalf("hotspot message arrives %d, want %d", a1, want)
	}
	_, w2 := n.Send(0, 1, 1, 100, 0)
	if w2 < spike {
		t.Fatalf("follower waited %d, want >= %d (queued behind the hotspot)", w2, spike)
	}
}

// TestRoundTripDistance: the round-trip latency grows with hop distance
// and matches the documented formula on an idle network.
func TestRoundTripDistance(t *testing.T) {
	n := mustNew(t, Config{Kind: KindTorus, X: 4, Y: 4, Z: 4}, 64)
	cfg := n.Config()
	lat := func(dst int) int64 {
		n.EndEpoch()
		arrive, wait := n.RoundTrip(0, dst, 1, 0, 0)
		if wait != 0 {
			t.Fatalf("idle round trip to %d waited %d", dst, wait)
		}
		return arrive
	}
	near := lat(1)                                                // 1 hop each way
	far := lat(42)                                                // (2,2,2): 6 hops each way
	wantNear := cfg.RemoteBaseCost + 2*(cfg.HopCost+cfg.WordCost) // 1 hop, 1 word each way
	if near != wantNear {
		t.Fatalf("neighbor round trip = %d, want %d", near, wantNear)
	}
	if far <= near {
		t.Fatalf("far round trip %d not slower than neighbor %d", far, near)
	}
	if want := cfg.RemoteBaseCost + 2*(6*cfg.HopCost+cfg.WordCost); far != want {
		t.Fatalf("far round trip = %d, want %d", far, want)
	}
}
