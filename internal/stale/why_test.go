package stale

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// crossProg builds the cross-PE read program: epoch 0 writes A distributed,
// epoch 1 reads it reversed, so every PE's read leaves its slab.
func crossProg() *ir.Program {
	b := ir.NewBuilder("cross-why")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(63))))),
	)
	return b.Build()
}

// Every marked stale read must carry a witness naming the PE, the array and
// the epoch; every marked remote read a witness naming the slab.
func TestWhyCoversEveryMarkedRead(t *testing.T) {
	p := crossProg()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StaleReads) == 0 || len(res.RemoteReads) == 0 {
		t.Fatalf("expected stale and remote reads, got %d/%d",
			len(res.StaleReads), len(res.RemoteReads))
	}
	for id := range res.StaleReads {
		why := res.Why[id]
		if why == "" {
			t.Errorf("stale read #%d has no witness", id)
			continue
		}
		for _, want := range []string{"PE", "A", "epoch", "dirty region"} {
			if !strings.Contains(why, want) {
				t.Errorf("witness %q missing %q", why, want)
			}
		}
	}
	for id := range res.RemoteReads {
		why := res.RemoteWhy[id]
		if why == "" {
			t.Errorf("remote read #%d has no witness", id)
			continue
		}
		if !strings.Contains(why, "slab") {
			t.Errorf("remote witness %q does not mention the slab", why)
		}
	}
	// And no witnesses for unmarked reads.
	for id := range res.Why {
		if !res.StaleReads[id] {
			t.Errorf("witness recorded for non-stale read #%d", id)
		}
	}
	for id := range res.RemoteWhy {
		if !res.RemoteReads[id] {
			t.Errorf("witness recorded for non-remote read #%d", id)
		}
	}
}

// The first-witness rule makes Why deterministic across runs.
func TestWhyDeterministic(t *testing.T) {
	snap := func() string {
		res, err := Analyze(crossProg(), 4)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, id := range sortedWhyIDs(res.Why) {
			b.WriteString(res.Why[id])
			b.WriteByte('\n')
		}
		for _, id := range sortedWhyIDs(res.RemoteWhy) {
			b.WriteString(res.RemoteWhy[id])
			b.WriteByte('\n')
		}
		return b.String()
	}
	if snap() != snap() {
		t.Error("witness strings differ between identical analyses")
	}
}

func sortedWhyIDs(m map[ir.RefID]string) []ir.RefID {
	out := make([]ir.RefID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
