// Package stale implements the paper's stale reference analysis (§4.1,
// following Choi & Yew): identify the read references that may observe an
// out-of-date cached copy, by a dataflow over array sections on the epoch
// graph.
//
// The state tracked for each PE p at each epoch boundary is the
// "dirty-for-p" region of every shared array: the locations another PE may
// have written since p last refreshed (wrote, or coherently read) them. A
// read is potentially stale iff its section intersects the reader's
// dirty-for-p region at epoch entry. Kills (p's own writes, and p's reads —
// which the CCDP scheme makes coherent, so they refresh p's cached copy:
// the intertask-locality refinement) are applied only with exact
// (must-)sections; additions use over-approximate (may-)sections, so the
// result over-approximates true staleness and the scheme stays sound.
package stale

import (
	"repro/internal/craft"
	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/section"
)

// ArraySections maps array name → region.
type ArraySections map[string]section.Set

func (as ArraySections) clone() ArraySections {
	out := make(ArraySections, len(as))
	for k, v := range as {
		out[k] = v
	}
	return out
}

func (as ArraySections) get(a *ir.Array) section.Set {
	if s, ok := as[a.Name]; ok {
		return s
	}
	return section.Empty(a.Rank())
}

func (as ArraySections) union(a *ir.Array, s section.Set) {
	if s.IsEmpty() {
		return
	}
	as[a.Name] = as.get(a).Union(s)
}

func (as ArraySections) equal(other ArraySections) bool {
	if len(as) != len(other) {
		// Fall through to point comparison: empty entries may differ.
	}
	seen := map[string]bool{}
	for k, v := range as {
		seen[k] = true
		o, ok := other[k]
		if !ok {
			if !v.IsEmpty() {
				return false
			}
			continue
		}
		if v.Approx() != o.Approx() || !v.EqualPoints(o) {
			return false
		}
	}
	for k, v := range other {
		if !seen[k] && !v.IsEmpty() {
			return false
		}
	}
	return true
}

// RefAccess is one reference site inside an epoch with its per-PE section.
type RefAccess struct {
	Ref     *ir.Ref
	IsWrite bool
	// PerPE[p] is the over-approximate section PE p touches through this
	// reference in one activation of the epoch node.
	PerPE []section.Set
	// Exact reports that PerPE is the exact access set (usable as a
	// must-section): dense rectangular coverage, not under an if, no
	// context-variable dependence.
	Exact bool
}

// Summary is the per-PE access summary of one epoch node.
type Summary struct {
	Node *ir.EpochNode
	Refs []*RefAccess
	// Aggregates per PE.
	MayRead, MayWrite   []ArraySections
	MustRead, MustWrite []ArraySections
}

// summarizer walks epoch bodies building sections.
type summarizer struct {
	prog  *ir.Program
	numPE int
	graph *ir.EpochGraph
}

// Summarize computes the access summary of every epoch node for numPE PEs.
func Summarize(g *ir.EpochGraph, numPE int) ([]*Summary, error) {
	s := &summarizer{prog: g.Prog, numPE: numPE, graph: g}
	out := make([]*Summary, len(g.Nodes))
	for i, n := range g.Nodes {
		sum, err := s.node(n)
		if err != nil {
			return nil, err
		}
		out[i] = sum
	}
	return out, nil
}

// walkEnv carries the per-PE variable bounds and exactness during the walk.
type walkEnv struct {
	lo, hi map[string]int64
	// exactVar marks in-epoch loop variables whose range is exact (bounds
	// independent of other in-epoch variables and context variables).
	exactVar map[string]bool
	underIf  bool
	// inEpoch marks variables bound inside the epoch (vs context).
	inEpoch map[string]bool
}

func (e *walkEnv) clone() *walkEnv {
	c := &walkEnv{
		lo: map[string]int64{}, hi: map[string]int64{},
		exactVar: map[string]bool{}, underIf: e.underIf,
		inEpoch: map[string]bool{},
	}
	for k, v := range e.lo {
		c.lo[k] = v
	}
	for k, v := range e.hi {
		c.hi[k] = v
	}
	for k, v := range e.exactVar {
		c.exactVar[k] = v
	}
	for k, v := range e.inEpoch {
		c.inEpoch[k] = v
	}
	return c
}

func (s *summarizer) node(n *ir.EpochNode) (*Summary, error) {
	sum := &Summary{Node: n}
	sum.MayRead = make([]ArraySections, s.numPE)
	sum.MayWrite = make([]ArraySections, s.numPE)
	sum.MustRead = make([]ArraySections, s.numPE)
	sum.MustWrite = make([]ArraySections, s.numPE)
	for p := 0; p < s.numPE; p++ {
		sum.MayRead[p] = ArraySections{}
		sum.MayWrite[p] = ArraySections{}
		sum.MustRead[p] = ArraySections{}
		sum.MustWrite[p] = ArraySections{}
	}

	ctxLo, ctxHi, err := s.graph.ContextBounds(n)
	if err != nil {
		return nil, err
	}

	// accesses[refID] accumulates the RefAccess for a ref site.
	accesses := map[ir.RefID]*RefAccess{}
	record := func(pe int, r *ir.Ref, isWrite bool, env *walkEnv) {
		if r.IsScalar() {
			return
		}
		ra := accesses[r.ID]
		if ra == nil {
			ra = &RefAccess{Ref: r, IsWrite: isWrite, Exact: true}
			ra.PerPE = make([]section.Set, s.numPE)
			for p := range ra.PerPE {
				ra.PerPE[p] = section.Empty(r.Array.Rank())
			}
			accesses[r.ID] = ra
		}
		sect, exact := s.refSection(r, env)
		ra.PerPE[pe] = ra.PerPE[pe].Union(sect)
		if !exact {
			ra.Exact = false
		}
	}

	if n.Parallel {
		l := n.Loop
		// Evaluate DOALL bounds against params and context extremes. The
		// bounds of every workload DOALL are context-independent; when they
		// are not, the hull over the context range is used and exactness is
		// dropped.
		lo, hi, boundsExact := evalLoopBounds(l, s.prog, ctxLo, ctxHi)
		step := l.Step.ConstPart()
		for p := 0; p < s.numPE; p++ {
			env := s.baseEnv(ctxLo, ctxHi)
			switch {
			case l.Sched == ir.SchedDynamic || step != 1:
				// Unknown iteration→PE mapping: every PE may run any
				// iteration; nothing is a must.
				env.lo[l.Var], env.hi[l.Var] = lo, hi
				env.exactVar[l.Var] = false
			default:
				c := craft.BlockChunk(lo, hi, s.numPE, p)
				if l.AlignExtent > 0 {
					c = craft.AlignedChunk(lo, hi, l.AlignExtent, s.numPE, p)
				}
				if c.Empty() {
					continue
				}
				env.lo[l.Var], env.hi[l.Var] = c.Lo, c.Hi
				env.exactVar[l.Var] = boundsExact
			}
			env.inEpoch[l.Var] = true
			pe := p
			s.walk(l.Body, env, func(r *ir.Ref, w bool, e *walkEnv) {
				record(pe, r, w, e)
			})
		}
	} else {
		// Serial epochs execute on PE 0 (master).
		env := s.baseEnv(ctxLo, ctxHi)
		s.walk(n.Stmts, env, func(r *ir.Ref, w bool, e *walkEnv) {
			record(0, r, w, e)
		})
	}

	// Deterministic order: by RefID.
	for _, r := range s.prog.Refs() {
		ra := accesses[r.ID]
		if ra == nil {
			continue
		}
		sum.Refs = append(sum.Refs, ra)
		for p := 0; p < s.numPE; p++ {
			if ra.PerPE[p].IsEmpty() {
				continue
			}
			if ra.IsWrite {
				sum.MayWrite[p].union(ra.Ref.Array, ra.PerPE[p])
				if ra.Exact {
					sum.MustWrite[p].union(ra.Ref.Array, ra.PerPE[p])
				}
			} else {
				sum.MayRead[p].union(ra.Ref.Array, ra.PerPE[p])
				if ra.Exact {
					sum.MustRead[p].union(ra.Ref.Array, ra.PerPE[p])
				}
			}
		}
	}
	return sum, nil
}

// baseEnv seeds a walk environment with params (exact) and context
// variables (ranges over the whole context, not exact).
func (s *summarizer) baseEnv(ctxLo, ctxHi map[string]int64) *walkEnv {
	env := &walkEnv{
		lo: map[string]int64{}, hi: map[string]int64{},
		exactVar: map[string]bool{}, inEpoch: map[string]bool{},
	}
	for k, v := range s.prog.Params {
		env.lo[k], env.hi[k] = v, v
		env.exactVar[k] = true
	}
	for k := range ctxLo {
		if _, isParam := s.prog.Params[k]; isParam {
			continue
		}
		env.lo[k], env.hi[k] = ctxLo[k], ctxHi[k]
		env.exactVar[k] = false // varies across epoch instances
	}
	return env
}

// walk traverses statements (following calls) maintaining bounds.
func (s *summarizer) walk(body []ir.Stmt, env *walkEnv, visit func(*ir.Ref, bool, *walkEnv)) {
	for _, st := range body {
		switch x := st.(type) {
		case *ir.Loop:
			inner := env.clone()
			lo, _, ok1 := x.Lo.Bounds(env.lo, env.hi)
			_, hi, ok2 := x.Hi.Bounds(env.lo, env.hi)
			if !ok1 || !ok2 {
				// Unbounded: treat subscripts using this var as whole-array.
				lo, hi = -1<<40, 1<<40
			}
			inner.lo[x.Var], inner.hi[x.Var] = lo, hi
			// Exact iff step 1 and the bound expressions depend only on
			// exact variables (params), i.e. the range is instance- and
			// iteration-invariant.
			exact := ok1 && ok2 && x.Step.ConstPart() == 1 &&
				varsAllExact(x.Lo, env) && varsAllExact(x.Hi, env)
			inner.exactVar[x.Var] = exact
			inner.inEpoch[x.Var] = true
			s.walk(x.Body, inner, visit)
		case *ir.Assign:
			walkExprRefsEnv(x.RHS, env, visit)
			visit(x.LHS, true, env)
		case *ir.If:
			walkExprRefsEnv(x.Cond.L, env, visit)
			walkExprRefsEnv(x.Cond.R, env, visit)
			inner := env.clone()
			inner.underIf = true
			s.walk(x.Then, inner, visit)
			s.walk(x.Else, inner, visit)
		case *ir.Call:
			if rt := s.prog.Routine(x.Name); rt != nil {
				s.walk(rt.Body, env, visit)
			}
		case *ir.Prefetch, *ir.VectorPrefetch:
			// Prefetches are not data accesses for coherence purposes.
		}
	}
}

func walkExprRefsEnv(e ir.Expr, env *walkEnv, visit func(*ir.Ref, bool, *walkEnv)) {
	switch x := e.(type) {
	case ir.Load:
		visit(x.Ref, false, env)
	case ir.Bin:
		walkExprRefsEnv(x.L, env, visit)
		walkExprRefsEnv(x.R, env, visit)
	case ir.Un:
		walkExprRefsEnv(x.X, env, visit)
	}
}

// refSection builds the rectangular hull of the reference under env and
// reports whether the hull is exact (usable as a must-section).
func (s *summarizer) refSection(r *ir.Ref, env *walkEnv) (section.Set, bool) {
	rank := r.Array.Rank()
	lo := make([]int64, rank)
	hi := make([]int64, rank)
	exact := !env.underIf
	usedVars := map[string]int{}
	for d, sub := range r.Index {
		mn, mx, ok := sub.Bounds(env.lo, env.hi)
		if !ok {
			// Unbounded subscript: whole dimension, inexact.
			mn, mx = 0, r.Array.Dims[d]-1
			exact = false
		}
		// Clamp to the array extent (out-of-range accesses are a program
		// bug caught by the engine, not the analysis).
		if mn < 0 {
			mn = 0
		}
		if mx > r.Array.Dims[d]-1 {
			mx = r.Array.Dims[d] - 1
		}
		lo[d], hi[d] = mn, mx
		if !dimExact(sub, env, usedVars) {
			exact = false
		}
	}
	rect := section.NewRect(lo, hi)
	if rect.Empty() {
		return section.Empty(rank), exact
	}
	return section.Of(rank, rect), exact
}

// dimExact decides whether a subscript covers its hull densely: it must be
// constant over exact variables only, or use exactly one in-epoch exact
// variable with coefficient ±1, each variable appearing in at most one
// dimension.
func dimExact(sub expr.Affine, env *walkEnv, usedVars map[string]int) bool {
	inEpochUsed := ""
	for _, t := range sub.Terms() {
		if !env.exactVar[t.Var] {
			return false
		}
		if env.inEpoch[t.Var] {
			if inEpochUsed != "" {
				return false // two varying vars in one dim
			}
			if t.Coef != 1 && t.Coef != -1 {
				return false // stride > 1: holes in coverage
			}
			inEpochUsed = t.Var
			usedVars[t.Var]++
			if usedVars[t.Var] > 1 {
				return false // same var drives two dims (diagonal)
			}
		}
	}
	return true
}

func varsAllExact(a expr.Affine, env *walkEnv) bool {
	for _, v := range a.Vars() {
		if !env.exactVar[v] {
			return false
		}
	}
	return true
}

// evalLoopBounds evaluates loop bounds against params and (failing that)
// context extremes; exact is false when the context hull was needed.
func evalLoopBounds(l *ir.Loop, prog *ir.Program, ctxLo, ctxHi map[string]int64) (lo, hi int64, exact bool) {
	env := map[string]int64{}
	for k, v := range prog.Params {
		env[k] = v
	}
	l1, e1 := l.Lo.Eval(env)
	h1, e2 := l.Hi.Eval(env)
	if e1 == nil && e2 == nil {
		return l1, h1, true
	}
	mn, _, ok1 := l.Lo.Bounds(ctxLo, ctxHi)
	_, mx, ok2 := l.Hi.Bounds(ctxLo, ctxHi)
	if ok1 && ok2 {
		return mn, mx, false
	}
	return 0, -1, false
}
