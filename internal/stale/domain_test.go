package stale

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// reversedProg builds the canonical cross-PE witness: epoch 0 writes A
// distributed, epoch 1 reads it reversed, so PE p reads PE (P-1-p)'s chunk.
func reversedProg() *ir.Program {
	b := ir.NewBuilder("rev")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(63))))),
	)
	return b.Build()
}

// With every PE in one coherence domain, all dirt is intra-domain: the
// blind-stale reversed read must be demoted to non-stale with a recorded
// domain reason, software invalidation must vanish, and the hardware set
// must take its place.
func TestDomainSingleDomainDemotesAll(t *testing.T) {
	p := reversedProg()
	blind, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(-j + 63)")
	if !blind.StaleReads[rd.ID] {
		t.Fatal("blind analysis did not flag the reversed read: witness broken")
	}

	res, err := AnalyzeOpt(p, 4, Options{Domains: []int{0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StaleReads) != 0 {
		t.Errorf("single-domain machine still has %d stale reads", len(res.StaleReads))
	}
	if !res.DemotedIntra[rd.ID] {
		t.Error("reversed read not demoted on a single-domain machine")
	}
	why := res.DemotedWhy[rd.ID]
	if why == "" {
		t.Error("demoted read has no recorded reason")
	}
	for n := range res.Invalidate {
		for pe := range res.Invalidate[n] {
			for name, s := range res.Invalidate[n][pe] {
				if !s.IsEmpty() {
					t.Errorf("software invalidation of %s survives at epoch %d PE %d", name, n, pe)
				}
			}
		}
	}
	if res.HWInvalidate == nil {
		t.Fatal("no hardware invalidation table on a domained machine")
	}
	hw := false
	for n := range res.HWInvalidate {
		for pe := range res.HWInvalidate[n] {
			for _, s := range res.HWInvalidate[n][pe] {
				if !s.IsEmpty() {
					hw = true
				}
			}
		}
	}
	if !hw {
		t.Error("hardware invalidation table is empty: the demoted dirt went nowhere")
	}
}

// With two domains of two, PE 0's reversed read reaches PE 3's chunk across
// the domain boundary: the reference must stay potentially stale and keep
// its software invalidation.
func TestDomainCrossRetention(t *testing.T) {
	p := reversedProg()
	res, err := AnalyzeOpt(p, 4, Options{Domains: []int{0, 0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(-j + 63)")
	if !res.StaleReads[rd.ID] {
		t.Error("cross-domain reversed read demoted: the domain split is unsound")
	}
	if res.DemotedIntra[rd.ID] {
		t.Error("reference both stale and demoted")
	}
	sw := false
	for n := range res.Invalidate {
		for pe := range res.Invalidate[n] {
			for _, s := range res.Invalidate[n][pe] {
				if !s.IsEmpty() {
					sw = true
				}
			}
		}
	}
	if !sw {
		t.Error("no software invalidation despite a retained cross-domain stale read")
	}
}

// Table-driven soundness of the domain split on every paper workload at two
// domain sizes: demotion may only shrink the stale set, every blind-stale
// reference must land in the domained stale set or the demoted set (the
// split loses no writes), and the two sets never overlap. At domain size 8
// the whole 8-PE machine is one domain, so every blind-stale reference must
// be demoted; at domain size 4 the boundary between domains {0..3} and
// {4..7} must retain at least one stale reference on the workloads that
// have any.
func TestDomainWorkloadsTable(t *testing.T) {
	demotedTotal := 0
	for _, spec := range workloads.Small() {
		blind, err := Analyze(spec.Prog, 8)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for _, domainSize := range []int{4, 8} {
			mp := machine.T3D(8)
			mp.DomainSize = domainSize
			res, err := AnalyzeOpt(spec.Prog, 8, Options{Domains: mp.DomainTable()})
			if err != nil {
				t.Fatalf("%s D=%d: %v", spec.Name, domainSize, err)
			}
			for id := range res.StaleReads {
				if !blind.StaleReads[id] {
					t.Errorf("%s D=%d: ref #%d stale only under domains", spec.Name, domainSize, id)
				}
				if res.DemotedIntra[id] {
					t.Errorf("%s D=%d: ref #%d both stale and demoted", spec.Name, domainSize, id)
				}
			}
			for id := range blind.StaleReads {
				if !res.StaleReads[id] && !res.DemotedIntra[id] {
					t.Errorf("%s D=%d: blind-stale ref #%d vanished without a demotion record",
						spec.Name, domainSize, id)
				}
			}
			for id := range res.DemotedIntra {
				if res.DemotedWhy[id] == "" {
					t.Errorf("%s D=%d: demoted ref #%d has no reason", spec.Name, domainSize, id)
				}
			}
			demotedTotal += len(res.DemotedIntra)
			if domainSize == 8 && len(res.StaleReads) != 0 {
				t.Errorf("%s D=8: single-domain machine kept %d stale reads",
					spec.Name, len(res.StaleReads))
			}
			if domainSize == 4 && len(blind.StaleReads) > 0 && len(res.StaleReads) == 0 &&
				spec.Name == "SWIM" {
				t.Errorf("%s D=4: stencil halo at the domain boundary was not retained", spec.Name)
			}
		}
	}
	if demotedTotal == 0 {
		t.Error("no workload demoted any reference at any domain size: the split is vacuous")
	}
}

// A table where every PE is its own domain must reproduce the domain-blind
// analysis exactly — the cxl-pcc profile at domain size 1 compiles to the
// same stale sets as t3d.
func TestDomainPerPETableMatchesBlind(t *testing.T) {
	for _, spec := range workloads.Small() {
		blind, err := Analyze(spec.Prog, 8)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		table := []int{0, 1, 2, 3, 4, 5, 6, 7}
		res, err := AnalyzeOpt(spec.Prog, 8, Options{Domains: table})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(res.StaleReads) != len(blind.StaleReads) {
			t.Errorf("%s: %d stale reads with per-PE domains, %d blind",
				spec.Name, len(res.StaleReads), len(blind.StaleReads))
		}
		for id := range blind.StaleReads {
			if !res.StaleReads[id] {
				t.Errorf("%s: ref #%d stale blind but not with per-PE domains", spec.Name, id)
			}
		}
		if len(res.DemotedIntra) != 0 {
			t.Errorf("%s: %d demotions with per-PE domains", spec.Name, len(res.DemotedIntra))
		}
		if res.Report() != blind.Report() {
			t.Errorf("%s: per-PE-domain report differs from blind report", spec.Name)
		}
	}
}
