package stale

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/craft"
	"repro/internal/ir"
)

// maxPasses bounds dataflow iterations per node before widening is forced.
const maxPasses = 8

// Result is the output of the stale reference analysis.
type Result struct {
	Graph     *ir.EpochGraph
	Summaries []*Summary
	NumPE     int
	opts      Options

	// StaleReads marks every read reference that may observe a stale
	// cached copy on some PE.
	StaleReads map[ir.RefID]bool

	// RemoteReads marks every read reference whose section extends beyond
	// the reading PE's own slab for some PE — data the T3D serves at
	// remote latency. The paper's §6 extension ("we should be able to
	// obtain further performance improvement by prefetching the non-stale
	// references as well") prefetches these too.
	RemoteReads map[ir.RefID]bool

	// Why records, per stale read, the first (epoch, PE) witness that made
	// the analysis mark it: the decision provenance `ccdpc -explain`
	// surfaces. Deterministic — epochs, references and PEs are visited in
	// fixed order.
	Why map[ir.RefID]string

	// RemoteWhy records the first witness for each remote read.
	RemoteWhy map[ir.RefID]string

	// DirtyAtEntry[n][p] is the fixpoint dirty-for-p region at entry to
	// epoch node n.
	DirtyAtEntry [][]ArraySections

	// Invalidate[n][p] is the region PE p must invalidate in its cache when
	// entering node n (dirty ∩ may-read): the compiler-directed
	// invalidation the CCDP scheme performs before issuing prefetches
	// (paper §3.2).
	Invalidate [][]ArraySections
}

// Options tunes the analysis.
type Options struct {
	// DisableReadRefresh turns off the intertask-locality refinement (a
	// coherent read refreshing the reader's cached copy). The refinement
	// is sound only when the CCDP runtime actually enforces coherence at
	// reads; the property tests comparing against a NON-coherent execution
	// disable it.
	DisableReadRefresh bool
}

// Analyze runs the stale reference analysis for a machine with numPE PEs.
func Analyze(prog *ir.Program, numPE int) (*Result, error) {
	return AnalyzeOpt(prog, numPE, Options{})
}

// AnalyzeOpt is Analyze with explicit options.
func AnalyzeOpt(prog *ir.Program, numPE int, opts Options) (*Result, error) {
	g, err := ir.BuildEpochGraph(prog)
	if err != nil {
		return nil, err
	}
	sums, err := Summarize(g, numPE)
	if err != nil {
		return nil, err
	}
	r := &Result{Graph: g, Summaries: sums, NumPE: numPE,
		StaleReads: map[ir.RefID]bool{}, RemoteReads: map[ir.RefID]bool{},
		Why: map[ir.RefID]string{}, RemoteWhy: map[ir.RefID]string{}, opts: opts}
	r.fixpoint()
	r.markStale()
	r.markRemote()
	r.buildInvalidate()
	return r, nil
}

// markRemote flags reads whose per-PE section leaves the PE's own slab of
// the distributed dimension.
func (r *Result) markRemote() {
	for _, sum := range r.Summaries {
		for _, ra := range sum.Refs {
			if ra.IsWrite || !ra.Ref.Array.Shared || ra.Ref.Array.Dist != ir.DistBlock {
				continue
			}
			arr := ra.Ref.Array
			lastDim := arr.Rank() - 1
			for p := 0; p < r.NumPE; p++ {
				if ra.PerPE[p].IsEmpty() {
					continue
				}
				slab := craft.OwnerSlab(arr, r.NumPE, p)
				for _, rect := range ra.PerPE[p].Rects() {
					if rect.Lo[lastDim] < slab.Lo || rect.Hi[lastDim] > slab.Hi {
						r.RemoteReads[ra.Ref.ID] = true
						if _, ok := r.RemoteWhy[ra.Ref.ID]; !ok {
							r.RemoteWhy[ra.Ref.ID] = fmt.Sprintf(
								"PE %d reads %s[..,%d:%d] beyond its own slab [%d:%d] of the distributed dimension",
								p, arr.Name, rect.Lo[lastDim], rect.Hi[lastDim], slab.Lo, slab.Hi)
						}
					}
				}
			}
		}
	}
}

// fixpoint runs the worklist dataflow computing DirtyAtEntry.
func (r *Result) fixpoint() {
	n := len(r.Graph.Nodes)
	r.DirtyAtEntry = make([][]ArraySections, n)
	outs := make([][]ArraySections, n)
	for i := 0; i < n; i++ {
		r.DirtyAtEntry[i] = emptyState(r.NumPE)
		outs[i] = nil
	}
	passes := make([]int, n)

	work := []int{}
	inWork := make([]bool, n)
	push := func(i int) {
		if !inWork[i] {
			work = append(work, i)
			inWork[i] = true
		}
	}
	if n > 0 {
		push(0)
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		passes[i]++

		out := r.transfer(i, r.DirtyAtEntry[i])
		if passes[i] > maxPasses {
			widenState(out)
		}
		if outs[i] != nil && statesEqual(outs[i], out) {
			continue
		}
		outs[i] = out
		for _, succ := range r.Graph.Succ[i] {
			merged := mergeState(r.DirtyAtEntry[succ], out, r.NumPE)
			if !statesEqual(r.DirtyAtEntry[succ], merged) {
				r.DirtyAtEntry[succ] = merged
				push(succ)
			} else if outs[succ] == nil {
				push(succ)
			}
		}
	}
}

// transfer applies one epoch node to the dirty state:
//
//	out_p = (in_p − mustWrite_p − mustRead_p) ∪ ⋃_{q≠p} mayWrite_q
func (r *Result) transfer(node int, in []ArraySections) []ArraySections {
	sum := r.Summaries[node]
	out := make([]ArraySections, r.NumPE)
	// Union of other PEs' writes, computed once as total minus own share is
	// not valid for sections; build per-p by excluding q == p.
	for p := 0; p < r.NumPE; p++ {
		cur := in[p].clone()
		// Kills first: p's own coherent accesses refresh its copies.
		for name, kill := range sum.MustWrite[p] {
			if have, ok := cur[name]; ok {
				cur[name] = have.Subtract(kill)
			}
		}
		if !r.opts.DisableReadRefresh {
			for name, kill := range sum.MustRead[p] {
				if have, ok := cur[name]; ok {
					cur[name] = have.Subtract(kill)
				}
			}
		}
		// Then gen: writes by every other PE in this epoch.
		for q := 0; q < r.NumPE; q++ {
			if q == p {
				continue
			}
			for name, w := range sum.MayWrite[q] {
				if w.IsEmpty() {
					continue
				}
				if have, ok := cur[name]; ok {
					cur[name] = have.Union(w)
				} else {
					cur[name] = w
				}
			}
		}
		out[p] = cur
	}
	return out
}

// markStale flags read refs whose section meets the reader's dirty region.
func (r *Result) markStale() {
	for i, sum := range r.Summaries {
		in := r.DirtyAtEntry[i]
		for _, ra := range sum.Refs {
			if ra.IsWrite {
				continue
			}
			name := ra.Ref.Array.Name
			for p := 0; p < r.NumPE; p++ {
				if ra.PerPE[p].IsEmpty() {
					continue
				}
				dirty, ok := in[p][name]
				if !ok || dirty.IsEmpty() {
					continue
				}
				if dirty.Overlaps(ra.PerPE[p]) {
					r.StaleReads[ra.Ref.ID] = true
					if _, ok := r.Why[ra.Ref.ID]; !ok {
						r.Why[ra.Ref.ID] = fmt.Sprintf(
							"PE %d's read section of %s overlaps its dirty region at entry to epoch %d (%s)",
							p, name, i, r.Graph.Nodes[i].Kind())
					}
					break
				}
			}
		}
	}
}

// buildInvalidate computes per-node per-PE invalidation regions.
func (r *Result) buildInvalidate() {
	r.Invalidate = make([][]ArraySections, len(r.Summaries))
	for i, sum := range r.Summaries {
		in := r.DirtyAtEntry[i]
		r.Invalidate[i] = make([]ArraySections, r.NumPE)
		for p := 0; p < r.NumPE; p++ {
			inv := ArraySections{}
			for name, rd := range sum.MayRead[p] {
				dirty, ok := in[p][name]
				if !ok || dirty.IsEmpty() {
					continue
				}
				is := dirty.Intersect(rd)
				if !is.IsEmpty() {
					inv[name] = is
				}
			}
			r.Invalidate[i][p] = inv
		}
	}
}

// StaleInNode returns the stale read refs that occur in epoch node n,
// sorted by RefID.
func (r *Result) StaleInNode(n int) []*ir.Ref {
	var out []*ir.Ref
	for _, ra := range r.Summaries[n].Refs {
		if !ra.IsWrite && r.StaleReads[ra.Ref.ID] {
			out = append(out, ra.Ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Report renders a human-readable summary for the ccdpc driver.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stale reference analysis: %d epochs, %d PEs\n", len(r.Graph.Nodes), r.NumPE)
	for i, n := range r.Graph.Nodes {
		fmt.Fprintf(&b, "epoch %d (%s)", i, n.Kind())
		if n.Parallel {
			fmt.Fprintf(&b, " doall %s", n.Loop.Var)
		}
		fmt.Fprintf(&b, ": ")
		stale := r.StaleInNode(i)
		if len(stale) == 0 {
			b.WriteString("no potentially-stale references\n")
			continue
		}
		parts := make([]string, len(stale))
		for k, ref := range stale {
			parts[k] = ref.String()
		}
		fmt.Fprintf(&b, "potentially-stale: %s\n", strings.Join(parts, ", "))
	}
	return b.String()
}

func emptyState(numPE int) []ArraySections {
	out := make([]ArraySections, numPE)
	for p := range out {
		out[p] = ArraySections{}
	}
	return out
}

func mergeState(a, b []ArraySections, numPE int) []ArraySections {
	out := make([]ArraySections, numPE)
	for p := 0; p < numPE; p++ {
		cur := a[p].clone()
		for name, s := range b[p] {
			if s.IsEmpty() {
				continue
			}
			if have, ok := cur[name]; ok {
				cur[name] = have.Union(s)
			} else {
				cur[name] = s
			}
		}
		out[p] = cur
	}
	return out
}

func statesEqual(a, b []ArraySections) bool {
	for p := range a {
		if !a[p].equal(b[p]) {
			return false
		}
	}
	return true
}

func widenState(st []ArraySections) {
	for p := range st {
		for name, s := range st[p] {
			if !s.Approx() {
				st[p][name] = s.Widen()
			}
		}
	}
}
