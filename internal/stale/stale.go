package stale

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/craft"
	"repro/internal/ir"
)

// maxPasses bounds dataflow iterations per node before widening is forced.
const maxPasses = 8

// Result is the output of the stale reference analysis.
type Result struct {
	Graph     *ir.EpochGraph
	Summaries []*Summary
	NumPE     int
	opts      Options

	// StaleReads marks every read reference that may observe a stale
	// cached copy on some PE.
	StaleReads map[ir.RefID]bool

	// RemoteReads marks every read reference whose section extends beyond
	// the reading PE's own slab for some PE — data the T3D serves at
	// remote latency. The paper's §6 extension ("we should be able to
	// obtain further performance improvement by prefetching the non-stale
	// references as well") prefetches these too.
	RemoteReads map[ir.RefID]bool

	// Why records, per stale read, the first (epoch, PE) witness that made
	// the analysis mark it: the decision provenance `ccdpc -explain`
	// surfaces. Deterministic — epochs, references and PEs are visited in
	// fixed order.
	Why map[ir.RefID]string

	// RemoteWhy records the first witness for each remote read.
	RemoteWhy map[ir.RefID]string

	// DirtyAtEntry[n][p] is the fixpoint dirty-for-p region at entry to
	// epoch node n. With coherence domains (Options.Domains) this is the
	// CROSS-domain dirty state: regions overwritten by PEs outside p's
	// domain, the only writes software must handle. Without domains every
	// other PE is cross-domain and this is the classic domain-blind state.
	DirtyAtEntry [][]ArraySections

	// IntraDirty[n][p] is the companion fixpoint over same-domain writers
	// only: regions overwritten by p's domain peers, which the domain's
	// hardware coherence invalidates for free. nil without domains. The
	// union DirtyAtEntry ∪ IntraDirty covers the domain-blind dirty state,
	// so splitting loses no writes.
	IntraDirty [][]ArraySections

	// Invalidate[n][p] is the region PE p must invalidate in its cache when
	// entering node n (cross-domain dirty ∩ may-read): the compiler-directed
	// invalidation the CCDP scheme performs before issuing prefetches
	// (paper §3.2).
	Invalidate [][]ArraySections

	// HWInvalidate[n][p] is the region of p's cache the domain's hardware
	// coherence has already invalidated by entry to node n (intra-domain
	// dirty ∩ may-read). The engine models it by dropping those lines at
	// epoch entry at zero cost. nil without domains.
	HWInvalidate [][]ArraySections

	// DemotedIntra marks read references the domain-blind analysis would
	// have called potentially stale but whose dirt is wholly intra-domain
	// for every PE: hardware keeps them coherent, so they need no prefetch
	// or software invalidation. Empty without domains.
	DemotedIntra map[ir.RefID]bool

	// DemotedWhy records, per demoted read, the first (epoch, PE) witness
	// with the domain reasoning — the provenance `ccdpc -explain` surfaces.
	DemotedWhy map[ir.RefID]string
}

// Options tunes the analysis.
type Options struct {
	// DisableReadRefresh turns off the intertask-locality refinement (a
	// coherent read refreshing the reader's cached copy). The refinement
	// is sound only when the CCDP runtime actually enforces coherence at
	// reads; the property tests comparing against a NON-coherent execution
	// disable it.
	DisableReadRefresh bool

	// Domains maps each PE to its coherence-domain ID
	// (machine.Params.DomainTable). Writes by a same-domain peer are kept
	// coherent by hardware, so they accrue to IntraDirty instead of
	// DirtyAtEntry and never make a reference potentially stale. nil (or a
	// table where every PE is alone) reproduces the domain-blind analysis
	// exactly.
	Domains []int
}

// Analyze runs the stale reference analysis for a machine with numPE PEs.
func Analyze(prog *ir.Program, numPE int) (*Result, error) {
	return AnalyzeOpt(prog, numPE, Options{})
}

// AnalyzeOpt is Analyze with explicit options.
func AnalyzeOpt(prog *ir.Program, numPE int, opts Options) (*Result, error) {
	g, err := ir.BuildEpochGraph(prog)
	if err != nil {
		return nil, err
	}
	sums, err := Summarize(g, numPE)
	if err != nil {
		return nil, err
	}
	if opts.Domains != nil && len(opts.Domains) != numPE {
		return nil, fmt.Errorf("stale: domain table has %d entries for %d PEs", len(opts.Domains), numPE)
	}
	r := &Result{Graph: g, Summaries: sums, NumPE: numPE,
		StaleReads: map[ir.RefID]bool{}, RemoteReads: map[ir.RefID]bool{},
		Why: map[ir.RefID]string{}, RemoteWhy: map[ir.RefID]string{},
		DemotedIntra: map[ir.RefID]bool{}, DemotedWhy: map[ir.RefID]string{}, opts: opts}
	r.DirtyAtEntry = r.fixpoint(r.crossFilter())
	if intra := r.intraFilter(); intra != nil {
		r.IntraDirty = r.fixpoint(intra)
	}
	r.markStale()
	r.markDemoted()
	r.markRemote()
	r.buildInvalidate()
	return r, nil
}

// crossFilter selects the writer PEs whose epoch writes dirty PE p's cache
// in the software-visible sense: every other PE without domains, only
// other-domain PEs with them.
func (r *Result) crossFilter() func(q, p int) bool {
	dom := r.opts.Domains
	if dom == nil {
		return func(q, p int) bool { return q != p }
	}
	return func(q, p int) bool { return q != p && dom[q] != dom[p] }
}

// intraFilter selects the same-domain peer writers (hardware-coherent
// dirt), or nil when there are no multi-PE domains.
func (r *Result) intraFilter() func(q, p int) bool {
	dom := r.opts.Domains
	if dom == nil {
		return nil
	}
	return func(q, p int) bool { return q != p && dom[q] == dom[p] }
}

// markRemote flags reads whose per-PE section leaves the PE's own slab of
// the distributed dimension.
func (r *Result) markRemote() {
	for _, sum := range r.Summaries {
		for _, ra := range sum.Refs {
			if ra.IsWrite || !ra.Ref.Array.Shared || ra.Ref.Array.Dist != ir.DistBlock {
				continue
			}
			arr := ra.Ref.Array
			lastDim := arr.Rank() - 1
			for p := 0; p < r.NumPE; p++ {
				if ra.PerPE[p].IsEmpty() {
					continue
				}
				slab := craft.OwnerSlab(arr, r.NumPE, p)
				for _, rect := range ra.PerPE[p].Rects() {
					if rect.Lo[lastDim] < slab.Lo || rect.Hi[lastDim] > slab.Hi {
						r.RemoteReads[ra.Ref.ID] = true
						if _, ok := r.RemoteWhy[ra.Ref.ID]; !ok {
							r.RemoteWhy[ra.Ref.ID] = fmt.Sprintf(
								"PE %d reads %s[..,%d:%d] beyond its own slab [%d:%d] of the distributed dimension",
								p, arr.Name, rect.Lo[lastDim], rect.Hi[lastDim], slab.Lo, slab.Hi)
						}
					}
				}
			}
		}
	}
}

// fixpoint runs the worklist dataflow computing the per-node entry dirty
// state whose generating writers are selected by gens (cross-domain or
// intra-domain peers). The kill set is the same either way — any coherent
// access by p itself refreshes its copies regardless of who dirtied them.
func (r *Result) fixpoint(gens func(q, p int) bool) [][]ArraySections {
	n := len(r.Graph.Nodes)
	entry := make([][]ArraySections, n)
	outs := make([][]ArraySections, n)
	for i := 0; i < n; i++ {
		entry[i] = emptyState(r.NumPE)
		outs[i] = nil
	}
	passes := make([]int, n)

	work := []int{}
	inWork := make([]bool, n)
	push := func(i int) {
		if !inWork[i] {
			work = append(work, i)
			inWork[i] = true
		}
	}
	if n > 0 {
		push(0)
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		passes[i]++

		out := r.transfer(i, entry[i], gens)
		if passes[i] > maxPasses {
			widenState(out)
		}
		if outs[i] != nil && statesEqual(outs[i], out) {
			continue
		}
		outs[i] = out
		for _, succ := range r.Graph.Succ[i] {
			merged := mergeState(entry[succ], out, r.NumPE)
			if !statesEqual(entry[succ], merged) {
				entry[succ] = merged
				push(succ)
			} else if outs[succ] == nil {
				push(succ)
			}
		}
	}
	return entry
}

// transfer applies one epoch node to the dirty state:
//
//	out_p = (in_p − mustWrite_p − mustRead_p) ∪ ⋃_{gens(q,p)} mayWrite_q
func (r *Result) transfer(node int, in []ArraySections, gens func(q, p int) bool) []ArraySections {
	sum := r.Summaries[node]
	out := make([]ArraySections, r.NumPE)
	// Union of other PEs' writes, computed once as total minus own share is
	// not valid for sections; build per-p by excluding q == p.
	for p := 0; p < r.NumPE; p++ {
		cur := in[p].clone()
		// Kills first: p's own coherent accesses refresh its copies.
		for name, kill := range sum.MustWrite[p] {
			if have, ok := cur[name]; ok {
				cur[name] = have.Subtract(kill)
			}
		}
		if !r.opts.DisableReadRefresh {
			for name, kill := range sum.MustRead[p] {
				if have, ok := cur[name]; ok {
					cur[name] = have.Subtract(kill)
				}
			}
		}
		// Then gen: writes by every selected other PE in this epoch.
		for q := 0; q < r.NumPE; q++ {
			if !gens(q, p) {
				continue
			}
			for name, w := range sum.MayWrite[q] {
				if w.IsEmpty() {
					continue
				}
				if have, ok := cur[name]; ok {
					cur[name] = have.Union(w)
				} else {
					cur[name] = w
				}
			}
		}
		out[p] = cur
	}
	return out
}

// markStale flags read refs whose section meets the reader's dirty region.
func (r *Result) markStale() {
	for i, sum := range r.Summaries {
		in := r.DirtyAtEntry[i]
		for _, ra := range sum.Refs {
			if ra.IsWrite {
				continue
			}
			name := ra.Ref.Array.Name
			for p := 0; p < r.NumPE; p++ {
				if ra.PerPE[p].IsEmpty() {
					continue
				}
				dirty, ok := in[p][name]
				if !ok || dirty.IsEmpty() {
					continue
				}
				if dirty.Overlaps(ra.PerPE[p]) {
					r.StaleReads[ra.Ref.ID] = true
					if _, ok := r.Why[ra.Ref.ID]; !ok {
						r.Why[ra.Ref.ID] = fmt.Sprintf(
							"PE %d's read section of %s overlaps its dirty region at entry to epoch %d (%s)",
							p, name, i, r.Graph.Nodes[i].Kind())
					}
					break
				}
			}
		}
	}
}

// markDemoted records the reads the domain split rescued: references that
// overlap some PE's intra-domain dirt (so the blind analysis would have
// marked them potentially stale) but no PE's cross-domain dirt (so they are
// not in StaleReads). Their stale copies are the domain hardware's problem,
// already invalidated for free by epoch entry.
func (r *Result) markDemoted() {
	if r.IntraDirty == nil {
		return
	}
	for i, sum := range r.Summaries {
		in := r.IntraDirty[i]
		for _, ra := range sum.Refs {
			if ra.IsWrite || r.StaleReads[ra.Ref.ID] {
				continue
			}
			name := ra.Ref.Array.Name
			for p := 0; p < r.NumPE; p++ {
				if ra.PerPE[p].IsEmpty() {
					continue
				}
				dirty, ok := in[p][name]
				if !ok || dirty.IsEmpty() {
					continue
				}
				if dirty.Overlaps(ra.PerPE[p]) {
					r.DemotedIntra[ra.Ref.ID] = true
					if _, ok := r.DemotedWhy[ra.Ref.ID]; !ok {
						r.DemotedWhy[ra.Ref.ID] = fmt.Sprintf(
							"PE %d's read section of %s is dirtied only by PEs of its own coherence domain %d at entry to epoch %d — hardware keeps the copy coherent, demoted to non-stale",
							p, name, r.opts.Domains[p], i)
					}
					break
				}
			}
		}
	}
}

// buildInvalidate computes per-node per-PE invalidation regions: the
// software set from the cross-domain dirty state and, with domains, the
// modeled hardware set from the intra-domain state.
func (r *Result) buildInvalidate() {
	build := func(state [][]ArraySections) [][]ArraySections {
		out := make([][]ArraySections, len(r.Summaries))
		for i, sum := range r.Summaries {
			in := state[i]
			out[i] = make([]ArraySections, r.NumPE)
			for p := 0; p < r.NumPE; p++ {
				inv := ArraySections{}
				for name, rd := range sum.MayRead[p] {
					dirty, ok := in[p][name]
					if !ok || dirty.IsEmpty() {
						continue
					}
					is := dirty.Intersect(rd)
					if !is.IsEmpty() {
						inv[name] = is
					}
				}
				out[i][p] = inv
			}
		}
		return out
	}
	r.Invalidate = build(r.DirtyAtEntry)
	if r.IntraDirty != nil {
		r.HWInvalidate = build(r.IntraDirty)
	}
}

// StaleInNode returns the stale read refs that occur in epoch node n,
// sorted by RefID.
func (r *Result) StaleInNode(n int) []*ir.Ref {
	var out []*ir.Ref
	for _, ra := range r.Summaries[n].Refs {
		if !ra.IsWrite && r.StaleReads[ra.Ref.ID] {
			out = append(out, ra.Ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Report renders a human-readable summary for the ccdpc driver.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stale reference analysis: %d epochs, %d PEs\n", len(r.Graph.Nodes), r.NumPE)
	for i, n := range r.Graph.Nodes {
		fmt.Fprintf(&b, "epoch %d (%s)", i, n.Kind())
		if n.Parallel {
			fmt.Fprintf(&b, " doall %s", n.Loop.Var)
		}
		fmt.Fprintf(&b, ": ")
		stale := r.StaleInNode(i)
		if len(stale) == 0 {
			b.WriteString("no potentially-stale references\n")
			continue
		}
		parts := make([]string, len(stale))
		for k, ref := range stale {
			parts[k] = ref.String()
		}
		fmt.Fprintf(&b, "potentially-stale: %s\n", strings.Join(parts, ", "))
	}
	return b.String()
}

func emptyState(numPE int) []ArraySections {
	out := make([]ArraySections, numPE)
	for p := range out {
		out[p] = ArraySections{}
	}
	return out
}

func mergeState(a, b []ArraySections, numPE int) []ArraySections {
	out := make([]ArraySections, numPE)
	for p := 0; p < numPE; p++ {
		cur := a[p].clone()
		for name, s := range b[p] {
			if s.IsEmpty() {
				continue
			}
			if have, ok := cur[name]; ok {
				cur[name] = have.Union(s)
			} else {
				cur[name] = s
			}
		}
		out[p] = cur
	}
	return out
}

func statesEqual(a, b []ArraySections) bool {
	for p := range a {
		if !a[p].equal(b[p]) {
			return false
		}
	}
	return true
}

func widenState(st []ArraySections) {
	for p := range st {
		for name, s := range st[p] {
			if !s.Approx() {
				st[p][name] = s.Widen()
			}
		}
	}
}
