package stale

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// findRef locates the unique read of the named array in the program whose
// printed form contains the needle.
func findRef(t *testing.T, p *ir.Program, needle string) *ir.Ref {
	t.Helper()
	var found *ir.Ref
	for _, r := range p.Refs() {
		if strings.Contains(r.String(), needle) {
			if found != nil {
				t.Fatalf("needle %q ambiguous (%v and %v)", needle, found, r)
			}
			found = r
		}
	}
	if found == nil {
		t.Fatalf("needle %q not found", needle)
	}
	return found
}

// Program: epoch 0 writes A distributed; epoch 1 every PE reads all of A.
// Cross-PE reads are potentially stale.
func TestCrossPEReadIsStale(t *testing.T) {
	b := ir.NewBuilder("cross")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(63))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(-j + 63)")
	if !res.StaleReads[rd.ID] {
		t.Error("reversed read of remotely-written data not flagged stale")
	}
}

// Aligned read: PE p reads exactly what PE p wrote — not stale.
func TestAlignedReadNotStale(t *testing.T) {
	b := ir.NewBuilder("aligned")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j"))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(j)")
	if res.StaleReads[rd.ID] {
		t.Error("perfectly aligned read flagged stale")
	}
}

// Halo read: PE p reads j+1, which crosses its chunk boundary — stale.
func TestHaloReadIsStale(t *testing.T) {
	b := ir.NewBuilder("halo")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(62),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").AddConst(1))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(j + 1)")
	if !res.StaleReads[rd.ID] {
		t.Error("halo read not flagged stale")
	}
}

// A shifted read whose chunking happens to re-align with the writer's
// chunks is provably fresh — the analysis must not over-flag it.
func TestShiftAlignedReadNotStale(t *testing.T) {
	b := ir.NewBuilder("shift")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		// j in 1..63 chunks as 1..16 / 17..32 / 33..48 / 49..63, so A(j-1)
		// reads exactly the reader's own writes from epoch 0.
		ir.DoAll("j", ir.K(1), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").AddConst(-1))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(j - 1)")
	if res.StaleReads[rd.ID] {
		t.Error("chunk-realigned read flagged stale")
	}
}

// Read before any write can't be stale (caches start cold).
func TestReadBeforeWriteNotStale(t *testing.T) {
	b := ir.NewBuilder("first")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(63))))),
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(-j + 63)")
	if res.StaleReads[rd.ID] {
		t.Error("read before any write flagged stale")
	}
}

// Intertask locality: after PE p (coherently) reads a region, a re-read in
// a later epoch is fresh until someone else writes it again.
func TestIntertaskLocalityRefinement(t *testing.T) {
	b := ir.NewBuilder("intertask")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	d := b.SharedArray("D", 64)
	rev := func(v string) *ir.Ref { return ir.At(a, ir.I(v).Neg().AddConst(63)) }
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(63), ir.Set(ir.At(c, ir.I("j")), ir.L(rev("j")))),
		ir.DoAll("k", ir.K(0), ir.K(63), ir.Set(ir.At(d, ir.I("k")), ir.L(rev("k")))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := findRef(t, p, "A(-j + 63)")
	second := findRef(t, p, "A(-k + 63)")
	if !res.StaleReads[first.ID] {
		t.Error("first cross-PE read should be stale")
	}
	if res.StaleReads[second.ID] {
		t.Error("re-read after coherent read should be fresh (intertask locality)")
	}
}

// Time-step loop: writes in one iteration make next iteration's halo reads
// stale again (back edge in the epoch graph).
func TestTimeStepLoopBackEdge(t *testing.T) {
	b := ir.NewBuilder("ts")
	a := b.SharedArray("A", 64)
	tmp := b.SharedArray("T", 64)
	b.Routine("main",
		ir.DoAll("i0", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i0")), ir.IV(ir.I("i0")))),
		ir.DoSerial("t", ir.K(1), ir.K(5),
			ir.DoAll("i", ir.K(1), ir.K(62),
				ir.Set(ir.At(tmp, ir.I("i")),
					ir.Add(ir.L(ir.At(a, ir.I("i").AddConst(-1))), ir.L(ir.At(a, ir.I("i").AddConst(1)))))),
			ir.DoAll("j", ir.K(1), ir.K(62),
				ir.Set(ir.At(a, ir.I("j")), ir.L(ir.At(tmp, ir.I("j"))))),
		),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	left := findRef(t, p, "A(i - 1)")
	right := findRef(t, p, "A(i + 1)")
	if !res.StaleReads[left.ID] || !res.StaleReads[right.ID] {
		t.Error("halo reads in time-step loop not stale")
	}
	// Aligned read of T is written by self in the same iteration... T(j) is
	// written by PE owning chunk of i (same chunking) in the first DOALL:
	// aligned -> not stale.
	tr := findRef(t, p, "T(j)")
	if res.StaleReads[tr.ID] {
		t.Error("aligned read of T flagged stale")
	}
}

// Dynamic scheduling defeats the alignment argument: everything written by
// a possibly-different PE is stale.
func TestDynamicSchedulingIsConservative(t *testing.T) {
	b := ir.NewBuilder("dyn")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAllDynamic("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j"))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(j)")
	if !res.StaleReads[rd.ID] {
		t.Error("read after dynamically-scheduled write should be conservatively stale")
	}
}

// Single PE: nothing can be stale.
func TestSinglePENothingStale(t *testing.T) {
	b := ir.NewBuilder("single")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(63))))),
	)
	p := b.Build()
	res, err := Analyze(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StaleReads) != 0 {
		t.Errorf("stale refs on 1 PE: %v", res.StaleReads)
	}
}

// Serial epochs run on PE 0: their writes dirty everyone else.
func TestSerialEpochWritesDirtyOthers(t *testing.T) {
	b := ir.NewBuilder("serial")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		// Parallel epoch reads A (cold, fresh) so later reads depend on kills.
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j"))))),
		// Serial epoch on PE 0 rewrites A.
		ir.DoSerial("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.N(7))),
		// Now everyone re-reads.
		ir.DoAll("k", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("k")), ir.L(ir.At(a, ir.I("k"))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	second := findRef(t, p, "A(k)")
	if !res.StaleReads[second.ID] {
		t.Error("read after serial-epoch write not stale for PEs != 0")
	}
	first := findRef(t, p, "A(j)")
	if res.StaleReads[first.ID] {
		t.Error("cold read flagged stale")
	}
}

// Interprocedural: writes inside a called routine are seen.
func TestInterproceduralWritesSeen(t *testing.T) {
	b := ir.NewBuilder("interproc")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.CallTo("init"),
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(63))))),
	)
	b.Routine("init",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(-j + 63)")
	if !res.StaleReads[rd.ID] {
		t.Error("write inside callee not propagated")
	}
}

// Writes under if-statements are may-writes: they gen staleness but never
// kill.
func TestIfWritesAreMayNotMust(t *testing.T) {
	b := ir.NewBuilder("ifw")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		// Epoch 0: all PEs read-all of A? No: write A distributed.
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		// Epoch 1: owner PE conditionally rewrites its own A(j) — a
		// may-write that cannot kill the dirt from epoch 0 for OTHER data,
		// and gens dirt for other PEs.
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.When(ir.CondOf(ir.CmpLT, ir.L(ir.At(a, ir.I("j"))), ir.N(100)),
				[]ir.Stmt{ir.Set(ir.At(a, ir.I("j")), ir.N(0))}, nil)),
		// Epoch 2: everyone reads own chunk. The conditional write was by
		// self (aligned), but being a may-write it cannot refresh; it also
		// cannot dirty self. Alignment means not stale.
		ir.DoAll("k", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("k")), ir.L(ir.At(a, ir.I("k"))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := findRef(t, p, "A(k)")
	if res.StaleReads[rd.ID] {
		t.Error("aligned conditional self-write made aligned read stale")
	}

	// Invalidate regions for epoch 1's read of A(j) must be empty (cold +
	// aligned).
	sum := res.Summaries[1]
	if sum.MustWrite[0]["A"].Size() != 0 {
		t.Error("conditional write leaked into must-write")
	}
}

func TestInvalidateRegionsCoverStaleReads(t *testing.T) {
	b := ir.NewBuilder("inv")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(62),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").AddConst(1))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1: PE 0 (chunk j=0..15) reads A(16) written by PE 1 -> 16 must
	// be in PE 0's invalidate region.
	inv := res.Invalidate[1][0]["A"]
	if inv.IsEmpty() || !inv.Contains([]int64{16}) {
		t.Errorf("invalidate region for PE0 = %v, want to contain 16", inv)
	}
	// PE 3 (chunk j=48..62) reads A(49..63), all self-written (48..63):
	// nothing to invalidate.
	inv3 := res.Invalidate[1][3]["A"]
	if !inv3.IsEmpty() {
		t.Errorf("PE3 invalidate region should be empty, got %v", inv3)
	}
}

func TestFixpointTerminatesOnPingPong(t *testing.T) {
	// Two arrays written and read alternately inside a time loop with
	// shifting sections: exercises widening.
	b := ir.NewBuilder("pp")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoSerial("t", ir.K(0), ir.K(9),
			ir.DoAll("i", ir.K(1), ir.K(62),
				ir.Set(ir.At(c, ir.I("i")), ir.L(ir.At(a, ir.I("i").AddConst(1))))),
			ir.DoAll("j", ir.K(1), ir.K(62),
				ir.Set(ir.At(a, ir.I("j")), ir.L(ir.At(c, ir.I("j").AddConst(-1))))),
		),
	)
	p := b.Build()
	res, err := Analyze(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StaleReads[findRef(t, p, "A(i + 1)").ID] {
		t.Error("A(i+1) should be stale")
	}
	if !res.StaleReads[findRef(t, p, "C(j - 1)").ID] {
		t.Error("C(j-1) should be stale")
	}
}

func TestReportMentionsEpochsAndRefs(t *testing.T) {
	b := ir.NewBuilder("rep")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(62),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").AddConst(1))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if !strings.Contains(rep, "epoch 0") || !strings.Contains(rep, "A(j + 1)") {
		t.Errorf("report incomplete:\n%s", rep)
	}
}

func TestRemoteReadsDetected(t *testing.T) {
	b := ir.NewBuilder("remote")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(63),
			// Reversed read: leaves every PE's slab.
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(63))))),
	)
	p := b.Build()
	res, err := Analyze(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rev := findRef(t, p, "A(-j + 63)")
	if !res.RemoteReads[rev.ID] {
		t.Error("reversed read not marked remote")
	}
	// The aligned write A(i) and aligned-by-ID read... the write is not a
	// read; C(j) write likewise. The init IVal has no refs. So only the
	// reversed read (and possibly none other) is remote.
	aligned := findRef(t, p, "C(j)")
	if res.RemoteReads[aligned.ID] {
		t.Error("aligned write marked as remote read")
	}
}
