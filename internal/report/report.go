// Package report renders the paper's tables from harness results.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/harness"
)

// Table1 renders speedups over sequential execution time for the BASE and
// CCDP versions (paper Table 1).
func Table1(results []*harness.AppResult) string {
	var b strings.Builder
	b.WriteString("Table 1. Speedups over sequential execution time.\n\n")
	fmt.Fprintf(&b, "%6s", "#PEs")
	for _, ar := range results {
		fmt.Fprintf(&b, " | %8s %8s", ar.Name+":BASE", "CCDP")
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 6+len(results)*21) + "\n")
	if len(results) == 0 {
		return b.String()
	}
	for i := range results[0].Rows {
		fmt.Fprintf(&b, "%6d", results[0].Rows[i].PEs)
		for _, ar := range results {
			r := ar.Rows[i]
			fmt.Fprintf(&b, " | %8.2f %8.2f", r.BaseSpeedup, r.CCDPSpeedup)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2 renders the percentage improvement in execution time of the CCDP
// codes over the BASE codes (paper Table 2).
func Table2(results []*harness.AppResult) string {
	var b strings.Builder
	b.WriteString("Table 2. Improvement in execution time of CCDP codes over BASE codes.\n\n")
	fmt.Fprintf(&b, "%6s", "#PEs")
	for _, ar := range results {
		fmt.Fprintf(&b, " | %8s", ar.Name)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 6+len(results)*11) + "\n")
	if len(results) == 0 {
		return b.String()
	}
	for i := range results[0].Rows {
		fmt.Fprintf(&b, "%6d", results[0].Rows[i].PEs)
		for _, ar := range results {
			fmt.Fprintf(&b, " | %7.2f%%", ar.Rows[i].Improvement)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Details renders per-configuration cycle counts and key metrics for one
// application (diagnostics beyond the paper's tables). Fault columns are
// shown when any row saw injected faults or demotions; interconnect columns
// (CCDP run: mean/max hop distance, busiest-link utilization, queueing)
// when any row ran over a modeled topology. A flat sweep's output is
// byte-identical to the pre-noc renderer.
func Details(ar *harness.AppResult) string {
	faulty, netted := false, false
	for _, r := range ar.Rows {
		if r.CCDPStats.FaultsInjected() > 0 || r.CCDPStats.Demotions > 0 ||
			r.BaseStats.FaultsInjected() > 0 {
			faulty = true
		}
		if r.CCDPNet != nil || r.BaseNet != nil {
			netted = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: sequential %d cycles\n", ar.Name, ar.SeqCycles)
	fmt.Fprintf(&b, "%4s %14s %14s %8s %10s %10s %10s %10s",
		"PEs", "BASE cycles", "CCDP cycles", "improv", "hits", "remote", "pf", "vector-w")
	if netted {
		fmt.Fprintf(&b, " %9s %8s %9s %10s", "mean-hops", "max-hops", "link-util", "net-wait")
	}
	if faulty {
		fmt.Fprintf(&b, " %8s %8s %8s %8s", "faults", "demotion", "oracle", "attempts")
	}
	b.WriteString("\n")
	for _, r := range ar.Rows {
		fmt.Fprintf(&b, "%4d %14d %14d %7.2f%% %10d %10d %10d %10d",
			r.PEs, r.BaseCycles, r.CCDPCycles, r.Improvement,
			r.CCDPStats.Hits, r.CCDPStats.RemoteReads,
			r.CCDPStats.PrefetchIssued, r.CCDPStats.VectorWords)
		if netted {
			fmt.Fprintf(&b, " %9.2f %8d %8.1f%% %10d",
				r.CCDPNet.MeanHopsOrZero(), r.CCDPNet.MaxHopsOrZero(),
				100*r.CCDPNet.MaxLinkUtil(), r.CCDPStats.NetWaitCycles)
		}
		if faulty {
			fmt.Fprintf(&b, " %8d %8d %8d %8d",
				r.CCDPStats.FaultsInjected()+r.BaseStats.FaultsInjected(),
				r.CCDPStats.Demotions,
				r.CCDPStats.OracleViolations+r.BaseStats.OracleViolations,
				r.CCDPAttempts)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Arena renders the coherence-arena table: one workload under every
// coherence scheme, with the traffic split into data and coherence
// messages. CCDP's rows must show zero coherence messages (its coherence
// actions are compiler-scheduled prefetches, already part of the data
// traffic); the hardware directory rows show the protocol's message and
// storage costs, distinct per organization.
func Arena(ar *harness.ArenaResult) string {
	netted, pref := false, false
	for _, e := range ar.Entries {
		if e.Net != nil {
			netted = true
		}
		if e.Stats.HWPrefIssued > 0 {
			pref = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Coherence arena: %s on %d PEs (sequential %d cycles)\n",
		ar.Name, ar.PEs, ar.SeqCycles)
	fmt.Fprintf(&b, "%-12s %14s %8s %10s %10s %10s %10s %7s %10s %12s",
		"mode", "cycles", "speedup", "coh-msgs", "inv-sent", "inv-recv",
		"writebacks", "bcasts", "dir-evicts", "dir-bits")
	if netted {
		fmt.Fprintf(&b, " %10s %10s", "net-msgs", "data-msgs")
	}
	if pref {
		fmt.Fprintf(&b, " %10s %10s", "pf-issued", "pf-useful")
	}
	b.WriteString("\n")
	for _, e := range ar.Entries {
		s := &e.Stats
		fmt.Fprintf(&b, "%-12s %14d %8.2f %10d %10d %10d %10d %7d %10d %12d",
			e.Mode, e.Cycles, e.Speedup, s.CohMessages, s.CohInvSent, s.CohInvRecv,
			s.CohWritebacks, s.CohBroadcasts, s.DirEvictions, s.DirStorageBits)
		if netted {
			fmt.Fprintf(&b, " %10d %10d", s.NetMessages, s.NetMessages-s.CohMessages)
		}
		if pref {
			fmt.Fprintf(&b, " %10d %10d", s.HWPrefIssued, s.HWPrefUseful)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ArenaCSV renders arena results in machine-readable form, one row per
// (workload, mode).
func ArenaCSV(results []*harness.ArenaResult) string {
	var b strings.Builder
	b.WriteString("app,pes,mode,seq_cycles,cycles,speedup,coh_msgs,inv_sent,inv_recv," +
		"writebacks,broadcasts,dir_evictions,dir_bits,net_msgs,data_msgs,hwpref_issued,hwpref_useful\n")
	for _, ar := range results {
		for _, e := range ar.Entries {
			s := &e.Stats
			fmt.Fprintf(&b, "%s,%d,%s,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				ar.Name, ar.PEs, e.Mode, ar.SeqCycles, e.Cycles, e.Speedup,
				s.CohMessages, s.CohInvSent, s.CohInvRecv, s.CohWritebacks,
				s.CohBroadcasts, s.DirEvictions, s.DirStorageBits,
				s.NetMessages, s.NetMessages-s.CohMessages, s.HWPrefIssued, s.HWPrefUseful)
		}
	}
	return b.String()
}

// CSV renders both tables' data in machine-readable form: one row per
// (application, PE count) with cycles, speedups, improvement, and the
// fault-injection counters (all zero in fault-free runs). When any row ran
// over a modeled interconnect, the CCDP run's net columns (mean/max hop
// distance, busiest-link utilization, queueing, congestion drops) are
// appended; a flat sweep's CSV stays byte-identical to the pre-noc format.
// A sweep on a coherence-domain profile (anything but t3d) further appends
// the CCDP run's prefetch-word, invalidation and domain-traffic columns;
// t3d CSVs never change shape.
func CSV(results []*harness.AppResult) string {
	var b strings.Builder
	WriteCSV(&b, results)
	return b.String()
}

// WriteCSV is CSV writing directly to w — the form the benchmark drivers
// and the sweep service's clients stream through, so a served sweep's CSV
// is rendered by exactly the code path an in-process sweep uses. The
// column shape (net columns, domain columns) depends on the full result
// set, so rows cannot be emitted before every result is in.
func WriteCSV(w io.Writer, results []*harness.AppResult) {
	netted, domained := false, false
	for _, ar := range results {
		if ar.Profile != "" && ar.Profile != "t3d" {
			domained = true
		}
		for _, r := range ar.Rows {
			if r.CCDPNet != nil || r.BaseNet != nil {
				netted = true
			}
		}
	}
	io.WriteString(w, "app,pes,seq_cycles,base_cycles,ccdp_cycles,base_speedup,ccdp_speedup,improvement_pct,"+
		"drops,late,demotions,oracle_violations,attempts")
	if netted {
		io.WriteString(w, ",mean_hops,max_hops,max_link_util,net_wait,net_contended,net_drops")
	}
	if domained {
		io.WriteString(w, ",pf_words,invalidated,domain_near_words,domain_far_words,domain_hw_inv")
	}
	io.WriteString(w, "\n")
	for _, ar := range results {
		for _, r := range ar.Rows {
			s := &r.CCDPStats
			fmt.Fprintf(w, "%s,%d,%d,%d,%d,%.4f,%.4f,%.4f,%d,%d,%d,%d,%d",
				ar.Name, r.PEs, ar.SeqCycles, r.BaseCycles, r.CCDPCycles,
				r.BaseSpeedup, r.CCDPSpeedup, r.Improvement,
				s.FaultDrops+r.BaseStats.FaultDrops,
				s.FaultLate+r.BaseStats.FaultLate,
				s.Demotions+r.BaseStats.Demotions,
				s.OracleViolations+r.BaseStats.OracleViolations,
				r.CCDPAttempts)
			if netted {
				fmt.Fprintf(w, ",%.4f,%d,%.4f,%d,%d,%d",
					r.CCDPNet.MeanHopsOrZero(), r.CCDPNet.MaxHopsOrZero(),
					r.CCDPNet.MaxLinkUtil(), s.NetWaitCycles, s.NetContended, s.NetDrops)
			}
			if domained {
				fmt.Fprintf(w, ",%d,%d,%d,%d,%d",
					s.PrefetchIssued+s.VectorWords, s.InvalidatedLines,
					s.DomainNearWords, s.DomainFarWords, s.DomainHWInvalidations)
			}
			io.WriteString(w, "\n")
		}
	}
}
