package report_test

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/workloads"
)

// flatGoldenCSV pins the flat-topology simulator output: the exact CSV
// (cycle counts included) that cmd/ccdpbench emitted for the four paper
// applications at small scale before the interconnect model existed. The
// flat model is the repo's calibrated baseline — any change to these
// numbers is a behavioral regression, and the noc integration in
// particular must reproduce them bit-identically when Topology is unset.
const flatGoldenCSV = `app,pes,seq_cycles,base_cycles,ccdp_cycles,base_speedup,ccdp_speedup,improvement_pct,drops,late,demotions,oracle_violations,attempts
MXM,1,74656,142476,75706,0.5240,0.9861,46.8640,0,0,0,0,1
MXM,2,74656,383440,42294,0.1947,1.7652,88.9699,0,0,0,0,1
MXM,4,74656,208240,23982,0.3585,3.1130,88.4835,0,0,0,0,1
MXM,8,74656,120640,14826,0.6188,5.0355,87.7105,0,0,0,0,1
VPENTA,1,393984,447524,394734,0.8804,0.9981,11.7960,0,0,0,0,1
VPENTA,2,393984,236112,198545,1.6686,1.9844,15.9107,0,0,0,0,1
VPENTA,4,393984,129856,100049,3.0340,3.9379,22.9539,0,0,0,0,1
VPENTA,8,393984,76728,50801,5.1348,7.7554,33.7908,0,0,0,0,1
TOMCATV,1,781807,1517312,801157,0.5153,0.9758,47.1989,0,0,0,0,1
TOMCATV,2,781807,2967422,1106570,0.2635,0.7065,62.7094,0,0,0,0,1
TOMCATV,4,781807,2006074,684274,0.3897,1.1425,65.8899,0,0,0,0,1
TOMCATV,8,781807,1403402,431320,0.5571,1.8126,69.2661,0,0,0,0,1
SWIM,1,1073428,1349510,1075678,0.7954,0.9979,20.2912,0,0,0,0,1
SWIM,2,1073428,872628,634214,1.2301,1.6925,27.3214,0,0,0,0,1
SWIM,4,1073428,552246,352079,1.9437,3.0488,36.2460,0,0,0,0,1
SWIM,8,1073428,385782,209350,2.7825,5.1274,45.7336,0,0,0,0,1
`

// TestFlatTopologyGoldenCSV runs the full small-scale sweep under the
// default (flat) topology and asserts the rendered CSV — cycle counts,
// speedups and all — is byte-identical to the pre-noc golden capture.
func TestFlatTopologyGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale sweep in -short mode")
	}
	var results []*harness.AppResult
	for _, s := range workloads.Small() {
		ar, err := harness.RunApp(s, harness.Config{PECounts: []int{1, 2, 4, 8}})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		results = append(results, ar)
	}
	got := report.CSV(results)
	if got == flatGoldenCSV {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(flatGoldenCSV, "\n")
	for i := range wantLines {
		if i >= len(gotLines) || gotLines[i] != wantLines[i] {
			g := "<missing>"
			if i < len(gotLines) {
				g = gotLines[i]
			}
			t.Fatalf("flat CSV diverges from the pre-noc golden at line %d:\n got: %s\nwant: %s", i+1, g, wantLines[i])
		}
	}
	t.Fatalf("flat CSV has %d lines, golden has %d", len(gotLines), len(wantLines))
}
