package report_test

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/noc"
	"repro/internal/report"
	"repro/internal/workloads"
)

// arenaGoldenCSV pins the coherence-arena output: the exact CSV that
// cmd/ccdpbench emitted for the four paper applications at small scale
// with `-arena -arena-pes 8 -topology torus` when the hardware directory
// modes landed. It is the machine-checkable form of the arena's claims:
// the software schemes (BASE, CCDP) book zero coherence messages and zero
// directory storage, while the three directory organizations show
// distinct, nonzero message and storage costs on the sharing workloads —
// the full map is precise but pays the widest bit-vectors, Dir_1_B
// overflows to broadcast (TOMCATV: 22113 invalidations sent against the
// full map's 3795), and the undersized sparse directory recalls live
// lines as its entries evict. Any engine or protocol change that shifts a
// single simulated cycle or message breaks this byte-for-byte.
const arenaGoldenCSV = `app,pes,mode,seq_cycles,cycles,speedup,coh_msgs,inv_sent,inv_recv,writebacks,broadcasts,dir_evictions,dir_bits,net_msgs,data_msgs,hwpref_issued,hwpref_useful
MXM,8,BASE,74656,117220,0.6369,0,0,0,0,0,0,0,7168,7168,0,0
MXM,8,CCDP,74656,20255,3.6858,0,0,0,0,0,0,0,224,224,0,0
MXM,8,HWDIR,74656,30269,2.4664,224,0,0,0,0,0,2280,2016,1792,0,0
MXM,8,HWDIR-LP,74656,30269,2.4664,224,0,0,0,0,0,1368,2016,1792,0,0
MXM,8,HWDIR-SPARSE,74656,30269,2.4664,224,0,0,0,0,0,18432,2016,1792,0,0
VPENTA,8,BASE,393984,76728,5.1348,0,0,0,0,0,0,0,0,0,0,0
VPENTA,8,CCDP,393984,50801,7.7554,0,0,0,0,0,0,0,0,0,0,0
VPENTA,8,HWDIR,393984,50051,7.8717,0,0,0,1864,0,0,18000,0,0,0,0
VPENTA,8,HWDIR-LP,393984,50051,7.8717,0,0,0,1864,0,0,10800,0,0,0,0
VPENTA,8,HWDIR-SPARSE,393984,50139,7.8578,0,3048,96,1872,0,3048,21504,0,0,0,0
TOMCATV,8,BASE,781807,1400538,0.5582,0,0,0,0,0,0,0,52456,52456,0,0
TOMCATV,8,CCDP,781807,550540,1.4201,0,0,0,0,0,0,0,27688,27688,0,0
TOMCATV,8,HWDIR,781807,495523,1.5777,16778,3795,2586,3728,0,0,19190,35926,19148,0,0
TOMCATV,8,HWDIR-LP,781807,629055,1.2428,50738,22113,2586,3728,3119,0,11514,69886,19148,0,0
TOMCATV,8,HWDIR-SPARSE,781807,510767,1.5307,20592,7974,5753,3828,0,4013,21504,41224,20632,0,0
SWIM,8,BASE,1073428,387642,2.7691,0,0,0,0,0,0,0,10494,10494,0,0
SWIM,8,CCDP,1073428,214627,5.0014,0,0,0,0,0,0,0,3254,3254,0,0
SWIM,8,HWDIR,1073428,215042,4.9917,3134,828,119,2834,0,0,38370,6520,3386,0,0
SWIM,8,HWDIR-LP,1073428,228448,4.6988,11302,4912,119,2834,684,0,23022,14688,3386,0,0
SWIM,8,HWDIR-SPARSE,1073428,208017,5.1603,3302,10123,7876,2744,0,9269,22528,6756,3454,0,0
`

// TestArenaGoldenCSV runs the coherence arena for the four small-scale
// applications on the 8-PE torus and asserts the rendered CSV is
// byte-identical to the golden capture above. RunArena itself verifies
// every mode's result arrays against the sequential golden and fails on
// any oracle violation, so a pass here also certifies every hardware
// organization coherent on all four workloads.
func TestArenaGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale arena in -short mode")
	}
	topo, err := noc.Parse("torus")
	if err != nil {
		t.Fatal(err)
	}
	var results []*harness.ArenaResult
	for _, s := range workloads.Small() {
		ar, err := harness.RunArena(s, harness.ArenaConfig{PEs: 8, Topology: topo})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		results = append(results, ar)
	}
	got := report.ArenaCSV(results)
	if got == arenaGoldenCSV {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(arenaGoldenCSV, "\n")
	for i := range wantLines {
		if i >= len(gotLines) || gotLines[i] != wantLines[i] {
			g := "<missing>"
			if i < len(gotLines) {
				g = gotLines[i]
			}
			t.Fatalf("arena CSV diverges from the golden at line %d:\n got: %s\nwant: %s", i+1, g, wantLines[i])
		}
	}
	t.Fatalf("arena CSV has %d lines, golden has %d", len(gotLines), len(wantLines))
}
