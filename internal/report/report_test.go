package report

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/stats"
)

func fakeResults() []*harness.AppResult {
	mk := func(name string, rows ...harness.Row) *harness.AppResult {
		return &harness.AppResult{Name: name, SeqCycles: 1000, Rows: rows}
	}
	return []*harness.AppResult{
		mk("ALPHA",
			harness.Row{PEs: 1, BaseCycles: 2000, CCDPCycles: 1000, BaseSpeedup: 0.5, CCDPSpeedup: 1.0, Improvement: 50},
			harness.Row{PEs: 4, BaseCycles: 600, CCDPCycles: 300, BaseSpeedup: 1.67, CCDPSpeedup: 3.33, Improvement: 50}),
		mk("BETA",
			harness.Row{PEs: 1, BaseCycles: 1100, CCDPCycles: 1050, BaseSpeedup: 0.91, CCDPSpeedup: 0.95, Improvement: 4.5},
			harness.Row{PEs: 4, BaseCycles: 280, CCDPCycles: 270, BaseSpeedup: 3.57, CCDPSpeedup: 3.70, Improvement: 3.6}),
	}
}

func TestTable1Layout(t *testing.T) {
	out := Table1(fakeResults())
	if !strings.Contains(out, "Speedups over sequential") {
		t.Error("missing caption")
	}
	for _, want := range []string{"ALPHA", "BETA", "0.50", "3.33", "3.70"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// caption, blank, header, rule, 2 data rows
	if len(lines) != 6 {
		t.Errorf("Table1 has %d lines:\n%s", len(lines), out)
	}
}

func TestTable2Layout(t *testing.T) {
	out := Table2(fakeResults())
	for _, want := range []string{"Improvement", "50.00%", "4.50%", "3.60%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestDetailsLayout(t *testing.T) {
	ar := fakeResults()[0]
	ar.Rows[0].CCDPStats = stats.Stats{Hits: 42, RemoteReads: 7}
	out := Details(ar)
	for _, want := range []string{"ALPHA", "sequential 1000", "42", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Details missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyResults(t *testing.T) {
	if out := Table1(nil); !strings.Contains(out, "Speedups") {
		t.Errorf("empty Table1:\n%s", out)
	}
	if out := Table2(nil); !strings.Contains(out, "Improvement") {
		t.Errorf("empty Table2:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV(fakeResults())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("CSV rows = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "app,pes,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "ALPHA,1,1000,2000,1000,") {
		t.Errorf("row = %q", lines[1])
	}
}
