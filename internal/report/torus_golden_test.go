package report_test

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/noc"
	"repro/internal/report"
	"repro/internal/workloads"
)

// torusGoldenCSV pins the torus-topology simulator output: the exact CSV
// (cycle counts, hop statistics and link-utilization columns included) that
// cmd/ccdpbench emitted for the four paper applications at small scale with
// `-topology torus` when the interconnect model landed. Together with the
// flat golden this pins BOTH topologies before any engine-internal change:
// a hot-path refactor that alters a single simulated cycle, a routing
// decision or a contention tie-break fails one of the two tests.
const torusGoldenCSV = `app,pes,seq_cycles,base_cycles,ccdp_cycles,base_speedup,ccdp_speedup,improvement_pct,drops,late,demotions,oracle_violations,attempts,mean_hops,max_hops,max_link_util,net_wait,net_contended,net_drops
MXM,1,74656,142476,75706,0.5240,0.9861,46.8640,0,0,0,0,1,0.0000,0,0.0000,0,0,0
MXM,2,74656,262608,44182,0.2843,1.6897,83.1757,0,0,0,0,1,1.0000,1,0.0234,0,0,0
MXM,4,74656,180671,26737,0.4132,2.7922,85.2013,0,0,0,0,1,1.3333,2,0.0386,818,17,0
MXM,8,74656,117220,20255,0.6369,3.6858,82.7205,0,0,0,0,1,1.7143,3,0.0510,9923,63,0
VPENTA,1,393984,447524,394734,0.8804,0.9981,11.7960,0,0,0,0,1,0.0000,0,0.0000,0,0,0
VPENTA,2,393984,236112,198545,1.6686,1.9844,15.9107,0,0,0,0,1,0.0000,0,0.0000,0,0,0
VPENTA,4,393984,129856,100049,3.0340,3.9379,22.9539,0,0,0,0,1,0.0000,0,0.0000,0,0,0
VPENTA,8,393984,76728,50801,5.1348,7.7554,33.7908,0,0,0,0,1,0.0000,0,0.0000,0,0,0
TOMCATV,1,781807,1517312,801157,0.5153,0.9758,47.1989,0,0,0,0,1,0.0000,0,0.0000,0,0,0
TOMCATV,2,781807,2249698,1000012,0.3475,0.7818,55.5491,0,0,0,0,1,1.0000,1,0.1361,0,0,0
TOMCATV,4,781807,1754352,704198,0.4456,1.1102,59.8599,0,0,0,0,1,1.3409,2,0.1328,106934,3028,0
TOMCATV,8,781807,1400538,550540,0.5582,1.4201,60.6908,0,0,0,0,1,1.7079,3,0.1235,351319,6553,0
SWIM,1,1073428,1349510,1075678,0.7954,0.9979,20.2912,0,0,0,0,1,0.0000,0,0.0000,0,0,0
SWIM,2,1073428,824956,630810,1.3012,1.7017,23.5341,0,0,0,0,1,1.0000,1,0.0121,0,0,0
SWIM,4,1073428,529118,353021,2.0287,3.0407,33.2812,0,0,0,0,1,1.3256,2,0.0304,2048,85,0
SWIM,8,1073428,387642,214627,2.7691,5.0014,44.6327,0,0,0,0,1,1.6663,3,0.0503,5791,244,0
`

// TestTorusTopologyGoldenCSV runs the full small-scale sweep over the torus
// interconnect and asserts the rendered CSV — cycle counts, hop statistics
// and all — is byte-identical to the golden capture above.
func TestTorusTopologyGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale sweep in -short mode")
	}
	topo, err := noc.Parse("torus")
	if err != nil {
		t.Fatal(err)
	}
	var results []*harness.AppResult
	for _, s := range workloads.Small() {
		ar, err := harness.RunApp(s, harness.Config{PECounts: []int{1, 2, 4, 8}, Topology: topo})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		results = append(results, ar)
	}
	got := report.CSV(results)
	if got == torusGoldenCSV {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(torusGoldenCSV, "\n")
	for i := range wantLines {
		if i >= len(gotLines) || gotLines[i] != wantLines[i] {
			g := "<missing>"
			if i < len(gotLines) {
				g = gotLines[i]
			}
			t.Fatalf("torus CSV diverges from the golden at line %d:\n got: %s\nwant: %s", i+1, g, wantLines[i])
		}
	}
	t.Fatalf("torus CSV has %d lines, golden has %d", len(gotLines), len(wantLines))
}
