package report_test

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/workloads"
)

// cxlpccGoldenCSV pins the cxl-pcc machine-profile sweep output: a
// domained profile widens the CSV with the prefetch-word, invalidation and
// domain-traffic columns, and the cycle counts embed the near-tier charging
// and hardware intra-domain invalidation. Any drift here is a behavioral
// change to the coherence-domain model and must be deliberate.
const cxlpccGoldenCSV = `app,pes,seq_cycles,base_cycles,ccdp_cycles,base_speedup,ccdp_speedup,improvement_pct,drops,late,demotions,oracle_violations,attempts,pf_words,invalidated,domain_near_words,domain_far_words,domain_hw_inv
MXM,1,74656,142476,75706,0.5240,0.9861,46.8640,0,0,0,0,1,0,0,0,0,0
MXM,2,74656,158160,114990,0.4720,0.6492,27.2951,0,0,0,0,1,0,0,2048,0,0
MXM,4,74656,95600,58790,0.7809,1.2699,38.5042,0,0,0,0,1,0,0,3072,0,0
MXM,8,74656,120640,30762,0.6188,2.4269,74.5010,0,0,0,0,1,2048,384,1536,2048,0
VPENTA,1,393984,447524,394734,0.8804,0.9981,11.7960,0,0,0,0,1,0,0,0,0,0
VPENTA,2,393984,236112,198545,1.6686,1.9844,15.9107,0,0,0,0,1,0,0,0,0,0
VPENTA,4,393984,129856,100049,3.0340,3.9379,22.9539,0,0,0,0,1,0,0,0,0,0
VPENTA,8,393984,76728,50801,5.1348,7.7554,33.7908,0,0,0,0,1,0,0,0,0,0
TOMCATV,1,781807,1517312,801157,0.5153,0.9758,47.1989,0,0,0,0,1,0,0,0,0,0
TOMCATV,2,781807,1543182,916468,0.5066,0.8531,40.6118,0,0,0,0,1,0,0,17190,0,150
TOMCATV,4,781807,1152142,554222,0.6786,1.4106,51.8964,0,0,0,0,1,0,0,25758,0,240
TOMCATV,8,781807,1384262,433168,0.5648,1.8049,68.7077,0,0,0,0,1,12516,3302,13886,16344,267
SWIM,1,1073428,1349510,1075678,0.7954,0.9979,20.2912,0,0,0,0,1,0,0,0,0,0
SWIM,2,1073428,779032,602224,1.3779,1.7824,22.6959,0,0,0,0,1,0,0,1176,0,0
SWIM,4,1073428,459574,336032,2.3357,3.1944,26.8819,0,0,0,0,1,0,0,3110,0,7
SWIM,8,1073428,383042,208281,2.8024,5.1537,45.6245,0,0,0,0,1,854,6,4582,1028,32
`

// TestCxlPccGoldenCSV runs the full small-scale sweep on the cxl-pcc
// profile and asserts the rendered CSV is byte-identical to the pinned
// capture. Together with the flat golden (which exercises the unchanged
// t3d shape) it pins both sides of the profile split.
func TestCxlPccGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale sweep in -short mode")
	}
	var results []*harness.AppResult
	for _, s := range workloads.Small() {
		ar, err := harness.RunApp(s, harness.Config{PECounts: []int{1, 2, 4, 8}, Profile: "cxl-pcc"})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		results = append(results, ar)
	}
	got := report.CSV(results)
	if got == cxlpccGoldenCSV {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(cxlpccGoldenCSV, "\n")
	for i := range wantLines {
		if i >= len(gotLines) || gotLines[i] != wantLines[i] {
			g := "<missing>"
			if i < len(gotLines) {
				g = gotLines[i]
			}
			t.Fatalf("cxl-pcc CSV diverges from the golden at line %d:\n got: %s\nwant: %s", i+1, g, wantLines[i])
		}
	}
	t.Fatalf("cxl-pcc CSV has %d lines, golden has %d", len(gotLines), len(wantLines))
}
