// Package sched implements the prefetch scheduling algorithm of paper §4.3
// (Figure 2). For every inner loop or serial code segment containing
// prefetch targets it picks a scheduling technique:
//
//   - Vector Prefetch Generation (VPG): Gornish-style pulling of an array
//     reference out of a loop, one level at a time, capped by the cache and
//     prefetch-queue capacity; realized on the T3D with shmem_get.
//   - Software Pipelining (SP): Mowry-style prefetching `ahead` iterations
//     in advance, the distance computed from the static cost model and
//     clamped to a tunable range; dropped when the 16-word prefetch queue
//     would overflow.
//   - Moving Back Prefetches (MBP): dependence-limited backward motion of a
//     single prefetch, bounded by a tunable useful-distance window, and
//     restricted at if-statement boundaries.
//
// Technique order per region follows the paper's six cases:
//
//	case 1: serial inner loop           — VPG, SP, MBP (SP, MBP if bounds unknown)
//	case 2: static DOALL inner loop     — VPG, MBP     (MBP if bounds unknown)
//	case 3: dynamic DOALL inner loop    — MBP
//	case 4: serial code segment         — MBP
//	case 5: loop containing ifs         — MBP, not crossing branch boundaries
//	case 6: region inside an if branch  — cases 1–4 confined to the branch
//
// Targets for which every technique fails are demoted to bypass-cache
// fetches (paper §3.2).
package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cost"
	"repro/internal/depend"
	"repro/internal/ir"
	"repro/internal/locality"
	"repro/internal/machine"
	"repro/internal/stale"
	"repro/internal/target"
)

// Technique identifies how a target was scheduled.
type Technique int

const (
	// TechNone: no technique applied; the read becomes a bypass fetch.
	TechNone Technique = iota
	// TechVPG: vector prefetch generation.
	TechVPG
	// TechSP: software pipelining.
	TechSP
	// TechMBP: moving back prefetches.
	TechMBP
)

func (t Technique) String() string {
	switch t {
	case TechVPG:
		return "VPG"
	case TechSP:
		return "SP"
	case TechMBP:
		return "MBP"
	default:
		return "bypass"
	}
}

// Decision records the scheduling outcome for one prefetch target.
type Decision struct {
	Ref       *ir.Ref
	Case      int
	Technique Technique
	Ahead     int64  // SP: iterations of lead distance
	MovedBack int64  // MBP: estimated cycles of motion
	Words     int64  // VPG: words per vector prefetch
	Hoisted   bool   // VPG: placed in the enclosing DOALL's prologue
	Reason    string // why the target was bypassed (TechNone)
}

// Result is the scheduler output.
type Result struct {
	Decisions []Decision
	// Counts by technique.
	NumVPG, NumSP, NumMBP, NumBypass int
}

type insertion struct {
	owner *[]ir.Stmt
	index int
	stmt  ir.Stmt
}

type scheduler struct {
	prog    *ir.Program
	mp      machine.Params
	model   *cost.Model
	params  map[string]int64
	pending []insertion
	res     *Result
}

// Schedule runs Figure 2 over the program, mutating it in place: stale
// reads get their Stale/Bypass/Prefetched flags, prefetch statements and
// annotations are inserted. The program must afterwards be re-finalized by
// the caller. sres/tres must have been computed on this same program value.
func Schedule(prog *ir.Program, sres *stale.Result, tres *target.Result, mp machine.Params) *Result {
	s := &scheduler{
		prog:   prog,
		mp:     mp,
		model:  cost.NewModel(mp, prog),
		params: prog.Params,
		res:    &Result{},
	}

	// Mark every potentially-stale read; targets additionally get
	// scheduled, non-targets stay normal reads (coherent via the
	// epoch-boundary invalidation).
	for id := range sres.StaleReads {
		prog.Ref(id).Stale = true
	}

	regions := ir.Regions(prog)
	for _, reg := range regions {
		var targets []*ir.Ref
		reads, _ := reg.RefsIn()
		seen := map[ir.RefID]bool{}
		for _, r := range reads {
			if tres.Targets[r.ID] && !seen[r.ID] {
				targets = append(targets, r)
				seen[r.ID] = true
			}
		}
		if len(targets) == 0 {
			continue
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })
		s.scheduleRegion(reg, targets)
	}
	s.applyInsertions()
	return s.res
}

// scheduleRegion dispatches one region's targets per the Figure 2 cases.
func (s *scheduler) scheduleRegion(reg *ir.Region, targets []*ir.Ref) {
	queueAvail := s.mp.PrefetchQueueWords
	caseNum, techniques := classify(s.prog, reg)
	if reg.InIf {
		caseNum = 6
	}
	for _, t := range targets {
		d := Decision{Ref: t, Case: caseNum, Technique: TechNone}
		for _, tech := range techniques {
			ok := false
			switch tech {
			case TechVPG:
				ok = s.tryVPG(reg, t, &d)
			case TechSP:
				ok = s.trySP(reg, t, &queueAvail, &d)
			case TechMBP:
				ok = s.tryMBP(reg, t, &d)
			}
			if ok {
				d.Technique = tech
				break
			}
		}
		switch d.Technique {
		case TechVPG:
			s.res.NumVPG++
			t.Prefetched = true
		case TechSP:
			s.res.NumSP++
			t.Prefetched = true
		case TechMBP:
			s.res.NumMBP++
			t.Prefetched = true
		default:
			s.res.NumBypass++
			t.Bypass = true
			if d.Reason == "" {
				d.Reason = "no applicable technique"
			}
		}
		s.res.Decisions = append(s.res.Decisions, d)
	}
}

// classify maps a region to its Figure 2 case and technique order.
func classify(prog *ir.Program, reg *ir.Region) (int, []Technique) {
	if !reg.IsLoop() {
		return 4, []Technique{TechMBP} // serial code section
	}
	l := reg.Loop
	if ir.LoopContainsIf(l) {
		return 5, []Technique{TechMBP}
	}
	if l.Parallel {
		if l.Sched == ir.SchedDynamic {
			return 3, []Technique{TechMBP}
		}
		if l.BoundsKnown {
			return 2, []Technique{TechVPG, TechMBP}
		}
		return 2, []Technique{TechMBP}
	}
	if l.BoundsKnown {
		return 1, []Technique{TechVPG, TechSP, TechMBP}
	}
	return 1, []Technique{TechSP, TechMBP}
}

// regionBounds returns (shared, inner) bounds: enclosing-loop variables are
// shared symbolic values (fixed per region instance); the region loop's own
// variable ranges over its full extent in inner.
func (s *scheduler) regionBounds(reg *ir.Region) (shared, inner depend.Bounds, ok bool) {
	shared = depend.NewBounds()
	for _, l := range reg.Enclosing {
		var k bool
		shared, k = shared.WithLoop(l, s.params)
		if !k {
			return shared, inner, false
		}
	}
	inner = depend.NewBounds()
	if reg.IsLoop() {
		var k bool
		inner, k = inner.WithLoop(reg.Loop, s.params)
		if !k {
			// Bound by the shared environment (triangular on enclosing).
			merged := shared.Clone()
			inner, k = merged.WithLoop(reg.Loop, s.params)
			if !k {
				return shared, inner, false
			}
			inner = depend.NewBounds().With(reg.Loop.Var, inner.Lo[reg.Loop.Var], inner.Hi[reg.Loop.Var])
		}
	}
	return shared, inner, true
}

// tryVPG attempts vector prefetch generation for target t in loop region
// reg (cases 1 and 2).
func (s *scheduler) tryVPG(reg *ir.Region, t *ir.Ref, d *Decision) bool {
	l := reg.Loop
	addr, okA := locality.AddrExpr(t)
	if !okA || addr.Coef(l.Var) == 0 {
		return false // loop-invariant: a vector of one word is not a vector
	}
	shared, inner, okB := s.regionBounds(reg)
	if !okB {
		return false
	}
	// Legality: no write inside the loop may produce the value being
	// pulled out.
	if depend.AnyWriteMayConflict(l.Body, t, inner, shared, s.params) {
		return false
	}
	trip, okT := ir.TripCount(s.prog, l)
	if !okT {
		return false
	}
	words := trip
	if l.Parallel {
		// Per-PE vector over the PE's block chunk.
		words = (trip + int64(s.mp.NumPE) - 1) / int64(s.mp.NumPE)
	}
	// Hardware constraints: one vector must fit the configured cache
	// fraction and must not dwarf the cache (paper §4.3.1).
	if words > s.mp.VectorMaxWords || words > s.mp.CacheWords {
		return false
	}
	vp := &ir.VectorPrefetch{
		Target:  t.Clone(),
		LoopVar: l.Var,
		Lo:      l.Lo, Hi: l.Hi, Step: l.Step,
		Words: words,
	}
	vp.Target.Stale = false
	vp.Target.Prefetched = false

	if l.Parallel {
		// Case 2: the DOALL is the epoch; its prologue runs per PE after
		// the epoch-boundary invalidation.
		l.Prologue = append(l.Prologue, vp)
		d.Hoisted = true
	} else if !reg.InIf && len(reg.Enclosing) > 0 {
		// Case 1 with hoisting: if the vector is invariant in the
		// immediately-enclosing DOALL variable, issue it once per PE in the
		// DOALL prologue instead of once per enclosing iteration.
		encl := reg.Enclosing[len(reg.Enclosing)-1]
		if encl.Parallel && addr.Coef(encl.Var) == 0 && !l.Lo.DependsOn(encl.Var) && !l.Hi.DependsOn(encl.Var) {
			encl.Prologue = append(encl.Prologue, vp)
			d.Hoisted = true
		} else {
			s.pending = append(s.pending, insertion{owner: reg.Owner, index: reg.Index, stmt: vp})
		}
	} else {
		s.pending = append(s.pending, insertion{owner: reg.Owner, index: reg.Index, stmt: vp})
	}
	d.Words = words
	return true
}

// trySP attempts software pipelining for target t in serial inner loop reg
// (case 1).
func (s *scheduler) trySP(reg *ir.Region, t *ir.Ref, queueAvail *int, d *Decision) bool {
	l := reg.Loop
	if l.Parallel || ir.LoopContainsCall(l) {
		return false
	}
	addr, okA := locality.AddrExpr(t)
	if !okA || addr.Coef(l.Var) == 0 {
		return false // invariant data: nothing to pipeline
	}
	shared, inner, okB := s.regionBounds(reg)
	if !okB {
		return false
	}
	if depend.AnyWriteMayConflict(l.Body, t, inner, shared, s.params) {
		return false
	}
	ahead := s.model.AheadIterations(l)
	// Queue constraint: each stream keeps up to `ahead` single-word
	// prefetches outstanding; drop when the 16-word queue would overflow.
	if int64(*queueAvail) < ahead {
		d.Reason = "prefetch queue exhausted"
		return false
	}
	*queueAvail -= int(ahead)
	l.Pipelined = append(l.Pipelined, ir.PipelinedPrefetch{Target: cleanClone(t), Ahead: ahead})
	d.Ahead = ahead
	return true
}

// tryMBP attempts moving-back scheduling for target t (all cases).
func (s *scheduler) tryMBP(reg *ir.Region, t *ir.Ref, d *Decision) bool {
	shared, inner, okB := s.regionBounds(reg)
	if !okB {
		return false
	}
	// Inside a loop body, the loop variable is fixed for the instance being
	// prefetched: it joins the shared set.
	if reg.IsLoop() {
		shared = shared.With(reg.Loop.Var, inner.Lo[reg.Loop.Var], inner.Hi[reg.Loop.Var])
	}

	list, useIdx, lo := s.findUse(reg, t)
	if list == nil {
		return false
	}

	// Walk back from the use accumulating distance, stopping at a
	// potentially conflicting write, the region/branch start, or the
	// maximum useful distance.
	insertAt := useIdx
	var dist int64
	for i := useIdx - 1; i >= lo; i-- {
		st := (*list)[i]
		// Both the moved prefetch and the crossed statement execute in the
		// same dynamic instance, so every in-scope variable is shared.
		if depend.StmtMayWriteRef(st, t, depend.NewBounds(), shared, s.params) {
			break
		}
		c := s.model.Stmt(st)
		if dist+c > s.mp.MaxMoveBackCycles {
			break
		}
		dist += c
		insertAt = i
	}
	if dist < s.mp.MinMoveBackCycles {
		d.Reason = fmt.Sprintf("move-back distance %d below minimum %d", dist, s.mp.MinMoveBackCycles)
		return false
	}
	pf := &ir.Prefetch{Target: cleanClone(t), MovedBack: dist}
	s.pending = append(s.pending, insertion{owner: list, index: insertAt, stmt: pf})
	d.MovedBack = dist
	return true
}

// findUse locates the statement list directly containing the statement that
// uses t, the statement's index, and the lowest index motion may reach
// (region start, or branch start for uses inside if branches — paper
// case 5/6 restrictions).
func (s *scheduler) findUse(reg *ir.Region, t *ir.Ref) (list *[]ir.Stmt, idx, lo int) {
	var searchList func(ss *[]ir.Stmt, from, to int) (*[]ir.Stmt, int, int)
	searchList = func(ss *[]ir.Stmt, from, to int) (*[]ir.Stmt, int, int) {
		for i := from; i < to; i++ {
			switch st := (*ss)[i].(type) {
			case *ir.Assign:
				if exprUsesRef(st.RHS, t) || st.LHS == t {
					return ss, i, from
				}
			case *ir.If:
				if exprUsesRef(st.Cond.L, t) || exprUsesRef(st.Cond.R, t) {
					return ss, i, from
				}
				if l, j, lo2 := searchList(&st.Then, 0, len(st.Then)); l != nil {
					return l, j, lo2
				}
				if l, j, lo2 := searchList(&st.Else, 0, len(st.Else)); l != nil {
					return l, j, lo2
				}
			case *ir.Loop:
				if l, j, lo2 := searchList(&st.Body, 0, len(st.Body)); l != nil {
					return l, j, lo2
				}
			}
		}
		return nil, 0, 0
	}
	if reg.IsLoop() {
		return searchList(&reg.Loop.Body, 0, len(reg.Loop.Body))
	}
	return searchList(reg.Owner, reg.Index, reg.Index+reg.Len)
}

func exprUsesRef(e ir.Expr, t *ir.Ref) bool {
	switch x := e.(type) {
	case ir.Load:
		return x.Ref == t
	case ir.Bin:
		return exprUsesRef(x.L, t) || exprUsesRef(x.R, t)
	case ir.Un:
		return exprUsesRef(x.X, t)
	}
	return false
}

// cleanClone copies a ref without its lowering flags (the prefetch operand
// is an address computation, not a coherent read).
func cleanClone(t *ir.Ref) *ir.Ref {
	c := t.Clone()
	c.Stale = false
	c.Bypass = false
	c.Prefetched = false
	c.NonCached = false
	return c
}

// applyInsertions performs the pending statement insertions, per owner list
// in descending index order so earlier indices stay valid.
func (s *scheduler) applyInsertions() {
	byOwner := map[*[]ir.Stmt][]insertion{}
	for _, ins := range s.pending {
		byOwner[ins.owner] = append(byOwner[ins.owner], ins)
	}
	for owner, list := range byOwner {
		sort.SliceStable(list, func(i, j int) bool { return list[i].index > list[j].index })
		for _, ins := range list {
			ss := *owner
			ss = append(ss, nil)
			copy(ss[ins.index+1:], ss[ins.index:])
			ss[ins.index] = ins.stmt
			*owner = ss
		}
	}
	s.pending = nil
}

// Report renders the scheduling decisions for the ccdpc driver.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prefetch scheduling: %d VPG, %d SP, %d MBP, %d bypass\n",
		r.NumVPG, r.NumSP, r.NumMBP, r.NumBypass)
	for _, d := range r.Decisions {
		fmt.Fprintf(&b, "  case %d %-6s %s", d.Case, d.Technique, d.Ref)
		switch d.Technique {
		case TechVPG:
			fmt.Fprintf(&b, " (%d words", d.Words)
			if d.Hoisted {
				b.WriteString(", hoisted to DOALL prologue")
			}
			b.WriteString(")")
		case TechSP:
			fmt.Fprintf(&b, " (ahead %d iterations)", d.Ahead)
		case TechMBP:
			fmt.Fprintf(&b, " (moved back %d cycles)", d.MovedBack)
		default:
			fmt.Fprintf(&b, " (%s)", d.Reason)
		}
		b.WriteString("\n")
	}
	return b.String()
}
