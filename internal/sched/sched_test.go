package sched

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stale"
	"repro/internal/target"
)

// compileFor runs the full analysis+scheduling pipeline on a program built
// by build, returning the mutated program and the scheduling result.
func compileFor(t *testing.T, numPE int, build func(b *ir.Builder)) (*ir.Program, *Result) {
	t.Helper()
	b := ir.NewBuilder("s")
	build(b)
	p := b.Build()
	mp := machine.T3D(numPE)
	mem.Layout(p, mp.LineWords)
	sres, err := stale.Analyze(p, numPE)
	if err != nil {
		t.Fatal(err)
	}
	tres := target.Analyze(p, sres.StaleReads, mp.LineWords)
	res := Schedule(p, sres, tres, mp)
	p.Finalize()
	if err := ir.Validate(p); err != nil {
		t.Fatalf("scheduled program invalid: %v", err)
	}
	return p, res
}

func decisionFor(t *testing.T, res *Result, needle string) Decision {
	t.Helper()
	for _, d := range res.Decisions {
		if strings.Contains(d.Ref.String(), needle) {
			return d
		}
	}
	t.Fatalf("no decision for %q in %+v", needle, res.Decisions)
	return Decision{}
}

// MXM-like shape: serial inner loop reading remote columns -> case 1 VPG,
// hoisted to the DOALL prologue (invariant in the DOALL var).
func TestCase1VPGHoistedToPrologue(t *testing.T) {
	p, res := compileFor(t, 4, func(b *ir.Builder) {
		a := b.SharedArray("A", 256, 128)
		c := b.SharedArray("C", 256, 64)
		b.Routine("main",
			ir.DoAll("i0", ir.K(0), ir.K(127),
				ir.DoSerial("ii", ir.K(0), ir.K(255), ir.Set(ir.At(a, ir.I("ii"), ir.I("i0")), ir.N(1)))),
			ir.DoAll("j", ir.K(0), ir.K(63),
				ir.DoSerial("i", ir.K(0), ir.K(255),
					ir.Set(ir.At(c, ir.I("i"), ir.I("j")),
						ir.Add(ir.L(ir.At(c, ir.I("i"), ir.I("j"))),
							ir.L(ir.At(a, ir.I("i"), ir.K(5))))))),
		)
	})
	d := decisionFor(t, res, "A(i, 5)")
	if d.Technique != TechVPG || d.Case != 1 {
		t.Fatalf("decision = %+v, want case 1 VPG", d)
	}
	if !d.Hoisted {
		t.Error("DOALL-invariant vector prefetch not hoisted to prologue")
	}
	if d.Words != 256 {
		t.Errorf("words = %d, want 256", d.Words)
	}
	// The prologue must contain the vector prefetch.
	var doall *ir.Loop
	ir.WalkStmts(p.MainRoutine().Body, func(s ir.Stmt) bool {
		if l, ok := s.(*ir.Loop); ok && l.Parallel && l.Var == "j" {
			doall = l
		}
		return true
	})
	if doall == nil || len(doall.Prologue) != 1 {
		t.Fatalf("DOALL prologue missing: %+v", doall)
	}
	if _, ok := doall.Prologue[0].(*ir.VectorPrefetch); !ok {
		t.Errorf("prologue stmt = %T", doall.Prologue[0])
	}
}

// Vector too large for the cache constraint falls through to SP.
func TestVPGCapacityConstraintFallsToSP(t *testing.T) {
	_, res := compileFor(t, 2, func(b *ir.Builder) {
		a := b.SharedArray("A", 4096)
		c := b.SharedArray("C", 4096)
		b.Routine("main",
			ir.DoAll("w", ir.K(0), ir.K(4095), ir.Set(ir.At(a, ir.I("w")), ir.N(2))),
			ir.DoAll("j", ir.K(0), ir.K(0),
				// 4096-word vector > VectorMaxWords (512): VPG fails.
				ir.DoSerial("i", ir.K(0), ir.K(4095),
					ir.Set(ir.At(c, ir.I("i")),
						ir.L(ir.At(a, ir.I("i").Neg().AddConst(4095)))))),
		)
	})
	d := decisionFor(t, res, "A(-i + 4095)")
	if d.Technique != TechSP {
		t.Fatalf("decision = %+v, want SP fallback", d)
	}
	if d.Ahead < 1 {
		t.Errorf("ahead = %d", d.Ahead)
	}
}

// Static DOALL inner loop (case 2): VPG over the per-PE chunk.
func TestCase2DOALLVectorPerChunk(t *testing.T) {
	_, res := compileFor(t, 4, func(b *ir.Builder) {
		a := b.SharedArray("A", 1024)
		c := b.SharedArray("C", 1024)
		b.Routine("main",
			ir.DoAll("w", ir.K(0), ir.K(1023), ir.Set(ir.At(a, ir.I("w")), ir.N(2))),
			ir.DoAll("i", ir.K(0), ir.K(1023),
				ir.Set(ir.At(c, ir.I("i")), ir.L(ir.At(a, ir.I("i").Neg().AddConst(1023))))),
		)
	})
	d := decisionFor(t, res, "A(-i + 1023)")
	if d.Technique != TechVPG || d.Case != 2 {
		t.Fatalf("decision = %+v, want case 2 VPG", d)
	}
	if d.Words != 256 { // 1024 iterations / 4 PEs
		t.Errorf("words = %d, want per-chunk 256", d.Words)
	}
	if !d.Hoisted {
		t.Error("case 2 vector should sit in the DOALL prologue")
	}
}

// Dynamic DOALL (case 3): only MBP; with nothing to move across, bypass.
func TestCase3DynamicDOALLBypass(t *testing.T) {
	_, res := compileFor(t, 4, func(b *ir.Builder) {
		a := b.SharedArray("A", 512)
		c := b.SharedArray("C", 512)
		b.Routine("main",
			ir.DoAll("w", ir.K(0), ir.K(511), ir.Set(ir.At(a, ir.I("w")), ir.N(2))),
			ir.DoAllDynamic("i", ir.K(0), ir.K(511),
				ir.Set(ir.At(c, ir.I("i")), ir.L(ir.At(a, ir.I("i").Neg().AddConst(511))))),
		)
	})
	d := decisionFor(t, res, "A(-i + 511)")
	if d.Case != 3 || d.Technique != TechNone {
		t.Fatalf("decision = %+v, want case 3 bypass", d)
	}
	if !d.Ref.Bypass || !d.Ref.Stale {
		t.Error("bypassed ref flags not set")
	}
}

// Serial code segment (case 4): MBP moves the prefetch back across
// independent statements.
func TestCase4SegmentMBP(t *testing.T) {
	p, res := compileFor(t, 2, func(b *ir.Builder) {
		a := b.SharedArray("A", 64)
		c := b.SharedArray("C", 64)
		d := b.Array("D", 64)
		var pad []ir.Stmt
		pad = append(pad, ir.DoAll("w", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("w")), ir.N(2))))
		// Serial epoch: plenty of independent work, then the stale read.
		for k := 0; k < 30; k++ {
			pad = append(pad, ir.Set(ir.At(d, ir.K(int64(k))), ir.Sqrt(ir.N(float64(k)))))
		}
		pad = append(pad, ir.Set(ir.At(c, ir.K(0)), ir.L(ir.At(a, ir.K(63)))))
		b.Routine("main", pad...)
	})
	d := decisionFor(t, res, "A(63)")
	if d.Technique != TechMBP || d.Case != 4 {
		t.Fatalf("decision = %+v, want case 4 MBP", d)
	}
	if d.MovedBack < machine.T3D(2).MinMoveBackCycles {
		t.Errorf("moved back %d cycles", d.MovedBack)
	}
	// A Prefetch statement must now precede the use in main.
	var sawPrefetch bool
	for _, s := range p.MainRoutine().Body {
		if _, ok := s.(*ir.Prefetch); ok {
			sawPrefetch = true
		}
	}
	if !sawPrefetch {
		t.Error("no Prefetch statement inserted")
	}
}

// MBP must not move a prefetch across a write that may produce the value.
func TestMBPBlockedByConflictingWrite(t *testing.T) {
	_, res := compileFor(t, 2, func(b *ir.Builder) {
		a := b.SharedArray("A", 64)
		c := b.SharedArray("C", 64)
		d := b.Array("D", 64)
		var body []ir.Stmt
		body = append(body, ir.DoAll("w", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("w")), ir.N(2))))
		for k := 0; k < 30; k++ {
			body = append(body, ir.Set(ir.At(d, ir.K(int64(k))), ir.Sqrt(ir.N(float64(k)))))
		}
		// The write to A(63) right before the read blocks motion.
		body = append(body, ir.Set(ir.At(a, ir.K(63)), ir.N(5)))
		body = append(body, ir.Set(ir.At(c, ir.K(0)), ir.L(ir.At(a, ir.K(63)))))
		b.Routine("main", body...)
	})
	d := decisionFor(t, res, "A(63)")
	if d.Technique != TechNone {
		t.Fatalf("decision = %+v, want bypass (blocked by write)", d)
	}
	if !strings.Contains(d.Reason, "below minimum") {
		t.Errorf("reason = %q", d.Reason)
	}
}

// Loop containing if-statements (case 5): MBP within the loop body only.
func TestCase5LoopWithIf(t *testing.T) {
	_, res := compileFor(t, 2, func(b *ir.Builder) {
		a := b.SharedArray("A", 64)
		c := b.SharedArray("C", 64)
		d := b.Array("D", 64)
		var body []ir.Stmt
		for k := 0; k < 25; k++ {
			body = append(body, ir.Set(ir.At(d, ir.I("i")), ir.Sqrt(ir.L(ir.At(d, ir.I("i"))))))
		}
		body = append(body,
			ir.When(ir.CondOf(ir.CmpLT, ir.L(ir.At(d, ir.I("i"))), ir.N(10)),
				[]ir.Stmt{ir.Set(ir.At(c, ir.I("i")), ir.L(ir.At(a, ir.I("i").Neg().AddConst(63))))},
				nil))
		b.Routine("main",
			ir.DoAll("w", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("w")), ir.N(2))),
			ir.DoAll("j", ir.K(0), ir.K(0),
				ir.DoSerial("i", ir.K(0), ir.K(63), body...)),
		)
	})
	d := decisionFor(t, res, "A(-i + 63)")
	if d.Case != 5 {
		t.Fatalf("case = %d, want 5", d.Case)
	}
	// Use is the first statement of the branch: no room to move within the
	// branch -> bypass (respects the if boundary).
	if d.Technique != TechNone {
		t.Fatalf("decision = %+v, want bypass (if boundary)", d)
	}
}

// SP: queue capacity shared among streams of one loop; excess streams fall
// through.
func TestSPQueueBudget(t *testing.T) {
	_, res := compileFor(t, 2, func(b *ir.Builder) {
		a := b.SharedArray("A", 8192)
		c := b.SharedArray("C", 2048)
		// Inner serial loop with many distinct stale streams, strided so
		// group-spatial locality cannot merge them and the vector exceeds
		// capacity (stride 16 over 2048 iterations -> VPG words 2048 > 512).
		rd := func(off int64) ir.Expr {
			return ir.L(ir.At(a, ir.I("i").Neg().Scale(-1).AddConst(0).Add(ir.K(0)).Add(ir.I("i")).Neg().AddConst(8191-off*600)))
		}
		_ = rd
		sum := func(k int64) ir.Expr {
			return ir.L(ir.At(a, ir.I("i").Neg().AddConst(8191-k*640)))
		}
		b.Routine("main",
			ir.DoAll("w", ir.K(0), ir.K(8191), ir.Set(ir.At(a, ir.I("w")), ir.N(2))),
			ir.DoAll("j", ir.K(0), ir.K(0),
				ir.DoSerial("i", ir.K(0), ir.K(2047),
					ir.Set(ir.At(c, ir.I("i")),
						ir.Add(ir.Add(sum(0), sum(1)),
							ir.Add(sum(2), ir.Add(sum(3), ir.Add(sum(4), sum(5)))))))),
		)
	})
	sp := 0
	fallthroughs := 0
	for _, d := range res.Decisions {
		switch d.Technique {
		case TechSP:
			sp++
		case TechMBP, TechNone:
			fallthroughs++
		}
	}
	if sp == 0 {
		t.Fatal("no SP streams scheduled")
	}
	mp := machine.T3D(2)
	if int64(sp)*res.Decisions[0].Ahead > int64(mp.PrefetchQueueWords) {
		t.Errorf("queue overcommitted: %d streams × ahead %d > %d",
			sp, res.Decisions[0].Ahead, mp.PrefetchQueueWords)
	}
	if fallthroughs == 0 {
		t.Error("expected some streams to fall through on queue budget")
	}
}

func TestReportShape(t *testing.T) {
	_, res := compileFor(t, 4, func(b *ir.Builder) {
		a := b.SharedArray("A", 1024)
		c := b.SharedArray("C", 1024)
		b.Routine("main",
			ir.DoAll("w", ir.K(0), ir.K(1023), ir.Set(ir.At(a, ir.I("w")), ir.N(2))),
			ir.DoAll("i", ir.K(0), ir.K(1023),
				ir.Set(ir.At(c, ir.I("i")), ir.L(ir.At(a, ir.I("i").Neg().AddConst(1023))))),
		)
	})
	rep := res.Report()
	if !strings.Contains(rep, "VPG") || !strings.Contains(rep, "case 2") {
		t.Errorf("report:\n%s", rep)
	}
}
