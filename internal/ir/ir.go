// Package ir defines the loop-nest intermediate representation the CCDP
// compiler analyses operate on and the T3D execution engine interprets.
//
// The IR models the information a parallelized Fortran program (the paper's
// Polaris + CRAFT setting) carries: multi-dimensional shared arrays with
// block distributions, serial and DOALL loops with static or dynamic
// scheduling and compile-time-known or unknown bounds, assignments whose
// subscripts are affine expressions, if-statements, and calls. It also
// defines the prefetch operations the CCDP scheduler inserts: cache-line
// prefetches (moved back), software-pipelined prefetches (a loop
// annotation), vector prefetches, and bypass-fetch reference marks.
//
// Programs are built once (usually with Builder), then Finalize assigns
// stable reference IDs; analyses return maps keyed by those IDs and the
// transformation clones the program before mutating it.
package ir

import (
	"fmt"

	"repro/internal/expr"
)

// WordBytes is the machine word size: one float64 array element. All
// addresses in the system are word addresses.
const WordBytes = 8

// DistKind says how a shared array is spread over PEs.
type DistKind int

const (
	// DistNone: array is private (replicated per PE, or used only by the
	// sequential version).
	DistNone DistKind = iota
	// DistBlock: the array is cut into P contiguous slabs along its last
	// dimension (column blocks for column-major 2-D arrays, matching the
	// paper's block distribution of matrix columns); slab p lives in PE p's
	// local memory.
	DistBlock
)

func (k DistKind) String() string {
	switch k {
	case DistNone:
		return "none"
	case DistBlock:
		return "block"
	default:
		return fmt.Sprintf("DistKind(%d)", int(k))
	}
}

// Array declares a (possibly shared, possibly distributed) array.
// Linearization is column-major (Fortran): element (i0,i1,...) has offset
// i0 + i1*Dims[0] + i2*Dims[0]*Dims[1] + ...
type Array struct {
	Name   string
	Dims   []int64 // extent of each dimension
	Shared bool    // shared between PEs (subject to coherence)
	Dist   DistKind

	// Base is the array's first word address, assigned by mem.Layout;
	// always cache-line aligned (paper §4.2 requires arrays to start at a
	// cache line boundary for the group-spatial mapping to be exact).
	Base int64
}

// Size returns the number of elements (words) in the array.
func (a *Array) Size() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.Dims) }

// LinearOffset returns the column-major offset of the given index vector.
func (a *Array) LinearOffset(idx []int64) int64 {
	off := int64(0)
	stride := int64(1)
	for d := 0; d < len(a.Dims); d++ {
		off += idx[d] * stride
		stride *= a.Dims[d]
	}
	return off
}

// DimStride returns the linear stride (in words) of dimension d.
func (a *Array) DimStride(d int) int64 {
	stride := int64(1)
	for k := 0; k < d; k++ {
		stride *= a.Dims[k]
	}
	return stride
}

// RefID identifies an array reference site within a finalized program.
type RefID int

// Ref is a reference to an array element (Array != nil) or a scalar
// (Array == nil, Scalar set). Scalars are PE-private values with no memory
// cost; arrays live in the simulated distributed memory.
type Ref struct {
	ID     RefID
	Array  *Array
	Scalar string
	Index  []expr.Affine // one affine subscript per dimension

	// Flags set by the CCDP / BASE lowering on the cloned program.

	// Stale marks a read identified as potentially-stale by the analysis.
	Stale bool
	// Bypass makes the read fetch directly from (home) memory around the
	// cache: used for potentially-stale reads that were not worth
	// prefetching and as the fallback for dropped prefetches (paper §3.2).
	Bypass bool
	// NonCached marks a shared-data access in the BASE version: CRAFT
	// shared data is not cached at all (paper §5.2).
	NonCached bool
	// Prefetched marks a read covered by an inserted prefetch operation
	// (the read then extracts from the prefetch queue / hits the cache).
	Prefetched bool
}

// IsScalar reports whether the reference names a PE-private scalar.
func (r *Ref) IsScalar() bool { return r.Array == nil }

// Clone returns a deep copy of the reference (annotations included).
func (r *Ref) Clone() *Ref {
	cp := *r
	cp.Index = make([]expr.Affine, len(r.Index))
	copy(cp.Index, r.Index)
	return &cp
}

func (r *Ref) String() string {
	if r.IsScalar() {
		return r.Scalar
	}
	s := r.Array.Name + "("
	for i, ix := range r.Index {
		if i > 0 {
			s += ", "
		}
		s += ix.String()
	}
	return s + ")"
}

// --- Value expressions -------------------------------------------------

// Expr is a floating-point value expression evaluated by the engine.
type Expr interface{ isExpr() }

// Num is a float64 literal.
type Num struct{ V float64 }

// Load reads a value through a reference.
type Load struct{ Ref *Ref }

// IVal converts an affine integer expression (over induction variables and
// params) to float64; used to give initialization epochs real values.
type IVal struct{ A expr.Affine }

// BinOp enumerates binary arithmetic operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMin
	OpMax
)

// Bin is a binary arithmetic expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp int

const (
	OpNeg UnOp = iota
	OpAbs
	OpSqrt
)

// Un is a unary arithmetic expression.
type Un struct {
	Op UnOp
	X  Expr
}

func (Num) isExpr()  {}
func (Load) isExpr() {}
func (IVal) isExpr() {}
func (Bin) isExpr()  {}
func (Un) isExpr()   {}

// CmpOp enumerates comparison operators for If conditions.
type CmpOp int

const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

// Cond is a comparison between two value expressions.
type Cond struct {
	Op   CmpOp
	L, R Expr
}

// --- Statements ---------------------------------------------------------

// Stmt is a node in a routine body.
type Stmt interface{ isStmt() }

// SchedKind is the iteration-scheduling policy of a DOALL loop.
type SchedKind int

const (
	// SchedStatic assigns iterations to PEs in contiguous blocks aligned
	// with the data distribution (the paper's block scheduling).
	SchedStatic SchedKind = iota
	// SchedDynamic hands out iterations at run time; the compiler cannot
	// know the iteration→PE mapping (paper Fig. 2 case 3).
	SchedDynamic
)

func (k SchedKind) String() string {
	if k == SchedDynamic {
		return "dynamic"
	}
	return "static"
}

// Loop is a counted loop, serial or DOALL. Bounds are affine in enclosing
// induction variables and program params; Step must be a positive constant.
type Loop struct {
	Var          string
	Lo, Hi, Step expr.Affine
	Parallel     bool      // DOALL
	Sched        SchedKind // meaningful only when Parallel
	// BoundsKnown reports whether the compiler may treat the trip count as
	// known (paper Fig. 2 distinguishes known/unknown loop bounds). Bounds
	// are always evaluable at run time; this flag models compile-time
	// knowledge only.
	BoundsKnown bool
	// AlignExtent aligns a static DOALL's iteration→PE mapping with a
	// block distribution of the given extent (CRAFT's doshared alignment:
	// iteration v runs on the PE owning index v of a distributed dimension
	// of that extent). Zero means plain block scheduling over [Lo,Hi].
	AlignExtent int64
	Body        []Stmt

	// Pipelined holds the software-pipelined prefetches the scheduler
	// attached to this (inner) loop: each entry prefetches the target
	// reference Ahead iterations in advance, with a prologue before the
	// first iteration (Mowry-style scheduling realized as an annotation).
	Pipelined []PipelinedPrefetch

	// Prologue holds prefetch statements each PE executes once when it
	// enters this parallel epoch (after the epoch-boundary invalidation,
	// before its first iteration). Vector prefetches whose address is
	// invariant in the DOALL variable are hoisted here rather than above
	// the loop, so the epoch structure is unchanged and the prefetch still
	// follows the invalidation (coherence). Only meaningful when Parallel.
	Prologue []Stmt
}

// PipelinedPrefetch is one software-pipelined prefetch stream on a loop.
type PipelinedPrefetch struct {
	Target *Ref
	Ahead  int64 // iterations of lead distance
}

// Assign stores RHS into LHS.
type Assign struct {
	LHS *Ref
	RHS Expr
}

// If executes Then or Else depending on Cond.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// Call invokes a routine by name (no parameters: routines communicate
// through arrays and scalars, as the Fortran codes do through COMMON).
type Call struct{ Name string }

// Prefetch is a cache-line prefetch of a single reference, inserted by the
// moving-back scheduler some distance before the use.
type Prefetch struct {
	Target *Ref
	// MovedBack is the estimated cycle distance to the use (diagnostic).
	MovedBack int64
}

// VectorPrefetch fetches the block of addresses Target touches as LoopVar
// ranges over Lo..Hi (step Step): the pulled-out loop level of Gornish-style
// vector prefetch generation, realized on the T3D with shmem_get.
type VectorPrefetch struct {
	Target       *Ref
	LoopVar      string
	Lo, Hi, Step expr.Affine
	// Words is the compile-time estimate of the transfer size used when the
	// scheduler checked the cache/queue capacity constraints.
	Words int64
}

func (*Loop) isStmt()           {}
func (*Assign) isStmt()         {}
func (*If) isStmt()             {}
func (*Call) isStmt()           {}
func (*Prefetch) isStmt()       {}
func (*VectorPrefetch) isStmt() {}

// --- Program -------------------------------------------------------------

// Routine is a named body of statements.
type Routine struct {
	Name string
	Body []Stmt
}

// Program is a whole compilable/executable unit.
type Program struct {
	Name     string
	Arrays   []*Array
	Params   map[string]int64 // symbolic constants bound at compile time
	Routines map[string]*Routine
	Main     string // name of the entry routine

	refs []*Ref // populated by Finalize: refs[id] == ref with that ID
}

// Routine returns the named routine or nil.
func (p *Program) Routine(name string) *Routine { return p.Routines[name] }

// MainRoutine returns the entry routine.
func (p *Program) MainRoutine() *Routine { return p.Routines[p.Main] }

// ArrayByName returns the named array or nil.
func (p *Program) ArrayByName(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Param returns the value of a named compile-time parameter.
func (p *Program) Param(name string) (int64, bool) {
	v, ok := p.Params[name]
	return v, ok
}

// Refs returns the finalized reference table (index == RefID).
func (p *Program) Refs() []*Ref { return p.refs }

// Ref returns the reference with the given ID.
func (p *Program) Ref(id RefID) *Ref { return p.refs[int(id)] }

// Finalize assigns dense RefIDs to every reference site in the program (in
// deterministic pre-order over routines sorted by name, main first) and
// records the table. It must be called once after construction and again
// after a transformation introduces new references.
func (p *Program) Finalize() {
	p.refs = p.refs[:0]
	id := RefID(0)
	assign := func(r *Ref) {
		r.ID = id
		p.refs = append(p.refs, r)
		id++
	}
	for _, rt := range p.routinesInOrder() {
		WalkRefs(rt.Body, func(r *Ref, _ bool) { assign(r) })
	}
}

// routinesInOrder returns main first, then remaining routines sorted by name.
func (p *Program) routinesInOrder() []*Routine {
	out := []*Routine{}
	if m := p.MainRoutine(); m != nil {
		out = append(out, m)
	}
	names := make([]string, 0, len(p.Routines))
	for n := range p.Routines {
		if n != p.Main {
			names = append(names, n)
		}
	}
	sortStrings(names)
	for _, n := range names {
		out = append(out, p.Routines[n])
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
