package ir

import (
	"fmt"

	"repro/internal/expr"
)

// Validate checks the static well-formedness rules the analyses and the
// execution engine rely on:
//
//   - the main routine exists, calls resolve, and the call graph is acyclic
//     (no recursion, as in the paper's Fortran codes);
//   - loop steps are positive constants; loop bounds and subscripts only
//     use in-scope induction variables and declared params;
//   - array reference ranks match declarations;
//   - shared distributed arrays are distributed along their last dimension
//     (so per-PE slabs are contiguous in the word address space);
//   - DOALL loops are not nested inside other DOALL loops (the epoch model
//     has one level of parallelism, paper §3.1), and parallel loops do not
//     appear under if-statements at epoch level.
func Validate(p *Program) error {
	if p.MainRoutine() == nil {
		return fmt.Errorf("main routine %q not defined", p.Main)
	}
	for _, a := range p.Arrays {
		if a.Shared && a.Dist == DistBlock && a.Rank() == 0 {
			return fmt.Errorf("array %s: distributed array needs at least one dimension", a.Name)
		}
		for d, ext := range a.Dims {
			if ext < 1 {
				return fmt.Errorf("array %s: dimension %d has non-positive extent %d", a.Name, d, ext)
			}
		}
	}
	// Call-graph acyclicity.
	state := map[string]int{} // 0 unvisited, 1 in-progress, 2 done
	var visitRoutine func(name string) error
	var scanCalls func(body []Stmt) error
	scanCalls = func(body []Stmt) error {
		for _, s := range body {
			switch st := s.(type) {
			case *Call:
				if err := visitRoutine(st.Name); err != nil {
					return err
				}
			case *Loop:
				if err := scanCalls(st.Body); err != nil {
					return err
				}
			case *If:
				if err := scanCalls(st.Then); err != nil {
					return err
				}
				if err := scanCalls(st.Else); err != nil {
					return err
				}
			}
		}
		return nil
	}
	visitRoutine = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("recursive call cycle through routine %q", name)
		case 2:
			return nil
		}
		rt := p.Routine(name)
		if rt == nil {
			return fmt.Errorf("call to undefined routine %q", name)
		}
		state[name] = 1
		if err := scanCalls(rt.Body); err != nil {
			return err
		}
		state[name] = 2
		return nil
	}
	if err := visitRoutine(p.Main); err != nil {
		return err
	}

	// Per-routine scoping and structure. A routine may be called from
	// inside a parallel loop only if it contains no parallel loops itself;
	// we validate each routine in isolation against both possibilities.
	for _, rt := range p.Routines {
		v := &validator{prog: p, scope: map[string]bool{}}
		if err := v.stmts(rt.Body, false); err != nil {
			return fmt.Errorf("routine %s: %w", rt.Name, err)
		}
	}
	return nil
}

type validator struct {
	prog  *Program
	scope map[string]bool // in-scope induction variables
}

func (v *validator) stmts(body []Stmt, inParallel bool) error {
	for _, s := range body {
		if err := v.stmt(s, inParallel); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) stmt(s Stmt, inParallel bool) error {
	switch st := s.(type) {
	case *Loop:
		if st.Parallel && inParallel {
			return fmt.Errorf("DOALL loop %q nested inside another DOALL", st.Var)
		}
		if !st.Step.IsConst() || st.Step.ConstPart() <= 0 {
			return fmt.Errorf("loop %q: step must be a positive constant, got %v", st.Var, st.Step)
		}
		if v.scope[st.Var] {
			return fmt.Errorf("loop variable %q shadows an enclosing loop variable", st.Var)
		}
		if err := v.affine(st.Lo); err != nil {
			return fmt.Errorf("loop %q lower bound: %w", st.Var, err)
		}
		if err := v.affine(st.Hi); err != nil {
			return fmt.Errorf("loop %q upper bound: %w", st.Var, err)
		}
		if len(st.Prologue) > 0 && !st.Parallel {
			return fmt.Errorf("loop %q: prologue on a non-parallel loop", st.Var)
		}
		err := v.stmts(st.Prologue, inParallel)
		v.scope[st.Var] = true
		if err == nil {
			err = v.stmts(st.Body, inParallel || st.Parallel)
		}
		for i := range st.Pipelined {
			if err == nil {
				err = v.ref(st.Pipelined[i].Target)
			}
		}
		delete(v.scope, st.Var)
		return err
	case *Assign:
		if err := v.ref(st.LHS); err != nil {
			return err
		}
		return v.expr(st.RHS)
	case *If:
		if err := v.expr(st.Cond.L); err != nil {
			return err
		}
		if err := v.expr(st.Cond.R); err != nil {
			return err
		}
		if !inParallel && (ContainsParallelLoop(v.prog, st.Then) || ContainsParallelLoop(v.prog, st.Else)) {
			return fmt.Errorf("parallel loop under an if-statement at epoch level is not supported")
		}
		if err := v.stmts(st.Then, inParallel); err != nil {
			return err
		}
		return v.stmts(st.Else, inParallel)
	case *Call:
		callee := v.prog.Routine(st.Name)
		if callee == nil {
			return fmt.Errorf("call to undefined routine %q", st.Name)
		}
		if inParallel && ContainsParallelLoop(v.prog, callee.Body) {
			return fmt.Errorf("routine %q with parallel loops called inside a DOALL", st.Name)
		}
		return nil
	case *Prefetch:
		return v.ref(st.Target)
	case *VectorPrefetch:
		if v.scope[st.LoopVar] {
			return fmt.Errorf("vector prefetch loop var %q shadows an enclosing variable", st.LoopVar)
		}
		if err := v.affine(st.Lo); err != nil {
			return err
		}
		if err := v.affine(st.Hi); err != nil {
			return err
		}
		v.scope[st.LoopVar] = true
		err := v.ref(st.Target)
		delete(v.scope, st.LoopVar)
		return err
	default:
		return fmt.Errorf("unknown statement type %T", s)
	}
}

func (v *validator) ref(r *Ref) error {
	if r == nil {
		return fmt.Errorf("nil reference")
	}
	if r.IsScalar() {
		if r.Scalar == "" {
			return fmt.Errorf("scalar reference with empty name")
		}
		return nil
	}
	if v.prog.ArrayByName(r.Array.Name) != r.Array {
		return fmt.Errorf("reference to undeclared array %q", r.Array.Name)
	}
	if len(r.Index) != r.Array.Rank() {
		return fmt.Errorf("%s: got %d subscripts, want %d", r, len(r.Index), r.Array.Rank())
	}
	for _, ix := range r.Index {
		if err := v.affine(ix); err != nil {
			return fmt.Errorf("%s: %w", r, err)
		}
	}
	return nil
}

func (v *validator) affine(a expr.Affine) error {
	for _, name := range a.Vars() {
		if v.scope[name] {
			continue
		}
		if _, ok := v.prog.Params[name]; ok {
			continue
		}
		return fmt.Errorf("unbound variable %q (not a loop variable or param)", name)
	}
	return nil
}

func (v *validator) expr(e Expr) error {
	switch x := e.(type) {
	case Num:
		return nil
	case IVal:
		return v.affine(x.A)
	case Load:
		return v.ref(x.Ref)
	case Bin:
		if err := v.expr(x.L); err != nil {
			return err
		}
		return v.expr(x.R)
	case Un:
		return v.expr(x.X)
	default:
		return fmt.Errorf("unknown expression type %T", e)
	}
}
