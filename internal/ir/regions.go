package ir

// Region is one "inner loop or serial code segment" (LSC) — the unit both
// the prefetch target analysis (paper Fig. 1) and the prefetch scheduler
// (paper Fig. 2) iterate over.
type Region struct {
	// Loop is the inner loop; nil for a serial code segment.
	Loop *Loop
	// Stmts are the statements of the region: the loop body, or the run of
	// straight-line statements forming the segment.
	Stmts []Stmt
	// Owner points at the statement list that contains the region (the
	// parent body); Index is the position of the loop (or of the first
	// statement of the segment) within *Owner. The scheduler inserts
	// prefetch statements into *Owner.
	Owner *[]Stmt
	Index int
	// Len is the number of statements of the segment within *Owner
	// (1 for a loop region).
	Len int
	// Enclosing lists the loops enclosing the region, outermost first
	// (for a loop region, not including the loop itself).
	Enclosing []*Loop
	// InIf reports that the region sits inside an if-statement branch
	// (paper Fig. 2 case 6).
	InIf bool
	// Routine names the routine containing the region.
	Routine string
}

// IsLoop reports whether the region is an inner loop.
func (r *Region) IsLoop() bool { return r.Loop != nil }

// Regions decomposes every routine of the program into inner-loop and
// serial-segment regions. Loops that contain other loops are not regions
// themselves; their non-loop statement runs and their nested loops are.
func Regions(p *Program) []*Region {
	var out []*Region
	for _, rt := range p.routinesInOrder() {
		collectRegions(p, &rt.Body, rt.Name, nil, false, &out)
	}
	return out
}

func collectRegions(p *Program, body *[]Stmt, routine string, enclosing []*Loop, inIf bool, out *[]*Region) {
	stmts := *body
	runStart := -1
	flushRun := func(end int) {
		if runStart < 0 {
			return
		}
		*out = append(*out, &Region{
			Stmts:     stmts[runStart:end],
			Owner:     body,
			Index:     runStart,
			Len:       end - runStart,
			Enclosing: append([]*Loop(nil), enclosing...),
			InIf:      inIf,
			Routine:   routine,
		})
		runStart = -1
	}
	for i, s := range stmts {
		switch st := s.(type) {
		case *Loop:
			flushRun(i)
			if LoopIsInner(p, st) {
				*out = append(*out, &Region{
					Loop:      st,
					Stmts:     st.Body,
					Owner:     body,
					Index:     i,
					Len:       1,
					Enclosing: append([]*Loop(nil), enclosing...),
					InIf:      inIf,
					Routine:   routine,
				})
			} else {
				collectRegions(p, &st.Body, routine, append(enclosing, st), inIf, out)
			}
		case *If:
			flushRun(i)
			collectRegions(p, &st.Then, routine, enclosing, true, out)
			collectRegions(p, &st.Else, routine, enclosing, true, out)
		default:
			if runStart < 0 {
				runStart = i
			}
		}
	}
	flushRun(len(stmts))
}

// RefsIn returns the references appearing in the region's statements, with
// their read/write role. For a loop region this is the loop body.
func (r *Region) RefsIn() (reads, writes []*Ref) {
	WalkRefs(r.Stmts, func(ref *Ref, isWrite bool) {
		if isWrite {
			writes = append(writes, ref)
		} else {
			reads = append(reads, ref)
		}
	})
	return reads, writes
}
