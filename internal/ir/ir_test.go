package ir

import (
	"strings"
	"testing"
)

// buildTestProg builds a small two-epoch program:
//
//	doall i = 0, N-1:  A(i) = real(i)       (epoch 0, parallel)
//	s = A(0)                                 (epoch 1, serial)
func buildTestProg(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("test")
	n := b.Param("N", 16)
	a := b.SharedArray("A", 16)
	b.Routine("main",
		DoAll("i", K(0), n.AddConst(-1),
			Set(At(a, I("i")), IV(I("i"))),
		),
		Set(S("s"), L(At(a, K(0)))),
	)
	return b.Build()
}

func TestArrayLayoutHelpers(t *testing.T) {
	a := &Array{Name: "X", Dims: []int64{4, 3, 2}}
	if a.Size() != 24 || a.Rank() != 3 {
		t.Fatalf("Size=%d Rank=%d", a.Size(), a.Rank())
	}
	// column-major: (i,j,k) -> i + 4j + 12k
	if got := a.LinearOffset([]int64{1, 2, 1}); got != 1+8+12 {
		t.Errorf("LinearOffset = %d", got)
	}
	if a.DimStride(0) != 1 || a.DimStride(1) != 4 || a.DimStride(2) != 12 {
		t.Errorf("strides = %d,%d,%d", a.DimStride(0), a.DimStride(1), a.DimStride(2))
	}
}

func TestFinalizeAssignsDenseIDs(t *testing.T) {
	p := buildTestProg(t)
	refs := p.Refs()
	if len(refs) != 3 { // IVal has no ref; A(i) write, A(0) read, s write
		t.Fatalf("got %d refs, want 3", len(refs))
	}
	for i, r := range refs {
		if int(r.ID) != i {
			t.Errorf("ref %d has ID %d", i, r.ID)
		}
		if p.Ref(r.ID) != r {
			t.Errorf("Ref(%d) mismatch", r.ID)
		}
	}
}

func TestWalkRefsReadWrite(t *testing.T) {
	p := buildTestProg(t)
	var writes, reads []string
	WalkRefs(p.MainRoutine().Body, func(r *Ref, w bool) {
		if w {
			writes = append(writes, r.String())
		} else {
			reads = append(reads, r.String())
		}
	})
	if len(writes) != 2 || writes[0] != "A(i)" || writes[1] != "s" {
		t.Errorf("writes = %v", writes)
	}
	if len(reads) != 1 || reads[0] != "A(0)" {
		t.Errorf("reads = %v", reads)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mk := func(f func(b *Builder)) error {
		defer func() { recover() }()
		b := NewBuilder("bad")
		f(b)
		return Validate(b.BuildUnchecked())
	}

	if err := mk(func(b *Builder) {
		a := b.Array("A", 8)
		b.Routine("main", Set(At(a, I("i")), N(0))) // i unbound
	}); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("unbound var not caught: %v", err)
	}

	if err := mk(func(b *Builder) {
		b.Routine("main", CallTo("nope"))
	}); err == nil || !strings.Contains(err.Error(), "undefined routine") {
		t.Errorf("undefined call not caught: %v", err)
	}

	if err := mk(func(b *Builder) {
		b.Routine("main", CallTo("r1"))
		b.Routine("r1", CallTo("r1"))
	}); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursion not caught: %v", err)
	}

	if err := mk(func(b *Builder) {
		a := b.Array("A", 8)
		b.Routine("main",
			DoAll("i", K(0), K(7),
				DoAll("j", K(0), K(7), Set(At(a, I("j")), N(1)))))
	}); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Errorf("nested DOALL not caught: %v", err)
	}

	if err := mk(func(b *Builder) {
		a := b.Array("A", 8)
		b.Routine("main",
			DoSerial("i", K(0), K(3),
				DoSerial("i", K(0), K(3), Set(At(a, I("i")), N(1)))))
	}); err == nil || !strings.Contains(err.Error(), "shadows") {
		t.Errorf("shadowing not caught: %v", err)
	}

	if err := mk(func(b *Builder) {
		a := b.Array("A", 8)
		b.Routine("main",
			When(CondOf(CmpLT, N(0), N(1)),
				[]Stmt{DoAll("i", K(0), K(7), Set(At(a, I("i")), N(1)))}, nil))
	}); err == nil || !strings.Contains(err.Error(), "if-statement at epoch level") {
		t.Errorf("parallel under if not caught: %v", err)
	}

	if err := mk(func(b *Builder) {
		ghost := &Array{Name: "ghost", Dims: []int64{4}}
		a := b.Array("A", 4)
		b.Routine("main", Set(At(a, K(0)), L(At(ghost, K(0)))))
	}); err == nil || !strings.Contains(err.Error(), "undeclared array") {
		t.Errorf("undeclared array not caught: %v", err)
	}
}

func TestValidateRankMismatch(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Array("A", 4, 4)
	r := &Ref{Array: a, Index: nil} // wrong rank
	b.Routine("main", &Assign{LHS: r, RHS: Num{V: 1}})
	if err := Validate(b.BuildUnchecked()); err == nil || !strings.Contains(err.Error(), "subscripts") {
		t.Errorf("rank mismatch not caught: %v", err)
	}
}

func TestCloneIsDeepForStmtsAndRefs(t *testing.T) {
	p := buildTestProg(t)
	cp := CloneProgram(p)
	cp.Finalize()
	// Mutate the clone's first write ref.
	var cloneRef *Ref
	WalkRefs(cp.MainRoutine().Body, func(r *Ref, w bool) {
		if w && cloneRef == nil {
			cloneRef = r
		}
	})
	cloneRef.Stale = true
	var origStale bool
	WalkRefs(p.MainRoutine().Body, func(r *Ref, w bool) {
		if r.Stale {
			origStale = true
		}
	})
	if origStale {
		t.Error("mutating clone affected original")
	}
	if cp.ArrayByName("A") == p.ArrayByName("A") {
		t.Error("clone should carry its own array metadata (layout Base is per-compile)")
	}
	var cloneArrRef *Ref
	WalkRefs(cp.MainRoutine().Body, func(r *Ref, _ bool) {
		if cloneArrRef == nil && !r.IsScalar() {
			cloneArrRef = r
		}
	})
	if cloneArrRef != nil && cloneArrRef.Array != cp.ArrayByName(cloneArrRef.Array.Name) {
		t.Error("cloned refs should point at the clone's arrays")
	}
}

func TestEpochGraphSimple(t *testing.T) {
	p := buildTestProg(t)
	g, err := BuildEpochGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 {
		t.Fatalf("got %d epochs, want 2: %+v", len(g.Nodes), g.Nodes)
	}
	if !g.Nodes[0].Parallel || g.Nodes[1].Parallel {
		t.Errorf("epoch kinds: %s, %s", g.Nodes[0].Kind(), g.Nodes[1].Kind())
	}
	if len(g.Succ[0]) != 1 || g.Succ[0][0] != 1 {
		t.Errorf("Succ[0] = %v", g.Succ[0])
	}
	if len(g.Succ[1]) != 0 {
		t.Errorf("Succ[1] = %v", g.Succ[1])
	}
}

func TestEpochGraphTimeStepLoop(t *testing.T) {
	// do t = 1,3 { doall i ...; serial; doall j ... } => 3 nodes, back edge 2->0
	b := NewBuilder("ts")
	a := b.SharedArray("A", 8)
	b.Routine("main",
		DoSerial("t", K(1), K(3),
			DoAll("i", K(0), K(7), Set(At(a, I("i")), IV(I("i")))),
			Set(S("x"), L(At(a, K(0)))),
			DoAll("j", K(0), K(7), Set(At(a, I("j")), Add(L(At(a, I("j"))), N(1)))),
		),
	)
	p := b.Build()
	g, err := BuildEpochGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 3 {
		t.Fatalf("got %d epochs, want 3", len(g.Nodes))
	}
	hasBack := false
	for _, s := range g.Succ[2] {
		if s == 0 {
			hasBack = true
		}
	}
	if !hasBack {
		t.Errorf("missing back edge from node 2 to 0: %v", g.Succ[2])
	}
	if len(g.Nodes[0].Context) != 1 || g.Nodes[0].Context[0].Var != "t" {
		t.Errorf("context = %+v", g.Nodes[0].Context)
	}
	lo, hi, err := g.ContextBounds(g.Nodes[0])
	if err != nil || lo["t"] != 1 || hi["t"] != 3 {
		t.Errorf("ContextBounds t = [%d,%d], err=%v", lo["t"], hi["t"], err)
	}

	// Dynamic instances: 3 iterations × 3 epochs = 9 in order.
	var seq []int
	var tvals []int64
	err = g.ForEachEpochInstance(func(inst EpochInstance) error {
		seq = append(seq, inst.Node.Index)
		tvals = append(tvals, inst.Env["t"])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSeq := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(seq) != 9 {
		t.Fatalf("instances = %v", seq)
	}
	for i := range wantSeq {
		if seq[i] != wantSeq[i] {
			t.Fatalf("instance order %v, want %v", seq, wantSeq)
		}
		if tvals[i] != int64(i/3+1) {
			t.Fatalf("t values %v", tvals)
		}
	}
}

func TestEpochGraphInterprocedural(t *testing.T) {
	b := NewBuilder("ip")
	a := b.SharedArray("A", 8)
	b.Routine("main",
		Set(S("x"), N(0)),
		CallTo("phase"),
		Set(S("y"), N(1)),
	)
	b.Routine("phase",
		DoAll("i", K(0), K(7), Set(At(a, I("i")), IV(I("i")))),
	)
	p := b.Build()
	g, err := BuildEpochGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	// serial(x=0), parallel(from callee), serial(y=1)
	if len(g.Nodes) != 3 || g.Nodes[0].Parallel || !g.Nodes[1].Parallel || g.Nodes[2].Parallel {
		t.Fatalf("epochs = %d: %v %v %v", len(g.Nodes), g.Nodes[0].Kind(), g.Nodes[1].Kind(), g.Nodes[2].Kind())
	}
}

func TestTripCount(t *testing.T) {
	b := NewBuilder("tc")
	n := b.Param("N", 10)
	a := b.Array("A", 10)
	l := DoSerial("i", K(2), n.AddConst(-1), Set(At(a, I("i")), N(0)))
	b.Routine("main", l)
	p := b.Build()
	if tc, ok := TripCount(p, l); !ok || tc != 8 {
		t.Errorf("TripCount = %d, %v", tc, ok)
	}
	l2 := &Loop{Var: "j", Lo: K(0), Hi: I("m"), Step: K(1)}
	if _, ok := TripCount(p, l2); ok {
		t.Error("TripCount with unbound bound should fail")
	}
}

func TestInnerLoopAndIfDetection(t *testing.T) {
	inner := DoSerial("j", K(0), K(3))
	outer := DoSerial("i", K(0), K(3), inner)
	if IsInnerLoop(outer) || !IsInnerLoop(inner) {
		t.Error("IsInnerLoop wrong")
	}
	withIf := DoSerial("i", K(0), K(3),
		When(CondOf(CmpLT, N(0), N(1)), []Stmt{Set(S("x"), N(1))}, nil))
	if !LoopContainsIf(withIf) || LoopContainsIf(inner) {
		t.Error("LoopContainsIf wrong")
	}
}

func TestFormatStable(t *testing.T) {
	p := buildTestProg(t)
	s1, s2 := Format(p), Format(p)
	if s1 != s2 {
		t.Error("Format not deterministic")
	}
	for _, want := range []string{"program test", "doall[static] i = 0, 15", "A(i) = real(i)", "s = A(0)"} {
		if !strings.Contains(s1, want) {
			t.Errorf("Format output missing %q:\n%s", want, s1)
		}
	}
}

func TestRefCloneIndependence(t *testing.T) {
	p := buildTestProg(t)
	r := p.Refs()[0]
	c := r.Clone()
	c.Stale = true
	c.Index[0] = c.Index[0].AddConst(5)
	if r.Stale || r.Index[0].Equal(c.Index[0]) {
		t.Error("Ref.Clone is not deep")
	}
}
