package ir

import (
	"fmt"

	"repro/internal/expr"
)

// The paper's execution model (§3.1) partitions a program into a sequence
// of epochs: a parallel epoch is one DOALL loop whose iterations form
// concurrent tasks; a serial epoch is a run of sequential code executed by
// one task. Synchronization and a memory update happen at every epoch
// boundary.
//
// In the IR, epochs are discovered from the main routine: top-level DOALL
// loops become parallel epochs, maximal runs of sequential statements become
// serial epochs, serial loops that *contain* DOALLs (time-step loops) become
// cycles in the epoch graph, and calls to routines containing DOALLs are
// spliced in (interprocedural epoch discovery).

// EpochNode is a static epoch.
type EpochNode struct {
	Index    int
	Parallel bool
	// Loop is the DOALL of a parallel epoch (nil for serial epochs).
	Loop *Loop
	// Stmts are the statements of a serial epoch (nil for parallel epochs).
	Stmts []Stmt
	// Context lists the enclosing epoch-level serial loops, outermost
	// first: their induction variables are in scope inside the epoch.
	Context []*Loop
}

// Kind returns "parallel" or "serial".
func (n *EpochNode) Kind() string {
	if n.Parallel {
		return "parallel"
	}
	return "serial"
}

// EpochGraph is the epoch-level control-flow graph of a program: nodes in
// program order, consecutive edges, plus a back edge for every epoch-level
// serial loop.
type EpochGraph struct {
	Prog  *Program
	Nodes []*EpochNode
	// Succ[i] lists successors of node i.
	Succ [][]int
	// Pred[i] lists predecessors of node i.
	Pred [][]int

	items []epochItem // structured form driving the instance iterator
}

type epochItem interface{ isEpochItem() }

type epochLeaf struct{ node *EpochNode }

type epochLoop struct {
	loop  *Loop
	items []epochItem
}

func (epochLeaf) isEpochItem() {}
func (epochLoop) isEpochItem() {}

// BuildEpochGraph partitions the program's main routine into epochs.
func BuildEpochGraph(p *Program) (*EpochGraph, error) {
	g := &EpochGraph{Prog: p}
	items, err := g.partition(p.MainRoutine().Body, nil, map[string]bool{})
	if err != nil {
		return nil, err
	}
	g.items = items
	// Edges: consecutive program order plus loop back edges.
	n := len(g.Nodes)
	g.Succ = make([][]int, n)
	g.Pred = make([][]int, n)
	for i := 0; i+1 < n; i++ {
		g.addEdge(i, i+1)
	}
	var backEdges func(items []epochItem)
	backEdges = func(items []epochItem) {
		for _, it := range items {
			if el, ok := it.(epochLoop); ok {
				first, last, ok2 := span(el.items)
				if ok2 && last >= first {
					g.addEdge(last, first)
				}
				backEdges(el.items)
			}
		}
	}
	backEdges(items)
	return g, nil
}

func (g *EpochGraph) addEdge(from, to int) {
	for _, s := range g.Succ[from] {
		if s == to {
			return
		}
	}
	g.Succ[from] = append(g.Succ[from], to)
	g.Pred[to] = append(g.Pred[to], from)
}

// span returns the first and last node indices covered by an item list.
func span(items []epochItem) (first, last int, ok bool) {
	first, last = -1, -1
	var walk func(items []epochItem)
	walk = func(items []epochItem) {
		for _, it := range items {
			switch x := it.(type) {
			case epochLeaf:
				if first < 0 {
					first = x.node.Index
				}
				last = x.node.Index
			case epochLoop:
				walk(x.items)
			}
		}
	}
	walk(items)
	return first, last, first >= 0
}

// partition splits a statement list into epoch items. ctx is the stack of
// enclosing epoch-level serial loops; seen guards against call cycles.
func (g *EpochGraph) partition(body []Stmt, ctx []*Loop, inlining map[string]bool) ([]epochItem, error) {
	var items []epochItem
	var run []Stmt
	flush := func() {
		if len(run) == 0 {
			return
		}
		node := &EpochNode{Index: len(g.Nodes), Stmts: run, Context: append([]*Loop(nil), ctx...)}
		g.Nodes = append(g.Nodes, node)
		items = append(items, epochLeaf{node: node})
		run = nil
	}
	for _, s := range body {
		switch st := s.(type) {
		case *Loop:
			switch {
			case st.Parallel:
				flush()
				node := &EpochNode{Index: len(g.Nodes), Parallel: true, Loop: st,
					Context: append([]*Loop(nil), ctx...)}
				g.Nodes = append(g.Nodes, node)
				items = append(items, epochLeaf{node: node})
			case ContainsParallelLoop(g.Prog, st.Body):
				flush()
				sub, err := g.partition(st.Body, append(ctx, st), inlining)
				if err != nil {
					return nil, err
				}
				items = append(items, epochLoop{loop: st, items: sub})
			default:
				run = append(run, st)
			}
		case *Call:
			callee := g.Prog.Routine(st.Name)
			if callee == nil {
				return nil, fmt.Errorf("ir: epoch partition: undefined routine %q", st.Name)
			}
			if ContainsParallelLoop(g.Prog, callee.Body) {
				if inlining[st.Name] {
					return nil, fmt.Errorf("ir: epoch partition: call cycle through %q", st.Name)
				}
				flush()
				inlining[st.Name] = true
				sub, err := g.partition(callee.Body, ctx, inlining)
				delete(inlining, st.Name)
				if err != nil {
					return nil, err
				}
				items = append(items, sub...)
			} else {
				run = append(run, st)
			}
		default:
			run = append(run, s)
		}
	}
	flush()
	return items, nil
}

// ContextBounds returns lo/hi range maps for every context loop variable of
// node n, evaluated against the program params (context loop bounds may
// reference outer context vars; those are resolved outer-in using their own
// extreme values, which is exact for the rectangular time-step loops the
// workloads use).
func (g *EpochGraph) ContextBounds(n *EpochNode) (lo, hi map[string]int64, err error) {
	lo = map[string]int64{}
	hi = map[string]int64{}
	env := map[string]int64{}
	for k, v := range g.Prog.Params {
		env[k] = v
	}
	for _, l := range n.Context {
		lmin, _, ok1 := l.Lo.Bounds(lo, hi)
		if !ok1 {
			if v, e := l.Lo.Eval(env); e == nil {
				lmin = v
			} else {
				return nil, nil, fmt.Errorf("ir: cannot bound context loop %q lower bound", l.Var)
			}
		}
		_, hmax, ok2 := l.Hi.Bounds(lo, hi)
		if !ok2 {
			if v, e := l.Hi.Eval(env); e == nil {
				hmax = v
			} else {
				return nil, nil, fmt.Errorf("ir: cannot bound context loop %q upper bound", l.Var)
			}
		}
		lo[l.Var] = lmin
		hi[l.Var] = hmax
		env[l.Var] = lmin
	}
	// Params are also usable as "bounded" variables (constant range).
	for k, v := range g.Prog.Params {
		lo[k] = v
		hi[k] = v
	}
	return lo, hi, nil
}

// EpochInstance is one dynamic occurrence of an epoch node.
type EpochInstance struct {
	Node *EpochNode
	// Env binds the context loop variables (and nothing else) for this
	// occurrence.
	Env map[string]int64
}

// ForEachEpochInstance drives the epoch-level control flow, invoking fn for
// every dynamic epoch in execution order. Context loop bounds are evaluated
// against params and outer context variables. fn returning an error aborts.
func (g *EpochGraph) ForEachEpochInstance(fn func(EpochInstance) error) error {
	env := map[string]int64{}
	for k, v := range g.Prog.Params {
		env[k] = v
	}
	var run func(items []epochItem) error
	run = func(items []epochItem) error {
		for _, it := range items {
			switch x := it.(type) {
			case epochLeaf:
				ctxEnv := map[string]int64{}
				for _, l := range x.node.Context {
					ctxEnv[l.Var] = env[l.Var]
				}
				if err := fn(EpochInstance{Node: x.node, Env: ctxEnv}); err != nil {
					return err
				}
			case epochLoop:
				lo, err := x.loop.Lo.Eval(env)
				if err != nil {
					return err
				}
				hi, err := x.loop.Hi.Eval(env)
				if err != nil {
					return err
				}
				step := x.loop.Step.ConstPart()
				for v := lo; v <= hi; v += step {
					env[x.loop.Var] = v
					if err := run(x.items); err != nil {
						return err
					}
				}
				delete(env, x.loop.Var)
			}
		}
		return nil
	}
	return run(g.items)
}

// EpochOfStmt returns the epoch node whose statements (recursively) contain
// the given statement, or nil. Used by diagnostics.
func (g *EpochGraph) EpochOfStmt(target Stmt) *EpochNode {
	for _, n := range g.Nodes {
		var body []Stmt
		if n.Parallel {
			body = []Stmt{n.Loop}
		} else {
			body = n.Stmts
		}
		found := false
		WalkStmts(body, func(s Stmt) bool {
			if s == target {
				found = true
			}
			return !found
		})
		if found {
			return n
		}
		// Serial epochs may contain calls to serial routines.
		for _, s := range body {
			if c, ok := s.(*Call); ok {
				if rt := g.Prog.Routine(c.Name); rt != nil {
					WalkStmts(rt.Body, func(s Stmt) bool {
						if s == target {
							found = true
						}
						return !found
					})
				}
			}
		}
		if found {
			return n
		}
	}
	return nil
}

// TripCount returns the compile-time trip count of a loop when its bounds
// are constant after parameter substitution; ok is false otherwise.
func TripCount(p *Program, l *Loop) (int64, bool) {
	env := map[string]int64{}
	for k, v := range p.Params {
		env[k] = v
	}
	lo, err1 := l.Lo.Eval(env)
	hi, err2 := l.Hi.Eval(env)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	step := l.Step.ConstPart()
	if hi < lo {
		return 0, true
	}
	return (hi-lo)/step + 1, true
}

// Iterations is a convenience wrapper returning the affine trip-count
// expression (hi-lo+step)/step only when step is 1: (hi - lo + 1).
func Iterations(l *Loop) (expr.Affine, bool) {
	if l.Step.ConstPart() != 1 {
		return expr.Affine{}, false
	}
	return l.Hi.Sub(l.Lo).AddConst(1), true
}
