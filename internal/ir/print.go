package ir

import (
	"fmt"
	"strings"
)

// Format renders a program in a Fortran-flavoured pseudo-syntax for
// diagnostics and the ccdpc driver. It is stable (deterministic) so tests
// can compare output.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	params := make([]string, 0, len(p.Params))
	for k := range p.Params {
		params = append(params, k)
	}
	sortStrings(params)
	for _, k := range params {
		fmt.Fprintf(&b, "  param %s = %d\n", k, p.Params[k])
	}
	for _, a := range p.Arrays {
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = fmt.Sprintf("%d", d)
		}
		attr := "private"
		if a.Shared {
			attr = fmt.Sprintf("shared, dist=%s", a.Dist)
		}
		fmt.Fprintf(&b, "  real %s(%s)  ! %s\n", a.Name, strings.Join(dims, ","), attr)
	}
	for _, rt := range p.routinesInOrder() {
		fmt.Fprintf(&b, "routine %s\n", rt.Name)
		formatStmts(&b, rt.Body, 1)
		b.WriteString("end\n")
	}
	return b.String()
}

// FormatStmts renders a statement list (exported for phase dumps).
func FormatStmts(body []Stmt) string {
	var b strings.Builder
	formatStmts(&b, body, 0)
	return b.String()
}

func formatStmts(b *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch st := s.(type) {
		case *Loop:
			kw := "do"
			if st.Parallel {
				kw = "doall[" + st.Sched.String() + "]"
			}
			bk := ""
			if !st.BoundsKnown {
				bk = " ?bounds"
			}
			if st.AlignExtent > 0 {
				bk += fmt.Sprintf(" align=%d", st.AlignExtent)
			}
			step := ""
			if st.Step.ConstPart() != 1 {
				step = fmt.Sprintf(", %v", st.Step)
			}
			fmt.Fprintf(b, "%s%s %s = %v, %v%s%s\n", ind, kw, st.Var, st.Lo, st.Hi, step, bk)
			if len(st.Prologue) > 0 {
				fmt.Fprintf(b, "%s  !prologue (per PE, after invalidation):\n", ind)
				formatStmts(b, st.Prologue, depth+1)
			}
			for _, pp := range st.Pipelined {
				fmt.Fprintf(b, "%s  !pipelined prefetch %s ahead=%d\n", ind, pp.Target, pp.Ahead)
			}
			formatStmts(b, st.Body, depth+1)
			fmt.Fprintf(b, "%senddo\n", ind)
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s\n", ind, refStr(st.LHS), exprStr(st.RHS))
		case *If:
			fmt.Fprintf(b, "%sif (%s %s %s) then\n", ind, exprStr(st.Cond.L), cmpStr(st.Cond.Op), exprStr(st.Cond.R))
			formatStmts(b, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%selse\n", ind)
				formatStmts(b, st.Else, depth+1)
			}
			fmt.Fprintf(b, "%sendif\n", ind)
		case *Call:
			fmt.Fprintf(b, "%scall %s\n", ind, st.Name)
		case *Prefetch:
			fmt.Fprintf(b, "%sprefetch %s  ! moved back %d cycles\n", ind, refStr(st.Target), st.MovedBack)
		case *VectorPrefetch:
			fmt.Fprintf(b, "%svprefetch %s over %s = %v, %v  ! %d words\n",
				ind, refStr(st.Target), st.LoopVar, st.Lo, st.Hi, st.Words)
		}
	}
}

func refStr(r *Ref) string {
	s := r.String()
	var marks []string
	if r.Stale {
		marks = append(marks, "stale")
	}
	if r.Bypass {
		marks = append(marks, "bypass")
	}
	if r.NonCached {
		marks = append(marks, "nocache")
	}
	if r.Prefetched {
		marks = append(marks, "pf")
	}
	if len(marks) > 0 {
		s += "{" + strings.Join(marks, ",") + "}"
	}
	return s
}

func exprStr(e Expr) string {
	switch x := e.(type) {
	case Num:
		return fmt.Sprintf("%g", x.V)
	case IVal:
		return fmt.Sprintf("real(%v)", x.A)
	case Load:
		return refStr(x.Ref)
	case Bin:
		op := map[BinOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/"}[x.Op]
		if x.Op == OpMin {
			return fmt.Sprintf("min(%s, %s)", exprStr(x.L), exprStr(x.R))
		}
		if x.Op == OpMax {
			return fmt.Sprintf("max(%s, %s)", exprStr(x.L), exprStr(x.R))
		}
		return fmt.Sprintf("(%s %s %s)", exprStr(x.L), op, exprStr(x.R))
	case Un:
		switch x.Op {
		case OpNeg:
			return fmt.Sprintf("(-%s)", exprStr(x.X))
		case OpAbs:
			return fmt.Sprintf("abs(%s)", exprStr(x.X))
		case OpSqrt:
			return fmt.Sprintf("sqrt(%s)", exprStr(x.X))
		}
	}
	return "?"
}

func cmpStr(op CmpOp) string {
	switch op {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	}
	return "?"
}
