package ir

import (
	"fmt"

	"repro/internal/expr"
)

// Builder constructs programs tersely. Workload definitions and tests use
// it; it panics on misuse (construction happens at init/test time, never on
// a run-time data path).
type Builder struct {
	prog *Program
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{
		Name:     name,
		Params:   map[string]int64{},
		Routines: map[string]*Routine{},
	}}
}

// Param defines a compile-time integer parameter and returns it as an
// affine expression for use in bounds and subscripts.
func (b *Builder) Param(name string, val int64) expr.Affine {
	b.prog.Params[name] = val
	return expr.Const(val)
}

// Array declares a private (non-shared) array.
func (b *Builder) Array(name string, dims ...int64) *Array {
	return b.addArray(name, dims, false, DistNone)
}

// SharedArray declares a shared array block-distributed along its last
// dimension.
func (b *Builder) SharedArray(name string, dims ...int64) *Array {
	return b.addArray(name, dims, true, DistBlock)
}

func (b *Builder) addArray(name string, dims []int64, shared bool, dist DistKind) *Array {
	if b.prog.ArrayByName(name) != nil {
		panic(fmt.Sprintf("ir: duplicate array %q", name))
	}
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("ir: array %q has non-positive extent %d", name, d))
		}
	}
	a := &Array{Name: name, Dims: append([]int64(nil), dims...), Shared: shared, Dist: dist}
	b.prog.Arrays = append(b.prog.Arrays, a)
	return a
}

// Routine defines a routine with the given body. The first routine defined
// becomes main unless SetMain overrides it.
func (b *Builder) Routine(name string, body ...Stmt) *Routine {
	if _, dup := b.prog.Routines[name]; dup {
		panic(fmt.Sprintf("ir: duplicate routine %q", name))
	}
	rt := &Routine{Name: name, Body: body}
	b.prog.Routines[name] = rt
	if b.prog.Main == "" {
		b.prog.Main = name
	}
	return rt
}

// SetMain selects the entry routine.
func (b *Builder) SetMain(name string) { b.prog.Main = name }

// Build finalizes and returns the program.
func (b *Builder) Build() *Program {
	p := b.prog
	p.Finalize()
	if err := Validate(p); err != nil {
		panic(fmt.Sprintf("ir: invalid program %q: %v", p.Name, err))
	}
	return p
}

// BuildUnchecked finalizes without validation (for tests that exercise the
// validator itself).
func (b *Builder) BuildUnchecked() *Program {
	b.prog.Finalize()
	return b.prog
}

// --- Statement/expression helpers ---------------------------------------

// I returns the affine expression for an induction variable or parameter.
func I(name string) expr.Affine { return expr.Var(name) }

// K returns a constant affine expression.
func K(v int64) expr.Affine { return expr.Const(v) }

// At builds an array reference with the given affine subscripts.
func At(a *Array, idx ...expr.Affine) *Ref {
	if len(idx) != a.Rank() {
		panic(fmt.Sprintf("ir: %s expects %d subscripts, got %d", a.Name, a.Rank(), len(idx)))
	}
	return &Ref{Array: a, Index: append([]expr.Affine(nil), idx...)}
}

// S builds a scalar reference.
func S(name string) *Ref { return &Ref{Scalar: name} }

// DoSerial builds a serial loop with compile-time-known bounds.
func DoSerial(v string, lo, hi expr.Affine, body ...Stmt) *Loop {
	return &Loop{Var: v, Lo: lo, Hi: hi, Step: expr.Const(1), BoundsKnown: true, Body: body}
}

// DoSerialUnknown builds a serial loop whose trip count the compiler must
// treat as unknown.
func DoSerialUnknown(v string, lo, hi expr.Affine, body ...Stmt) *Loop {
	return &Loop{Var: v, Lo: lo, Hi: hi, Step: expr.Const(1), BoundsKnown: false, Body: body}
}

// DoAll builds a statically-scheduled DOALL loop with known bounds.
func DoAll(v string, lo, hi expr.Affine, body ...Stmt) *Loop {
	return &Loop{Var: v, Lo: lo, Hi: hi, Step: expr.Const(1), Parallel: true,
		Sched: SchedStatic, BoundsKnown: true, Body: body}
}

// DoAllAligned builds a statically-scheduled DOALL whose iteration→PE
// mapping is aligned with a block distribution of the given extent.
func DoAllAligned(v string, lo, hi expr.Affine, extent int64, body ...Stmt) *Loop {
	l := DoAll(v, lo, hi, body...)
	l.AlignExtent = extent
	return l
}

// DoAllDynamic builds a dynamically-scheduled DOALL loop.
func DoAllDynamic(v string, lo, hi expr.Affine, body ...Stmt) *Loop {
	return &Loop{Var: v, Lo: lo, Hi: hi, Step: expr.Const(1), Parallel: true,
		Sched: SchedDynamic, BoundsKnown: true, Body: body}
}

// Step returns a copy of the loop with the given constant step.
func Step(l *Loop, step int64) *Loop {
	if step <= 0 {
		panic("ir: loop step must be positive")
	}
	l.Step = expr.Const(step)
	return l
}

// Set builds an assignment statement.
func Set(lhs *Ref, rhs Expr) *Assign { return &Assign{LHS: lhs, RHS: rhs} }

// L loads through a reference.
func L(r *Ref) Expr { return Load{Ref: r} }

// N is a float literal expression.
func N(v float64) Expr { return Num{V: v} }

// IV embeds an affine integer value as a float expression.
func IV(a expr.Affine) Expr { return IVal{A: a} }

// Add, Sub, Mul, Div, Minv, Maxv build binary arithmetic expressions.
func Add(l, r Expr) Expr  { return Bin{Op: OpAdd, L: l, R: r} }
func Sub(l, r Expr) Expr  { return Bin{Op: OpSub, L: l, R: r} }
func Mul(l, r Expr) Expr  { return Bin{Op: OpMul, L: l, R: r} }
func Div(l, r Expr) Expr  { return Bin{Op: OpDiv, L: l, R: r} }
func Minv(l, r Expr) Expr { return Bin{Op: OpMin, L: l, R: r} }
func Maxv(l, r Expr) Expr { return Bin{Op: OpMax, L: l, R: r} }

// Neg, Abs, Sqrt build unary expressions.
func Neg(x Expr) Expr  { return Un{Op: OpNeg, X: x} }
func Abs(x Expr) Expr  { return Un{Op: OpAbs, X: x} }
func Sqrt(x Expr) Expr { return Un{Op: OpSqrt, X: x} }

// When builds an if-statement.
func When(cond Cond, then []Stmt, els []Stmt) *If {
	return &If{Cond: cond, Then: then, Else: els}
}

// CondOf builds a comparison condition.
func CondOf(op CmpOp, l, r Expr) Cond { return Cond{Op: op, L: l, R: r} }

// CallTo builds a call statement.
func CallTo(name string) *Call { return &Call{Name: name} }
