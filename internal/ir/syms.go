package ir

import "sort"

// SymTable interns the names a program's execution environment is keyed by:
// every PE-private scalar and every integer variable (loop induction
// variables, program params, vector-prefetch pull variables) gets a dense,
// deterministic index. The execution engine resolves names to slots ONCE at
// compile time and runs its hot path over plain slices — no string hashing
// per simulated memory access.
type SymTable struct {
	scalars   []string
	scalarIdx map[string]int
	vars      []string
	varIdx    map[string]int
}

// CollectSyms builds the symbol table of a finalized program. Index
// assignment is deterministic: names are collected in program order
// (routines main-first then sorted, pre-order within a routine, the same
// order Finalize assigns RefIDs) with params first among the variables.
func CollectSyms(p *Program) *SymTable {
	t := &SymTable{scalarIdx: map[string]int{}, varIdx: map[string]int{}}
	// Params first, sorted by name for determinism (Params is a map).
	params := make([]string, 0, len(p.Params))
	for k := range p.Params {
		params = append(params, k)
	}
	sort.Strings(params)
	for _, k := range params {
		t.internVar(k)
	}
	for _, rt := range p.routinesInOrder() {
		WalkStmts(rt.Body, func(s Stmt) bool {
			switch st := s.(type) {
			case *Loop:
				t.internVar(st.Var)
				t.internAffine(st.Lo)
				t.internAffine(st.Hi)
				t.internAffine(st.Step)
				for _, pr := range st.Prologue {
					if vp, ok := pr.(*VectorPrefetch); ok {
						t.internVectorPrefetch(vp)
					}
				}
			case *VectorPrefetch:
				t.internVectorPrefetch(st)
			}
			return true
		})
		WalkRefs(rt.Body, func(r *Ref, _ bool) {
			if r.IsScalar() {
				t.internScalar(r.Scalar)
				return
			}
			for _, ix := range r.Index {
				t.internAffine(ix)
			}
		})
	}
	return t
}

func (t *SymTable) internScalar(name string) int {
	if i, ok := t.scalarIdx[name]; ok {
		return i
	}
	i := len(t.scalars)
	t.scalars = append(t.scalars, name)
	t.scalarIdx[name] = i
	return i
}

func (t *SymTable) internVar(name string) int {
	if i, ok := t.varIdx[name]; ok {
		return i
	}
	i := len(t.vars)
	t.vars = append(t.vars, name)
	t.varIdx[name] = i
	return i
}

func (t *SymTable) internAffine(a interface{ Vars() []string }) {
	for _, v := range a.Vars() {
		t.internVar(v)
	}
}

func (t *SymTable) internVectorPrefetch(vp *VectorPrefetch) {
	t.internVar(vp.LoopVar)
	t.internAffine(vp.Lo)
	t.internAffine(vp.Hi)
	t.internAffine(vp.Step)
	for _, ix := range vp.Target.Index {
		t.internAffine(ix)
	}
}

// NumScalars returns the number of interned scalar names.
func (t *SymTable) NumScalars() int { return len(t.scalars) }

// NumVars returns the number of interned integer-variable names.
func (t *SymTable) NumVars() int { return len(t.vars) }

// ScalarIndex returns the slot of a scalar name, or -1 if unknown.
func (t *SymTable) ScalarIndex(name string) int {
	if i, ok := t.scalarIdx[name]; ok {
		return i
	}
	return -1
}

// VarIndex returns the slot of a variable name, or -1 if unknown.
func (t *SymTable) VarIndex(name string) int {
	if i, ok := t.varIdx[name]; ok {
		return i
	}
	return -1
}

// ScalarName returns the name interned at slot i.
func (t *SymTable) ScalarName(i int) string { return t.scalars[i] }

// VarName returns the name interned at slot i.
func (t *SymTable) VarName(i int) string { return t.vars[i] }
