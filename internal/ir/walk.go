package ir

// WalkRefs visits every reference in the statement list in pre-order,
// reporting whether each is a write (assignment LHS). Prefetch targets are
// visited as reads. Expression operands are visited left to right.
func WalkRefs(body []Stmt, visit func(r *Ref, isWrite bool)) {
	for _, s := range body {
		walkStmtRefs(s, visit)
	}
}

func walkStmtRefs(s Stmt, visit func(*Ref, bool)) {
	switch st := s.(type) {
	case *Loop:
		WalkRefs(st.Prologue, visit)
		for i := range st.Pipelined {
			visit(st.Pipelined[i].Target, false)
		}
		WalkRefs(st.Body, visit)
	case *Assign:
		walkExprRefs(st.RHS, visit)
		visit(st.LHS, true)
	case *If:
		walkExprRefs(st.Cond.L, visit)
		walkExprRefs(st.Cond.R, visit)
		WalkRefs(st.Then, visit)
		WalkRefs(st.Else, visit)
	case *Call:
		// Callee refs are visited when its routine is walked.
	case *Prefetch:
		visit(st.Target, false)
	case *VectorPrefetch:
		visit(st.Target, false)
	}
}

func walkExprRefs(e Expr, visit func(*Ref, bool)) {
	switch x := e.(type) {
	case Num, IVal:
	case Load:
		visit(x.Ref, false)
	case Bin:
		walkExprRefs(x.L, visit)
		walkExprRefs(x.R, visit)
	case Un:
		walkExprRefs(x.X, visit)
	}
}

// WalkStmts visits every statement in the list in pre-order, descending
// into loop and if bodies. Returning false from visit prunes the subtree.
func WalkStmts(body []Stmt, visit func(s Stmt) bool) {
	for _, s := range body {
		if !visit(s) {
			continue
		}
		switch st := s.(type) {
		case *Loop:
			WalkStmts(st.Body, visit)
		case *If:
			WalkStmts(st.Then, visit)
			WalkStmts(st.Else, visit)
		}
	}
}

// ContainsParallelLoop reports whether any statement in body (recursively,
// following calls through prog) is a DOALL loop.
func ContainsParallelLoop(prog *Program, body []Stmt) bool {
	found := false
	var scan func(ss []Stmt)
	scan = func(ss []Stmt) {
		for _, s := range ss {
			if found {
				return
			}
			switch st := s.(type) {
			case *Loop:
				if st.Parallel {
					found = true
					return
				}
				scan(st.Body)
			case *If:
				scan(st.Then)
				scan(st.Else)
			case *Call:
				if rt := prog.Routine(st.Name); rt != nil {
					scan(rt.Body)
				}
			}
		}
	}
	scan(body)
	return found
}

// CollectLoops returns every loop in body (recursively, not following
// calls) in pre-order.
func CollectLoops(body []Stmt) []*Loop {
	var out []*Loop
	WalkStmts(body, func(s Stmt) bool {
		if l, ok := s.(*Loop); ok {
			out = append(out, l)
		}
		return true
	})
	return out
}

// LoopIsInner reports whether l contains no nested loops, following calls
// through prog: a loop that calls a routine containing loops is not inner.
func LoopIsInner(prog *Program, l *Loop) bool {
	inner := true
	var scan func(ss []Stmt)
	scan = func(ss []Stmt) {
		for _, s := range ss {
			if !inner {
				return
			}
			switch st := s.(type) {
			case *Loop:
				inner = false
			case *If:
				scan(st.Then)
				scan(st.Else)
			case *Call:
				if rt := prog.Routine(st.Name); rt != nil {
					scan(rt.Body)
				}
			}
		}
	}
	scan(l.Body)
	return inner
}

// LoopContainsCall reports whether the loop body contains a Call statement
// (software pipelining is not applied to such loops, paper §4.3.2).
func LoopContainsCall(l *Loop) bool {
	found := false
	WalkStmts(l.Body, func(s Stmt) bool {
		if _, ok := s.(*Call); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// IsInnerLoop reports whether l contains no nested loops (directly or in
// if bodies), not following calls.
func IsInnerLoop(l *Loop) bool {
	inner := true
	WalkStmts(l.Body, func(s Stmt) bool {
		if _, ok := s.(*Loop); ok {
			inner = false
			return false
		}
		return true
	})
	return inner
}

// LoopContainsIf reports whether the loop body contains an if-statement
// (paper Fig. 2 case 5), not following calls.
func LoopContainsIf(l *Loop) bool {
	found := false
	WalkStmts(l.Body, func(s Stmt) bool {
		if _, ok := s.(*If); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
