package ir

// CloneProgram deep-copies a program so that a transformation (BASE or CCDP
// lowering) can annotate references and insert prefetch statements without
// disturbing the original. Arrays are copied too — each clone snapshots its
// own layout Base, so concurrent compiles of one source program (e.g. sweep
// points at different line sizes) never share mutable layout state — and
// every cloned reference is remapped to the cloned arrays. The clone is NOT
// finalized; callers re-Finalize after transforming.
func CloneProgram(p *Program) *Program {
	arrays := make([]*Array, len(p.Arrays))
	amap := make(map[*Array]*Array, len(p.Arrays))
	for i, a := range p.Arrays {
		ca := *a // Dims is immutable and may be shared
		arrays[i] = &ca
		amap[a] = &ca
	}
	cp := &Program{
		Name:     p.Name,
		Arrays:   arrays,
		Params:   make(map[string]int64, len(p.Params)),
		Routines: make(map[string]*Routine, len(p.Routines)),
		Main:     p.Main,
	}
	for k, v := range p.Params {
		cp.Params[k] = v
	}
	for name, rt := range p.Routines {
		body := CloneStmts(rt.Body)
		WalkRefs(body, func(r *Ref, _ bool) {
			if ca, ok := amap[r.Array]; ok {
				r.Array = ca
			}
		})
		cp.Routines[name] = &Routine{Name: rt.Name, Body: body}
	}
	return cp
}

// CloneStmts deep-copies a statement list.
func CloneStmts(body []Stmt) []Stmt {
	if body == nil {
		return nil
	}
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *Loop:
		cp := *st
		cp.Body = CloneStmts(st.Body)
		cp.Prologue = CloneStmts(st.Prologue)
		cp.Pipelined = make([]PipelinedPrefetch, len(st.Pipelined))
		for i, pp := range st.Pipelined {
			cp.Pipelined[i] = PipelinedPrefetch{Target: pp.Target.Clone(), Ahead: pp.Ahead}
		}
		if len(cp.Pipelined) == 0 {
			cp.Pipelined = nil
		}
		return &cp
	case *Assign:
		return &Assign{LHS: st.LHS.Clone(), RHS: cloneExpr(st.RHS)}
	case *If:
		return &If{
			Cond: Cond{Op: st.Cond.Op, L: cloneExpr(st.Cond.L), R: cloneExpr(st.Cond.R)},
			Then: CloneStmts(st.Then),
			Else: CloneStmts(st.Else),
		}
	case *Call:
		return &Call{Name: st.Name}
	case *Prefetch:
		return &Prefetch{Target: st.Target.Clone(), MovedBack: st.MovedBack}
	case *VectorPrefetch:
		cp := *st
		cp.Target = st.Target.Clone()
		return &cp
	default:
		panic("ir: unknown statement type in clone")
	}
}

func cloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case Num, IVal:
		return x
	case Load:
		return Load{Ref: x.Ref.Clone()}
	case Bin:
		return Bin{Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R)}
	case Un:
		return Un{Op: x.Op, X: cloneExpr(x.X)}
	default:
		panic("ir: unknown expression type in clone")
	}
}
