package ir

import "testing"

func TestRegionsDecomposition(t *testing.T) {
	b := NewBuilder("reg")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	inner := DoSerial("k", K(0), K(7), Set(At(c, I("k")), L(At(a, I("k")))))
	b.Routine("main",
		Set(S("x"), N(0)), // segment (epoch level)
		Set(S("y"), N(1)), // same segment
		DoAll("i", K(0), K(63), // outer: contains inner loop
			Set(At(a, I("i")), N(0)), // segment inside doall
			inner,
		),
		Set(S("z"), N(2)), // segment
	)
	p := b.Build()
	regs := Regions(p)
	// Expect: segment{x,y}, segment{A(i)=0} (inside doall), loop{k}, segment{z}
	if len(regs) != 4 {
		for _, r := range regs {
			t.Logf("region loop=%v inIf=%v len=%d enclosing=%d", r.IsLoop(), r.InIf, r.Len, len(r.Enclosing))
		}
		t.Fatalf("got %d regions, want 4", len(regs))
	}
	if regs[0].IsLoop() || regs[0].Len != 2 {
		t.Errorf("region 0 should be the 2-stmt segment: %+v", regs[0])
	}
	if regs[1].IsLoop() || len(regs[1].Enclosing) != 1 {
		t.Errorf("region 1 should be segment inside doall: %+v", regs[1])
	}
	if !regs[2].IsLoop() || regs[2].Loop != inner {
		t.Errorf("region 2 should be the inner k loop")
	}
	if regs[3].IsLoop() || regs[3].Len != 1 {
		t.Errorf("region 3 should be the trailing segment")
	}
}

func TestRegionsInIfBranches(t *testing.T) {
	b := NewBuilder("regif")
	a := b.Array("A", 8)
	b.Routine("main",
		When(CondOf(CmpLT, N(0), N(1)),
			[]Stmt{Set(At(a, K(0)), N(1))},
			[]Stmt{Set(At(a, K(1)), N(2))}),
	)
	p := b.Build()
	regs := Regions(p)
	if len(regs) != 2 {
		t.Fatalf("got %d regions, want 2 (one per branch)", len(regs))
	}
	for _, r := range regs {
		if !r.InIf {
			t.Errorf("branch region not marked InIf")
		}
	}
}

func TestLoopWithLoopyCalleeNotInner(t *testing.T) {
	b := NewBuilder("regcall")
	a := b.Array("A", 8)
	b.Routine("main",
		DoSerial("i", K(0), K(3), CallTo("leaf"), CallTo("loopy")),
	)
	b.Routine("leaf", Set(At(a, K(0)), N(1)))
	b.Routine("loopy", DoSerial("j", K(0), K(3), Set(At(a, I("j")), N(2))))
	p := b.Build()
	l := p.MainRoutine().Body[0].(*Loop)
	if LoopIsInner(p, l) {
		t.Error("loop calling a loopy routine reported inner")
	}
	if !LoopContainsCall(l) {
		t.Error("LoopContainsCall missed calls")
	}
	leafLoop := p.Routine("loopy").Body[0].(*Loop)
	if !LoopIsInner(p, leafLoop) {
		t.Error("leaf loop should be inner")
	}
}

func TestRegionRefsIn(t *testing.T) {
	b := NewBuilder("regrefs")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	l := DoSerial("k", K(0), K(7), Set(At(c, I("k")), L(At(a, I("k")))))
	b.Routine("main", l)
	p := b.Build()
	regs := Regions(p)
	if len(regs) != 1 {
		t.Fatalf("want 1 region, got %d", len(regs))
	}
	reads, writes := regs[0].RefsIn()
	if len(reads) != 1 || reads[0].Array.Name != "A" {
		t.Errorf("reads = %v", reads)
	}
	if len(writes) != 1 || writes[0].Array.Name != "C" {
		t.Errorf("writes = %v", writes)
	}
}
