package core

import (
	"reflect"
	"testing"

	"repro/internal/ir"
	"repro/internal/stale"
	"repro/internal/target"
)

// oldTable builds a re-finalization table: old[i] is the ref that held ID i
// before, and newID[i] is the ID it carries now.
func oldTable(newID []ir.RefID) []*ir.Ref {
	out := make([]*ir.Ref, len(newID))
	for i, id := range newID {
		r := &ir.Ref{}
		r.ID = id
		out[i] = r
	}
	return out
}

func TestRemapIDs(t *testing.T) {
	region := &ir.Region{}
	cases := []struct {
		name  string
		newID []ir.RefID // old id -> new id
		sres  *stale.Result
		tres  *target.Result
		check func(t *testing.T, sres *stale.Result, tres *target.Result)
	}{
		{
			name:  "identity permutation is a no-op",
			newID: []ir.RefID{0, 1, 2},
			sres: &stale.Result{
				StaleReads:  map[ir.RefID]bool{1: true},
				RemoteReads: map[ir.RefID]bool{2: true},
				Why:         map[ir.RefID]string{1: "w1"},
				RemoteWhy:   map[ir.RefID]string{2: "r2"},
			},
			tres: &target.Result{
				Targets:   map[ir.RefID]bool{1: true},
				Dropped:   map[ir.RefID]target.Drop{2: target.DropScalar},
				CoveredBy: map[ir.RefID]ir.RefID{},
				RegionOf:  map[ir.RefID]*ir.Region{1: region},
			},
			check: func(t *testing.T, sres *stale.Result, tres *target.Result) {
				if !sres.StaleReads[1] || !sres.RemoteReads[2] || sres.Why[1] != "w1" || sres.RemoteWhy[2] != "r2" {
					t.Errorf("stale maps changed under identity: %+v", sres)
				}
				if !tres.Targets[1] || tres.Dropped[2] != target.DropScalar || tres.RegionOf[1] != region {
					t.Errorf("target maps changed under identity: %+v", tres)
				}
			},
		},
		{
			name: "shift after insertion moves every map",
			// Two prefetch refs inserted before the old refs: ids shift by 2.
			newID: []ir.RefID{2, 3, 4, 5},
			sres: &stale.Result{
				StaleReads:  map[ir.RefID]bool{0: true, 3: true},
				RemoteReads: map[ir.RefID]bool{1: true},
				Why:         map[ir.RefID]string{0: "w0", 3: "w3"},
				RemoteWhy:   map[ir.RefID]string{1: "r1"},
			},
			tres: &target.Result{
				Targets:   map[ir.RefID]bool{0: true},
				Dropped:   map[ir.RefID]target.Drop{3: target.DropCovered, 1: target.DropScalar},
				CoveredBy: map[ir.RefID]ir.RefID{3: 0},
				RegionOf:  map[ir.RefID]*ir.Region{0: region},
			},
			check: func(t *testing.T, sres *stale.Result, tres *target.Result) {
				wantStale := map[ir.RefID]bool{2: true, 5: true}
				if !reflect.DeepEqual(sres.StaleReads, wantStale) {
					t.Errorf("StaleReads = %v, want %v", sres.StaleReads, wantStale)
				}
				if !reflect.DeepEqual(sres.RemoteReads, map[ir.RefID]bool{3: true}) {
					t.Errorf("RemoteReads = %v", sres.RemoteReads)
				}
				if !reflect.DeepEqual(sres.Why, map[ir.RefID]string{2: "w0", 5: "w3"}) {
					t.Errorf("Why = %v", sres.Why)
				}
				if !reflect.DeepEqual(sres.RemoteWhy, map[ir.RefID]string{3: "r1"}) {
					t.Errorf("RemoteWhy = %v", sres.RemoteWhy)
				}
				if !reflect.DeepEqual(tres.Targets, map[ir.RefID]bool{2: true}) {
					t.Errorf("Targets = %v", tres.Targets)
				}
				wantDrop := map[ir.RefID]target.Drop{5: target.DropCovered, 3: target.DropScalar}
				if !reflect.DeepEqual(tres.Dropped, wantDrop) {
					t.Errorf("Dropped = %v, want %v", tres.Dropped, wantDrop)
				}
				// Both the key AND the leader value of CoveredBy are remapped.
				if !reflect.DeepEqual(tres.CoveredBy, map[ir.RefID]ir.RefID{5: 2}) {
					t.Errorf("CoveredBy = %v", tres.CoveredBy)
				}
				if len(tres.RegionOf) != 1 || tres.RegionOf[2] != region {
					t.Errorf("RegionOf = %v", tres.RegionOf)
				}
			},
		},
		{
			name:  "permutation keeps values attached to their refs",
			newID: []ir.RefID{2, 0, 1},
			sres: &stale.Result{
				StaleReads:  map[ir.RefID]bool{0: true, 1: true},
				RemoteReads: map[ir.RefID]bool{},
				Why:         map[ir.RefID]string{0: "first", 1: "second"},
				RemoteWhy:   map[ir.RefID]string{},
			},
			tres: &target.Result{
				Targets:   map[ir.RefID]bool{0: true},
				Dropped:   map[ir.RefID]target.Drop{1: target.DropCovered},
				CoveredBy: map[ir.RefID]ir.RefID{1: 0},
				RegionOf:  map[ir.RefID]*ir.Region{0: region},
			},
			check: func(t *testing.T, sres *stale.Result, tres *target.Result) {
				if !reflect.DeepEqual(sres.StaleReads, map[ir.RefID]bool{2: true, 0: true}) {
					t.Errorf("StaleReads = %v", sres.StaleReads)
				}
				if sres.Why[2] != "first" || sres.Why[0] != "second" {
					t.Errorf("Why = %v", sres.Why)
				}
				if !reflect.DeepEqual(tres.CoveredBy, map[ir.RefID]ir.RefID{0: 2}) {
					t.Errorf("CoveredBy = %v", tres.CoveredBy)
				}
			},
		},
		{
			name:  "empty maps survive",
			newID: []ir.RefID{1, 0},
			sres: &stale.Result{
				StaleReads: map[ir.RefID]bool{}, RemoteReads: map[ir.RefID]bool{},
				Why: map[ir.RefID]string{}, RemoteWhy: map[ir.RefID]string{},
			},
			tres: &target.Result{
				Targets: map[ir.RefID]bool{}, Dropped: map[ir.RefID]target.Drop{},
				CoveredBy: map[ir.RefID]ir.RefID{}, RegionOf: map[ir.RefID]*ir.Region{},
			},
			check: func(t *testing.T, sres *stale.Result, tres *target.Result) {
				if len(sres.StaleReads)+len(sres.RemoteReads)+len(sres.Why)+len(sres.RemoteWhy) != 0 {
					t.Errorf("stale maps not empty: %+v", sres)
				}
				if len(tres.Targets)+len(tres.Dropped)+len(tres.CoveredBy)+len(tres.RegionOf) != 0 {
					t.Errorf("target maps not empty: %+v", tres)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			remapIDs(tc.sres, tc.tres, oldTable(tc.newID))
			tc.check(t, tc.sres, tc.tres)
		})
	}
}
