// Package core is the CCDP compiler pipeline — the paper's primary
// contribution assembled from its three phases. Compile takes a source
// program and produces an executable lowering for one of the execution
// modes the evaluation compares:
//
//   - ModeSeq:   the sequential program (1 PE, everything local and cached);
//     the baseline for the Table 1 speedups.
//   - ModeBase:  the paper's BASE version: CRAFT shared data is NOT cached;
//     every shared access pays the CRAFT shared-access overhead
//     plus local or remote memory latency.
//   - ModeCCDP:  shared data is cached; the stale reference analysis,
//     prefetch target analysis and prefetch scheduling insert
//     the coherence-preserving prefetch operations.
//   - ModeIncoherent: shared data is cached with NO coherence actions —
//     the broken scheme the paper's problem statement warns
//     about. Used by tests to show stale-value reads occur
//     and that the checker catches them.
package core

import (
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sched"
	"repro/internal/stale"
	"repro/internal/target"
)

// Mode selects the lowering.
type Mode int

const (
	ModeSeq Mode = iota
	ModeBase
	ModeCCDP
	ModeIncoherent
)

func (m Mode) String() string {
	switch m {
	case ModeSeq:
		return "SEQ"
	case ModeBase:
		return "BASE"
	case ModeCCDP:
		return "CCDP"
	case ModeIncoherent:
		return "INCOHERENT"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Compiled is a program lowered for one mode and machine configuration.
type Compiled struct {
	Prog       *ir.Program
	Mode       Mode
	Machine    machine.Params
	TotalWords int64

	// Syms interns every scalar and integer-variable name of the final
	// (post-scheduling) program: the execution engine resolves names to
	// dense slots through this table once, at compile time, so its hot
	// path never hashes a string.
	Syms *ir.SymTable

	// Analysis results (CCDP mode only; nil otherwise).
	Stale   *stale.Result
	Targets *target.Result
	Sched   *sched.Result
}

var layoutMu sync.Mutex

// Compile lowers src for the given mode and machine. src is cloned, never
// mutated (beyond the shared array layout, which is deterministic and
// identical across modes).
func Compile(src *ir.Program, mode Mode, mp machine.Params) (*Compiled, error) {
	if mode == ModeSeq {
		// The sequential baseline runs on one PE with no interconnect, even
		// when the caller's config (e.g. a flat-vs-torus sweep) says
		// otherwise — normalize before validation so explicit torus dims
		// sized for the parallel runs don't fail the 1-PE check.
		mp.NumPE = 1
		mp.Topology = noc.Config{}
	}
	if err := mp.Validate(); err != nil {
		return nil, err
	}

	// Lay out the source arrays and snapshot the result into the clone's
	// private Array copies, all under one lock: concurrent compiles of the
	// same source (sweep points, possibly at different line sizes) each get
	// their own immutable layout and never race on Base assignment.
	layoutMu.Lock()
	total := mem.Layout(src, mp.LineWords)
	prog := ir.CloneProgram(src)
	layoutMu.Unlock()
	prog.Finalize()

	c := &Compiled{Prog: prog, Mode: mode, Machine: mp, TotalWords: total}

	switch mode {
	case ModeSeq, ModeIncoherent:
		// No transformation: plain cached execution.
	case ModeBase:
		lowerBase(prog)
	case ModeCCDP:
		sres, err := stale.Analyze(prog, mp.NumPE)
		if err != nil {
			return nil, fmt.Errorf("core: stale analysis: %w", err)
		}
		candidates := sres.StaleReads
		if mp.PrefetchNonStale {
			// Paper §6 extension: also prefetch non-stale remote reads.
			candidates = make(map[ir.RefID]bool, len(sres.StaleReads)+len(sres.RemoteReads))
			for id := range sres.StaleReads {
				candidates[id] = true
			}
			for id := range sres.RemoteReads {
				candidates[id] = true
			}
		}
		tres := target.Analyze(prog, candidates, mp.LineWords)
		scres := sched.Schedule(prog, sres, tres, mp)
		// Re-finalizing after the insertions assigns new RefIDs; remap the
		// analysis maps so they key on the final IDs.
		old := append([]*ir.Ref(nil), prog.Refs()...)
		prog.Finalize()
		remapIDs(sres, tres, old)
		if err := ir.Validate(prog); err != nil {
			return nil, fmt.Errorf("core: scheduled program invalid: %w", err)
		}
		c.Stale = sres
		c.Targets = tres
		c.Sched = scres
	default:
		return nil, fmt.Errorf("core: unknown mode %v", mode)
	}
	// Intern symbols AFTER the mode lowering: the CCDP scheduler inserts
	// vector prefetches with fresh pull variables that need slots too.
	c.Syms = ir.CollectSyms(prog)
	return c, nil
}

// remapIDs rewrites the RefID-keyed analysis maps after re-finalization.
// old[i] is the ref that held ID i before; its .ID now carries the new ID.
func remapIDs(sres *stale.Result, tres *target.Result, old []*ir.Ref) {
	newBool := func(m map[ir.RefID]bool) map[ir.RefID]bool {
		out := make(map[ir.RefID]bool, len(m))
		for id, v := range m {
			out[old[id].ID] = v
		}
		return out
	}
	sres.StaleReads = newBool(sres.StaleReads)
	sres.RemoteReads = newBool(sres.RemoteReads)
	tres.Targets = newBool(tres.Targets)
	dropped := make(map[ir.RefID]target.Drop, len(tres.Dropped))
	for id, v := range tres.Dropped {
		dropped[old[id].ID] = v
	}
	tres.Dropped = dropped
	covered := make(map[ir.RefID]ir.RefID, len(tres.CoveredBy))
	for id, leader := range tres.CoveredBy {
		covered[old[id].ID] = old[leader].ID
	}
	tres.CoveredBy = covered
	regions := make(map[ir.RefID]*ir.Region, len(tres.RegionOf))
	for id, reg := range tres.RegionOf {
		regions[old[id].ID] = reg
	}
	tres.RegionOf = regions
}

// lowerBase marks every reference to a shared array as non-cached (the
// CRAFT rule: shared data is not cached, so BASE never violates coherence).
func lowerBase(p *ir.Program) {
	for _, r := range p.Refs() {
		if !r.IsScalar() && r.Array.Shared {
			r.NonCached = true
		}
	}
}

// Report summarizes the compilation for the ccdpc driver.
func (c *Compiled) Report() string {
	s := fmt.Sprintf("mode %s on %d PEs, %d words of shared address space\n",
		c.Mode, c.Machine.NumPE, c.TotalWords)
	if c.Mode == ModeCCDP {
		s += c.Stale.Report()
		s += c.Targets.Report(c.Prog)
		s += c.Sched.Report()
	}
	return s
}
