// Package core is the CCDP compiler pipeline — the paper's primary
// contribution assembled from its three phases. Compile takes a source
// program and produces an executable lowering for one of the execution
// modes the evaluation compares:
//
//   - ModeSeq:   the sequential program (1 PE, everything local and cached);
//     the baseline for the Table 1 speedups.
//   - ModeBase:  the paper's BASE version: CRAFT shared data is NOT cached;
//     every shared access pays the CRAFT shared-access overhead
//     plus local or remote memory latency.
//   - ModeCCDP:  shared data is cached; the stale reference analysis,
//     prefetch target analysis and prefetch scheduling insert
//     the coherence-preserving prefetch operations.
//   - ModeIncoherent: shared data is cached with NO coherence actions —
//     the broken scheme the paper's problem statement warns
//     about. Used by tests to show stale-value reads occur
//     and that the checker catches them.
//
// The lowering runs as an instrumented pass pipeline (internal/pass): named
// ordered passes over a shared context, with per-pass wall times, optional
// between-pass invariant checking, stable dump-after-pass snapshots, and a
// provenance store recording why every reference was marked stale,
// selected, dropped, covered, scheduled or bypassed. The source program is
// never mutated — each compile clones it first and lays out the clone — so
// concurrent compiles of any programs never contend or race.
package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/coherence"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/pass"
	"repro/internal/sched"
	"repro/internal/stale"
	"repro/internal/target"
)

// Mode selects the lowering.
type Mode int

const (
	ModeSeq Mode = iota
	ModeBase
	ModeCCDP
	ModeIncoherent
	// The hardware coherence arena (internal/coherence): shared data is
	// cached like INCOHERENT, but a home-node directory keeps every copy
	// coherent, and the protocol's messages and storage are charged. The
	// three modes differ only in directory organization.
	ModeHWDir       // full-map bit-vector MESI directory
	ModeHWDirLP     // limited-pointer Dir_i_B (broadcast on overflow)
	ModeHWDirSparse // sparse set-associative directory cache
)

// ModeSpec describes one execution mode for the drivers: the canonical
// lowercase CLI name, a usage blurb, and whether the mode runs the
// hardware directory. This registry is the single source of truth the
// -mode flags, error messages and arena table rows derive from — adding a
// mode here is all it takes for every CLI to list it.
type ModeSpec struct {
	Mode Mode
	Name string
	Desc string
	HW   bool
}

var modeSpecs = []ModeSpec{
	{ModeSeq, "seq", "sequential baseline (1 PE)", false},
	{ModeBase, "base", "CRAFT shared data not cached", false},
	{ModeCCDP, "ccdp", "compiler-directed coherence via prefetching", false},
	{ModeIncoherent, "incoherent", "cached shared data, no coherence (broken)", false},
	{ModeHWDir, "hwdir", "hardware full-map directory MESI", true},
	{ModeHWDirLP, "hwdir-lp", "hardware limited-pointer directory (Dir_i_B)", true},
	{ModeHWDirSparse, "hwdir-sparse", "hardware sparse directory cache", true},
}

// ModeSpecs returns the mode registry in Mode order. The slice is shared;
// callers must not mutate it.
func ModeSpecs() []ModeSpec { return modeSpecs }

// ModeNames returns every mode's canonical CLI name, in Mode order.
func ModeNames() []string {
	names := make([]string, len(modeSpecs))
	for i, s := range modeSpecs {
		names[i] = s.Name
	}
	return names
}

// ParseMode resolves a mode name (case-insensitively, CLI or String form).
// Unknown names report the valid set.
func ParseMode(s string) (Mode, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for _, spec := range modeSpecs {
		if name == spec.Name {
			return spec.Mode, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q: valid modes are %s", s, strings.Join(ModeNames(), ", "))
}

// Valid reports whether m is a registered mode.
func (m Mode) Valid() bool {
	return m >= ModeSeq && int(m) < len(modeSpecs)
}

// IsHW reports whether m runs the hardware coherence directory.
func (m Mode) IsHW() bool {
	return m.Valid() && modeSpecs[m].HW
}

// DirOrg returns the directory organization of a hardware mode.
func (m Mode) DirOrg() coherence.Org {
	switch m {
	case ModeHWDir:
		return coherence.OrgFullMap
	case ModeHWDirLP:
		return coherence.OrgLimited
	case ModeHWDirSparse:
		return coherence.OrgSparse
	default:
		panic(fmt.Sprintf("core: DirOrg on non-HW mode %v", m))
	}
}

func (m Mode) String() string {
	if m.Valid() {
		return strings.ToUpper(modeSpecs[m].Name)
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Compiled is a program lowered for one mode and machine configuration.
type Compiled struct {
	Prog       *ir.Program
	Mode       Mode
	Machine    machine.Params
	TotalWords int64

	// Syms interns every scalar and integer-variable name of the final
	// (post-scheduling) program: the execution engine resolves names to
	// dense slots through this table once, at compile time, so its hot
	// path never hashes a string.
	Syms *ir.SymTable

	// Analysis results (CCDP mode only; nil otherwise).
	Stale   *stale.Result
	Targets *target.Result
	Sched   *sched.Result

	// Timings is the per-pass wall time of the pipeline that produced this
	// compilation, in pass order.
	Timings []pass.Timing

	// Prov records a reason for every per-reference pipeline decision
	// (stale-because, dropped-because, covered-by, scheduling outcome);
	// surfaced by `ccdpc -explain`. Never nil; empty outside CCDP mode.
	Prov *pass.Provenance

	// memo is an opaque cache slot tied to this compilation's identity,
	// reached through Memo. internal/exec parks idle execution engines here
	// so repeated one-shot runs of the same compiled program amortize
	// engine construction; core itself never looks inside. Living on the
	// Compiled (rather than in a global map keyed by it) ties the cached
	// state's lifetime to the compilation's — fuzzing campaigns compile
	// thousands of throwaway programs, and each one's cache must die with
	// it.
	memoMu sync.Mutex
	memo   any
}

// Memo returns the value build produced the first time Memo was called on
// this Compiled, calling build to produce it on that first call. Safe for
// concurrent use; build runs under the slot's lock, at most once.
func (c *Compiled) Memo(build func() any) any {
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if c.memo == nil {
		c.memo = build()
	}
	return c.memo
}

// Options tunes a compilation beyond mode and machine.
type Options struct {
	// CheckInvariants runs pass.Check between every pair of passes:
	// ir.Validate plus analysis-map consistency.
	CheckInvariants bool
	// Dump, when set, is called after every pass; pass.Snapshot /
	// pass.SnapshotJSON render the context deterministically.
	Dump func(pass string, ctx *pass.Context)
}

// Compile lowers src for the given mode and machine. src is cloned first
// and never mutated, so any number of compiles — same source or different —
// may run concurrently.
func Compile(src *ir.Program, mode Mode, mp machine.Params) (*Compiled, error) {
	return CompileOpt(src, mode, mp, Options{})
}

// CompileOpt is Compile with pipeline instrumentation options.
func CompileOpt(src *ir.Program, mode Mode, mp machine.Params, opts Options) (*Compiled, error) {
	if !mode.Valid() {
		return nil, fmt.Errorf("core: unknown mode %v", mode)
	}
	if mode == ModeSeq {
		// The sequential baseline runs on one PE with no interconnect, even
		// when the caller's config (e.g. a flat-vs-torus sweep) says
		// otherwise — normalize before validation so explicit torus dims
		// sized for the parallel runs don't fail the 1-PE check.
		mp.NumPE = 1
		mp.Topology = noc.Config{}
		// A 1-PE machine is one trivial coherence domain; drop a profile's
		// multi-PE domain size so it cannot fail the divisibility check.
		mp.DomainSize = 0
	}
	if err := mp.Validate(); err != nil {
		return nil, err
	}

	ctx := &pass.Context{Src: src, Machine: mp, Prov: pass.NewProvenance()}
	mgr := pass.NewManager(pass.Options{CheckInvariants: opts.CheckInvariants, Dump: opts.Dump},
		pipeline(mode)...)
	timings, err := mgr.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Compiled{
		Prog:       ctx.Prog,
		Mode:       mode,
		Machine:    mp,
		TotalWords: ctx.TotalWords,
		Syms:       ctx.Syms,
		Stale:      ctx.Stale,
		Targets:    ctx.Targets,
		Sched:      ctx.Sched,
		Timings:    timings,
		Prov:       ctx.Prov,
	}, nil
}

// remapIDs rewrites the RefID-keyed analysis maps after re-finalization.
// old[i] is the ref that held ID i before; its .ID now carries the new ID.
func remapIDs(sres *stale.Result, tres *target.Result, old []*ir.Ref) {
	newBool := func(m map[ir.RefID]bool) map[ir.RefID]bool {
		out := make(map[ir.RefID]bool, len(m))
		for id, v := range m {
			out[old[id].ID] = v
		}
		return out
	}
	newStr := func(m map[ir.RefID]string) map[ir.RefID]string {
		out := make(map[ir.RefID]string, len(m))
		for id, v := range m {
			out[old[id].ID] = v
		}
		return out
	}
	sres.StaleReads = newBool(sres.StaleReads)
	sres.RemoteReads = newBool(sres.RemoteReads)
	sres.DemotedIntra = newBool(sres.DemotedIntra)
	sres.Why = newStr(sres.Why)
	sres.RemoteWhy = newStr(sres.RemoteWhy)
	sres.DemotedWhy = newStr(sres.DemotedWhy)
	tres.Targets = newBool(tres.Targets)
	dropped := make(map[ir.RefID]target.Drop, len(tres.Dropped))
	for id, v := range tres.Dropped {
		dropped[old[id].ID] = v
	}
	tres.Dropped = dropped
	covered := make(map[ir.RefID]ir.RefID, len(tres.CoveredBy))
	for id, leader := range tres.CoveredBy {
		covered[old[id].ID] = old[leader].ID
	}
	tres.CoveredBy = covered
	regions := make(map[ir.RefID]*ir.Region, len(tres.RegionOf))
	for id, reg := range tres.RegionOf {
		regions[old[id].ID] = reg
	}
	tres.RegionOf = regions
}

// Report summarizes the compilation for the ccdpc driver: the phase
// reports (CCDP mode), the per-pass wall times of the pipeline, and the
// provenance decision counts.
func (c *Compiled) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode %s on %d PEs, %d words of shared address space\n",
		c.Mode, c.Machine.NumPE, c.TotalWords)
	if c.Mode == ModeCCDP {
		b.WriteString(c.Stale.Report())
		b.WriteString(c.Targets.Report(c.Prog))
		b.WriteString(c.Sched.Report())
	}
	if len(c.Timings) > 0 {
		b.WriteString("pass timings:\n")
		var total int64
		for _, t := range c.Timings {
			fmt.Fprintf(&b, "  %-18s %v\n", t.Pass, t.Duration)
			total += int64(t.Duration)
		}
		fmt.Fprintf(&b, "  %-18s %v\n", "total", time.Duration(total))
	}
	if c.Prov != nil && c.Prov.Len() > 0 {
		b.WriteString(c.Prov.Summary())
		b.WriteString("\n")
	}
	return b.String()
}
