package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pass"
	"repro/internal/sched"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func allModes() []Mode {
	return []Mode{ModeSeq, ModeBase, ModeCCDP, ModeIncoherent}
}

// TestPipelineInvariantsAllWorkloads runs every small workload through
// every mode with between-pass invariant checking enabled: ir.Validate plus
// analysis-map consistency must hold after every pass.
func TestPipelineInvariantsAllWorkloads(t *testing.T) {
	for _, spec := range workloads.Small() {
		for _, mode := range allModes() {
			t.Run(fmt.Sprintf("%s/%s", spec.Name, mode), func(t *testing.T) {
				c, err := CompileOpt(spec.Prog, mode, machine.T3D(8),
					Options{CheckInvariants: true})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := len(c.Timings), len(PassNames(mode)); got != want {
					t.Errorf("%d timings for %d passes", got, want)
				}
				for i, name := range PassNames(mode) {
					if c.Timings[i].Pass != name {
						t.Errorf("timing %d = %q, want %q", i, c.Timings[i].Pass, name)
					}
				}
			})
		}
	}
}

// TestProvenanceCoversEveryDecision verifies `ccdpc -explain` has a
// non-empty reason for every reference the CCDP pipeline decided about:
// each stale read, each selected target, each dropped or covered candidate.
func TestProvenanceCoversEveryDecision(t *testing.T) {
	for _, spec := range workloads.Small() {
		t.Run(spec.Name, func(t *testing.T) {
			c, err := Compile(spec.Prog, ModeCCDP, machine.T3D(8))
			if err != nil {
				t.Fatal(err)
			}
			reasonWith := func(id ir.RefID, v pass.Verdict) bool {
				for _, e := range c.Prov.Entries(id) {
					if e.Verdict == v && e.Reason != "" {
						return true
					}
				}
				return false
			}
			for id := range c.Stale.StaleReads {
				if !reasonWith(id, pass.VerdictStale) {
					t.Errorf("stale read #%d %s has no stale reason", id, c.Prog.Ref(id))
				}
				if !reasonWith(id, pass.VerdictCandidate) {
					t.Errorf("stale read #%d %s has no candidate reason", id, c.Prog.Ref(id))
				}
			}
			for id := range c.Stale.RemoteReads {
				if !reasonWith(id, pass.VerdictRemote) {
					t.Errorf("remote read #%d %s has no remote reason", id, c.Prog.Ref(id))
				}
			}
			for id := range c.Targets.Targets {
				if !reasonWith(id, pass.VerdictSelected) {
					t.Errorf("target #%d %s has no selection reason", id, c.Prog.Ref(id))
				}
			}
			for id := range c.Targets.Dropped {
				if !reasonWith(id, pass.VerdictCovered) && !reasonWith(id, pass.VerdictDropped) {
					t.Errorf("dropped #%d %s has no drop/cover reason", id, c.Prog.Ref(id))
				}
			}
			for id, leader := range c.Targets.CoveredBy {
				found := false
				for _, e := range c.Prov.Entries(id) {
					if e.Verdict == pass.VerdictCovered && e.Other == leader {
						found = true
					}
				}
				if !found {
					t.Errorf("covered #%d does not name leader #%d in provenance", id, leader)
				}
			}
			for _, d := range c.Sched.Decisions {
				want := pass.VerdictScheduled
				if d.Technique == sched.TechNone {
					want = pass.VerdictBypass
				}
				if !reasonWith(d.Ref.ID, want) {
					t.Errorf("decision for #%d %s has no %s reason", d.Ref.ID, d.Ref, want)
				}
			}
		})
	}
}

// TestProvenanceCoversDomainDemotions compiles every workload on a
// domained machine and verifies each reference the domain-aware analysis
// demoted to non-stale carries a recorded demotion reason — `ccdpc
// -explain` must be able to say why a read needs no prefetch on cxl-pcc.
func TestProvenanceCoversDomainDemotions(t *testing.T) {
	demoted := 0
	for _, spec := range workloads.Small() {
		t.Run(spec.Name, func(t *testing.T) {
			c, err := Compile(spec.Prog, ModeCCDP, machine.MustProfileParams("cxl-pcc", 8))
			if err != nil {
				t.Fatal(err)
			}
			for id := range c.Stale.DemotedIntra {
				demoted++
				found := false
				for _, e := range c.Prov.Entries(id) {
					if e.Verdict == pass.VerdictDemoted && e.Reason != "" {
						found = true
					}
				}
				if !found {
					t.Errorf("demoted read #%d %s has no demotion reason", id, c.Prog.Ref(id))
				}
				if c.Stale.StaleReads[id] {
					t.Errorf("read #%d both demoted and stale", id)
				}
			}
		})
	}
	// The whole-domain machine demotes everything, so the coverage above is
	// guaranteed non-vacuous even if cxl-pcc's 2×4 split demotes nothing.
	for _, spec := range workloads.Small() {
		mp := machine.T3D(8)
		mp.DomainSize = 8
		c, err := Compile(spec.Prog, ModeCCDP, mp)
		if err != nil {
			t.Fatal(err)
		}
		demoted += len(c.Stale.DemotedIntra)
		for id := range c.Stale.DemotedIntra {
			found := false
			for _, e := range c.Prov.Entries(id) {
				if e.Verdict == pass.VerdictDemoted && e.Reason != "" {
					found = true
				}
			}
			if !found {
				t.Errorf("%s D=8: demoted read #%d has no demotion reason", spec.Name, id)
			}
		}
	}
	if demoted == 0 {
		t.Error("no demotions anywhere: the coverage check is vacuous")
	}
}

// TestPassDumpGolden pins the full dump-after-pass snapshot sequence for
// MXM / CCDP / 8 PEs. Run `go test ./internal/core -update` after an
// intentional pipeline change.
func TestPassDumpGolden(t *testing.T) {
	var spec *workloads.Spec
	for _, s := range workloads.Small() {
		if s.Name == "MXM" {
			spec = s
		}
	}
	if spec == nil {
		t.Fatal("no MXM in small workloads")
	}
	var b strings.Builder
	_, err := CompileOpt(spec.Prog, ModeCCDP, machine.T3D(8), Options{
		CheckInvariants: true,
		Dump: func(name string, ctx *pass.Context) {
			fmt.Fprintf(&b, "=== after %s ===\n", name)
			b.WriteString(pass.Snapshot(ctx))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "mxm_ccdp_8pe_passes.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("pass dump diverged from %s (run with -update if intentional)\ngot %d bytes, want %d",
			golden, len(got), len(want))
	}
}

// TestPassDumpDeterministic compiles twice and requires byte-identical
// snapshots — the property the CI determinism job checks end-to-end.
func TestPassDumpDeterministic(t *testing.T) {
	dump := func() string {
		var b strings.Builder
		spec := workloads.Small()[0]
		_, err := CompileOpt(spec.Prog, ModeCCDP, machine.T3D(8), Options{
			Dump: func(name string, ctx *pass.Context) {
				fmt.Fprintf(&b, "=== after %s ===\n", name)
				b.WriteString(pass.Snapshot(ctx))
				j, err := pass.SnapshotJSON(ctx)
				if err != nil {
					t.Fatal(err)
				}
				b.Write(j)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if dump() != dump() {
		t.Error("pass dumps differ between identical compiles")
	}
}

// TestConcurrentCompilesDoNotInterfere compiles unrelated programs (and the
// same program at different line sizes) from many goroutines at once: the
// clone-first pipeline must never touch a source program, so nothing races
// and every compile sees its own layout. Run under -race in CI.
func TestConcurrentCompilesDoNotInterfere(t *testing.T) {
	specs := workloads.Small()
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i, spec := range specs {
			for _, mode := range allModes() {
				wg.Add(1)
				go func(spec *workloads.Spec, mode Mode, lineWords int64) {
					defer wg.Done()
					mp := machine.T3D(8)
					mp.LineWords = lineWords
					c, err := CompileOpt(spec.Prog, mode, mp, Options{CheckInvariants: true})
					if err != nil {
						t.Errorf("%s/%s: %v", spec.Name, mode, err)
						return
					}
					for _, a := range c.Prog.Arrays {
						if a.Base%lineWords != 0 {
							t.Errorf("%s/%s: array %s base %d not aligned to %d words",
								spec.Name, mode, a.Name, a.Base, lineWords)
						}
					}
				}(spec, mode, []int64{4, 8}[i%2])
			}
		}
	}
	wg.Wait()
	for _, spec := range specs {
		for _, a := range spec.Prog.Arrays {
			if a.Base != 0 {
				t.Errorf("source program %s array %s was laid out (Base=%d)", spec.Name, a.Name, a.Base)
			}
		}
	}
}

func TestCompileRejectsUnknownMode(t *testing.T) {
	p := buildProg(t)
	_, err := Compile(p, Mode(99), machine.T3D(4))
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("err = %v", err)
	}
}
