package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/pass"
	"repro/internal/sched"
	"repro/internal/stale"
	"repro/internal/target"
)

// Pass names, in pipeline order. Exported as constants so drivers can
// validate -dump-after arguments without stringly-typed guesswork.
const (
	PassClone      = "clone"
	PassLayout     = "layout"
	PassBaseLower  = "base-lower"
	PassStale      = "stale-analysis"
	PassCandidates = "select-candidates"
	PassTargets    = "target-analysis"
	PassSched      = "prefetch-sched"
	PassRemap      = "remap-ids"
	PassValidate   = "validate"
	PassSyms       = "intern-syms"
)

// pipeline assembles the pass list for one execution mode:
//
//	all modes:  clone → layout → ... → intern-syms
//	BASE:       + base-lower (CRAFT shared data is not cached)
//	CCDP:       + stale-analysis → select-candidates → target-analysis →
//	              prefetch-sched → remap-ids → validate
//
// SEQ, INCOHERENT and the HWDIR modes insert no transformation passes:
// plain cached execution (coherence, where it exists, is the hardware
// directory's job at run time, not the compiler's).
func pipeline(mode Mode) []pass.Pass {
	ps := []pass.Pass{clonePass(), layoutPass()}
	switch mode {
	case ModeBase:
		ps = append(ps, baseLowerPass())
	case ModeCCDP:
		ps = append(ps, stalePass(), candidatesPass(), targetsPass(),
			schedPass(), remapPass(), validatePass())
	}
	return append(ps, symsPass())
}

// PassNames returns the pipeline's pass names for one mode, in order.
func PassNames(mode Mode) []string {
	ps := pipeline(mode)
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name()
	}
	return names
}

// clonePass deep-copies the source program (arrays included — the clone
// owns its layout) and finalizes the copy so analyses can key on RefIDs.
// The source program is never touched, so compiles of any programs —
// related or not — run concurrently without locking.
func clonePass() pass.Pass {
	return pass.Func(PassClone, func(ctx *pass.Context) error {
		ctx.Prog = ir.CloneProgram(ctx.Src)
		ctx.Prog.Finalize()
		return nil
	})
}

// layoutPass assigns cache-line-aligned base addresses to the clone's
// arrays and records the total shared address-space extent. Layout is
// deterministic in (program, LineWords), so every mode of a sweep point
// sees the identical layout.
func layoutPass() pass.Pass {
	return pass.Func(PassLayout, func(ctx *pass.Context) error {
		ctx.TotalWords = mem.Layout(ctx.Prog, ctx.Machine.LineWords)
		return nil
	})
}

// baseLowerPass marks every reference to a shared array as non-cached (the
// CRAFT rule: shared data is not cached, so BASE never violates coherence).
func baseLowerPass() pass.Pass {
	return pass.Func(PassBaseLower, func(ctx *pass.Context) error {
		for _, r := range ctx.Prog.Refs() {
			if !r.IsScalar() && r.Array.Shared {
				r.NonCached = true
			}
		}
		return nil
	})
}

// stalePass runs the stale reference analysis (paper §4.1) — domain-aware
// when the machine has coherence domains — and records a witness for every
// stale, demoted and remote read.
func stalePass() pass.Pass {
	return pass.Func(PassStale, func(ctx *pass.Context) error {
		sres, err := stale.AnalyzeOpt(ctx.Prog, ctx.Machine.NumPE,
			stale.Options{Domains: ctx.Machine.DomainTable()})
		if err != nil {
			return err
		}
		ctx.Stale = sres
		for id, why := range sres.Why {
			ctx.Prov.Record(id, PassStale, pass.VerdictStale, why)
		}
		for id, why := range sres.DemotedWhy {
			ctx.Prov.Record(id, PassStale, pass.VerdictDemoted, why)
		}
		for id, why := range sres.RemoteWhy {
			ctx.Prov.Record(id, PassStale, pass.VerdictRemote, why)
		}
		return nil
	})
}

// candidatesPass derives the prefetch candidate set: every potentially-
// stale read, widened by the paper's §6 extension to the non-stale remote
// reads when the machine enables it.
func candidatesPass() pass.Pass {
	return pass.Func(PassCandidates, func(ctx *pass.Context) error {
		s := ctx.Stale
		cand := make(map[ir.RefID]bool, len(s.StaleReads)+len(s.RemoteReads))
		for id := range s.StaleReads {
			cand[id] = true
			ctx.Prov.Record(id, PassCandidates, pass.VerdictCandidate,
				"potentially-stale read must be re-fetched coherently")
		}
		if ctx.Machine.PrefetchNonStale {
			for id := range s.RemoteReads {
				if cand[id] {
					continue
				}
				cand[id] = true
				ctx.Prov.Record(id, PassCandidates, pass.VerdictCandidate,
					"non-stale remote read (§6 extension: prefetch remote data too)")
			}
		}
		ctx.Candidates = cand
		return nil
	})
}

// targetsPass runs the prefetch target analysis (paper Figure 1): per
// region, group-spatial class leaders become targets; other members are
// dropped as covered, scalars are dropped outright.
func targetsPass() pass.Pass {
	return pass.Func(PassTargets, func(ctx *pass.Context) error {
		tres := target.Analyze(ctx.Prog, ctx.Candidates, ctx.Machine.LineWords)
		ctx.Targets = tres
		for id := range tres.Targets {
			ctx.Prov.Record(id, PassTargets, pass.VerdictSelected,
				"group-spatial class leader in "+target.RegionLabel(tres.RegionOf[id]))
		}
		for id, d := range tres.Dropped {
			if leader, ok := tres.CoveredBy[id]; ok {
				ctx.Prov.RecordRel(id, PassTargets, pass.VerdictCovered,
					"leader's prefetch brings the cache line that serves this reference", leader)
			} else {
				ctx.Prov.Record(id, PassTargets, pass.VerdictDropped, d.String())
			}
		}
		return nil
	})
}

// schedPass runs the prefetch scheduling algorithm (paper Figure 2),
// mutating the program in place: stale reads get their flags, prefetch
// statements and annotations are inserted.
func schedPass() pass.Pass {
	return pass.Func(PassSched, func(ctx *pass.Context) error {
		scres := sched.Schedule(ctx.Prog, ctx.Stale, ctx.Targets, ctx.Machine)
		ctx.Sched = scres
		for _, d := range scres.Decisions {
			verdict := pass.VerdictScheduled
			if d.Technique == sched.TechNone {
				verdict = pass.VerdictBypass
			}
			ctx.Prov.Record(d.Ref.ID, PassSched, verdict, decisionReason(d))
		}
		return nil
	})
}

// decisionReason renders one scheduling decision as a provenance reason.
func decisionReason(d sched.Decision) string {
	switch d.Technique {
	case sched.TechVPG:
		s := fmt.Sprintf("case %d: VPG vector prefetch, %d words", d.Case, d.Words)
		if d.Hoisted {
			s += ", hoisted to DOALL prologue"
		}
		return s
	case sched.TechSP:
		return fmt.Sprintf("case %d: software-pipelined %d iterations ahead", d.Case, d.Ahead)
	case sched.TechMBP:
		return fmt.Sprintf("case %d: prefetch moved back %d cycles before the use", d.Case, d.MovedBack)
	default:
		return fmt.Sprintf("case %d: demoted to bypass fetch — %s", d.Case, d.Reason)
	}
}

// remapPass re-finalizes the program (the scheduler's insertions need
// RefIDs) and rewrites every RefID-keyed artifact — the analysis maps, the
// candidate set and the provenance store — onto the new IDs.
func remapPass() pass.Pass {
	return pass.Func(PassRemap, func(ctx *pass.Context) error {
		old := append([]*ir.Ref(nil), ctx.Prog.Refs()...)
		ctx.Prog.Finalize()
		remapIDs(ctx.Stale, ctx.Targets, old)
		cand := make(map[ir.RefID]bool, len(ctx.Candidates))
		for id, v := range ctx.Candidates {
			cand[old[id].ID] = v
		}
		ctx.Candidates = cand
		ctx.Prov.Remap(old)
		return nil
	})
}

// validatePass re-checks the transformed program's structural
// well-formedness: the scheduler's insertions must leave a valid program.
func validatePass() pass.Pass {
	return pass.Func(PassValidate, func(ctx *pass.Context) error {
		if err := ir.Validate(ctx.Prog); err != nil {
			return fmt.Errorf("scheduled program invalid: %w", err)
		}
		return nil
	})
}

// symsPass interns the final program's symbol names. It must run after the
// mode lowering: the CCDP scheduler inserts vector prefetches with fresh
// pull variables that need slots too.
func symsPass() pass.Pass {
	return pass.Func(PassSyms, func(ctx *pass.Context) error {
		ctx.Syms = ir.CollectSyms(ctx.Prog)
		return nil
	})
}
