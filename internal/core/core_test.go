package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func buildProg(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("coretest")
	a := b.SharedArray("A", 64)
	c := b.SharedArray("C", 64)
	tp := b.Array("T", 8)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(63))))),
		ir.Set(ir.At(tp, ir.K(0)), ir.N(1)),
	)
	return b.Build()
}

func TestModeStrings(t *testing.T) {
	cases := map[Mode]string{ModeSeq: "SEQ", ModeBase: "BASE", ModeCCDP: "CCDP", ModeIncoherent: "INCOHERENT"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestSeqForcesOnePE(t *testing.T) {
	p := buildProg(t)
	c, err := Compile(p, ModeSeq, machine.T3D(16))
	if err != nil {
		t.Fatal(err)
	}
	if c.Machine.NumPE != 1 {
		t.Errorf("SEQ NumPE = %d", c.Machine.NumPE)
	}
}

func TestBaseLoweringMarksOnlySharedRefs(t *testing.T) {
	p := buildProg(t)
	c, err := Compile(p, ModeBase, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Prog.Refs() {
		if r.IsScalar() {
			continue
		}
		if r.Array.Shared && !r.NonCached {
			t.Errorf("shared ref %s not marked NonCached", r)
		}
		if !r.Array.Shared && r.NonCached {
			t.Errorf("private ref %s marked NonCached", r)
		}
	}
	// The source program must be untouched.
	for _, r := range p.Refs() {
		if r.NonCached || r.Stale {
			t.Errorf("source ref %s mutated by compile", r)
		}
	}
}

func TestCCDPRemapsIDsConsistently(t *testing.T) {
	p := buildProg(t)
	c, err := Compile(p, ModeCCDP, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	// Every ID in the remapped maps must resolve, and every flagged-stale
	// ref's ID must be in StaleReads.
	for id := range c.Stale.StaleReads {
		r := c.Prog.Ref(id)
		if r == nil || !r.Stale {
			t.Errorf("StaleReads id %d resolves to %v (Stale=%v)", id, r, r != nil && r.Stale)
		}
	}
	for _, r := range c.Prog.Refs() {
		if r.Stale && !c.Stale.StaleReads[r.ID] {
			t.Errorf("ref %s flagged Stale but absent from remapped StaleReads", r)
		}
	}
	for id, leader := range c.Targets.CoveredBy {
		if c.Prog.Ref(id) == nil || c.Prog.Ref(leader) == nil {
			t.Errorf("CoveredBy %d->%d dangles", id, leader)
		}
	}
}

func TestCompileRejectsBadMachine(t *testing.T) {
	p := buildProg(t)
	mp := machine.T3D(4)
	mp.PrefetchQueueWords = 0
	if _, err := Compile(p, ModeCCDP, mp); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestReportIncludesPhases(t *testing.T) {
	p := buildProg(t)
	c, err := Compile(p, ModeCCDP, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	for _, want := range []string{"CCDP", "stale reference analysis", "prefetch target analysis", "prefetch scheduling"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	cb, _ := Compile(p, ModeBase, machine.T3D(4))
	if strings.Contains(cb.Report(), "stale reference") {
		t.Error("BASE report should not include analysis phases")
	}
}

func TestLayoutDeterministicAcrossModes(t *testing.T) {
	p := buildProg(t)
	c1, err := Compile(p, ModeBase, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(p, ModeCCDP, machine.T3D(8))
	if err != nil {
		t.Fatal(err)
	}
	// Each compile lays out its own clone; the layout depends only on
	// (program, LineWords), so every mode of a sweep point agrees.
	if b1, b2 := c1.Prog.ArrayByName("A").Base, c2.Prog.ArrayByName("A").Base; b1 != b2 {
		t.Errorf("layout differs between compiles: %d vs %d", b1, b2)
	}
	if c1.TotalWords != c2.TotalWords {
		t.Errorf("total words differ: %d vs %d", c1.TotalWords, c2.TotalWords)
	}
	// The source program is never laid out (or otherwise mutated).
	if p.ArrayByName("A").Base != 0 || p.ArrayByName("C").Base != 0 {
		t.Error("compile mutated the source program's layout")
	}
}
