package mem

import (
	"testing"

	"repro/internal/ir"
)

func TestLayoutAlignsToLines(t *testing.T) {
	b := ir.NewBuilder("m")
	a := b.SharedArray("A", 10, 6)
	tp := b.Array("T", 7)
	c := b.SharedArray("B", 8)
	b.Routine("main", ir.Set(ir.At(tp, ir.K(0)), ir.N(0)))
	p := b.Build()
	total := Layout(p, 4)
	if a.Base%4 != 0 || tp.Base%4 != 0 || c.Base%4 != 0 {
		t.Errorf("bases not line aligned: %d %d %d", a.Base, tp.Base, c.Base)
	}
	if a.Base != 0 || tp.Base != 64 || c.Base != 76 {
		t.Errorf("bases = %d %d %d", a.Base, tp.Base, c.Base)
	}
	if total != 88 {
		t.Errorf("total = %d", total)
	}
}

func TestMemoryReadWriteGenerations(t *testing.T) {
	b := ir.NewBuilder("m")
	a := b.SharedArray("A", 16)
	b.Routine("main", ir.Set(ir.At(a, ir.K(0)), ir.N(0)))
	p := b.Build()
	total := Layout(p, 4)
	m := New(p, 4, total)

	addr := AddrOf(a, []int64{5})
	if v, g := m.Read(addr); v != 0 || g != 0 {
		t.Errorf("initial read = %v gen %d", v, g)
	}
	if g := m.Write(addr, 3.5); g != 1 {
		t.Errorf("gen after write = %d", g)
	}
	if v, g := m.Read(addr); v != 3.5 || g != 1 {
		t.Errorf("read after write = %v gen %d", v, g)
	}
	m.Write(addr, 4.5)
	if m.Gen(addr) != 2 {
		t.Errorf("gen = %d", m.Gen(addr))
	}
}

func TestOwnerAndArrayLookup(t *testing.T) {
	b := ir.NewBuilder("m")
	a := b.SharedArray("A", 8, 8) // 64 words, 8 cols over 4 PEs: 2 cols each
	tp := b.Array("T", 4)
	b.Routine("main", ir.Set(ir.At(tp, ir.K(0)), ir.N(0)))
	p := b.Build()
	total := Layout(p, 4)
	m := New(p, 4, total)

	if m.ArrayOf(0) != a || m.ArrayOf(63) != a || m.ArrayOf(68) != tp {
		t.Error("ArrayOf wrong")
	}
	if m.ArrayOf(64) != nil {
		t.Error("padding word attributed to an array")
	}
	if m.ArrayOf(total) != nil {
		t.Error("ArrayOf out of range should be nil")
	}
	// Column k (stride 8) belongs to PE k/2.
	for k := int64(0); k < 8; k++ {
		addr := AddrOf(a, []int64{3, k})
		if got := m.OwnerOf(addr); got != int(k/2) {
			t.Errorf("col %d owner = %d, want %d", k, got, k/2)
		}
	}
	// Private array owned by PE 0.
	if m.OwnerOf(AddrOf(tp, []int64{1})) != 0 {
		t.Error("private array not owned by 0")
	}
}

func TestArrayDataView(t *testing.T) {
	b := ir.NewBuilder("m")
	a := b.SharedArray("A", 4)
	b.Routine("main", ir.Set(ir.At(a, ir.K(0)), ir.N(0)))
	p := b.Build()
	m := New(p, 2, Layout(p, 4))
	m.Write(AddrOf(a, []int64{2}), 9)
	if d := m.ArrayData(a); len(d) != 4 || d[2] != 9 {
		t.Errorf("ArrayData = %v", d)
	}
}

func TestAddrOfBoundsPanic(t *testing.T) {
	a := &ir.Array{Name: "A", Dims: []int64{4}}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range AddrOf did not panic")
		}
	}()
	AddrOf(a, []int64{4})
}
