// Package mem implements the simulated physically-distributed, logically
// shared memory of the T3D model: a single word address space laid out over
// the program's arrays, an owner PE for every word (from the block
// distributions), and a per-word generation counter used by the coherence
// checker — a cached copy whose generation is older than memory's has been
// overwritten since it was cached, and reading it is a stale-value read.
package mem

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/craft"
	"repro/internal/ir"
)

// Layout assigns a base word address to every array of the program, each
// aligned to a cache line boundary (the paper requires arrays to start at
// the beginning of a cache line for the group-spatial mapping to be exact).
// It returns the total extent of the address space in words.
func Layout(p *ir.Program, lineWords int64) int64 {
	next := int64(0)
	align := func(x int64) int64 {
		if r := x % lineWords; r != 0 {
			return x + lineWords - r
		}
		return x
	}
	for _, a := range p.Arrays {
		next = align(next)
		a.Base = next
		// One line of inter-array padding: packed power-of-two arrays
		// (VPENTA's 128² matrices are an exact multiple of the 8 KB cache)
		// would otherwise map every array's (i,j) element to the same
		// direct-mapped slot and thrash; separately allocated arrays on a
		// real machine do not share low-order address bits like that.
		next += a.Size() + lineWords
	}
	return align(next)
}

// Memory is the simulated shared memory of one run.
//
// Words and generations are stored atomically: within a parallel epoch the
// program-level reads and writes of different PEs are disjoint (the epoch
// model), but the SIMULATED hardware reads whole cache lines, and a line
// fill at a distribution boundary may touch words a neighbouring PE is
// concurrently writing. Those fill-read values are never consumed — the
// compiler-directed invalidation drops such lines before any PE reads the
// foreign words — but the accesses themselves must be race-free.
type Memory struct {
	prog  *ir.Program
	numPE int
	words []uint64 // float64 bits
	gen   []uint32

	// serial, when true, lets Read/Write/Gen use plain (non-atomic) loads
	// and stores: the engine sets it whenever exactly one goroutine touches
	// the memory — serial epochs, 1-PE runs, and the deterministic
	// sequential orders (race detection, torus booking). The stored values
	// are identical either way; only the synchronization cost differs.
	serial bool

	// bases[i] is the base address of arrays[i], sorted ascending, for
	// address→array lookup.
	bases  []int64
	arrays []*ir.Array
}

// New builds the memory for a laid-out program. Layout must have been
// called (every array needs a distinct Base).
func New(p *ir.Program, numPE int, totalWords int64) *Memory {
	m := &Memory{
		prog:  p,
		numPE: numPE,
		words: make([]uint64, totalWords),
		gen:   make([]uint32, totalWords),
	}
	arrays := append([]*ir.Array(nil), p.Arrays...)
	sort.Slice(arrays, func(i, j int) bool { return arrays[i].Base < arrays[j].Base })
	for _, a := range arrays {
		m.bases = append(m.bases, a.Base)
		m.arrays = append(m.arrays, a)
	}
	return m
}

// Reset zeroes every word and generation, returning the memory to its
// just-built state without reallocating (engine reuse across runs). Must
// be called from a single-goroutine section, like SetSerial.
func (m *Memory) Reset() {
	for i := range m.words {
		m.words[i] = 0
	}
	for i := range m.gen {
		m.gen[i] = 0
	}
}

// Clone returns a memory with its own copy of the word and generation
// state, sharing the immutable layout (program, array table). The execution
// engine detaches a finished run's memory from the engine before the engine
// is reused, so the returned Result stays valid. The clone starts in serial
// mode: it belongs to whoever holds the Result, not to a running machine.
func (m *Memory) Clone() *Memory {
	out := *m
	out.words = append([]uint64(nil), m.words...)
	out.gen = append([]uint32(nil), m.gen...)
	out.serial = true
	return &out
}

// ArrayNamed returns this memory's own record of the named array — the
// compiled clone's copy, whose Base matches this memory's layout. Callers
// comparing results across runs must resolve arrays through each run's
// memory, not through the shared source program, whose Base may since have
// been re-laid-out (e.g. by a concurrent compile at another line size).
func (m *Memory) ArrayNamed(name string) *ir.Array {
	return m.prog.ArrayByName(name)
}

// ArrayOf returns the array containing the given word address, or nil.
func (m *Memory) ArrayOf(addr int64) *ir.Array {
	i := sort.Search(len(m.bases), func(i int) bool { return m.bases[i] > addr })
	if i == 0 {
		return nil
	}
	a := m.arrays[i-1]
	if addr >= a.Base+a.Size() {
		return nil
	}
	return a
}

// OwnerOf returns the PE owning the given word address (0 for private
// arrays and for the sequential configuration).
func (m *Memory) OwnerOf(addr int64) int {
	a := m.ArrayOf(addr)
	if a == nil {
		return 0
	}
	return craft.OwnerOfOffset(a, m.numPE, addr-a.Base)
}

// SetSerial switches between plain and atomic word/generation accesses.
// Callers must only enable it while a single goroutine accesses the memory;
// the engine toggles it at the parallel-epoch boundaries. It must itself be
// called from a single-goroutine section.
func (m *Memory) SetSerial(serial bool) { m.serial = serial }

// Read returns the value and generation of the word at addr.
func (m *Memory) Read(addr int64) (float64, uint32) {
	if m.serial {
		return math.Float64frombits(m.words[addr]), m.gen[addr]
	}
	return math.Float64frombits(atomic.LoadUint64(&m.words[addr])), atomic.LoadUint32(&m.gen[addr])
}

// Value returns just the value at addr.
func (m *Memory) Value(addr int64) float64 {
	if m.serial {
		return math.Float64frombits(m.words[addr])
	}
	return math.Float64frombits(atomic.LoadUint64(&m.words[addr]))
}

// Gen returns the current generation of addr.
func (m *Memory) Gen(addr int64) uint32 {
	if m.serial {
		return m.gen[addr]
	}
	return atomic.LoadUint32(&m.gen[addr])
}

// PeekBits returns the raw stored bits and generation of the word at addr —
// the exact round-trippable representation the optimistic PDES undo log
// (internal/exec) captures before a speculative write. Float64bits survives
// NaN payloads that a float64-level copy could normalize.
func (m *Memory) PeekBits(addr int64) (bits uint64, gen uint32) {
	if m.serial {
		return m.words[addr], m.gen[addr]
	}
	return atomic.LoadUint64(&m.words[addr]), atomic.LoadUint32(&m.gen[addr])
}

// RestoreBits reinstates a word and generation captured by PeekBits (the
// rollback path). Must only be called from a single-goroutine section; the
// engine rolls PEs back during the serial validation phase.
func (m *Memory) RestoreBits(addr int64, bits uint64, gen uint32) {
	m.words[addr] = bits
	m.gen[addr] = gen
}

// Write stores v at addr and bumps its generation. Within a parallel epoch
// only one PE writes a given address (the epoch execution model); the
// engine's race detector verifies this in tests.
func (m *Memory) Write(addr int64, v float64) uint32 {
	if m.serial {
		m.words[addr] = math.Float64bits(v)
		m.gen[addr]++
		return m.gen[addr]
	}
	atomic.StoreUint64(&m.words[addr], math.Float64bits(v))
	return atomic.AddUint32(&m.gen[addr], 1)
}

// ArrayData returns a snapshot of one array's contents (for golden-value
// comparison after a run). The array is resolved by name against this
// memory's own program, so callers may pass a record from the source
// program even though the compiled clone owns the layout this memory was
// built from (the source's Base is never assigned).
func (m *Memory) ArrayData(a *ir.Array) []float64 {
	if own := m.prog.ArrayByName(a.Name); own != nil {
		a = own
	}
	out := make([]float64, a.Size())
	for i := range out {
		out[i] = math.Float64frombits(atomic.LoadUint64(&m.words[a.Base+int64(i)]))
	}
	return out
}

// Words returns the total address-space size.
func (m *Memory) Words() int64 { return int64(len(m.words)) }

// NumPE returns the configured PE count.
func (m *Memory) NumPE() int { return m.numPE }

// AddrOf computes the word address of an array element, panicking on
// out-of-range subscripts with a diagnostic (an engine-level bounds check —
// the "program bug" detector).
func AddrOf(a *ir.Array, idx []int64) int64 {
	for d, x := range idx {
		if x < 0 || x >= a.Dims[d] {
			BoundsPanic(a, d, x)
		}
	}
	return a.Base + a.LinearOffset(idx)
}

// BoundsPanic reports an out-of-range subscript; the execution engine's
// precompiled address paths call it so their diagnostics stay identical to
// AddrOf's.
func BoundsPanic(a *ir.Array, d int, x int64) {
	panic(fmt.Sprintf("mem: %s subscript %d out of range: %d (extent %d)", a.Name, d, x, a.Dims[d]))
}
