// Package bitset provides the dense, allocation-free set representations
// the execution engine's hot path uses in place of Go maps: a plain bitset
// over a word-address (or line-address) universe, and a Sparse variant that
// additionally tracks which indices were set so it can be cleared in time
// proportional to its population, not its universe — the property the
// per-epoch sets (vector-buffered lines, race-detection address sets) need.
package bitset

// Set is a fixed-universe bitset.
type Set struct {
	bits []uint64
}

// NewSet returns a set over the universe [0, n).
func NewSet(n int64) *Set {
	return &Set{bits: make([]uint64, (n+63)/64)}
}

// Grow extends the universe to at least n.
func (s *Set) Grow(n int64) {
	need := (n + 63) / 64
	if int64(len(s.bits)) < need {
		nb := make([]uint64, need)
		copy(nb, s.bits)
		s.bits = nb
	}
}

// Add inserts i and reports whether it was newly added.
func (s *Set) Add(i int64) bool {
	w, b := i>>6, uint64(1)<<(i&63)
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	return true
}

// Remove deletes i.
func (s *Set) Remove(i int64) { s.bits[i>>6] &^= uint64(1) << (i & 63) }

// Contains reports membership of i.
func (s *Set) Contains(i int64) bool {
	return s.bits[i>>6]&(uint64(1)<<(i&63)) != 0
}

// Sparse is a bitset plus the list of members in insertion order: O(1)
// insert and membership, O(population) clear and iteration. Iteration order
// is the deterministic insertion order, unlike a Go map.
type Sparse struct {
	set     Set
	members []int64
}

// NewSparse returns a sparse set over the universe [0, n).
func NewSparse(n int64) *Sparse {
	return &Sparse{set: Set{bits: make([]uint64, (n+63)/64)}}
}

// Add inserts i (idempotent) and reports whether it was newly added.
func (s *Sparse) Add(i int64) bool {
	if !s.set.Add(i) {
		return false
	}
	s.members = append(s.members, i)
	return true
}

// Contains reports membership of i.
func (s *Sparse) Contains(i int64) bool { return s.set.Contains(i) }

// Len returns the population.
func (s *Sparse) Len() int { return len(s.members) }

// Members returns the members in insertion order. The slice is owned by the
// set and valid until the next Add or Reset.
func (s *Sparse) Members() []int64 { return s.members }

// Reset empties the set in O(population), keeping the backing storage.
func (s *Sparse) Reset() {
	for _, i := range s.members {
		s.set.Remove(i)
	}
	s.members = s.members[:0]
}
