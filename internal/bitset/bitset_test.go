package bitset

import "testing"

func TestSetBasics(t *testing.T) {
	s := NewSet(200)
	if s.Contains(63) || s.Contains(64) {
		t.Fatal("empty set contains elements")
	}
	if !s.Add(63) || !s.Add(64) || !s.Add(199) {
		t.Fatal("fresh Add reported existing")
	}
	if s.Add(64) {
		t.Fatal("duplicate Add reported new")
	}
	for _, i := range []int64{63, 64, 199} {
		if !s.Contains(i) {
			t.Fatalf("missing %d", i)
		}
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Remove left 64 behind")
	}
	if s.Contains(0) || s.Contains(100) {
		t.Fatal("phantom members")
	}
}

func TestSetGrow(t *testing.T) {
	s := NewSet(10)
	s.Add(5)
	s.Grow(1000)
	if !s.Contains(5) {
		t.Fatal("Grow lost members")
	}
	s.Add(999)
	if !s.Contains(999) {
		t.Fatal("grown universe not addressable")
	}
}

func TestSparseInsertionOrderAndReset(t *testing.T) {
	s := NewSparse(512)
	in := []int64{300, 7, 300, 64, 7, 0}
	for _, i := range in {
		s.Add(i)
	}
	want := []int64{300, 7, 64, 0}
	got := s.Members()
	if len(got) != len(want) || s.Len() != len(want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v (insertion order)", got, want)
		}
	}
	s.Reset()
	if s.Len() != 0 || s.Contains(300) || s.Contains(0) {
		t.Fatal("Reset left members behind")
	}
	// Storage is reusable after Reset.
	if !s.Add(7) || s.Len() != 1 || !s.Contains(7) {
		t.Fatal("set unusable after Reset")
	}
}
