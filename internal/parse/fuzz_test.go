package parse

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/progen"
)

// FuzzProgram asserts the parser's two contracts on arbitrary input:
// it never panics (malformed source yields an error), and any source it
// does accept round-trips — Format(parse(s)) reparses to the same bytes,
// so artifacts and goldens are stable.
func FuzzProgram(f *testing.F) {
	for seed := int64(0); seed < 5; seed++ {
		p := progen.Generate(rand.New(rand.NewSource(seed)), progen.DefaultConfig())
		f.Add(ir.Format(p))
	}
	f.Add("program x\nroutine main\nend\n")
	f.Add("program x\n  real A(8)  ! shared, dist=block\nroutine main\n  A(0) = 1\nend\n")
	f.Add("program x\nroutine main\n  do i = 1, 4\n  enddo\nend\n")
	f.Add("program x\nroutine main\n  if (s < 1) then\n  endif\nend\n")
	f.Add(strings.Repeat("(", 4096))
	f.Add("real real real ! @attr")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Program(src)
		if err != nil {
			return
		}
		text := ir.Format(p)
		p2, err := Program(text)
		if err != nil {
			t.Fatalf("accepted program does not reparse: %v\n%s", err, text)
		}
		if got := ir.Format(p2); got != text {
			t.Fatalf("format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, got)
		}
	})
}
