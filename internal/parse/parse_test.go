package parse

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/progen"
	"repro/internal/workloads"
)

const simpleSrc = `
program demo
  param N = 16
  real A(16)  ! shared, dist=block
  real C(16)  ! shared, dist=block
  real T(4)  ! private
routine main
  doall[static] i = 0, N - 1 align=16
    A(i) = real(i)
  enddo
  doall[static] j = 0, 15
    C(j) = (A(-j + 15) * 2)
  enddo
  T(0) = 1.5
end
`

func TestParseSimpleProgram(t *testing.T) {
	p, err := Program(simpleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || p.Params["N"] != 16 {
		t.Errorf("header: name=%q params=%v", p.Name, p.Params)
	}
	a := p.ArrayByName("A")
	if a == nil || !a.Shared || a.Dist != ir.DistBlock || a.Dims[0] != 16 {
		t.Fatalf("array A = %+v", a)
	}
	if tp := p.ArrayByName("T"); tp == nil || tp.Shared {
		t.Fatalf("array T = %+v", tp)
	}
	body := p.MainRoutine().Body
	if len(body) != 3 {
		t.Fatalf("main has %d statements", len(body))
	}
	l0 := body[0].(*ir.Loop)
	if !l0.Parallel || l0.AlignExtent != 16 || !l0.Hi.Equal(ir.I("N").AddConst(-1)) {
		t.Errorf("loop 0 = %+v", l0)
	}
}

func TestParsedProgramExecutes(t *testing.T) {
	p, err := Program(simpleSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(p, core.ModeCCDP, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(c, exec.Options{FailOnStale: true})
	if err != nil {
		t.Fatal(err)
	}
	data := res.Mem.ArrayData(p.ArrayByName("C"))
	for j := int64(0); j < 16; j++ {
		if data[j] != float64(15-j)*2 {
			t.Fatalf("C[%d] = %v", j, data[j])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{"routine main\nend", "expected \"program\""},
		{"program p\nroutine main\n  x = (1 +\nend", "expected \")\""},
		{"program p\nroutine main\n  A(0) = 1\nend", "undeclared array"},
		{"program p\nroutine main\n  do i = , 5\n  enddo\nend", "empty affine"},
		{"program p\nroutine main\n  prefetch x\nend", "compiler output"},
		{"program p\n  real A(4)  ! sharedish\nroutine main\n  x = 1\nend", "unknown array attribute"},
		{"program p", "no routines"},
		{"program p\nroutine main\n  if (x ~ 1) then\n  endif\nend", "comparison"},
	}
	for _, tc := range cases {
		_, err := Program(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("src %q: err = %v, want %q", tc.src, err, tc.wantErr)
		}
	}
}

// Round trip: Format(parse(Format(p))) == Format(p) for every workload
// source program.
func TestRoundTripWorkloads(t *testing.T) {
	for _, s := range workloads.Small() {
		text := ir.Format(s.Prog)
		parsed, err := Program(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", s.Name, err, text)
		}
		if got := ir.Format(parsed); got != text {
			t.Errorf("%s: round trip differs\n--- printed:\n%s\n--- reparsed:\n%s", s.Name, text, got)
		}
	}
}

// Property: round trip over the random program corpus.
func TestPropRoundTripRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := progen.Generate(rand.New(rand.NewSource(seed)), progen.DefaultConfig())
		text := ir.Format(p)
		parsed, err := Program(text)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, text)
		}
		if got := ir.Format(parsed); got != text {
			t.Fatalf("seed %d: round trip differs\n--- printed:\n%s\n--- reparsed:\n%s", seed, text, got)
		}
	}
}

// Parsed programs behave identically to their originals.
func TestPropParsedProgramsEquivalent(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := progen.Generate(rand.New(rand.NewSource(seed+100)), progen.DefaultConfig())
		parsed, err := Program(ir.Format(p))
		if err != nil {
			t.Fatal(err)
		}
		run := func(prog *ir.Program) *exec.Result {
			c, err := core.Compile(prog, core.ModeCCDP, machine.T3D(4))
			if err != nil {
				t.Fatal(err)
			}
			r, err := exec.Run(c, exec.Options{FailOnStale: true})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		r1, r2 := run(p), run(parsed)
		if r1.Cycles != r2.Cycles {
			t.Errorf("seed %d: cycles differ: %d vs %d", seed, r1.Cycles, r2.Cycles)
		}
		for _, arr := range p.Arrays {
			d1 := r1.Mem.ArrayData(arr)
			d2 := r2.Mem.ArrayData(parsed.ArrayByName(arr.Name))
			for i := range d1 {
				if d1[i] != d2[i] {
					t.Fatalf("seed %d: %s[%d] differs", seed, arr.Name, i)
				}
			}
		}
	}
}
