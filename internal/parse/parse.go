// Package parse reads the Fortran-flavoured text form that ir.Format emits
// back into an ir.Program, so programs can be stored in files, edited by
// hand and fed to the drivers — and so the printer/parser round trip can be
// property-tested. The accepted grammar is exactly the printer's source
// subset (compiler-inserted prefetch statements and annotations are
// rejected: they are an output of compilation, not an input):
//
//	program  := "program" name decl* routine+
//	decl     := "param" name "=" int
//	          | "real" name "(" int ("," int)* ")" "!" ("private" | "shared, dist=block")
//	routine  := "routine" name stmt* "end"
//	stmt     := loop | assign | if | call
//	loop     := ("do" | "doall[static]" | "doall[dynamic]") name "=" affine "," affine
//	            ["," int] ["?bounds"] ["align=" int] stmt* "enddo"
//	assign   := ref "=" expr
//	if       := "if" "(" expr cmp expr ")" "then" stmt* ["else" stmt*] "endif"
//	call     := "call" name
//	ref      := name | name "(" affine ("," affine)* ")"
//	expr     := number | "real(" affine ")" | ref | "(" expr op expr ")"
//	          | "(-" expr ")" | ("min"|"max") "(" expr "," expr ")"
//	          | ("abs"|"sqrt") "(" expr ")"
//	affine   := ["-"] term (("+"|"-") term)*    term := [int "*"] name | int
package parse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/ir"
)

// Program parses the text form of a whole program.
func Program(src string) (*ir.Program, error) {
	p := &parser{}
	p.tokenize(src)
	prog, err := p.program()
	if err != nil {
		return nil, fmt.Errorf("parse: line %d: %w", p.errLine, err)
	}
	prog.Finalize()
	if err := ir.Validate(prog); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	return prog, nil
}

type token struct {
	text string
	line int
}

type parser struct {
	toks    []token
	pos     int
	errLine int
	prog    *ir.Program
	arrays  map[string]*ir.Array
	depth   int
}

// maxNest bounds combined statement/expression nesting. Real programs stay
// in the single digits; the bound exists so adversarial input (e.g. a
// megabyte of "(") is rejected with an error instead of overflowing the
// goroutine stack, which no recover can catch.
const maxNest = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxNest {
		return fmt.Errorf("nesting deeper than %d", maxNest)
	}
	return nil
}

// tokenize splits the source into tokens, dropping "!"-comments except the
// array-attribute comment, which the line-based pre-pass rewrites into
// pseudo tokens.
func (p *parser) tokenize(src string) {
	for ln, rawLine := range strings.Split(src, "\n") {
		line := rawLine
		// The program name is free-form (generated names contain dashes):
		// take the rest of the line as a single token.
		if trimmed := strings.TrimSpace(line); strings.HasPrefix(trimmed, "program ") {
			p.toks = append(p.toks,
				token{text: "program", line: ln + 1},
				token{text: strings.TrimSpace(strings.TrimPrefix(trimmed, "program ")), line: ln + 1})
			continue
		}
		// Array declarations carry their attributes in a comment; rewrite
		// it into tokens before stripping comments.
		if strings.Contains(line, "real ") && strings.Contains(line, "!") {
			line = strings.Replace(line, "!", "@attr", 1)
		} else if i := strings.Index(line, "!"); i >= 0 {
			line = line[:i]
		}
		p.tokenizeLine(line, ln+1)
	}
}

func isIdentRune(r byte) bool {
	return r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '.'
}

func (p *parser) tokenizeLine(line string, ln int) {
	i := 0
	emit := func(s string) { p.toks = append(p.toks, token{text: s, line: ln}) }
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c >= '0' && c <= '9' ||
			(c == '.' && i+1 < len(line) && line[i+1] >= '0' && line[i+1] <= '9'):
			j := i
			for j < len(line) && (isIdentRune(line[j]) || line[j] == '+' && j > i && (line[j-1] == 'e' || line[j-1] == 'E') ||
				line[j] == '-' && j > i && (line[j-1] == 'e' || line[j-1] == 'E')) {
				j++
			}
			emit(line[i:j])
			i = j
		case isIdentRune(c):
			j := i
			for j < len(line) && isIdentRune(line[j]) {
				j++
			}
			word := line[i:j]
			// doall[static] / doall[dynamic] is one keyword token.
			if word == "doall" && j < len(line) && line[j] == '[' {
				k := strings.IndexByte(line[j:], ']')
				if k >= 0 {
					word = line[i : j+k+1]
					j += k + 1
				}
			}
			emit(word)
			i = j
		case c == '@':
			j := i + 1
			for j < len(line) && isIdentRune(line[j]) {
				j++
			}
			emit(line[i:j])
			i = j
			// The rest of an @attr line is free text: capture it whole.
			if p.toks[len(p.toks)-1].text == "@attr" {
				rest := strings.TrimSpace(line[i:])
				emit(rest)
				i = len(line)
			}
		default:
			// Multi-char operators the printer emits.
			for _, op := range []string{"<=", ">=", "==", "!=", "?bounds"} {
				if strings.HasPrefix(line[i:], op) {
					emit(op)
					i += len(op)
					goto next
				}
			}
			emit(string(c))
			i++
		next:
		}
	}
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].text
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.errLine = p.toks[p.pos].line
		p.pos++
	}
	return t
}

func (p *parser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("expected %q, got %q", want, got)
	}
	return nil
}

func (p *parser) program() (*ir.Program, error) {
	if err := p.expect("program"); err != nil {
		return nil, err
	}
	name := p.next()
	if name == "" {
		return nil, fmt.Errorf("missing program name")
	}
	p.prog = &ir.Program{Name: name, Params: map[string]int64{}, Routines: map[string]*ir.Routine{}}
	p.arrays = map[string]*ir.Array{}

	for {
		switch p.peek() {
		case "param":
			p.next()
			pname := p.next()
			if err := p.expect("="); err != nil {
				return nil, err
			}
			v, err := p.int64Tok()
			if err != nil {
				return nil, err
			}
			p.prog.Params[pname] = v
		case "real":
			if err := p.arrayDecl(); err != nil {
				return nil, err
			}
		case "routine":
			p.next()
			rname := p.next()
			body, err := p.stmts(map[string]bool{"end": true})
			if err != nil {
				return nil, err
			}
			if err := p.expect("end"); err != nil {
				return nil, err
			}
			p.prog.Routines[rname] = &ir.Routine{Name: rname, Body: body}
			if p.prog.Main == "" {
				p.prog.Main = rname
			}
		case "":
			if p.prog.Main == "" {
				return nil, fmt.Errorf("no routines defined")
			}
			return p.prog, nil
		default:
			return nil, fmt.Errorf("unexpected token %q at top level", p.peek())
		}
	}
}

func (p *parser) arrayDecl() error {
	p.next() // "real"
	name := p.next()
	if err := p.expect("("); err != nil {
		return err
	}
	var dims []int64
	for {
		d, err := p.int64Tok()
		if err != nil {
			return err
		}
		dims = append(dims, d)
		if p.peek() != "," {
			break
		}
		p.next()
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	a := &ir.Array{Name: name, Dims: dims}
	if p.peek() == "@attr" {
		p.next()
		attr := p.next()
		switch attr {
		case "shared, dist=block":
			a.Shared = true
			a.Dist = ir.DistBlock
		case "private":
		default:
			return fmt.Errorf("unknown array attribute %q", attr)
		}
	}
	if p.arrays[name] != nil {
		return fmt.Errorf("duplicate array %q", name)
	}
	p.arrays[name] = a
	p.prog.Arrays = append(p.prog.Arrays, a)
	return nil
}

// stmts parses statements until one of the stop keywords (not consumed).
func (p *parser) stmts(stop map[string]bool) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for {
		t := p.peek()
		if t == "" || stop[t] {
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) stmt() (ir.Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	switch t := p.peek(); t {
	case "do", "doall[static]", "doall[dynamic]":
		return p.loop()
	case "if":
		return p.ifStmt()
	case "call":
		p.next()
		return &ir.Call{Name: p.next()}, nil
	case "prefetch", "vprefetch":
		return nil, fmt.Errorf("%q is compiler output, not source", t)
	default:
		return p.assign()
	}
}

func (p *parser) loop() (ir.Stmt, error) {
	kw := p.next()
	l := &ir.Loop{Step: expr.Const(1), BoundsKnown: true}
	switch kw {
	case "do":
	case "doall[static]":
		l.Parallel = true
		l.Sched = ir.SchedStatic
	case "doall[dynamic]":
		l.Parallel = true
		l.Sched = ir.SchedDynamic
	}
	l.Var = p.next()
	if err := p.expect("="); err != nil {
		return nil, err
	}
	lo, err := p.affine(map[string]bool{",": true})
	if err != nil {
		return nil, err
	}
	l.Lo = lo
	if err := p.expect(","); err != nil {
		return nil, err
	}
	hi, err := p.affine(map[string]bool{",": true, "?bounds": true, "align": true})
	if err != nil {
		return nil, err
	}
	l.Hi = hi
	if p.peek() == "," {
		p.next()
		step, err := p.int64Tok()
		if err != nil {
			return nil, err
		}
		l.Step = expr.Const(step)
	}
	if p.peek() == "?bounds" {
		p.next()
		l.BoundsKnown = false
	}
	if p.peek() == "align" {
		p.next()
		if err := p.expect("="); err != nil {
			return nil, err
		}
		ext, err := p.int64Tok()
		if err != nil {
			return nil, err
		}
		l.AlignExtent = ext
	}
	body, err := p.stmts(map[string]bool{"enddo": true})
	if err != nil {
		return nil, err
	}
	if err := p.expect("enddo"); err != nil {
		return nil, err
	}
	l.Body = body
	return l, nil
}

func (p *parser) ifStmt() (ir.Stmt, error) {
	p.next() // "if"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	lhs, err := p.expression()
	if err != nil {
		return nil, err
	}
	var op ir.CmpOp
	switch t := p.next(); t {
	case "<":
		op = ir.CmpLT
	case "<=":
		op = ir.CmpLE
	case ">":
		op = ir.CmpGT
	case ">=":
		op = ir.CmpGE
	case "==":
		op = ir.CmpEQ
	case "!=":
		op = ir.CmpNE
	default:
		return nil, fmt.Errorf("bad comparison operator %q", t)
	}
	rhs, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("then"); err != nil {
		return nil, err
	}
	then, err := p.stmts(map[string]bool{"else": true, "endif": true})
	if err != nil {
		return nil, err
	}
	var els []ir.Stmt
	if p.peek() == "else" {
		p.next()
		els, err = p.stmts(map[string]bool{"endif": true})
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect("endif"); err != nil {
		return nil, err
	}
	return &ir.If{Cond: ir.Cond{Op: op, L: lhs, R: rhs}, Then: then, Else: els}, nil
}

func (p *parser) assign() (ir.Stmt, error) {
	lhs, err := p.ref()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &ir.Assign{LHS: lhs, RHS: rhs}, nil
}

// ref parses an array reference or scalar name.
func (p *parser) ref() (*ir.Ref, error) {
	name := p.next()
	if name == "" || !isIdentStart(name) {
		return nil, fmt.Errorf("expected reference, got %q", name)
	}
	if p.peek() != "(" {
		return &ir.Ref{Scalar: name}, nil
	}
	arr := p.arrays[name]
	if arr == nil {
		return nil, fmt.Errorf("reference to undeclared array %q", name)
	}
	p.next() // "("
	var idx []expr.Affine
	for {
		a, err := p.affine(map[string]bool{",": true, ")": true})
		if err != nil {
			return nil, err
		}
		idx = append(idx, a)
		if p.peek() != "," {
			break
		}
		p.next()
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &ir.Ref{Array: arr, Index: idx}, nil
}

// expression parses a value expression in the printer's fully-parenthesized
// form.
func (p *parser) expression() (ir.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	switch t := p.peek(); {
	case t == "(":
		p.next()
		if p.peek() == "-" {
			p.next()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return ir.Un{Op: ir.OpNeg, X: x}, nil
		}
		l, err := p.expression()
		if err != nil {
			return nil, err
		}
		opTok := p.next()
		var op ir.BinOp
		switch opTok {
		case "+":
			op = ir.OpAdd
		case "-":
			op = ir.OpSub
		case "*":
			op = ir.OpMul
		case "/":
			op = ir.OpDiv
		default:
			return nil, fmt.Errorf("bad operator %q", opTok)
		}
		r, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return ir.Bin{Op: op, L: l, R: r}, nil
	case t == "real":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		a, err := p.affine(map[string]bool{")": true})
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return ir.IVal{A: a}, nil
	case t == "min" || t == "max":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		l, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		r, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		op := ir.OpMin
		if t == "max" {
			op = ir.OpMax
		}
		return ir.Bin{Op: op, L: l, R: r}, nil
	case t == "abs" || t == "sqrt":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		op := ir.OpAbs
		if t == "sqrt" {
			op = ir.OpSqrt
		}
		return ir.Un{Op: op, X: x}, nil
	case t == "-":
		// Negative numeric literal (%g prints the sign inline).
		p.next()
		num := p.next()
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number -%q", num)
		}
		return ir.Num{V: -v}, nil
	case isNumberTok(t):
		p.next()
		v, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t)
		}
		return ir.Num{V: v}, nil
	case isIdentStart(t):
		r, err := p.ref()
		if err != nil {
			return nil, err
		}
		return ir.Load{Ref: r}, nil
	default:
		return nil, fmt.Errorf("unexpected token %q in expression", t)
	}
}

// affine parses a linear expression, stopping at any token in stop or at
// the end of the source line it started on (loop bounds carry no closing
// delimiter).
func (p *parser) affine(stop map[string]bool) (expr.Affine, error) {
	acc := expr.Const(0)
	sign := int64(1)
	first := true
	line0 := -1
	if p.pos < len(p.toks) {
		line0 = p.toks[p.pos].line
	}
	for {
		t := p.peek()
		if t != "" && p.pos < len(p.toks) && p.toks[p.pos].line != line0 && !first {
			return acc, nil
		}
		if t == "" || stop[t] {
			if first {
				return acc, fmt.Errorf("empty affine expression")
			}
			return acc, nil
		}
		switch t {
		case "+":
			sign = 1
			p.next()
			continue
		case "-":
			sign = -1
			p.next()
			continue
		}
		// term: number ['*' ident] | ident
		if isNumberTok(t) {
			p.next()
			k, err := strconv.ParseInt(t, 10, 64)
			if err != nil {
				return acc, fmt.Errorf("bad integer %q in affine expression", t)
			}
			if p.peek() == "*" {
				p.next()
				v := p.next()
				if !isIdentStart(v) {
					return acc, fmt.Errorf("expected variable after %d*", k)
				}
				acc = acc.Add(expr.Scaled(v, sign*k))
			} else {
				acc = acc.AddConst(sign * k)
			}
		} else if isIdentStart(t) {
			p.next()
			acc = acc.Add(expr.Scaled(t, sign))
		} else {
			return acc, fmt.Errorf("unexpected token %q in affine expression", t)
		}
		sign = 1
		first = false
	}
}

func (p *parser) int64Tok() (int64, error) {
	t := p.next()
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("expected integer, got %q", t)
	}
	return v, nil
}

func isNumberTok(t string) bool {
	return t != "" && (t[0] >= '0' && t[0] <= '9' || t[0] == '.')
}

func isIdentStart(t string) bool {
	return t != "" && (t[0] == '_' || t[0] >= 'a' && t[0] <= 'z' || t[0] >= 'A' && t[0] <= 'Z')
}
