package parse_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/parse"
)

func Example() {
	prog, err := parse.Program(`
program saxpy
  real X(64)  ! shared, dist=block
  real Y(64)  ! shared, dist=block
routine main
  doall[static] i = 0, 63
    X(i) = real(i)
    Y(i) = real(2*i)
  enddo
  doall[static] j = 0, 63
    Y(j) = ((X(j) * 3) + Y(j))
  enddo
end
`)
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.Compile(prog, core.ModeCCDP, machine.T3D(4))
	if err != nil {
		log.Fatal(err)
	}
	res, err := exec.Run(c, exec.Options{FailOnStale: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Mem.ArrayData(prog.ArrayByName("Y"))[10]) // 3*10 + 20
	fmt.Println(res.Stats.StaleValueReads)
	// Output:
	// 50
	// 0
}
