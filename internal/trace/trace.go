// Package trace captures the per-PE memory reference stream of a simulated
// run — the instrument behind the paper's §6 plan for "detailed simulation
// studies ... and the interaction of the compiler implementation with
// various important architectural parameters". The engine emits one event
// per memory operation; collectors are per-PE (no synchronization on the
// hot path) and merged afterwards. Analysis helpers compute the summary
// statistics used by tests and the trace tooling: per-array locality,
// local/remote mix, and reuse-distance histograms.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a memory reference event.
type Kind uint8

const (
	// KindHit: cached read hit.
	KindHit Kind = iota
	// KindMiss: cached read miss filled from local memory (or buffer).
	KindMiss
	// KindRemote: direct remote read.
	KindRemote
	// KindLocalRead: non-cached local read (BASE / bypass).
	KindLocalRead
	// KindPrefetched: read satisfied from the prefetch queue.
	KindPrefetched
	// KindRegister: redundant load eliminated by register reuse.
	KindRegister
	// KindWrite: store (local or remote).
	KindWrite
)

func (k Kind) String() string {
	switch k {
	case KindHit:
		return "hit"
	case KindMiss:
		return "miss"
	case KindRemote:
		return "remote"
	case KindLocalRead:
		return "local"
	case KindPrefetched:
		return "prefetched"
	case KindRegister:
		return "register"
	case KindWrite:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one memory reference.
type Event struct {
	PE    int
	Addr  int64
	Cycle int64
	Kind  Kind
}

// Collector accumulates events for one PE.
type Collector struct {
	PE     int
	Events []Event
}

// Record appends one event.
func (c *Collector) Record(addr, cycle int64, kind Kind) {
	c.Events = append(c.Events, Event{PE: c.PE, Addr: addr, Cycle: cycle, Kind: kind})
}

// Trace is the merged result of a run.
type Trace struct {
	PerPE []*Collector
}

// New builds a trace with one collector per PE.
func New(numPE int) *Trace {
	t := &Trace{PerPE: make([]*Collector, numPE)}
	for p := range t.PerPE {
		t.PerPE[p] = &Collector{PE: p}
	}
	return t
}

// Len returns the total event count.
func (t *Trace) Len() int {
	n := 0
	for _, c := range t.PerPE {
		n += len(c.Events)
	}
	return n
}

// KindCounts tallies events by kind across PEs.
func (t *Trace) KindCounts() map[Kind]int64 {
	out := map[Kind]int64{}
	for _, c := range t.PerPE {
		for _, e := range c.Events {
			out[e.Kind]++
		}
	}
	return out
}

// ReuseDistances computes the line-granular LRU reuse-distance histogram of
// one PE's read stream (writes excluded): histogram[d] counts reads whose
// line was last touched d distinct lines ago; cold references land in the
// returned cold counter. A cache of L lines captures exactly the references
// with distance < L, so the histogram predicts hit ratios across cache
// sizes.
func (t *Trace) ReuseDistances(pe int, lineWords int64) (hist map[int]int64, cold int64) {
	hist = map[int]int64{}
	var stack []int64 // most recent first
	for _, e := range t.PerPE[pe].Events {
		if e.Kind == KindWrite || e.Kind == KindRegister {
			continue
		}
		line := e.Addr - e.Addr%lineWords
		pos := -1
		for i, l := range stack {
			if l == line {
				pos = i
				break
			}
		}
		if pos < 0 {
			cold++
			stack = append([]int64{line}, stack...)
			continue
		}
		hist[pos]++
		stack = append(stack[:pos], stack[pos+1:]...)
		stack = append([]int64{line}, stack...)
	}
	return hist, cold
}

// HitRatioForCache predicts the hit ratio of an LRU cache with the given
// number of lines from the reuse-distance histogram.
func HitRatioForCache(hist map[int]int64, cold int64, lines int) float64 {
	var hits, total int64
	for d, n := range hist {
		total += n
		if d < lines {
			hits += n
		}
	}
	total += cold
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Summary renders per-kind counts in a stable order.
func (t *Trace) Summary() string {
	counts := t.KindCounts()
	kinds := make([]int, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %d PEs\n", t.Len(), len(t.PerPE))
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-10s %10d\n", Kind(k), counts[Kind(k)])
	}
	return b.String()
}
