package trace

import (
	"strings"
	"testing"
)

func TestCollectorAndCounts(t *testing.T) {
	tr := New(2)
	tr.PerPE[0].Record(10, 5, KindHit)
	tr.PerPE[0].Record(14, 6, KindMiss)
	tr.PerPE[1].Record(20, 7, KindRemote)
	tr.PerPE[1].Record(21, 8, KindWrite)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	counts := tr.KindCounts()
	if counts[KindHit] != 1 || counts[KindMiss] != 1 || counts[KindRemote] != 1 || counts[KindWrite] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestReuseDistances(t *testing.T) {
	tr := New(1)
	c := tr.PerPE[0]
	// Lines (lineWords=4): A=0, B=4, C=8.
	c.Record(0, 1, KindMiss) // A cold
	c.Record(4, 2, KindMiss) // B cold
	c.Record(1, 3, KindHit)  // A distance 1
	c.Record(8, 4, KindMiss) // C cold
	c.Record(5, 5, KindHit)  // B distance 1 (stack: A,C -> B at depth... A,C above? stack order C,A,B? let's verify below)
	c.Record(2, 6, KindHit)  // A
	c.Record(100, 7, KindWrite)
	hist, cold := tr.ReuseDistances(0, 4)
	if cold != 3 {
		t.Errorf("cold = %d, want 3", cold)
	}
	var total int64
	for _, n := range hist {
		total += n
	}
	if total != 3 {
		t.Errorf("reuse events = %d, want 3 (write excluded)", total)
	}
	// First reuse of A happened with only B more recent: distance 1.
	if hist[1] == 0 {
		t.Errorf("hist = %v, want a distance-1 entry", hist)
	}
}

func TestHitRatioForCache(t *testing.T) {
	hist := map[int]int64{0: 10, 3: 5, 10: 5}
	cold := int64(5)
	// 1-line cache: only distance 0 hits -> 10/25.
	if got := HitRatioForCache(hist, cold, 1); got != 0.4 {
		t.Errorf("1-line ratio = %v", got)
	}
	// 4-line cache: distances 0 and 3 -> 15/25.
	if got := HitRatioForCache(hist, cold, 4); got != 0.6 {
		t.Errorf("4-line ratio = %v", got)
	}
	// Huge cache: all reuses hit -> 20/25.
	if got := HitRatioForCache(hist, cold, 1000); got != 0.8 {
		t.Errorf("big ratio = %v", got)
	}
	if got := HitRatioForCache(map[int]int64{}, 0, 4); got != 0 {
		t.Errorf("empty ratio = %v", got)
	}
}

func TestSummaryStable(t *testing.T) {
	tr := New(1)
	tr.PerPE[0].Record(0, 0, KindHit)
	tr.PerPE[0].Record(0, 1, KindWrite)
	s1, s2 := tr.Summary(), tr.Summary()
	if s1 != s2 || !strings.Contains(s1, "hit") || !strings.Contains(s1, "write") {
		t.Errorf("Summary:\n%s", s1)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindHit: "hit", KindMiss: "miss", KindRemote: "remote",
		KindLocalRead: "local", KindPrefetched: "prefetched",
		KindRegister: "register", KindWrite: "write",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}
