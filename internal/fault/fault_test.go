package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseKinds(t *testing.T) {
	cases := []struct {
		in   string
		want []Kind
		err  bool
	}{
		{"", AllKinds(), false},
		{"all", AllKinds(), false},
		{"drop", []Kind{KindDrop}, false},
		{"late, drop", []Kind{KindDrop, KindLate}, false},
		{"drop,drop,skew", []Kind{KindDrop, KindSkew}, false},
		{"drop,late,spike,evict,skew", AllKinds(), false},
		{"bogus", nil, true},
		{"drop,warp", nil, true},
	}
	for _, c := range cases {
		got, err := ParseKinds(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseKinds(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseKinds(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKinds(k.String())
		if err != nil || len(got) != 1 || got[0] != k {
			t.Errorf("round trip %v -> %v (%v)", k, got, err)
		}
	}
}

func TestDisabledPlanYieldsNilInjector(t *testing.T) {
	if inj := NewInjector(Plan{}, 4); inj != nil {
		t.Error("zero plan must give nil injector")
	}
	if inj := NewInjector(Plan{Rate: 0.5}, 4); inj != nil {
		t.Error("plan without kinds must give nil injector")
	}
	if inj := NewInjector(Plan{Kinds: AllKinds()}, 4); inj != nil {
		t.Error("rate-0 plan must give nil injector")
	}
}

// drain pulls a fixed schedule of decisions from one PE stream.
func drain(pe *PE, n int) []int64 {
	var out []int64
	for i := 0; i < n; i++ {
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		out = append(out,
			b2i(pe.DropPrefetch()), pe.LateDelay(), pe.RemoteSpike(),
			b2i(pe.EvictLine()), pe.ClockSkew())
	}
	return out
}

func TestStreamsDeterministicPerSeed(t *testing.T) {
	plan := Plan{Seed: 42, Rate: 0.3, Kinds: AllKinds()}
	a := NewInjector(plan, 8)
	b := NewInjector(plan, 8)
	for id := 0; id < 8; id++ {
		if !reflect.DeepEqual(drain(a.PE(id), 200), drain(b.PE(id), 200)) {
			t.Fatalf("PE %d streams differ across equal-plan injectors", id)
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts differ: %+v vs %+v", a.Counts(), b.Counts())
	}
}

func TestStreamsIndependentAcrossPEsAndSeeds(t *testing.T) {
	plan := Plan{Seed: 7, Rate: 0.5, Kinds: AllKinds()}
	inj := NewInjector(plan, 2)
	s0, s1 := drain(inj.PE(0), 300), drain(inj.PE(1), 300)
	if reflect.DeepEqual(s0, s1) {
		t.Error("distinct PEs produced identical streams")
	}
	other := NewInjector(Plan{Seed: 8, Rate: 0.5, Kinds: AllKinds()}, 2)
	if reflect.DeepEqual(s0, drain(other.PE(0), 300)) {
		t.Error("different seeds produced identical streams")
	}
}

func TestOnlyEnabledKindsFire(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1, Rate: 1, Kinds: []Kind{KindDrop}}, 1)
	pe := inj.PE(0)
	for i := 0; i < 50; i++ {
		if !pe.DropPrefetch() {
			t.Fatal("rate-1 drop did not fire")
		}
		if pe.LateDelay() != 0 || pe.RemoteSpike() != 0 || pe.EvictLine() || pe.ClockSkew() != 0 {
			t.Fatal("disabled kind fired")
		}
	}
	c := inj.Counts()
	if c.Drops != 50 || c.Total() != 50 {
		t.Fatalf("counts = %+v, want 50 drops only", c)
	}
}

func TestDefaultsFilledAndMagnitudesUsed(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1, Rate: 1, Kinds: AllKinds()}, 1)
	p := inj.Plan()
	if p.LateExtraCycles != DefaultLateExtraCycles ||
		p.SpikeExtraCycles != DefaultSpikeExtraCycles ||
		p.SkewMaxCycles != DefaultSkewMaxCycles ||
		p.MaxDemotions != DefaultMaxDemotions {
		t.Fatalf("defaults not filled: %+v", p)
	}
	pe := inj.PE(0)
	if got := pe.LateDelay(); got != DefaultLateExtraCycles {
		t.Errorf("LateDelay = %d, want %d", got, DefaultLateExtraCycles)
	}
	if got := pe.RemoteSpike(); got != DefaultSpikeExtraCycles {
		t.Errorf("RemoteSpike = %d, want %d", got, DefaultSpikeExtraCycles)
	}
	for i := 0; i < 100; i++ {
		if s := pe.ClockSkew(); s < 0 || s > DefaultSkewMaxCycles {
			t.Fatalf("ClockSkew = %d outside [0,%d]", s, DefaultSkewMaxCycles)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{Rate: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Plan{Rate: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (Plan{Rate: 0.5, Kinds: []Kind{Kind(99)}}).Validate(); err == nil {
		t.Error("bogus kind accepted")
	}
	if err := (Plan{Rate: 0.5, Kinds: AllKinds()}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestReseedChangesStream(t *testing.T) {
	plan := Plan{Seed: 3, Rate: 0.4, Kinds: AllKinds()}
	base := drain(NewInjector(plan, 1).PE(0), 200)
	r1 := plan.Reseed(1)
	if r1.Seed == plan.Seed {
		t.Fatal("Reseed(1) kept the seed")
	}
	if reflect.DeepEqual(base, drain(NewInjector(r1, 1).PE(0), 200)) {
		t.Error("reseeded plan produced identical stream")
	}
	if r1again := plan.Reseed(1); r1again.Seed != r1.Seed {
		t.Error("Reseed not deterministic")
	}
}

func TestViolationError(t *testing.T) {
	v := Violation{PE: 3, Addr: 1024, Ref: "A(i, j)", Gen: 4, MemGen: 9, Cycle: 777}
	msg := v.Error()
	for _, want := range []string{"PE 3", "A(i, j)", "1024", "gen 4", "mem gen 9", "777"} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation message %q missing %q", msg, want)
		}
	}
}
