// Package fault is a deterministic, seeded fault-injection layer for the
// T3D machine model. It perturbs the timing-and-loss behaviour of the
// simulated memory system — dropped prefetch-queue entries, late prefetch
// arrivals, remote-latency spikes, forced cache-line evictions, per-PE
// clock skew — without ever corrupting memory contents, mirroring the
// fault classes a real non-coherent machine exhibits (lost or delayed
// network packets, contention, conflict evictions, drifting clocks).
//
// Reproducibility is the design center: a Plan carries a seed and every PE
// draws from its own RNG stream derived from that seed, so results are
// bit-identical across runs regardless of how the per-PE goroutines
// interleave. A zero Plan (rate 0) is the fault-free machine.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Kind identifies one class of injected fault.
type Kind int

const (
	// KindDrop silently discards a prefetch-queue issue (models a lost
	// prefetch packet; the consumer must demote to a bypass fetch).
	KindDrop Kind = iota
	// KindLate delays a prefetch's arrival past its scheduled ready time
	// (models network contention on the prefetch path).
	KindLate
	// KindSpike adds latency to a demand remote read (models hot-spotting
	// on the target node).
	KindSpike
	// KindEvict forces the cache line a read is about to consult out of
	// the cache (models conflict misses from interleaved private data).
	KindEvict
	// KindSkew offsets a PE's clock at epoch entry (models OS jitter and
	// drifting per-node clocks feeding the barrier).
	KindSkew

	numKinds = int(KindSkew) + 1
)

var kindNames = [...]string{
	KindDrop:  "drop",
	KindLate:  "late",
	KindSpike: "spike",
	KindEvict: "evict",
	KindSkew:  "skew",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AllKinds returns every defined fault kind, in declaration order.
func AllKinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// ParseKinds parses a comma-separated fault-kind list ("drop,late,evict").
// The special value "all" (or an empty string) selects every kind.
// Duplicates collapse; unknown names are an error.
func ParseKinds(s string) ([]Kind, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllKinds(), nil
	}
	seen := map[Kind]bool{}
	var ks []Kind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		found := Kind(-1)
		for i, name := range kindNames {
			if part == name {
				found = Kind(i)
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("fault: unknown kind %q (valid: %s, or \"all\")",
				part, strings.Join(kindNames[:], ","))
		}
		if !seen[found] {
			seen[found] = true
			ks = append(ks, found)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks, nil
}

// FormatKinds renders a kind set in ParseKinds syntax.
func FormatKinds(ks []Kind) string {
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}

// Default magnitudes, in cycles, used when the Plan leaves them zero. The
// values sit in the same band as the T3D's remote-read cost so an injected
// fault is visible in cycle counts without dwarfing the workload.
const (
	DefaultLateExtraCycles  = 200
	DefaultSpikeExtraCycles = 400
	DefaultSkewMaxCycles    = 64
	DefaultMaxDemotions     = 1 << 20
)

// Plan configures fault injection for one run. The zero value disables
// injection entirely.
type Plan struct {
	// Seed roots every per-PE RNG stream; two runs with equal plans see
	// identical fault sequences.
	Seed int64
	// Rate is the per-opportunity fault probability in [0,1]. 0 disables
	// injection.
	Rate float64
	// Kinds lists the enabled fault classes. Empty disables injection.
	Kinds []Kind

	// LateExtraCycles is the extra delay for a late prefetch arrival
	// (default DefaultLateExtraCycles).
	LateExtraCycles int64
	// SpikeExtraCycles is the extra latency for a remote-read spike
	// (default DefaultSpikeExtraCycles).
	SpikeExtraCycles int64
	// SkewMaxCycles bounds the uniform per-epoch clock skew
	// (default DefaultSkewMaxCycles).
	SkewMaxCycles int64
	// MaxDemotions bounds each PE's bypass-fetch retry budget; the run
	// fails loudly once a PE exhausts it (default DefaultMaxDemotions).
	MaxDemotions int64
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool { return p.Rate > 0 && len(p.Kinds) > 0 }

// Validate rejects malformed plans.
func (p Plan) Validate() error {
	if p.Rate < 0 || p.Rate > 1 {
		return fmt.Errorf("fault: rate %v outside [0,1]", p.Rate)
	}
	for _, k := range p.Kinds {
		if k < 0 || int(k) >= numKinds {
			return fmt.Errorf("fault: invalid kind %d", int(k))
		}
	}
	if p.LateExtraCycles < 0 || p.SpikeExtraCycles < 0 || p.SkewMaxCycles < 0 || p.MaxDemotions < 0 {
		return fmt.Errorf("fault: negative magnitude in plan %+v", p)
	}
	return nil
}

// Reseed returns a copy of the plan rooted at a different seed, for
// retry-with-fresh-faults paths. The derivation is deterministic.
func (p Plan) Reseed(attempt int) Plan {
	cp := p
	cp.Seed = p.Seed + int64(attempt)*0x9e3779b9
	return cp
}

func (p Plan) String() string {
	if !p.Enabled() {
		return "fault: off"
	}
	return fmt.Sprintf("fault: rate=%g kinds=%s seed=%d", p.Rate, FormatKinds(p.Kinds), p.Seed)
}

// Counts tallies injected faults by kind.
type Counts struct {
	Drops     int64
	Lates     int64
	Spikes    int64
	Evictions int64
	Skews     int64
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.Drops += o.Drops
	c.Lates += o.Lates
	c.Spikes += o.Spikes
	c.Evictions += o.Evictions
	c.Skews += o.Skews
}

// Total is the number of faults injected across all kinds.
func (c Counts) Total() int64 {
	return c.Drops + c.Lates + c.Spikes + c.Evictions + c.Skews
}

// Injector owns the per-PE fault streams for one run.
type Injector struct {
	plan Plan
	pes  []*PE
}

// NewInjector builds the per-PE streams for numPE processors. Returns nil
// for a disabled plan, so callers can use a nil check as the fast path.
func NewInjector(plan Plan, numPE int) *Injector {
	if !plan.Enabled() {
		return nil
	}
	if plan.LateExtraCycles == 0 {
		plan.LateExtraCycles = DefaultLateExtraCycles
	}
	if plan.SpikeExtraCycles == 0 {
		plan.SpikeExtraCycles = DefaultSpikeExtraCycles
	}
	if plan.SkewMaxCycles == 0 {
		plan.SkewMaxCycles = DefaultSkewMaxCycles
	}
	if plan.MaxDemotions == 0 {
		plan.MaxDemotions = DefaultMaxDemotions
	}
	inj := &Injector{plan: plan, pes: make([]*PE, numPE)}
	var kinds [numKinds]bool
	for _, k := range plan.Kinds {
		kinds[k] = true
	}
	for i := range inj.pes {
		// splitmix-style seed spreading keeps adjacent PE streams
		// uncorrelated even for small seeds.
		s := plan.Seed + int64(i+1)*int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
		s ^= s >> 30
		inj.pes[i] = &PE{
			id:    i,
			plan:  plan,
			kinds: kinds,
			rng:   rand.New(rand.NewSource(s)),
		}
	}
	return inj
}

// Plan returns the (default-filled) plan the injector runs.
func (inj *Injector) Plan() Plan { return inj.plan }

// PE returns processor id's private fault stream.
func (inj *Injector) PE(id int) *PE { return inj.pes[id] }

// Counts sums the per-PE fault tallies. Call only after the run's PE
// goroutines have finished.
func (inj *Injector) Counts() Counts {
	var c Counts
	for _, pe := range inj.pes {
		c.Add(pe.counts)
	}
	return c
}

// PE is one processor's deterministic fault stream. Not safe for use from
// multiple goroutines — each simulated PE owns exactly one.
type PE struct {
	id     int
	plan   Plan
	kinds  [numKinds]bool
	rng    *rand.Rand
	counts Counts
}

func (pe *PE) roll(k Kind) bool {
	if !pe.kinds[k] {
		return false
	}
	return pe.rng.Float64() < pe.plan.Rate
}

// DropPrefetch reports whether the prefetch being issued is lost in
// flight. The issue should be skipped entirely.
func (pe *PE) DropPrefetch() bool {
	if !pe.roll(KindDrop) {
		return false
	}
	pe.counts.Drops++
	return true
}

// LateDelay returns extra cycles to add to a prefetch's arrival time
// (0 = on time).
func (pe *PE) LateDelay() int64 {
	if !pe.roll(KindLate) {
		return 0
	}
	pe.counts.Lates++
	return pe.plan.LateExtraCycles
}

// RemoteSpike returns extra latency for a demand remote read (0 = none).
func (pe *PE) RemoteSpike() int64 {
	if !pe.roll(KindSpike) {
		return 0
	}
	pe.counts.Spikes++
	return pe.plan.SpikeExtraCycles
}

// EvictLine reports whether the line about to be consulted is forced out
// of the cache first.
func (pe *PE) EvictLine() bool {
	if !pe.roll(KindEvict) {
		return false
	}
	pe.counts.Evictions++
	return true
}

// ClockSkew returns this PE's clock offset for the epoch being entered,
// uniform in [0, SkewMaxCycles].
func (pe *PE) ClockSkew() int64 {
	if !pe.roll(KindSkew) {
		return 0
	}
	pe.counts.Skews++
	return pe.rng.Int63n(pe.plan.SkewMaxCycles + 1)
}

// Counts returns this PE's tally so far.
func (pe *PE) Counts() Counts { return pe.counts }

// MaxDemotions is the PE's bypass-fetch retry budget (default-filled).
func (pe *PE) MaxDemotions() int64 { return pe.plan.MaxDemotions }

// Violation records one coherence-oracle hit: a PE consumed a word whose
// generation stamp is older than memory's current generation for that
// address — exactly the stale read CCDP promises never happens.
type Violation struct {
	PE     int    // consuming processor
	Addr   int64  // global word address
	Array  string // owning array name ("" if unknown)
	Ref    string // source reference text ("" if unknown)
	Gen    uint32 // generation the PE consumed
	MemGen uint32 // memory's generation at consumption time
	Cycle  int64  // PE-local cycle of the consumption
}

func (v Violation) Error() string {
	where := v.Array
	if v.Ref != "" {
		where = v.Ref
	}
	if where == "" {
		where = fmt.Sprintf("addr %d", v.Addr)
	}
	return fmt.Sprintf("coherence violation: PE %d consumed stale %s (addr %d, gen %d < mem gen %d) at cycle %d",
		v.PE, where, v.Addr, v.Gen, v.MemGen, v.Cycle)
}
