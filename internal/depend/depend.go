// Package depend implements the data-dependence tests the prefetch
// scheduler needs to establish legality: whether pulling a reference out of
// a loop (vector prefetch generation) or moving a prefetch back across
// statements (moving-back) can change which value a read observes.
//
// The tests are the classical conservative subscript tests on affine
// subscripts: a GCD divisibility test and a Banerjee extreme-value test per
// dimension. "May alias" answers of true are conservative (the scheduler
// then declines the motion); answers of false are proofs of independence.
package depend

import (
	"repro/internal/expr"
	"repro/internal/ir"
)

// Bounds gives the inclusive range of every in-scope loop variable.
type Bounds struct {
	Lo, Hi map[string]int64
}

// NewBounds returns an empty bounds environment.
func NewBounds() Bounds {
	return Bounds{Lo: map[string]int64{}, Hi: map[string]int64{}}
}

// Clone deep-copies the bounds.
func (b Bounds) Clone() Bounds {
	c := NewBounds()
	for k, v := range b.Lo {
		c.Lo[k] = v
	}
	for k, v := range b.Hi {
		c.Hi[k] = v
	}
	return c
}

// With returns a copy of b extended with variable v ranging lo..hi.
func (b Bounds) With(v string, lo, hi int64) Bounds {
	c := b.Clone()
	c.Lo[v] = lo
	c.Hi[v] = hi
	return c
}

// WithLoop returns a copy of b extended with the loop's induction variable,
// using extreme-value bounds of the loop's own bound expressions; ok is
// false when the bounds involve variables absent from b.
func (b Bounds) WithLoop(l *ir.Loop, params map[string]int64) (Bounds, bool) {
	env := b.withParams(params)
	lo, _, ok1 := l.Lo.Bounds(env.Lo, env.Hi)
	_, hi, ok2 := l.Hi.Bounds(env.Lo, env.Hi)
	if !ok1 || !ok2 {
		return Bounds{}, false
	}
	return b.With(l.Var, lo, hi), true
}

// withParams extends the bounds with [v,v] ranges for every param.
func (b Bounds) withParams(params map[string]int64) Bounds {
	c := b.Clone()
	for k, v := range params {
		if _, exists := c.Lo[k]; !exists {
			c.Lo[k] = v
			c.Hi[k] = v
		}
	}
	return c
}

// MayAlias reports whether references a and b may touch a common array
// element, with a's loop variables ranging over ba, b's over bb, and the
// two instances chosen independently (different iterations, or different
// statements). Parameters are shared constants. Scalar references alias
// iff they name the same scalar.
func MayAlias(a, b *ir.Ref, ba, bb Bounds, params map[string]int64) bool {
	return MayAliasShared(a, b, ba, bb, NewBounds(), params)
}

// MayAliasShared is MayAlias with an additional set of SHARED symbolic
// variables: variables (such as the induction variable of an enclosing
// epoch-level time-step loop) that take the same — though unknown — value
// in both instances. A subscript pair like rx(i,j-1) vs rx(i',j) with j
// shared is proven independent regardless of j's value.
func MayAliasShared(a, b *ir.Ref, ba, bb, shared Bounds, params map[string]int64) bool {
	if a.IsScalar() || b.IsScalar() {
		return a.IsScalar() && b.IsScalar() && a.Scalar == b.Scalar
	}
	if a.Array != b.Array {
		return false
	}
	const renameSuffix = "·b"
	ea := ba.withParams(params)
	eb := bb.withParams(params)
	for v := range shared.Lo {
		// Shared variables participate unrenamed with their shared range.
		if _, clash := ea.Lo[v]; !clash {
			ea.Lo[v], ea.Hi[v] = shared.Lo[v], shared.Hi[v]
		}
	}

	for d := 0; d < len(a.Index); d++ {
		sa := substParams(a.Index[d], params)
		sb := substParams(b.Index[d], params)
		// Rename b's loop variables so the two instances are independent.
		sbRen := sb
		for _, v := range sb.Vars() {
			if _, isLoopVar := bb.Lo[v]; isLoopVar {
				sbRen = sbRen.Subst(v, expr.Var(v+renameSuffix))
			}
		}
		diff := sa.Sub(sbRen)

		// GCD test: diff = k + Σ c_i v_i can be 0 only if gcd(c_i) | k.
		if g := gcdOfCoefs(diff); g != 0 && diff.ConstPart()%g != 0 {
			return false // proven independent in this dimension
		}

		// Banerjee test: 0 must lie within [min,max] of diff.
		lo := map[string]int64{}
		hi := map[string]int64{}
		for k, v := range ea.Lo {
			lo[k] = v
		}
		for k, v := range ea.Hi {
			hi[k] = v
		}
		for k, v := range eb.Lo {
			lo[k+renameSuffix] = v
		}
		for k, v := range eb.Hi {
			hi[k+renameSuffix] = v
		}
		mn, mx, ok := diff.Bounds(lo, hi)
		if !ok {
			continue // unbounded variable: stay conservative for this dim
		}
		if mn > 0 || mx < 0 {
			return false // 0 unreachable: independent in this dimension
		}
	}
	return true
}

// substParams replaces parameter variables with their constant values.
func substParams(a expr.Affine, params map[string]int64) expr.Affine {
	for _, v := range a.Vars() {
		if k, ok := params[v]; ok {
			a = a.Subst(v, expr.Const(k))
		}
	}
	return a
}

func gcdOfCoefs(a expr.Affine) int64 {
	var g int64
	for _, t := range a.Terms() {
		g = gcd(g, abs64(t.Coef))
	}
	return g
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// AnyWriteMayConflict reports whether any write reference inside body may
// alias target. Both target and the writes range over bounds extended by
// any loops nested inside body; shared variables take one common value in
// both instances. Used to decide whether a read can legally be prefetched
// ahead of the loop (VPG) or ahead of preceding statements (MBP): a
// potentially conflicting write means the value is produced inside the
// region, so fetching early could observe a stale value.
func AnyWriteMayConflict(body []ir.Stmt, target *ir.Ref, outer, shared Bounds, params map[string]int64) bool {
	conflict := false
	var scan func(ss []ir.Stmt, b Bounds)
	scan = func(ss []ir.Stmt, b Bounds) {
		for _, s := range ss {
			if conflict {
				return
			}
			switch st := s.(type) {
			case *ir.Loop:
				inner, ok := b.WithLoop(st, params)
				if !ok {
					// Unbounded loop variable: be conservative only if the
					// loop writes the same array at all.
					inner = b.With(st.Var, -1<<40, 1<<40)
				}
				scan(st.Body, inner)
			case *ir.Assign:
				if MayAliasShared(st.LHS, target, b, outer, shared, params) {
					conflict = true
				}
			case *ir.If:
				scan(st.Then, b)
				scan(st.Else, b)
			case *ir.Call:
				// Callee bodies are checked by the caller via routine
				// summaries; a bare Call here is treated as opaque.
				conflict = true
			}
		}
	}
	scan(body, outer)
	return conflict
}

// StmtMayWriteRef reports whether statement s (recursively) contains a
// write that may alias target.
func StmtMayWriteRef(s ir.Stmt, target *ir.Ref, b, shared Bounds, params map[string]int64) bool {
	return AnyWriteMayConflict([]ir.Stmt{s}, target, b, shared, params)
}
