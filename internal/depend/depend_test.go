package depend

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/ir"
)

func mkArr(name string, dims ...int64) *ir.Array {
	return &ir.Array{Name: name, Dims: dims}
}

func ref(a *ir.Array, idx ...expr.Affine) *ir.Ref {
	return &ir.Ref{Array: a, Index: idx}
}

func TestScalarAliasing(t *testing.T) {
	b := NewBounds()
	s1 := &ir.Ref{Scalar: "x"}
	s2 := &ir.Ref{Scalar: "x"}
	s3 := &ir.Ref{Scalar: "y"}
	if !MayAlias(s1, s2, b, b, nil) {
		t.Error("same scalar should alias")
	}
	if MayAlias(s1, s3, b, b, nil) {
		t.Error("different scalars should not alias")
	}
	a := mkArr("A", 10)
	if MayAlias(s1, ref(a, ir.K(0)), b, b, nil) {
		t.Error("scalar vs array should not alias")
	}
}

func TestDifferentArraysNeverAlias(t *testing.T) {
	a, c := mkArr("A", 10), mkArr("C", 10)
	b := NewBounds().With("i", 0, 9)
	if MayAlias(ref(a, ir.I("i")), ref(c, ir.I("i")), b, b, nil) {
		t.Error("different arrays alias")
	}
}

func TestGCDTest(t *testing.T) {
	a := mkArr("A", 100)
	b := NewBounds().With("i", 0, 40)
	// A(2i) vs A(2i'+1): even vs odd, never alias.
	r1 := ref(a, expr.Scaled("i", 2))
	r2 := ref(a, expr.Scaled("i", 2).AddConst(1))
	if MayAlias(r1, r2, b, b, nil) {
		t.Error("even/odd subscripts reported aliasing")
	}
	// A(2i) vs A(2i'+4): may alias (i=i'+2).
	r3 := ref(a, expr.Scaled("i", 2).AddConst(4))
	if !MayAlias(r1, r3, b, b, nil) {
		t.Error("reachable subscripts reported independent")
	}
}

func TestBanerjeeRangeTest(t *testing.T) {
	a := mkArr("A", 1000)
	// A(i) with i in 0..9 vs A(j+100) with j in 0..9: ranges disjoint.
	ba := NewBounds().With("i", 0, 9)
	bb := NewBounds().With("j", 0, 9)
	r1 := ref(a, ir.I("i"))
	r2 := ref(a, ir.I("j").AddConst(100))
	if MayAlias(r1, r2, ba, bb, nil) {
		t.Error("disjoint ranges reported aliasing")
	}
	// A(i) vs A(j+5): overlap at 5..9.
	r3 := ref(a, ir.I("j").AddConst(5))
	if !MayAlias(r1, r3, ba, bb, nil) {
		t.Error("overlapping ranges reported independent")
	}
}

func TestSameVariableRenamedAcrossInstances(t *testing.T) {
	// A(i) vs A(i-1) within the same loop: different iterations may meet
	// (i=3 reads what i'=4 wrote), so they alias.
	a := mkArr("A", 100)
	b := NewBounds().With("i", 1, 10)
	r1 := ref(a, ir.I("i"))
	r2 := ref(a, ir.I("i").AddConst(-1))
	if !MayAlias(r1, r2, b, b, nil) {
		t.Error("cross-iteration dependence missed")
	}
}

func TestMultiDimIndependence(t *testing.T) {
	a := mkArr("A", 64, 64)
	b := NewBounds().With("i", 0, 30)
	// A(i, 3) vs A(i', 7): second dim constants differ -> independent.
	r1 := ref(a, ir.I("i"), ir.K(3))
	r2 := ref(a, ir.I("i"), ir.K(7))
	if MayAlias(r1, r2, b, b, nil) {
		t.Error("distinct columns reported aliasing")
	}
	// A(i, j) vs A(i', j'): same space -> alias.
	bj := b.With("j", 0, 63)
	r3 := ref(a, ir.I("i"), ir.I("j"))
	if !MayAlias(r3, r3, bj, bj, nil) {
		t.Error("self-alias missed")
	}
}

func TestParamsSubstituted(t *testing.T) {
	a := mkArr("A", 1000)
	params := map[string]int64{"N": 100}
	b := NewBounds().With("i", 0, 9)
	// A(i) vs A(j+N) with N=100: disjoint.
	r1 := ref(a, ir.I("i"))
	r2 := ref(a, ir.I("i").Add(ir.I("N")))
	if MayAlias(r1, r2, b, b, params) {
		t.Error("param offset not substituted")
	}
}

func TestWithLoopBounds(t *testing.T) {
	params := map[string]int64{"N": 16}
	outer := NewBounds()
	l := ir.DoSerial("i", ir.K(2), ir.I("N").AddConst(-2))
	b, ok := outer.WithLoop(l, params)
	if !ok || b.Lo["i"] != 2 || b.Hi["i"] != 14 {
		t.Errorf("WithLoop = [%d,%d] ok=%v", b.Lo["i"], b.Hi["i"], ok)
	}
	// Triangular: inner bound depends on outer var.
	inner := ir.DoSerial("j", ir.K(0), ir.I("i"))
	bj, ok := b.WithLoop(inner, params)
	if !ok || bj.Lo["j"] != 0 || bj.Hi["j"] != 14 {
		t.Errorf("triangular WithLoop = [%d,%d] ok=%v", bj.Lo["j"], bj.Hi["j"], ok)
	}
}

func TestAnyWriteMayConflict(t *testing.T) {
	a := mkArr("A", 100)
	c := mkArr("C", 100)
	params := map[string]int64{}
	outer := NewBounds().With("i", 0, 99)

	// Loop writes C(j); target A(i): no conflict.
	body := []ir.Stmt{
		ir.DoSerial("j", ir.K(0), ir.K(99),
			ir.Set(ref(c, ir.I("j")), ir.L(ref(a, ir.I("j"))))),
	}
	if AnyWriteMayConflict(body, ref(a, ir.I("i")), outer, NewBounds(), params) {
		t.Error("write to different array flagged")
	}

	// Loop writes A(j): conflicts with A(i).
	body2 := []ir.Stmt{
		ir.DoSerial("j", ir.K(0), ir.K(99),
			ir.Set(ref(a, ir.I("j")), ir.N(0))),
	}
	if !AnyWriteMayConflict(body2, ref(a, ir.I("i")), outer, NewBounds(), params) {
		t.Error("conflicting write missed")
	}

	// Write confined to A(0..9), target A(i) with i in 50..99: no conflict.
	body3 := []ir.Stmt{
		ir.DoSerial("j", ir.K(0), ir.K(9),
			ir.Set(ref(a, ir.I("j")), ir.N(0))),
	}
	tight := NewBounds().With("i", 50, 99)
	if AnyWriteMayConflict(body3, ref(a, ir.I("i")), tight, NewBounds(), params) {
		t.Error("disjoint write range flagged")
	}

	// Opaque call is conservatively a conflict.
	body4 := []ir.Stmt{ir.CallTo("mystery")}
	if !AnyWriteMayConflict(body4, ref(a, ir.I("i")), outer, NewBounds(), params) {
		t.Error("opaque call not conservative")
	}

	// Writes under if-statements still count.
	body5 := []ir.Stmt{
		ir.When(ir.CondOf(ir.CmpLT, ir.N(0), ir.N(1)),
			[]ir.Stmt{ir.Set(ref(a, ir.K(60)), ir.N(1))}, nil),
	}
	if !AnyWriteMayConflict(body5, ref(a, ir.I("i")), tight, NewBounds(), params) {
		t.Error("write under if missed")
	}
}

// Property: MayAlias is conservative — brute-force enumeration over small
// iteration spaces never finds an actual collision that MayAlias denies.
func TestPropMayAliasConservative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		arr := mkArr("A", 1<<30) // huge so subscripts never wrap
		mkSub := func() expr.Affine {
			a := expr.Const(r.Int63n(21) - 10)
			a = a.Add(expr.Scaled("i", r.Int63n(7)-3))
			a = a.Add(expr.Scaled("j", r.Int63n(7)-3))
			return a
		}
		s1, s2 := mkSub(), mkSub()
		lo1, lo2 := r.Int63n(5), r.Int63n(5)
		b1 := NewBounds().With("i", lo1, lo1+r.Int63n(6)).With("j", 0, 4)
		b2 := NewBounds().With("i", lo2, lo2+r.Int63n(6)).With("j", 0, 4)
		r1, r2 := ref(arr, s1), ref(arr, s2)

		alias := MayAlias(r1, r2, b1, b2, nil)
		if alias {
			return true // conservative answer is always acceptable
		}
		// Proven independent: verify by enumeration.
		for i1 := b1.Lo["i"]; i1 <= b1.Hi["i"]; i1++ {
			for j1 := b1.Lo["j"]; j1 <= b1.Hi["j"]; j1++ {
				v1, _ := s1.Eval(map[string]int64{"i": i1, "j": j1})
				for i2 := b2.Lo["i"]; i2 <= b2.Hi["i"]; i2++ {
					for j2 := b2.Lo["j"]; j2 <= b2.Hi["j"]; j2++ {
						v2, _ := s2.Eval(map[string]int64{"i": i2, "j": j2})
						if v1 == v2 {
							return false // collision that MayAlias denied
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMayAliasSharedContextVariable(t *testing.T) {
	// rx(i, j-1) read vs rx(i', j) write with j SHARED (fixed epoch-context
	// value): independent regardless of j. Without sharing, conservative.
	a := mkArr("RX", 300, 300)
	ba := NewBounds().With("i", 1, 255)
	bb := NewBounds().With("i", 1, 255)
	shared := NewBounds().With("j", 2, 255)
	rd := ref(a, ir.I("i"), ir.I("j").AddConst(-1))
	wr := ref(a, ir.I("i"), ir.I("j"))
	if MayAliasShared(rd, wr, ba, bb, shared, nil) {
		t.Error("column j-1 vs column j with shared j reported aliasing")
	}
	// Same-column access with shared j DOES alias.
	rd2 := ref(a, ir.I("i").AddConst(1), ir.I("j"))
	if !MayAliasShared(rd2, wr, ba, bb, shared, nil) {
		t.Error("same shared column reported independent")
	}
	// Coefficient mismatch on the shared var: 2j vs j may collide for some j.
	rd3 := ref(a, ir.I("i"), expr.Scaled("j", 2).AddConst(-10))
	if !MayAliasShared(rd3, wr, ba, bb, shared, nil) {
		t.Error("2j vs j with shared j must stay conservative")
	}
}
