package shrink

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/progen"
)

// hasDynamicDoall is a cheap structural predicate for exercising the
// minimizer without executing programs.
func hasDynamicDoall(p *ir.Program) bool {
	found := false
	for _, rt := range p.Routines {
		ir.WalkStmts(rt.Body, func(s ir.Stmt) bool {
			if l, ok := s.(*ir.Loop); ok && l.Parallel && l.Sched == ir.SchedDynamic {
				found = true
			}
			return true
		})
	}
	return found
}

// writesTwoArrays holds when at least two distinct arrays are written.
func writesTwoArrays(p *ir.Program) bool {
	written := map[string]bool{}
	for _, rt := range p.Routines {
		ir.WalkRefs(rt.Body, func(r *ir.Ref, isWrite bool) {
			if isWrite && r.Array != nil {
				written[r.Array.Name] = true
			}
		})
	}
	return len(written) >= 2
}

func seedPrograms(t *testing.T, pred Predicate) []*ir.Program {
	t.Helper()
	var out []*ir.Program
	for seed := int64(0); seed < 40 && len(out) < 6; seed++ {
		p := progen.Generate(rand.New(rand.NewSource(seed)), progen.DefaultConfig())
		if pred(p) {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		t.Fatal("no generated program satisfies the predicate")
	}
	return out
}

// Minimized programs are 1-minimal: no single further reduction is both
// structurally valid and still failing — and they always pass ir.Validate.
func TestMinimizeMinimalAndValid(t *testing.T) {
	for _, pred := range []Predicate{hasDynamicDoall, writesTwoArrays} {
		for _, p := range seedPrograms(t, pred) {
			res := Minimize(p, pred)
			m := res.Program
			if err := ir.Validate(m); err != nil {
				t.Fatalf("minimized program invalid: %v\n%s", err, ir.Format(m))
			}
			if !pred(m) {
				t.Fatalf("minimized program no longer fails the predicate\n%s", ir.Format(m))
			}
			for i, cand := range Reductions(m) {
				if ir.Validate(cand) == nil && pred(cand) {
					t.Fatalf("reduction %d of the minimized program still fails the predicate:\nminimized:\n%s\nreduction:\n%s",
						i, ir.Format(m), ir.Format(cand))
				}
			}
		}
	}
}

// The minimizer never mutates its input program.
func TestMinimizeLeavesInputIntact(t *testing.T) {
	p := progen.Generate(rand.New(rand.NewSource(3)), progen.DefaultConfig())
	before := ir.Format(p)
	Minimize(p, writesTwoArrays)
	if got := ir.Format(p); got != before {
		t.Fatalf("input program changed during minimization:\nbefore:\n%s\nafter:\n%s", before, got)
	}
}

// Same input and predicate produce byte-identical minimized programs.
func TestMinimizeDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := progen.Generate(rand.New(rand.NewSource(seed)), progen.DefaultConfig())
		pred := writesTwoArrays
		if !pred(p) {
			continue
		}
		a := Minimize(p, pred)
		b := Minimize(p, pred)
		if ir.Format(a.Program) != ir.Format(b.Program) || a.Steps != b.Steps {
			t.Fatalf("seed %d: minimization not deterministic (%d vs %d steps)", seed, a.Steps, b.Steps)
		}
	}
}

// Inlining single-iteration loops substitutes the loop variable, so bodies
// that use the variable still reduce.
func TestSingleIterationLoopInlines(t *testing.T) {
	b := ir.NewBuilder("inline-test")
	a := b.SharedArray("A", 16)
	c := b.SharedArray("B", 16)
	b.Routine("main",
		ir.DoSerial("v", ir.K(2), ir.K(2),
			ir.Set(ir.At(a, ir.I("v")), ir.L(ir.At(c, ir.I("v").AddConst(-1))))))
	p := b.Build()

	// Predicate: some reference reads B (keeps the assignment alive).
	pred := func(q *ir.Program) bool {
		reads := false
		for _, rt := range q.Routines {
			ir.WalkRefs(rt.Body, func(r *ir.Ref, isWrite bool) {
				if !isWrite && r.Array != nil && r.Array.Name == "B" {
					reads = true
				}
			})
		}
		return reads
	}
	res := Minimize(p, pred)
	loops := 0
	ir.WalkStmts(res.Program.MainRoutine().Body, func(s ir.Stmt) bool {
		if _, ok := s.(*ir.Loop); ok {
			loops++
		}
		return true
	})
	if loops != 0 {
		t.Fatalf("single-iteration loop not inlined:\n%s", ir.Format(res.Program))
	}
}
