package shrink

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/ir"
)

// Reductions enumerates every single-step simplification of p as a fresh,
// finalized clone, in a fixed order chosen so the most aggressive
// reductions come first (greedy descent then converges in few steps):
//
//  1. delete one statement (any statement slot, loop bodies and if
//     branches included — deleting an epoch-level loop drops a whole
//     epoch);
//  2. unwrap one loop, splicing its body in its place (removes time-step
//     back edges; invalid when the body uses the loop variable, which
//     ir.Validate rejects);
//  3. drop all unreferenced arrays / all unreachable routines;
//  4. shrink one loop's trip count (to a single iteration, then by half);
//  5. halve one array extent;
//  6. shrink one subscript's constant offset (to zero, then by half).
//
// Candidates are not validated here; Minimize filters with ir.Validate.
func Reductions(p *ir.Program) []*ir.Program {
	var out []*ir.Program
	info := collectInfo(p)

	// 1. Statement deletions.
	for slot := 0; slot < len(info); slot++ {
		out = append(out, editStmts(p, slot, opDelete))
	}
	// 2. Loop unwraps; single-iteration loops also inline (substitute the
	// loop variable by the lower bound, so the body stays valid even when
	// it uses the variable).
	for slot, si := range info {
		if si.isLoop {
			out = append(out, editStmts(p, slot, opUnwrap))
		}
	}
	for slot, si := range info {
		if si.isLoop && si.singleIter {
			out = append(out, editStmts(p, slot, opInline))
		}
	}
	// 3. Dead declarations.
	if cand, ok := dropUnusedArrays(p); ok {
		out = append(out, cand)
	}
	if cand, ok := dropUnreachableRoutines(p); ok {
		out = append(out, cand)
	}
	// 4. Trip-count shrinks.
	for slot, si := range info {
		if si.isLoop && si.multiIter {
			out = append(out, editStmts(p, slot, opTripOne))
		}
	}
	for slot, si := range info {
		if si.isLoop && si.halvable {
			out = append(out, editStmts(p, slot, opTripHalf))
		}
	}
	// 5. Array extent halvings.
	for ai, a := range p.Arrays {
		for d, ext := range a.Dims {
			if ext >= 2 {
				out = append(out, halveExtent(p, ai, d))
			}
		}
	}
	// 6. Subscript constant-offset shrinks.
	for ri, r := range p.Refs() {
		for d, ix := range r.Index {
			c := ix.ConstPart()
			if c != 0 {
				out = append(out, shiftOffset(p, ri, d, -c))
			}
			if c > 1 || c < -1 {
				out = append(out, shiftOffset(p, ri, d, -(c - c/2)))
			}
		}
	}
	return out
}

type stmtOp int

const (
	opDelete stmtOp = iota
	opUnwrap
	opInline
	opTripOne
	opTripHalf
)

type slotInfo struct {
	isLoop     bool
	multiIter  bool // Hi differs from Lo: a single-iteration shrink applies
	singleIter bool // Hi equals Lo: inlining the body applies
	halvable   bool // constant bounds with at least 3 iterations' span
}

// routinesInOrder yields main first, then the rest sorted by name — the
// same deterministic order ir.Program.Finalize uses, so statement slots and
// reference indices line up with finalized RefIDs.
func routinesInOrder(p *ir.Program) []*ir.Routine {
	out := []*ir.Routine{}
	if m := p.MainRoutine(); m != nil {
		out = append(out, m)
	}
	names := make([]string, 0, len(p.Routines))
	for n := range p.Routines {
		if n != p.Main {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, p.Routines[n])
	}
	return out
}

// collectInfo numbers every statement slot in deterministic pre-order and
// records what reductions apply to it.
func collectInfo(p *ir.Program) []slotInfo {
	var info []slotInfo
	var walk func(body []ir.Stmt)
	walk = func(body []ir.Stmt) {
		for _, s := range body {
			si := slotInfo{}
			if l, ok := s.(*ir.Loop); ok {
				si.isLoop = true
				si.multiIter = !l.Hi.Equal(l.Lo)
				si.singleIter = l.Hi.Equal(l.Lo)
				if l.Lo.IsConst() && l.Hi.IsConst() {
					si.halvable = l.Hi.ConstPart()-l.Lo.ConstPart() >= 2
				}
			}
			info = append(info, si)
			switch t := s.(type) {
			case *ir.Loop:
				walk(t.Body)
			case *ir.If:
				walk(t.Then)
				walk(t.Else)
			}
		}
	}
	for _, rt := range routinesInOrder(p) {
		walk(rt.Body)
	}
	return info
}

// editStmts clones p and applies one statement-level reduction at the
// given pre-order slot.
func editStmts(p *ir.Program, target int, op stmtOp) *ir.Program {
	cp := ir.CloneProgram(p)
	slot := 0
	var edit func(body []ir.Stmt) []ir.Stmt
	edit = func(body []ir.Stmt) []ir.Stmt {
		out := make([]ir.Stmt, 0, len(body))
		for _, s := range body {
			mine := slot == target
			slot++
			if mine {
				l, isLoop := s.(*ir.Loop)
				switch op {
				case opDelete:
					continue
				case opUnwrap:
					if isLoop {
						out = append(out, l.Body...)
						continue
					}
				case opInline:
					if isLoop {
						substVar(l.Body, l.Var, l.Lo)
						out = append(out, l.Body...)
						continue
					}
				case opTripOne:
					if isLoop {
						l.Hi = l.Lo
					}
				case opTripHalf:
					if isLoop {
						span := l.Hi.ConstPart() - l.Lo.ConstPart()
						l.Hi = l.Lo.AddConst(span / 2)
					}
				}
			}
			switch t := s.(type) {
			case *ir.Loop:
				t.Body = edit(t.Body)
			case *ir.If:
				t.Then = edit(t.Then)
				t.Else = edit(t.Else)
			}
			out = append(out, s)
		}
		return out
	}
	for _, rt := range routinesInOrder(cp) {
		rt.Body = edit(rt.Body)
	}
	cp.Finalize()
	return cp
}

// substVar replaces every use of loop variable v with the affine a, in
// place (callers pass freshly cloned statements).
func substVar(body []ir.Stmt, v string, a expr.Affine) {
	for _, s := range body {
		switch t := s.(type) {
		case *ir.Loop:
			t.Lo = t.Lo.Subst(v, a)
			t.Hi = t.Hi.Subst(v, a)
			t.Step = t.Step.Subst(v, a)
			substVar(t.Body, v, a)
			substVar(t.Prologue, v, a)
			for i := range t.Pipelined {
				substRef(t.Pipelined[i].Target, v, a)
			}
		case *ir.Assign:
			substRef(t.LHS, v, a)
			t.RHS = substExpr(t.RHS, v, a)
		case *ir.If:
			t.Cond.L = substExpr(t.Cond.L, v, a)
			t.Cond.R = substExpr(t.Cond.R, v, a)
			substVar(t.Then, v, a)
			substVar(t.Else, v, a)
		case *ir.Prefetch:
			substRef(t.Target, v, a)
		case *ir.VectorPrefetch:
			t.Lo = t.Lo.Subst(v, a)
			t.Hi = t.Hi.Subst(v, a)
			t.Step = t.Step.Subst(v, a)
			substRef(t.Target, v, a)
		}
	}
}

func substRef(r *ir.Ref, v string, a expr.Affine) {
	for i := range r.Index {
		r.Index[i] = r.Index[i].Subst(v, a)
	}
}

func substExpr(e ir.Expr, v string, a expr.Affine) ir.Expr {
	switch x := e.(type) {
	case ir.IVal:
		return ir.IVal{A: x.A.Subst(v, a)}
	case ir.Load:
		substRef(x.Ref, v, a)
		return x
	case ir.Bin:
		x.L = substExpr(x.L, v, a)
		x.R = substExpr(x.R, v, a)
		return x
	case ir.Un:
		x.X = substExpr(x.X, v, a)
		return x
	default:
		return e
	}
}

// halveExtent clones p and halves dimension d of array ai.
func halveExtent(p *ir.Program, ai, d int) *ir.Program {
	cp := ir.CloneProgram(p)
	a := cp.Arrays[ai]
	dims := make([]int64, len(a.Dims))
	copy(dims, a.Dims)
	dims[d] /= 2
	a.Dims = dims
	cp.Finalize()
	return cp
}

// shiftOffset clones p and adds delta to the constant part of subscript d
// of the reference with finalized index ri.
func shiftOffset(p *ir.Program, ri, d int, delta int64) *ir.Program {
	cp := ir.CloneProgram(p)
	cp.Finalize()
	r := cp.Refs()[ri]
	r.Index[d] = r.Index[d].AddConst(delta)
	return cp
}

// dropUnusedArrays clones p without the arrays no reference names. The
// second result is false when every array is referenced.
func dropUnusedArrays(p *ir.Program) (*ir.Program, bool) {
	used := map[string]bool{}
	for _, rt := range p.Routines {
		ir.WalkRefs(rt.Body, func(r *ir.Ref, _ bool) {
			if r.Array != nil {
				used[r.Array.Name] = true
			}
		})
	}
	if len(used) == len(p.Arrays) {
		return nil, false
	}
	cp := ir.CloneProgram(p)
	kept := cp.Arrays[:0]
	for _, a := range cp.Arrays {
		if used[a.Name] {
			kept = append(kept, a)
		}
	}
	cp.Arrays = kept
	cp.Finalize()
	return cp, true
}

// dropUnreachableRoutines clones p without the routines the call graph
// cannot reach from main. The second result is false when all are live.
func dropUnreachableRoutines(p *ir.Program) (*ir.Program, bool) {
	live := map[string]bool{}
	var mark func(name string)
	mark = func(name string) {
		if live[name] {
			return
		}
		rt := p.Routine(name)
		if rt == nil {
			return
		}
		live[name] = true
		ir.WalkStmts(rt.Body, func(s ir.Stmt) bool {
			if c, ok := s.(*ir.Call); ok {
				mark(c.Name)
			}
			return true
		})
	}
	mark(p.Main)
	if len(live) == len(p.Routines) {
		return nil, false
	}
	cp := ir.CloneProgram(p)
	for name := range cp.Routines {
		if !live[name] {
			delete(cp.Routines, name)
		}
	}
	cp.Finalize()
	return cp, true
}
