// Package shrink is a delta-debugging minimizer over ir.Program: given a
// program that exhibits a failure (as judged by a caller-supplied
// predicate), it searches for a smaller program that still exhibits it.
//
// The search is greedy descent to a fixpoint: Reductions enumerates every
// single-step simplification of the current program in a deterministic
// order, the first candidate that is still structurally valid (ir.Validate)
// and still fails (predicate) becomes the new current program, and
// minimization stops when no candidate survives. The result is 1-minimal by
// construction — no single reduction of the output both validates and
// fails — which is exactly what the shrinker tests assert.
//
// Candidates are always fresh deep clones; the input program is never
// mutated, so predicates are free to compile and execute candidates.
package shrink

import (
	"repro/internal/ir"
)

// Predicate reports whether a candidate program still exhibits the failure
// being minimized. It must be deterministic: minimization re-evaluates it
// once per accepted or rejected candidate.
type Predicate func(p *ir.Program) bool

// Result is the outcome of one minimization.
type Result struct {
	// Program is the minimized program (finalized). When no reduction was
	// accepted it is a clone of the input.
	Program *ir.Program
	// Steps counts accepted reductions.
	Steps int
	// Tried counts candidate programs evaluated (valid ones only).
	Tried int
}

// maxSteps bounds accepted reductions; generated programs are small, so
// this is a runaway guard, not a practical limit.
const maxSteps = 10000

// Minimize shrinks p while keep holds. The input must itself satisfy keep;
// Minimize does not re-check it.
func Minimize(p *ir.Program, keep Predicate) *Result {
	cur := ir.CloneProgram(p)
	cur.Finalize()
	res := &Result{}
	for res.Steps < maxSteps {
		accepted := false
		for _, cand := range Reductions(cur) {
			if ir.Validate(cand) != nil {
				continue
			}
			res.Tried++
			if keep(cand) {
				cur = cand
				res.Steps++
				accepted = true
				break
			}
		}
		if !accepted {
			break
		}
	}
	res.Program = cur
	return res
}
