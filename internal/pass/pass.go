// Package pass is the CCDP compiler's pass-manager framework. The paper's
// pipeline — stale reference analysis (§4.1), prefetch target analysis
// (Figure 1), prefetch scheduling (Figure 2) — plus the supporting lowering
// steps are expressed as named, ordered passes over a shared Context that
// carries the cloned program and every artifact the passes accumulate.
//
// The manager gives the pipeline the auditability a software-coherence
// scheme needs (a wrong pass decision silently becomes a stale-value read):
// per-pass wall time, stable textual/JSON snapshots after any pass, optional
// between-pass invariant checking, and a provenance store recording a reason
// for every per-reference decision, surfaced by `ccdpc -explain`.
//
// The concrete passes live in internal/core, which assembles a pipeline per
// execution mode; this package is mode-agnostic.
package pass

import (
	"fmt"
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/stale"
	"repro/internal/target"
)

// Context is the shared state a pipeline threads through its passes. The
// source program is never mutated: the clone pass snapshots it and all later
// passes annotate and transform the clone.
type Context struct {
	// Src is the source program. Read-only for every pass.
	Src *ir.Program
	// Prog is the working clone; nil until the clone pass runs.
	Prog *ir.Program
	// Machine is the target configuration the program is lowered for.
	Machine machine.Params

	// TotalWords is the extent of the laid-out shared address space, set by
	// the layout pass.
	TotalWords int64

	// Candidates is the prefetch candidate set the candidate-selection pass
	// derives from the stale analysis (widened by the §6 non-stale extension
	// when Machine.PrefetchNonStale is set).
	Candidates map[ir.RefID]bool

	// Analysis artifacts (CCDP pipelines only; nil otherwise).
	Stale   *stale.Result
	Targets *target.Result
	Sched   *sched.Result

	// Syms is the interned symbol table of the final program.
	Syms *ir.SymTable

	// Prov records a reason for every per-reference decision the passes
	// make. Never nil once a Manager has run.
	Prov *Provenance
}

// Pass is one named pipeline stage.
type Pass interface {
	Name() string
	Run(ctx *Context) error
}

type funcPass struct {
	name string
	fn   func(*Context) error
}

func (p funcPass) Name() string            { return p.name }
func (p funcPass) Run(ctx *Context) error  { return p.fn(ctx) }

// Func adapts a function to a named Pass.
func Func(name string, fn func(*Context) error) Pass { return funcPass{name: name, fn: fn} }

// Timing is the measured wall time of one pass.
type Timing struct {
	Pass     string
	Duration time.Duration
}

// Options tunes a Manager.
type Options struct {
	// CheckInvariants runs Check after every pass: ir.Validate on the
	// working program plus consistency of the accumulated analysis maps.
	CheckInvariants bool
	// Dump, when set, is called after every pass (after the invariant
	// check); use Snapshot/SnapshotJSON for stable output.
	Dump func(pass string, ctx *Context)
}

// Manager runs an ordered pass list over a Context.
type Manager struct {
	opts   Options
	passes []Pass
}

// NewManager builds a manager for the given pipeline.
func NewManager(opts Options, passes ...Pass) *Manager {
	return &Manager{opts: opts, passes: passes}
}

// Passes returns the pipeline's pass names in order.
func (m *Manager) Passes() []string {
	names := make([]string, len(m.passes))
	for i, p := range m.passes {
		names[i] = p.Name()
	}
	return names
}

// Run executes the pipeline, returning per-pass wall times. The first pass
// error (or invariant violation) aborts the run; the error names the pass.
func (m *Manager) Run(ctx *Context) ([]Timing, error) {
	if ctx.Prov == nil {
		ctx.Prov = NewProvenance()
	}
	timings := make([]Timing, 0, len(m.passes))
	for _, p := range m.passes {
		start := time.Now()
		if err := p.Run(ctx); err != nil {
			return timings, fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		timings = append(timings, Timing{Pass: p.Name(), Duration: time.Since(start)})
		if m.opts.CheckInvariants {
			if err := Check(ctx); err != nil {
				return timings, fmt.Errorf("invariants violated after pass %s: %w", p.Name(), err)
			}
		}
		if m.opts.Dump != nil {
			m.opts.Dump(p.Name(), ctx)
		}
	}
	return timings, nil
}

// Check verifies the between-pass invariants of a pipeline Context: the
// working program is structurally valid and every accumulated analysis map
// keys on references of the current table, with the cross-map relations the
// scheduler relies on (targets and drops are disjoint, every covered
// reference names a selected leader, region assignments only cover targets,
// and — once scheduling ran — the Stale flags on the program agree exactly
// with the stale analysis).
func Check(ctx *Context) error {
	if ctx.Prog == nil {
		return nil // before the clone pass there is nothing to check
	}
	if err := ir.Validate(ctx.Prog); err != nil {
		return err
	}
	n := len(ctx.Prog.Refs())
	inRange := func(label string, id ir.RefID) error {
		if id < 0 || int(id) >= n {
			return fmt.Errorf("%s: ref id %d outside table [0,%d)", label, id, n)
		}
		return nil
	}
	for id := range ctx.Candidates {
		if err := inRange("candidates", id); err != nil {
			return err
		}
	}
	if s := ctx.Stale; s != nil {
		for id := range s.StaleReads {
			if err := inRange("stale reads", id); err != nil {
				return err
			}
		}
		for id := range s.RemoteReads {
			if err := inRange("remote reads", id); err != nil {
				return err
			}
		}
		if ctx.Sched != nil {
			// After scheduling, the program's Stale flags and the analysis
			// map must agree in both directions.
			for _, r := range ctx.Prog.Refs() {
				if r.Stale != s.StaleReads[r.ID] {
					return fmt.Errorf("ref %s (id %d): Stale flag %v disagrees with stale analysis %v",
						r, r.ID, r.Stale, s.StaleReads[r.ID])
				}
			}
		}
	}
	if t := ctx.Targets; t != nil {
		for id := range t.Targets {
			if err := inRange("targets", id); err != nil {
				return err
			}
			if ctx.Candidates != nil && !ctx.Candidates[id] {
				return fmt.Errorf("target %d was never a candidate", id)
			}
		}
		for id := range t.Dropped {
			if err := inRange("dropped", id); err != nil {
				return err
			}
			if t.Targets[id] {
				return fmt.Errorf("ref %d is both a target and dropped", id)
			}
		}
		for id, leader := range t.CoveredBy {
			if err := inRange("covered", id); err != nil {
				return err
			}
			if err := inRange("covering leader", leader); err != nil {
				return err
			}
			if _, dropped := t.Dropped[id]; !dropped {
				return fmt.Errorf("covered ref %d is not recorded as dropped", id)
			}
			if !t.Targets[leader] {
				return fmt.Errorf("ref %d covered by %d, which is not a target", id, leader)
			}
		}
		for id := range t.RegionOf {
			if err := inRange("region assignment", id); err != nil {
				return err
			}
			if !t.Targets[id] {
				return fmt.Errorf("region assigned to non-target ref %d", id)
			}
		}
	}
	return nil
}
