package pass

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/sched"
	"repro/internal/target"
)

// Snapshot renders a stable textual snapshot of the pipeline state: the
// annotated program plus every analysis artifact accumulated so far. The
// output is deterministic (all map iterations are sorted and no wall times
// appear), so dump-after-pass golden tests and the CI determinism job can
// diff it byte for byte.
func Snapshot(ctx *Context) string {
	var b strings.Builder
	prog := ctx.Prog
	if prog == nil {
		prog = ctx.Src
	}
	fmt.Fprintf(&b, "machine: %d PEs, %d-word lines, %d-word cache\n",
		ctx.Machine.NumPE, ctx.Machine.LineWords, ctx.Machine.CacheWords)
	if ctx.TotalWords > 0 {
		fmt.Fprintf(&b, "total words: %d\n", ctx.TotalWords)
	}
	b.WriteString("-- program --\n")
	b.WriteString(ir.Format(prog))
	if s := ctx.Stale; s != nil {
		b.WriteString("-- stale reads --\n")
		writeRefList(&b, prog, sortedIDs(s.StaleReads))
		b.WriteString("-- remote reads --\n")
		writeRefList(&b, prog, sortedIDs(s.RemoteReads))
	}
	if ctx.Candidates != nil {
		b.WriteString("-- prefetch candidates --\n")
		writeRefList(&b, prog, sortedIDs(ctx.Candidates))
	}
	if t := ctx.Targets; t != nil {
		b.WriteString("-- targets --\n")
		for _, id := range sortedIDs(t.Targets) {
			fmt.Fprintf(&b, "#%d %s in %s\n", id, prog.Ref(id), target.RegionLabel(t.RegionOf[id]))
		}
		b.WriteString("-- dropped --\n")
		ids := make([]ir.RefID, 0, len(t.Dropped))
		for id := range t.Dropped {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			fmt.Fprintf(&b, "#%d %s — %s", id, prog.Ref(id), t.Dropped[id])
			if leader, ok := t.CoveredBy[id]; ok {
				fmt.Fprintf(&b, " (#%d %s)", leader, prog.Ref(leader))
			}
			b.WriteString("\n")
		}
	}
	if sc := ctx.Sched; sc != nil {
		b.WriteString("-- schedule --\n")
		for _, d := range sc.Decisions {
			fmt.Fprintf(&b, "#%d %s — %s\n", d.Ref.ID, d.Ref, decisionDetail(d))
		}
	}
	if ctx.Syms != nil {
		fmt.Fprintf(&b, "-- symbols --\n%d scalars, %d integer variables\n",
			ctx.Syms.NumScalars(), ctx.Syms.NumVars())
	}
	if ctx.Prov != nil && ctx.Prov.Len() > 0 {
		b.WriteString("-- provenance --\n")
		b.WriteString(ctx.Prov.Explain(prog, nil))
	}
	return b.String()
}

// decisionDetail renders one scheduling decision (shared by Snapshot and
// the provenance records the scheduling pass writes).
func decisionDetail(d sched.Decision) string {
	switch d.Technique {
	case sched.TechVPG:
		s := fmt.Sprintf("case %d: VPG vector prefetch, %d words", d.Case, d.Words)
		if d.Hoisted {
			s += ", hoisted to DOALL prologue"
		}
		return s
	case sched.TechSP:
		return fmt.Sprintf("case %d: software-pipelined %d iterations ahead", d.Case, d.Ahead)
	case sched.TechMBP:
		return fmt.Sprintf("case %d: prefetch moved back %d cycles before the use", d.Case, d.MovedBack)
	default:
		return fmt.Sprintf("case %d: demoted to bypass fetch — %s", d.Case, d.Reason)
	}
}

func sortedIDs(m map[ir.RefID]bool) []ir.RefID {
	out := make([]ir.RefID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func writeRefList(b *strings.Builder, prog *ir.Program, ids []ir.RefID) {
	for _, id := range ids {
		fmt.Fprintf(b, "#%d %s\n", id, prog.Ref(id))
	}
}

// jsonSnapshot is the stable JSON form of a pipeline snapshot. Every slice
// is sorted and no struct carries a map, so encoding/json output is
// byte-deterministic.
type jsonSnapshot struct {
	NumPE      int    `json:"num_pe"`
	LineWords  int64  `json:"line_words"`
	TotalWords int64  `json:"total_words,omitempty"`
	Program    string `json:"program"`

	Stale      []jsonRef      `json:"stale,omitempty"`
	Remote     []jsonRef      `json:"remote,omitempty"`
	Candidates []jsonRef      `json:"candidates,omitempty"`
	Targets    []jsonTarget   `json:"targets,omitempty"`
	Dropped    []jsonDrop     `json:"dropped,omitempty"`
	Schedule   []jsonDecision `json:"schedule,omitempty"`
	Provenance []jsonProvRef  `json:"provenance,omitempty"`
}

type jsonRef struct {
	ID  int    `json:"id"`
	Ref string `json:"ref"`
}

type jsonTarget struct {
	ID     int    `json:"id"`
	Ref    string `json:"ref"`
	Region string `json:"region"`
}

type jsonDrop struct {
	ID     int    `json:"id"`
	Ref    string `json:"ref"`
	Reason string `json:"reason"`
	// CoveredBy is the covering leader's id, or -1 (0 is a valid RefID, so
	// omitempty would be wrong here).
	CoveredBy int `json:"covered_by"`
}

type jsonDecision struct {
	ID     int    `json:"id"`
	Ref    string `json:"ref"`
	Detail string `json:"detail"`
}

type jsonProvRef struct {
	ID      int         `json:"id"`
	Ref     string      `json:"ref"`
	Entries []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Pass    string `json:"pass"`
	Verdict string `json:"verdict"`
	Reason  string `json:"reason"`
	// Other is a related reference id, or -1 (0 is a valid RefID).
	Other int `json:"other"`
}

// SnapshotJSON renders the pipeline state as stable, indented JSON.
func SnapshotJSON(ctx *Context) ([]byte, error) {
	prog := ctx.Prog
	if prog == nil {
		prog = ctx.Src
	}
	snap := jsonSnapshot{
		NumPE:      ctx.Machine.NumPE,
		LineWords:  ctx.Machine.LineWords,
		TotalWords: ctx.TotalWords,
		Program:    ir.Format(prog),
	}
	refList := func(m map[ir.RefID]bool) []jsonRef {
		var out []jsonRef
		for _, id := range sortedIDs(m) {
			out = append(out, jsonRef{ID: int(id), Ref: prog.Ref(id).String()})
		}
		return out
	}
	if s := ctx.Stale; s != nil {
		snap.Stale = refList(s.StaleReads)
		snap.Remote = refList(s.RemoteReads)
	}
	if ctx.Candidates != nil {
		snap.Candidates = refList(ctx.Candidates)
	}
	if t := ctx.Targets; t != nil {
		for _, id := range sortedIDs(t.Targets) {
			snap.Targets = append(snap.Targets, jsonTarget{
				ID: int(id), Ref: prog.Ref(id).String(), Region: target.RegionLabel(t.RegionOf[id])})
		}
		ids := make([]ir.RefID, 0, len(t.Dropped))
		for id := range t.Dropped {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			d := jsonDrop{ID: int(id), Ref: prog.Ref(id).String(), Reason: t.Dropped[id].String(), CoveredBy: -1}
			if leader, ok := t.CoveredBy[id]; ok {
				d.CoveredBy = int(leader)
			}
			snap.Dropped = append(snap.Dropped, d)
		}
	}
	if sc := ctx.Sched; sc != nil {
		for _, d := range sc.Decisions {
			snap.Schedule = append(snap.Schedule, jsonDecision{
				ID: int(d.Ref.ID), Ref: d.Ref.String(), Detail: decisionDetail(d)})
		}
	}
	if ctx.Prov != nil {
		for _, id := range ctx.Prov.Refs() {
			pr := jsonProvRef{ID: int(id), Ref: prog.Ref(id).String()}
			for _, e := range ctx.Prov.Entries(id) {
				pr.Entries = append(pr.Entries, jsonEntry{
					Pass: e.Pass, Verdict: string(e.Verdict), Reason: e.Reason, Other: int(e.Other)})
			}
			snap.Provenance = append(snap.Provenance, pr)
		}
	}
	return json.MarshalIndent(snap, "", "  ")
}
