package pass

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/stale"
	"repro/internal/target"
)

// testProg builds a tiny finalized program with one shared array read.
func testProg(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("passtest")
	a := b.SharedArray("A", 16)
	c := b.SharedArray("C", 16)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(15), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
		ir.DoAll("j", ir.K(0), ir.K(15),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(15))))),
	)
	return b.Build()
}

func newCtx(t *testing.T) *Context {
	t.Helper()
	src := testProg(t)
	prog := ir.CloneProgram(src)
	prog.Finalize()
	return &Context{Src: src, Prog: prog, Machine: machine.T3D(4), Prov: NewProvenance()}
}

func TestManagerRunsPassesInOrder(t *testing.T) {
	var ran []string
	mk := func(name string) Pass {
		return Func(name, func(*Context) error { ran = append(ran, name); return nil })
	}
	m := NewManager(Options{}, mk("one"), mk("two"), mk("three"))
	if got := m.Passes(); len(got) != 3 || got[0] != "one" || got[2] != "three" {
		t.Errorf("Passes() = %v", got)
	}
	timings, err := m.Run(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 3 || ran[0] != "one" || ran[1] != "two" || ran[2] != "three" {
		t.Errorf("ran = %v", ran)
	}
	if len(timings) != 3 {
		t.Fatalf("timings = %v", timings)
	}
	for i, tm := range timings {
		if tm.Pass != ran[i] || tm.Duration < 0 {
			t.Errorf("timing %d = %+v", i, tm)
		}
	}
}

func TestManagerWrapsPassError(t *testing.T) {
	boom := errors.New("boom")
	m := NewManager(Options{},
		Func("fine", func(*Context) error { return nil }),
		Func("bad", func(*Context) error { return boom }),
		Func("after", func(*Context) error { t.Error("pass after failure ran"); return nil }),
	)
	timings, err := m.Run(&Context{})
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "pass bad") {
		t.Errorf("err = %v", err)
	}
	if len(timings) != 1 {
		t.Errorf("timings after failure = %v", timings)
	}
}

func TestManagerReportsInvariantViolation(t *testing.T) {
	ctx := newCtx(t)
	m := NewManager(Options{CheckInvariants: true},
		Func("corrupt", func(c *Context) error {
			c.Candidates = map[ir.RefID]bool{ir.RefID(9999): true}
			return nil
		}),
	)
	_, err := m.Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "invariants violated after pass corrupt") {
		t.Errorf("err = %v", err)
	}
}

func TestManagerDumpCallback(t *testing.T) {
	var dumped []string
	m := NewManager(Options{Dump: func(name string, _ *Context) { dumped = append(dumped, name) }},
		Func("a", func(*Context) error { return nil }),
		Func("b", func(*Context) error { return nil }),
	)
	if _, err := m.Run(&Context{}); err != nil {
		t.Fatal(err)
	}
	if len(dumped) != 2 || dumped[0] != "a" || dumped[1] != "b" {
		t.Errorf("dumped = %v", dumped)
	}
}

func TestCheckCatchesCrossMapViolations(t *testing.T) {
	read := func(ctx *Context) ir.RefID {
		// Any A reference will do for map-consistency checks.
		for _, r := range ctx.Prog.Refs() {
			if !r.IsScalar() && r.Array.Name == "A" {
				return r.ID
			}
		}
		t.Fatal("no A ref found")
		return 0
	}
	cases := []struct {
		name string
		mut  func(ctx *Context, id ir.RefID)
		want string
	}{
		{"target not candidate", func(ctx *Context, id ir.RefID) {
			ctx.Candidates = map[ir.RefID]bool{}
			ctx.Targets = &target.Result{Targets: map[ir.RefID]bool{id: true}}
		}, "never a candidate"},
		{"target and dropped", func(ctx *Context, id ir.RefID) {
			ctx.Targets = &target.Result{
				Targets: map[ir.RefID]bool{id: true},
				Dropped: map[ir.RefID]target.Drop{id: target.DropCovered},
			}
		}, "both a target and dropped"},
		{"covered by non-target", func(ctx *Context, id ir.RefID) {
			ctx.Targets = &target.Result{
				Targets:   map[ir.RefID]bool{},
				Dropped:   map[ir.RefID]target.Drop{id: target.DropCovered},
				CoveredBy: map[ir.RefID]ir.RefID{id: 0},
			}
		}, "not a target"},
		{"region on non-target", func(ctx *Context, id ir.RefID) {
			ctx.Targets = &target.Result{
				Targets:  map[ir.RefID]bool{},
				RegionOf: map[ir.RefID]*ir.Region{id: nil},
			}
		}, "non-target"},
		{"id out of range", func(ctx *Context, id ir.RefID) {
			ctx.Stale = &stale.Result{StaleReads: map[ir.RefID]bool{ir.RefID(1000): true}}
		}, "outside table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := newCtx(t)
			if err := Check(ctx); err != nil {
				t.Fatalf("clean context fails check: %v", err)
			}
			tc.mut(ctx, read(ctx))
			err := Check(ctx)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Check = %v; want mention of %q", err, tc.want)
			}
		})
	}
}

func TestProvenanceRecordAndExplain(t *testing.T) {
	p := NewProvenance()
	p.Record(3, "stale-analysis", VerdictStale, "overlaps dirty region")
	p.RecordRel(1, "target-analysis", VerdictCovered, "leader's line serves it", 3)
	p.Record(3, "prefetch-sched", VerdictScheduled, "VPG")
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	if got := p.Refs(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Refs = %v", got)
	}
	if es := p.Entries(3); len(es) != 2 || es[0].Verdict != VerdictStale || es[1].Verdict != VerdictScheduled {
		t.Errorf("Entries(3) = %v", es)
	}
	sum := p.Summary()
	for _, want := range []string{"3 decisions", "2 refs", "1 stale", "1 covered", "1 scheduled"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary %q missing %q", sum, want)
		}
	}
}

func TestProvenanceRemap(t *testing.T) {
	p := NewProvenance()
	p.Record(0, "p", VerdictStale, "r0")
	p.RecordRel(1, "p", VerdictCovered, "r1", 0)
	// Old table: ref 0 is now 5, ref 1 is now 2.
	r0, r1 := &ir.Ref{}, &ir.Ref{}
	r0.ID, r1.ID = 5, 2
	p.Remap([]*ir.Ref{r0, r1})
	if got := p.Refs(); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("Refs after remap = %v", got)
	}
	if es := p.Entries(2); len(es) != 1 || es[0].Other != 5 {
		t.Errorf("Entries(2) = %v; want Other remapped to 5", es)
	}
	if es := p.Entries(5); len(es) != 1 || es[0].Other != NoRef {
		t.Errorf("Entries(5) = %v; want Other NoRef", es)
	}
}

func TestSnapshotDeterministicAndJSONValid(t *testing.T) {
	ctx := newCtx(t)
	id := ctx.Prog.Refs()[0].ID
	ctx.Candidates = map[ir.RefID]bool{id: true}
	ctx.Prov.Record(id, "select-candidates", VerdictCandidate, "test")

	s1, s2 := Snapshot(ctx), Snapshot(ctx)
	if s1 != s2 {
		t.Error("Snapshot is not deterministic")
	}
	for _, want := range []string{"-- program --", "-- prefetch candidates --", "-- provenance --"} {
		if !strings.Contains(s1, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
	if strings.Contains(s1, "µs") || strings.Contains(s1, "ns") {
		t.Error("snapshot contains wall times")
	}

	j1, err := SnapshotJSON(ctx)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := SnapshotJSON(ctx)
	if string(j1) != string(j2) {
		t.Error("SnapshotJSON is not deterministic")
	}
	var decoded map[string]any
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := decoded["program"]; !ok {
		t.Error("JSON snapshot missing program")
	}
}
