package pass

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Verdict classifies a per-reference decision.
type Verdict string

const (
	// VerdictStale: the stale reference analysis marked the read
	// potentially stale.
	VerdictStale Verdict = "stale"
	// VerdictRemote: the read touches data beyond its PE's slab (the §6
	// non-stale extension's raw material).
	VerdictRemote Verdict = "remote"
	// VerdictCandidate: the reference entered the prefetch candidate set.
	VerdictCandidate Verdict = "candidate"
	// VerdictSelected: the target analysis selected the reference as a
	// prefetch target (a group-spatial class leader).
	VerdictSelected Verdict = "selected"
	// VerdictCovered: the reference was dropped because a class leader's
	// prefetch brings its cache line; Other names the leader.
	VerdictCovered Verdict = "covered"
	// VerdictDropped: the reference was dropped for any other reason.
	VerdictDropped Verdict = "dropped"
	// VerdictScheduled: the scheduler covered the target with a prefetch
	// (VPG, SP or MBP — the reason says which, and how far it moved).
	VerdictScheduled Verdict = "scheduled"
	// VerdictBypass: every technique failed; the read was demoted to a
	// bypass-cache fetch (paper §3.2).
	VerdictBypass Verdict = "bypass"
	// VerdictDemoted: the domain-aware stale analysis demoted the read to
	// non-stale — its dirt is wholly intra-domain, so the machine's
	// hardware coherence covers it and no prefetch or software
	// invalidation is needed.
	VerdictDemoted Verdict = "demoted"
)

// NoRef is the Other value of an Entry that names no related reference.
const NoRef ir.RefID = -1

// Entry is one recorded decision about one reference.
type Entry struct {
	Pass    string
	Verdict Verdict
	Reason  string
	// Other is a related reference (the covering leader for
	// VerdictCovered), or NoRef.
	Other ir.RefID
}

// Provenance records why each reference was marked stale, selected,
// dropped, covered, scheduled or bypassed — the audit trail of the
// pipeline. Entries are keyed by RefID and remapped together with the
// analysis maps when re-finalization assigns new IDs.
type Provenance struct {
	byRef map[ir.RefID][]Entry
	count int
}

// NewProvenance returns an empty store.
func NewProvenance() *Provenance {
	return &Provenance{byRef: map[ir.RefID][]Entry{}}
}

// Record appends a decision about the given reference.
func (p *Provenance) Record(id ir.RefID, pass string, v Verdict, reason string) {
	p.RecordRel(id, pass, v, reason, NoRef)
}

// RecordRel is Record with a related reference (e.g. the covering leader).
func (p *Provenance) RecordRel(id ir.RefID, pass string, v Verdict, reason string, other ir.RefID) {
	p.byRef[id] = append(p.byRef[id], Entry{Pass: pass, Verdict: v, Reason: reason, Other: other})
	p.count++
}

// Entries returns the decisions recorded for one reference, in record
// order.
func (p *Provenance) Entries(id ir.RefID) []Entry { return p.byRef[id] }

// Refs returns every reference with at least one entry, sorted by ID.
func (p *Provenance) Refs() []ir.RefID {
	out := make([]ir.RefID, 0, len(p.byRef))
	for id := range p.byRef {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the total number of recorded decisions.
func (p *Provenance) Len() int { return p.count }

// Remap rewrites every recorded RefID after a re-finalization. old[i] is
// the reference that held ID i before; its .ID now carries the new ID.
func (p *Provenance) Remap(old []*ir.Ref) {
	byRef := make(map[ir.RefID][]Entry, len(p.byRef))
	for id, entries := range p.byRef {
		for i := range entries {
			if entries[i].Other != NoRef {
				entries[i].Other = old[entries[i].Other].ID
			}
		}
		byRef[old[id].ID] = entries
	}
	p.byRef = byRef
}

// Summary renders one line of per-verdict decision counts (deterministic).
func (p *Provenance) Summary() string {
	if p.count == 0 {
		return ""
	}
	counts := map[Verdict]int{}
	for _, entries := range p.byRef {
		for _, e := range entries {
			counts[e.Verdict]++
		}
	}
	order := []Verdict{VerdictStale, VerdictDemoted, VerdictRemote, VerdictCandidate,
		VerdictSelected, VerdictCovered, VerdictDropped, VerdictScheduled, VerdictBypass}
	var parts []string
	for _, v := range order {
		if n := counts[v]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, v))
		}
	}
	return fmt.Sprintf("provenance: %d decisions over %d refs (%s)",
		p.count, len(p.byRef), strings.Join(parts, ", "))
}

// Explain renders the full decision history of every reference accepted by
// the filter (nil = all), sorted by RefID. prog resolves IDs to reference
// syntax; it must be the pipeline's final program.
func (p *Provenance) Explain(prog *ir.Program, filter func(*ir.Ref) bool) string {
	var b strings.Builder
	for _, id := range p.Refs() {
		r := prog.Ref(id)
		if filter != nil && !filter(r) {
			continue
		}
		fmt.Fprintf(&b, "#%d %s\n", id, r)
		for _, e := range p.byRef[id] {
			fmt.Fprintf(&b, "  %s: %s — %s", e.Pass, e.Verdict, e.Reason)
			if e.Other != NoRef {
				fmt.Fprintf(&b, " (#%d %s)", e.Other, prog.Ref(e.Other))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
