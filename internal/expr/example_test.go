package expr_test

import (
	"fmt"

	"repro/internal/expr"
)

func ExampleAffine() {
	// Build the subscript expression 2*i + j - 3 and evaluate it.
	a := expr.Var("i").Scale(2).Add(expr.Var("j")).AddConst(-3)
	fmt.Println(a)
	v, _ := a.Eval(map[string]int64{"i": 10, "j": 4})
	fmt.Println(v)
	// Output:
	// 2*i + j - 3
	// 21
}

func ExampleAffine_DiffersOnlyInConst() {
	// The "uniformly generated" test behind group-spatial locality:
	// x(i+1,j) and x(i-1,j) differ only by a constant address offset.
	lead := expr.Var("i").AddConst(1)
	trail := expr.Var("i").AddConst(-1)
	d, ok := lead.DiffersOnlyInConst(trail)
	fmt.Println(d, ok)
	// Output:
	// 2 true
}

func ExampleAffine_Bounds() {
	// Banerjee-style extreme values of 2*i - 3*j over i∈[0,4], j∈[1,5].
	a := expr.Var("i").Scale(2).Sub(expr.Var("j").Scale(3))
	lo := map[string]int64{"i": 0, "j": 1}
	hi := map[string]int64{"i": 4, "j": 5}
	min, max, _ := a.Bounds(lo, hi)
	fmt.Println(min, max)
	// Output:
	// -15 5
}
