package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstAndVar(t *testing.T) {
	c := Const(7)
	if !c.IsConst() || c.ConstPart() != 7 {
		t.Fatalf("Const(7) = %v", c)
	}
	v := Var("i")
	if v.IsConst() || v.Coef("i") != 1 || v.Coef("j") != 0 {
		t.Fatalf("Var(i) = %v", v)
	}
	if got := Scaled("i", 0); !got.IsZero() {
		t.Fatalf("Scaled(i,0) = %v, want 0", got)
	}
}

func TestNewCombinesDuplicates(t *testing.T) {
	a := New(3, Term{"i", 2}, Term{"i", -2}, Term{"j", 5})
	if a.Coef("i") != 0 {
		t.Errorf("duplicate i terms not combined: %v", a)
	}
	if a.Coef("j") != 5 || a.ConstPart() != 3 {
		t.Errorf("New = %v", a)
	}
	if got := len(a.Terms()); got != 1 {
		t.Errorf("zero-coef term retained: %v", a)
	}
}

func TestAddSub(t *testing.T) {
	a := New(1, Term{"i", 2}, Term{"j", 3})
	b := New(4, Term{"j", -3}, Term{"k", 1})
	s := a.Add(b)
	want := New(5, Term{"i", 2}, Term{"k", 1})
	if !s.Equal(want) {
		t.Errorf("Add = %v, want %v", s, want)
	}
	d := s.Sub(b)
	if !d.Equal(a) {
		t.Errorf("(a+b)-b = %v, want %v", d, a)
	}
}

func TestScaleAndNeg(t *testing.T) {
	a := New(2, Term{"i", 3})
	if got := a.Scale(0); !got.IsZero() {
		t.Errorf("Scale(0) = %v", got)
	}
	if got := a.Scale(-2); got.ConstPart() != -4 || got.Coef("i") != -6 {
		t.Errorf("Scale(-2) = %v", got)
	}
	if got := a.Neg().Add(a); !got.IsZero() {
		t.Errorf("a + (-a) = %v", got)
	}
}

func TestMul(t *testing.T) {
	a := New(2, Term{"i", 3})
	c := Const(5)
	if p, ok := a.Mul(c); !ok || p.Coef("i") != 15 || p.ConstPart() != 10 {
		t.Errorf("a*5 = %v ok=%v", p, ok)
	}
	if p, ok := c.Mul(a); !ok || !p.Equal(a.Scale(5)) {
		t.Errorf("5*a = %v ok=%v", p, ok)
	}
	if _, ok := a.Mul(Var("j")); ok {
		t.Error("nonlinear product reported ok")
	}
}

func TestEval(t *testing.T) {
	a := New(1, Term{"i", 2}, Term{"j", -1})
	env := map[string]int64{"i": 10, "j": 3}
	got, err := a.Eval(env)
	if err != nil || got != 1+20-3 {
		t.Errorf("Eval = %d, %v", got, err)
	}
	if _, err := a.Eval(map[string]int64{"i": 1}); err == nil {
		t.Error("Eval with missing binding did not error")
	}
}

func TestSubst(t *testing.T) {
	// a = 2i + j + 1 ; i := 3k - 1  =>  6k + j - 1
	a := New(1, Term{"i", 2}, Term{"j", 1})
	r := New(-1, Term{"k", 3})
	got := a.Subst("i", r)
	want := New(-1, Term{"j", 1}, Term{"k", 6})
	if !got.Equal(want) {
		t.Errorf("Subst = %v, want %v", got, want)
	}
	// substituting an absent variable is identity
	if got := a.Subst("zz", r); !got.Equal(a) {
		t.Errorf("Subst absent = %v", got)
	}
}

func TestDiffersOnlyInConst(t *testing.T) {
	a := New(0, Term{"i", 1}, Term{"j", 2})
	b := New(4, Term{"i", 1}, Term{"j", 2})
	if d, ok := a.DiffersOnlyInConst(b); !ok || d != -4 {
		t.Errorf("DiffersOnlyInConst = %d, %v", d, ok)
	}
	c := New(4, Term{"i", 1})
	if _, ok := a.DiffersOnlyInConst(c); ok {
		t.Error("expected not uniformly generated")
	}
}

func TestBounds(t *testing.T) {
	a := New(10, Term{"i", 2}, Term{"j", -3})
	lo := map[string]int64{"i": 0, "j": 1}
	hi := map[string]int64{"i": 4, "j": 5}
	min, max, ok := a.Bounds(lo, hi)
	if !ok {
		t.Fatal("Bounds not ok")
	}
	// min: 10 + 2*0 - 3*5 = -5 ; max: 10 + 2*4 - 3*1 = 15
	if min != -5 || max != 15 {
		t.Errorf("Bounds = [%d,%d], want [-5,15]", min, max)
	}
	if _, _, ok := a.Bounds(map[string]int64{"i": 0}, hi); ok {
		t.Error("Bounds with missing range reported ok")
	}
}

func TestBoundsEmptyRange(t *testing.T) {
	a := New(0, Term{"i", 1})
	min, max, ok := a.Bounds(map[string]int64{"i": 5}, map[string]int64{"i": 2})
	if !ok || min != 5 || max != 5 {
		t.Errorf("degenerate Bounds = [%d,%d] ok=%v", min, max, ok)
	}
}

func TestDependsOn(t *testing.T) {
	a := New(0, Term{"i", 1}, Term{"n", 4})
	if !a.DependsOn("i") || !a.DependsOn("x", "n") || a.DependsOn("j") {
		t.Errorf("DependsOn wrong for %v", a)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		a    Affine
		want string
	}{
		{Const(0), "0"},
		{Const(-3), "-3"},
		{Var("i"), "i"},
		{Var("i").Neg(), "-i"},
		{New(-3, Term{"i", 2}, Term{"j", -1}), "2*i - j - 3"},
		{New(4, Term{"j", 1}), "j + 4"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestSum(t *testing.T) {
	got := Sum(Var("i"), Var("j"), Const(2), Var("i"))
	want := New(2, Term{"i", 2}, Term{"j", 1})
	if !got.Equal(want) {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

// randomAffine builds a bounded random affine expression for property tests.
func randomAffine(r *rand.Rand) Affine {
	vars := []string{"i", "j", "k", "n"}
	a := Const(r.Int63n(21) - 10)
	for _, v := range vars {
		if r.Intn(2) == 0 {
			a = a.Add(Scaled(v, r.Int63n(11)-5))
		}
	}
	return a
}

func randomEnv(r *rand.Rand) map[string]int64 {
	return map[string]int64{
		"i": r.Int63n(201) - 100,
		"j": r.Int63n(201) - 100,
		"k": r.Int63n(201) - 100,
		"n": r.Int63n(201) - 100,
	}
}

func TestPropAddHomomorphic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomAffine(r), randomAffine(r)
		env := randomEnv(r)
		av, _ := a.Eval(env)
		bv, _ := b.Eval(env)
		sv, _ := a.Add(b).Eval(env)
		dv, _ := a.Sub(b).Eval(env)
		return sv == av+bv && dv == av-bv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubstConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAffine(r)
		repl := randomAffine(r).Subst("i", Const(0)) // avoid self-reference
		env := randomEnv(r)
		rv, _ := repl.Eval(env)
		env2 := map[string]int64{"i": rv, "j": env["j"], "k": env["k"], "n": env["n"]}
		want, _ := a.Eval(env2)
		got, _ := a.Subst("i", repl).Eval(env)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropBoundsSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAffine(r)
		lo := map[string]int64{}
		hi := map[string]int64{}
		for _, v := range []string{"i", "j", "k", "n"} {
			l := r.Int63n(21) - 10
			lo[v] = l
			hi[v] = l + r.Int63n(10)
		}
		min, max, ok := a.Bounds(lo, hi)
		if !ok {
			return false
		}
		// Sample points must fall inside the bounds.
		for s := 0; s < 20; s++ {
			env := map[string]int64{}
			for v := range lo {
				env[v] = lo[v] + r.Int63n(hi[v]-lo[v]+1)
			}
			got, _ := a.Eval(env)
			if got < min || got > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropScaleDistributes(t *testing.T) {
	f := func(seed int64, c int8) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomAffine(r), randomAffine(r)
		lhs := a.Add(b).Scale(int64(c))
		rhs := a.Scale(int64(c)).Add(b.Scale(int64(c)))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEqualIsStructural(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAffine(r)
		b := a.Add(Var("i")).Sub(Var("i"))
		return a.Equal(b) && b.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
