// Package expr implements the affine (linear) integer expression algebra the
// CCDP compiler phases are built on.
//
// An Affine value represents
//
//	c0 + c1*v1 + c2*v2 + ... + cn*vn
//
// with int64 coefficients over named integer variables (loop induction
// variables and symbolic program parameters). Array subscripts, loop bounds
// and address expressions are all Affine values; the stale-reference,
// locality and scheduling analyses manipulate them symbolically and the
// execution engine evaluates them against concrete environments.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Term is one coefficient*variable product of an affine expression.
type Term struct {
	Var  string
	Coef int64
}

// Affine is an immutable affine expression: a constant plus a sum of terms.
// The zero value is the constant 0. Terms are kept sorted by variable name
// with no zero coefficients, so structural equality is semantic equality.
type Affine struct {
	terms []Term
	k     int64
}

// Const returns the constant affine expression k.
func Const(k int64) Affine { return Affine{k: k} }

// Var returns the affine expression 1*name.
func Var(name string) Affine {
	return Affine{terms: []Term{{Var: name, Coef: 1}}}
}

// Scaled returns the affine expression coef*name.
func Scaled(name string, coef int64) Affine {
	if coef == 0 {
		return Affine{}
	}
	return Affine{terms: []Term{{Var: name, Coef: coef}}}
}

// New builds an affine expression from a constant and a set of terms.
// Duplicate variables are combined; zero coefficients are dropped.
func New(k int64, terms ...Term) Affine {
	a := Const(k)
	for _, t := range terms {
		a = a.Add(Scaled(t.Var, t.Coef))
	}
	return a
}

// ConstPart returns the constant term c0.
func (a Affine) ConstPart() int64 { return a.k }

// Coef returns the coefficient of variable v (0 if absent).
func (a Affine) Coef(v string) int64 {
	for _, t := range a.terms {
		if t.Var == v {
			return t.Coef
		}
	}
	return 0
}

// Terms returns a copy of the non-constant terms, sorted by variable name.
func (a Affine) Terms() []Term {
	out := make([]Term, len(a.terms))
	copy(out, a.terms)
	return out
}

// Vars returns the variables with non-zero coefficients, sorted.
func (a Affine) Vars() []string {
	out := make([]string, len(a.terms))
	for i, t := range a.terms {
		out[i] = t.Var
	}
	return out
}

// IsConst reports whether a has no variable terms.
func (a Affine) IsConst() bool { return len(a.terms) == 0 }

// IsZero reports whether a is the constant 0.
func (a Affine) IsZero() bool { return len(a.terms) == 0 && a.k == 0 }

// Add returns a+b.
func (a Affine) Add(b Affine) Affine {
	out := Affine{k: a.k + b.k}
	out.terms = mergeTerms(a.terms, b.terms, 1)
	return out
}

// Sub returns a-b.
func (a Affine) Sub(b Affine) Affine {
	out := Affine{k: a.k - b.k}
	out.terms = mergeTerms(a.terms, b.terms, -1)
	return out
}

// Neg returns -a.
func (a Affine) Neg() Affine { return Const(0).Sub(a) }

// Scale returns c*a.
func (a Affine) Scale(c int64) Affine {
	if c == 0 {
		return Affine{}
	}
	out := Affine{k: a.k * c, terms: make([]Term, len(a.terms))}
	for i, t := range a.terms {
		out.terms[i] = Term{Var: t.Var, Coef: t.Coef * c}
	}
	return out
}

// AddConst returns a+k.
func (a Affine) AddConst(k int64) Affine {
	out := a
	out.terms = a.Terms() // defensive copy; immutability contract
	out.k += k
	return out
}

// Mul returns a*b when at least one operand is constant; ok is false when
// both have variable terms (the product would not be affine).
func (a Affine) Mul(b Affine) (Affine, bool) {
	switch {
	case a.IsConst():
		return b.Scale(a.k), true
	case b.IsConst():
		return a.Scale(b.k), true
	default:
		return Affine{}, false
	}
}

// Equal reports whether a and b denote the same affine function.
func (a Affine) Equal(b Affine) bool {
	if a.k != b.k || len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}

// DiffersOnlyInConst reports whether a and b have identical variable terms,
// i.e. a-b is a constant, and returns that constant. This is the
// "uniformly generated" test of the prefetch target analysis (paper §4.2).
func (a Affine) DiffersOnlyInConst(b Affine) (int64, bool) {
	d := a.Sub(b)
	if !d.IsConst() {
		return 0, false
	}
	return d.k, true
}

// Eval evaluates a under env. It returns an error naming the first variable
// missing from env.
func (a Affine) Eval(env map[string]int64) (int64, error) {
	v := a.k
	for _, t := range a.terms {
		x, ok := env[t.Var]
		if !ok {
			return 0, fmt.Errorf("expr: unbound variable %q", t.Var)
		}
		v += t.Coef * x
	}
	return v, nil
}

// MustEval is Eval that panics on unbound variables; for use by the
// execution engine where the environment is constructed to be complete.
func (a Affine) MustEval(env map[string]int64) int64 {
	v, err := a.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}

// Subst returns a with variable v replaced by expression r.
func (a Affine) Subst(v string, r Affine) Affine {
	c := a.Coef(v)
	if c == 0 {
		return a
	}
	out := Affine{k: a.k}
	for _, t := range a.terms {
		if t.Var != v {
			out.terms = append(out.terms, t)
		}
	}
	return out.Add(r.Scale(c))
}

// DependsOn reports whether a has a non-zero coefficient on any of vars.
func (a Affine) DependsOn(vars ...string) bool {
	for _, v := range vars {
		if a.Coef(v) != 0 {
			return true
		}
	}
	return false
}

// Bounds returns the min and max value of a when each variable v ranges
// over the interval lo[v]..hi[v] (inclusive). Variables absent from the
// ranges make ok false. This is the Banerjee-style extreme-value bound used
// by the dependence tests and section builders.
func (a Affine) Bounds(lo, hi map[string]int64) (min, max int64, ok bool) {
	min, max = a.k, a.k
	for _, t := range a.terms {
		l, okL := lo[t.Var]
		h, okH := hi[t.Var]
		if !okL || !okH {
			return 0, 0, false
		}
		if l > h {
			// Empty range: the enclosing loop executes zero iterations;
			// callers treat the reference as absent. Report the degenerate
			// bound at the lower end.
			h = l
		}
		if t.Coef >= 0 {
			min += t.Coef * l
			max += t.Coef * h
		} else {
			min += t.Coef * h
			max += t.Coef * l
		}
	}
	return min, max, true
}

// String renders a in a canonical human-readable form such as
// "2*i + j - 3" or "0".
func (a Affine) String() string {
	if len(a.terms) == 0 {
		return fmt.Sprintf("%d", a.k)
	}
	var b strings.Builder
	for i, t := range a.terms {
		switch {
		case i == 0 && t.Coef == 1:
			b.WriteString(t.Var)
		case i == 0 && t.Coef == -1:
			b.WriteString("-" + t.Var)
		case i == 0:
			fmt.Fprintf(&b, "%d*%s", t.Coef, t.Var)
		case t.Coef == 1:
			b.WriteString(" + " + t.Var)
		case t.Coef == -1:
			b.WriteString(" - " + t.Var)
		case t.Coef > 0:
			fmt.Fprintf(&b, " + %d*%s", t.Coef, t.Var)
		default:
			fmt.Fprintf(&b, " - %d*%s", -t.Coef, t.Var)
		}
	}
	switch {
	case a.k > 0:
		fmt.Fprintf(&b, " + %d", a.k)
	case a.k < 0:
		fmt.Fprintf(&b, " - %d", -a.k)
	}
	return b.String()
}

// mergeTerms merges two sorted term slices computing a + sign*b, dropping
// zero coefficients and keeping the result sorted.
func mergeTerms(a, b []Term, sign int64) []Term {
	out := make([]Term, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Var < b[j].Var:
			out = append(out, a[i])
			i++
		case a[i].Var > b[j].Var:
			out = append(out, Term{Var: b[j].Var, Coef: sign * b[j].Coef})
			j++
		default:
			c := a[i].Coef + sign*b[j].Coef
			if c != 0 {
				out = append(out, Term{Var: a[i].Var, Coef: c})
			}
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	for ; j < len(b); j++ {
		out = append(out, Term{Var: b[j].Var, Coef: sign * b[j].Coef})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Sum adds a list of affine expressions.
func Sum(xs ...Affine) Affine {
	var acc Affine
	for _, x := range xs {
		acc = acc.Add(x)
	}
	return acc
}

// SortTerms sorts a user-supplied term slice by variable name; exported for
// test helpers that construct expectations directly.
func SortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Var < ts[j].Var })
}
