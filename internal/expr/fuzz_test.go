package expr

import "testing"

// fuzzAffine builds two affine forms over the variables {i, j} from raw
// fuzzer integers. Coefficients are used as given — identities below are
// stated modulo int64 wraparound, which Add/Sub/Scale share with Eval.
func fuzzAffine(k, ci, cj int64) Affine {
	return New(k, Term{Var: "i", Coef: ci}, Term{Var: "j", Coef: cj})
}

// FuzzAffine checks algebraic identities the compiler's dependence and
// section analyses lean on, for arbitrary coefficient values.
func FuzzAffine(f *testing.F) {
	f.Add(int64(0), int64(1), int64(-1), int64(7), int64(0), int64(3), int64(4), int64(-2))
	f.Add(int64(1)<<62, int64(-1)<<62, int64(5), int64(5), int64(5), int64(5), int64(9), int64(9))
	f.Fuzz(func(t *testing.T, ka, ia, ja, kb, ib, jb, vi, vj int64) {
		a := fuzzAffine(ka, ia, ja)
		b := fuzzAffine(kb, ib, jb)

		if !a.Sub(a).IsZero() {
			t.Fatalf("a - a != 0 for %s", a)
		}
		if !a.Add(b).Equal(b.Add(a)) {
			t.Fatalf("addition not commutative: %s vs %s", a.Add(b), b.Add(a))
		}
		if !a.Neg().Neg().Equal(a) {
			t.Fatalf("double negation changed %s to %s", a, a.Neg().Neg())
		}
		if !a.Add(b).Sub(b).Equal(a) {
			t.Fatalf("(a+b)-b != a: %s", a.Add(b).Sub(b))
		}

		env := map[string]int64{"i": vi, "j": vj}
		ea := a.MustEval(env)
		eb := b.MustEval(env)
		if got := a.Add(b).MustEval(env); got != ea+eb {
			t.Fatalf("Eval not additive: %d != %d + %d", got, ea, eb)
		}
		if got := a.AddConst(kb).MustEval(env); got != ea+kb {
			t.Fatalf("AddConst broke Eval: %d != %d + %d", got, ea, kb)
		}

		// Substituting j := b into a then evaluating equals evaluating a
		// with j bound to b's value.
		subst := a.Subst("j", b)
		if got := subst.MustEval(env); got != a.MustEval(map[string]int64{"i": vi, "j": eb}) {
			t.Fatalf("Subst/Eval disagree for %s [j := %s]", a, b)
		}
	})
}
