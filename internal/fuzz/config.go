package fuzz

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/noc"
)

// RunConfig is one point of the differential matrix: a mode, a machine
// profile, a PE count, a topology, a torus PDES commit scheme and a fault
// plan. Its String form round-trips through ParseRunConfig, so repro
// artifacts can record the exact configuration.
type RunConfig struct {
	Mode core.Mode
	// Profile names a machine profile from the machine registry
	// ("" = "t3d", the pre-profile configuration).
	Profile  string
	PEs      int
	Topology noc.Config
	PDES     noc.PDESMode
	Fault    fault.Plan
}

// String renders the config as space-separated key=value tokens. The pdes
// and profile tokens are omitted for their zero (optimistic / t3d) values,
// so artifacts recorded before those dimensions existed still parse to the
// same config.
func (rc RunConfig) String() string {
	s := fmt.Sprintf("mode=%s pes=%d topo=%s", rc.Mode, rc.PEs, rc.Topology)
	if rc.Profile != "" && rc.Profile != "t3d" {
		s += " profile=" + rc.Profile
	}
	if rc.PDES != noc.PDESOptimistic {
		s += " pdes=" + rc.PDES.String()
	}
	if rc.Fault.Enabled() {
		s += fmt.Sprintf(" frate=%g fkinds=%s fseed=%d",
			rc.Fault.Rate, fault.FormatKinds(rc.Fault.Kinds), rc.Fault.Seed)
	}
	return s
}

// MachineParams builds the machine configuration one run executes on: the
// named profile at the config's PE count, with the topology and PDES
// scheme applied. An unknown profile name is an error that lists the valid
// profiles.
func (rc RunConfig) MachineParams() (machine.Params, error) {
	mp, err := machine.ProfileParams(rc.Profile, rc.PEs)
	if err != nil {
		return machine.Params{}, fmt.Errorf("fuzz: %w", err)
	}
	mp.Topology = rc.Topology
	mp.PDES = rc.PDES
	return mp, nil
}

// ParseMode reads a core.Mode in its String form. It defers to the core
// mode registry, so artifacts recorded under any registered mode —
// including the hardware directory modes — parse back.
func ParseMode(s string) (core.Mode, error) {
	m, err := core.ParseMode(s)
	if err != nil {
		return 0, fmt.Errorf("fuzz: %w", err)
	}
	return m, nil
}

// ParseRunConfig reads a RunConfig in String form.
func ParseRunConfig(s string) (RunConfig, error) {
	rc := RunConfig{}
	for _, tok := range strings.Fields(s) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return rc, fmt.Errorf("fuzz: bad config token %q", tok)
		}
		var err error
		switch key {
		case "mode":
			rc.Mode, err = ParseMode(val)
		case "pes":
			rc.PEs, err = strconv.Atoi(val)
		case "profile":
			_, err = machine.ProfileParams(val, 1)
			rc.Profile = val
		case "topo":
			rc.Topology, err = noc.Parse(val)
		case "pdes":
			rc.PDES, err = noc.ParsePDES(val)
		case "frate":
			rc.Fault.Rate, err = strconv.ParseFloat(val, 64)
		case "fkinds":
			rc.Fault.Kinds, err = fault.ParseKinds(val)
		case "fseed":
			rc.Fault.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			err = fmt.Errorf("fuzz: unknown config key %q", key)
		}
		if err != nil {
			return rc, err
		}
	}
	if rc.PEs < 1 {
		return rc, fmt.Errorf("fuzz: config %q needs pes >= 1", s)
	}
	return rc, nil
}

// DefaultMatrix is the full differential matrix a campaign runs each
// program through: {BASE, CCDP} × {flat, torus} × {fault-free, faulted} at
// an uneven (3) and an even (8) PE count, plus the software modes on the
// non-t3d machine profiles and the three hardware directory modes, both
// fault-free on both topologies. Fault-free runs are the
// oracle's hunting ground — a stale cached word is consumed and flagged.
// Faulted runs exercise the §3.2 degraded paths, where lost or late
// prefetches may cost cycles but must never corrupt results, so any
// divergence from the sequential golden arrays is a genuine finding. The
// hardware modes run fault-free only: their safety mechanism is the
// directory protocol itself, and the oracle plus the divergence referee
// hold it to the same zero-stale, bit-identical standard as CCDP.
func DefaultMatrix(faultSeed int64) []RunConfig {
	plans := []fault.Plan{
		{},
		{Seed: faultSeed, Rate: 0.02, Kinds: fault.AllKinds()},
	}
	var out []RunConfig
	for _, mode := range []core.Mode{core.ModeBase, core.ModeCCDP} {
		for _, topo := range []noc.Config{{}, {Kind: noc.KindTorus}} {
			for _, pes := range []int{3, 8} {
				for _, plan := range plans {
					out = append(out, RunConfig{Mode: mode, PEs: pes, Topology: topo, Fault: plan})
				}
			}
		}
	}
	// The torus entries above run the default optimistic PDES scheme; one
	// fault-free CCDP point per alternative scheme pins all three against
	// the same referees (including the canonical-timing referee).
	for _, pm := range []noc.PDESMode{noc.PDESConservative, noc.PDESAdaptive} {
		out = append(out, RunConfig{Mode: core.ModeCCDP, PEs: 8,
			Topology: noc.Config{Kind: noc.KindTorus}, PDES: pm})
	}
	out = append(out, ProfileMatrix()...)
	return append(out, HWMatrix()...)
}

// ProfileMatrix is the coherence-domain slice of the default matrix: the
// software modes on every non-t3d machine profile, fault-free, on both
// topologies at an uneven (3) and an even (8) PE count. The oracle and the
// divergence referee are profile-agnostic — the sequential golden arrays
// never depend on the machine — so a domain-aware analysis that wrongly
// demotes a cross-domain stale reference must surface here. The
// domain-sabotage mutation test uses the cxl-pcc CCDP entries to bound its
// search the way CoherenceMatrix bounds the invalidation tests'.
func ProfileMatrix() []RunConfig {
	var out []RunConfig
	for _, prof := range []string{"cxl-pcc", "pim"} {
		for _, mode := range []core.Mode{core.ModeBase, core.ModeCCDP} {
			for _, topo := range []noc.Config{{}, {Kind: noc.KindTorus}} {
				for _, pes := range []int{3, 8} {
					out = append(out, RunConfig{Mode: mode, Profile: prof, PEs: pes, Topology: topo})
				}
			}
		}
	}
	return out
}

// DomainMatrix is the slice of the profile matrix where multi-PE coherence
// domains actually form under CCDP: the cxl-pcc profile (8 PEs → domains
// of 4; 3 PEs → one domain of 3) on both topologies. The domain-sabotage
// mutation test bounds its search with it.
func DomainMatrix() []RunConfig {
	var out []RunConfig
	for _, topo := range []noc.Config{{}, {Kind: noc.KindTorus}} {
		for _, pes := range []int{3, 8} {
			out = append(out, RunConfig{Mode: core.ModeCCDP, Profile: "cxl-pcc", PEs: pes, Topology: topo})
		}
	}
	return out
}

// CoherenceMatrix is the fault-free CCDP slice of the default matrix — the
// configurations where a coherence bug must surface as an oracle violation.
// The mutation tests use it to bound their search.
func CoherenceMatrix() []RunConfig {
	var out []RunConfig
	for _, topo := range []noc.Config{{}, {Kind: noc.KindTorus}} {
		for _, pes := range []int{3, 8} {
			out = append(out, RunConfig{Mode: core.ModeCCDP, PEs: pes, Topology: topo})
		}
	}
	return out
}

// TimingMatrix is the slice of the default matrix where the optimistic
// torus PDES scheme engages: fault-free CCDP on the torus at an uneven (3)
// and an even (8) PE count. The rollback-sabotage mutation test uses it to
// bound its search the way CoherenceMatrix bounds the invalidation tests'.
func TimingMatrix() []RunConfig {
	var out []RunConfig
	for _, pes := range []int{3, 8} {
		out = append(out, RunConfig{Mode: core.ModeCCDP, PEs: pes,
			Topology: noc.Config{Kind: noc.KindTorus}})
	}
	return out
}

// HWMatrix is the hardware-directory slice of the default matrix: every
// directory organization, fault-free, on both topologies at an uneven (3)
// and an even (8) PE count. The directory-sabotage mutation test uses it
// to bound its search the way CoherenceMatrix bounds CCDP's.
func HWMatrix() []RunConfig {
	var out []RunConfig
	for _, mode := range []core.Mode{core.ModeHWDir, core.ModeHWDirLP, core.ModeHWDirSparse} {
		for _, topo := range []noc.Config{{}, {Kind: noc.KindTorus}} {
			for _, pes := range []int{3, 8} {
				out = append(out, RunConfig{Mode: mode, PEs: pes, Topology: topo})
			}
		}
	}
	return out
}
