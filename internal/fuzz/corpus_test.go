package fuzz

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// The committed corpus is a permanent regression suite: every minimized
// finding ever recorded must keep reproducing its referee exactly, and —
// for findings that only exist under a sabotage mutation — the same
// program must keep running clean at head (the bug stays fixed).
//
// GOMAXPROCS is raised so the no-rollback witnesses replay faithfully: on a
// single-threaded scheduler the torus PDES speculation (and the
// canonical-timing referee guarding it) never engages.
func TestCorpusReplays(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	entries, err := os.ReadDir("corpus")
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".repro") {
			continue
		}
		seen++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("corpus", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			f, err := ParseFinding(string(data))
			if err != nil {
				t.Fatalf("artifact does not parse: %v", err)
			}
			nf := Replay(f)
			if nf == nil {
				t.Fatalf("recorded %s finding no longer reproduces", f.Referee)
			}
			if nf.Referee != f.Referee {
				t.Fatalf("referee drifted: recorded %s, observed %s: %s",
					f.Referee, nf.Referee, nf.Detail)
			}
			if f.Mutation != MutNone {
				// The finding needed a sabotaged compiler to exist; the
				// unmutated compiler must still handle the program cleanly.
				if clean, _ := CheckProgram(f.Program, []RunConfig{f.Config}, MutNone); clean != nil {
					t.Fatalf("program fails even without the %s mutation: %s: %s",
						f.Mutation, clean.Referee, clean.Detail)
				}
			}
		})
	}
	if seen == 0 {
		t.Fatal("corpus directory holds no .repro artifacts")
	}
}
