// Package fuzz is the differential fuzzing campaign of the reproduction:
// it drives randomly generated epoch programs (internal/progen) through the
// BASE/CCDP × flat/torus × fault-plan matrix and referees every run three
// ways — the coherence-safety oracle (Stats.OracleViolations), the
// compiled-program invariant checker (pass.Check), and cross-mode
// divergence of the final shared arrays from the sequential golden run. A
// run that panics is captured by a per-run recover and becomes a recorded
// finding instead of killing the campaign (the intentional shmem
// out-of-range panics surface here as run findings).
//
// Findings are minimized with internal/shrink and written as deterministic
// text artifacts that embed the generator seed, the exact run
// configuration, and the minimized program in ir.Format form — replayable
// forever via ParseFinding + Replay. The committed corpus under corpus/ is
// exactly such a set of artifacts, replayed as a regression test.
package fuzz

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/parallel"
	"repro/internal/pass"
	"repro/internal/progen"
	"repro/internal/shrink"
)

// Referee identifies which check flagged a finding.
type Referee int

const (
	// RefereeCompile: the compiler rejected (or the generator produced an
	// invalid) program.
	RefereeCompile Referee = iota
	// RefereeInvariant: pass.Check rejected the compiled program (analysis
	// maps and program annotations disagree).
	RefereeInvariant
	// RefereeRun: execution returned an error — engine-recovered panics
	// (shmem out-of-range, model violations) land here.
	RefereeRun
	// RefereeOracle: the coherence-safety oracle observed a consumed word
	// whose generation lagged memory (a stale-value read).
	RefereeOracle
	// RefereeDivergence: final shared arrays differ from the sequential
	// golden run.
	RefereeDivergence
	// RefereePanic: the harness-level recover caught a panic outside the
	// engine (compiler or referee code itself).
	RefereePanic
)

func (r Referee) String() string {
	switch r {
	case RefereeCompile:
		return "compile"
	case RefereeInvariant:
		return "invariant"
	case RefereeRun:
		return "run"
	case RefereeOracle:
		return "oracle"
	case RefereeDivergence:
		return "divergence"
	case RefereePanic:
		return "panic"
	default:
		return fmt.Sprintf("Referee(%d)", int(r))
	}
}

// ParseReferee reads a Referee in String form.
func ParseReferee(s string) (Referee, error) {
	for _, r := range []Referee{RefereeCompile, RefereeInvariant, RefereeRun,
		RefereeOracle, RefereeDivergence, RefereePanic} {
		if s == r.String() {
			return r, nil
		}
	}
	return 0, fmt.Errorf("fuzz: unknown referee %q", s)
}

// Finding is one refereed failure, minimized when the campaign shrinks.
type Finding struct {
	Seed     int64 // generator seed (0 for handcrafted/replayed programs)
	Config   RunConfig
	Mutation Mutation
	Referee  Referee
	Detail   string
	// Program is the source-level program exhibiting the failure
	// (minimized when ShrinkSteps > 0 or the campaign ran with Shrink).
	Program     *ir.Program
	ShrinkSteps int
}

// Config parameterizes a campaign. At least one of Programs and Budget must
// bound it.
type Config struct {
	// Seed is the first program seed; seeds are consumed consecutively, so
	// Summary.NextSeed resumes a campaign exactly where it stopped.
	Seed int64
	// Programs caps how many programs to generate (0 = unbounded, Budget
	// must then be set).
	Programs int
	// Budget caps the campaign wall clock (checked between batches).
	Budget time.Duration
	// Jobs is the worker count for parallel.ForEach (<= 0 = GOMAXPROCS).
	Jobs int
	// Gen bounds the generated programs; the zero value means
	// progen.DefaultConfig.
	Gen progen.Config
	// Matrix lists the run configurations; nil means DefaultMatrix(Seed).
	Matrix []RunConfig
	// Mutation sabotages every compiled program (mutation testing of the
	// referees); MutNone for real campaigns.
	Mutation Mutation
	// Shrink minimizes each finding's program before recording it.
	Shrink bool
	// MaxFindings stops the campaign early once reached (0 = no cap).
	MaxFindings int
	// Log, when non-nil, receives one progress line per batch and per
	// finding.
	Log io.Writer
}

// Summary is the outcome of a campaign.
type Summary struct {
	Programs int
	Runs     int
	Findings []*Finding
	// NextSeed is the first unconsumed program seed; pass it as
	// Config.Seed to resume the campaign.
	NextSeed int64
	Elapsed  time.Duration
}

// Run executes a campaign: batches of consecutive program seeds fan out
// over parallel.ForEach workers (each worker generates, runs the full
// matrix, and shrinks its own findings), and results are collected in seed
// order, so the campaign's findings, log and artifacts are byte-identical
// at any -jobs setting.
func Run(cfg Config) (*Summary, error) {
	if cfg.Programs <= 0 && cfg.Budget <= 0 {
		return nil, fmt.Errorf("fuzz: unbounded campaign (set Programs or Budget)")
	}
	if cfg.Gen == (progen.Config{}) {
		cfg.Gen = progen.DefaultConfig()
	}
	if cfg.Matrix == nil {
		cfg.Matrix = DefaultMatrix(cfg.Seed)
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	workers := cfg.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := 4 * workers
	if batch < 8 {
		batch = 8
	}

	start := time.Now()
	sum := &Summary{NextSeed: cfg.Seed}
	for {
		n := batch
		if cfg.Programs > 0 {
			if left := cfg.Programs - sum.Programs; left < n {
				n = left
			}
		}
		if n <= 0 {
			break
		}
		if cfg.Budget > 0 && time.Since(start) >= cfg.Budget {
			break
		}
		type out struct {
			finding *Finding
			runs    int
		}
		res := make([]out, n)
		parallel.ForEach(n, cfg.Jobs, func(i int) {
			seed := sum.NextSeed + int64(i)
			f, runs := CheckSeed(seed, cfg.Gen, cfg.Matrix, cfg.Mutation)
			if f != nil && cfg.Shrink {
				shrinkFinding(f)
			}
			res[i] = out{finding: f, runs: runs}
		}, nil)
		stop := false
		for i := range res {
			sum.Programs++
			sum.Runs += res[i].runs
			if f := res[i].finding; f != nil {
				sum.Findings = append(sum.Findings, f)
				logf("fuzz: FINDING seed=%d referee=%s mutation=%s %s: %s",
					f.Seed, f.Referee, f.Mutation, f.Config, f.Detail)
				if cfg.MaxFindings > 0 && len(sum.Findings) >= cfg.MaxFindings {
					sum.NextSeed += int64(i + 1)
					stop = true
					break
				}
			}
		}
		if !stop {
			sum.NextSeed += int64(n)
			logf("fuzz: seeds %d..%d: %d programs, %d runs, %d findings, %.1fs",
				cfg.Seed, sum.NextSeed-1, sum.Programs, sum.Runs, len(sum.Findings),
				time.Since(start).Seconds())
		}
		if stop {
			break
		}
	}
	sum.Elapsed = time.Since(start)
	return sum, nil
}

// CheckSeed generates the program of one seed and referees it across the
// matrix. It returns the first finding (nil if clean) and how many
// compile+run configurations were exercised.
func CheckSeed(seed int64, gen progen.Config, matrix []RunConfig, mut Mutation) (*Finding, int) {
	p := progen.Generate(rand.New(rand.NewSource(seed)), gen)
	f, runs := CheckProgram(p, matrix, mut)
	if f != nil {
		f.Seed = seed
	}
	return f, runs
}

// CheckProgram referees one source program across the matrix, stopping at
// the first finding. The sequential golden run is computed lazily — only
// the divergence referee needs it — and at most once.
func CheckProgram(p *ir.Program, matrix []RunConfig, mut Mutation) (*Finding, int) {
	if err := ir.Validate(p); err != nil {
		return &Finding{Referee: RefereeCompile, Program: p,
			Detail: "invalid program: " + oneLine(err.Error())}, 0
	}
	golden := lazyGolden(p)
	runs := 0
	for _, rc := range matrix {
		runs++
		if f := checkOne(p, golden, rc, mut); f != nil {
			f.Program = p
			return f, runs
		}
	}
	return nil, runs
}

// goldenFn lazily computes the sequential golden arrays; a non-nil Finding
// means the sequential run itself failed.
type goldenFn func() (map[string][]float64, *Finding)

func lazyGolden(p *ir.Program) goldenFn {
	var arrays map[string][]float64
	var f *Finding
	done := false
	return func() (map[string][]float64, *Finding) {
		if done {
			return arrays, f
		}
		done = true
		seqCfg := RunConfig{Mode: core.ModeSeq, PEs: 1}
		func() {
			defer recoverInto(&f, seqCfg, MutNone)
			// The golden arrays are deliberately machine-independent: the
			// t3d profile at one PE defines correctness for every profile
			// in the matrix.
			c, err := core.Compile(p, core.ModeSeq, machine.MustProfileParams("t3d", 1))
			if err != nil {
				f = &Finding{Config: seqCfg, Referee: RefereeCompile, Detail: oneLine(err.Error())}
				return
			}
			r, err := exec.Run(c, exec.Options{})
			if err != nil {
				f = &Finding{Config: seqCfg, Referee: RefereeRun, Detail: oneLine(err.Error())}
				return
			}
			arrays = map[string][]float64{}
			for _, a := range p.Arrays {
				if !a.Shared {
					continue
				}
				data := r.Mem.ArrayData(r.Mem.ArrayNamed(a.Name))
				cp := make([]float64, len(data))
				copy(cp, data)
				arrays[a.Name] = cp
			}
		}()
		return arrays, f
	}
}

// recoverInto is the per-run recover that turns a panic into a finding.
func recoverInto(f **Finding, rc RunConfig, mut Mutation) {
	if r := recover(); r != nil {
		*f = &Finding{Config: rc, Mutation: mut, Referee: RefereePanic,
			Detail: oneLine(fmt.Sprint(r))}
	}
}

// checkOne compiles, sabotages, and runs one configuration, applying the
// three referees in order: invariant check, oracle, divergence.
func checkOne(p *ir.Program, golden goldenFn, rc RunConfig, mut Mutation) (f *Finding) {
	defer recoverInto(&f, rc, mut)

	mp, err := rc.MachineParams()
	if err != nil {
		return &Finding{Config: rc, Mutation: mut, Referee: RefereeCompile, Detail: oneLine(err.Error())}
	}
	c, err := core.Compile(p, rc.Mode, mp)
	if err != nil {
		return &Finding{Config: rc, Mutation: mut, Referee: RefereeCompile, Detail: oneLine(err.Error())}
	}
	Sabotage(c, mut)
	if err := checkCompiled(c); err != nil {
		return &Finding{Config: rc, Mutation: mut, Referee: RefereeInvariant, Detail: oneLine(err.Error())}
	}
	r, err := exec.Run(c, exec.Options{Fault: rc.Fault})
	if err != nil {
		return &Finding{Config: rc, Mutation: mut, Referee: RefereeRun, Detail: oneLine(err.Error())}
	}
	if n := r.Stats.OracleViolations; n > 0 {
		detail := fmt.Sprintf("%d oracle violations", n)
		if len(r.Violations) > 0 {
			detail += "; first: " + oneLine(r.Violations[0].Error())
		}
		return &Finding{Config: rc, Mutation: mut, Referee: RefereeOracle, Detail: detail}
	}
	want, gf := golden()
	if gf != nil {
		return gf
	}
	for _, a := range p.Arrays {
		if !a.Shared {
			continue
		}
		got := r.Mem.ArrayData(r.Mem.ArrayNamed(a.Name))
		for i := range want[a.Name] {
			if got[i] != want[a.Name][i] {
				return &Finding{Config: rc, Mutation: mut, Referee: RefereeDivergence,
					Detail: fmt.Sprintf("%s[%d]: got %v, sequential golden %v", a.Name, i, got[i], want[a.Name][i])}
			}
		}
	}

	// Canonical-timing referee: every concurrent torus PDES scheme promises
	// cycle counts bit-identical to the canonical sequential PE-major
	// booking order — the array referees above cannot see a scheme that
	// places link reservations wrongly but computes the right values (the
	// exact failure MutNoRollback plants), so torus configs are rerun in
	// the canonical order and compared cycle for cycle. Skipped where the
	// concurrent path cannot engage (r then already ran canonically).
	if rc.Topology.Kind != noc.KindFlat && rc.PEs > 1 && runtime.GOMAXPROCS(0) > 1 {
		sr, err := exec.Run(c, exec.Options{Fault: rc.Fault, SerialTorus: true})
		if err != nil {
			return &Finding{Config: rc, Mutation: mut, Referee: RefereeRun,
				Detail: "canonical serial rerun: " + oneLine(err.Error())}
		}
		if r.Cycles != sr.Cycles {
			return &Finding{Config: rc, Mutation: mut, Referee: RefereeDivergence,
				Detail: fmt.Sprintf("cycles diverge from canonical serial order: pdes=%s got %d, canonical %d",
					c.Machine.PDES, r.Cycles, sr.Cycles)}
		}
		for pe, got := range r.PECycles {
			if got != sr.PECycles[pe] {
				return &Finding{Config: rc, Mutation: mut, Referee: RefereeDivergence,
					Detail: fmt.Sprintf("PE %d cycles diverge from canonical serial order: pdes=%s got %d, canonical %d",
						pe, c.Machine.PDES, got, sr.PECycles[pe])}
			}
		}
	}
	return nil
}

// checkCompiled runs the pass-framework invariant checker over a compiled
// program — the referee that catches analysis/annotation disagreements
// (e.g. scheduler marks sabotaged away from the stale analysis).
func checkCompiled(c *core.Compiled) error {
	ctx := &pass.Context{
		Prog:    c.Prog,
		Machine: c.Machine,
		Stale:   c.Stale,
		Targets: c.Targets,
		Sched:   c.Sched,
		Syms:    c.Syms,
		Prov:    c.Prov,
	}
	return pass.Check(ctx)
}

// shrinkFinding minimizes a finding's program: the failure predicate is
// "the same referee fires under the same configuration and mutation".
func shrinkFinding(f *Finding) {
	res := shrink.Minimize(f.Program, func(q *ir.Program) bool {
		nf, _ := CheckProgram(q, []RunConfig{f.Config}, f.Mutation)
		if nf == nil || nf.Referee != f.Referee {
			return false
		}
		// A mutation finding is differential: the program fails under the
		// sabotaged compiler but is handled cleanly by the real one. Keep
		// that property through shrinking, or the minimized witness could
		// degrade into a program that is simply broken on its own (e.g. an
		// extent halved under a subscript the invariant referee never runs).
		if f.Mutation != MutNone {
			if clean, _ := CheckProgram(q, []RunConfig{f.Config}, MutNone); clean != nil {
				return false
			}
		}
		return true
	})
	f.Program = res.Program
	f.ShrinkSteps = res.Steps
	// Re-derive the detail from the minimized program so the artifact
	// describes the repro it actually contains.
	if nf, _ := CheckProgram(f.Program, []RunConfig{f.Config}, f.Mutation); nf != nil {
		f.Detail = nf.Detail
	}
}

// Replay re-referees a finding's recorded program under its recorded
// configuration and mutation. It returns the observed finding (nil when
// the program runs clean) — a faithful replay observes the same referee.
func Replay(f *Finding) *Finding {
	nf, _ := CheckProgram(f.Program, []RunConfig{f.Config}, f.Mutation)
	return nf
}

func oneLine(s string) string {
	return strings.Join(strings.Fields(strings.ReplaceAll(s, "\n", " ")), " ")
}
