package fuzz

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ir"
	"repro/internal/parse"
)

// Artifacts are deterministic text files: a fixed-order header naming the
// generator seed, exact run configuration, mutation, referee and replay
// command, then the minimized program in ir.Format form (the printer is
// byte-deterministic and parse.Program round-trips it, so the artifact IS
// the repro — no generator state needed). Two identical findings always
// serialize to identical bytes, which the determinism tests assert.

const artifactHeader = "ccdpfuzz finding v1"
const programMarker = "-- program --"

// FormatFinding renders a finding as a replayable artifact.
func FormatFinding(f *Finding) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", artifactHeader)
	fmt.Fprintf(&b, "seed: %d\n", f.Seed)
	fmt.Fprintf(&b, "config: %s\n", f.Config)
	fmt.Fprintf(&b, "mutation: %s\n", f.Mutation)
	fmt.Fprintf(&b, "referee: %s\n", f.Referee)
	fmt.Fprintf(&b, "detail: %s\n", f.Detail)
	fmt.Fprintf(&b, "shrink-steps: %d\n", f.ShrinkSteps)
	fmt.Fprintf(&b, "replay: go run ./cmd/ccdpfuzz -replay <this file>\n")
	fmt.Fprintf(&b, "%s\n", programMarker)
	b.WriteString(ir.Format(f.Program))
	return b.String()
}

// ArtifactName is the deterministic file name of a finding. It embeds the
// run configuration so one seed flagged under several configurations never
// collides on disk.
func ArtifactName(f *Finding) string {
	return fmt.Sprintf("s%06d-%s-p%d-%s-%s-%s.repro",
		f.Seed, strings.ToLower(f.Config.Mode.String()), f.Config.PEs,
		f.Config.Topology, f.Mutation, f.Referee)
}

// ParseFinding reads an artifact back into a Finding.
func ParseFinding(data string) (*Finding, error) {
	head, progText, found := strings.Cut(data, programMarker+"\n")
	if !found {
		return nil, fmt.Errorf("fuzz: artifact has no %q section", programMarker)
	}
	f := &Finding{}
	lines := strings.Split(head, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != artifactHeader {
		return nil, fmt.Errorf("fuzz: artifact does not start with %q", artifactHeader)
	}
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("fuzz: bad artifact line %q", line)
		}
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			f.Seed, err = strconv.ParseInt(val, 10, 64)
		case "config":
			f.Config, err = ParseRunConfig(val)
		case "mutation":
			f.Mutation, err = ParseMutation(val)
		case "referee":
			f.Referee, err = ParseReferee(val)
		case "detail":
			f.Detail = val
		case "shrink-steps":
			f.ShrinkSteps, err = strconv.Atoi(val)
		case "replay":
			// informational
		default:
			err = fmt.Errorf("fuzz: unknown artifact key %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	prog, err := parse.Program(progText)
	if err != nil {
		return nil, fmt.Errorf("fuzz: artifact program: %w", err)
	}
	f.Program = prog
	return f, nil
}
