package fuzz

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/noc"
)

// With CCDP's epoch-boundary invalidation deliberately disabled, the
// campaign must flag an oracle violation within a bounded number of
// generated programs, and the shrinker must reduce the witness to a repro
// of at most 3 epochs that replays deterministically. This is the
// mutation test that proves the oracle referee is not vacuous.
func TestMutationNoInvalidateFlagged(t *testing.T) {
	const bound = 60
	sum, err := Run(Config{
		Programs:    bound,
		Matrix:      CoherenceMatrix(),
		Mutation:    MutNoInvalidate,
		Shrink:      true,
		MaxFindings: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) == 0 {
		t.Fatalf("invalidation disabled, yet %d programs ran clean: the oracle referee is vacuous", bound)
	}
	f := sum.Findings[0]
	if f.Referee != RefereeOracle {
		t.Fatalf("expected an oracle finding, got %s: %s", f.Referee, f.Detail)
	}
	g, err := ir.BuildEpochGraph(f.Program)
	if err != nil {
		t.Fatalf("minimized program has no epoch graph: %v", err)
	}
	if len(g.Nodes) > 3 {
		t.Fatalf("minimized repro has %d epochs, want <= 3:\n%s", len(g.Nodes), ir.Format(f.Program))
	}

	// The artifact replays deterministically: parsing it back and
	// re-refereeing observes the same violation, twice over.
	art := FormatFinding(f)
	back, err := ParseFinding(art)
	if err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, art)
	}
	if FormatFinding(back) != art {
		t.Fatal("artifact round-trip is not byte-identical")
	}
	r1, r2 := Replay(back), Replay(back)
	if r1 == nil || r2 == nil {
		t.Fatal("artifact did not reproduce on replay")
	}
	if r1.Referee != RefereeOracle || r1.Detail != r2.Detail {
		t.Fatalf("replay not deterministic: %s %q vs %s %q", r1.Referee, r1.Detail, r2.Referee, r2.Detail)
	}
}

// With the hardware directory's invalidations booked but never delivered,
// every directory organization keeps stale copies alive, and the campaign
// must flag an oracle violation within a bounded number of generated
// programs — the mutation test that proves the oracle referee also guards
// the arena's hardware modes. The finding must replay deterministically
// from its artifact, mutation included.
func TestMutationNoDirInvalidateFlagged(t *testing.T) {
	const bound = 60
	sum, err := Run(Config{
		Programs:    bound,
		Matrix:      HWMatrix(),
		Mutation:    MutNoDirInvalidate,
		Shrink:      true,
		MaxFindings: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) == 0 {
		t.Fatalf("directory invalidations dropped, yet %d programs ran clean: the oracle referee is vacuous for the hardware modes", bound)
	}
	f := sum.Findings[0]
	if f.Referee != RefereeOracle {
		t.Fatalf("expected an oracle finding, got %s: %s", f.Referee, f.Detail)
	}
	if !f.Config.Mode.IsHW() {
		t.Fatalf("finding not under a hardware mode: %s", f.Config)
	}
	art := FormatFinding(f)
	back, err := ParseFinding(art)
	if err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, art)
	}
	if back.Mutation != MutNoDirInvalidate {
		t.Fatalf("artifact lost the mutation: %s", back.Mutation)
	}
	r := Replay(back)
	if r == nil || r.Referee != RefereeOracle {
		t.Fatalf("artifact did not reproduce the oracle finding on replay: %+v", r)
	}
}

// With the optimistic PDES scheme's rollback disabled, a mispredicting PE
// keeps its speculative link timings, the computed arrays stay correct, and
// only the canonical-timing referee (a SerialTorus rerun compared cycle for
// cycle) can see the drift — the mutation test that proves that referee is
// not vacuous. Speculation needs a multi-threaded scheduler, so the test
// raises GOMAXPROCS the way the engine's own equivalence tests do.
func TestMutationNoRollbackFlagged(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const bound = 60
	sum, err := Run(Config{
		Programs:    bound,
		Matrix:      TimingMatrix(),
		Mutation:    MutNoRollback,
		Shrink:      true,
		MaxFindings: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) == 0 {
		t.Fatalf("rollback disabled, yet %d programs ran clean: the canonical-timing referee is vacuous", bound)
	}
	f := sum.Findings[0]
	if f.Referee != RefereeDivergence {
		t.Fatalf("expected a divergence finding, got %s: %s", f.Referee, f.Detail)
	}
	if !strings.Contains(f.Detail, "canonical serial order") {
		t.Fatalf("finding is not a canonical-timing divergence: %s", f.Detail)
	}
	if f.Config.Topology.Kind == noc.KindFlat {
		t.Fatalf("finding not under a torus config: %s", f.Config)
	}
	art := FormatFinding(f)
	back, err := ParseFinding(art)
	if err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, art)
	}
	if back.Mutation != MutNoRollback {
		t.Fatalf("artifact lost the mutation: %s", back.Mutation)
	}
	r := Replay(back)
	if r == nil || r.Referee != RefereeDivergence {
		t.Fatalf("artifact did not reproduce the timing divergence on replay: %+v", r)
	}
}

// With the software (cross-domain) invalidations of a domained machine
// emptied while the hardware intra-domain invalidations stay intact, the
// free epoch-entry hardware invalidation cannot cover writers in other
// coherence domains, and the campaign must flag an oracle violation within
// a bounded number of generated programs — the mutation test that proves
// the domain-aware analysis's cross/intra split is load-bearing. On an
// undomained machine the same sabotage is a no-op, so the t3d slice of the
// matrix must stay clean under it.
func TestMutationNoDomainDemotionFlagged(t *testing.T) {
	const bound = 60
	sum, err := Run(Config{
		Programs:    bound,
		Matrix:      DomainMatrix(),
		Mutation:    MutNoDomainDemotion,
		Shrink:      true,
		MaxFindings: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) == 0 {
		t.Fatalf("cross-domain invalidations dropped, yet %d programs ran clean: the oracle referee is vacuous for domained profiles", bound)
	}
	f := sum.Findings[0]
	if f.Referee != RefereeOracle {
		t.Fatalf("expected an oracle finding, got %s: %s", f.Referee, f.Detail)
	}
	if f.Config.Profile != "cxl-pcc" {
		t.Fatalf("finding not under the cxl-pcc profile: %s", f.Config)
	}
	art := FormatFinding(f)
	back, err := ParseFinding(art)
	if err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, art)
	}
	if back.Mutation != MutNoDomainDemotion {
		t.Fatalf("artifact lost the mutation: %s", back.Mutation)
	}
	if back.Config.Profile != "cxl-pcc" {
		t.Fatalf("artifact lost the profile: %s", back.Config)
	}
	r := Replay(back)
	if r == nil || r.Referee != RefereeOracle {
		t.Fatalf("artifact did not reproduce the oracle finding on replay: %+v", r)
	}

	// The sabotage is explicitly gated on multi-PE domains: the identical
	// campaign on the undomained t3d matrix must run clean.
	clean, err := Run(Config{Programs: 20, Matrix: CoherenceMatrix(), Mutation: MutNoDomainDemotion})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range clean.Findings {
		t.Errorf("t3d run flagged under a domains-only sabotage: %s under %s: %s", f.Referee, f.Config, f.Detail)
	}
}

// With the scheduler's reference marks cleared (statements untouched), the
// compiled-program invariant referee must flag the Stale-flag disagreement
// within a bounded number of programs.
func TestMutationNoSchedMarksFlagged(t *testing.T) {
	const bound = 20
	sum, err := Run(Config{
		Programs:    bound,
		Matrix:      CoherenceMatrix(),
		Mutation:    MutNoSchedMarks,
		Shrink:      true,
		MaxFindings: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) == 0 {
		t.Fatalf("scheduler marks cleared, yet %d programs ran clean: the invariant referee is vacuous", bound)
	}
	f := sum.Findings[0]
	if f.Referee != RefereeInvariant {
		t.Fatalf("expected an invariant finding, got %s: %s", f.Referee, f.Detail)
	}
	if !strings.Contains(f.Detail, "Stale flag") {
		t.Fatalf("unexpected invariant detail: %s", f.Detail)
	}
	if Replay(f) == nil {
		t.Fatal("minimized invariant finding did not reproduce")
	}
}

// At head, an unmutated campaign across the full default matrix runs clean.
// (CI's fuzz-smoke job runs a much longer budgeted version of this.)
func TestHeadCampaignClean(t *testing.T) {
	sum, err := Run(Config{Seed: 9000, Programs: 12, Shrink: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sum.Findings {
		t.Errorf("seed %d: %s finding under %s: %s\n%s",
			f.Seed, f.Referee, f.Config, f.Detail, ir.Format(f.Program))
	}
	if sum.Runs == 0 || sum.Programs != 12 {
		t.Fatalf("campaign did not run: %+v", sum)
	}
}

// Out-of-range accesses panic inside the execution engine by design (the
// shmem get panics and the mem subscript check guard the same read path);
// the per-run recover must surface them as recorded run findings, not
// crash the campaign.
func TestShmemPanicCapturedAsFinding(t *testing.T) {
	b := ir.NewBuilder("oob")
	a := b.SharedArray("A", 16)
	c := b.SharedArray("B", 16)
	b.Routine("main",
		ir.DoAllAligned("i", ir.K(0), ir.K(15), 16,
			ir.Set(ir.At(a, ir.I("i")), ir.L(ir.At(c, ir.I("i").AddConst(100000))))))
	p := b.Build()

	f, _ := CheckProgram(p, []RunConfig{{Mode: core.ModeCCDP, PEs: 4}}, MutNone)
	if f == nil {
		t.Fatal("out-of-range access produced no finding")
	}
	if f.Referee != RefereeRun {
		t.Fatalf("expected a run finding, got %s: %s", f.Referee, f.Detail)
	}
	if !strings.Contains(f.Detail, "out of range") && !strings.Contains(f.Detail, "shmem") {
		t.Fatalf("finding does not name the out-of-range panic: %s", f.Detail)
	}
}

// Every run configuration of the default matrix round-trips through its
// String form, so artifacts can record configurations exactly.
func TestRunConfigRoundTrip(t *testing.T) {
	for _, rc := range append(append(DefaultMatrix(7), CoherenceMatrix()...), DomainMatrix()...) {
		back, err := ParseRunConfig(rc.String())
		if err != nil {
			t.Fatalf("%s: %v", rc, err)
		}
		if back.String() != rc.String() {
			t.Fatalf("round trip changed config: %q vs %q", rc, back)
		}
	}
}

// Campaigns are resumable and deterministic: splitting one campaign into
// two via NextSeed finds the same findings as running it in one piece.
func TestCampaignResume(t *testing.T) {
	matrix := CoherenceMatrix()
	whole, err := Run(Config{Programs: 40, Matrix: matrix, Mutation: MutNoInvalidate})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(Config{Programs: 17, Matrix: matrix, Mutation: MutNoInvalidate})
	if err != nil {
		t.Fatal(err)
	}
	rest, err := Run(Config{Seed: first.NextSeed, Programs: 23, Matrix: matrix, Mutation: MutNoInvalidate})
	if err != nil {
		t.Fatal(err)
	}
	var a, b []int64
	for _, f := range whole.Findings {
		a = append(a, f.Seed)
	}
	for _, f := range append(first.Findings, rest.Findings...) {
		b = append(b, f.Seed)
	}
	if len(a) != len(b) {
		t.Fatalf("split campaign found %d findings, whole found %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("finding %d: seed %d vs %d", i, a[i], b[i])
		}
	}
}
