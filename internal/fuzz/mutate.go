package fuzz

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stale"
)

// Mutation is a deliberate sabotage of a compiled program, applied after
// compilation and before execution. Mutations exist to prove the campaign's
// referees are not vacuous: with a safety mechanism knocked out, the
// campaign must flag a finding within a bounded number of programs. A
// mutated finding is an expected-positive test artifact, never a bug.
type Mutation int

const (
	// MutNone runs the compiled program exactly as produced.
	MutNone Mutation = iota
	// MutNoInvalidate empties every epoch-boundary invalidation set of a
	// CCDP compilation. Invalidation is the scheme's sole safety mechanism
	// (prefetch and bypass marks are performance-only), so fault-free CCDP
	// runs must then consume stale cached lines and trip the coherence
	// oracle.
	MutNoInvalidate
	// MutNoSchedMarks clears the Stale/Bypass/Prefetched flags the
	// scheduler set on every reference, without touching statements (RefIDs
	// stay stable). The compiled-program invariant referee must then report
	// the disagreement between the program's flags and the stale analysis.
	MutNoSchedMarks
	// MutNoDirInvalidate makes the hardware directory book its
	// invalidation messages without ever dropping the sharers' copies —
	// the protocol's sole safety action silently stops working. Hardware
	// mode runs must then consume stale cached lines and trip the
	// coherence oracle, proving the oracle also guards the arena's
	// directory modes. A no-op outside the hardware modes.
	MutNoDirInvalidate
	// MutNoRollback disables the optimistic PDES scheme's rollback: a PE
	// whose speculative link timings mispredict keeps them anyway, so its
	// cycle counts silently drift from the canonical PE-major booking
	// order while the computed arrays stay correct. The canonical-timing
	// referee (a SerialTorus rerun compared cycle for cycle) must flag the
	// drift. A no-op off the torus, below 2 PEs, and on a single-threaded
	// scheduler, where speculation never engages.
	MutNoRollback
	// MutNoDomainDemotion models a domain-aware compiler that trusts the
	// coherence domains too far: on a machine with multi-PE domains it
	// empties every software (cross-domain) invalidation set of a CCDP
	// compilation while leaving the hardware intra-domain sets intact — as
	// if the analysis had demoted every stale reference to
	// hardware-coherent, not just the intra-domain ones. The free
	// epoch-entry hardware invalidation cannot cover writers in other
	// domains, so fault-free CCDP runs on a domained profile must consume
	// stale cached lines and trip the coherence oracle — proving the
	// cross/intra split of the analysis is load-bearing, not decorative. A
	// no-op on machines without multi-PE domains (t3d, pim).
	MutNoDomainDemotion
)

func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutNoInvalidate:
		return "no-invalidate"
	case MutNoSchedMarks:
		return "no-sched-marks"
	case MutNoDirInvalidate:
		return "no-dir-invalidate"
	case MutNoRollback:
		return "no-rollback"
	case MutNoDomainDemotion:
		return "no-domain-demotion-check"
	default:
		return fmt.Sprintf("Mutation(%d)", int(m))
	}
}

// ParseMutation reads a Mutation in String form.
func ParseMutation(s string) (Mutation, error) {
	for _, m := range []Mutation{MutNone, MutNoInvalidate, MutNoSchedMarks, MutNoDirInvalidate, MutNoRollback, MutNoDomainDemotion} {
		if s == m.String() {
			return m, nil
		}
	}
	return MutNone, fmt.Errorf("fuzz: unknown mutation %q (want none, no-invalidate, no-sched-marks, no-dir-invalidate, no-rollback or no-domain-demotion-check)", s)
}

// Sabotage applies m to a compiled program in place. It is a no-op for
// MutNone and for compilations the mutation does not apply to (the CCDP
// mutations target the compiler's analysis artifacts, absent in other
// modes; the directory mutation targets the hardware modes only).
func Sabotage(c *core.Compiled, m Mutation) {
	switch m {
	case MutNoInvalidate:
		if c.Stale == nil {
			return
		}
		for n := range c.Stale.Invalidate {
			for p := range c.Stale.Invalidate[n] {
				c.Stale.Invalidate[n][p] = stale.ArraySections{}
			}
		}
	case MutNoSchedMarks:
		if c.Sched == nil {
			return
		}
		for _, r := range c.Prog.Refs() {
			r.Stale = false
			r.Bypass = false
			r.Prefetched = false
		}
	case MutNoDirInvalidate:
		if !c.Mode.IsHW() {
			return
		}
		c.Machine.DirDropInvalidations = true
	case MutNoRollback:
		c.Machine.PDESNoRollback = true
	case MutNoDomainDemotion:
		if c.Stale == nil || c.Machine.DomainSize <= 1 {
			return
		}
		for n := range c.Stale.Invalidate {
			for p := range c.Stale.Invalidate[n] {
				c.Stale.Invalidate[n][p] = stale.ArraySections{}
			}
		}
	}
}
