package stats

import (
	"strings"
	"testing"
)

func TestMergeAddsAllCounters(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, RemoteReads: 3, PrefetchIssued: 4,
		StaleValueReads: 5, VectorWords: 6, RegisterHits: 7, FlopCycles: 8,
		LocalReads: 9, LocalWrites: 10, RemoteWrites: 11, BypassReads: 12,
		NonCachedRefs: 13, PrefetchDropped: 14, PrefetchConsumed: 15,
		PrefetchLate: 16, PrefetchUnused: 17, VectorPrefetches: 18,
		InvalidatedLines: 19}
	b := a
	a.Merge(&b)
	if a.Hits != 2 || a.Misses != 4 || a.RemoteReads != 6 || a.PrefetchIssued != 8 ||
		a.StaleValueReads != 10 || a.VectorWords != 12 || a.RegisterHits != 14 ||
		a.FlopCycles != 16 || a.LocalReads != 18 || a.LocalWrites != 20 ||
		a.RemoteWrites != 22 || a.BypassReads != 24 || a.NonCachedRefs != 26 ||
		a.PrefetchDropped != 28 || a.PrefetchConsumed != 30 || a.PrefetchLate != 32 ||
		a.PrefetchUnused != 34 || a.VectorPrefetches != 36 || a.InvalidatedLines != 38 {
		t.Errorf("Merge did not double all counters: %+v", a)
	}
}

func TestStringMentionsKeyCounters(t *testing.T) {
	s := Stats{Cycles: 42, Hits: 7, StaleValueReads: 1, VectorWords: 99}
	out := s.String()
	for _, want := range []string{"cycles=42", "hits=7", "stale-value-reads=1", "99 words"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
