// Package stats accumulates the execution metrics of one simulated run.
package stats

import (
	"fmt"
	"strings"
)

// Stats collects counters for one run. Per-PE instances are merged at
// epoch barriers, so individual fields need no synchronization.
type Stats struct {
	Cycles   int64 // program cycles: sum over epochs of the slowest PE
	Epochs   int64
	Barriers int64

	RegisterHits  int64 // redundant loads eliminated by register reuse
	Hits          int64 // cache hits
	Misses        int64 // cache misses filled from local memory
	LocalReads    int64 // non-cached local reads (BASE / bypass)
	RemoteReads   int64 // direct remote single-word reads
	LocalWrites   int64
	RemoteWrites  int64
	BypassReads   int64 // bypass-cache fetches (local or remote)
	NonCachedRefs int64 // BASE CRAFT shared accesses

	PrefetchIssued   int64 // single-word prefetches issued
	PrefetchDropped  int64 // dropped on full queue
	PrefetchConsumed int64 // extracted by a read
	PrefetchLate     int64 // extracted before arrival (stalled)
	PrefetchUnused   int64 // flushed at an epoch boundary
	VectorPrefetches int64
	VectorWords      int64

	InvalidatedLines int64
	StaleValueReads  int64 // coherence violations observed (must be 0)

	// Fault-injection accounting (internal/fault). All zero in a
	// fault-free run except Demotions, which also counts natural
	// queue-overflow fallbacks.
	Demotions        int64 // prefetched refs demoted to a bypass fetch (§3.2)
	OracleViolations int64 // stale consumptions flagged by the safety oracle
	FaultDrops       int64 // injected prefetch drops
	FaultLate        int64 // injected late prefetch arrivals
	FaultSpikes      int64 // injected remote-latency spikes
	FaultEvictions   int64 // injected forced cache evictions
	FaultSkews       int64 // injected per-epoch clock skews

	// Interconnect accounting (internal/noc). All zero under the flat
	// topology. NetDrops counts prefetches the congested network timed out
	// (each one demotes its consuming read, §3.2) — contention-induced
	// demotions, distinct from the fault-injected FaultDrops above.
	NetMessages   int64 // messages routed over the torus
	NetWaitCycles int64 // total cycles messages queued on busy links
	NetContended  int64 // messages that waited at least one cycle
	NetDrops      int64 // prefetches dropped by congestion timeout

	// Coherence-domain accounting (machine profiles with multi-PE domains
	// or a batched coherence cost). All zero on the t3d profile, so its
	// reports never change shape. Near words moved between endpoints
	// sharing a hardware-coherent domain; far words crossed a domain
	// boundary; hw-invalidations counts cached lines the modeled domain
	// fabric dropped at epoch entry (free, unlike InvalidatedLines).
	DomainNearWords       int64
	DomainFarWords        int64
	DomainHWInvalidations int64

	// Hardware coherence arena accounting (internal/coherence). All zero
	// outside the HWDIR modes — in particular CCDP runs book zero coherence
	// messages, the arena's headline comparison. CohMessages counts every
	// protocol message (invalidations, acks, upgrades, grants, recalls,
	// writebacks); on the torus each is also a NetMessage, so the data
	// traffic is NetMessages - CohMessages.
	CohMessages   int64 // all coherence-protocol messages
	CohInvSent    int64 // invalidations the directory sent
	CohInvRecv    int64 // invalidations that actually dropped a cached copy
	CohWritebacks int64 // dirty-line writebacks (evictions and recalls)
	CohBroadcasts int64 // limited-pointer overflow broadcasts
	DirEvictions  int64 // sparse-directory entry evictions
	// DirStorageBits is the directory's storage cost in bits — a property
	// of the configuration, set once per run, never merged.
	DirStorageBits int64
	HWPrefIssued   int64 // runtime-prefetcher fills issued
	HWPrefUseful   int64 // demand hits on runtime-prefetched lines

	FlopCycles int64
}

// Merge adds other into s.
func (s *Stats) Merge(o *Stats) {
	s.RegisterHits += o.RegisterHits
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.LocalReads += o.LocalReads
	s.RemoteReads += o.RemoteReads
	s.LocalWrites += o.LocalWrites
	s.RemoteWrites += o.RemoteWrites
	s.BypassReads += o.BypassReads
	s.NonCachedRefs += o.NonCachedRefs
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchDropped += o.PrefetchDropped
	s.PrefetchConsumed += o.PrefetchConsumed
	s.PrefetchLate += o.PrefetchLate
	s.PrefetchUnused += o.PrefetchUnused
	s.VectorPrefetches += o.VectorPrefetches
	s.VectorWords += o.VectorWords
	s.InvalidatedLines += o.InvalidatedLines
	s.StaleValueReads += o.StaleValueReads
	s.Demotions += o.Demotions
	s.OracleViolations += o.OracleViolations
	s.FaultDrops += o.FaultDrops
	s.FaultLate += o.FaultLate
	s.FaultSpikes += o.FaultSpikes
	s.FaultEvictions += o.FaultEvictions
	s.FaultSkews += o.FaultSkews
	s.NetMessages += o.NetMessages
	s.NetWaitCycles += o.NetWaitCycles
	s.NetContended += o.NetContended
	s.NetDrops += o.NetDrops
	s.DomainNearWords += o.DomainNearWords
	s.DomainFarWords += o.DomainFarWords
	s.DomainHWInvalidations += o.DomainHWInvalidations
	s.CohMessages += o.CohMessages
	s.CohInvSent += o.CohInvSent
	s.CohInvRecv += o.CohInvRecv
	s.CohWritebacks += o.CohWritebacks
	s.CohBroadcasts += o.CohBroadcasts
	s.DirEvictions += o.DirEvictions
	// DirStorageBits is configuration, not workload: deliberately not merged.
	s.HWPrefIssued += o.HWPrefIssued
	s.HWPrefUseful += o.HWPrefUseful
	s.FlopCycles += o.FlopCycles
}

// FaultsInjected is the total number of injected faults of every kind.
func (s *Stats) FaultsInjected() int64 {
	return s.FaultDrops + s.FaultLate + s.FaultSpikes + s.FaultEvictions + s.FaultSkews
}

// String renders a compact multi-line report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d epochs=%d barriers=%d\n", s.Cycles, s.Epochs, s.Barriers)
	fmt.Fprintf(&b, "cache: reg-hits=%d hits=%d misses=%d invalidated=%d stale-value-reads=%d\n",
		s.RegisterHits, s.Hits, s.Misses, s.InvalidatedLines, s.StaleValueReads)
	fmt.Fprintf(&b, "memory: local=%d remote=%d bypass=%d writes(local=%d remote=%d) craft-shared=%d\n",
		s.LocalReads, s.RemoteReads, s.BypassReads, s.LocalWrites, s.RemoteWrites, s.NonCachedRefs)
	fmt.Fprintf(&b, "prefetch: issued=%d consumed=%d late=%d dropped=%d unused=%d vector=%d(%d words)",
		s.PrefetchIssued, s.PrefetchConsumed, s.PrefetchLate, s.PrefetchDropped, s.PrefetchUnused,
		s.VectorPrefetches, s.VectorWords)
	if s.NetMessages > 0 || s.NetDrops > 0 {
		fmt.Fprintf(&b, "\nnetwork: msgs=%d contended=%d wait=%d congestion-drops=%d",
			s.NetMessages, s.NetContended, s.NetWaitCycles, s.NetDrops)
	}
	if s.DomainNearWords > 0 || s.DomainFarWords > 0 || s.DomainHWInvalidations > 0 {
		fmt.Fprintf(&b, "\ndomain: near-words=%d far-words=%d hw-invalidated=%d",
			s.DomainNearWords, s.DomainFarWords, s.DomainHWInvalidations)
	}
	if s.CohMessages > 0 || s.DirStorageBits > 0 {
		fmt.Fprintf(&b, "\ncoherence: msgs=%d inv-sent=%d inv-recv=%d writebacks=%d broadcasts=%d dir-evictions=%d dir-bits=%d",
			s.CohMessages, s.CohInvSent, s.CohInvRecv, s.CohWritebacks,
			s.CohBroadcasts, s.DirEvictions, s.DirStorageBits)
		if s.HWPrefIssued > 0 {
			fmt.Fprintf(&b, "\nhw-prefetch: issued=%d useful=%d", s.HWPrefIssued, s.HWPrefUseful)
		}
	}
	if s.FaultsInjected() > 0 || s.Demotions > 0 || s.OracleViolations > 0 {
		fmt.Fprintf(&b, "\nfault: drops=%d late=%d spikes=%d evictions=%d skews=%d demotions=%d oracle-violations=%d",
			s.FaultDrops, s.FaultLate, s.FaultSpikes, s.FaultEvictions, s.FaultSkews,
			s.Demotions, s.OracleViolations)
	}
	return b.String()
}
