// Package target implements the prefetch target analysis of paper §4.2
// (Figure 1): given the set of potentially-stale read references the stale
// reference analysis produced, select the subset prefetches are actually
// scheduled for.
//
// The analysis walks the program's inner loops and serial code segments
// (the same region decomposition the scheduler uses) and, per region,
// partitions the candidate references into group-spatial classes
// (uniformly generated references whose constant address offsets fall
// within one cache line — internal/locality). Only the *leading* reference
// of each class becomes a prefetch target: its prefetch brings the cache
// line that serves the whole group, so prefetching the other members would
// only waste queue slots and bandwidth. Non-leading members are dropped
// and recorded as covered by their leader; scalar candidates are dropped
// outright (scalars are kept coherent by the epoch-boundary broadcast, and
// have no array address to prefetch). References the front end cannot
// express affinely never reach this analysis — the IR's subscripts are
// affine by construction — so the paper's "conservatively keep non-affine
// references" rule is vacuous here.
package target

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/locality"
)

// Drop is the reason a candidate was not selected as a prefetch target.
// Drop values carry no reference IDs, so the core pipeline's
// post-scheduling ID remap can copy them untouched.
type Drop int

const (
	// DropCovered marks a non-leading member of a group-spatial class:
	// the class leader's prefetch brings the line that serves it.
	DropCovered Drop = iota
	// DropScalar marks a scalar candidate: no array address to prefetch.
	DropScalar
)

func (d Drop) String() string {
	switch d {
	case DropCovered:
		return "covered by group-spatial leader"
	case DropScalar:
		return "scalar reference"
	default:
		return fmt.Sprintf("Drop(%d)", int(d))
	}
}

// Result is the output of the prefetch target analysis.
type Result struct {
	// Targets marks the references the scheduler will try to cover with
	// prefetches.
	Targets map[ir.RefID]bool
	// Dropped records every candidate that did not become a target, with
	// the reason.
	Dropped map[ir.RefID]Drop
	// CoveredBy maps each group-spatial-dropped candidate to the leader
	// whose prefetch covers it.
	CoveredBy map[ir.RefID]ir.RefID
	// RegionOf is the inner loop or serial code segment each target sits
	// in (the unit the scheduler dispatches on).
	RegionOf map[ir.RefID]*ir.Region
}

// Analyze runs the Figure 1 algorithm over the program. candidates is the
// RefID set produced by the stale reference analysis (possibly widened by
// the §6 non-stale extension); lineWords is the cache line size in words.
// The program is not mutated.
func Analyze(prog *ir.Program, candidates map[ir.RefID]bool, lineWords int64) *Result {
	if lineWords <= 0 {
		lineWords = 1
	}
	res := &Result{
		Targets:   map[ir.RefID]bool{},
		Dropped:   map[ir.RefID]Drop{},
		CoveredBy: map[ir.RefID]ir.RefID{},
		RegionOf:  map[ir.RefID]*ir.Region{},
	}
	for _, reg := range ir.Regions(prog) {
		var cand []*ir.Ref
		seen := map[ir.RefID]bool{}
		reads, _ := reg.RefsIn()
		for _, r := range reads {
			if !candidates[r.ID] || seen[r.ID] {
				continue
			}
			seen[r.ID] = true
			if r.IsScalar() {
				res.Dropped[r.ID] = DropScalar
				continue
			}
			cand = append(cand, r)
		}
		if len(cand) == 0 {
			continue
		}
		sort.Slice(cand, func(i, j int) bool { return cand[i].ID < cand[j].ID })
		innerVar := ""
		if reg.IsLoop() {
			innerVar = reg.Loop.Var
		}
		for _, g := range locality.GroupSpatial(cand, innerVar, lineWords) {
			res.Targets[g.Leader.ID] = true
			res.RegionOf[g.Leader.ID] = reg
			for _, m := range g.Members {
				if m.ID == g.Leader.ID {
					continue
				}
				res.Dropped[m.ID] = DropCovered
				res.CoveredBy[m.ID] = g.Leader.ID
			}
		}
	}
	return res
}

// RegionLabel renders a short human-readable region description (shared
// with the pass-pipeline snapshots and provenance records).
func RegionLabel(reg *ir.Region) string {
	if reg == nil {
		return "?"
	}
	if reg.IsLoop() {
		kind := "serial"
		if reg.Loop.Parallel {
			kind = "DOALL"
		}
		return fmt.Sprintf("%s inner loop %s in %s", kind, reg.Loop.Var, reg.Routine)
	}
	return fmt.Sprintf("serial segment in %s", reg.Routine)
}

// Report renders the analysis for the ccdpc driver.
func (r *Result) Report(prog *ir.Program) string {
	var b strings.Builder
	covered := 0
	for _, d := range r.Dropped {
		if d == DropCovered {
			covered++
		}
	}
	fmt.Fprintf(&b, "prefetch target analysis: %d targets, %d dropped (%d covered by group-spatial leaders)\n",
		len(r.Targets), len(r.Dropped), covered)

	ids := make([]ir.RefID, 0, len(r.Targets))
	for id := range r.Targets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "  target %s (%s)\n", prog.Ref(id), RegionLabel(r.RegionOf[id]))
	}

	ids = ids[:0]
	for id := range r.Dropped {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "  drop %s: %s", prog.Ref(id), r.Dropped[id])
		if leader, ok := r.CoveredBy[id]; ok {
			fmt.Fprintf(&b, " %s", prog.Ref(leader))
		}
		b.WriteString("\n")
	}
	return b.String()
}
