package target_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stale"
	"repro/internal/target"
)

// analyze builds a program, runs stale analysis for numPE PEs, and feeds the
// stale read set through the prefetch target analysis.
func analyze(t *testing.T, numPE int, build func(b *ir.Builder)) (*ir.Program, *target.Result) {
	t.Helper()
	b := ir.NewBuilder("t")
	build(b)
	p := b.Build()
	mp := machine.T3D(numPE)
	mem.Layout(p, mp.LineWords)
	sres, err := stale.Analyze(p, numPE)
	if err != nil {
		t.Fatal(err)
	}
	return p, target.Analyze(p, sres.StaleReads, mp.LineWords)
}

func refID(t *testing.T, p *ir.Program, needle string) ir.RefID {
	t.Helper()
	for _, r := range p.Refs() {
		if strings.Contains(r.String(), needle) {
			return r.ID
		}
	}
	t.Fatalf("no ref matching %q", needle)
	return 0
}

// Adjacent stale reads in one inner loop collapse to a single group-spatial
// leader; the trailing member is dropped and points back at the leader.
func TestGroupSpatialLeaderSelected(t *testing.T) {
	p, tres := analyze(t, 4, func(b *ir.Builder) {
		a := b.SharedArray("A", 512)
		c := b.SharedArray("C", 512)
		b.Routine("main",
			ir.DoSerial("i0", ir.K(0), ir.K(511),
				ir.Set(ir.At(a, ir.I("i0")), ir.N(1))),
			ir.DoAll("j", ir.K(0), ir.K(510),
				ir.Set(ir.At(c, ir.I("j")),
					ir.Add(ir.L(ir.At(a, ir.I("j"))),
						ir.L(ir.At(a, ir.I("j").AddConst(1)))))),
		)
	})
	lead := refID(t, p, "A(j + 1)")
	tail := refID(t, p, "A(j)")
	if !tres.Targets[lead] {
		t.Errorf("leader A(j + 1) not a target; targets=%v", tres.Targets)
	}
	if tres.Targets[tail] {
		t.Error("covered member A(j) should not be a target")
	}
	if d, ok := tres.Dropped[tail]; !ok || d != target.DropCovered {
		t.Errorf("A(j) drop = %v, %v; want DropCovered", d, ok)
	}
	if tres.CoveredBy[tail] != lead {
		t.Errorf("CoveredBy[A(j)] = %v, want leader %v", tres.CoveredBy[tail], lead)
	}
	if reg := tres.RegionOf[lead]; reg == nil || !reg.IsLoop() || reg.Loop.Var != "j" {
		t.Errorf("RegionOf[leader] = %+v, want the j loop region", reg)
	}
}

// Refs a full line apart have no spatial reuse: both stay targets.
func TestDistantRefsBothTargets(t *testing.T) {
	p, tres := analyze(t, 4, func(b *ir.Builder) {
		a := b.SharedArray("A", 512)
		c := b.SharedArray("C", 512)
		b.Routine("main",
			ir.DoSerial("i0", ir.K(0), ir.K(511),
				ir.Set(ir.At(a, ir.I("i0")), ir.N(1))),
			ir.DoAll("j", ir.K(0), ir.K(255),
				ir.Set(ir.At(c, ir.I("j")),
					ir.Add(ir.L(ir.At(a, ir.I("j"))),
						ir.L(ir.At(a, ir.I("j").AddConst(256)))))),
		)
	})
	for _, needle := range []string{"A(j)", "A(j + 256)"} {
		if !tres.Targets[refID(t, p, needle)] {
			t.Errorf("%s should be its own target", needle)
		}
	}
}

// Scalar candidates (possible if a future analysis widens the candidate
// set) are dropped with DropScalar, never targeted.
func TestScalarCandidateDropped(t *testing.T) {
	b := ir.NewBuilder("t")
	c := b.SharedArray("C", 64)
	b.Routine("main",
		ir.DoSerial("z", ir.K(0), ir.K(0), ir.Set(ir.S("s1"), ir.N(3))),
		ir.DoAll("j", ir.K(0), ir.K(63),
			ir.Set(ir.At(c, ir.I("j")), ir.L(ir.S("s1")))),
	)
	p := b.Build()
	mp := machine.T3D(4)
	mem.Layout(p, mp.LineWords)

	cands := map[ir.RefID]bool{}
	for _, r := range p.Refs() {
		if r.IsScalar() && r.Scalar == "s1" {
			cands[r.ID] = true
		}
	}
	if len(cands) == 0 {
		t.Fatal("no scalar refs found")
	}
	tres := target.Analyze(p, cands, mp.LineWords)
	if len(tres.Targets) != 0 {
		t.Errorf("scalar s1 must not be a prefetch target; targets=%v", tres.Targets)
	}
	sawScalarDrop := false
	for id, d := range tres.Dropped {
		if !cands[id] || d != target.DropScalar {
			t.Errorf("drop %v=%v; want DropScalar on a candidate", id, d)
		}
		sawScalarDrop = true
	}
	if !sawScalarDrop {
		t.Error("scalar read candidate was not recorded as dropped")
	}
}

// Report is deterministic and carries the header the drivers grep for.
func TestReportDeterministic(t *testing.T) {
	p, tres := analyze(t, 4, func(b *ir.Builder) {
		a := b.SharedArray("A", 512)
		c := b.SharedArray("C", 512)
		b.Routine("main",
			ir.DoSerial("i0", ir.K(0), ir.K(511),
				ir.Set(ir.At(a, ir.I("i0")), ir.N(1))),
			ir.DoAll("j", ir.K(0), ir.K(510),
				ir.Set(ir.At(c, ir.I("j")),
					ir.Add(ir.L(ir.At(a, ir.I("j"))),
						ir.L(ir.At(a, ir.I("j").AddConst(1)))))),
		)
	})
	first := tres.Report(p)
	if !strings.Contains(first, "prefetch target analysis") {
		t.Fatalf("report missing header:\n%s", first)
	}
	for i := 0; i < 10; i++ {
		if got := tres.Report(p); got != first {
			t.Fatalf("report not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
}
