package workloads

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/machine"
)

func runMode(t *testing.T, s *Spec, mode core.Mode, numPE int, opts exec.Options) *exec.Result {
	t.Helper()
	c, err := core.Compile(s.Prog, mode, machine.T3D(numPE))
	if err != nil {
		t.Fatalf("%s %v compile: %v", s.Name, mode, err)
	}
	res, err := exec.Run(c, opts)
	if err != nil {
		t.Fatalf("%s %v run: %v", s.Name, mode, err)
	}
	return res
}

func checkAgainst(t *testing.T, s *Spec, ref, got *exec.Result, label string) {
	t.Helper()
	for _, name := range s.CheckArrays {
		arr := s.Prog.ArrayByName(name)
		a := ref.Mem.ArrayData(arr)
		b := got.Mem.ArrayData(arr)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("%s %s: array %s differs at %d: %v vs %v", s.Name, label, name, k, a[k], b[k])
			}
		}
	}
}

func checkGolden(t *testing.T, s *Spec, res *exec.Result) {
	t.Helper()
	if s.Golden == nil {
		return
	}
	want := s.Golden()
	for name, w := range want {
		arr := s.Prog.ArrayByName(name)
		got := res.Mem.ArrayData(arr)
		for k := range w {
			if got[k] != w[k] {
				t.Fatalf("%s: golden mismatch in %s at %d: got %v want %v", s.Name, name, k, got[k], w[k])
			}
		}
	}
}

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	for _, s := range Small() {
		if err := ir.Validate(s.Prog); err != nil {
			t.Errorf("%s invalid: %v", s.Name, err)
		}
	}
	for _, s := range Paper() {
		if err := ir.Validate(s.Prog); err != nil {
			t.Errorf("%s (paper size) invalid: %v", s.Name, err)
		}
	}
}

// The cornerstone correctness test: for every workload, SEQ, BASE and CCDP
// produce bit-identical results, with zero stale-value reads, at several PE
// counts, with the epoch-model race checker on.
func TestAllModesAgreeOnAllWorkloads(t *testing.T) {
	for _, s := range Small() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			seq := runMode(t, s, core.ModeSeq, 1, exec.Options{FailOnStale: true})
			checkGolden(t, s, seq)
			for _, p := range []int{2, 4, 7} {
				opts := exec.Options{FailOnStale: true, DetectRaces: true}
				base := runMode(t, s, core.ModeBase, p, opts)
				checkAgainst(t, s, seq, base, "BASE")
				ccdp := runMode(t, s, core.ModeCCDP, p, opts)
				checkAgainst(t, s, seq, ccdp, "CCDP")
				if ccdp.Stats.StaleValueReads != 0 {
					t.Errorf("P=%d: CCDP stale reads = %d", p, ccdp.Stats.StaleValueReads)
				}
			}
		})
	}
}

// TOMCATV under incoherent caching must observe stale values —
// demonstrating both the problem and that the checker sees it. (MXM's A is
// read-only after initialization so naive caching happens to be safe there,
// and SWIM's small test-scale working set is evicted between time steps;
// the generic cross-PE demonstration lives in the exec package's stencil
// test.)
func TestIncoherentCachingBreaksTOMCATV(t *testing.T) {
	var s *Spec
	for _, c := range Small() {
		if c.Name == "TOMCATV" {
			s = c
		}
	}
	inc := runMode(t, s, core.ModeIncoherent, 4, exec.Options{})
	if inc.Stats.StaleValueReads == 0 {
		t.Error("TOMCATV: incoherent caching produced no stale reads")
	}
}

// VPENTA accesses only local data: CCDP flags nothing stale.
func TestVPENTAHasNoStaleReferences(t *testing.T) {
	s := VPENTA(32, 2)
	c, err := core.Compile(s.Prog, core.ModeCCDP, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Stale.StaleReads) != 0 {
		refs := []string{}
		for id := range c.Stale.StaleReads {
			refs = append(refs, c.Prog.Ref(id).String())
		}
		t.Errorf("VPENTA stale refs: %v", refs)
	}
}

// MXM's four A references must become vector prefetches hoisted into the
// DOALL prologue (the paper's signature optimization for MXM).
func TestMXMSchedulesVectorPrefetchesForA(t *testing.T) {
	s := MXM(64, 16, 16)
	c, err := core.Compile(s.Prog, core.ModeCCDP, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	vpg := 0
	for _, d := range c.Sched.Decisions {
		if d.Ref.Array.Name == "A" && d.Technique.String() == "VPG" {
			vpg++
			if !d.Hoisted {
				t.Errorf("A vector prefetch not hoisted: %+v", d)
			}
		}
	}
	if vpg != 4 {
		t.Errorf("got %d VPG decisions for A, want 4 (unrolled refs)", vpg)
	}
}

// TOMCATV's forward/backward sweeps (parallel-inner, serial-outer) must
// flag the cross-distribution reads stale.
func TestTOMCATVSweepReadsAreStale(t *testing.T) {
	s := TOMCATV(33, 2)
	c, err := core.Compile(s.Prog, core.ModeCCDP, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	staleArrays := map[string]bool{}
	for id := range c.Stale.StaleReads {
		staleArrays[c.Prog.Ref(id).Array.Name] = true
	}
	for _, want := range []string{"X", "AA", "DD", "RX", "RY"} {
		if !staleArrays[want] {
			t.Errorf("expected stale reads of %s, stale set: %v", want, staleArrays)
		}
	}
}

// SWIM halo reads are a small fraction of references: CCDP should flag
// some (halo columns, periodic copies) but far from all reads.
func TestSWIMStaleFractionIsSmall(t *testing.T) {
	s := SWIM(33, 2)
	c, err := core.Compile(s.Prog, core.ModeCCDP, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	ir.WalkRefs(c.Prog.MainRoutine().Body, func(r *ir.Ref, w bool) {})
	for _, rt := range []string{"calc1", "calc2", "calc3"} {
		ir.WalkRefs(c.Prog.Routine(rt).Body, func(r *ir.Ref, w bool) {
			if !w && !r.IsScalar() {
				reads++
			}
		})
	}
	nStale := len(c.Stale.StaleReads)
	if nStale == 0 {
		t.Fatal("SWIM has no stale reads — halo/periodic traffic missed")
	}
	if nStale*2 > reads {
		t.Errorf("SWIM stale fraction too large: %d of %d reads", nStale, reads)
	}
}

// Values must stay finite (no blow-up) over the iteration counts used.
func TestWorkloadValuesStayFinite(t *testing.T) {
	for _, s := range Small() {
		seq := runMode(t, s, core.ModeSeq, 1, exec.Options{})
		for _, name := range s.CheckArrays {
			data := seq.Mem.ArrayData(s.Prog.ArrayByName(name))
			for k, v := range data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: %s[%d] = %v", s.Name, name, k, v)
				}
			}
		}
	}
}

// The paper's §6 extension — prefetching non-stale remote references too —
// must stay coherent and reduce residual direct remote reads on TOMCATV.
func TestNonStalePrefetchExtension(t *testing.T) {
	s := TOMCATV(65, 2)
	mp := machine.T3D(8)
	std := runMode(t, s, core.ModeCCDP, 8, exec.Options{FailOnStale: true})

	mp.PrefetchNonStale = true
	c, err := core.Compile(s.Prog, core.ModeCCDP, mp)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := exec.Run(c, exec.Options{FailOnStale: true})
	if err != nil {
		t.Fatal(err)
	}
	seq := runMode(t, s, core.ModeSeq, 1, exec.Options{})
	checkAgainst(t, s, seq, ext, "CCDP+nonstale")
	if ext.Stats.RemoteReads > std.Stats.RemoteReads {
		t.Errorf("extension increased residual remote reads: %d vs %d",
			ext.Stats.RemoteReads, std.Stats.RemoteReads)
	}
}
