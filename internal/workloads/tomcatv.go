package workloads

import (
	"fmt"

	"repro/internal/ir"
)

// TOMCATV is the SPEC CFP95 vectorized mesh generator: per time step, a
// residual/coefficient computation over (i,j) with a parallel outer j loop
// (the paper's loop 60), a forward-elimination sweep and a back-substitution
// sweep that are serial in j with a parallel inner i loop (loops 100 and
// 120), and a correction epoch. With the 7 matrices distributed by columns
// (j), loops 100/120 make every PE read and write data owned by other PEs
// — the paper's explanation for BASE TOMCATV performing poorly and CCDP
// gaining 44.8–68.5%.
func TOMCATV(n, iters int64) *Spec {
	b := ir.NewBuilder(fmt.Sprintf("tomcatv-%d", n))
	X := b.SharedArray("X", n, n)
	Y := b.SharedArray("Y", n, n)
	RX := b.SharedArray("RX", n, n)
	RY := b.SharedArray("RY", n, n)
	AA := b.SharedArray("AA", n, n)
	DD := b.SharedArray("DD", n, n)
	D := b.SharedArray("D", n, n)

	i, j := ir.I("i"), ir.I("j")
	at := func(a *ir.Array, di, dj int64) *ir.Ref {
		return ir.At(a, i.AddConst(di), j.AddConst(dj))
	}
	q := func(s string) ir.Expr { return ir.L(ir.S(s)) }

	// loop 60 body: neighbor differences of X and Y, coefficients and
	// residuals.
	loop60 := ir.DoAll("j", ir.K(1), ir.K(n-2),
		ir.DoSerial("i", ir.K(1), ir.K(n-2),
			ir.Set(ir.S("s1"), ir.Sub(ir.L(at(X, 1, 0)), ir.L(at(X, -1, 0)))),
			ir.Set(ir.S("s2"), ir.Sub(ir.L(at(X, 0, 1)), ir.L(at(X, 0, -1)))),
			ir.Set(ir.S("s3"), ir.Sub(ir.L(at(Y, 1, 0)), ir.L(at(Y, -1, 0)))),
			ir.Set(ir.S("s4"), ir.Sub(ir.L(at(Y, 0, 1)), ir.L(at(Y, 0, -1)))),
			ir.Set(at(AA, 0, 0),
				ir.Neg(ir.Mul(ir.N(0.25), ir.Add(ir.Mul(q("s2"), q("s2")), ir.Mul(q("s4"), q("s4")))))),
			ir.Set(at(DD, 0, 0),
				ir.Add(ir.N(2),
					ir.Add(ir.Mul(ir.N(0.25), ir.Add(ir.Mul(q("s1"), q("s1")), ir.Mul(q("s3"), q("s3")))),
						ir.Mul(ir.N(0.25), ir.Add(ir.Mul(q("s2"), q("s2")), ir.Mul(q("s4"), q("s4"))))))),
			ir.Set(at(RX, 0, 0),
				ir.Sub(ir.Mul(ir.N(0.25),
					ir.Add(ir.Add(ir.L(at(X, -1, 0)), ir.L(at(X, 1, 0))),
						ir.Add(ir.L(at(X, 0, -1)), ir.L(at(X, 0, 1))))),
					ir.L(at(X, 0, 0)))),
			ir.Set(at(RY, 0, 0),
				ir.Sub(ir.Mul(ir.N(0.25),
					ir.Add(ir.Add(ir.L(at(Y, -1, 0)), ir.L(at(Y, 1, 0))),
						ir.Add(ir.L(at(Y, 0, -1)), ir.L(at(Y, 0, 1))))),
					ir.L(at(Y, 0, 0)))),
		))

	prog := buildTomcatv(b, n, iters, X, Y, RX, RY, AA, DD, D, loop60)
	alignLoops(prog, n)
	return &Spec{
		Name:        "TOMCATV",
		Prog:        prog,
		CheckArrays: []string{"X", "Y"},
		Description: fmt.Sprintf("SPEC CFP95 mesh generation, 7 matrices %d×%d, %d time steps", n, n, iters),
	}
}

// buildTomcatv assembles the remaining epochs (separated for readability).
func buildTomcatv(b *ir.Builder, n, iters int64, X, Y, RX, RY, AA, DD, D *ir.Array, loop60 *ir.Loop) *ir.Program {
	// Forward elimination (loop 100): serial j, parallel i. Row-block
	// scheduling of i crosses the column distribution.
	iv, jv := ir.I("i1"), ir.I("j1")
	a1 := func(a *ir.Array, dj int64) *ir.Ref { return ir.At(a, iv, jv.AddConst(dj)) }
	loop100 := ir.DoSerial("j1", ir.K(2), ir.K(n-2),
		ir.DoAll("i1", ir.K(1), ir.K(n-2),
			ir.Set(ir.S("r"), ir.Mul(ir.L(a1(AA, 0)), ir.L(a1(D, -1)))),
			ir.Set(a1(D, 0),
				ir.Div(ir.N(1), ir.Sub(ir.L(a1(DD, 0)), ir.Mul(ir.L(a1(AA, 0)), ir.L(ir.S("r")))))),
			ir.Set(a1(RX, 0), ir.Sub(ir.L(a1(RX, 0)), ir.Mul(ir.L(ir.S("r")), ir.L(a1(RX, -1))))),
			ir.Set(a1(RY, 0), ir.Sub(ir.L(a1(RY, 0)), ir.Mul(ir.L(ir.S("r")), ir.L(a1(RY, -1))))),
		))

	// Seed epochs for the sweeps.
	ip := ir.I("ip")
	seedFwd := ir.DoAll("ip", ir.K(1), ir.K(n-2),
		ir.Set(ir.At(D, ip, ir.K(1)), ir.Div(ir.N(1), ir.L(ir.At(DD, ip, ir.K(1))))))
	iq := ir.I("iq")
	seedBwd := ir.DoAll("iq", ir.K(1), ir.K(n-2),
		ir.Set(ir.At(RX, iq, ir.K(n-2)),
			ir.Mul(ir.L(ir.At(RX, iq, ir.K(n-2))), ir.L(ir.At(D, iq, ir.K(n-2))))),
		ir.Set(ir.At(RY, iq, ir.K(n-2)),
			ir.Mul(ir.L(ir.At(RY, iq, ir.K(n-2))), ir.L(ir.At(D, iq, ir.K(n-2))))),
	)

	// Back substitution (loop 120): j descending from n-3 to 1, parallel i.
	jb := ir.I("r2").Neg().AddConst(n - 3)
	i2 := ir.I("i2")
	b1 := func(a *ir.Array, dj int64) *ir.Ref { return ir.At(a, i2, jb.AddConst(dj)) }
	loop120 := ir.DoSerial("r2", ir.K(0), ir.K(n-4),
		ir.DoAll("i2", ir.K(1), ir.K(n-2),
			ir.Set(b1(RX, 0),
				ir.Mul(ir.Sub(ir.L(b1(RX, 0)), ir.Mul(ir.L(b1(AA, 0)), ir.L(b1(RX, 1)))), ir.L(b1(D, 0)))),
			ir.Set(b1(RY, 0),
				ir.Mul(ir.Sub(ir.L(b1(RY, 0)), ir.Mul(ir.L(b1(AA, 0)), ir.L(b1(RY, 1)))), ir.L(b1(D, 0)))),
		))

	// Correction epoch: column-parallel again.
	i3, j3 := ir.I("i3"), ir.I("j3")
	correct := ir.DoAll("j3", ir.K(1), ir.K(n-2),
		ir.DoSerial("i3", ir.K(1), ir.K(n-2),
			ir.Set(ir.At(X, i3, j3), ir.Add(ir.L(ir.At(X, i3, j3)), ir.L(ir.At(RX, i3, j3)))),
			ir.Set(ir.At(Y, i3, j3), ir.Add(ir.L(ir.At(Y, i3, j3)), ir.L(ir.At(RY, i3, j3)))),
		))

	// Mesh initialization: smooth nonlinear coordinates.
	ii, jj := ir.I("ii"), ir.I("jj")
	initEpoch := ir.DoAll("jj", ir.K(0), ir.K(n-1),
		ir.DoSerial("ii", ir.K(0), ir.K(n-1),
			// Non-harmonic mesh (i²j and ij² terms) so the residuals are
			// genuinely non-zero and every sweep changes the mesh.
			ir.Set(ir.At(X, ii, jj),
				ir.Add(ir.IV(ii),
					ir.Div(ir.Mul(ir.Mul(ir.IV(ii), ir.IV(ii)), ir.IV(jj)), ir.N(float64(n*n*n))))),
			ir.Set(ir.At(Y, ii, jj),
				ir.Add(ir.IV(jj),
					ir.Div(ir.Mul(ir.Mul(ir.IV(jj), ir.IV(jj)), ir.IV(ii)), ir.N(float64(n*n*n))))),
			ir.Set(ir.At(RX, ii, jj), ir.N(0)),
			ir.Set(ir.At(RY, ii, jj), ir.N(0)),
			ir.Set(ir.At(AA, ii, jj), ir.N(0)),
			ir.Set(ir.At(DD, ii, jj), ir.N(1)),
			ir.Set(ir.At(D, ii, jj), ir.N(1)),
		))

	b.Routine("main",
		initEpoch,
		ir.DoSerial("iter", ir.K(1), ir.K(iters),
			loop60,
			seedFwd,
			loop100,
			seedBwd,
			loop120,
			correct,
		),
	)
	return b.Build()
}
