package workloads

import (
	"fmt"

	"repro/internal/ir"
)

// VPENTA is the NASA7 pentadiagonal-inversion kernel: independent
// pentadiagonal solves along each column, repeated reps times. The paper's
// parallelization distributes the 7 matrices' columns in blocks and
// parallelizes the column loop, so every PE accesses only its own local
// slab (§5.4: "each PE will only access the portion of shared data which is
// stored in its local memory") — the workload where BASE already performs
// well and CCDP's win is caching local data and shedding CRAFT overhead.
func VPENTA(n, reps int64) *Spec {
	b := ir.NewBuilder(fmt.Sprintf("vpenta-%d", n))
	A := b.SharedArray("A", n, n)
	B := b.SharedArray("B", n, n)
	C := b.SharedArray("C", n, n)
	D := b.SharedArray("D", n, n)
	E := b.SharedArray("E", n, n)
	F := b.SharedArray("F", n, n)
	X := b.SharedArray("X", n, n)

	i, j := ir.I("i"), ir.I("j")
	at := func(a *ir.Array, di int64) *ir.Ref { return ir.At(a, i.AddConst(di), j) }

	initStmt := func(a *ir.Array, num ir.Expr, den float64) ir.Stmt {
		return ir.Set(ir.At(a, ir.I("ii"), ir.I("jj")), ir.Div(num, ir.N(den)))
	}
	ii, jj := ir.I("ii"), ir.I("jj")

	// Backward loop: r ascending encodes i = n-3-r descending.
	ib := ir.I("r").Neg().AddConst(n - 3)

	b.Routine("main",
		ir.DoAll("jj", ir.K(0), ir.K(n-1),
			ir.DoSerial("ii", ir.K(0), ir.K(n-1),
				initStmt(A, ir.IV(ii.Sub(jj.Scale(2))), float64(4*n)),
				initStmt(B, ir.IV(jj.Sub(ii)), float64(5*n)),
				initStmt(C, ir.IV(ii.Add(jj)), float64(6*n)),
				ir.Set(ir.At(D, ii, jj), ir.Add(ir.N(4), ir.Div(ir.IV(ii), ir.N(float64(3*n))))),
				ir.Set(ir.At(E, ii, jj), ir.N(0)),
				ir.Set(ir.At(F, ii, jj), ir.N(0)),
				initStmt(X, ir.IV(ii.Add(jj.Scale(2)).AddConst(3)), float64(2*n)),
			)),
		ir.DoSerial("rep", ir.K(1), ir.K(reps),
			// Forward elimination along i, parallel over columns.
			ir.DoAll("j", ir.K(0), ir.K(n-1),
				ir.DoSerial("i", ir.K(2), ir.K(n-1),
					ir.Set(ir.S("s"),
						ir.Sub(ir.Sub(ir.L(at(D, 0)),
							ir.Mul(ir.L(at(A, 0)), ir.L(at(E, -2)))),
							ir.Mul(ir.L(at(B, 0)), ir.L(at(E, -1))))),
					ir.Set(at(E, 0),
						ir.Div(ir.Sub(ir.L(at(C, 0)),
							ir.Mul(ir.L(at(B, 0)), ir.L(at(F, -1)))), ir.L(ir.S("s")))),
					ir.Set(at(F, 0),
						ir.Div(ir.Sub(ir.Sub(ir.L(at(X, 0)),
							ir.Mul(ir.L(at(A, 0)), ir.L(at(F, -2)))),
							ir.Mul(ir.L(at(B, 0)), ir.L(at(F, -1)))), ir.L(ir.S("s")))),
				)),
			// Back substitution, i descending from n-3 to 0.
			ir.DoAll("j2", ir.K(0), ir.K(n-1),
				ir.DoSerial("r", ir.K(0), ir.K(n-3),
					ir.Set(ir.At(X, ib, ir.I("j2")),
						ir.Sub(ir.Sub(ir.L(ir.At(F, ib, ir.I("j2"))),
							ir.Mul(ir.L(ir.At(E, ib, ir.I("j2"))), ir.L(ir.At(X, ib.AddConst(1), ir.I("j2"))))),
							ir.Mul(ir.L(ir.At(A, ib, ir.I("j2"))), ir.L(ir.At(X, ib.AddConst(2), ir.I("j2")))))),
				)),
		),
	)
	prog := b.Build()
	alignLoops(prog, n)

	golden := func() map[string][]float64 {
		idx := func(i, j int64) int64 { return i + j*n }
		av := make([]float64, n*n)
		bv := make([]float64, n*n)
		cv := make([]float64, n*n)
		dv := make([]float64, n*n)
		ev := make([]float64, n*n)
		fv := make([]float64, n*n)
		xv := make([]float64, n*n)
		for j := int64(0); j < n; j++ {
			for i := int64(0); i < n; i++ {
				av[idx(i, j)] = float64(i-2*j) / float64(4*n)
				bv[idx(i, j)] = float64(j-i) / float64(5*n)
				cv[idx(i, j)] = float64(i+j) / float64(6*n)
				dv[idx(i, j)] = 4 + float64(i)/float64(3*n)
				ev[idx(i, j)] = 0
				fv[idx(i, j)] = 0
				xv[idx(i, j)] = float64(i+2*j+3) / float64(2*n)
			}
		}
		for rep := int64(1); rep <= reps; rep++ {
			for j := int64(0); j < n; j++ {
				for i := int64(2); i < n; i++ {
					t1 := av[idx(i, j)] * ev[idx(i-2, j)]
					u1 := dv[idx(i, j)] - t1
					t2 := bv[idx(i, j)] * ev[idx(i-1, j)]
					s := u1 - t2
					t3 := bv[idx(i, j)] * fv[idx(i-1, j)]
					u2 := cv[idx(i, j)] - t3
					ev[idx(i, j)] = u2 / s
					t4 := av[idx(i, j)] * fv[idx(i-2, j)]
					u3 := xv[idx(i, j)] - t4
					t5 := bv[idx(i, j)] * fv[idx(i-1, j)]
					u4 := u3 - t5
					fv[idx(i, j)] = u4 / s
				}
			}
			for j := int64(0); j < n; j++ {
				for r := int64(0); r <= n-3; r++ {
					i := n - 3 - r
					t1 := ev[idx(i, j)] * xv[idx(i+1, j)]
					u1 := fv[idx(i, j)] - t1
					t2 := av[idx(i, j)] * xv[idx(i+2, j)]
					xv[idx(i, j)] = u1 - t2
				}
			}
		}
		return map[string][]float64{"X": xv, "E": ev, "F": fv}
	}

	return &Spec{
		Name:        "VPENTA",
		Prog:        prog,
		CheckArrays: []string{"X", "E", "F"},
		Golden:      golden,
		Description: fmt.Sprintf("NASA7 pentadiagonal inversion, 7 matrices %d×%d, column-parallel", n, n),
	}
}
