// Package workloads defines the paper's four benchmark programs — MXM and
// VPENTA from SPEC CFP92 (NASA7 kernels) and TOMCATV and SWIM from SPEC
// CFP95 — as IR programs with the data distributions and loop schedules the
// paper's CRAFT versions use (§5.3): matrices block-distributed along their
// last (column) dimension, DOALL iterations block-scheduled to match.
//
// Each Spec carries the scaled paper configuration and a small test
// configuration; EXPERIMENTS.md records the scaling. MXM and VPENTA also
// carry hand-written Go golden implementations that mirror the IR statement
// order exactly, validating the execution engine's arithmetic end to end;
// TOMCATV and SWIM are validated by cross-mode equality (SEQ = BASE = CCDP
// bit for bit) plus the coherence checker.
package workloads

import (
	"repro/internal/ir"
)

// Spec describes one benchmark instance.
type Spec struct {
	Name string
	// Prog is the built, laid-out program.
	Prog *ir.Program
	// CheckArrays are the arrays whose final contents define correctness.
	CheckArrays []string
	// Golden, when non-nil, returns the expected contents of each check
	// array, computed by an independent plain-Go implementation.
	Golden func() map[string][]float64
	// Description for reports.
	Description string
}

// Paper returns the four applications at (scaled) paper sizes. The array
// shapes match the paper (MXM 256×128×64, VPENTA 128², TOMCATV 257²,
// SWIM 513²); iteration counts are scaled down from the paper's 100 to
// keep simulated runs tractable — speedups and improvement percentages are
// ratios, and per-iteration behaviour is identical from the second time
// step on (EXPERIMENTS.md quantifies this).
func Paper() []*Spec {
	return []*Spec{
		MXM(256, 128, 64),
		VPENTA(128, 4),
		TOMCATV(257, 5),
		SWIM(513, 5),
	}
}

// Small returns reduced instances for tests.
func Small() []*Spec {
	return []*Spec{
		MXM(32, 16, 8),
		VPENTA(32, 2),
		TOMCATV(33, 2),
		SWIM(33, 2),
	}
}

// ByName builds one workload at paper scale by name, or nil.
func ByName(name string) *Spec {
	for _, s := range Paper() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
