package workloads

import (
	"fmt"

	"repro/internal/ir"
)

// MXM is the NASA7 matrix-multiply kernel: C(N1,N3) = A(N1,N2) · B(N2,N3),
// with the middle (k) loop unrolled by four as in the SPEC source. The
// paper's parallelization (§5.3) distributes the columns of all three
// matrices in blocks and parallelizes the middle (j over N3) loop to match;
// in each iteration of the outermost k0 loop every PE reads 4 columns of A
// that are usually owned by a remote PE — the access the CCDP scheme turns
// into vector prefetches.
func MXM(n1, n2, n3 int64) *Spec {
	if n2%4 != 0 {
		panic("workloads: MXM needs N2 divisible by 4 (unroll factor)")
	}
	b := ir.NewBuilder(fmt.Sprintf("mxm-%dx%dx%d", n1, n2, n3))
	a := b.SharedArray("A", n1, n2)
	bb := b.SharedArray("B", n2, n3)
	c := b.SharedArray("C", n1, n3)

	i, j, k0 := ir.I("i"), ir.I("j"), ir.I("k0")

	term := func(off int64) ir.Expr {
		return ir.Mul(
			ir.L(ir.At(a, i, k0.AddConst(off))),
			ir.L(ir.At(bb, k0.AddConst(off), j)))
	}

	b.Routine("main",
		// Initialization epochs, owner-computes along columns.
		ir.DoAll("ka", ir.K(0), ir.K(n2-1),
			ir.DoSerial("ia", ir.K(0), ir.K(n1-1),
				ir.Set(ir.At(a, ir.I("ia"), ir.I("ka")),
					ir.Div(ir.IV(ir.I("ia").Add(ir.I("ka").Scale(2)).AddConst(1)), ir.N(7))))),
		ir.DoAll("jb", ir.K(0), ir.K(n3-1),
			ir.DoSerial("kb", ir.K(0), ir.K(n2-1),
				ir.Set(ir.At(bb, ir.I("kb"), ir.I("jb")),
					ir.Div(ir.IV(ir.I("kb").Sub(ir.I("jb").Scale(3)).AddConst(2)), ir.N(11))))),
		ir.DoAll("jc", ir.K(0), ir.K(n3-1),
			ir.DoSerial("ic", ir.K(0), ir.K(n1-1),
				ir.Set(ir.At(c, ir.I("ic"), ir.I("jc")), ir.N(0)))),

		// The 4-way unrolled triple loop: serial k0, parallel j, serial i.
		ir.Step(ir.DoSerial("k0", ir.K(0), ir.K(n2-1),
			ir.DoAll("j", ir.K(0), ir.K(n3-1),
				ir.DoSerial("i", ir.K(0), ir.K(n1-1),
					ir.Set(ir.At(c, i, j),
						ir.Add(ir.L(ir.At(c, i, j)),
							ir.Add(ir.Add(term(0), term(1)),
								ir.Add(term(2), term(3)))))))), 4),
	)
	prog := b.Build()
	// MXM's DOALLs run over full column ranges; align A's init with N2 and
	// the rest with N3 so iteration chunks coincide with column ownership.
	for _, rt := range prog.Routines {
		ir.WalkStmts(rt.Body, func(st ir.Stmt) bool {
			if l, ok := st.(*ir.Loop); ok && l.Parallel && l.Sched == ir.SchedStatic {
				if l.Var == "ka" {
					l.AlignExtent = n2
				} else {
					l.AlignExtent = n3
				}
			}
			return true
		})
	}

	golden := func() map[string][]float64 {
		av := make([]float64, n1*n2)
		bv := make([]float64, n2*n3)
		cv := make([]float64, n1*n3)
		for k := int64(0); k < n2; k++ {
			for i := int64(0); i < n1; i++ {
				av[i+k*n1] = float64(i+2*k+1) / 7
			}
		}
		for j := int64(0); j < n3; j++ {
			for k := int64(0); k < n2; k++ {
				bv[k+j*n2] = float64(k-3*j+2) / 11
			}
		}
		for k0 := int64(0); k0 < n2; k0 += 4 {
			for j := int64(0); j < n3; j++ {
				for i := int64(0); i < n1; i++ {
					// Explicit temporaries mirror the IR expression tree
					// (((t0+t1)+(t2+t3)) and keep rounding identical (no
					// fused multiply-add).
					t0 := av[i+k0*n1] * bv[k0+j*n2]
					t1 := av[i+(k0+1)*n1] * bv[k0+1+j*n2]
					t2 := av[i+(k0+2)*n1] * bv[k0+2+j*n2]
					t3 := av[i+(k0+3)*n1] * bv[k0+3+j*n2]
					s01 := t0 + t1
					s23 := t2 + t3
					s := s01 + s23
					cv[i+j*n1] = cv[i+j*n1] + s
				}
			}
		}
		return map[string][]float64{"C": cv}
	}

	return &Spec{
		Name:        "MXM",
		Prog:        prog,
		CheckArrays: []string{"C"},
		Golden:      golden,
		Description: fmt.Sprintf("NASA7 matrix multiply %d×%d · %d×%d, middle loop parallel", n1, n2, n2, n3),
	}
}
