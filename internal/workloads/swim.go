package workloads

import (
	"fmt"

	"repro/internal/ir"
)

// SWIM is the SPEC CFP95 shallow-water model: per time step the three major
// subroutines CALC1 (fluxes CU, CV, vorticity Z, height H), CALC2 (new
// velocity/height fields) and CALC3 (time smoothing), each a doubly-nested
// loop with a parallel outer loop, plus the periodic boundary-copy epochs.
// The 14 matrices are column-distributed; only the j±1 halo columns and the
// periodic column copies cross PEs, so the fraction of remote references is
// small — the paper's explanation for BASE SWIM performing well and CCDP
// improving it by a modest 2.5–13.2%.
func SWIM(n, iters int64) *Spec {
	b := ir.NewBuilder(fmt.Sprintf("swim-%d", n))
	PSI := b.SharedArray("PSI", n, n)
	U := b.SharedArray("U", n, n)
	V := b.SharedArray("V", n, n)
	P := b.SharedArray("P", n, n)
	UNEW := b.SharedArray("UNEW", n, n)
	VNEW := b.SharedArray("VNEW", n, n)
	PNEW := b.SharedArray("PNEW", n, n)
	UOLD := b.SharedArray("UOLD", n, n)
	VOLD := b.SharedArray("VOLD", n, n)
	POLD := b.SharedArray("POLD", n, n)
	CU := b.SharedArray("CU", n, n)
	CV := b.SharedArray("CV", n, n)
	Z := b.SharedArray("Z", n, n)
	H := b.SharedArray("H", n, n)

	const (
		fsdx   = 0.01
		fsdy   = 0.012
		tdts8  = 0.01
		tdtsdx = 0.02
		tdtsdy = 0.02
		alpha  = 0.001
	)

	i, j := ir.I("i"), ir.I("j")
	at := func(a *ir.Array, di, dj int64) *ir.Ref {
		return ir.At(a, i.AddConst(di), j.AddConst(dj))
	}

	calc1 := ir.DoAll("j", ir.K(0), ir.K(n-2),
		ir.DoSerial("i", ir.K(0), ir.K(n-2),
			ir.Set(at(CU, 1, 0),
				ir.Mul(ir.Mul(ir.N(0.5), ir.Add(ir.L(at(P, 1, 0)), ir.L(at(P, 0, 0)))), ir.L(at(U, 1, 0)))),
			ir.Set(at(CV, 0, 1),
				ir.Mul(ir.Mul(ir.N(0.5), ir.Add(ir.L(at(P, 0, 1)), ir.L(at(P, 0, 0)))), ir.L(at(V, 0, 1)))),
			ir.Set(at(Z, 1, 1),
				ir.Div(
					ir.Sub(
						ir.Mul(ir.N(fsdx), ir.Sub(ir.L(at(V, 1, 1)), ir.L(at(V, 0, 1)))),
						ir.Mul(ir.N(fsdy), ir.Sub(ir.L(at(U, 1, 1)), ir.L(at(U, 1, 0))))),
					ir.Add(ir.Add(ir.L(at(P, 0, 0)), ir.L(at(P, 1, 0))),
						ir.Add(ir.L(at(P, 1, 1)), ir.L(at(P, 0, 1)))))),
			ir.Set(at(H, 0, 0),
				ir.Add(ir.L(at(P, 0, 0)),
					ir.Add(
						ir.Mul(ir.N(0.25), ir.Add(ir.Mul(ir.L(at(U, 1, 0)), ir.L(at(U, 1, 0))),
							ir.Mul(ir.L(at(U, 0, 0)), ir.L(at(U, 0, 0))))),
						ir.Mul(ir.N(0.25), ir.Add(ir.Mul(ir.L(at(V, 0, 1)), ir.L(at(V, 0, 1))),
							ir.Mul(ir.L(at(V, 0, 0)), ir.L(at(V, 0, 0)))))))),
		))

	// Periodic boundary copies. Row copies stay within a column (local);
	// column copies read the last column and write the first (cross-PE).
	jb := ir.I("jb")
	bc1row := ir.DoAll("jb", ir.K(0), ir.K(n-2),
		ir.Set(ir.At(CU, ir.K(0), jb), ir.L(ir.At(CU, ir.K(n-1), jb))),
		ir.Set(ir.At(Z, ir.K(0), jb.AddConst(1)), ir.L(ir.At(Z, ir.K(n-1), jb.AddConst(1)))),
		ir.Set(ir.At(H, ir.K(n-1), jb), ir.L(ir.At(H, ir.K(0), jb))),
	)
	ib := ir.I("ib")
	bc1col := ir.DoAll("ib", ir.K(0), ir.K(n-2),
		ir.Set(ir.At(CV, ib, ir.K(0)), ir.L(ir.At(CV, ib, ir.K(n-1)))),
		ir.Set(ir.At(Z, ib.AddConst(1), ir.K(0)), ir.L(ir.At(Z, ib.AddConst(1), ir.K(n-1)))),
		ir.Set(ir.At(H, ib, ir.K(n-1)), ir.L(ir.At(H, ib, ir.K(0)))),
	)

	i4, j4 := ir.I("i4"), ir.I("j4")
	at2 := func(a *ir.Array, di, dj int64) *ir.Ref {
		return ir.At(a, i4.AddConst(di), j4.AddConst(dj))
	}
	calc2 := ir.DoAll("j4", ir.K(0), ir.K(n-2),
		ir.DoSerial("i4", ir.K(0), ir.K(n-2),
			ir.Set(at2(UNEW, 1, 0),
				ir.Sub(
					ir.Add(ir.L(at2(UOLD, 1, 0)),
						ir.Mul(ir.Mul(ir.N(tdts8), ir.Add(ir.L(at2(Z, 1, 1)), ir.L(at2(Z, 1, 0)))),
							ir.Add(ir.Add(ir.L(at2(CV, 1, 1)), ir.L(at2(CV, 0, 1))),
								ir.Add(ir.L(at2(CV, 0, 0)), ir.L(at2(CV, 1, 0)))))),
					ir.Mul(ir.N(tdtsdx), ir.Sub(ir.L(at2(H, 1, 0)), ir.L(at2(H, 0, 0)))))),
			ir.Set(at2(VNEW, 0, 1),
				ir.Sub(
					ir.Sub(ir.L(at2(VOLD, 0, 1)),
						ir.Mul(ir.Mul(ir.N(tdts8), ir.Add(ir.L(at2(Z, 1, 1)), ir.L(at2(Z, 0, 1)))),
							ir.Add(ir.L(at2(CU, 1, 0)), ir.L(at2(CU, 0, 0))))),
					ir.Mul(ir.N(tdtsdy), ir.Sub(ir.L(at2(H, 0, 1)), ir.L(at2(H, 0, 0)))))),
			ir.Set(at2(PNEW, 0, 0),
				ir.Sub(
					ir.Sub(ir.L(at2(POLD, 0, 0)),
						ir.Mul(ir.N(tdtsdx), ir.Sub(ir.L(at2(CU, 1, 0)), ir.L(at2(CU, 0, 0))))),
					ir.Mul(ir.N(tdtsdy), ir.Sub(ir.L(at2(CV, 0, 1)), ir.L(at2(CV, 0, 0)))))),
		))

	jc := ir.I("jc")
	bc2row := ir.DoAll("jc", ir.K(0), ir.K(n-2),
		ir.Set(ir.At(UNEW, ir.K(0), jc), ir.L(ir.At(UNEW, ir.K(n-1), jc))),
		ir.Set(ir.At(PNEW, ir.K(n-1), jc), ir.L(ir.At(PNEW, ir.K(0), jc))),
	)
	ic := ir.I("ic")
	bc2col := ir.DoAll("ic", ir.K(0), ir.K(n-2),
		ir.Set(ir.At(VNEW, ic, ir.K(0)), ir.L(ir.At(VNEW, ic, ir.K(n-1)))),
		ir.Set(ir.At(PNEW, ic, ir.K(n-1)), ir.L(ir.At(PNEW, ic, ir.K(0)))),
	)

	i5, j5 := ir.I("i5"), ir.I("j5")
	at3 := func(a *ir.Array) *ir.Ref { return ir.At(a, i5, j5) }
	smooth := func(old, cur, new *ir.Array) ir.Stmt {
		return ir.Set(at3(old),
			ir.Add(ir.L(at3(cur)),
				ir.Mul(ir.N(alpha),
					ir.Add(ir.Sub(ir.L(at3(new)), ir.Mul(ir.N(2), ir.L(at3(cur)))), ir.L(at3(old))))))
	}
	calc3 := ir.DoAll("j5", ir.K(0), ir.K(n-2),
		ir.DoSerial("i5", ir.K(0), ir.K(n-2),
			smooth(UOLD, U, UNEW),
			smooth(VOLD, V, VNEW),
			smooth(POLD, P, PNEW),
			ir.Set(at3(U), ir.L(at3(UNEW))),
			ir.Set(at3(V), ir.L(at3(VNEW))),
			ir.Set(at3(P), ir.L(at3(PNEW))),
		))

	// Initialization: smooth fields from a stream function.
	ii, jj := ir.I("ii"), ir.I("jj")
	fij := func(num ir.Expr, den float64) ir.Expr { return ir.Div(num, ir.N(den)) }
	initEpoch := ir.DoAll("jj", ir.K(0), ir.K(n-1),
		ir.DoSerial("ii", ir.K(0), ir.K(n-1),
			ir.Set(ir.At(PSI, ii, jj), fij(ir.Mul(ir.IV(ii), ir.IV(jj)), float64(n*n))),
			ir.Set(ir.At(U, ii, jj), fij(ir.IV(ii.Scale(2).Sub(jj)), float64(3*n))),
			ir.Set(ir.At(V, ii, jj), fij(ir.IV(jj.Sub(ii.Scale(3))), float64(4*n))),
			ir.Set(ir.At(P, ii, jj), ir.Add(ir.N(10), fij(ir.IV(ii.Add(jj)), float64(n)))),
			ir.Set(ir.At(UOLD, ii, jj), fij(ir.IV(ii.Scale(2).Sub(jj)), float64(3*n))),
			ir.Set(ir.At(VOLD, ii, jj), fij(ir.IV(jj.Sub(ii.Scale(3))), float64(4*n))),
			ir.Set(ir.At(POLD, ii, jj), ir.Add(ir.N(10), fij(ir.IV(ii.Add(jj)), float64(n)))),
			ir.Set(ir.At(CU, ii, jj), ir.N(0)),
			ir.Set(ir.At(CV, ii, jj), ir.N(0)),
			ir.Set(ir.At(Z, ii, jj), ir.N(0)),
			ir.Set(ir.At(H, ii, jj), ir.N(0)),
			ir.Set(ir.At(UNEW, ii, jj), ir.N(0)),
			ir.Set(ir.At(VNEW, ii, jj), ir.N(0)),
			ir.Set(ir.At(PNEW, ii, jj), ir.N(0)),
		))

	b.Routine("main",
		initEpoch,
		ir.DoSerial("step", ir.K(1), ir.K(iters),
			ir.CallTo("calc1"),
			ir.CallTo("calc2"),
			ir.CallTo("calc3"),
		),
	)
	b.Routine("calc1", calc1, bc1row, bc1col)
	b.Routine("calc2", calc2, bc2row, bc2col)
	b.Routine("calc3", calc3)

	prog := b.Build()
	alignLoops(prog, n)
	return &Spec{
		Name:        "SWIM",
		Prog:        prog,
		CheckArrays: []string{"P", "U", "V"},
		Description: fmt.Sprintf("SPEC CFP95 shallow water, 14 matrices %d×%d, %d time steps", n, n, iters),
	}
}
