package workloads

import "repro/internal/ir"

// alignLoops sets CRAFT doshared alignment on every static DOALL: iteration
// v runs on the PE owning index v of a distributed dimension of the given
// extent. The paper's codes align loop scheduling with the data
// distribution (§5.3: "the parallel loop iterations are block distributed
// accordingly"); without alignment, a loop over an interior range (1..n-2)
// would chunk differently from the n-extent arrays it traverses and
// manufacture spurious remote traffic.
func alignLoops(p *ir.Program, extent int64) {
	for _, rt := range p.Routines {
		ir.WalkStmts(rt.Body, func(s ir.Stmt) bool {
			if l, ok := s.(*ir.Loop); ok && l.Parallel && l.Sched == ir.SchedStatic {
				l.AlignExtent = extent
			}
			return true
		})
	}
}
