package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
)

func TestDebugSWIM(t *testing.T) {
	s := SWIM(129, 2)
	c, err := core.Compile(s.Prog, core.ModeCCDP, machine.T3D(16))
	if err != nil {
		t.Fatal(err)
	}
	t.Log(c.Sched.Report())
	res, err := exec.Run(c, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Stats.String())
}
