// Package shmem models the Cray SHMEM library's shmem_get as the paper's
// realization of a vector prefetch (§5.1): a blocking block transfer with a
// fixed startup cost and a pipelined per-word cost that deposits remote
// data where the PE can access it at cache speed. The model installs the
// transferred lines into the PE's cache (the "local buffer" a real code
// would copy into is itself cached on first touch; installing directly
// avoids double-counting while preserving capacity and conflict behaviour).
package shmem

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/mem"
)

// Faults carries optional fault-injection hooks for one transfer; nil (or a
// nil field) disables that fault. Hooks are polled once per distinct cache
// line in address order, so a seeded caller sees a deterministic schedule.
type Faults struct {
	// DropLine reports that the line is lost in flight: it is charged for
	// but not installed.
	DropLine func() bool
	// LateDelay returns extra cycles before the line becomes usable
	// (added to the installed line's ready time).
	LateDelay func() int64
}

// Get transfers the given word addresses from (possibly remote) memory into
// the PE's cache, fresh as of now, and returns the cycle cost of the
// blocking transfer. Addresses need not be contiguous (strided gets are one
// shmem_iget); each touched cache line is installed whole from memory so
// the generation stamps stay word-accurate. Requesting an address outside
// the laid-out memory is a program bug and panics — fabricating zeros here
// would silently corrupt results.
func Get(m *mem.Memory, c *cache.Cache, mp machine.Params, addrs []int64, now int64) int64 {
	cost, _ := GetWithFaults(m, c, mp, addrs, now, nil)
	return cost
}

// GetWithFaults is Get with fault injection: dropped lines are charged for
// but not installed (the caller must not treat them as locally buffered),
// late lines are installed with a delayed ready time. The returned dropped
// set is keyed by line address; it is nil when nothing was dropped.
func GetWithFaults(m *mem.Memory, c *cache.Cache, mp machine.Params, addrs []int64, now int64, f *Faults) (cost int64, dropped map[int64]bool) {
	if len(addrs) == 0 {
		return 0, nil
	}
	lw := mp.LineWords
	seen := map[int64]bool{}
	vals := make([]float64, lw)
	gens := make([]uint32, lw)
	for _, a := range addrs {
		if a < 0 || a >= m.Words() {
			panic(fmt.Sprintf("shmem: get of out-of-range address %d (memory is %d words)", a, m.Words()))
		}
		la := a - a%lw
		if seen[la] {
			continue
		}
		seen[la] = true
		if f != nil && f.DropLine != nil && f.DropLine() {
			if dropped == nil {
				dropped = map[int64]bool{}
			}
			dropped[la] = true
			continue
		}
		readyAt := now
		if f != nil && f.LateDelay != nil {
			readyAt += f.LateDelay()
		}
		for k := int64(0); k < lw; k++ {
			if la+k >= m.Words() {
				// mem.Layout aligns the total to a line boundary, so a
				// valid word's line never extends past memory.
				panic(fmt.Sprintf("shmem: line %d of word %d extends past memory (%d words)", la, a, m.Words()))
			}
			vals[k], gens[k] = m.Read(la + k)
		}
		c.Install(la, vals, gens, readyAt)
	}
	return mp.ShmemStartupCost + int64(len(addrs))*mp.ShmemPerWordCost, dropped
}
