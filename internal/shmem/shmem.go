// Package shmem models the Cray SHMEM library's shmem_get as the paper's
// realization of a vector prefetch (§5.1): a blocking block transfer with a
// fixed startup cost and a pipelined per-word cost that deposits remote
// data where the PE can access it at cache speed. The model installs the
// transferred lines into the PE's cache (the "local buffer" a real code
// would copy into is itself cached on first touch; installing directly
// avoids double-counting while preserving capacity and conflict behaviour).
package shmem

import (
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/mem"
)

// Get transfers the given word addresses from (possibly remote) memory into
// the PE's cache, fresh as of now, and returns the cycle cost of the
// blocking transfer. Addresses need not be contiguous (strided gets are one
// shmem_iget); each touched cache line is installed whole from memory so
// the generation stamps stay word-accurate.
func Get(m *mem.Memory, c *cache.Cache, mp machine.Params, addrs []int64, now int64) int64 {
	if len(addrs) == 0 {
		return 0
	}
	lw := mp.LineWords
	seen := map[int64]bool{}
	vals := make([]float64, lw)
	gens := make([]uint32, lw)
	for _, a := range addrs {
		la := a - a%lw
		if seen[la] {
			continue
		}
		seen[la] = true
		for k := int64(0); k < lw; k++ {
			if la+k < m.Words() {
				vals[k], gens[k] = m.Read(la + k)
			} else {
				vals[k], gens[k] = 0, 0
			}
		}
		c.Install(la, vals, gens, now)
	}
	return mp.ShmemStartupCost + int64(len(addrs))*mp.ShmemPerWordCost
}
