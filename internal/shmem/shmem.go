// Package shmem models the Cray SHMEM library's shmem_get as the paper's
// realization of a vector prefetch (§5.1): a blocking block transfer with a
// fixed startup cost and a pipelined per-word cost that deposits remote
// data where the PE can access it at cache speed. The model installs the
// transferred lines into the PE's cache (the "local buffer" a real code
// would copy into is itself cached on first touch; installing directly
// avoids double-counting while preserving capacity and conflict behaviour).
package shmem

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
)

// Faults carries optional fault-injection hooks for one transfer; nil (or a
// nil field) disables that fault. Hooks are polled once per distinct cache
// line in address order, so a seeded caller sees a deterministic schedule.
type Faults struct {
	// DropLine reports that the line is lost in flight: it is charged for
	// but not installed.
	DropLine func() bool
	// LateDelay returns extra cycles before the line becomes usable
	// (added to the installed line's ready time).
	LateDelay func() int64
}

// DropSet is the set of cache-line addresses a transfer lost in flight.
// Lines() is sorted ascending, so iteration is deterministic.
type DropSet struct {
	lines []int64
}

// NoDrops is the shared empty drop set: every fault-free transfer returns
// it, so the common path allocates nothing.
var NoDrops = &DropSet{}

// Contains reports whether line address la was dropped.
func (d *DropSet) Contains(la int64) bool {
	for _, x := range d.lines {
		if x == la {
			return true
		}
	}
	return false
}

// Len returns the number of dropped lines.
func (d *DropSet) Len() int { return len(d.lines) }

// Lines returns the dropped line addresses, sorted ascending. The slice is
// owned by the transfer's Scratch and valid until its next Get.
func (d *DropSet) Lines() []int64 { return d.lines }

// pending is one surviving line of a transfer with its injected lateness.
type pending struct {
	la   int64
	late int64
}

// Scratch holds the per-caller reusable buffers of a transfer, so a PE's
// steady-state gets allocate nothing. A nil Scratch is accepted everywhere
// and makes the call allocate a private one (the original behaviour);
// long-lived callers keep one per PE. Not safe for concurrent use.
type Scratch struct {
	seen    *bitset.Sparse // distinct lines this call, keyed by line index
	perHome [][]pending    // surviving lines grouped by home PE
	vals    []float64      // one line of values for cache install
	gens    []uint32
	drops   []int64
	dropSet DropSet
}

// NewScratch sizes a Scratch for transfers against m under mp.
func NewScratch(m *mem.Memory, mp machine.Params) *Scratch {
	homes := m.NumPE()
	if homes < 1 {
		homes = 1
	}
	return &Scratch{
		seen:    bitset.NewSparse(m.Words()/mp.LineWords + 1),
		perHome: make([][]pending, homes),
		vals:    make([]float64, mp.LineWords),
		gens:    make([]uint32, mp.LineWords),
	}
}

// LineBuffers exposes the Scratch's one-line value/generation buffers so
// the owning PE's demand-fill path can reuse them between transfers (the
// cache copies on Install, so the buffers are free outside GetOverNet).
func (sc *Scratch) LineBuffers() ([]float64, []uint32) { return sc.vals, sc.gens }

func (sc *Scratch) reset() {
	sc.seen.Reset()
	for i := range sc.perHome {
		sc.perHome[i] = sc.perHome[i][:0]
	}
	sc.drops = sc.drops[:0]
}

// finish packages the dropped lines; fault-free transfers share NoDrops.
func (sc *Scratch) finish() *DropSet {
	if len(sc.drops) == 0 {
		return NoDrops
	}
	sort.Slice(sc.drops, func(i, j int) bool { return sc.drops[i] < sc.drops[j] })
	sc.dropSet.lines = sc.drops
	return &sc.dropSet
}

// Get transfers the given word addresses from (possibly remote) memory into
// the PE's cache, fresh as of now, and returns the cycle cost of the
// blocking transfer. Addresses need not be contiguous (strided gets are one
// shmem_iget); each touched cache line is installed whole from memory so
// the generation stamps stay word-accurate. Requesting an address outside
// the laid-out memory is a program bug and panics — fabricating zeros here
// would silently corrupt results.
func Get(m *mem.Memory, c *cache.Cache, mp machine.Params, addrs []int64, now int64) int64 {
	cost, _ := GetWithFaults(m, c, mp, addrs, now, nil)
	return cost
}

// GetWithFaults is Get with fault injection: dropped lines are charged for
// but not installed (the caller must not treat them as locally buffered),
// late lines are installed with a delayed ready time.
func GetWithFaults(m *mem.Memory, c *cache.Cache, mp machine.Params, addrs []int64, now int64, f *Faults) (int64, *DropSet) {
	return GetOverNet(m, c, mp, nil, 0, addrs, now, f, nil)
}

// GetOverNet is GetWithFaults routed over an interconnect model: tr is
// either a *noc.Network (single-goroutine canonical booking) or a
// *noc.Session (the engine's windowed-PDES front end for concurrent PE
// goroutines) — the two produce identical arrival times. With a nil
// transport it reproduces the flat model bit-identically: the blocking
// cost is ShmemStartupCost + len(addrs)·ShmemPerWordCost regardless of
// where the data lives. Over a torus, the surviving lines are grouped by
// their home PE and each home sends one pipelined reply message to src;
// the gathers proceed in parallel, so the blocking cost is the startup
// plus the slowest home's arrival (queueing included), plus the per-word
// copy cost for locally-homed lines. Lines are installed with their own
// message's arrival as ready time — per-message arrival, not a constant.
//
// sc may be nil (a private Scratch is allocated); the returned DropSet is
// valid until the next Get on the same Scratch.
func GetOverNet(m *mem.Memory, c *cache.Cache, mp machine.Params, tr noc.Transport, src int, addrs []int64, now int64, f *Faults, sc *Scratch) (int64, *DropSet) {
	if len(addrs) == 0 {
		return 0, NoDrops
	}
	if sc == nil {
		sc = NewScratch(m, mp)
	}
	sc.reset()
	lw := mp.LineWords

	// First pass: dedupe lines in address order, poll the fault hooks once
	// per surviving line (identical polling order in both topology modes,
	// so a seeded fault stream sees the same schedule), and group lines by
	// home PE (flat: single bucket 0).
	for _, a := range addrs {
		if a < 0 || a >= m.Words() {
			panic(fmt.Sprintf("shmem: get of out-of-range address %d (memory is %d words)", a, m.Words()))
		}
		la := a - a%lw
		if !sc.seen.Add(la / lw) {
			continue
		}
		if f != nil && f.DropLine != nil && f.DropLine() {
			sc.drops = append(sc.drops, la)
			continue
		}
		var late int64
		if f != nil && f.LateDelay != nil {
			late = f.LateDelay()
		}
		home := 0
		if tr != nil {
			home = m.OwnerOf(la)
		}
		sc.perHome[home] = append(sc.perHome[home], pending{la, late})
	}

	install := func(la, readyAt int64) {
		for k := int64(0); k < lw; k++ {
			if la+k >= m.Words() {
				// mem.Layout aligns the total to a line boundary, so a
				// valid word's line never extends past memory.
				panic(fmt.Sprintf("shmem: line %d extends past memory (%d words)", la, m.Words()))
			}
			sc.vals[k], sc.gens[k] = m.Read(la + k)
		}
		c.Install(la, sc.vals, sc.gens, readyAt)
	}

	if tr == nil {
		// Flat model: constant per-word pipelined cost, location-blind.
		for _, p := range sc.perHome[0] {
			install(p.la, now+p.late)
		}
		return mp.ShmemStartupCost + int64(len(addrs))*mp.ShmemPerWordCost, sc.finish()
	}

	// Torus: one reply message per home PE, booked in ascending home order
	// for determinism; the call blocks until the slowest gather lands.
	done := now
	for home := range sc.perHome {
		lines := sc.perHome[home]
		if len(lines) == 0 {
			continue
		}
		if home == src {
			// Locally homed lines: a plain pipelined copy.
			for _, p := range lines {
				install(p.la, now+p.late)
			}
			if t := now + int64(len(lines))*lw*mp.ShmemPerWordCost; t > done {
				done = t
			}
			continue
		}
		arrive, _ := tr.RoundTrip(src, home, int64(len(lines))*lw, now, 0)
		for _, p := range lines {
			install(p.la, arrive+p.late)
		}
		if arrive > done {
			done = arrive
		}
	}
	return mp.ShmemStartupCost + (done - now), sc.finish()
}
