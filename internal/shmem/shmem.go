// Package shmem models the Cray SHMEM library's shmem_get as the paper's
// realization of a vector prefetch (§5.1): a blocking block transfer with a
// fixed startup cost and a pipelined per-word cost that deposits remote
// data where the PE can access it at cache speed. The model installs the
// transferred lines into the PE's cache (the "local buffer" a real code
// would copy into is itself cached on first touch; installing directly
// avoids double-counting while preserving capacity and conflict behaviour).
package shmem

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
)

// Faults carries optional fault-injection hooks for one transfer; nil (or a
// nil field) disables that fault. Hooks are polled once per distinct cache
// line in address order, so a seeded caller sees a deterministic schedule.
type Faults struct {
	// DropLine reports that the line is lost in flight: it is charged for
	// but not installed.
	DropLine func() bool
	// LateDelay returns extra cycles before the line becomes usable
	// (added to the installed line's ready time).
	LateDelay func() int64
}

// Get transfers the given word addresses from (possibly remote) memory into
// the PE's cache, fresh as of now, and returns the cycle cost of the
// blocking transfer. Addresses need not be contiguous (strided gets are one
// shmem_iget); each touched cache line is installed whole from memory so
// the generation stamps stay word-accurate. Requesting an address outside
// the laid-out memory is a program bug and panics — fabricating zeros here
// would silently corrupt results.
func Get(m *mem.Memory, c *cache.Cache, mp machine.Params, addrs []int64, now int64) int64 {
	cost, _ := GetWithFaults(m, c, mp, addrs, now, nil)
	return cost
}

// GetWithFaults is Get with fault injection: dropped lines are charged for
// but not installed (the caller must not treat them as locally buffered),
// late lines are installed with a delayed ready time. The returned dropped
// set is keyed by line address; it is nil when nothing was dropped.
func GetWithFaults(m *mem.Memory, c *cache.Cache, mp machine.Params, addrs []int64, now int64, f *Faults) (cost int64, dropped map[int64]bool) {
	return GetOverNet(m, c, mp, nil, 0, addrs, now, f)
}

// GetOverNet is GetWithFaults routed over an interconnect model. With a
// nil network it reproduces the flat model bit-identically: the blocking
// cost is ShmemStartupCost + len(addrs)·ShmemPerWordCost regardless of
// where the data lives. Over a torus, the surviving lines are grouped by
// their home PE and each home sends one pipelined reply message to src;
// the gathers proceed in parallel, so the blocking cost is the startup
// plus the slowest home's arrival (queueing included), plus the per-word
// copy cost for locally-homed lines. Lines are installed with their own
// message's arrival as ready time — per-message arrival, not a constant.
func GetOverNet(m *mem.Memory, c *cache.Cache, mp machine.Params, net *noc.Network, src int, addrs []int64, now int64, f *Faults) (cost int64, dropped map[int64]bool) {
	if len(addrs) == 0 {
		return 0, nil
	}
	lw := mp.LineWords
	seen := map[int64]bool{}
	vals := make([]float64, lw)
	gens := make([]uint32, lw)

	// First pass: dedupe lines in address order, poll the fault hooks once
	// per surviving line (identical polling order in both topology modes,
	// so a seeded fault stream sees the same schedule), and group lines by
	// home PE.
	type pending struct {
		la   int64
		late int64
	}
	byHome := map[int]*[]pending{} // home PE -> lines (flat: single bucket 0)
	var homes []int
	for _, a := range addrs {
		if a < 0 || a >= m.Words() {
			panic(fmt.Sprintf("shmem: get of out-of-range address %d (memory is %d words)", a, m.Words()))
		}
		la := a - a%lw
		if seen[la] {
			continue
		}
		seen[la] = true
		if f != nil && f.DropLine != nil && f.DropLine() {
			if dropped == nil {
				dropped = map[int64]bool{}
			}
			dropped[la] = true
			continue
		}
		var late int64
		if f != nil && f.LateDelay != nil {
			late = f.LateDelay()
		}
		home := 0
		if net != nil {
			home = m.OwnerOf(la)
		}
		bucket, ok := byHome[home]
		if !ok {
			bucket = &[]pending{}
			byHome[home] = bucket
			homes = append(homes, home)
		}
		*bucket = append(*bucket, pending{la, late})
	}

	install := func(la, readyAt int64) {
		for k := int64(0); k < lw; k++ {
			if la+k >= m.Words() {
				// mem.Layout aligns the total to a line boundary, so a
				// valid word's line never extends past memory.
				panic(fmt.Sprintf("shmem: line %d extends past memory (%d words)", la, m.Words()))
			}
			vals[k], gens[k] = m.Read(la + k)
		}
		c.Install(la, vals, gens, readyAt)
	}

	if net == nil {
		// Flat model: constant per-word pipelined cost, location-blind.
		if bucket, ok := byHome[0]; ok {
			for _, p := range *bucket {
				install(p.la, now+p.late)
			}
		}
		return mp.ShmemStartupCost + int64(len(addrs))*mp.ShmemPerWordCost, dropped
	}

	// Torus: one reply message per home PE, booked in home order for
	// determinism; the call blocks until the slowest gather lands.
	sort.Ints(homes)
	done := now
	for _, home := range homes {
		lines := *byHome[home]
		if home == src {
			// Locally homed lines: a plain pipelined copy.
			for _, p := range lines {
				install(p.la, now+p.late)
			}
			if t := now + int64(len(lines))*lw*mp.ShmemPerWordCost; t > done {
				done = t
			}
			continue
		}
		arrive, _ := net.RoundTrip(src, home, int64(len(lines))*lw, now, 0)
		for _, p := range lines {
			install(p.la, arrive+p.late)
		}
		if arrive > done {
			done = arrive
		}
	}
	return mp.ShmemStartupCost + (done - now), dropped
}
