package shmem

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
)

func setup(t *testing.T) (*mem.Memory, *cache.Cache, machine.Params, *ir.Array) {
	t.Helper()
	b := ir.NewBuilder("shmem")
	a := b.SharedArray("A", 256)
	b.Routine("main", ir.Set(ir.At(a, ir.K(0)), ir.N(0)))
	p := b.Build()
	mp := machine.T3D(4)
	total := mem.Layout(p, mp.LineWords)
	m := mem.New(p, 4, total)
	for i := int64(0); i < 256; i++ {
		m.Write(a.Base+i, float64(i)*1.5)
	}
	return m, cache.New(mp.CacheWords, mp.LineWords), mp, a
}

func TestGetInstallsFreshLines(t *testing.T) {
	m, c, mp, a := setup(t)
	addrs := []int64{a.Base + 64, a.Base + 65, a.Base + 66, a.Base + 67, a.Base + 68}
	cost := Get(m, c, mp, addrs, 100)
	want := mp.ShmemStartupCost + int64(len(addrs))*mp.ShmemPerWordCost
	if cost != want {
		t.Errorf("cost = %d, want %d", cost, want)
	}
	for _, addr := range addrs {
		v, g, ready, hit := c.Lookup(addr)
		if !hit {
			t.Fatalf("addr %d not installed", addr)
		}
		if v != float64(addr-a.Base)*1.5 {
			t.Errorf("addr %d value %v", addr, v)
		}
		if g != m.Gen(addr) {
			t.Errorf("addr %d gen %d vs memory %d", addr, g, m.Gen(addr))
		}
		if ready != 100 {
			t.Errorf("ready = %d", ready)
		}
	}
}

func TestGetDedupesLines(t *testing.T) {
	m, c, mp, a := setup(t)
	// Four words of the same line: one install.
	addrs := []int64{a.Base, a.Base + 1, a.Base + 2, a.Base + 3}
	Get(m, c, mp, addrs, 0)
	if c.Installs != 1 {
		t.Errorf("installs = %d, want 1", c.Installs)
	}
}

func TestGetEmpty(t *testing.T) {
	m, c, mp, _ := setup(t)
	if cost := Get(m, c, mp, nil, 0); cost != 0 {
		t.Errorf("empty get cost = %d", cost)
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	m, c, mp, _ := setup(t)
	for _, bad := range []int64{-1, m.Words(), m.Words() + 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(addr=%d) did not panic", bad)
				}
			}()
			Get(m, c, mp, []int64{bad}, 0)
		}()
	}
}

func TestGetWithFaultsDropAndLate(t *testing.T) {
	m, c, mp, a := setup(t)
	// Two distinct lines; drop the first, delay the second.
	addrs := []int64{a.Base, a.Base + 8}
	calls := 0
	f := &Faults{
		DropLine:  func() bool { calls++; return calls == 1 },
		LateDelay: func() int64 { return 500 },
	}
	cost, dropped := GetWithFaults(m, c, mp, addrs, 100, f)
	if want := mp.ShmemStartupCost + 2*mp.ShmemPerWordCost; cost != want {
		t.Errorf("cost = %d, want %d (dropped lines are still charged)", cost, want)
	}
	if !dropped.Contains(a.Base) || dropped.Len() != 1 {
		t.Errorf("dropped = %v, want {%d}", dropped.Lines(), a.Base)
	}
	if c.Contains(a.Base) {
		t.Error("dropped line was installed")
	}
	_, _, ready, hit := c.Lookup(a.Base + 8)
	if !hit || ready != 600 {
		t.Errorf("late line hit=%v ready=%d, want hit at 600", hit, ready)
	}
}

func TestStridedGet(t *testing.T) {
	m, c, mp, a := setup(t)
	// Stride 8: each word on its own line.
	var addrs []int64
	for k := int64(0); k < 10; k++ {
		addrs = append(addrs, a.Base+k*8)
	}
	Get(m, c, mp, addrs, 0)
	if c.Installs != 10 {
		t.Errorf("installs = %d, want 10", c.Installs)
	}
}

func TestGetOverNetTorus(t *testing.T) {
	m, c, mp, a := setup(t)
	net, err := noc.New(noc.Config{Kind: noc.KindTorus, X: 4, Y: 1, Z: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// One line homed on each of two remote PEs plus one local line.
	words := m.Words() / 4 // block distribution: words per PE
	local := a.Base
	rem1 := words + (a.Base % mp.LineWords)   // somewhere on PE 1
	rem2 := 2*words + (a.Base % mp.LineWords) // somewhere on PE 2
	if m.OwnerOf(local) != 0 || m.OwnerOf(rem1) != 1 || m.OwnerOf(rem2) != 2 {
		t.Fatalf("owners %d/%d/%d, want 0/1/2", m.OwnerOf(local), m.OwnerOf(rem1), m.OwnerOf(rem2))
	}
	cost, dropped := GetOverNet(m, c, mp, net, 0, []int64{local, rem1, rem2}, 1000, nil, nil)
	if dropped != NoDrops || dropped.Len() != 0 {
		t.Fatalf("fault-free get dropped %v (want the shared NoDrops sentinel)", dropped.Lines())
	}
	// The blocking cost covers the slowest gather: PE 2 is 2 hops away, so
	// its reply (1 line) must arrive after 2 routed trips plus base cost —
	// strictly more than the flat per-word formula charges for 3 words.
	flat := mp.ShmemStartupCost + 3*mp.ShmemPerWordCost
	if cost <= flat {
		t.Errorf("torus get cost %d, want > flat %d (distance-dependent)", cost, flat)
	}
	// Each line is usable at its own message's arrival: the near line
	// strictly before the far line.
	_, _, r1, hit1 := c.Lookup(rem1)
	_, _, r2, hit2 := c.Lookup(rem2)
	if !hit1 || !hit2 {
		t.Fatalf("remote lines not installed (hit1=%v hit2=%v)", hit1, hit2)
	}
	if !(r1 < r2) {
		t.Errorf("near line ready %d, far line ready %d; want near < far", r1, r2)
	}
	if _, _, r0, hit := c.Lookup(local); !hit || r0 != 1000 {
		t.Errorf("local line ready %d hit=%v, want 1000", r0, hit)
	}
	// A nil network must reproduce the flat cost for the same request.
	c2 := cache.New(mp.CacheWords, mp.LineWords)
	if got, _ := GetOverNet(m, c2, mp, nil, 0, []int64{local, rem1, rem2}, 1000, nil, nil); got != flat {
		t.Errorf("flat get cost %d, want %d", got, flat)
	}
}
