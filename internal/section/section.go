// Package section implements bounded regular array sections: finite unions
// of N-dimensional integer rectangles. Sections summarize the region of an
// array read or written by an epoch task, and the stale-reference analysis
// is a dataflow over them.
//
// Soundness contract: the stale analysis needs read/write summaries that
// OVER-approximate the true access sets, except when a set is subtracted
// (killed), where the subtrahend must be exact. A Set therefore carries an
// "approx" bit: widening (to bound the rectangle count) sets it, and
// Subtract with an approximate subtrahend conservatively returns the minuend
// unchanged.
package section

import (
	"fmt"
	"sort"
	"strings"
)

// Rect is an N-dimensional rectangle with inclusive bounds Lo[d]..Hi[d].
// A Rect with any Lo[d] > Hi[d] is empty.
type Rect struct {
	Lo, Hi []int64
}

// NewRect builds a rectangle from parallel lo/hi slices.
func NewRect(lo, hi []int64) Rect {
	if len(lo) != len(hi) {
		panic("section: rank mismatch in NewRect")
	}
	l := make([]int64, len(lo))
	h := make([]int64, len(hi))
	copy(l, lo)
	copy(h, hi)
	return Rect{Lo: l, Hi: h}
}

// Rank returns the dimensionality of the rectangle.
func (r Rect) Rank() int { return len(r.Lo) }

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool {
	for d := range r.Lo {
		if r.Lo[d] > r.Hi[d] {
			return true
		}
	}
	return false
}

// Contains reports whether point p lies inside r.
func (r Rect) Contains(p []int64) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for d := range p {
		if p[d] < r.Lo[d] || p[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Intersect returns the rectangle intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{Lo: make([]int64, r.Rank()), Hi: make([]int64, r.Rank())}
	for d := range r.Lo {
		out.Lo[d] = max64(r.Lo[d], s.Lo[d])
		out.Hi[d] = min64(r.Hi[d], s.Hi[d])
	}
	return out
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// ContainsRect reports whether s is entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	for d := range r.Lo {
		if s.Lo[d] < r.Lo[d] || s.Hi[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Size returns the number of points in r.
func (r Rect) Size() int64 {
	if r.Empty() {
		return 0
	}
	n := int64(1)
	for d := range r.Lo {
		n *= r.Hi[d] - r.Lo[d] + 1
	}
	return n
}

// subtract returns r − s as a list of disjoint rectangles (slab
// decomposition: peel one dimension at a time).
func (r Rect) subtract(s Rect) []Rect {
	is := r.Intersect(s)
	if is.Empty() {
		if r.Empty() {
			return nil
		}
		return []Rect{r}
	}
	var out []Rect
	cur := r
	for d := 0; d < r.Rank(); d++ {
		if cur.Lo[d] < is.Lo[d] {
			left := NewRect(cur.Lo, cur.Hi)
			left.Hi[d] = is.Lo[d] - 1
			out = append(out, left)
		}
		if cur.Hi[d] > is.Hi[d] {
			right := NewRect(cur.Lo, cur.Hi)
			right.Lo[d] = is.Hi[d] + 1
			out = append(out, right)
		}
		cur = NewRect(cur.Lo, cur.Hi)
		cur.Lo[d] = is.Lo[d]
		cur.Hi[d] = is.Hi[d]
	}
	return out
}

func (r Rect) String() string {
	parts := make([]string, r.Rank())
	for d := range r.Lo {
		if r.Lo[d] == r.Hi[d] {
			parts[d] = fmt.Sprintf("%d", r.Lo[d])
		} else {
			parts[d] = fmt.Sprintf("%d:%d", r.Lo[d], r.Hi[d])
		}
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// MaxRects bounds the number of rectangles a Set may hold before it is
// widened to its bounding box (and marked approximate).
const MaxRects = 48

// Set is a union of same-rank rectangles, possibly marked approximate.
type Set struct {
	rank   int
	rects  []Rect
	approx bool
}

// Empty returns the empty set of the given rank.
func Empty(rank int) Set { return Set{rank: rank} }

// Of builds a set from rectangles (all must share the given rank).
func Of(rank int, rects ...Rect) Set {
	s := Empty(rank)
	for _, r := range rects {
		s = s.UnionRect(r)
	}
	return s
}

// Rank returns the dimensionality of the set's rectangles.
func (s Set) Rank() int { return s.rank }

// IsEmpty reports whether the set contains no points.
func (s Set) IsEmpty() bool { return len(s.rects) == 0 }

// Approx reports whether the set has been widened and over-approximates.
func (s Set) Approx() bool { return s.approx }

// Rects returns a copy of the rectangles in the set.
func (s Set) Rects() []Rect {
	out := make([]Rect, len(s.rects))
	copy(out, s.rects)
	return out
}

// Contains reports whether point p is in the set.
func (s Set) Contains(p []int64) bool {
	for _, r := range s.rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// mergeWith returns the exact union of r and q as a single rectangle when
// they agree on all dimensions but one, along which they overlap or touch
// (e.g. adjacent distribution slabs).
func (r Rect) mergeWith(q Rect) (Rect, bool) {
	diff := -1
	for d := range r.Lo {
		if r.Lo[d] != q.Lo[d] || r.Hi[d] != q.Hi[d] {
			if diff >= 0 {
				return Rect{}, false
			}
			diff = d
		}
	}
	if diff < 0 {
		return r, true // identical
	}
	// Overlapping or adjacent along diff?
	if r.Lo[diff] > q.Hi[diff]+1 || q.Lo[diff] > r.Hi[diff]+1 {
		return Rect{}, false
	}
	m := NewRect(r.Lo, r.Hi)
	m.Lo[diff] = min64(r.Lo[diff], q.Lo[diff])
	m.Hi[diff] = max64(r.Hi[diff], q.Hi[diff])
	return m, true
}

// UnionRect returns s ∪ {r}.
func (s Set) UnionRect(r Rect) Set {
	if r.Rank() != s.rank {
		panic(fmt.Sprintf("section: rank mismatch %d vs %d", r.Rank(), s.rank))
	}
	if r.Empty() {
		return s
	}
	// Absorb if already covered; replace covered rects; coalesce with any
	// rect that differs only along one dimension (adjacent slabs merge
	// exactly, which keeps "every PE but p" unions small and precise).
	out := Set{rank: s.rank, approx: s.approx}
	add := r
	for _, q := range s.rects {
		if q.ContainsRect(add) {
			return s
		}
		if add.ContainsRect(q) {
			continue
		}
		if m, ok := add.mergeWith(q); ok {
			add = m
			continue
		}
		out.rects = append(out.rects, q)
	}
	// The grown rectangle may now cover or merge with earlier survivors.
	for changed := true; changed; {
		changed = false
		kept := out.rects[:0]
		for _, q := range out.rects {
			if add.ContainsRect(q) {
				changed = true
				continue
			}
			if m, ok := add.mergeWith(q); ok {
				add = m
				changed = true
				continue
			}
			kept = append(kept, q)
		}
		out.rects = kept
	}
	out.rects = append(out.rects, add)
	return out.widenIfNeeded()
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := s
	out.approx = s.approx || t.approx
	for _, r := range t.rects {
		out = out.UnionRect(r)
	}
	out.approx = out.approx || s.approx || t.approx
	return out
}

// Intersect returns s ∩ t. The result is approximate if either input is.
func (s Set) Intersect(t Set) Set {
	out := Set{rank: s.rank, approx: s.approx || t.approx}
	for _, a := range s.rects {
		for _, b := range t.rects {
			is := a.Intersect(b)
			if !is.Empty() {
				out = out.UnionRect(is)
			}
		}
	}
	out.approx = s.approx || t.approx
	return out
}

// Overlaps reports whether s and t share at least one point.
func (s Set) Overlaps(t Set) bool {
	for _, a := range s.rects {
		for _, b := range t.rects {
			if a.Overlaps(b) {
				return true
			}
		}
	}
	return false
}

// Subtract returns s − t. If t is approximate the subtraction would be
// unsound (t over-approximates the kill set), so s is returned unchanged.
func (s Set) Subtract(t Set) Set {
	if t.approx {
		return s
	}
	cur := s.rects
	for _, b := range t.rects {
		var next []Rect
		for _, a := range cur {
			next = append(next, a.subtract(b)...)
		}
		cur = next
	}
	out := Set{rank: s.rank, approx: s.approx}
	for _, r := range cur {
		out = out.UnionRect(r)
	}
	out.approx = s.approx || out.approx
	return out
}

// BoundingBox returns the smallest rectangle containing the set; empty=false
// when the set is empty.
func (s Set) BoundingBox() (Rect, bool) {
	if s.IsEmpty() {
		return Rect{}, false
	}
	bb := NewRect(s.rects[0].Lo, s.rects[0].Hi)
	for _, r := range s.rects[1:] {
		for d := 0; d < s.rank; d++ {
			bb.Lo[d] = min64(bb.Lo[d], r.Lo[d])
			bb.Hi[d] = max64(bb.Hi[d], r.Hi[d])
		}
	}
	return bb, true
}

// Size returns the exact number of points in the set (inclusion–exclusion
// via disjointification; intended for tests and small sets).
func (s Set) Size() int64 {
	var disjoint []Rect
	for _, r := range s.rects {
		frags := []Rect{r}
		for _, d := range disjoint {
			var next []Rect
			for _, f := range frags {
				next = append(next, f.subtract(d)...)
			}
			frags = next
		}
		disjoint = append(disjoint, frags...)
	}
	var n int64
	for _, r := range disjoint {
		n += r.Size()
	}
	return n
}

// ContainsSet reports whether every point of t lies in s.
func (s Set) ContainsSet(t Set) bool {
	for _, b := range t.rects {
		rem := []Rect{b}
		for _, a := range s.rects {
			var next []Rect
			for _, f := range rem {
				next = append(next, f.subtract(a)...)
			}
			rem = next
			if len(rem) == 0 {
				break
			}
		}
		if len(rem) != 0 {
			return false
		}
	}
	return true
}

// EqualPoints reports whether s and t denote the same point set.
func (s Set) EqualPoints(t Set) bool {
	return s.ContainsSet(t) && t.ContainsSet(s)
}

// widenIfNeeded collapses the set to its bounding box when it holds more
// than MaxRects rectangles, marking it approximate.
func (s Set) widenIfNeeded() Set {
	if len(s.rects) <= MaxRects {
		return s
	}
	bb, _ := s.BoundingBox()
	return Set{rank: s.rank, rects: []Rect{bb}, approx: true}
}

// Widen explicitly collapses the set to its bounding box, marking it
// approximate (used by the dataflow to force convergence).
func (s Set) Widen() Set {
	bb, ok := s.BoundingBox()
	if !ok {
		return s
	}
	return Set{rank: s.rank, rects: []Rect{bb}, approx: true}
}

func (s Set) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	parts := make([]string, len(s.rects))
	rects := s.Rects()
	sort.Slice(rects, func(i, j int) bool { return rects[i].String() < rects[j].String() })
	for i, r := range rects {
		parts[i] = r.String()
	}
	suffix := ""
	if s.approx {
		suffix = "~"
	}
	return strings.Join(parts, " ∪ ") + suffix
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
