package section

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func rect2(lo0, hi0, lo1, hi1 int64) Rect {
	return NewRect([]int64{lo0, lo1}, []int64{hi0, hi1})
}

func TestRectBasics(t *testing.T) {
	r := rect2(0, 3, 1, 2)
	if r.Empty() || r.Size() != 8 {
		t.Fatalf("rect %v: empty=%v size=%d", r, r.Empty(), r.Size())
	}
	if !r.Contains([]int64{0, 1}) || !r.Contains([]int64{3, 2}) {
		t.Error("corner containment failed")
	}
	if r.Contains([]int64{4, 1}) || r.Contains([]int64{0, 0}) {
		t.Error("outside point contained")
	}
	e := rect2(2, 1, 0, 0)
	if !e.Empty() || e.Size() != 0 {
		t.Error("empty rect not detected")
	}
}

func TestRectIntersect(t *testing.T) {
	a := rect2(0, 5, 0, 5)
	b := rect2(3, 8, 4, 9)
	is := a.Intersect(b)
	want := rect2(3, 5, 4, 5)
	if is.String() != want.String() {
		t.Errorf("Intersect = %v, want %v", is, want)
	}
	if !a.Overlaps(b) || a.Overlaps(rect2(6, 9, 0, 5)) {
		t.Error("Overlaps wrong")
	}
}

func TestRectSubtract(t *testing.T) {
	a := rect2(0, 4, 0, 4)
	b := rect2(1, 2, 1, 2)
	parts := a.subtract(b)
	var total int64
	for _, p := range parts {
		total += p.Size()
		if p.Overlaps(b) {
			t.Errorf("fragment %v overlaps subtrahend", p)
		}
	}
	if total != a.Size()-b.Size() {
		t.Errorf("fragments cover %d points, want %d", total, a.Size()-b.Size())
	}
	// Disjointness of fragments.
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			if parts[i].Overlaps(parts[j]) {
				t.Errorf("fragments %v and %v overlap", parts[i], parts[j])
			}
		}
	}
}

func TestRectSubtractDisjoint(t *testing.T) {
	a := rect2(0, 2, 0, 2)
	b := rect2(5, 6, 5, 6)
	parts := a.subtract(b)
	if len(parts) != 1 || parts[0].String() != a.String() {
		t.Errorf("disjoint subtract = %v", parts)
	}
}

func TestSetUnionAbsorbs(t *testing.T) {
	s := Of(2, rect2(0, 9, 0, 9))
	s2 := s.UnionRect(rect2(2, 3, 2, 3)) // contained
	if len(s2.Rects()) != 1 {
		t.Errorf("contained rect not absorbed: %v", s2)
	}
	s3 := Of(2, rect2(2, 3, 2, 3)).UnionRect(rect2(0, 9, 0, 9)) // covers
	if len(s3.Rects()) != 1 {
		t.Errorf("covering rect did not replace: %v", s3)
	}
}

func TestSetOps(t *testing.T) {
	a := Of(2, rect2(0, 4, 0, 4), rect2(10, 12, 10, 12))
	b := Of(2, rect2(3, 11, 3, 11))
	u := a.Union(b)
	if !u.Contains([]int64{0, 0}) || !u.Contains([]int64{11, 11}) || !u.Contains([]int64{7, 7}) {
		t.Error("Union missing points")
	}
	is := a.Intersect(b)
	if !is.Contains([]int64{3, 3}) || !is.Contains([]int64{4, 4}) || !is.Contains([]int64{10, 10}) {
		t.Error("Intersect missing points")
	}
	if is.Contains([]int64{0, 0}) || is.Contains([]int64{12, 12}) {
		t.Error("Intersect has extra points")
	}
	d := a.Subtract(b)
	if d.Contains([]int64{3, 3}) || d.Contains([]int64{11, 11}) {
		t.Error("Subtract left subtrahend points")
	}
	if !d.Contains([]int64{0, 0}) || !d.Contains([]int64{12, 12}) {
		t.Error("Subtract removed minuend-only points")
	}
}

func TestSubtractApproxIsIdentity(t *testing.T) {
	a := Of(2, rect2(0, 4, 0, 4))
	b := Of(2, rect2(1, 2, 1, 2)).Widen()
	if !b.Approx() {
		t.Fatal("Widen did not mark approx")
	}
	d := a.Subtract(b)
	if !d.EqualPoints(a) {
		t.Errorf("Subtract with approx subtrahend changed set: %v", d)
	}
}

func TestApproxPropagation(t *testing.T) {
	a := Of(1, NewRect([]int64{0}, []int64{9}))
	w := a.Widen()
	if !w.Approx() {
		t.Fatal("widen not approx")
	}
	if !a.Union(w).Approx() {
		t.Error("union did not propagate approx")
	}
	if !w.Intersect(a).Approx() {
		t.Error("intersect did not propagate approx")
	}
	if !w.Subtract(a).Approx() {
		t.Error("subtract did not propagate approx on minuend")
	}
}

func TestWidenBoundsRectCount(t *testing.T) {
	s := Empty(1)
	for i := int64(0); i < int64(MaxRects)+10; i++ {
		s = s.UnionRect(NewRect([]int64{i * 3}, []int64{i * 3})) // disjoint singletons
	}
	if len(s.Rects()) > MaxRects+1 {
		t.Errorf("rect count %d not bounded", len(s.Rects()))
	}
	if !s.Approx() {
		t.Error("overflow did not mark approx")
	}
	// Over-approximation: all original points still contained.
	for i := int64(0); i < int64(MaxRects)+10; i++ {
		if !s.Contains([]int64{i * 3}) {
			t.Fatalf("widened set lost point %d", i*3)
		}
	}
}

func TestContainsSetAndEqualPoints(t *testing.T) {
	a := Of(2, rect2(0, 9, 0, 9))
	b := Of(2, rect2(0, 4, 0, 9), rect2(5, 9, 0, 9))
	if !a.EqualPoints(b) {
		t.Error("split cover not equal to whole")
	}
	c := Of(2, rect2(0, 9, 0, 8))
	if !a.ContainsSet(c) || c.ContainsSet(a) {
		t.Error("ContainsSet wrong")
	}
}

func TestSizeWithOverlap(t *testing.T) {
	s := Of(2, rect2(0, 4, 0, 4), rect2(3, 6, 3, 6))
	// 25 + 16 - overlap(2x2=4) = 37
	if got := s.Size(); got != 37 {
		t.Errorf("Size = %d, want 37", got)
	}
}

func TestBoundingBox(t *testing.T) {
	s := Of(2, rect2(2, 3, 5, 6), rect2(-1, 0, 9, 9))
	bb, ok := s.BoundingBox()
	if !ok || bb.String() != rect2(-1, 3, 5, 9).String() {
		t.Errorf("BoundingBox = %v ok=%v", bb, ok)
	}
	if _, ok := Empty(2).BoundingBox(); ok {
		t.Error("empty set has bounding box")
	}
}

func TestStringForms(t *testing.T) {
	if got := Empty(2).String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
	s := Of(1, NewRect([]int64{3}, []int64{3}))
	if got := s.String(); got != "[3]" {
		t.Errorf("singleton String = %q", got)
	}
}

// --- Property tests: set algebra vs brute-force point sets ---

type points map[[2]int64]bool

func enumerate(s Set, bound int64) points {
	p := points{}
	for x := -bound; x <= bound; x++ {
		for y := -bound; y <= bound; y++ {
			if s.Contains([]int64{x, y}) {
				p[[2]int64{x, y}] = true
			}
		}
	}
	return p
}

func randomSet(r *rand.Rand, n int) Set {
	s := Empty(2)
	for i := 0; i < n; i++ {
		lo0 := r.Int63n(17) - 8
		lo1 := r.Int63n(17) - 8
		s = s.UnionRect(rect2(lo0, lo0+r.Int63n(5), lo1, lo1+r.Int63n(5)))
	}
	return s
}

func TestPropSetOpsMatchPointSets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, 1+r.Intn(4))
		b := randomSet(r, 1+r.Intn(4))
		pa, pb := enumerate(a, 16), enumerate(b, 16)

		u := enumerate(a.Union(b), 16)
		i := enumerate(a.Intersect(b), 16)
		d := enumerate(a.Subtract(b), 16)

		for k := range pa {
			if !u[k] {
				return false
			}
			if pb[k] != i[k] {
				return false
			}
			if pb[k] == d[k] {
				return false
			}
		}
		for k := range pb {
			if !u[k] {
				return false
			}
		}
		for k := range u {
			if !pa[k] && !pb[k] {
				return false
			}
		}
		for k := range d {
			if !pa[k] || pb[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropSizeMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, 1+r.Intn(5))
		return a.Size() == int64(len(enumerate(a, 16)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropOverlapsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, 1+r.Intn(4))
		b := randomSet(r, 1+r.Intn(4))
		return a.Overlaps(b) == !a.Intersect(b).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropContainsSetReflexiveAndUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, 1+r.Intn(4))
		b := randomSet(r, 1+r.Intn(4))
		u := a.Union(b)
		return a.ContainsSet(a) && u.ContainsSet(a) && u.ContainsSet(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUnionCoalescesAdjacentSlabs(t *testing.T) {
	// 64 adjacent column slabs must merge into one rectangle.
	s := Empty(2)
	for p := int64(0); p < 64; p++ {
		s = s.UnionRect(rect2(0, 127, p*2, p*2+1))
	}
	if len(s.Rects()) != 1 {
		t.Fatalf("64 slabs coalesced into %d rects: %v", len(s.Rects()), s)
	}
	if s.Approx() {
		t.Error("coalesced union marked approx")
	}
	if !s.EqualPoints(Of(2, rect2(0, 127, 0, 127))) {
		t.Error("coalesced union wrong")
	}
}

func TestUnionCoalescesOutOfOrder(t *testing.T) {
	s := Of(1, NewRect([]int64{0}, []int64{4}), NewRect([]int64{10}, []int64{14}))
	s = s.UnionRect(NewRect([]int64{5}, []int64{9})) // bridges the gap
	if len(s.Rects()) != 1 {
		t.Fatalf("bridge not coalesced: %v", s)
	}
}
