package locality

import (
	"testing"

	"repro/internal/ir"
)

const lineWords = 4

func mk2D(name string, rows, cols int64, base int64) *ir.Array {
	return &ir.Array{Name: name, Dims: []int64{rows, cols}, Base: base}
}

func TestAddrExpr(t *testing.T) {
	a := mk2D("A", 10, 10, 400)
	r := ir.At(a, ir.I("i"), ir.I("j").AddConst(2))
	addr, ok := AddrExpr(r)
	if !ok {
		t.Fatal("no address for array ref")
	}
	// 400 + i + 10*(j+2) = i + 10j + 420
	if addr.Coef("i") != 1 || addr.Coef("j") != 10 || addr.ConstPart() != 420 {
		t.Errorf("AddrExpr = %v", addr)
	}
	if _, ok := AddrExpr(ir.S("x")); ok {
		t.Error("scalar has an address")
	}
}

func TestGroupSpatialGroupsNeighbors(t *testing.T) {
	a := mk2D("A", 100, 100, 0)
	// x(i,j), x(i+1,j), x(i-1,j): offsets -1,0,1 within a line.
	r0 := ir.At(a, ir.I("i"), ir.I("j"))
	rp := ir.At(a, ir.I("i").AddConst(1), ir.I("j"))
	rm := ir.At(a, ir.I("i").AddConst(-1), ir.I("j"))
	groups := GroupSpatial([]*ir.Ref{r0, rp, rm}, "i", lineWords)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1: %+v", len(groups), groups)
	}
	g := groups[0]
	if len(g.Members) != 3 {
		t.Fatalf("group size %d", len(g.Members))
	}
	// Ascending i traversal: leader is the largest offset = x(i+1,j).
	if g.Leader != rp {
		t.Errorf("leader = %v, want %v", g.Leader, rp)
	}
	if g.SpanWords() != 3 {
		t.Errorf("span = %d", g.SpanWords())
	}
}

func TestGroupSpatialColumnNeighborsNotGrouped(t *testing.T) {
	a := mk2D("A", 100, 100, 0)
	// x(i,j) and x(i,j+1): offset 100 words — different lines.
	r0 := ir.At(a, ir.I("i"), ir.I("j"))
	r1 := ir.At(a, ir.I("i"), ir.I("j").AddConst(1))
	groups := GroupSpatial([]*ir.Ref{r0, r1}, "i", lineWords)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	for _, g := range groups {
		if len(g.Members) != 1 || g.Leader != g.Members[0] {
			t.Errorf("singleton group malformed: %+v", g)
		}
	}
}

func TestGroupSpatialNotUniformlyGenerated(t *testing.T) {
	a := mk2D("A", 100, 100, 0)
	// x(i,j) and x(j,i) are not uniformly generated.
	r0 := ir.At(a, ir.I("i"), ir.I("j"))
	r1 := ir.At(a, ir.I("j"), ir.I("i"))
	groups := GroupSpatial([]*ir.Ref{r0, r1}, "i", lineWords)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
}

func TestGroupSpatialDifferentArrays(t *testing.T) {
	a := mk2D("A", 100, 100, 0)
	c := mk2D("C", 100, 100, 10000)
	r0 := ir.At(a, ir.I("i"), ir.I("j"))
	r1 := ir.At(c, ir.I("i"), ir.I("j"))
	groups := GroupSpatial([]*ir.Ref{r0, r1}, "i", lineWords)
	if len(groups) != 2 {
		t.Fatalf("different arrays grouped together")
	}
}

func TestGroupSpatialDescendingDirection(t *testing.T) {
	a := mk2D("A", 100, 100, 0)
	// Address coefficient of i is negative: descending traversal; leader is
	// the lowest offset.
	r0 := ir.At(a, ir.I("i").Neg().AddConst(50), ir.K(0))
	r1 := ir.At(a, ir.I("i").Neg().AddConst(51), ir.K(0))
	groups := GroupSpatial([]*ir.Ref{r0, r1}, "i", lineWords)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	if groups[0].Leader != r0 {
		t.Errorf("descending leader should be the lowest address ref")
	}
}

func TestGroupSpatialGapSplit(t *testing.T) {
	a := mk2D("A", 1000, 1, 0)
	// Offsets 0,1, then 8,9: two groups split by the >= lineWords gap.
	refs := []*ir.Ref{
		ir.At(a, ir.I("i"), ir.K(0)),
		ir.At(a, ir.I("i").AddConst(1), ir.K(0)),
		ir.At(a, ir.I("i").AddConst(8), ir.K(0)),
		ir.At(a, ir.I("i").AddConst(9), ir.K(0)),
	}
	groups := GroupSpatial(refs, "i", lineWords)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	for _, g := range groups {
		if len(g.Members) != 2 {
			t.Errorf("group size %d, want 2", len(g.Members))
		}
	}
}

func TestGroupSpatialIgnoresScalars(t *testing.T) {
	a := mk2D("A", 10, 10, 0)
	groups := GroupSpatial([]*ir.Ref{ir.S("x"), ir.At(a, ir.K(0), ir.K(0))}, "", lineWords)
	if len(groups) != 1 || len(groups[0].Members) != 1 {
		t.Fatalf("scalars not ignored: %+v", groups)
	}
}

func TestInnermostVar(t *testing.T) {
	a := mk2D("A", 100, 100, 0)
	r := ir.At(a, ir.I("i"), ir.I("j"))
	if got := InnermostVar(r, []string{"j", "i"}); got != "i" {
		t.Errorf("InnermostVar = %q, want i (stride 1)", got)
	}
	rc := ir.At(a, ir.K(3), ir.K(4))
	if got := InnermostVar(rc, []string{"i", "j"}); got != "" {
		t.Errorf("constant ref InnermostVar = %q", got)
	}
}
