// Package locality implements the reuse analysis of paper §4.2: detecting
// group-spatial locality among uniformly generated references and selecting
// the leading reference of each group.
//
// Two references are uniformly generated when their word-address
// expressions (base + Σ subscript·stride, arrays cache-line aligned) differ
// only in the constant term. A group of uniformly generated references
// whose constant offsets fall within one cache line exhibits group-spatial
// locality: prefetching the leading reference brings the line that serves
// the whole group, and the rest are issued as normal reads.
package locality

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/ir"
)

// AddrExpr returns the symbolic word-address expression of an array
// reference: Base + Σ Index[d]·DimStride(d). Scalar references have no
// address; ok is false.
func AddrExpr(r *ir.Ref) (expr.Affine, bool) {
	if r.IsScalar() {
		return expr.Affine{}, false
	}
	a := expr.Const(r.Array.Base)
	for d, ix := range r.Index {
		a = a.Add(ix.Scale(r.Array.DimStride(d)))
	}
	return a, true
}

// Group is one group-spatial equivalence class.
type Group struct {
	// Members are the references of the group in ascending address-offset
	// order.
	Members []*ir.Ref
	// Offsets[i] is Members[i]'s constant address offset relative to
	// Members[0].
	Offsets []int64
	// Leader is the member whose prefetch covers the group: the reference
	// that touches a new cache line first in the direction of traversal.
	Leader *ir.Ref
}

// SpanWords returns the address span of the group in words.
func (g *Group) SpanWords() int64 {
	if len(g.Offsets) == 0 {
		return 0
	}
	return g.Offsets[len(g.Offsets)-1] - g.Offsets[0] + 1
}

// GroupSpatial partitions refs into group-spatial classes. innerVar is the
// innermost loop's induction variable ("" for a serial code segment); its
// coefficient in the address expression determines the traversal direction
// and hence the leading reference. lineWords is the cache line size in
// words. References whose mutual constant offset is at least a full line
// are NOT grouped (they touch disjoint lines).
//
// Refs that are scalars are ignored. The result covers every array ref in
// refs exactly once (singleton groups for ungrouped refs).
func GroupSpatial(refs []*ir.Ref, innerVar string, lineWords int64) []*Group {
	var entries []addrEntry
	for _, r := range refs {
		a, ok := AddrExpr(r)
		if !ok {
			continue
		}
		entries = append(entries, addrEntry{ref: r, addr: a})
	}

	used := make([]bool, len(entries))
	var groups []*Group
	for i := range entries {
		if used[i] {
			continue
		}
		members := []addrEntry{entries[i]}
		used[i] = true
		for j := i + 1; j < len(entries); j++ {
			if used[j] {
				continue
			}
			// Uniformly generated with the current group's representative?
			if _, ok := entries[j].addr.DiffersOnlyInConst(entries[i].addr); ok {
				members = append(members, entries[j])
				used[j] = true
			}
		}
		groups = append(groups, splitByLine(members, innerVar, lineWords)...)
	}
	return groups

}

type addrEntry struct {
	ref  *ir.Ref
	addr expr.Affine
}

type memberEntry struct {
	ref    *ir.Ref
	offset int64
}

// splitByLine orders a uniformly generated set by constant offset and cuts
// it into runs whose consecutive gaps are smaller than a cache line; each
// run is one group-spatial class.
func splitByLine(members []addrEntry, innerVar string, lineWords int64) []*Group {
	base := members[0].addr
	es := make([]memberEntry, len(members))
	for i, m := range members {
		d, _ := m.addr.DiffersOnlyInConst(base)
		es[i] = memberEntry{ref: m.ref, offset: d}
	}
	sort.SliceStable(es, func(i, j int) bool { return es[i].offset < es[j].offset })

	dir := int64(1)
	if innerVar != "" {
		if c := base.Coef(innerVar); c < 0 {
			dir = -1
		}
	}

	var groups []*Group
	start := 0
	flush := func(end int) {
		run := es[start:end]
		g := &Group{}
		for _, e := range run {
			g.Members = append(g.Members, e.ref)
			g.Offsets = append(g.Offsets, e.offset-run[0].offset)
		}
		// Leading reference: touches a new line first in traversal
		// direction — the highest address for ascending traversal, the
		// lowest for descending.
		if dir > 0 {
			g.Leader = run[len(run)-1].ref
		} else {
			g.Leader = run[0].ref
		}
		groups = append(groups, g)
		start = end
	}
	for i := 1; i < len(es); i++ {
		if es[i].offset-es[i-1].offset >= lineWords {
			flush(i)
		}
	}
	flush(len(es))
	return groups
}

// InnermostVar returns the induction variable whose coefficient in the
// reference's address expression is the contiguous (smallest-stride)
// direction, preferring the given candidate loop variables innermost-first;
// returns "" when the address doesn't vary with any of them. Used by
// diagnostics and tests.
func InnermostVar(r *ir.Ref, candidates []string) string {
	a, ok := AddrExpr(r)
	if !ok {
		return ""
	}
	best := ""
	var bestCoef int64
	for _, v := range candidates {
		c := a.Coef(v)
		if c == 0 {
			continue
		}
		if c < 0 {
			c = -c
		}
		if best == "" || c < bestCoef {
			best, bestCoef = v, c
		}
	}
	return best
}
