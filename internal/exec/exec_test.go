package exec

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/trace"
)

// stencilProg builds a 1-D Jacobi-like program with genuine cross-PE halo
// traffic: init A, then NT smoothing steps alternating A->T->A.
func stencilProg(n, nt int64) *ir.Program {
	b := ir.NewBuilder("stencil1d")
	a := b.SharedArray("A", n)
	tm := b.SharedArray("T", n)
	b.Routine("main",
		// Quadratic initial data: smoothing genuinely changes values every
		// step (linear data is a fixed point of the stencil).
		ir.DoAll("i0", ir.K(0), ir.K(n-1),
			ir.Set(ir.At(a, ir.I("i0")), ir.Mul(ir.IV(ir.I("i0")), ir.IV(ir.I("i0"))))),
		ir.DoSerial("t", ir.K(1), ir.K(nt),
			ir.DoAll("i", ir.K(1), ir.K(n-2),
				ir.Set(ir.At(tm, ir.I("i")),
					ir.Mul(ir.N(0.5),
						ir.Add(ir.L(ir.At(a, ir.I("i").AddConst(-1))),
							ir.L(ir.At(a, ir.I("i").AddConst(1))))))),
			ir.DoAll("j", ir.K(1), ir.K(n-2),
				ir.Set(ir.At(a, ir.I("j")), ir.L(ir.At(tm, ir.I("j"))))),
		),
	)
	return b.Build()
}

func run(t *testing.T, prog *ir.Program, mode core.Mode, numPE int, opts Options) *Result {
	t.Helper()
	c, err := core.Compile(prog, mode, machine.T3D(numPE))
	if err != nil {
		t.Fatalf("%v compile: %v", mode, err)
	}
	res, err := Run(c, opts)
	if err != nil {
		t.Fatalf("%v run: %v", mode, err)
	}
	return res
}

func arraysEqual(t *testing.T, prog *ir.Program, a, b *Result, name string) bool {
	t.Helper()
	arr := prog.ArrayByName(name)
	da := a.Mem.ArrayData(arr)
	db := b.Mem.ArrayData(arr)
	for i := range da {
		if da[i] != db[i] {
			t.Logf("array %s differs at %d: %v vs %v", name, i, da[i], db[i])
			return false
		}
	}
	return true
}

func TestSeqComputesCorrectValues(t *testing.T) {
	prog := stencilProg(16, 2)
	res := run(t, prog, core.ModeSeq, 1, Options{FailOnStale: true})
	// Hand-compute: A initialized to i², two smoothing steps.
	a := make([]float64, 16)
	tm := make([]float64, 16)
	for i := range a {
		a[i] = float64(i) * float64(i)
	}
	for step := 0; step < 2; step++ {
		for i := 1; i <= 14; i++ {
			tm[i] = 0.5 * (a[i-1] + a[i+1])
		}
		for i := 1; i <= 14; i++ {
			a[i] = tm[i]
		}
	}
	got := res.Mem.ArrayData(prog.ArrayByName("A"))
	for i := range a {
		if got[i] != a[i] {
			t.Fatalf("A[%d] = %v, want %v", i, got[i], a[i])
		}
	}
	if res.Stats.StaleValueReads != 0 {
		t.Errorf("SEQ stale reads = %d", res.Stats.StaleValueReads)
	}
}

func TestBaseMatchesSeqAndNeverCachesShared(t *testing.T) {
	prog := stencilProg(64, 3)
	seq := run(t, prog, core.ModeSeq, 1, Options{FailOnStale: true})
	base := run(t, prog, core.ModeBase, 4, Options{FailOnStale: true, DetectRaces: true})
	if !arraysEqual(t, prog, seq, base, "A") {
		t.Error("BASE results differ from sequential")
	}
	if base.Stats.NonCachedRefs == 0 {
		t.Error("BASE made no CRAFT shared accesses")
	}
	if base.Stats.Hits != 0 {
		t.Errorf("BASE hit the cache %d times on an all-shared program", base.Stats.Hits)
	}
}

func TestCCDPMatchesSeqWithZeroStaleReads(t *testing.T) {
	prog := stencilProg(64, 3)
	seq := run(t, prog, core.ModeSeq, 1, Options{FailOnStale: true})
	ccdp := run(t, prog, core.ModeCCDP, 4, Options{FailOnStale: true, DetectRaces: true})
	if !arraysEqual(t, prog, seq, ccdp, "A") {
		t.Error("CCDP results differ from sequential")
	}
	if ccdp.Stats.StaleValueReads != 0 {
		t.Errorf("CCDP stale reads = %d", ccdp.Stats.StaleValueReads)
	}
	if ccdp.Stats.Hits == 0 {
		t.Error("CCDP never hit the cache")
	}
	if ccdp.Stats.InvalidatedLines == 0 {
		t.Error("CCDP never invalidated (halo regions are dirty)")
	}
}

func TestIncoherentModeProducesStaleReads(t *testing.T) {
	prog := stencilProg(64, 3)
	seq := run(t, prog, core.ModeSeq, 1, Options{})
	inc := run(t, prog, core.ModeIncoherent, 4, Options{})
	if inc.Stats.StaleValueReads == 0 {
		t.Fatal("incoherent caching produced no stale reads — checker broken or workload too tame")
	}
	if arraysEqual(t, prog, seq, inc, "A") {
		t.Error("incoherent run produced correct values despite stale reads")
	}
}

func TestCCDPFasterThanBaseOnRemoteHeavyCode(t *testing.T) {
	// All PEs repeatedly read one remote-owned block: BASE pays the full
	// remote latency per access, CCDP vector-prefetches it.
	b := ir.NewBuilder("remoteheavy")
	a := b.SharedArray("A", 1024)
	c := b.SharedArray("C", 1024)
	b.Routine("main",
		ir.DoAll("w", ir.K(0), ir.K(1023), ir.Set(ir.At(a, ir.I("w")), ir.IV(ir.I("w")))),
		ir.DoSerial("rep", ir.K(1), ir.K(4),
			ir.DoAll("j", ir.K(0), ir.K(1023),
				ir.Set(ir.At(c, ir.I("j")), ir.L(ir.At(a, ir.I("j").Neg().AddConst(1023)))))),
	)
	prog := b.Build()
	seq := run(t, prog, core.ModeSeq, 1, Options{FailOnStale: true})
	base := run(t, prog, core.ModeBase, 8, Options{FailOnStale: true})
	ccdp := run(t, prog, core.ModeCCDP, 8, Options{FailOnStale: true, DetectRaces: true})
	if !arraysEqual(t, prog, seq, ccdp, "C") || !arraysEqual(t, prog, seq, base, "C") {
		t.Fatal("values diverged")
	}
	if ccdp.Cycles >= base.Cycles {
		t.Errorf("CCDP (%d cycles) not faster than BASE (%d cycles)", ccdp.Cycles, base.Cycles)
	}
	if ccdp.Stats.VectorPrefetches == 0 && ccdp.Stats.PrefetchIssued == 0 {
		t.Error("CCDP issued no prefetches")
	}
}

func TestSoftwarePipelinedPrefetchesConsumed(t *testing.T) {
	// Serial inner loop over a large remote region inside a 1-iteration
	// DOALL forces SP (vector too big), and its prefetches must be used.
	b := ir.NewBuilder("sp")
	a := b.SharedArray("A", 4096)
	c := b.SharedArray("C", 4096)
	b.Routine("main",
		ir.DoAll("w", ir.K(0), ir.K(4095), ir.Set(ir.At(a, ir.I("w")), ir.IV(ir.I("w")))),
		ir.DoAll("j", ir.K(0), ir.K(0),
			ir.DoSerial("i", ir.K(0), ir.K(4095),
				ir.Set(ir.At(c, ir.I("i")), ir.L(ir.At(a, ir.I("i").Neg().AddConst(4095)))))),
	)
	prog := b.Build()
	ccdp := run(t, prog, core.ModeCCDP, 2, Options{FailOnStale: true})
	if ccdp.Stats.PrefetchIssued == 0 {
		t.Fatal("no pipelined prefetches issued")
	}
	if ccdp.Stats.PrefetchConsumed == 0 {
		t.Error("pipelined prefetches never consumed")
	}
	if ccdp.Stats.PrefetchConsumed < ccdp.Stats.PrefetchIssued/2 {
		t.Errorf("only %d of %d prefetches consumed", ccdp.Stats.PrefetchConsumed, ccdp.Stats.PrefetchIssued)
	}
}

func TestDynamicSchedulingDeterministicAndCorrect(t *testing.T) {
	b := ir.NewBuilder("dyn")
	a := b.SharedArray("A", 256)
	c := b.SharedArray("C", 256)
	b.Routine("main",
		ir.DoAll("w", ir.K(0), ir.K(255), ir.Set(ir.At(a, ir.I("w")), ir.IV(ir.I("w")))),
		ir.DoAllDynamic("i", ir.K(0), ir.K(255),
			ir.Set(ir.At(c, ir.I("i")), ir.L(ir.At(a, ir.I("i"))))),
	)
	prog := b.Build()
	seq := run(t, prog, core.ModeSeq, 1, Options{})
	r1 := run(t, prog, core.ModeCCDP, 4, Options{FailOnStale: true})
	r2 := run(t, prog, core.ModeCCDP, 4, Options{FailOnStale: true})
	if !arraysEqual(t, prog, seq, r1, "C") {
		t.Error("dynamic scheduling wrong values")
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("nondeterministic cycles: %d vs %d", r1.Cycles, r2.Cycles)
	}
}

func TestRaceDetectionCatchesModelViolation(t *testing.T) {
	// Every PE writes A(0): write-write conflict inside one epoch.
	b := ir.NewBuilder("racy")
	a := b.SharedArray("A", 64)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.K(0)), ir.IV(ir.I("i")))),
	)
	prog := b.Build()
	c, err := core.Compile(prog, core.ModeBase, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, Options{DetectRaces: true}); err == nil {
		t.Error("write-write race not detected")
	}
}

func TestScalarBroadcastAfterSerialEpoch(t *testing.T) {
	// Serial epoch computes s; parallel epoch uses it on every PE.
	b := ir.NewBuilder("scalar")
	a := b.SharedArray("A", 64)
	b.Routine("main",
		ir.Set(ir.S("s"), ir.N(2.5)),
		ir.DoAll("i", ir.K(0), ir.K(63),
			ir.Set(ir.At(a, ir.I("i")), ir.Mul(ir.L(ir.S("s")), ir.IV(ir.I("i"))))),
	)
	prog := b.Build()
	res := run(t, prog, core.ModeBase, 4, Options{FailOnStale: true})
	got := res.Mem.ArrayData(prog.ArrayByName("A"))
	for i := range got {
		if got[i] != 2.5*float64(i) {
			t.Fatalf("A[%d] = %v, want %v (scalar broadcast broken)", i, got[i], 2.5*float64(i))
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	prog := stencilProg(64, 1)
	res := run(t, prog, core.ModeCCDP, 4, Options{})
	for p, c := range res.PECycles {
		if c != res.PECycles[0] {
			t.Errorf("PE %d clock %d differs from PE 0's %d after final barrier", p, c, res.PECycles[0])
		}
	}
	if res.Stats.Barriers == 0 {
		t.Error("no barriers counted")
	}
}

func TestSpeedupScalesWithPEs(t *testing.T) {
	prog := stencilProg(2048, 4)
	seq := run(t, prog, core.ModeSeq, 1, Options{})
	c2 := run(t, prog, core.ModeCCDP, 2, Options{})
	c8 := run(t, prog, core.ModeCCDP, 8, Options{})
	if !(c8.Cycles < c2.Cycles && c2.Cycles < seq.Cycles) {
		t.Errorf("no scaling: seq=%d P2=%d P8=%d", seq.Cycles, c2.Cycles, c8.Cycles)
	}
}

func TestTraceCapturesReferenceStream(t *testing.T) {
	prog := stencilProg(64, 2)
	c, err := core.Compile(prog, core.ModeCCDP, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(4)
	res, err := Run(c, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	counts := tr.KindCounts()
	if int64(counts[trace.KindHit]) != res.Stats.Hits {
		t.Errorf("trace hits %d != stats hits %d", counts[trace.KindHit], res.Stats.Hits)
	}
	if int64(counts[trace.KindWrite]) != res.Stats.LocalWrites+res.Stats.RemoteWrites {
		t.Errorf("trace writes %d != stats writes %d",
			counts[trace.KindWrite], res.Stats.LocalWrites+res.Stats.RemoteWrites)
	}
	if int64(counts[trace.KindRegister]) != res.Stats.RegisterHits {
		t.Errorf("trace register hits %d != stats %d", counts[trace.KindRegister], res.Stats.RegisterHits)
	}
	// Reuse-distance analysis runs and predicts a plausible hit ratio.
	hist, cold := tr.ReuseDistances(0, c.Machine.LineWords)
	ratio := trace.HitRatioForCache(hist, cold, int(c.Machine.CacheLines()))
	if ratio <= 0 || ratio > 1 {
		t.Errorf("predicted hit ratio %v out of range", ratio)
	}
}

func TestTraceWrongPECountRejected(t *testing.T) {
	prog := stencilProg(32, 1)
	c, err := core.Compile(prog, core.ModeSeq, machine.T3D(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, Options{Trace: trace.New(3)}); err == nil {
		t.Error("mismatched trace accepted")
	}
}

func TestOutOfBoundsSubscriptIsAnError(t *testing.T) {
	b := ir.NewBuilder("oob")
	a := b.SharedArray("A", 8)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(15), // runs past the array
			ir.Set(ir.At(a, ir.I("i")), ir.N(1))),
	)
	prog := b.Build()
	c, err := core.Compile(prog, core.ModeSeq, machine.T3D(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, Options{}); err == nil {
		t.Error("out-of-bounds subscript not reported")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestEmptyLoopRangesRunCleanly(t *testing.T) {
	b := ir.NewBuilder("empty")
	a := b.SharedArray("A", 8)
	b.Routine("main",
		ir.DoAll("i", ir.K(5), ir.K(2), ir.Set(ir.At(a, ir.I("i")), ir.N(1))),
		ir.DoSerial("j", ir.K(3), ir.K(1), ir.Set(ir.At(a, ir.I("j")), ir.N(2))),
		ir.Set(ir.At(a, ir.K(0)), ir.N(9)),
	)
	prog := b.Build()
	res := run(t, prog, core.ModeCCDP, 4, Options{FailOnStale: true})
	if got := res.Mem.ArrayData(prog.ArrayByName("A"))[0]; got != 9 {
		t.Errorf("A[0] = %v", got)
	}
}

func TestFailOnStaleStopsIncoherentRun(t *testing.T) {
	prog := stencilProg(64, 3)
	c, err := core.Compile(prog, core.ModeIncoherent, machine.T3D(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, Options{FailOnStale: true}); err == nil {
		t.Error("FailOnStale did not stop an incoherent run")
	}
}

func TestMorePEsThanIterations(t *testing.T) {
	b := ir.NewBuilder("tiny")
	a := b.SharedArray("A", 4)
	b.Routine("main",
		ir.DoAll("i", ir.K(0), ir.K(3), ir.Set(ir.At(a, ir.I("i")), ir.IV(ir.I("i")))),
	)
	prog := b.Build()
	res := run(t, prog, core.ModeCCDP, 16, Options{FailOnStale: true, DetectRaces: true})
	data := res.Mem.ArrayData(prog.ArrayByName("A"))
	for i := range data {
		if data[i] != float64(i) {
			t.Errorf("A[%d] = %v", i, data[i])
		}
	}
}
