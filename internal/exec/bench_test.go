package exec_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/workloads"
)

// Engine hot-path micro-benchmarks: compile once, measure ONLY the
// interpreter inner loop (exec.Run). These are the numbers the engine
// overhaul is pinned against — see BENCH_baseline.json and the
// "Engine performance" section of DESIGN.md. ReportAllocs makes the
// per-simulated-access allocation behaviour part of the regression surface.

func benchEngine(b *testing.B, spec *workloads.Spec, mode core.Mode, pes int) {
	b.Helper()
	c, err := core.Compile(spec.Prog, mode, machine.T3D(pes))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		r, err := exec.Run(c, exec.Options{FailOnStale: true})
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func BenchmarkEngineHotPathMXMSeq(b *testing.B) {
	benchEngine(b, workloads.MXM(64, 32, 16), core.ModeSeq, 1)
}

func BenchmarkEngineHotPathMXMCCDP(b *testing.B) {
	benchEngine(b, workloads.MXM(64, 32, 16), core.ModeCCDP, 8)
}

func BenchmarkEngineHotPathTOMCATVCCDP(b *testing.B) {
	benchEngine(b, workloads.TOMCATV(65, 2), core.ModeCCDP, 8)
}

func BenchmarkEngineHotPathSWIMBase(b *testing.B) {
	benchEngine(b, workloads.SWIM(65, 2), core.ModeBase, 8)
}

func benchEngineTorus(b *testing.B, spec *workloads.Spec, mode core.Mode, pes int) {
	b.Helper()
	mp := machine.T3D(pes)
	topo, err := noc.Parse("torus")
	if err != nil {
		b.Fatal(err)
	}
	mp.Topology = topo
	c, err := core.Compile(spec.Prog, mode, mp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		r, err := exec.Run(c, exec.Options{FailOnStale: true})
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func BenchmarkEngineHotPathVPENTATorus(b *testing.B) {
	benchEngineTorus(b, workloads.VPENTA(64, 2), core.ModeCCDP, 8)
}

func BenchmarkEngineHotPathSWIMTorus64(b *testing.B) {
	benchEngineTorus(b, workloads.SWIM(65, 2), core.ModeCCDP, 64)
}

// BenchmarkEngineHotPathVPENTATorusReuse measures the steady state the
// Engine split exists for: one Engine built once, Run per iteration. The
// allocs/op of this benchmark is the engine's per-run allocation floor.
func BenchmarkEngineHotPathVPENTATorusReuse(b *testing.B) {
	spec := workloads.VPENTA(64, 2)
	mp := machine.T3D(8)
	topo, err := noc.Parse("torus")
	if err != nil {
		b.Fatal(err)
	}
	mp.Topology = topo
	c, err := core.Compile(spec.Prog, core.ModeCCDP, mp)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := exec.New(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		r, err := eng.Run(exec.Options{FailOnStale: true})
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// The coherence-arena hot paths: the same SWIM sharing workload under
// each hardware directory organization (flat full map; torus full map,
// Dir_1_B and sparse at 8 PEs; full map at the 64-PE torus where the
// SWIMTorus64 CCDP point already lives). HW epochs run their PEs
// sequentially by construction, so these pin the directory protocol's
// single-thread cost next to CCDP's.

func BenchmarkEngineHotPathSWIMHWDir(b *testing.B) {
	benchEngine(b, workloads.SWIM(65, 2), core.ModeHWDir, 8)
}

func BenchmarkEngineHotPathSWIMTorusHWDir(b *testing.B) {
	benchEngineTorus(b, workloads.SWIM(65, 2), core.ModeHWDir, 8)
}

func BenchmarkEngineHotPathSWIMTorusHWDirLP(b *testing.B) {
	benchEngineTorus(b, workloads.SWIM(65, 2), core.ModeHWDirLP, 8)
}

func BenchmarkEngineHotPathSWIMTorusHWDirSparse(b *testing.B) {
	benchEngineTorus(b, workloads.SWIM(65, 2), core.ModeHWDirSparse, 8)
}

func BenchmarkEngineHotPathSWIMTorus64HWDir(b *testing.B) {
	benchEngineTorus(b, workloads.SWIM(65, 2), core.ModeHWDir, 64)
}
