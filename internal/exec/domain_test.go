package exec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workloads"
)

func runProfile(t *testing.T, spec *workloads.Spec, mode core.Mode, mp machine.Params) *Result {
	t.Helper()
	c, err := core.Compile(spec.Prog, mode, mp)
	if err != nil {
		t.Fatalf("%s %v compile: %v", spec.Name, mode, err)
	}
	res, err := Run(c, Options{FailOnStale: true})
	if err != nil {
		t.Fatalf("%s %v run: %v", spec.Name, mode, err)
	}
	return res
}

// cxl-pcc with the domain size overridden to 1 must be bit-identical to
// t3d: its near tier, hardware invalidation and prefetch skipping all gate
// on multi-PE domains, and its other latency constants are the T3D's. This
// is the executable form of the "domain size 1 reproduces the blind
// analysis" property.
func TestCxlPccDomainSizeOneMatchesT3D(t *testing.T) {
	for _, spec := range workloads.Small() {
		for _, mode := range []core.Mode{core.ModeBase, core.ModeCCDP} {
			t3d := runProfile(t, spec, mode, machine.T3D(8))
			cxl := machine.MustProfileParams("cxl-pcc", 8)
			cxl.DomainSize = 1
			got := runProfile(t, spec, mode, cxl)
			if got.Cycles != t3d.Cycles {
				t.Errorf("%s %v: cxl-pcc D=1 %d cycles, t3d %d", spec.Name, mode, got.Cycles, t3d.Cycles)
			}
			if got.Stats != t3d.Stats {
				t.Errorf("%s %v: cxl-pcc D=1 stats differ from t3d:\n%s\nvs\n%s",
					spec.Name, mode, got.Stats.String(), t3d.Stats.String())
			}
		}
	}
}

// Every profile runs every workload oracle-clean with results identical to
// the sequential run, and the domained cxl-pcc machine must schedule fewer
// prefetch words and software-invalidate fewer lines than t3d on the
// workloads with cross-PE stale traffic (the intra-domain share moves to
// the free hardware tier) — the PR's acceptance criterion, enforced here at
// 8 PEs on MXM, SWIM and TOMCATV.
func TestDomainProfilesVerifiedAndCheaper(t *testing.T) {
	for _, spec := range workloads.Small() {
		seq := runProfile(t, spec, core.ModeSeq, machine.T3D(1))
		t3d := runProfile(t, spec, core.ModeCCDP, machine.T3D(8))
		for _, prof := range []string{"cxl-pcc", "pim"} {
			got := runProfile(t, spec, core.ModeCCDP, machine.MustProfileParams(prof, 8))
			for _, name := range spec.CheckArrays {
				want := seq.Mem.ArrayData(seq.Mem.ArrayNamed(name))
				have := got.Mem.ArrayData(got.Mem.ArrayNamed(name))
				for i := range want {
					if want[i] != have[i] {
						t.Fatalf("%s %s: %s[%d] = %v, sequential %v", spec.Name, prof, name, i, have[i], want[i])
					}
				}
			}
			if got.Stats.OracleViolations != 0 {
				t.Errorf("%s %s: %d oracle violations", spec.Name, prof, got.Stats.OracleViolations)
			}
			if prof != "cxl-pcc" || spec.Name == "VPENTA" {
				continue // VPENTA has no stale references to demote
			}
			gotPF := got.Stats.PrefetchIssued + got.Stats.VectorWords
			t3dPF := t3d.Stats.PrefetchIssued + t3d.Stats.VectorWords
			if gotPF >= t3dPF {
				t.Errorf("%s: cxl-pcc schedules %d prefetch words, t3d %d — domains bought nothing",
					spec.Name, gotPF, t3dPF)
			}
			if got.Stats.InvalidatedLines >= t3d.Stats.InvalidatedLines {
				t.Errorf("%s: cxl-pcc invalidates %d lines, t3d %d — domains bought nothing",
					spec.Name, got.Stats.InvalidatedLines, t3d.Stats.InvalidatedLines)
			}
			if got.Stats.DomainNearWords == 0 {
				t.Errorf("%s: cxl-pcc booked no near-tier words", spec.Name)
			}
		}
	}
}

// The t3d profile books zero domain counters and prints no domain line —
// the property that keeps every existing golden byte-identical.
func TestT3DBooksNoDomainCounters(t *testing.T) {
	for _, spec := range workloads.Small() {
		res := runProfile(t, spec, core.ModeCCDP, machine.T3D(8))
		s := &res.Stats
		if s.DomainNearWords != 0 || s.DomainFarWords != 0 || s.DomainHWInvalidations != 0 {
			t.Errorf("%s: t3d booked domain counters: near=%d far=%d hw=%d",
				spec.Name, s.DomainNearWords, s.DomainFarWords, s.DomainHWInvalidations)
		}
	}
}

// pim charges its batched coherence settlement once per barrier: its cycle
// count must exceed an otherwise-identical machine's by at least
// barriers × DomainBatchCost (the local/remote cost shifts move it
// further).
func TestPimBatchCostCharged(t *testing.T) {
	spec := workloads.Small()[0]
	pim := machine.MustProfileParams("pim", 8)
	base := pim
	base.DomainBatchCost = 0
	with := runProfile(t, spec, core.ModeCCDP, pim)
	without := runProfile(t, spec, core.ModeCCDP, base)
	wantExtra := with.Stats.Barriers * pim.DomainBatchCost
	if got := with.Cycles - without.Cycles; got != wantExtra {
		t.Errorf("batch settlement added %d cycles, want %d (%d barriers × %d)",
			got, wantExtra, with.Stats.Barriers, pim.DomainBatchCost)
	}
}
