package exec

import (
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/pfq"
	"repro/internal/shmem"
)

// spProg returns a program whose consumer loop is software-pipelined with
// single-word prefetches (the serial inner loop over a remote region is too
// irregular for a vector get), exercising the prefetch-queue fault paths.
func spProg() *ir.Program {
	b := ir.NewBuilder("spfault")
	a := b.SharedArray("A", 4096)
	c := b.SharedArray("C", 4096)
	b.Routine("main",
		ir.DoAll("w", ir.K(0), ir.K(4095), ir.Set(ir.At(a, ir.I("w")), ir.IV(ir.I("w")))),
		ir.DoAll("j", ir.K(0), ir.K(0),
			ir.DoSerial("i", ir.K(0), ir.K(4095),
				ir.Set(ir.At(c, ir.I("i")), ir.L(ir.At(a, ir.I("i").Neg().AddConst(4095)))))),
	)
	return b.Build()
}

func allKindsPlan(seed int64, rate float64) fault.Plan {
	return fault.Plan{Seed: seed, Rate: rate, Kinds: fault.AllKinds()}
}

func onlyKind(k fault.Kind, seed int64, rate float64) fault.Plan {
	return fault.Plan{Seed: seed, Rate: rate, Kinds: []fault.Kind{k}}
}

// A zero-rate plan must leave the machine bit-identical to a fault-free run.
func TestFaultRateZeroBitIdentical(t *testing.T) {
	prog := stencilProg(256, 4)
	ref := run(t, prog, core.ModeCCDP, 4, Options{})
	zero := run(t, prog, core.ModeCCDP, 4, Options{Fault: fault.Plan{}})
	// Rate 0 with kinds listed is still disabled.
	idle := run(t, prog, core.ModeCCDP, 4, Options{Fault: fault.Plan{Seed: 99, Kinds: fault.AllKinds()}})
	for _, r := range []*Result{zero, idle} {
		if r.Cycles != ref.Cycles {
			t.Errorf("cycles differ under disabled fault plan: %d vs %d", r.Cycles, ref.Cycles)
		}
		for p := range ref.PECycles {
			if r.PECycles[p] != ref.PECycles[p] {
				t.Errorf("PE %d cycles differ: %d vs %d", p, r.PECycles[p], ref.PECycles[p])
			}
		}
		if r.Stats.FaultsInjected() != 0 || r.Stats.Demotions != 0 {
			t.Errorf("disabled plan injected faults: %+v", r.Stats)
		}
	}
}

// Under every fault kind at once the run degrades but must stay correct:
// bit-identical results to sequential, zero oracle violations.
func TestFaultedRunStillCorrect(t *testing.T) {
	prog := stencilProg(256, 4)
	seq := run(t, prog, core.ModeSeq, 1, Options{})
	faulted := run(t, prog, core.ModeCCDP, 4, Options{FailOnStale: true, Fault: allKindsPlan(1, 0.05)})
	if !arraysEqual(t, prog, seq, faulted, "A") {
		t.Error("faulted CCDP run computed wrong values")
	}
	if faulted.Stats.FaultsInjected() == 0 {
		t.Error("no faults injected at rate 0.05")
	}
	if faulted.Stats.OracleViolations != 0 {
		t.Errorf("faults caused %d oracle violations; injected faults must degrade timing, not correctness",
			faulted.Stats.OracleViolations)
	}
	// Determinism: the same seed replays the same degraded execution.
	again := run(t, prog, core.ModeCCDP, 4, Options{FailOnStale: true, Fault: allKindsPlan(1, 0.05)})
	if again.Cycles != faulted.Cycles {
		t.Errorf("same seed, different cycles: %d vs %d", again.Cycles, faulted.Cycles)
	}
}

// Dropped prefetches must demote the consuming reads to bypass fetches
// (paper §3.2) and still produce correct results.
func TestDroppedPrefetchDemotes(t *testing.T) {
	prog := spProg()
	seq := run(t, prog, core.ModeSeq, 1, Options{})
	r := run(t, prog, core.ModeCCDP, 2, Options{FailOnStale: true, Fault: onlyKind(fault.KindDrop, 2, 1)})
	if r.Stats.FaultDrops == 0 {
		t.Fatal("drop-only plan at rate 1 dropped nothing")
	}
	if r.Stats.Demotions == 0 {
		t.Error("dropped prefetches never demoted to bypass fetches")
	}
	if r.Stats.OracleViolations != 0 {
		t.Errorf("%d oracle violations under dropped prefetches", r.Stats.OracleViolations)
	}
	if !arraysEqual(t, prog, seq, r, "C") {
		t.Error("wrong values after dropped-prefetch demotion")
	}
}

// Late prefetch arrivals stall the consuming read (counted as late) but the
// word consumed is still the correct, current one.
func TestLatePrefetchFallback(t *testing.T) {
	prog := spProg()
	seq := run(t, prog, core.ModeSeq, 1, Options{})
	free := run(t, prog, core.ModeCCDP, 2, Options{FailOnStale: true})
	late := run(t, prog, core.ModeCCDP, 2, Options{FailOnStale: true, Fault: onlyKind(fault.KindLate, 3, 1)})
	if late.Stats.FaultLate == 0 {
		t.Fatal("late-only plan at rate 1 delayed nothing")
	}
	if late.Stats.PrefetchLate <= free.Stats.PrefetchLate {
		t.Errorf("injected delays did not increase late prefetches: %d vs fault-free %d",
			late.Stats.PrefetchLate, free.Stats.PrefetchLate)
	}
	if late.Cycles <= free.Cycles {
		t.Errorf("late arrivals cost nothing: %d vs fault-free %d cycles", late.Cycles, free.Cycles)
	}
	if late.Stats.OracleViolations != 0 {
		t.Errorf("%d oracle violations under late arrivals", late.Stats.OracleViolations)
	}
	if !arraysEqual(t, prog, seq, late, "C") {
		t.Error("wrong values under late prefetch arrivals")
	}
}

// A full prefetch queue drops the incoming word (hardware behavior the
// scheduler budgets around but the fault model can still trigger); the
// dropped word's read must demote to a fresh demand fetch, not corrupt.
func TestPrefetchQueueOverflowDemotes(t *testing.T) {
	eng, pe := plantPE(t, Options{})
	pe.pq = pfq.New(1) // 1-word queue: the second issue must overflow
	arr := eng.c.Prog.ArrayByName("A")
	addr0 := mem.AddrOf(arr, []int64{0})
	addr1 := mem.AddrOf(arr, []int64{1})
	eng.mem.Write(addr0, 5.0)
	eng.mem.Write(addr1, 7.0)

	pe.issueAt(addr0)
	pe.issueAt(addr1)
	if pe.pq.Dropped != 1 {
		t.Fatalf("queue dropped %d words, want 1", pe.pq.Dropped)
	}

	ref0 := ir.At(arr, ir.K(0))
	ref0.Prefetched = true
	if v := pe.readMem(compileRef(t, eng, ref0), addr0); v != 5.0 {
		t.Errorf("queued word read %v, want 5.0", v)
	}
	if pe.pq.Consumed != 1 || pe.stats.Demotions != 0 {
		t.Errorf("surviving entry not consumed cleanly: consumed=%d demotions=%d",
			pe.pq.Consumed, pe.stats.Demotions)
	}

	ref1 := ir.At(arr, ir.K(1))
	ref1.Prefetched = true
	if v := pe.readMem(compileRef(t, eng, ref1), addr1); v != 7.0 {
		t.Errorf("overflow-dropped word read %v, want the fresh 7.0", v)
	}
	if pe.stats.Demotions != 1 {
		t.Errorf("overflow-dropped read demoted %d times, want 1", pe.stats.Demotions)
	}
	if pe.stats.OracleViolations != 0 {
		t.Errorf("%d oracle violations after queue overflow", pe.stats.OracleViolations)
	}
}

// A prefetch queue too small for the pipelining depth must make the
// scheduler itself degrade (bypass-cache reads) rather than overflow at
// runtime — and the run stays correct.
func TestTinyQueueSchedulerDegradesGracefully(t *testing.T) {
	prog := spProg()
	seq := run(t, prog, core.ModeSeq, 1, Options{})
	mp := machine.T3D(2)
	mp.PrefetchQueueWords = 1 // below any useful pipelining depth
	c, err := core.Compile(prog, core.ModeCCDP, mp)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(c, Options{FailOnStale: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.PrefetchDropped != 0 {
		t.Errorf("scheduler let the queue overflow %d times", r.Stats.PrefetchDropped)
	}
	if r.Stats.BypassReads == 0 {
		t.Error("no bypass reads: expected targets demoted by the queue budget")
	}
	if !arraysEqual(t, prog, seq, r, "C") {
		t.Error("wrong values with a 1-word prefetch queue")
	}
}

// Exhausting the per-PE demotion budget must kill the run loudly, naming
// the cause, instead of degrading forever.
func TestDemotionBudgetExhaustedFailsLoudly(t *testing.T) {
	plan := onlyKind(fault.KindDrop, 2, 1)
	plan.MaxDemotions = 1
	c, err := core.Compile(spProg(), core.ModeCCDP, machine.T3D(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(c, Options{FailOnStale: true, Fault: plan})
	if err == nil {
		t.Fatal("run survived with a 1-demotion budget under rate-1 drops")
	}
	if !strings.Contains(err.Error(), "demotion budget exhausted") {
		t.Errorf("budget exhaustion not named in error: %v", err)
	}
}

// plantPE builds a single-PE engine by hand so tests can plant cache state
// directly and drive readMem against it.
func plantPE(t *testing.T, opts Options) (*Engine, *peState) {
	t.Helper()
	b := ir.NewBuilder("plant")
	a := b.SharedArray("A", 64)
	b.Routine("main", ir.DoSerial("i", ir.K(0), ir.K(63), ir.Set(ir.At(a, ir.I("i")), ir.N(0))))
	c, err := core.Compile(b.Build(), core.ModeCCDP, machine.T3D(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := opts.Fault.Validate(); err != nil {
		t.Fatal(err)
	}
	m := mem.New(c.Prog, 1, c.TotalWords)
	eng := &Engine{c: c, mem: m, opts: opts, inj: fault.NewInjector(opts.Fault, 1)}
	pe := &peState{
		id:            0,
		eng:           eng,
		cache:         cache.New(c.Machine.CacheWords, c.Machine.LineWords),
		pq:            pfq.New(c.Machine.PrefetchQueueWords),
		scalars:       make([]float64, c.Syms.NumScalars()),
		scalarWritten: make([]bool, c.Syms.NumScalars()),
		env:           make([]int64, c.Syms.NumVars()),
		bound:         make([]bool, c.Syms.NumVars()),
		buffered:      bitset.NewSparse(c.TotalWords/c.Machine.LineWords + 1),
		idxScratch:    make([]int64, 4),
		shScratch:     shmem.NewScratch(m, c.Machine),
	}
	if eng.inj != nil {
		pe.fault = eng.inj.PE(0)
	}
	eng.pes = []*peState{pe}
	return eng, pe
}

// compileRef lowers a hand-built reference the way Run's program lowering
// would, so tests can drive readMem directly.
func compileRef(t *testing.T, eng *Engine, r *ir.Ref) *cRef {
	t.Helper()
	cc := &compiler{prog: eng.c.Prog, syms: eng.c.Syms, routines: map[string]*[]cStmt{}}
	cr, err := cc.ref(r)
	if err != nil {
		t.Fatal(err)
	}
	return cr
}

// The oracle must catch a deliberately planted stale cache line the moment
// a fault-free coherent run consumes it.
func TestOracleCatchesPlantedStaleLine(t *testing.T) {
	eng, pe := plantPE(t, Options{FailOnStale: true})
	arr := eng.c.Prog.ArrayByName("A")
	addr := mem.AddrOf(arr, []int64{0})
	ref := ir.At(arr, ir.K(0))

	eng.mem.Write(addr, 1.0) // gen 1
	pe.installLine(addr, 0)  // cache now holds gen 1
	eng.mem.Write(addr, 2.0) // gen 2: the cached copy is stale

	v := pe.readMem(compileRef(t, eng, ref), addr)
	if v != 1.0 {
		t.Fatalf("planted stale hit returned %v, want the stale 1.0", v)
	}
	if pe.stats.OracleViolations != 1 || pe.stats.StaleValueReads != 1 {
		t.Errorf("oracle missed the planted line: %+v", pe.stats)
	}
	if len(eng.violations) != 1 {
		t.Fatalf("recorded %d violations, want 1", len(eng.violations))
	}
	viol := eng.violations[0]
	if viol.PE != 0 || viol.Addr != addr || viol.Array != "A" || viol.Gen != 1 || viol.MemGen != 2 {
		t.Errorf("violation fields wrong: %+v", viol)
	}
	if eng.staleErr == nil || !strings.Contains(eng.staleErr.Error(), "coherence violation") {
		t.Errorf("FailOnStale error missing or unnamed: %v", eng.staleErr)
	}
}

// With fault injection armed, the same planted stale line must instead be
// dropped and re-fetched fresh: degradation, not corruption.
func TestPlantedStaleLineDemotesUnderFaults(t *testing.T) {
	// Skew-only plan: arms the degraded-mode paths without any fault that
	// could itself touch this read.
	eng, pe := plantPE(t, Options{FailOnStale: true, Fault: onlyKind(fault.KindSkew, 1, 1)})
	arr := eng.c.Prog.ArrayByName("A")
	addr := mem.AddrOf(arr, []int64{0})
	ref := ir.At(arr, ir.K(0))

	eng.mem.Write(addr, 1.0)
	pe.installLine(addr, 0)
	eng.mem.Write(addr, 2.0)

	v := pe.readMem(compileRef(t, eng, ref), addr)
	if v != 2.0 {
		t.Fatalf("degraded read returned %v, want the fresh 2.0", v)
	}
	if pe.stats.Demotions != 1 {
		t.Errorf("stale hit under faults demoted %d times, want 1", pe.stats.Demotions)
	}
	if pe.stats.OracleViolations != 0 {
		t.Errorf("oracle violations in degraded mode: %d", pe.stats.OracleViolations)
	}
}
