package exec

import (
	"repro/internal/coherence"
	"repro/internal/coherence/prefetch"
	"repro/internal/trace"
)

// This file is the engine's hardware coherence layer — the HWDIR modes of
// the coherence arena. Shared data is cached like INCOHERENT, but a
// home-node directory (internal/coherence) tracks every copy and keeps
// them coherent with invalidations, recalls and writebacks; every protocol
// message is booked (over the torus when one is configured) and counted in
// the Coh* stats, so the arena table can split traffic into data vs
// coherence and hold the hardware's message and storage costs against
// CCDP's zero.
//
// Functionally the caches stay write-through — memory is updated on every
// store before the protocol round runs — so the coherence oracle and the
// golden-value comparison hold against exactly the same ground truth as
// the software modes: any copy an invalidation should have dropped but
// didn't is a stale-value read the oracle flags. That is the sabotage
// switch's (machine.DirDropInvalidations) whole purpose.
//
// The MESI state byte rides in each cache line (cache.Line.State); the
// directory's protocol decisions drive the accounting: E fills upgrade
// silently, S writers run an invalidation round, M victims and recalls
// write a full line back. HW-mode parallel epochs run their PEs
// sequentially (exec.parallelEpoch): an invalidation mutates OTHER PEs'
// caches, which the disjoint-data argument for concurrent epochs cannot
// cover.

// hwState is the engine's per-run hardware coherence state, non-nil only
// in the HWDIR modes.
type hwState struct {
	dir *coherence.Directory
	// noInv is the fuzz campaign's sabotage: invalidation messages are
	// booked and counted as sent, but the target caches keep their copies
	// — the coherence oracle must catch the resulting stale reads.
	noInv bool
}

// cohMsg books one protocol message from src to dst carrying `words`
// payload words, departing at `at`, and returns its arrival time. Home-
// local directory work (src == dst) is free and uncounted. Over the torus
// the message is routed and contends like any other packet; flat charges
// half a remote round trip (one direction).
func (pe *peState) cohMsg(src, dst int, words, at int64) int64 {
	if src == dst {
		return at
	}
	pe.stats.CohMessages++
	if tr := pe.eng.tr; tr != nil {
		arrive, _ := tr.Send(src, dst, words, at, 0)
		return arrive
	}
	return at + pe.eng.c.Machine.RemoteReadCostFor(src, dst)/2
}

// hwDrop delivers one invalidation to PE sp's copy of line la — unless the
// sabotage switch is on, in which case the message was already booked but
// the copy survives for the oracle to catch.
func (pe *peState) hwDrop(sp *peState, la int64) {
	if pe.eng.hw.noInv {
		return
	}
	if sp.cache.InvalidateLine(la) {
		pe.stats.CohInvRecv++
	}
}

// hwLineWriteback returns the payload a holder sends home when giving up
// its copy of la: the full line if the copy is Modified (counted as a
// writeback), one word of ack otherwise.
func (pe *peState) hwLineWriteback(sp *peState, la int64) int64 {
	if coherence.LineState(sp.cache.State(la)) == coherence.Modified {
		pe.stats.CohWritebacks++
		return pe.eng.c.Machine.LineWords
	}
	return 1
}

// hwFill fetches line la into pe's cache through the directory — the fill
// path shared by demand misses and runtime prefetches. It books the
// protocol's side effects in order (sparse entry eviction, exclusive-owner
// recall, the line transfer, a dirty victim's writeback), installs the
// line in the granted MESI state, and returns the completion time. Demand
// reads stall to it; prefetch fills leave it as the line's ReadyAt.
func (pe *peState) hwFill(la, at, spike int64) int64 {
	e := pe.eng
	hw := e.hw
	mp := e.c.Machine
	m := e.mem
	home := m.OwnerOf(la)
	line := la / mp.LineWords

	rr := hw.dir.Read(line, home, pe.id)

	// Allocating a sparse entry may have evicted another line's entry: the
	// directory cannot track a line without one, so the evicted line's
	// sharers are invalidated (eviction-induced invalidation).
	if rr.EvictedLine >= 0 {
		evLA := rr.EvictedLine * mp.LineWords
		evHome := m.OwnerOf(evLA)
		for _, s := range rr.EvictedSharers {
			t := pe.cohMsg(evHome, s, 1, at)
			pe.stats.CohInvSent++
			sp := e.pes[s]
			words := pe.hwLineWriteback(sp, evLA)
			pe.hwDrop(sp, evLA)
			pe.cohMsg(s, evHome, words, t)
		}
	}

	// Exclusive-owner recall: the home asks the owner to downgrade to S; a
	// Modified copy writes the line back, a clean one just acks. The fill
	// cannot complete before the recall round does.
	recallDone := at
	if q := rr.Recall; q >= 0 {
		t := pe.cohMsg(home, q, 1, at)
		qp := e.pes[q]
		words := pe.hwLineWriteback(qp, la)
		if st := coherence.LineState(qp.cache.State(la)); st != coherence.Invalid {
			qp.cache.SetState(la, uint8(coherence.Next(st, coherence.EvDowngrade)))
		}
		recallDone = pe.cohMsg(q, home, words, t)
	}

	// The line transfer itself: request to home, full line back.
	var arrive int64
	if home == pe.id {
		arrive = at + mp.LocalMemCost
	} else if tr := e.tr; tr != nil {
		arrive, _ = tr.RoundTrip(pe.id, home, mp.LineWords, at, spike)
	} else {
		arrive = at + mp.RemoteReadCostFor(pe.id, home) + spike
	}
	if recallDone > arrive {
		arrive = recallDone
	}

	// A dirty conflict victim writes back before the install overwrites
	// it; clean victims drop silently (the directory keeps a superset, so
	// a later invalidation may find nothing — the inv-sent vs inv-recv gap
	// measures that imprecision).
	if tag, st, ok := pe.cache.Victim(la); ok && coherence.LineState(st) == coherence.Modified {
		vHome := m.OwnerOf(tag)
		pe.cohMsg(pe.id, vHome, mp.LineWords, arrive)
		pe.stats.CohWritebacks++
		hw.dir.Evict(tag/mp.LineWords, vHome, pe.id)
	}

	pe.installLine(la, arrive)
	ev := coherence.EvFillShared
	if rr.Excl {
		ev = coherence.EvFillExclusive
	}
	pe.cache.SetState(la, uint8(coherence.Next(coherence.Invalid, ev)))
	return arrive
}

// readMemHW is the HWDIR modes' demand-read path (the cached path of
// readMem with the directory behind every miss).
func (pe *peState) readMemHW(r *cRef, addr int64) float64 {
	e := pe.eng
	mp := e.c.Machine
	m := e.mem
	la := addr - addr%mp.LineWords

	// Forced-eviction fault: the line is knocked out just before the
	// processor consults it, as in the software modes. The drop is silent
	// (the directory keeps a superset).
	if pe.fault != nil && pe.cache.Contains(addr) && pe.fault.EvictLine() {
		pe.cache.InvalidateLine(la)
	}

	if val, gen, readyAt, hit := pe.cache.Lookup(addr); hit {
		pe.now += mp.HitCost
		if readyAt > pe.now {
			pe.now = readyAt
		}
		if pe.fault != nil && !e.hw.noInv && gen != m.Gen(addr) {
			// Degraded mode: never consume a stale hit — drop the line and
			// fall through to a fresh directory fill (§3.2 analog). Stays
			// off under sabotage, whose stale hits the oracle must see.
			pe.cache.InvalidateLine(la)
			pe.demote()
		} else {
			if pe.hwPrefetched != nil && pe.hwPrefetched.Contains(la/mp.LineWords) {
				pe.stats.HWPrefUseful++
			}
			pe.oracleCheck(r, addr, gen)
			pe.record(addr, trace.KindHit)
			pe.hwObserve(r, addr, false)
			return val
		}
	}

	// Demand miss: fill the whole line through the directory.
	pe.now = pe.hwFill(la, pe.now, pe.remoteSpike())
	if m.OwnerOf(addr) == pe.id {
		pe.stats.LocalReads++
		pe.record(addr, trace.KindMiss)
	} else {
		pe.stats.RemoteReads++
		pe.record(addr, trace.KindRemote)
	}
	v, g := m.Read(addr)
	pe.oracleCheck(r, addr, g)
	pe.hwObserve(r, addr, true)
	return v
}

// writeHW is the HWDIR modes' store path: the functional write-through to
// memory already happened (gen is its generation); here the directory
// invalidates every other copy and the MESI state advances. local reports
// whether addr's home is this PE.
func (pe *peState) writeHW(addr int64, v float64, gen uint32, local bool) {
	e := pe.eng
	mp := e.c.Machine
	hw := e.hw
	la := addr - addr%mp.LineWords
	line := la / mp.LineWords
	home := e.mem.OwnerOf(la)

	switch st := coherence.LineState(pe.cache.State(addr)); st {
	case coherence.Exclusive, coherence.Modified:
		// Silent upgrade: the directory already records this PE as the
		// sole exclusive owner — no message.
		pe.cache.SetState(addr, uint8(coherence.Next(st, coherence.EvStore)))
		pe.cache.UpdateWord(addr, v, gen)
	case coherence.Shared:
		// Hit on a shared copy: ownership round through the home.
		wr := hw.dir.Write(line, home, pe.id, true)
		pe.hwInvRound(home, la, wr.Sharers, wr.Broadcast)
		pe.cache.SetState(addr, uint8(coherence.Modified))
		pe.cache.UpdateWord(addr, v, gen)
	default:
		// Write miss (no-write-allocate): every cached copy elsewhere is
		// invalidated and the line ends uncached.
		wr := hw.dir.Write(line, home, pe.id, false)
		if len(wr.Sharers) > 0 || wr.Broadcast {
			pe.hwInvRound(home, la, wr.Sharers, wr.Broadcast)
		}
	}

	if local {
		pe.now += mp.LocalWriteCost
		pe.stats.LocalWrites++
	} else {
		pe.chargeRemoteWrite(addr)
	}
}

// hwInvRound runs one store's invalidation round: writer notifies home,
// home invalidates each sharer, sharers ack (Modified copies write the
// line back), home grants ownership. The writer stalls until the grant —
// which waits on the last ack — arrives.
func (pe *peState) hwInvRound(home int, la int64, sharers []int, broadcast bool) {
	e := pe.eng
	if broadcast {
		pe.stats.CohBroadcasts++
	}
	t0 := pe.cohMsg(pe.id, home, 1, pe.now)
	done := t0
	for _, s := range sharers {
		t := pe.cohMsg(home, s, 1, t0)
		pe.stats.CohInvSent++
		sp := e.pes[s]
		words := pe.hwLineWriteback(sp, la)
		pe.hwDrop(sp, la)
		if ta := pe.cohMsg(s, home, words, t); ta > done {
			done = ta
		}
	}
	if grant := pe.cohMsg(home, pe.id, 1, done); grant > pe.now {
		pe.now = grant
	}
}

// hwObserve feeds the runtime prefetcher one demand access and issues its
// suggestions as non-blocking directory fills: the PE's clock does not
// advance, the filled lines' ReadyAt carries the arrival, and a demand hit
// before then stalls — exactly the software prefetch queue's late-arrival
// semantics, without the queue.
func (pe *peState) hwObserve(r *cRef, addr int64, miss bool) {
	if pe.hwPref == nil {
		return
	}
	mp := pe.eng.c.Machine
	pe.prefScratch = pe.hwPref.Observe(int64(r.src.ID), addr, miss, pe.prefScratch[:0])
	issued := 0
	for _, la := range pe.prefScratch {
		if issued >= mp.HWPrefetchDegree {
			break
		}
		if la < 0 || la >= pe.eng.mem.Words() || pe.cache.Contains(la) {
			continue
		}
		if pe.fault != nil && pe.fault.DropPrefetch() {
			// Lost in flight, as in the software modes: nothing arrives
			// and the demand stream pays its own miss later.
			continue
		}
		pe.hwFill(la, pe.now, 0)
		pe.stats.HWPrefIssued++
		pe.hwPrefetched.Add(la / mp.LineWords)
		issued++
	}
}

// newHWPrefetcher builds the machine's configured runtime prefetcher, or
// nil when none is named.
func newHWPrefetcher(name string, lineWords int64) (prefetch.Prefetcher, error) {
	if name == "" {
		return nil, nil
	}
	return prefetch.New(name, lineWords)
}
