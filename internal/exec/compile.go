package exec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/ir"
)

// This file lowers the ir tree into the engine's executable form once per
// Run. The interpreter used to walk the ir directly, paying a string-keyed
// map lookup for every induction variable, scalar and subscript evaluation
// and allocating an index vector per address computation; the compiled
// mirror tree resolves every name to a dense slot (core.Compiled.Syms) and
// every subscript to a slot-indexed affine form at compile time, so the
// hot path runs over plain slices with zero allocations. The lowering is
// purely representational: statement order, cost charging and evaluation
// semantics are exactly those of the ir walk, which the flat and torus
// golden-CSV tests pin bit-identically.

// cterm is one coefficient*variable product with the variable resolved to
// its env slot. The name is kept only for the unbound-variable diagnostic.
type cterm struct {
	slot int32
	coef int64
	name string
}

// caff is a compiled affine expression evaluated against the PE's dense
// environment.
type caff struct {
	k     int64
	terms []cterm
}

func (a *caff) eval(env []int64, bound []bool) int64 {
	v := a.k
	for i := range a.terms {
		t := &a.terms[i]
		if !bound[t.slot] {
			panic(fmt.Errorf("expr: unbound variable %q", t.name))
		}
		v += t.coef * env[t.slot]
	}
	return v
}

// cdim is one compiled array subscript: the affine index plus the
// dimension's extent (bounds check) and linear stride.
type cdim struct {
	idx    caff
	extent int64
	stride int64
}

// cRef is a compiled reference site. Array refs carry per-dimension
// compiled subscripts; scalar refs carry the interned scalar slot.
type cRef struct {
	src    *ir.Ref // original site: oracle attribution, diagnostics
	arr    *ir.Array
	scalar int32 // scalar slot; -1 for array refs
	dims   []cdim
	base   int64

	shared     bool
	nonCached  bool
	bypass     bool
	prefetched bool
}

func (r *cRef) isScalar() bool { return r.scalar >= 0 }

// --- Compiled expressions -----------------------------------------------

type cExpr interface{ isCExpr() }

type cNum struct{ v float64 }
type cLoad struct{ ref *cRef }
type cIVal struct{ a caff }
type cBin struct {
	op   ir.BinOp
	l, r cExpr
}
type cUn struct {
	op ir.UnOp
	x  cExpr
}

func (*cNum) isCExpr()  {}
func (*cLoad) isCExpr() {}
func (*cIVal) isCExpr() {}
func (*cBin) isCExpr()  {}
func (*cUn) isCExpr()   {}

// --- Compiled statements ------------------------------------------------

type cStmt interface{ isCStmt() }

type cPipe struct {
	target *cRef
	ahead  int64
}

type cLoop struct {
	src       *ir.Loop
	varSlot   int32
	lo, hi    caff
	step      int64
	parallel  bool
	sched     ir.SchedKind
	alignExt  int64
	body      []cStmt
	prologue  []cStmt
	pipelined []cPipe
}

type cAssign struct {
	lhs *cRef
	rhs cExpr
}

type cIf struct {
	op        ir.CmpOp
	l, r      cExpr
	then, els []cStmt
}

// cCall resolves the callee at compile time; body stays nil for a call to
// an undefined routine, which (like the ir walk) only errors if executed.
type cCall struct {
	name string
	body *[]cStmt
}

type cPrefetch struct{ target *cRef }

type cVP struct {
	src     *ir.VectorPrefetch
	target  *cRef
	varSlot int32
	lo, hi  caff
	step    int64
}

func (*cLoop) isCStmt()     {}
func (*cAssign) isCStmt()   {}
func (*cIf) isCStmt()       {}
func (*cCall) isCStmt()     {}
func (*cPrefetch) isCStmt() {}
func (*cVP) isCStmt()       {}

// cEpoch is one compiled epoch node.
type cEpoch struct {
	loop  *cLoop  // parallel epochs
	stmts []cStmt // serial epochs
}

// cProgram is the compiled program: one entry per epoch node, plus the
// symbol geometry the PEs size their dense state from.
type cProgram struct {
	syms     *ir.SymTable
	nScalars int
	nVars    int
	nodes    []cEpoch
}

type compiler struct {
	prog     *ir.Program
	syms     *ir.SymTable
	routines map[string]*[]cStmt
}

// compileProgram lowers every epoch node of the graph.
func compileProgram(c *core.Compiled, g *ir.EpochGraph) (*cProgram, error) {
	syms := c.Syms
	if syms == nil {
		// Callers constructing core.Compiled by hand (old tests) get the
		// table built here; core.Compile pre-resolves it.
		syms = ir.CollectSyms(c.Prog)
	}
	cc := &compiler{prog: c.Prog, syms: syms, routines: map[string]*[]cStmt{}}
	cp := &cProgram{syms: syms, nScalars: syms.NumScalars(), nVars: syms.NumVars()}
	for _, node := range g.Nodes {
		var ep cEpoch
		if node.Parallel {
			l, err := cc.loop(node.Loop)
			if err != nil {
				return nil, err
			}
			ep.loop = l
		} else {
			ss, err := cc.stmts(node.Stmts)
			if err != nil {
				return nil, err
			}
			ep.stmts = ss
		}
		cp.nodes = append(cp.nodes, ep)
	}
	return cp, nil
}

func (cc *compiler) varSlot(name string) (int32, error) {
	if i := cc.syms.VarIndex(name); i >= 0 {
		return int32(i), nil
	}
	return 0, fmt.Errorf("exec: variable %q missing from symbol table", name)
}

func (cc *compiler) affine(a expr.Affine) (caff, error) {
	out := caff{k: a.ConstPart()}
	for _, t := range a.Terms() {
		slot, err := cc.varSlot(t.Var)
		if err != nil {
			return caff{}, err
		}
		out.terms = append(out.terms, cterm{slot: slot, coef: t.Coef, name: t.Var})
	}
	return out, nil
}

func (cc *compiler) ref(r *ir.Ref) (*cRef, error) {
	out := &cRef{src: r, scalar: -1,
		bypass: r.Bypass, nonCached: r.NonCached, prefetched: r.Prefetched}
	if r.IsScalar() {
		i := cc.syms.ScalarIndex(r.Scalar)
		if i < 0 {
			return nil, fmt.Errorf("exec: scalar %q missing from symbol table", r.Scalar)
		}
		out.scalar = int32(i)
		return out, nil
	}
	out.arr = r.Array
	out.base = r.Array.Base
	out.shared = r.Array.Shared
	stride := int64(1)
	for d := range r.Index {
		idx, err := cc.affine(r.Index[d])
		if err != nil {
			return nil, err
		}
		out.dims = append(out.dims, cdim{idx: idx, extent: r.Array.Dims[d], stride: stride})
		stride *= r.Array.Dims[d]
	}
	return out, nil
}

func (cc *compiler) expr(e ir.Expr) (cExpr, error) {
	switch x := e.(type) {
	case ir.Num:
		return &cNum{v: x.V}, nil
	case ir.IVal:
		a, err := cc.affine(x.A)
		if err != nil {
			return nil, err
		}
		return &cIVal{a: a}, nil
	case ir.Load:
		r, err := cc.ref(x.Ref)
		if err != nil {
			return nil, err
		}
		return &cLoad{ref: r}, nil
	case ir.Bin:
		l, err := cc.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.expr(x.R)
		if err != nil {
			return nil, err
		}
		return &cBin{op: x.Op, l: l, r: r}, nil
	case ir.Un:
		in, err := cc.expr(x.X)
		if err != nil {
			return nil, err
		}
		return &cUn{op: x.Op, x: in}, nil
	default:
		return nil, fmt.Errorf("exec: unknown expression %T", e)
	}
}

func (cc *compiler) vectorPrefetch(vp *ir.VectorPrefetch) (*cVP, error) {
	target, err := cc.ref(vp.Target)
	if err != nil {
		return nil, err
	}
	slot, err := cc.varSlot(vp.LoopVar)
	if err != nil {
		return nil, err
	}
	lo, err := cc.affine(vp.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := cc.affine(vp.Hi)
	if err != nil {
		return nil, err
	}
	return &cVP{src: vp, target: target, varSlot: slot, lo: lo, hi: hi,
		step: vp.Step.ConstPart()}, nil
}

func (cc *compiler) loop(l *ir.Loop) (*cLoop, error) {
	slot, err := cc.varSlot(l.Var)
	if err != nil {
		return nil, err
	}
	lo, err := cc.affine(l.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := cc.affine(l.Hi)
	if err != nil {
		return nil, err
	}
	out := &cLoop{src: l, varSlot: slot, lo: lo, hi: hi, step: l.Step.ConstPart(),
		parallel: l.Parallel, sched: l.Sched, alignExt: l.AlignExtent}
	if out.body, err = cc.stmts(l.Body); err != nil {
		return nil, err
	}
	if out.prologue, err = cc.stmts(l.Prologue); err != nil {
		return nil, err
	}
	for _, pp := range l.Pipelined {
		target, err := cc.ref(pp.Target)
		if err != nil {
			return nil, err
		}
		out.pipelined = append(out.pipelined, cPipe{target: target, ahead: pp.Ahead})
	}
	return out, nil
}

func (cc *compiler) stmts(body []ir.Stmt) ([]cStmt, error) {
	if len(body) == 0 {
		return nil, nil
	}
	out := make([]cStmt, 0, len(body))
	for _, s := range body {
		st, err := cc.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func (cc *compiler) stmt(s ir.Stmt) (cStmt, error) {
	switch st := s.(type) {
	case *ir.Loop:
		return cc.loop(st)
	case *ir.Assign:
		lhs, err := cc.ref(st.LHS)
		if err != nil {
			return nil, err
		}
		rhs, err := cc.expr(st.RHS)
		if err != nil {
			return nil, err
		}
		return &cAssign{lhs: lhs, rhs: rhs}, nil
	case *ir.If:
		l, err := cc.expr(st.Cond.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.expr(st.Cond.R)
		if err != nil {
			return nil, err
		}
		then, err := cc.stmts(st.Then)
		if err != nil {
			return nil, err
		}
		els, err := cc.stmts(st.Else)
		if err != nil {
			return nil, err
		}
		return &cIf{op: st.Cond.Op, l: l, r: r, then: then, els: els}, nil
	case *ir.Call:
		return cc.call(st.Name)
	case *ir.Prefetch:
		target, err := cc.ref(st.Target)
		if err != nil {
			return nil, err
		}
		return &cPrefetch{target: target}, nil
	case *ir.VectorPrefetch:
		return cc.vectorPrefetch(st)
	default:
		return nil, fmt.Errorf("exec: unknown statement %T", s)
	}
}

// call memoizes compiled routine bodies through a pointer so (mutual)
// recursion terminates: the entry is registered before its body compiles.
func (cc *compiler) call(name string) (*cCall, error) {
	if body, ok := cc.routines[name]; ok {
		return &cCall{name: name, body: body}, nil
	}
	rt := cc.prog.Routine(name)
	if rt == nil {
		// Mirror the ir walk: a dead call to an undefined routine only
		// errors if executed.
		return &cCall{name: name}, nil
	}
	body := new([]cStmt)
	cc.routines[name] = body
	compiled, err := cc.stmts(rt.Body)
	if err != nil {
		return nil, err
	}
	*body = compiled
	return &cCall{name: name, body: body}, nil
}
