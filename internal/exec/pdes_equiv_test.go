package exec_test

import (
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/workloads"
)

// TestParallelTorusMatchesSequential is the engine-level PDES equivalence
// property test: every workload runs over the torus twice — once with
// Options.SerialTorus (the canonical sequential PE-major booking order the
// golden CSVs pin) and once through the default concurrent windowed-PDES
// path with goroutine yields injected at every session commit point — and
// every observable must match exactly: total and per-PE cycles, the full
// stats block, the complete per-link network summary, and the computed
// array contents. GOMAXPROCS is forced above 1 so the PDES path actually
// engages even on single-core CI runners; running under -race additionally
// proves the concurrent path's synchronization sound.
func TestParallelTorusMatchesSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	cases := []struct {
		name string
		spec *workloads.Spec
		mode core.Mode
		pes  int
	}{
		{"MXM-CCDP-8PE", workloads.MXM(64, 32, 16), core.ModeCCDP, 8},
		{"MXM-CCDP-4PE", workloads.MXM(64, 32, 16), core.ModeCCDP, 4},
		{"VPENTA-CCDP-8PE", workloads.VPENTA(64, 2), core.ModeCCDP, 8},
		{"TOMCATV-CCDP-8PE", workloads.TOMCATV(65, 2), core.ModeCCDP, 8},
		{"SWIM-BASE-8PE", workloads.SWIM(65, 2), core.ModeBase, 8},
	}
	topo, err := noc.Parse("torus")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mp := machine.T3D(tc.pes)
			mp.Topology = topo
			c, err := core.Compile(tc.spec.Prog, tc.mode, mp)
			if err != nil {
				t.Fatal(err)
			}
			want, err := exec.Run(c, exec.Options{FailOnStale: true, SerialTorus: true})
			if err != nil {
				t.Fatal(err)
			}
			wantData := map[string][]float64{}
			for _, name := range tc.spec.CheckArrays {
				wantData[name] = want.Mem.ArrayData(want.Mem.ArrayNamed(name))
			}

			// A fresh Engine per run: want.Mem aliases its engine's memory.
			eng, err := exec.New(c)
			if err != nil {
				t.Fatal(err)
			}
			var yields atomic.Int64
			noc.TestCommitYield = func() {
				if yields.Add(1)%5 == 0 {
					runtime.Gosched()
				}
			}
			defer func() { noc.TestCommitYield = nil }()
			got, err := eng.Run(exec.Options{FailOnStale: true})
			noc.TestCommitYield = nil
			if err != nil {
				t.Fatal(err)
			}

			if got.Cycles != want.Cycles {
				t.Errorf("cycles: pdes %d != sequential %d", got.Cycles, want.Cycles)
			}
			if !reflect.DeepEqual(got.PECycles, want.PECycles) {
				t.Errorf("per-PE cycles diverge:\npdes: %v\nseq:  %v", got.PECycles, want.PECycles)
			}
			if got.Stats != want.Stats {
				t.Errorf("stats diverge:\npdes: %+v\nseq:  %+v", got.Stats, want.Stats)
			}
			if !reflect.DeepEqual(got.Net, want.Net) {
				t.Errorf("network summaries diverge")
				diffSummaries(t, got.Net, want.Net)
			}
			for _, name := range tc.spec.CheckArrays {
				gotData := got.Mem.ArrayData(got.Mem.ArrayNamed(name))
				if !reflect.DeepEqual(gotData, wantData[name]) {
					t.Errorf("array %s contents diverge", name)
				}
			}
		})
	}
}

func diffSummaries(t *testing.T, got, want *noc.Summary) {
	t.Helper()
	if got == nil || want == nil {
		t.Logf("pdes: %+v\nseq:  %+v", got, want)
		return
	}
	if got.Messages != want.Messages || got.WaitCycles != want.WaitCycles ||
		got.Contended != want.Contended || got.MaxWait != want.MaxWait {
		t.Logf("totals: pdes {msgs %d wait %d cont %d max %d} seq {msgs %d wait %d cont %d max %d}",
			got.Messages, got.WaitCycles, got.Contended, got.MaxWait,
			want.Messages, want.WaitCycles, want.Contended, want.MaxWait)
	}
	if !reflect.DeepEqual(got.HopHist, want.HopHist) {
		t.Logf("hop hist: pdes %v seq %v", got.HopHist, want.HopHist)
	}
	n := len(got.Links)
	if len(want.Links) < n {
		n = len(want.Links)
	}
	shown := 0
	for i := 0; i < n && shown < 5; i++ {
		if !reflect.DeepEqual(got.Links[i], want.Links[i]) {
			t.Logf("link %d: pdes %+v seq %+v", i, got.Links[i], want.Links[i])
			shown++
		}
	}
}

// TestEngineReuseIsDeterministic pins the arena behaviour the Engine split
// exists for: one Engine Run repeatedly — including alternating serial and
// PDES torus paths — must reproduce the identical result every time.
func TestEngineReuseIsDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	mp := machine.T3D(8)
	topo, err := noc.Parse("torus")
	if err != nil {
		t.Fatal(err)
	}
	mp.Topology = topo
	spec := workloads.MXM(32, 16, 8)
	c, err := core.Compile(spec.Prog, core.ModeCCDP, mp)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := exec.New(c)
	if err != nil {
		t.Fatal(err)
	}
	var ref *exec.Result
	var refData []float64
	for i := 0; i < 4; i++ {
		serial := i%2 == 1
		r, err := eng.Run(exec.Options{FailOnStale: true, SerialTorus: serial})
		if err != nil {
			t.Fatal(err)
		}
		data := r.Mem.ArrayData(r.Mem.ArrayNamed(spec.CheckArrays[0]))
		if ref == nil {
			ref, refData = r, data
			continue
		}
		label := fmt.Sprintf("run %d (serial=%v)", i, serial)
		if r.Cycles != ref.Cycles || r.Stats != ref.Stats {
			t.Errorf("%s: stats diverge from run 0", label)
		}
		if !reflect.DeepEqual(r.Net, ref.Net) {
			t.Errorf("%s: network summary diverges from run 0", label)
		}
		if !reflect.DeepEqual(data, refData) {
			t.Errorf("%s: results diverge from run 0", label)
		}
	}
}
