package exec_test

import (
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/workloads"
)

// pdesVariant is one concurrent execution flavour the equivalence property
// test checks against the canonical sequential order. skew, when set,
// perturbs the optimistic mode's round-trip predictions so a healthy share
// of speculative epochs is convicted and re-executed — the rollback path
// must converge to the same results, and the variant asserts it actually
// ran (a passing test with zero rollbacks would prove nothing).
type pdesVariant struct {
	name string
	mode noc.PDESMode
	skew bool
}

var pdesVariants = []pdesVariant{
	{"optimistic", noc.PDESOptimistic, false},
	{"optimistic-skewed", noc.PDESOptimistic, true},
	{"conservative", noc.PDESConservative, false},
	{"adaptive", noc.PDESAdaptive, false},
}

// TestParallelTorusMatchesSequential is the engine-level PDES equivalence
// property test: every workload runs over the torus with Options.SerialTorus
// (the canonical sequential PE-major booking order the golden CSVs pin) and
// then through every concurrent PDES mode — optimistic speculation (plus a
// variant with mispredictions injected to force rollbacks), windowed
// conservative, and adaptive lookahead — with goroutine yields injected at
// every commit point. Every observable must match exactly: total and per-PE
// cycles, the full stats block, the complete per-link network summary, and
// the computed array contents. GOMAXPROCS is forced above 1 so the PDES
// paths actually engage even on single-core CI runners; running under -race
// additionally proves the concurrent paths' synchronization sound.
func TestParallelTorusMatchesSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	cases := []struct {
		name string
		spec *workloads.Spec
		mode core.Mode
		pes  int
	}{
		{"MXM-CCDP-8PE", workloads.MXM(64, 32, 16), core.ModeCCDP, 8},
		{"MXM-CCDP-4PE", workloads.MXM(64, 32, 16), core.ModeCCDP, 4},
		{"VPENTA-CCDP-8PE", workloads.VPENTA(64, 2), core.ModeCCDP, 8},
		{"TOMCATV-CCDP-8PE", workloads.TOMCATV(65, 2), core.ModeCCDP, 8},
		{"SWIM-BASE-8PE", workloads.SWIM(65, 2), core.ModeBase, 8},
	}
	topo, err := noc.Parse("torus")
	if err != nil {
		t.Fatal(err)
	}
	// Rollbacks are counted across all workloads: a workload whose parallel
	// epochs make no remote round trips has nothing to skew (VPENTA's
	// chunks are all-local), but if NO skewed run anywhere rolled back, the
	// rollback path was never exercised and the convergence claim is
	// untested.
	var totalRollbacks int64
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mp := machine.T3D(tc.pes)
			mp.Topology = topo
			c, err := core.Compile(tc.spec.Prog, tc.mode, mp)
			if err != nil {
				t.Fatal(err)
			}
			want, err := exec.Run(c, exec.Options{FailOnStale: true, SerialTorus: true})
			if err != nil {
				t.Fatal(err)
			}
			wantData := map[string][]float64{}
			for _, name := range tc.spec.CheckArrays {
				wantData[name] = want.Mem.ArrayData(want.Mem.ArrayNamed(name))
			}

			for _, v := range pdesVariants {
				t.Run(v.name, func(t *testing.T) {
					vmp := mp
					vmp.PDES = v.mode
					vc, err := core.Compile(tc.spec.Prog, tc.mode, vmp)
					if err != nil {
						t.Fatal(err)
					}
					// A fresh Engine per run: want.Mem aliases its own
					// engine's memory.
					eng, err := exec.New(vc)
					if err != nil {
						t.Fatal(err)
					}
					defer eng.Close()
					var yields atomic.Int64
					noc.TestCommitYield = func() {
						if yields.Add(1)%5 == 0 {
							runtime.Gosched()
						}
					}
					defer func() { noc.TestCommitYield = nil }()
					if v.skew {
						var skews atomic.Int64
						noc.TestSpecSkew = func() int64 {
							if skews.Add(1)%7 == 1 {
								return 31
							}
							return 0
						}
						defer func() { noc.TestSpecSkew = nil }()
					}
					got, err := eng.Run(exec.Options{FailOnStale: true})
					noc.TestCommitYield = nil
					noc.TestSpecSkew = nil
					if err != nil {
						t.Fatal(err)
					}
					if v.skew {
						totalRollbacks += eng.SpecRollbacks()
					}

					if got.Cycles != want.Cycles {
						t.Errorf("cycles: pdes %d != sequential %d", got.Cycles, want.Cycles)
					}
					if !reflect.DeepEqual(got.PECycles, want.PECycles) {
						t.Errorf("per-PE cycles diverge:\npdes: %v\nseq:  %v", got.PECycles, want.PECycles)
					}
					if got.Stats != want.Stats {
						t.Errorf("stats diverge:\npdes: %+v\nseq:  %+v", got.Stats, want.Stats)
					}
					if !reflect.DeepEqual(got.Net, want.Net) {
						t.Errorf("network summaries diverge")
						diffSummaries(t, got.Net, want.Net)
					}
					for _, name := range tc.spec.CheckArrays {
						gotData := got.Mem.ArrayData(got.Mem.ArrayNamed(name))
						if !reflect.DeepEqual(gotData, wantData[name]) {
							t.Errorf("array %s contents diverge", name)
						}
					}
				})
			}
		})
	}
	if totalRollbacks == 0 {
		t.Error("no skewed optimistic run performed a rollback; the convergence property is untested")
	}
}

func diffSummaries(t *testing.T, got, want *noc.Summary) {
	t.Helper()
	if got == nil || want == nil {
		t.Logf("pdes: %+v\nseq:  %+v", got, want)
		return
	}
	if got.Messages != want.Messages || got.WaitCycles != want.WaitCycles ||
		got.Contended != want.Contended || got.MaxWait != want.MaxWait {
		t.Logf("totals: pdes {msgs %d wait %d cont %d max %d} seq {msgs %d wait %d cont %d max %d}",
			got.Messages, got.WaitCycles, got.Contended, got.MaxWait,
			want.Messages, want.WaitCycles, want.Contended, want.MaxWait)
	}
	if !reflect.DeepEqual(got.HopHist, want.HopHist) {
		t.Logf("hop hist: pdes %v seq %v", got.HopHist, want.HopHist)
	}
	n := len(got.Links)
	if len(want.Links) < n {
		n = len(want.Links)
	}
	shown := 0
	for i := 0; i < n && shown < 5; i++ {
		if !reflect.DeepEqual(got.Links[i], want.Links[i]) {
			t.Logf("link %d: pdes %+v seq %+v", i, got.Links[i], want.Links[i])
			shown++
		}
	}
}

// resultSnap deep-copies the comparable observables of a Result: a Result
// returned by Engine.Run aliases Engine-owned storage that the next Run on
// the same Engine overwrites, so cross-run comparisons must copy first.
type resultSnap struct {
	cycles   int64
	stats    interface{}
	pecycles []int64
	hopHist  []int64
	links    []noc.LinkStat
	netTot   [4]int64
	data     []float64
}

func snapResult(r *exec.Result, data []float64) resultSnap {
	s := resultSnap{
		cycles:   r.Cycles,
		stats:    r.Stats,
		pecycles: append([]int64(nil), r.PECycles...),
		data:     append([]float64(nil), data...),
	}
	if r.Net != nil {
		s.hopHist = append([]int64(nil), r.Net.HopHist...)
		s.links = append([]noc.LinkStat(nil), r.Net.Links...)
		s.netTot = [4]int64{r.Net.Messages, r.Net.WaitCycles, r.Net.Contended, r.Net.MaxWait}
	}
	return s
}

// TestEngineReuseIsDeterministic pins the arena behaviour the Engine split
// exists for: one Engine Run repeatedly — alternating the serial reference
// order, the optimistic speculation path and the conservative session on
// the same arenas — must reproduce the identical result every time.
func TestEngineReuseIsDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	topo, err := noc.Parse("torus")
	if err != nil {
		t.Fatal(err)
	}
	spec := workloads.MXM(32, 16, 8)
	for _, v := range []struct {
		name string
		mode noc.PDESMode
	}{{"optimistic", noc.PDESOptimistic}, {"conservative", noc.PDESConservative}} {
		t.Run(v.name, func(t *testing.T) {
			mp := machine.T3D(8)
			mp.Topology = topo
			mp.PDES = v.mode
			c, err := core.Compile(spec.Prog, core.ModeCCDP, mp)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := exec.New(c)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			var ref resultSnap
			have := false
			for i := 0; i < 4; i++ {
				serial := i%2 == 1
				r, err := eng.Run(exec.Options{FailOnStale: true, SerialTorus: serial})
				if err != nil {
					t.Fatal(err)
				}
				data := r.Mem.ArrayData(r.Mem.ArrayNamed(spec.CheckArrays[0]))
				got := snapResult(r, data)
				if !have {
					ref, have = got, true
					continue
				}
				label := fmt.Sprintf("run %d (serial=%v)", i, serial)
				if got.cycles != ref.cycles || got.stats != ref.stats {
					t.Errorf("%s: stats diverge from run 0", label)
				}
				if !reflect.DeepEqual(got.pecycles, ref.pecycles) {
					t.Errorf("%s: per-PE cycles diverge from run 0", label)
				}
				if got.netTot != ref.netTot || !reflect.DeepEqual(got.hopHist, ref.hopHist) ||
					!reflect.DeepEqual(got.links, ref.links) {
					t.Errorf("%s: network summary diverges from run 0", label)
				}
				if !reflect.DeepEqual(got.data, ref.data) {
					t.Errorf("%s: results diverge from run 0", label)
				}
			}
		})
	}
}
