// Package exec is the T3D execution engine: it interprets a compiled
// program (real float64 arithmetic over the simulated distributed memory),
// drives the per-PE caches and prefetch queues, and charges cycle costs.
//
// Execution follows the paper's epoch model (§3.1): parallel epochs run
// their DOALL chunks on all PEs concurrently (one goroutine per PE — PEs
// touch disjoint data inside an epoch, so the simulation is race-free
// exactly when the program respects the model); serial epochs run on PE 0;
// every epoch boundary is a barrier, and write-through caches keep home
// memory current so the boundary memory-update is implicit.
//
// Coherence is CHECKED, not assumed: every cached word carries the memory
// generation it was filled with, and a hit on an out-of-date word is
// counted as a stale-value read (and poisons the computed results, which
// the golden-value comparison then catches). SEQ, BASE and CCDP runs must
// report zero; the deliberately naive INCOHERENT mode demonstrates the
// failure the scheme prevents.
//
// Before anything executes, the ir tree is lowered to the engine's
// compiled form (compile.go): names become dense slots, subscripts become
// stride-resolved affine forms, and the per-PE state becomes plain slices
// — the cycle arithmetic is unchanged, so results stay bit-identical to
// the tree-walking engine this replaced.
package exec

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/pfq"
	"repro/internal/shmem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options controls optional engine verification features.
type Options struct {
	// DetectRaces records per-epoch read/write address sets of shared
	// arrays and reports cross-PE conflicts inside one epoch (violations
	// of the "no data dependences between tasks of a parallel epoch"
	// model). Expensive; for tests.
	DetectRaces bool
	// FailOnStale makes Run return an error on the first stale-value read
	// instead of only counting it.
	FailOnStale bool
	// TrackStaleRefs records which reference sites observed stale values
	// (used by the analysis-soundness property tests).
	TrackStaleRefs bool
	// Trace, when non-nil, collects the full memory reference stream
	// (build with trace.New(numPE)). Expensive; for analysis tooling.
	Trace *trace.Trace
	// Fault configures seeded fault injection (internal/fault). The zero
	// value runs the fault-free machine with zero overhead on the hot
	// paths and bit-identical cycle counts.
	Fault fault.Plan
}

// Result is the outcome of one run.
type Result struct {
	Stats    stats.Stats
	Cycles   int64
	PECycles []int64
	Mem      *mem.Memory
	// StaleByRef attributes observed stale-value reads to the reference
	// sites that performed them (populated when Options.TrackStaleRefs).
	StaleByRef map[ir.RefID]int64
	// Violations holds the first few coherence-oracle hits in detail
	// (every hit is counted in Stats.OracleViolations).
	Violations []fault.Violation
	// Net is the interconnect observability snapshot (per-link utilization,
	// contention hotspots, hop histogram); nil under the flat topology.
	Net *noc.Summary
}

// maxRecordedViolations bounds Result.Violations; counters keep the total.
const maxRecordedViolations = 32

// Run executes a compiled program.
func Run(c *core.Compiled, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: %v", r)
		}
	}()

	prog := c.Prog
	mp := c.Machine
	m := mem.New(prog, mp.NumPE, c.TotalWords)
	graph, err := ir.BuildEpochGraph(prog)
	if err != nil {
		return nil, err
	}
	if c.Stale != nil && len(c.Stale.Invalidate) != len(graph.Nodes) {
		return nil, fmt.Errorf("exec: invalidation table has %d nodes, graph has %d",
			len(c.Stale.Invalidate), len(graph.Nodes))
	}
	cp, err := compileProgram(c, graph)
	if err != nil {
		return nil, err
	}

	if err := opts.Fault.Validate(); err != nil {
		return nil, err
	}
	var net *noc.Network
	if mp.NumPE > 1 {
		// noc.New returns nil for the flat topology: every remote path
		// then keeps the constant-latency costs, bit-identically.
		if net, err = noc.New(mp.Topology, mp.NumPE); err != nil {
			return nil, err
		}
	}
	// The engine starts single-threaded (epoch setup, serial epochs); the
	// parallel fan-out flips the memory to atomic mode only while PE
	// goroutines actually run concurrently.
	m.SetSerial(true)
	eng := &engine{c: c, cp: cp, mem: m, graph: graph, opts: opts, net: net,
		inj: fault.NewInjector(opts.Fault, mp.NumPE)}
	maxRank := 1
	for _, a := range prog.Arrays {
		if r := a.Rank(); r > maxRank {
			maxRank = r
		}
	}
	lines := c.TotalWords/mp.LineWords + 1
	eng.pes = make([]*peState, mp.NumPE)
	for p := 0; p < mp.NumPE; p++ {
		pe := &peState{
			id:            p,
			eng:           eng,
			cache:         cache.New(mp.CacheWords, mp.LineWords),
			pq:            pfq.New(mp.PrefetchQueueWords),
			scalars:       make([]float64, cp.nScalars),
			scalarWritten: make([]bool, cp.nScalars),
			env:           make([]int64, cp.nVars),
			bound:         make([]bool, cp.nVars),
			buffered:      bitset.NewSparse(lines),
			idxScratch:    make([]int64, maxRank),
			shScratch:     shmem.NewScratch(m, mp),
		}
		eng.pes[p] = pe
		if eng.inj != nil {
			pe.fault = eng.inj.PE(p)
			pe.shFaults = &shmem.Faults{DropLine: pe.fault.DropPrefetch, LateDelay: pe.fault.LateDelay}
		}
		if opts.Trace != nil {
			if len(opts.Trace.PerPE) != mp.NumPE {
				return nil, fmt.Errorf("exec: trace has %d PEs, machine has %d", len(opts.Trace.PerPE), mp.NumPE)
			}
			pe.trace = opts.Trace.PerPE[p]
		}
		for k, v := range prog.Params {
			if s := cp.syms.VarIndex(k); s >= 0 {
				pe.env[s] = v
				pe.bound[s] = true
			}
		}
	}

	if err := eng.run(); err != nil {
		return nil, err
	}

	res = &Result{Stats: eng.stats, Mem: m, PECycles: make([]int64, mp.NumPE),
		Violations: eng.violations}
	if opts.TrackStaleRefs {
		res.StaleByRef = map[ir.RefID]int64{}
		for _, pe := range eng.pes {
			for id, n := range pe.staleByRef {
				res.StaleByRef[id] += n
			}
		}
	}
	for p, pe := range eng.pes {
		res.PECycles[p] = pe.now
	}
	res.Cycles = res.PECycles[0]
	res.Stats.Cycles = res.Cycles
	if eng.net != nil {
		res.Net = eng.net.Summary(res.Cycles)
		res.Stats.NetMessages = res.Net.Messages
		res.Stats.NetWaitCycles = res.Net.WaitCycles
		res.Stats.NetContended = res.Net.Contended
	}
	return res, nil
}

type engine struct {
	c     *core.Compiled
	cp    *cProgram
	mem   *mem.Memory
	graph *ir.EpochGraph
	opts  Options
	pes   []*peState
	stats stats.Stats
	inj   *fault.Injector
	// net is the torus interconnect; nil under the flat topology (the
	// constant-latency model).
	net *noc.Network

	staleErr   error
	violations []fault.Violation
	staleMu    sync.Mutex
}

func (e *engine) run() error {
	err := e.graph.ForEachEpochInstance(func(inst ir.EpochInstance) error {
		return e.epoch(inst)
	})
	if err != nil {
		return err
	}
	// Final accounting: flush queues, merge PE stats.
	for _, pe := range e.pes {
		e.stats.PrefetchUnused += pe.pq.Flush()
		e.mergePE(pe)
	}
	if e.inj != nil {
		c := e.inj.Counts()
		e.stats.FaultDrops = c.Drops
		e.stats.FaultLate = c.Lates
		e.stats.FaultSpikes = c.Spikes
		e.stats.FaultEvictions = c.Evictions
		e.stats.FaultSkews = c.Skews
	}
	return e.staleErr
}

// epoch executes one dynamic epoch instance, including the boundary
// actions (invalidation before, barrier and queue flush after).
func (e *engine) epoch(inst ir.EpochInstance) error {
	mp := e.c.Machine
	node := inst.Node
	e.stats.Epochs++

	// Compiler-directed invalidation (CCDP): each PE drops the cached
	// regions the analysis says may be dirty for it.
	if e.c.Mode == core.ModeCCDP && e.c.Stale != nil {
		for p, pe := range e.pes {
			inv := e.c.Stale.Invalidate[node.Index][p]
			var dropped int64
			for name, set := range inv {
				arr := e.c.Prog.ArrayByName(name)
				for _, r := range set.Rects() {
					lo := mem.AddrOf(arr, r.Lo)
					hi := mem.AddrOf(arr, r.Hi)
					dropped += pe.cache.InvalidateRange(lo, hi)
				}
			}
			if len(inv) > 0 {
				pe.now += 10 + dropped*mp.InvalidateLineCost
			}
			pe.stats.InvalidatedLines += dropped
		}
	}

	// Set the context environment on every PE; under KindSkew each PE's
	// clock drifts by a seeded offset at epoch entry (the barrier at the
	// epoch's end reconverges everyone to the slowest clock).
	for _, pe := range e.pes {
		if pe.fault != nil {
			pe.now += pe.fault.ClockSkew()
		}
		for k, v := range inst.Env {
			if s := e.cp.syms.VarIndex(k); s >= 0 {
				pe.env[s] = v
				pe.bound[s] = true
			}
		}
	}

	if node.Parallel {
		if err := e.parallelEpoch(node); err != nil {
			return err
		}
	} else {
		pe0 := e.pes[0]
		if err := pe0.runStmts(e.cp.nodes[node.Index].stmts); err != nil {
			return err
		}
		// Scalars written in a serial epoch are broadcast at the barrier.
		// The written mask mirrors map-key presence in the old map-based
		// state: only slots PE 0 has ever stored to are propagated.
		for _, pe := range e.pes[1:] {
			for s, w := range pe0.scalarWritten {
				if w {
					pe.scalars[s] = pe0.scalars[s]
					pe.scalarWritten[s] = true
				}
			}
		}
	}

	// Barrier: everyone advances to the slowest PE.
	var maxNow int64
	for _, pe := range e.pes {
		if pe.now > maxNow {
			maxNow = pe.now
		}
	}
	if mp.NumPE > 1 {
		maxNow += mp.BarrierCost
		e.stats.Barriers++
	}
	for _, pe := range e.pes {
		pe.now = maxNow
		e.stats.PrefetchUnused += pe.pq.Flush()
		pe.buffered.Reset()
		for k := range inst.Env {
			if s := e.cp.syms.VarIndex(k); s >= 0 {
				pe.bound[s] = false
			}
		}
	}
	if e.net != nil {
		// The barrier drains the network: in-flight link reservations end
		// with the epoch (cumulative traffic stats survive).
		e.net.EndEpoch()
	}

	if e.opts.DetectRaces && node.Parallel {
		if err := e.checkRaces(node); err != nil {
			return err
		}
	}
	for _, pe := range e.pes {
		if pe.reads != nil {
			pe.reads.Reset()
			pe.writes.Reset()
			pe.reads, pe.writes = nil, nil
		}
	}
	return nil
}

// parallelEpoch runs the DOALL on all PEs concurrently — one goroutine per
// PE, safe because tasks of one epoch touch disjoint data. Under
// DetectRaces the PEs run sequentially instead: a program that VIOLATES the
// model must be caught by the engine's own checker deterministically, not
// by the Go race detector. A torus interconnect also forces the sequential
// order: link reservations are booking-order-dependent, and the simulator's
// design center is bit-identical results regardless of goroutine
// interleaving — PE clocks are independent, so booking PE p's epoch in full
// before PE p+1's does not change any PE's own timeline, only resolves
// contention ties deterministically. A 1-PE run also stays on the calling
// goroutine (and keeps the memory in plain, non-atomic mode): spawning a
// single worker buys nothing.
func (e *engine) parallelEpoch(node *ir.EpochNode) error {
	mp := e.c.Machine
	l := e.cp.nodes[node.Index].loop
	errs := make([]error, len(e.pes))
	runPE := func(p int) {
		defer func() {
			if r := recover(); r != nil {
				errs[p] = fmt.Errorf("PE %d: %v", p, r)
			}
		}()
		pe := e.pes[p]
		if e.opts.DetectRaces {
			if pe.raceRd == nil {
				pe.raceRd = bitset.NewSparse(e.mem.Words())
				pe.raceWr = bitset.NewSparse(e.mem.Words())
			}
			pe.reads = pe.raceRd
			pe.writes = pe.raceWr
		}
		switch e.c.Mode {
		case core.ModeBase:
			pe.now += mp.CraftDosharedSetupCost
		case core.ModeCCDP:
			pe.now += mp.CCDPLoopSetupCost
		}
		errs[p] = pe.runDoall(l)
	}
	if e.opts.DetectRaces || e.net != nil || len(e.pes) == 1 {
		for p := range e.pes {
			runPE(p)
		}
	} else {
		e.mem.SetSerial(false)
		var wg sync.WaitGroup
		for p := range e.pes {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				runPE(p)
			}(p)
		}
		wg.Wait()
		e.mem.SetSerial(true)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// checkRaces verifies that no two PEs conflicted inside the epoch. The
// Sparse sets iterate in insertion order, so the first conflict reported is
// deterministic (a map-keyed set would pick an arbitrary one).
func (e *engine) checkRaces(node *ir.EpochNode) error {
	for p, pa := range e.pes {
		for q := p + 1; q < len(e.pes); q++ {
			pb := e.pes[q]
			for _, a := range pa.writes.Members() {
				if pb.writes.Contains(a) {
					return fmt.Errorf("exec: epoch %d: PEs %d and %d both write addr %d", node.Index, p, q, a)
				}
				if pb.reads.Contains(a) {
					return fmt.Errorf("exec: epoch %d: PE %d writes addr %d read by PE %d", node.Index, p, a, q)
				}
			}
			for _, a := range pa.reads.Members() {
				if pb.writes.Contains(a) {
					return fmt.Errorf("exec: epoch %d: PE %d reads addr %d written by PE %d", node.Index, p, a, q)
				}
			}
		}
	}
	return nil
}

func (e *engine) mergePE(pe *peState) {
	e.stats.Merge(&pe.stats)
	e.stats.Hits += pe.cache.Hits
	e.stats.Misses += pe.cache.Misses
	e.stats.PrefetchIssued += pe.pq.Issued
	e.stats.PrefetchDropped += pe.pq.Dropped
	e.stats.PrefetchConsumed += pe.pq.Consumed
}

// reportStale records a coherence-oracle hit: PE pe consumed a word at
// addr through ref r whose generation gen is out of date.
func (e *engine) reportStale(pe *peState, r *ir.Ref, addr int64, gen uint32) {
	pe.stats.StaleValueReads++
	pe.stats.OracleViolations++
	if e.opts.TrackStaleRefs {
		if pe.staleByRef == nil {
			pe.staleByRef = map[ir.RefID]int64{}
		}
		pe.staleByRef[r.ID]++
	}
	v := fault.Violation{
		PE: pe.id, Addr: addr, Gen: gen, MemGen: e.mem.Gen(addr), Cycle: pe.now,
	}
	if arr := e.mem.ArrayOf(addr); arr != nil {
		v.Array = arr.Name
	}
	if r != nil {
		v.Ref = r.String()
	}
	e.staleMu.Lock()
	if len(e.violations) < maxRecordedViolations {
		e.violations = append(e.violations, v)
	}
	if e.opts.FailOnStale && e.staleErr == nil {
		e.staleErr = fmt.Errorf("exec: %v", v)
	}
	e.staleMu.Unlock()
}
