// Package exec is the T3D execution engine: it interprets a compiled
// program (real float64 arithmetic over the simulated distributed memory),
// drives the per-PE caches and prefetch queues, and charges cycle costs.
//
// Execution follows the paper's epoch model (§3.1): parallel epochs run
// their DOALL chunks on all PEs concurrently (one goroutine per PE — PEs
// touch disjoint data inside an epoch, so the simulation is race-free
// exactly when the program respects the model); serial epochs run on PE 0;
// every epoch boundary is a barrier, and write-through caches keep home
// memory current so the boundary memory-update is implicit.
//
// Torus-modeled runs also execute their parallel epochs concurrently, in
// one of three PDES modes selected by machine.Params.PDES — optimistic
// speculation with rollback (spec.go, the default), windowed conservative
// commits, or adaptive per-link lookahead (noc/pdes.go). All three commit
// link reservations in an order provably equivalent to the canonical
// sequential PE-major order, so cycle counts stay bit-identical at any
// GOMAXPROCS and any goroutine interleaving.
//
// Coherence is CHECKED, not assumed: every cached word carries the memory
// generation it was filled with, and a hit on an out-of-date word is
// counted as a stale-value read (and poisons the computed results, which
// the golden-value comparison then catches). SEQ, BASE and CCDP runs must
// report zero; the deliberately naive INCOHERENT mode demonstrates the
// failure the scheme prevents.
//
// Before anything executes, the ir tree is lowered to the engine's
// compiled form (compile.go): names become dense slots, subscripts become
// stride-resolved affine forms, and the per-PE state becomes plain slices
// — the cycle arithmetic is unchanged, so results stay bit-identical to
// the tree-walking engine this replaced.
package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/parallel"
	"repro/internal/pfq"
	"repro/internal/shmem"
	"repro/internal/stale"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options controls optional engine verification features.
type Options struct {
	// DetectRaces records per-epoch read/write address sets of shared
	// arrays and reports cross-PE conflicts inside one epoch (violations
	// of the "no data dependences between tasks of a parallel epoch"
	// model). It forces parallel epochs to run their PEs sequentially: a
	// program that violates the model must be caught by this checker
	// deterministically, not by the Go race detector. Expensive; for
	// tests.
	DetectRaces bool
	// FailOnStale makes Run return an error on the first stale-value read
	// instead of only counting it.
	FailOnStale bool
	// TrackStaleRefs records which reference sites observed stale values
	// (used by the analysis-soundness property tests).
	TrackStaleRefs bool
	// SerialTorus forces torus-modeled parallel epochs onto the canonical
	// sequential-PE booking order instead of the windowed conservative
	// PDES scheme. Results are identical either way — the equivalence
	// tests use this as their reference path.
	SerialTorus bool
	// Trace, when non-nil, collects the full memory reference stream
	// (build with trace.New(numPE)). Expensive; for analysis tooling.
	Trace *trace.Trace
	// Fault configures seeded fault injection (internal/fault). The zero
	// value runs the fault-free machine with zero overhead on the hot
	// paths and bit-identical cycle counts.
	Fault fault.Plan
}

// Result is the outcome of one run.
type Result struct {
	Stats    stats.Stats
	Cycles   int64
	PECycles []int64
	Mem      *mem.Memory
	// StaleByRef attributes observed stale-value reads to the reference
	// sites that performed them (populated when Options.TrackStaleRefs).
	StaleByRef map[ir.RefID]int64
	// Violations holds the first few coherence-oracle hits in detail
	// (every hit is counted in Stats.OracleViolations).
	Violations []fault.Violation
	// Net is the interconnect observability snapshot (per-link utilization,
	// contention hotspots, hop histogram); nil under the flat topology.
	Net *noc.Summary
}

// maxRecordedViolations bounds Result.Violations; counters keep the total.
const maxRecordedViolations = 32

// Run executes a compiled program. Engines are cached per Compiled
// (pool.go), so repeated Runs of the same compilation reuse every arena the
// Engine owns; the returned Result is detached — backed by its own storage,
// valid indefinitely — unlike Engine.Run's, which the engine's next run
// overwrites. Callers needing explicit control over engine lifetime (or the
// alias-free fast path) build one with New and Run it directly.
func Run(c *core.Compiled, opts Options) (*Result, error) {
	pool := poolFor(c)
	e := pool.get()
	if e == nil {
		var err error
		if e, err = New(c); err != nil {
			return nil, err
		}
	}
	// Run resets all engine state at entry, so the engine goes back to the
	// pool even when this run failed (stale-value errors under FailOnStale
	// are routine in the fuzzing campaign, not engine corruption).
	res, err := e.Run(opts)
	out := res.detach()
	pool.put(e)
	return out, err
}

// ctxBind is one precomputed context-variable binding of a dynamic epoch.
type ctxBind struct {
	slot int
	val  int64
}

// epochInst is one dynamic epoch instance with its context bindings
// resolved to slots: the whole epoch schedule is precomputed once per
// Engine, so the run loop allocates no per-instance environments.
type epochInst struct {
	node  *ir.EpochNode
	binds []ctxBind
}

// invRange is one precomputed invalidation address range [lo, hi].
type invRange struct{ lo, hi int64 }

// invPlan is one (epoch node, PE)'s compiler-directed invalidation work,
// with the analysis sections resolved to word-address ranges once per
// Engine. has distinguishes "no entries" (no invalidation cost at all)
// from "entries whose sections are empty" (the fixed cost still applies),
// mirroring the map the analysis produces.
type invPlan struct {
	has    bool
	ranges []invRange
}

// Engine executes one compiled program. New builds the compiled mirror
// tree, the dynamic epoch schedule, the interconnect and all per-PE state
// once; Run resets that state and executes, so repeated runs are
// allocation-flat in steady state. An Engine is not safe for concurrent
// Runs, and the returned Result (memory, PE cycle slice, violations,
// network summary) aliases Engine-owned storage that the next Run
// overwrites — copy whatever must outlive it. Engines whose runs fanned
// PEs out concurrently own parked worker goroutines until Close.
type Engine struct {
	c     *core.Compiled
	cp    *cProgram
	mem   *mem.Memory
	graph *ir.EpochGraph
	pes   []*peState
	// net is the torus interconnect; nil under the flat topology (the
	// constant-latency model). sess is its windowed-PDES front end.
	net  *noc.Network
	sess *noc.Session
	// tr is the transport the PEs charge remote traffic through this
	// epoch: nil (flat), net (canonical sequential booking: serial epochs,
	// race detection, SerialTorus) or sess (concurrent parallel epochs).
	tr noc.Transport
	// hw is the hardware coherence layer (hw.go); nil outside the HWDIR
	// modes. When non-nil, parallel epochs run their PEs sequentially:
	// directory invalidations mutate other PEs' caches.
	hw *hwState

	// Precomputed schedules (New-time, immutable across runs).
	insts []epochInst
	inv   [][]invPlan // [node][pe]; nil outside CCDP
	// hwInv mirrors inv for the coherence-domain hardware: the intra-domain
	// dirty regions the domain's coherent fabric has already invalidated by
	// epoch entry. Applied at zero cycle cost. nil without domains.
	hwInv [][]invPlan
	// domains is true when the machine groups PEs into multi-PE coherence
	// domains AND this is a CCDP compilation: the compiler then skips
	// prefetches for intra-domain words outside the cross-domain refetch
	// set (hardware keeps them fresh). domAware additionally covers
	// batch-cost-only profiles and gates the near/far word accounting.
	domains  bool
	domAware bool

	// Reusable scratch.
	errs   []error
	starts []int64

	// Worker pool: one parked goroutine per PE, spawned on the first
	// concurrent epoch and woken per epoch through wake (spec.go). poolJob
	// stages the job kind for the next fan-out; curLoop stages the epoch's
	// loop for runPE. An int job plus Engine-method workers keeps the
	// per-epoch fan-out allocation-free (closures and method values both
	// allocate).
	wake    []chan struct{}
	poolWG  sync.WaitGroup
	poolJob int
	curLoop *cLoop

	// Optimistic-PDES state (spec.go): per-PE predictor recorders,
	// epoch-entry snapshots and re-execution memos, all engine-reused.
	recs          []*noc.SpecRecorder
	snaps         []peSnap
	memos         []memoTransport
	specRollbacks int64

	// Validation-phase scratch (spec.go): the set of shared words any PE
	// wrote in the current speculative epoch, and the one being validated
	// wrote, for the read-write hazard check and the prefetch-queue repair.
	wAll, wrote *bitset.Sparse

	// Reusable result storage: Run returns &res, so a Result's slices and
	// Net summary alias Engine-owned memory that the next Run overwrites.
	res      Result
	peCycles []int64
	netSum   noc.Summary

	// Per-run state.
	opts       Options
	stats      stats.Stats
	inj        *fault.Injector
	pdes       bool
	optimistic bool
	flatSpec   bool
	staleErr   error
	violations []fault.Violation
	staleMu    sync.Mutex
}

// domainTopo is the machine's interconnect config with its coherence-domain
// fields injected: the noc near tier is profile-derived, never parsed, so
// every transport built for this machine (canonical network, PDES session,
// optimistic predictor fleet) must come through here to see the same costs.
func domainTopo(mp machine.Params) noc.Config {
	topo := mp.Topology
	if mp.DomainSize > 1 {
		topo.DomainPEs = mp.DomainSize
		topo.NearBaseCost = mp.NearBaseCost
	}
	return topo
}

// buildInvPlans resolves one analysis invalidation table (software or
// hardware) into per-(node, PE) word-address range plans.
func buildInvPlans(prog *ir.Program, graph *ir.EpochGraph, numPE int, table [][]stale.ArraySections) [][]invPlan {
	plans := make([][]invPlan, len(graph.Nodes))
	for ni := range graph.Nodes {
		plans[ni] = make([]invPlan, numPE)
		for p := 0; p < numPE; p++ {
			sections := table[ni][p]
			plan := invPlan{has: len(sections) > 0}
			names := make([]string, 0, len(sections))
			for name := range sections {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				arr := prog.ArrayByName(name)
				for _, r := range sections[name].Rects() {
					plan.ranges = append(plan.ranges,
						invRange{mem.AddrOf(arr, r.Lo), mem.AddrOf(arr, r.Hi)})
				}
			}
			plans[ni][p] = plan
		}
	}
	return plans
}

// New builds a reusable engine for a compiled program.
func New(c *core.Compiled) (*Engine, error) {
	prog := c.Prog
	mp := c.Machine
	graph, err := ir.BuildEpochGraph(prog)
	if err != nil {
		return nil, err
	}
	if c.Stale != nil && len(c.Stale.Invalidate) != len(graph.Nodes) {
		return nil, fmt.Errorf("exec: invalidation table has %d nodes, graph has %d",
			len(c.Stale.Invalidate), len(graph.Nodes))
	}
	cp, err := compileProgram(c, graph)
	if err != nil {
		return nil, err
	}
	var net *noc.Network
	if mp.NumPE > 1 {
		// noc.New returns nil for the flat topology: every remote path
		// then keeps the constant-latency costs, bit-identically.
		if net, err = noc.New(domainTopo(mp), mp.NumPE); err != nil {
			return nil, err
		}
	}
	e := &Engine{c: c, cp: cp, graph: graph, net: net,
		mem:    mem.New(prog, mp.NumPE, c.TotalWords),
		errs:   make([]error, mp.NumPE),
		starts: make([]int64, mp.NumPE),
	}
	if net != nil {
		e.sess = noc.NewSession(net)
	}

	// Precompute the dynamic epoch schedule with context bindings resolved
	// to variable slots (one flat slice instead of a map per instance).
	err = graph.ForEachEpochInstance(func(inst ir.EpochInstance) error {
		ei := epochInst{node: inst.Node}
		for _, l := range inst.Node.Context {
			if s := cp.syms.VarIndex(l.Var); s >= 0 {
				ei.binds = append(ei.binds, ctxBind{slot: s, val: inst.Env[l.Var]})
			}
		}
		e.insts = append(e.insts, ei)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Precompute CCDP invalidation regions as word-address ranges, in
	// sorted array-name order. Arrays occupy disjoint address ranges, so
	// the dropped-line count and the resulting cache state are identical
	// to walking the analysis map in any order.
	if c.Mode == core.ModeCCDP && c.Stale != nil {
		e.inv = buildInvPlans(prog, graph, mp.NumPE, c.Stale.Invalidate)
		if c.Stale.HWInvalidate != nil {
			e.hwInv = buildInvPlans(prog, graph, mp.NumPE, c.Stale.HWInvalidate)
		}
	}
	e.domains = mp.DomainSize > 1 && e.inv != nil
	e.domAware = mp.DomainAware()

	maxRank := 1
	for _, a := range prog.Arrays {
		if r := a.Rank(); r > maxRank {
			maxRank = r
		}
	}
	lines := c.TotalWords/mp.LineWords + 1
	if c.Mode.IsHW() {
		cfg := coherence.Config{Org: c.Mode.DirOrg(), Pointers: mp.DirPointers,
			SparseLines: int64(mp.DirSparseLines), SparseWays: mp.DirSparseWays}
		e.hw = &hwState{
			dir:   coherence.NewDirectory(cfg, mp.NumPE, lines),
			noInv: mp.DirDropInvalidations,
		}
	}
	// Per-PE state is slab-allocated: one backing array per field family
	// (plus the cache and prefetch-queue fleets) instead of ~10 allocations
	// per PE, which dominates one-shot construction cost at 64 PEs.
	e.pes = make([]*peState, mp.NumPE)
	peSlab := make([]peState, mp.NumPE)
	caches := cache.NewFleet(mp.NumPE, mp.CacheWords, mp.LineWords)
	pqs := pfq.NewFleet(mp.NumPE, mp.PrefetchQueueWords)
	scalarSlab := make([]float64, mp.NumPE*cp.nScalars)
	writtenSlab := make([]bool, mp.NumPE*cp.nScalars)
	envSlab := make([]int64, mp.NumPE*cp.nVars)
	boundSlab := make([]bool, mp.NumPE*cp.nVars)
	idxSlab := make([]int64, mp.NumPE*maxRank)
	for p := 0; p < mp.NumPE; p++ {
		pe := &peSlab[p]
		sLo, sHi := p*cp.nScalars, (p+1)*cp.nScalars
		vLo, vHi := p*cp.nVars, (p+1)*cp.nVars
		iLo, iHi := p*maxRank, (p+1)*maxRank
		*pe = peState{
			id:            p,
			eng:           e,
			cache:         caches[p],
			pq:            pqs[p],
			scalars:       scalarSlab[sLo:sHi:sHi],
			scalarWritten: writtenSlab[sLo:sHi:sHi],
			env:           envSlab[vLo:vHi:vHi],
			bound:         boundSlab[vLo:vHi:vHi],
			buffered:      bitset.NewSparse(lines),
			idxScratch:    idxSlab[iLo:iHi:iHi],
			shScratch:     shmem.NewScratch(e.mem, mp),
		}
		e.pes[p] = pe
		if e.hw != nil && mp.HWPrefetcher != "" {
			pref, err := newHWPrefetcher(mp.HWPrefetcher, mp.LineWords)
			if err != nil {
				return nil, err
			}
			pe.hwPref = pref
			pe.hwPrefetched = bitset.NewSparse(lines)
		}
	}
	return e, nil
}

// Run executes the program, resetting all Engine-owned state first.
func (e *Engine) Run(opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: %v", r)
		}
	}()

	mp := e.c.Machine
	if err := opts.Fault.Validate(); err != nil {
		return nil, err
	}
	if opts.Trace != nil && len(opts.Trace.PerPE) != mp.NumPE {
		return nil, fmt.Errorf("exec: trace has %d PEs, machine has %d", len(opts.Trace.PerPE), mp.NumPE)
	}

	e.opts = opts
	e.stats = stats.Stats{}
	e.staleErr = nil
	e.violations = e.violations[:0]
	e.inj = fault.NewInjector(opts.Fault, mp.NumPE)
	e.mem.Reset()
	// The engine starts single-threaded (epoch setup, serial epochs); the
	// parallel fan-out flips the memory to atomic mode only while PE
	// goroutines actually run concurrently.
	e.mem.SetSerial(true)
	if e.net != nil {
		e.net.Reset()
		e.tr = e.net
	} else {
		e.tr = nil
	}
	if e.hw != nil {
		e.hw.dir.Reset()
	}
	// The PDES path needs more than one scheduler thread to win anything;
	// on a single thread the canonical sequential order is the same
	// simulation without the cross-goroutine choreography. The HW modes
	// never use it: their epochs are sequential (see hw field).
	e.pdes = e.net != nil && mp.NumPE > 1 && !opts.DetectRaces && !opts.SerialTorus &&
		e.hw == nil && runtime.GOMAXPROCS(0) > 1
	// Optimistic speculation additionally excludes fault injection (fault
	// streams are stateful draws a rollback cannot rewind), tracing (the
	// stream would record speculative timings) and stale-ref attribution
	// (per-ref counts would double-count re-executed reads). Those runs
	// fall back to the conservative session, which handles them all.
	e.optimistic = e.pdes && mp.PDES == noc.PDESOptimistic &&
		e.inj == nil && opts.Trace == nil && !opts.TrackStaleRefs
	// Flat concurrent epochs have no link state to validate, but they share
	// memory, so line fills and prefetch captures race with same-epoch
	// writes exactly as torus speculation does (the INCOHERENT mode makes
	// the race observable as nondeterministic oracle counts). The same
	// capture bookkeeping settles them deterministically (spec.go); the
	// exclusions mirror e.optimistic's, and excluded runs keep the plain
	// fan-out.
	e.flatSpec = e.net == nil && mp.NumPE > 1 && !opts.DetectRaces &&
		e.hw == nil && e.inj == nil && opts.Trace == nil && !opts.TrackStaleRefs
	if e.sess != nil {
		if mp.PDES == noc.PDESAdaptive {
			e.sess.SetMode(noc.PDESAdaptive)
		} else {
			e.sess.SetMode(noc.PDESConservative)
		}
	}
	for _, pe := range e.pes {
		pe.reset()
	}

	if err := e.runAll(); err != nil {
		return nil, err
	}

	if e.peCycles == nil {
		e.peCycles = make([]int64, mp.NumPE)
	}
	e.res = Result{Stats: e.stats, Mem: e.mem, PECycles: e.peCycles,
		Violations: e.violations}
	res = &e.res
	if opts.TrackStaleRefs {
		res.StaleByRef = map[ir.RefID]int64{}
		for _, pe := range e.pes {
			for id, n := range pe.staleByRef {
				res.StaleByRef[id] += n
			}
		}
	}
	for p, pe := range e.pes {
		res.PECycles[p] = pe.now
	}
	res.Cycles = res.PECycles[0]
	res.Stats.Cycles = res.Cycles
	if e.net != nil {
		e.net.SummaryInto(&e.netSum, res.Cycles)
		res.Net = &e.netSum
		res.Stats.NetMessages = res.Net.Messages
		res.Stats.NetWaitCycles = res.Net.WaitCycles
		res.Stats.NetContended = res.Net.Contended
	}
	return res, nil
}

// reset returns one PE to its just-built state for the next run.
func (pe *peState) reset() {
	e := pe.eng
	pe.now = 0
	pe.stats = stats.Stats{}
	pe.cache.Reset()
	pe.pq.Reset()
	for i := range pe.scalars {
		pe.scalars[i] = 0
		pe.scalarWritten[i] = false
	}
	for i := range pe.env {
		pe.env[i] = 0
		pe.bound[i] = false
	}
	pe.clearRegs()
	pe.buffered.Reset()
	pe.reads, pe.writes = nil, nil
	if pe.raceRd != nil {
		pe.raceRd.Reset()
		pe.raceWr.Reset()
	}
	pe.vpAddrs = pe.vpAddrs[:0]
	if pe.hwPref != nil {
		pe.hwPref.Reset()
		pe.hwPrefetched.Reset()
	}
	pe.staleByRef = nil
	pe.demoted = 0
	pe.crossInv = nil
	pe.sess = nil
	pe.tr = e.tr
	pe.spec = false
	pe.pendViol = pe.pendViol[:0]
	pe.undo = pe.undo[:0]
	pe.filled = pe.filled[:0]
	if pe.consumed != nil {
		pe.consumed.Reset()
	}
	pe.fault, pe.shFaults = nil, nil
	if e.inj != nil {
		pe.fault = e.inj.PE(pe.id)
		pe.shFaults = &shmem.Faults{DropLine: pe.fault.DropPrefetch, LateDelay: pe.fault.LateDelay}
	}
	pe.trace = nil
	if e.opts.Trace != nil {
		pe.trace = e.opts.Trace.PerPE[pe.id]
	}
	for k, v := range e.c.Prog.Params {
		if s := e.cp.syms.VarIndex(k); s >= 0 {
			pe.env[s] = v
			pe.bound[s] = true
		}
	}
}

func (e *Engine) runAll() error {
	for i := range e.insts {
		if err := e.epoch(&e.insts[i]); err != nil {
			return err
		}
	}
	// Final accounting: flush queues, merge PE stats.
	for _, pe := range e.pes {
		e.stats.PrefetchUnused += pe.pq.Flush()
		e.mergePE(pe)
	}
	if e.inj != nil {
		c := e.inj.Counts()
		e.stats.FaultDrops = c.Drops
		e.stats.FaultLate = c.Lates
		e.stats.FaultSpikes = c.Spikes
		e.stats.FaultEvictions = c.Evictions
		e.stats.FaultSkews = c.Skews
	}
	if e.hw != nil {
		e.stats.DirStorageBits = e.hw.dir.StorageBits()
		e.stats.DirEvictions = e.hw.dir.Evictions
	}
	return e.staleErr
}

// epoch executes one dynamic epoch instance, including the boundary
// actions (invalidation before, barrier and queue flush after).
func (e *Engine) epoch(inst *epochInst) error {
	mp := e.c.Machine
	node := inst.node
	e.stats.Epochs++

	// Modeled hardware coherence (machines with multi-PE domains): the
	// domain fabric has already invalidated the intra-domain dirty regions
	// by the time the epoch starts, at no cycle cost to the program.
	if e.hwInv != nil {
		for p, pe := range e.pes {
			for _, r := range e.hwInv[node.Index][p].ranges {
				pe.stats.DomainHWInvalidations += pe.cache.InvalidateRange(r.lo, r.hi)
			}
		}
	}

	// Compiler-directed invalidation (CCDP): each PE drops the cached
	// regions the analysis says may be dirty for it.
	if e.inv != nil {
		for p, pe := range e.pes {
			plan := &e.inv[node.Index][p]
			var dropped int64
			for _, r := range plan.ranges {
				dropped += pe.cache.InvalidateRange(r.lo, r.hi)
			}
			if plan.has {
				pe.now += 10 + dropped*mp.InvalidateLineCost
			}
			pe.stats.InvalidatedLines += dropped
			// The epoch's cross-domain refetch ranges double as the
			// compiler's prefetch-skip filter on domained machines
			// (peState.domainSkip).
			pe.crossInv = plan.ranges
		}
	}

	// Set the context environment on every PE; under KindSkew each PE's
	// clock drifts by a seeded offset at epoch entry (the barrier at the
	// epoch's end reconverges everyone to the slowest clock).
	for _, pe := range e.pes {
		if pe.fault != nil {
			pe.now += pe.fault.ClockSkew()
		}
		for _, b := range inst.binds {
			pe.env[b.slot] = b.val
			pe.bound[b.slot] = true
		}
	}

	if node.Parallel {
		if err := e.parallelEpoch(node); err != nil {
			return err
		}
	} else {
		pe0 := e.pes[0]
		if err := pe0.runStmts(e.cp.nodes[node.Index].stmts); err != nil {
			return err
		}
		// Scalars written in a serial epoch are broadcast at the barrier.
		// The written mask mirrors map-key presence in the old map-based
		// state: only slots PE 0 has ever stored to are propagated.
		for _, pe := range e.pes[1:] {
			for s, w := range pe0.scalarWritten {
				if w {
					pe.scalars[s] = pe0.scalars[s]
					pe.scalarWritten[s] = true
				}
			}
		}
	}

	// Barrier: everyone advances to the slowest PE.
	var maxNow int64
	for _, pe := range e.pes {
		if pe.now > maxNow {
			maxNow = pe.now
		}
	}
	if mp.NumPE > 1 {
		maxNow += mp.BarrierCost
		e.stats.Barriers++
		// LazyPIM-style batched coherence: compute-side and memory-side
		// caches reconcile once per epoch boundary.
		maxNow += mp.DomainBatchCost
	}
	for _, pe := range e.pes {
		pe.now = maxNow
		e.stats.PrefetchUnused += pe.pq.Flush()
		pe.buffered.Reset()
		for _, b := range inst.binds {
			pe.bound[b.slot] = false
		}
	}
	if e.net != nil {
		// The barrier drains the network: in-flight link reservations end
		// with the epoch (cumulative traffic stats survive).
		e.net.EndEpoch()
	}

	if e.opts.DetectRaces && node.Parallel {
		if err := e.checkRaces(node); err != nil {
			return err
		}
	}
	for _, pe := range e.pes {
		if pe.reads != nil {
			pe.reads.Reset()
			pe.writes.Reset()
			pe.reads, pe.writes = nil, nil
		}
	}
	return nil
}

// parallelEpoch runs the DOALL on all PEs concurrently, safe because tasks
// of one epoch touch disjoint data. Four cases:
//
//   - DetectRaces or 1 PE or a HWDIR mode or Options.SerialTorus (with a
//     torus) or a single-threaded scheduler: the PEs run sequentially on
//     the calling goroutine. This is the canonical order torus link booking
//     is defined against: PE p's whole epoch books before PE p+1's. The
//     HWDIR modes are pinned here because directory invalidations mutate
//     OTHER PEs' caches — the disjoint-data argument the concurrent cases
//     rest on does not hold for them.
//   - Torus, optimistic (the default): all PEs speculate concurrently on
//     private predictor networks, then a serial pass validates and commits
//     (or rolls back and re-executes) in PE-major order (spec.go).
//   - Torus, conservative or adaptive: all PEs run concurrently; link
//     reservations commit through the windowed PDES session, which
//     reproduces the canonical order's placements exactly (see
//     noc/pdes.go), so results stay bit-identical at any GOMAXPROCS and
//     interleaving.
//   - Flat: no link state exists and PE clocks are fully independent, so
//     the PEs fan out over the shared worker budget (degrading to inline
//     when the machine is busy), work-stealing by atomic index. Memory is
//     still shared, though: line fills and prefetch captures race with
//     same-epoch writes, so fault-free untraced runs carry the speculative
//     capture bookkeeping and settle serially afterwards (settleFlat,
//     spec.go), keeping results bit-identical to the canonical PE-major
//     order at any GOMAXPROCS.
func (e *Engine) parallelEpoch(node *ir.EpochNode) error {
	e.curLoop = e.cp.nodes[node.Index].loop
	errs := e.errs
	for i := range errs {
		errs[i] = nil
	}

	switch {
	case e.opts.DetectRaces || len(e.pes) == 1 || e.hw != nil || (e.net != nil && !e.pdes):
		for p := range e.pes {
			e.runPE(p)
		}

	case e.net != nil && e.optimistic:
		e.specEpoch()

	case e.net != nil:
		// Windowed PDES session: one pool worker per PE (they spend their
		// commit waits blocked, so this does not draw from the shared
		// worker budget), clocks seeded with the epoch-entry times.
		for p, pe := range e.pes {
			e.starts[p] = pe.now
			pe.sess = e.sess
			pe.tr = e.sess
		}
		e.sess.Begin(e.starts)
		e.mem.SetSerial(false)
		e.fanOut(jobSession)
		e.mem.SetSerial(true)
		for _, pe := range e.pes {
			pe.sess = nil
			pe.tr = e.net
		}

	default:
		extra := parallel.AcquireWorkers(len(e.pes) - 1)
		if extra == 0 {
			for p := range e.pes {
				e.runPE(p)
			}
			break
		}
		if e.flatSpec {
			e.beginMemSpec()
		}
		e.mem.SetSerial(false)
		var next atomic.Int64
		work := func() {
			for {
				p := int(next.Add(1)) - 1
				if p >= len(e.pes) {
					return
				}
				e.runPE(p)
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < extra; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		wg.Wait()
		parallel.ReleaseWorkers(extra)
		e.mem.SetSerial(true)
		if e.flatSpec {
			e.settleFlat()
		}
	}

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// checkRaces verifies that no two PEs conflicted inside the epoch. The
// Sparse sets iterate in insertion order, so the first conflict reported is
// deterministic (a map-keyed set would pick an arbitrary one).
func (e *Engine) checkRaces(node *ir.EpochNode) error {
	for p, pa := range e.pes {
		for q := p + 1; q < len(e.pes); q++ {
			pb := e.pes[q]
			for _, a := range pa.writes.Members() {
				if pb.writes.Contains(a) {
					return fmt.Errorf("exec: epoch %d: PEs %d and %d both write addr %d", node.Index, p, q, a)
				}
				if pb.reads.Contains(a) {
					return fmt.Errorf("exec: epoch %d: PE %d writes addr %d read by PE %d", node.Index, p, a, q)
				}
			}
			for _, a := range pa.reads.Members() {
				if pb.writes.Contains(a) {
					return fmt.Errorf("exec: epoch %d: PE %d reads addr %d written by PE %d", node.Index, p, a, q)
				}
			}
		}
	}
	return nil
}

func (e *Engine) mergePE(pe *peState) {
	e.stats.Merge(&pe.stats)
	e.stats.Hits += pe.cache.Hits
	e.stats.Misses += pe.cache.Misses
	e.stats.PrefetchIssued += pe.pq.Issued
	e.stats.PrefetchDropped += pe.pq.Dropped
	e.stats.PrefetchConsumed += pe.pq.Consumed
}

// reportStale records a coherence-oracle hit: PE pe consumed a word at
// addr through ref r whose generation gen is out of date.
func (e *Engine) reportStale(pe *peState, r *ir.Ref, addr int64, gen uint32) {
	pe.stats.StaleValueReads++
	pe.stats.OracleViolations++
	if e.opts.TrackStaleRefs {
		if pe.staleByRef == nil {
			pe.staleByRef = map[ir.RefID]int64{}
		}
		pe.staleByRef[r.ID]++
	}
	v := fault.Violation{
		PE: pe.id, Addr: addr, Gen: gen, MemGen: e.mem.Gen(addr), Cycle: pe.now,
	}
	if arr := e.mem.ArrayOf(addr); arr != nil {
		v.Array = arr.Name
	}
	if r != nil {
		v.Ref = r.String()
	}
	if pe.spec {
		// Speculative epoch: buffer on the PE and merge at commit (PE-major,
		// deterministic, no lock); a rollback discards and the re-execution
		// re-detects.
		if len(pe.pendViol) < maxRecordedViolations {
			pe.pendViol = append(pe.pendViol, v)
		}
		return
	}
	e.staleMu.Lock()
	if len(e.violations) < maxRecordedViolations {
		e.violations = append(e.violations, v)
	}
	if e.opts.FailOnStale && e.staleErr == nil {
		e.staleErr = fmt.Errorf("exec: %v", v)
	}
	e.staleMu.Unlock()
}
