package exec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/noc"
)

// hwModes are the three hardware directory organizations of the arena.
var hwModes = []core.Mode{core.ModeHWDir, core.ModeHWDirLP, core.ModeHWDirSparse}

// runHW compiles and runs prog in one HW-arena configuration.
func runHW(t *testing.T, prog *ir.Program, mode core.Mode, mp machine.Params, opts Options) *Result {
	t.Helper()
	c, err := core.Compile(prog, mode, mp)
	if err != nil {
		t.Fatalf("%v compile: %v", mode, err)
	}
	res, err := Run(c, opts)
	if err != nil {
		t.Fatalf("%v run: %v", mode, err)
	}
	return res
}

// TestHWModesMatchSeqOracleClean is the arena's core correctness claim:
// every hardware directory organization computes the sequential results
// bit-for-bit with zero oracle violations, on the flat model and the
// torus, despite genuine cross-PE sharing (stencil halo traffic).
func TestHWModesMatchSeqOracleClean(t *testing.T) {
	prog := stencilProg(64, 3)
	seq := run(t, prog, core.ModeSeq, 1, Options{FailOnStale: true})
	topos := map[string]noc.Config{
		"flat":  {},
		"torus": {Kind: noc.KindTorus},
	}
	for name, topo := range topos {
		for _, mode := range hwModes {
			mp := machine.T3D(4)
			mp.Topology = topo
			res := runHW(t, prog, mode, mp, Options{FailOnStale: true})
			if !arraysEqual(t, prog, seq, res, "A") {
				t.Errorf("%s/%v results differ from sequential", name, mode)
			}
			s := res.Stats
			if s.OracleViolations != 0 || s.StaleValueReads != 0 {
				t.Errorf("%s/%v oracle violations = %d stale = %d", name, mode,
					s.OracleViolations, s.StaleValueReads)
			}
			if s.CohMessages == 0 || s.CohInvSent == 0 {
				t.Errorf("%s/%v booked no coherence traffic (msgs=%d inv=%d) on a sharing workload",
					name, mode, s.CohMessages, s.CohInvSent)
			}
			if s.DirStorageBits == 0 {
				t.Errorf("%s/%v reports zero directory storage", name, mode)
			}
			if s.Hits == 0 {
				t.Errorf("%s/%v never hit the cache — shared data is not being cached", name, mode)
			}
			if name == "torus" && s.NetMessages < s.CohMessages {
				t.Errorf("torus/%v coherence messages (%d) exceed total net messages (%d)",
					mode, s.CohMessages, s.NetMessages)
			}
		}
	}
}

// TestHWOrganizationsDistinctCosts: the three directory organizations must
// show distinct storage costs and organization-specific traffic — the
// limited-pointer Dir_1_B broadcasts where the full map stays precise, and
// an undersized sparse directory evicts entries (invalidating live lines)
// where the dense organizations never do.
func TestHWOrganizationsDistinctCosts(t *testing.T) {
	prog := stencilProg(64, 3)
	results := map[core.Mode]*Result{}
	for _, mode := range hwModes {
		mp := machine.T3D(4)
		// Undersize the sparse directory so entry eviction is exercised.
		mp.DirSparseLines = 4
		mp.DirSparseWays = 1
		results[mode] = runHW(t, prog, mode, mp, Options{FailOnStale: true})
	}
	fm := results[core.ModeHWDir].Stats
	lp := results[core.ModeHWDirLP].Stats
	sp := results[core.ModeHWDirSparse].Stats
	if fm.DirStorageBits == lp.DirStorageBits || fm.DirStorageBits == sp.DirStorageBits ||
		lp.DirStorageBits == sp.DirStorageBits {
		t.Errorf("directory storage not distinct: fm=%d lp=%d sp=%d",
			fm.DirStorageBits, lp.DirStorageBits, sp.DirStorageBits)
	}
	if fm.DirStorageBits <= lp.DirStorageBits {
		t.Errorf("full map (%d bits) should cost more than Dir_1_B (%d bits)",
			fm.DirStorageBits, lp.DirStorageBits)
	}
	if fm.CohBroadcasts != 0 {
		t.Errorf("full map broadcast %d times", fm.CohBroadcasts)
	}
	if lp.CohBroadcasts == 0 {
		t.Error("Dir_1_B never overflowed to broadcast on a multi-sharer workload")
	}
	if lp.CohInvSent <= fm.CohInvSent {
		t.Errorf("broadcast invalidations (%d) not above full map's precise ones (%d)",
			lp.CohInvSent, fm.CohInvSent)
	}
	if fm.DirEvictions != 0 || lp.DirEvictions != 0 {
		t.Errorf("dense directories evicted entries: fm=%d lp=%d", fm.DirEvictions, lp.DirEvictions)
	}
	if sp.DirEvictions == 0 {
		t.Error("undersized sparse directory never evicted an entry")
	}
}

// TestHWSabotageCaughtByOracle drives the fuzz campaign's sabotage: when
// the directory's invalidations stop dropping copies, PEs keep consuming
// stale halo values and the coherence oracle must flag every one.
func TestHWSabotageCaughtByOracle(t *testing.T) {
	prog := stencilProg(64, 3)
	for _, mode := range hwModes {
		mp := machine.T3D(4)
		mp.DirDropInvalidations = true
		res := runHW(t, prog, mode, mp, Options{})
		if res.Stats.OracleViolations == 0 {
			t.Errorf("%v: dropped invalidations produced zero oracle violations", mode)
		}
		if res.Stats.CohInvSent == 0 {
			t.Errorf("%v: sabotage should still book invalidation sends", mode)
		}
		if res.Stats.CohInvRecv != 0 {
			t.Errorf("%v: sabotage delivered %d invalidations", mode, res.Stats.CohInvRecv)
		}
	}
}

// TestHWRuntimePrefetcher: pairing a HW mode with a runtime prefetcher
// keeps results exact and oracle-clean, issues prefetches, and some of
// them are useful on a streaming stencil.
func TestHWRuntimePrefetcher(t *testing.T) {
	prog := stencilProg(64, 3)
	seq := run(t, prog, core.ModeSeq, 1, Options{FailOnStale: true})
	for _, name := range []string{"next-line", "stride"} {
		mp := machine.T3D(4)
		mp.HWPrefetcher = name
		res := runHW(t, prog, core.ModeHWDir, mp, Options{FailOnStale: true})
		if !arraysEqual(t, prog, seq, res, "A") {
			t.Errorf("%s results differ from sequential", name)
		}
		if res.Stats.OracleViolations != 0 {
			t.Errorf("%s oracle violations = %d", name, res.Stats.OracleViolations)
		}
		if res.Stats.HWPrefIssued == 0 {
			t.Errorf("%s issued no prefetches", name)
		}
		if name == "next-line" && res.Stats.HWPrefUseful == 0 {
			t.Error("next-line prefetches never useful on a streaming stencil")
		}
	}
}

// TestHWUnknownPrefetcherErrors: a bad prefetcher name fails loudly at
// engine construction, listing the registry.
func TestHWUnknownPrefetcherErrors(t *testing.T) {
	mp := machine.T3D(4)
	mp.HWPrefetcher = "psychic"
	c, err := core.Compile(stencilProg(16, 1), core.ModeHWDir, mp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := New(c); err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
}

// TestCCDPAndBaseBookNoCoherenceTraffic pins the arena's headline split:
// the software schemes run with zero hardware coherence messages and zero
// directory storage.
func TestCCDPAndBaseBookNoCoherenceTraffic(t *testing.T) {
	prog := stencilProg(64, 3)
	for _, mode := range []core.Mode{core.ModeBase, core.ModeCCDP} {
		res := run(t, prog, mode, 4, Options{FailOnStale: true})
		s := res.Stats
		if s.CohMessages != 0 || s.CohInvSent != 0 || s.CohWritebacks != 0 ||
			s.DirStorageBits != 0 || s.HWPrefIssued != 0 {
			t.Errorf("%v booked hardware coherence state: %+v", mode, s)
		}
	}
}

// TestHWDeterministic: same configuration, same cycle count — the HW
// epoch loop is sequential by construction, so any drift is a bug.
func TestHWDeterministic(t *testing.T) {
	prog := stencilProg(64, 3)
	for _, topo := range []noc.Config{{}, {Kind: noc.KindTorus}} {
		mp := machine.T3D(4)
		mp.Topology = topo
		mp.HWPrefetcher = "stride"
		a := runHW(t, prog, core.ModeHWDirSparse, mp, Options{FailOnStale: true})
		b := runHW(t, prog, core.ModeHWDirSparse, mp, Options{FailOnStale: true})
		if a.Cycles != b.Cycles || a.Stats != b.Stats {
			t.Errorf("topology %v nondeterministic: %d vs %d cycles", topo.Kind, a.Cycles, b.Cycles)
		}
	}
}

// TestHWEngineReuse: repeated Runs of one engine reset the directory and
// prefetcher state completely.
func TestHWEngineReuse(t *testing.T) {
	mp := machine.T3D(4)
	mp.HWPrefetcher = "next-line"
	c, err := core.Compile(stencilProg(64, 3), core.ModeHWDirSparse, mp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e, err := New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, err := e.Run(Options{FailOnStale: true})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := e.Run(Options{FailOnStale: true})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Errorf("engine reuse drifted: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}
